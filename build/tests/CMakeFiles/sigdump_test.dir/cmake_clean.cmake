file(REMOVE_RECURSE
  "CMakeFiles/sigdump_test.dir/sigdump_test.cc.o"
  "CMakeFiles/sigdump_test.dir/sigdump_test.cc.o.d"
  "sigdump_test"
  "sigdump_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sigdump_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
