# Empty dependencies file for sigdump_test.
# This may be replaced when dependencies are built.
