file(REMOVE_RECURSE
  "CMakeFiles/result_test.dir/result_test.cc.o"
  "CMakeFiles/result_test.dir/result_test.cc.o.d"
  "result_test"
  "result_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/result_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
