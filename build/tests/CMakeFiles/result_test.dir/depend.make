# Empty dependencies file for result_test.
# This may be replaced when dependencies are built.
