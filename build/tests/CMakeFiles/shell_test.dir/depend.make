# Empty dependencies file for shell_test.
# This may be replaced when dependencies are built.
