file(REMOVE_RECURSE
  "CMakeFiles/vm_programs_test.dir/vm_programs_test.cc.o"
  "CMakeFiles/vm_programs_test.dir/vm_programs_test.cc.o.d"
  "vm_programs_test"
  "vm_programs_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vm_programs_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
