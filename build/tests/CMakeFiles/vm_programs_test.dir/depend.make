# Empty dependencies file for vm_programs_test.
# This may be replaced when dependencies are built.
