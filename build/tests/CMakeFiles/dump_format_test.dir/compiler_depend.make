# Empty compiler generated dependencies file for dump_format_test.
# This may be replaced when dependencies are built.
