file(REMOVE_RECURSE
  "CMakeFiles/dump_format_test.dir/dump_format_test.cc.o"
  "CMakeFiles/dump_format_test.dir/dump_format_test.cc.o.d"
  "dump_format_test"
  "dump_format_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dump_format_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
