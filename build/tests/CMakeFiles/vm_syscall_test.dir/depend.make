# Empty dependencies file for vm_syscall_test.
# This may be replaced when dependencies are built.
