file(REMOVE_RECURSE
  "CMakeFiles/vm_syscall_test.dir/vm_syscall_test.cc.o"
  "CMakeFiles/vm_syscall_test.dir/vm_syscall_test.cc.o.d"
  "vm_syscall_test"
  "vm_syscall_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vm_syscall_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
