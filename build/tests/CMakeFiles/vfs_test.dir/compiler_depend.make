# Empty compiler generated dependencies file for vfs_test.
# This may be replaced when dependencies are built.
