file(REMOVE_RECURSE
  "CMakeFiles/vfs_test.dir/vfs_test.cc.o"
  "CMakeFiles/vfs_test.dir/vfs_test.cc.o.d"
  "vfs_test"
  "vfs_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vfs_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
