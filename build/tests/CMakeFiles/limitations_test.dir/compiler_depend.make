# Empty compiler generated dependencies file for limitations_test.
# This may be replaced when dependencies are built.
