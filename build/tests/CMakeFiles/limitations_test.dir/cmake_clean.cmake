file(REMOVE_RECURSE
  "CMakeFiles/limitations_test.dir/limitations_test.cc.o"
  "CMakeFiles/limitations_test.dir/limitations_test.cc.o.d"
  "limitations_test"
  "limitations_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/limitations_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
