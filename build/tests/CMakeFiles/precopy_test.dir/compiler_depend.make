# Empty compiler generated dependencies file for precopy_test.
# This may be replaced when dependencies are built.
