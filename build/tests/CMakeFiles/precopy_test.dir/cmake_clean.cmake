file(REMOVE_RECURSE
  "CMakeFiles/precopy_test.dir/precopy_test.cc.o"
  "CMakeFiles/precopy_test.dir/precopy_test.cc.o.d"
  "precopy_test"
  "precopy_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/precopy_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
