file(REMOVE_RECURSE
  "CMakeFiles/tools_test.dir/tools_test.cc.o"
  "CMakeFiles/tools_test.dir/tools_test.cc.o.d"
  "tools_test"
  "tools_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tools_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
