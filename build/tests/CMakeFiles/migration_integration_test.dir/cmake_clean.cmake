file(REMOVE_RECURSE
  "CMakeFiles/migration_integration_test.dir/migration_integration_test.cc.o"
  "CMakeFiles/migration_integration_test.dir/migration_integration_test.cc.o.d"
  "migration_integration_test"
  "migration_integration_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/migration_integration_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
