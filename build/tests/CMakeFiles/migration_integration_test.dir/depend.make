# Empty dependencies file for migration_integration_test.
# This may be replaced when dependencies are built.
