# Empty compiler generated dependencies file for rsh_daemon_test.
# This may be replaced when dependencies are built.
