file(REMOVE_RECURSE
  "CMakeFiles/rsh_daemon_test.dir/rsh_daemon_test.cc.o"
  "CMakeFiles/rsh_daemon_test.dir/rsh_daemon_test.cc.o.d"
  "rsh_daemon_test"
  "rsh_daemon_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rsh_daemon_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
