# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for rsh_daemon_test.
