# Empty dependencies file for native_api_test.
# This may be replaced when dependencies are built.
