file(REMOVE_RECURSE
  "CMakeFiles/native_api_test.dir/native_api_test.cc.o"
  "CMakeFiles/native_api_test.dir/native_api_test.cc.o.d"
  "native_api_test"
  "native_api_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/native_api_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
