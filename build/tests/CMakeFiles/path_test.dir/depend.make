# Empty dependencies file for path_test.
# This may be replaced when dependencies are built.
