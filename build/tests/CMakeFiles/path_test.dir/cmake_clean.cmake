file(REMOVE_RECURSE
  "CMakeFiles/path_test.dir/path_test.cc.o"
  "CMakeFiles/path_test.dir/path_test.cc.o.d"
  "path_test"
  "path_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/path_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
