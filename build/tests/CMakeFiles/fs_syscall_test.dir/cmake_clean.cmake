file(REMOVE_RECURSE
  "CMakeFiles/fs_syscall_test.dir/fs_syscall_test.cc.o"
  "CMakeFiles/fs_syscall_test.dir/fs_syscall_test.cc.o.d"
  "fs_syscall_test"
  "fs_syscall_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fs_syscall_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
