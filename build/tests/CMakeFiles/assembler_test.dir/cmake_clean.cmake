file(REMOVE_RECURSE
  "CMakeFiles/assembler_test.dir/assembler_test.cc.o"
  "CMakeFiles/assembler_test.dir/assembler_test.cc.o.d"
  "assembler_test"
  "assembler_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/assembler_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
