# Empty dependencies file for assembler_test.
# This may be replaced when dependencies are built.
