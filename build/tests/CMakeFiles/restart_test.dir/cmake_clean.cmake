file(REMOVE_RECURSE
  "CMakeFiles/restart_test.dir/restart_test.cc.o"
  "CMakeFiles/restart_test.dir/restart_test.cc.o.d"
  "restart_test"
  "restart_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/restart_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
