# Empty dependencies file for restart_test.
# This may be replaced when dependencies are built.
