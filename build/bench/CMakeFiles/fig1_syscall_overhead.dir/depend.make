# Empty dependencies file for fig1_syscall_overhead.
# This may be replaced when dependencies are built.
