file(REMOVE_RECURSE
  "CMakeFiles/fig1_syscall_overhead.dir/fig1_syscall_overhead.cc.o"
  "CMakeFiles/fig1_syscall_overhead.dir/fig1_syscall_overhead.cc.o.d"
  "fig1_syscall_overhead"
  "fig1_syscall_overhead.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig1_syscall_overhead.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
