# Empty compiler generated dependencies file for ablation_daemon_vs_rsh.
# This may be replaced when dependencies are built.
