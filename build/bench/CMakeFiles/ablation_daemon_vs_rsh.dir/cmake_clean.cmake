file(REMOVE_RECURSE
  "CMakeFiles/ablation_daemon_vs_rsh.dir/ablation_daemon_vs_rsh.cc.o"
  "CMakeFiles/ablation_daemon_vs_rsh.dir/ablation_daemon_vs_rsh.cc.o.d"
  "ablation_daemon_vs_rsh"
  "ablation_daemon_vs_rsh.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_daemon_vs_rsh.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
