file(REMOVE_RECURSE
  "CMakeFiles/ablation_dump_scaling.dir/ablation_dump_scaling.cc.o"
  "CMakeFiles/ablation_dump_scaling.dir/ablation_dump_scaling.cc.o.d"
  "ablation_dump_scaling"
  "ablation_dump_scaling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_dump_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
