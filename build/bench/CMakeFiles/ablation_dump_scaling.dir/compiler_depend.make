# Empty compiler generated dependencies file for ablation_dump_scaling.
# This may be replaced when dependencies are built.
