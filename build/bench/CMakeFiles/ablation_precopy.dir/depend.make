# Empty dependencies file for ablation_precopy.
# This may be replaced when dependencies are built.
