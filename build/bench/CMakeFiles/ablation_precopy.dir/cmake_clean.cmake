file(REMOVE_RECURSE
  "CMakeFiles/ablation_precopy.dir/ablation_precopy.cc.o"
  "CMakeFiles/ablation_precopy.dir/ablation_precopy.cc.o.d"
  "ablation_precopy"
  "ablation_precopy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_precopy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
