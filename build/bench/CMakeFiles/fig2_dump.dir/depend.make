# Empty dependencies file for fig2_dump.
# This may be replaced when dependencies are built.
