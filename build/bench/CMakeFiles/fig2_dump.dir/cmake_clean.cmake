file(REMOVE_RECURSE
  "CMakeFiles/fig2_dump.dir/fig2_dump.cc.o"
  "CMakeFiles/fig2_dump.dir/fig2_dump.cc.o.d"
  "fig2_dump"
  "fig2_dump.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2_dump.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
