# Empty dependencies file for ablation_name_storage.
# This may be replaced when dependencies are built.
