file(REMOVE_RECURSE
  "CMakeFiles/ablation_name_storage.dir/ablation_name_storage.cc.o"
  "CMakeFiles/ablation_name_storage.dir/ablation_name_storage.cc.o.d"
  "ablation_name_storage"
  "ablation_name_storage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_name_storage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
