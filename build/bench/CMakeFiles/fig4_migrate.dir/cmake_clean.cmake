file(REMOVE_RECURSE
  "CMakeFiles/fig4_migrate.dir/fig4_migrate.cc.o"
  "CMakeFiles/fig4_migrate.dir/fig4_migrate.cc.o.d"
  "fig4_migrate"
  "fig4_migrate.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_migrate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
