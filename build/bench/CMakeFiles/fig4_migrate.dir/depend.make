# Empty dependencies file for fig4_migrate.
# This may be replaced when dependencies are built.
