file(REMOVE_RECURSE
  "CMakeFiles/fig3_restart.dir/fig3_restart.cc.o"
  "CMakeFiles/fig3_restart.dir/fig3_restart.cc.o.d"
  "fig3_restart"
  "fig3_restart.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_restart.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
