# Empty dependencies file for fig3_restart.
# This may be replaced when dependencies are built.
