file(REMOVE_RECURSE
  "CMakeFiles/ablation_loadbalance.dir/ablation_loadbalance.cc.o"
  "CMakeFiles/ablation_loadbalance.dir/ablation_loadbalance.cc.o.d"
  "ablation_loadbalance"
  "ablation_loadbalance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_loadbalance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
