# Empty compiler generated dependencies file for ablation_loadbalance.
# This may be replaced when dependencies are built.
