file(REMOVE_RECURSE
  "libpmig.a"
)
