
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/apps/checkpoint.cc" "src/CMakeFiles/pmig.dir/apps/checkpoint.cc.o" "gcc" "src/CMakeFiles/pmig.dir/apps/checkpoint.cc.o.d"
  "/root/repo/src/apps/evacuate.cc" "src/CMakeFiles/pmig.dir/apps/evacuate.cc.o" "gcc" "src/CMakeFiles/pmig.dir/apps/evacuate.cc.o.d"
  "/root/repo/src/apps/load_balancer.cc" "src/CMakeFiles/pmig.dir/apps/load_balancer.cc.o" "gcc" "src/CMakeFiles/pmig.dir/apps/load_balancer.cc.o.d"
  "/root/repo/src/apps/night_shift.cc" "src/CMakeFiles/pmig.dir/apps/night_shift.cc.o" "gcc" "src/CMakeFiles/pmig.dir/apps/night_shift.cc.o.d"
  "/root/repo/src/cluster/cluster.cc" "src/CMakeFiles/pmig.dir/cluster/cluster.cc.o" "gcc" "src/CMakeFiles/pmig.dir/cluster/cluster.cc.o.d"
  "/root/repo/src/core/dump_format.cc" "src/CMakeFiles/pmig.dir/core/dump_format.cc.o" "gcc" "src/CMakeFiles/pmig.dir/core/dump_format.cc.o.d"
  "/root/repo/src/core/precopy.cc" "src/CMakeFiles/pmig.dir/core/precopy.cc.o" "gcc" "src/CMakeFiles/pmig.dir/core/precopy.cc.o.d"
  "/root/repo/src/core/rest_proc.cc" "src/CMakeFiles/pmig.dir/core/rest_proc.cc.o" "gcc" "src/CMakeFiles/pmig.dir/core/rest_proc.cc.o.d"
  "/root/repo/src/core/setup.cc" "src/CMakeFiles/pmig.dir/core/setup.cc.o" "gcc" "src/CMakeFiles/pmig.dir/core/setup.cc.o.d"
  "/root/repo/src/core/shell.cc" "src/CMakeFiles/pmig.dir/core/shell.cc.o" "gcc" "src/CMakeFiles/pmig.dir/core/shell.cc.o.d"
  "/root/repo/src/core/sigdump.cc" "src/CMakeFiles/pmig.dir/core/sigdump.cc.o" "gcc" "src/CMakeFiles/pmig.dir/core/sigdump.cc.o.d"
  "/root/repo/src/core/test_programs.cc" "src/CMakeFiles/pmig.dir/core/test_programs.cc.o" "gcc" "src/CMakeFiles/pmig.dir/core/test_programs.cc.o.d"
  "/root/repo/src/core/tools.cc" "src/CMakeFiles/pmig.dir/core/tools.cc.o" "gcc" "src/CMakeFiles/pmig.dir/core/tools.cc.o.d"
  "/root/repo/src/kernel/core_file.cc" "src/CMakeFiles/pmig.dir/kernel/core_file.cc.o" "gcc" "src/CMakeFiles/pmig.dir/kernel/core_file.cc.o.d"
  "/root/repo/src/kernel/kernel.cc" "src/CMakeFiles/pmig.dir/kernel/kernel.cc.o" "gcc" "src/CMakeFiles/pmig.dir/kernel/kernel.cc.o.d"
  "/root/repo/src/kernel/native.cc" "src/CMakeFiles/pmig.dir/kernel/native.cc.o" "gcc" "src/CMakeFiles/pmig.dir/kernel/native.cc.o.d"
  "/root/repo/src/kernel/signals.cc" "src/CMakeFiles/pmig.dir/kernel/signals.cc.o" "gcc" "src/CMakeFiles/pmig.dir/kernel/signals.cc.o.d"
  "/root/repo/src/kernel/syscalls.cc" "src/CMakeFiles/pmig.dir/kernel/syscalls.cc.o" "gcc" "src/CMakeFiles/pmig.dir/kernel/syscalls.cc.o.d"
  "/root/repo/src/kernel/tty.cc" "src/CMakeFiles/pmig.dir/kernel/tty.cc.o" "gcc" "src/CMakeFiles/pmig.dir/kernel/tty.cc.o.d"
  "/root/repo/src/net/migration_daemon.cc" "src/CMakeFiles/pmig.dir/net/migration_daemon.cc.o" "gcc" "src/CMakeFiles/pmig.dir/net/migration_daemon.cc.o.d"
  "/root/repo/src/net/network.cc" "src/CMakeFiles/pmig.dir/net/network.cc.o" "gcc" "src/CMakeFiles/pmig.dir/net/network.cc.o.d"
  "/root/repo/src/net/rsh.cc" "src/CMakeFiles/pmig.dir/net/rsh.cc.o" "gcc" "src/CMakeFiles/pmig.dir/net/rsh.cc.o.d"
  "/root/repo/src/sim/clock.cc" "src/CMakeFiles/pmig.dir/sim/clock.cc.o" "gcc" "src/CMakeFiles/pmig.dir/sim/clock.cc.o.d"
  "/root/repo/src/sim/cost_model.cc" "src/CMakeFiles/pmig.dir/sim/cost_model.cc.o" "gcc" "src/CMakeFiles/pmig.dir/sim/cost_model.cc.o.d"
  "/root/repo/src/sim/result.cc" "src/CMakeFiles/pmig.dir/sim/result.cc.o" "gcc" "src/CMakeFiles/pmig.dir/sim/result.cc.o.d"
  "/root/repo/src/sim/rng.cc" "src/CMakeFiles/pmig.dir/sim/rng.cc.o" "gcc" "src/CMakeFiles/pmig.dir/sim/rng.cc.o.d"
  "/root/repo/src/sim/trace.cc" "src/CMakeFiles/pmig.dir/sim/trace.cc.o" "gcc" "src/CMakeFiles/pmig.dir/sim/trace.cc.o.d"
  "/root/repo/src/vfs/filesystem.cc" "src/CMakeFiles/pmig.dir/vfs/filesystem.cc.o" "gcc" "src/CMakeFiles/pmig.dir/vfs/filesystem.cc.o.d"
  "/root/repo/src/vfs/inode.cc" "src/CMakeFiles/pmig.dir/vfs/inode.cc.o" "gcc" "src/CMakeFiles/pmig.dir/vfs/inode.cc.o.d"
  "/root/repo/src/vfs/path.cc" "src/CMakeFiles/pmig.dir/vfs/path.cc.o" "gcc" "src/CMakeFiles/pmig.dir/vfs/path.cc.o.d"
  "/root/repo/src/vfs/vfs.cc" "src/CMakeFiles/pmig.dir/vfs/vfs.cc.o" "gcc" "src/CMakeFiles/pmig.dir/vfs/vfs.cc.o.d"
  "/root/repo/src/vm/aout.cc" "src/CMakeFiles/pmig.dir/vm/aout.cc.o" "gcc" "src/CMakeFiles/pmig.dir/vm/aout.cc.o.d"
  "/root/repo/src/vm/assembler.cc" "src/CMakeFiles/pmig.dir/vm/assembler.cc.o" "gcc" "src/CMakeFiles/pmig.dir/vm/assembler.cc.o.d"
  "/root/repo/src/vm/cpu.cc" "src/CMakeFiles/pmig.dir/vm/cpu.cc.o" "gcc" "src/CMakeFiles/pmig.dir/vm/cpu.cc.o.d"
  "/root/repo/src/vm/disassembler.cc" "src/CMakeFiles/pmig.dir/vm/disassembler.cc.o" "gcc" "src/CMakeFiles/pmig.dir/vm/disassembler.cc.o.d"
  "/root/repo/src/vm/isa.cc" "src/CMakeFiles/pmig.dir/vm/isa.cc.o" "gcc" "src/CMakeFiles/pmig.dir/vm/isa.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
