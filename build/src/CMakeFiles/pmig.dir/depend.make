# Empty dependencies file for pmig.
# This may be replaced when dependencies are built.
