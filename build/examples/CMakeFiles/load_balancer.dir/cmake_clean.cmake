file(REMOVE_RECURSE
  "CMakeFiles/load_balancer.dir/load_balancer.cpp.o"
  "CMakeFiles/load_balancer.dir/load_balancer.cpp.o.d"
  "load_balancer"
  "load_balancer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/load_balancer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
