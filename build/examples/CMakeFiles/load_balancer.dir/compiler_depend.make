# Empty compiler generated dependencies file for load_balancer.
# This may be replaced when dependencies are built.
