file(REMOVE_RECURSE
  "CMakeFiles/pmigsim.dir/pmigsim.cpp.o"
  "CMakeFiles/pmigsim.dir/pmigsim.cpp.o.d"
  "pmigsim"
  "pmigsim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pmigsim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
