# Empty dependencies file for pmigsim.
# This may be replaced when dependencies are built.
