file(REMOVE_RECURSE
  "CMakeFiles/visual_editor_migration.dir/visual_editor_migration.cpp.o"
  "CMakeFiles/visual_editor_migration.dir/visual_editor_migration.cpp.o.d"
  "visual_editor_migration"
  "visual_editor_migration.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/visual_editor_migration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
