# Empty dependencies file for visual_editor_migration.
# This may be replaced when dependencies are built.
