# Empty compiler generated dependencies file for night_shift.
# This may be replaced when dependencies are built.
