file(REMOVE_RECURSE
  "CMakeFiles/night_shift.dir/night_shift.cpp.o"
  "CMakeFiles/night_shift.dir/night_shift.cpp.o.d"
  "night_shift"
  "night_shift.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/night_shift.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
