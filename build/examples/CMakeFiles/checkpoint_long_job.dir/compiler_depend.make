# Empty compiler generated dependencies file for checkpoint_long_job.
# This may be replaced when dependencies are built.
