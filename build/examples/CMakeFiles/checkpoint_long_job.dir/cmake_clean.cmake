file(REMOVE_RECURSE
  "CMakeFiles/checkpoint_long_job.dir/checkpoint_long_job.cpp.o"
  "CMakeFiles/checkpoint_long_job.dir/checkpoint_long_job.cpp.o.d"
  "checkpoint_long_job"
  "checkpoint_long_job.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/checkpoint_long_job.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
