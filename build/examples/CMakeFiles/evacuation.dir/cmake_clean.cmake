file(REMOVE_RECURSE
  "CMakeFiles/evacuation.dir/evacuation.cpp.o"
  "CMakeFiles/evacuation.dir/evacuation.cpp.o.d"
  "evacuation"
  "evacuation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/evacuation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
