# Empty compiler generated dependencies file for evacuation.
# This may be replaced when dependencies are built.
