#include "src/apps/checkpoint.h"

#include "src/core/dump_format.h"
#include "src/core/tools.h"
#include "src/sim/bytes.h"
#include "src/sim/hash.h"
#include "src/vm/abi.h"

namespace pmig::apps {

namespace {

using core::DumpPaths;
using core::FilesEntry;
using core::FilesFile;
using vm::abi::OpenFlags;

constexpr uint32_t kMetaMagic = 0777;    // v1: per-slot saved bit only
constexpr uint32_t kMetaMagicV2 = 0776;  // v2: per-slot {state, hash, source}

// Where a checkpointed open file's copy lives. State 1 = this checkpoint wrote
// the copy (at `source` == its own index); state 2 = content was identical to an
// earlier checkpoint's copy, so `source` names the checkpoint that holds it.
struct SlotRecord {
  uint8_t state = 0;  // 0 unused, 1 saved, 2 reused
  uint64_t hash = 0;
  int32_t source = 0;
};
using SlotArray = std::array<SlotRecord, kernel::kNoFile>;

Result<std::string> ReadWholeFile(kernel::SyscallApi& api, const std::string& path) {
  PMIG_TRY(int fd, api.Open(path, OpenFlags::kORdOnly));
  const Result<std::string> bytes = api.ReadAll(fd);
  const Status closed = api.Close(fd);
  (void)closed;
  if (!bytes.ok()) return bytes.error();
  return *bytes;
}

Status WriteWholeFile(kernel::SyscallApi& api, const std::string& path,
                      const std::string& contents, uint16_t mode = 0600) {
  PMIG_TRY(int fd, api.Creat(path, mode));
  const Result<int64_t> n = api.Write(fd, contents);
  const Status closed = api.Close(fd);
  (void)closed;
  if (!n.ok()) return n.error();
  return Status::Ok();
}

Status CopyFile(kernel::SyscallApi& api, const std::string& src, const std::string& dst,
                uint16_t mode = 0600) {
  PMIG_TRY(std::string bytes, ReadWholeFile(api, src));
  return WriteWholeFile(api, dst, bytes, mode);
}

std::string CkptName(const std::string& dir, int index, const std::string& what) {
  return dir + "/" + std::to_string(index) + "." + what;
}

// Parses <dir>/<index>.meta in either format. v1 (0777) carried one saved bit per
// slot; v2 (0776) records content hashes and where each copy actually lives.
Result<SlotArray> LoadMeta(kernel::SyscallApi& api, const std::string& dir, int index,
                           int32_t* pid_out) {
  PMIG_TRY(std::string meta_bytes, ReadWholeFile(api, CkptName(dir, index, "meta")));
  sim::ByteReader meta(meta_bytes);
  const uint32_t magic = meta.U32();
  if (magic != kMetaMagic && magic != kMetaMagicV2) return Errno::kNoExec;
  const int32_t pid = meta.I32();
  SlotArray slots{};
  for (int i = 0; i < kernel::kNoFile; ++i) {
    SlotRecord& rec = slots[static_cast<size_t>(i)];
    if (magic == kMetaMagic) {
      rec.state = meta.U8() != 0 ? 1 : 0;
      rec.source = index;
    } else {
      rec.state = meta.U8();
      rec.hash = meta.U64();
      rec.source = meta.I32();
    }
  }
  if (!meta.ok()) return Errno::kNoExec;
  if (pid_out != nullptr) *pid_out = pid;
  return slots;
}

// Archives the content-addressed segment blobs an incremental dump references
// (its text, and its delta base) from /var/segcache into <dir>/seg.<hex>, so the
// checkpoint directory can be restored even after the cache is purged. Blobs are
// immutable and shared across checkpoints, so an existing copy is kept as-is.
Status ArchiveSegments(kernel::SyscallApi& api, const std::string& aout_bytes,
                       const std::string& dir) {
  if (!core::IsIncrAout(aout_bytes)) return Status::Ok();
  PMIG_TRY(core::IncrAout incr, core::IncrAout::Parse(aout_bytes));
  std::vector<uint64_t> digests = {incr.text_digest};
  if (incr.encoding == core::IncrAout::DataEncoding::kDelta) {
    digests.push_back(incr.base_digest);
  }
  for (uint64_t digest : digests) {
    const std::string dst = dir + "/seg." + sim::HexDigest(digest);
    if (api.Stat(dst).ok()) continue;
    PMIG_RETURN_IF_ERROR(CopyFile(api, core::SegCachePath(digest), dst));
  }
  return Status::Ok();
}

// The inverse: puts archived segment blobs back into /var/segcache so restart can
// reconstruct the incremental dump. Blobs already cached locally are left alone.
Status RestoreSegments(kernel::SyscallApi& api, const std::string& aout_bytes,
                       const std::string& dir) {
  if (!core::IsIncrAout(aout_bytes)) return Status::Ok();
  PMIG_TRY(core::IncrAout incr, core::IncrAout::Parse(aout_bytes));
  std::vector<uint64_t> digests = {incr.text_digest};
  if (incr.encoding == core::IncrAout::DataEncoding::kDelta) {
    digests.push_back(incr.base_digest);
  }
  for (uint64_t digest : digests) {
    const std::string cached = core::SegCachePath(digest);
    if (api.Stat(cached).ok()) continue;
    PMIG_RETURN_IF_ERROR(CopyFile(api, dir + "/seg." + sim::HexDigest(digest), cached, 0644));
  }
  return Status::Ok();
}

// Restarts the locally staged dump for `pid` and reports the restarted process's
// new pid (restart is overlaid by the program it restores).
Result<int32_t> RestartStagedDump(kernel::SyscallApi& api, int32_t pid) {
  PMIG_TRY(int32_t child,
           api.SpawnProgram("restart", {"-p", std::to_string(pid)}));
  PMIG_TRY(kernel::WaitResult wr, api.Wait());
  if (!wr.overlaid) return Errno::kNoExec;  // restart failed and exited
  (void)child;
  return wr.pid;
}

}  // namespace

Result<CheckpointResult> TakeCheckpoint(kernel::SyscallApi& api, int32_t pid,
                                        const std::string& dir, int index,
                                        bool incremental) {
  // Checkpointing runs under a distributed trace too: the checkpointer mints
  // an id on its first checkpoint and every dump span joins it.
  kernel::Proc& self = api.proc();
  if (self.trace_id == 0 && api.kernel().spans() != nullptr) {
    self.trace_id = api.kernel().spans()->MintTraceId();
  }
  if (core::Dumpproc(api, pid, /*tx=*/false, incremental) != 0) return Errno::kSrch;
  const DumpPaths paths = DumpPaths::For(pid);

  PMIG_TRY(std::string files_bytes, ReadWholeFile(api, paths.files));
  PMIG_TRY(FilesFile files, FilesFile::Parse(files_bytes));

  // The previous checkpoint's manifest, if any: open files whose content has not
  // changed since then are recorded as reuses instead of being copied again.
  SlotArray prev{};
  if (index > 0) {
    const Result<SlotArray> loaded = LoadMeta(api, dir, index - 1, nullptr);
    if (loaded.ok()) prev = *loaded;
  }

  // Copy every open regular file so the checkpoint sees consistent file state
  // even if the live files change afterwards — except files bit-identical to the
  // previous checkpoint's copy, which only get a manifest entry.
  SlotArray slots{};
  for (int i = 0; i < kernel::kNoFile; ++i) {
    const FilesEntry& entry = files.entries[static_cast<size_t>(i)];
    if (entry.kind != FilesEntry::Kind::kFile) continue;
    const Result<kernel::StatInfo> info = api.Stat(entry.path);
    if (!info.ok() || info->type != vfs::InodeType::kRegular) continue;
    const Result<std::string> bytes = ReadWholeFile(api, entry.path);
    if (!bytes.ok()) continue;
    const uint64_t hash = sim::HashBytes(*bytes);
    SlotRecord& rec = slots[static_cast<size_t>(i)];
    const SlotRecord& was = prev[static_cast<size_t>(i)];
    if (was.state != 0 && was.hash == hash) {
      // FNV-1a equality is a hint, not proof of identity (see hash.h), and the
      // restore-time digest cannot catch a collision either (colliding contents
      // hash alike by definition). Confirm against the prior copy's bytes.
      const Result<std::string> prior =
          ReadWholeFile(api, CkptName(dir, was.source, "open" + std::to_string(i)));
      if (prior.ok() && *prior == *bytes) {
        rec = {2, hash, was.source};
        continue;
      }
    }
    if (WriteWholeFile(api, CkptName(dir, index, "open" + std::to_string(i)), *bytes).ok()) {
      rec = {1, hash, index};
    }
  }

  // Move the three dump files into the managed directory (as copies, since the
  // staged originals are still needed to restart the process right away).
  PMIG_RETURN_IF_ERROR(WriteWholeFile(api, CkptName(dir, index, "files"), files_bytes));
  PMIG_TRY(std::string aout_bytes, ReadWholeFile(api, paths.aout));
  PMIG_RETURN_IF_ERROR(WriteWholeFile(api, CkptName(dir, index, "aout"), aout_bytes));
  PMIG_TRY(std::string stack_bytes, ReadWholeFile(api, paths.stack));
  PMIG_RETURN_IF_ERROR(WriteWholeFile(api, CkptName(dir, index, "stack"), stack_bytes));
  PMIG_RETURN_IF_ERROR(ArchiveSegments(api, aout_bytes, dir));

  sim::ByteWriter meta;
  meta.U32(kMetaMagicV2);
  meta.I32(pid);
  for (int i = 0; i < kernel::kNoFile; ++i) {
    const SlotRecord& rec = slots[static_cast<size_t>(i)];
    meta.U8(rec.state);
    meta.U64(rec.hash);
    meta.I32(rec.source);
  }
  PMIG_RETURN_IF_ERROR(WriteWholeFile(api, CkptName(dir, index, "meta"), meta.Take()));

  // The snapshot killed the process; bring it back on this machine.
  PMIG_TRY(int32_t new_pid, RestartStagedDump(api, pid));

  // Tidy the staging area.
  for (const std::string& p : {paths.aout, paths.files, paths.stack}) {
    const Status st = api.Unlink(p);
    (void)st;
  }
  CheckpointResult result;
  result.new_pid = new_pid;
  return result;
}

Result<int32_t> RestoreCheckpoint(kernel::SyscallApi& api, const std::string& dir, int index) {
  int32_t pid = 0;
  PMIG_TRY(SlotArray slots, LoadMeta(api, dir, index, &pid));

  PMIG_TRY(std::string files_bytes, ReadWholeFile(api, CkptName(dir, index, "files")));
  PMIG_TRY(FilesFile files, FilesFile::Parse(files_bytes));

  // Put the saved open-file copies back so the restored program sees the file
  // state as of the checkpoint. A reused slot's copy lives in the checkpoint that
  // originally wrote it.
  for (int i = 0; i < kernel::kNoFile; ++i) {
    const SlotRecord& rec = slots[static_cast<size_t>(i)];
    if (rec.state == 0) continue;
    const FilesEntry& entry = files.entries[static_cast<size_t>(i)];
    PMIG_RETURN_IF_ERROR(
        CopyFile(api, CkptName(dir, rec.source, "open" + std::to_string(i)), entry.path));
  }

  // Re-stage the dump files under the original pid and restart. A root-driven
  // restore stages them world-readable: restart drops to the owner's uid before
  // rest_proc() reads them. An incremental dump's segment blobs go back into
  // /var/segcache first so rest_proc() can reconstruct the image.
  const DumpPaths paths = DumpPaths::For(pid);
  PMIG_TRY(std::string aout_bytes, ReadWholeFile(api, CkptName(dir, index, "aout")));
  PMIG_RETURN_IF_ERROR(RestoreSegments(api, aout_bytes, dir));
  PMIG_RETURN_IF_ERROR(WriteWholeFile(api, paths.aout, aout_bytes, 0644));
  PMIG_RETURN_IF_ERROR(WriteWholeFile(api, paths.files, files_bytes, 0644));
  PMIG_RETURN_IF_ERROR(CopyFile(api, CkptName(dir, index, "stack"), paths.stack, 0644));
  return RestartStagedDump(api, pid);
}

int CheckpointDaemon(kernel::SyscallApi& api, const CheckpointdOptions& options) {
  int32_t current = options.pid;
  int taken = 0;
  for (int i = 0; i < options.count; ++i) {
    api.Sleep(options.interval);
    const Result<CheckpointResult> r =
        TakeCheckpoint(api, current, options.dir, i, options.incremental);
    if (!r.ok()) break;  // target exited (or checkpointing failed): stop
    current = r->new_pid;
    ++taken;
  }
  return taken;
}

}  // namespace pmig::apps
