#include "src/apps/checkpoint.h"

#include "src/core/dump_format.h"
#include "src/core/tools.h"
#include "src/sim/bytes.h"
#include "src/vm/abi.h"

namespace pmig::apps {

namespace {

using core::DumpPaths;
using core::FilesEntry;
using core::FilesFile;
using vm::abi::OpenFlags;

constexpr uint32_t kMetaMagic = 0777;

Result<std::string> ReadWholeFile(kernel::SyscallApi& api, const std::string& path) {
  PMIG_TRY(int fd, api.Open(path, OpenFlags::kORdOnly));
  const Result<std::string> bytes = api.ReadAll(fd);
  const Status closed = api.Close(fd);
  (void)closed;
  if (!bytes.ok()) return bytes.error();
  return *bytes;
}

Status WriteWholeFile(kernel::SyscallApi& api, const std::string& path,
                      const std::string& contents, uint16_t mode = 0600) {
  PMIG_TRY(int fd, api.Creat(path, mode));
  const Result<int64_t> n = api.Write(fd, contents);
  const Status closed = api.Close(fd);
  (void)closed;
  if (!n.ok()) return n.error();
  return Status::Ok();
}

Status CopyFile(kernel::SyscallApi& api, const std::string& src, const std::string& dst,
                uint16_t mode = 0600) {
  PMIG_TRY(std::string bytes, ReadWholeFile(api, src));
  return WriteWholeFile(api, dst, bytes, mode);
}

std::string CkptName(const std::string& dir, int index, const std::string& what) {
  return dir + "/" + std::to_string(index) + "." + what;
}

// Restarts the locally staged dump for `pid` and reports the restarted process's
// new pid (restart is overlaid by the program it restores).
Result<int32_t> RestartStagedDump(kernel::SyscallApi& api, int32_t pid) {
  PMIG_TRY(int32_t child,
           api.SpawnProgram("restart", {"-p", std::to_string(pid)}));
  PMIG_TRY(kernel::WaitResult wr, api.Wait());
  if (!wr.overlaid) return Errno::kNoExec;  // restart failed and exited
  (void)child;
  return wr.pid;
}

}  // namespace

Result<CheckpointResult> TakeCheckpoint(kernel::SyscallApi& api, int32_t pid,
                                        const std::string& dir, int index) {
  if (core::Dumpproc(api, pid) != 0) return Errno::kSrch;
  const DumpPaths paths = DumpPaths::For(pid);

  PMIG_TRY(std::string files_bytes, ReadWholeFile(api, paths.files));
  PMIG_TRY(FilesFile files, FilesFile::Parse(files_bytes));

  // Copy every open regular file so the checkpoint sees consistent file state
  // even if the live files change afterwards.
  std::array<bool, kernel::kNoFile> saved{};
  for (int i = 0; i < kernel::kNoFile; ++i) {
    const FilesEntry& entry = files.entries[static_cast<size_t>(i)];
    if (entry.kind != FilesEntry::Kind::kFile) continue;
    const Result<kernel::StatInfo> info = api.Stat(entry.path);
    if (!info.ok() || info->type != vfs::InodeType::kRegular) continue;
    if (CopyFile(api, entry.path, CkptName(dir, index, "open" + std::to_string(i))).ok()) {
      saved[static_cast<size_t>(i)] = true;
    }
  }

  // Move the three dump files into the managed directory (as copies, since the
  // staged originals are still needed to restart the process right away).
  PMIG_RETURN_IF_ERROR(WriteWholeFile(api, CkptName(dir, index, "files"), files_bytes));
  PMIG_TRY(std::string aout_bytes, ReadWholeFile(api, paths.aout));
  PMIG_RETURN_IF_ERROR(WriteWholeFile(api, CkptName(dir, index, "aout"), aout_bytes));
  PMIG_TRY(std::string stack_bytes, ReadWholeFile(api, paths.stack));
  PMIG_RETURN_IF_ERROR(WriteWholeFile(api, CkptName(dir, index, "stack"), stack_bytes));

  sim::ByteWriter meta;
  meta.U32(kMetaMagic);
  meta.I32(pid);
  for (int i = 0; i < kernel::kNoFile; ++i) meta.U8(saved[static_cast<size_t>(i)] ? 1 : 0);
  PMIG_RETURN_IF_ERROR(WriteWholeFile(api, CkptName(dir, index, "meta"), meta.Take()));

  // The snapshot killed the process; bring it back on this machine.
  PMIG_TRY(int32_t new_pid, RestartStagedDump(api, pid));

  // Tidy the staging area.
  for (const std::string& p : {paths.aout, paths.files, paths.stack}) {
    const Status st = api.Unlink(p);
    (void)st;
  }
  CheckpointResult result;
  result.new_pid = new_pid;
  return result;
}

Result<int32_t> RestoreCheckpoint(kernel::SyscallApi& api, const std::string& dir, int index) {
  PMIG_TRY(std::string meta_bytes, ReadWholeFile(api, CkptName(dir, index, "meta")));
  sim::ByteReader meta(meta_bytes);
  if (meta.U32() != kMetaMagic) return Errno::kNoExec;
  const int32_t pid = meta.I32();
  std::array<bool, kernel::kNoFile> saved{};
  for (int i = 0; i < kernel::kNoFile; ++i) saved[static_cast<size_t>(i)] = meta.U8() != 0;
  if (!meta.ok()) return Errno::kNoExec;

  PMIG_TRY(std::string files_bytes, ReadWholeFile(api, CkptName(dir, index, "files")));
  PMIG_TRY(FilesFile files, FilesFile::Parse(files_bytes));

  // Put the saved open-file copies back so the restored program sees the file
  // state as of the checkpoint.
  for (int i = 0; i < kernel::kNoFile; ++i) {
    if (!saved[static_cast<size_t>(i)]) continue;
    const FilesEntry& entry = files.entries[static_cast<size_t>(i)];
    PMIG_RETURN_IF_ERROR(
        CopyFile(api, CkptName(dir, index, "open" + std::to_string(i)), entry.path));
  }

  // Re-stage the dump files under the original pid and restart. A root-driven
  // restore stages them world-readable: restart drops to the owner's uid before
  // rest_proc() reads them.
  const DumpPaths paths = DumpPaths::For(pid);
  PMIG_RETURN_IF_ERROR(CopyFile(api, CkptName(dir, index, "aout"), paths.aout, 0644));
  PMIG_RETURN_IF_ERROR(WriteWholeFile(api, paths.files, files_bytes, 0644));
  PMIG_RETURN_IF_ERROR(CopyFile(api, CkptName(dir, index, "stack"), paths.stack, 0644));
  return RestartStagedDump(api, pid);
}

int CheckpointDaemon(kernel::SyscallApi& api, const CheckpointdOptions& options) {
  int32_t current = options.pid;
  int taken = 0;
  for (int i = 0; i < options.count; ++i) {
    api.Sleep(options.interval);
    const Result<CheckpointResult> r = TakeCheckpoint(api, current, options.dir, i);
    if (!r.ok()) break;  // target exited (or checkpointing failed): stop
    current = r->new_pid;
    ++taken;
  }
  return taken;
}

}  // namespace pmig::apps
