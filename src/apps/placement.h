// The placement engine: where should a migrating process land?
//
// The paper's Section 8 applications (load balancing, evacuation, night-shift
// batch spreading) all end with "pick a target host" — and picking well needs
// more than the run-queue length. The engine scores candidates from signals the
// cluster already produces:
//
//   liveness  — Kernel::down(): a crashed machine is never a target, full stop.
//   load      — the sched.runnable_vm gauge (ListProcs fallback), as before.
//   cost      — bytes the migration would actually put on the wire: a target
//               whose /var/segcache already holds the process's text and delta
//               base receives only the dirty pages (the PR-3 incremental path),
//               so it is measurably cheaper than a cold one. Per-pair
//               net.bytes.<a>-><b> history breaks remaining ties toward
//               established paths.
//   faults    — the cluster FaultHistory: decayed weight of recent migration
//               failures against each host (EHOSTUNREACH counting double), fed
//               by every migrate leg. Decay means a recovered host re-qualifies
//               after a quiet interval.
//
// Policies pick which signals rank: kLoadOnly reproduces the pre-engine
// balancer decision-for-decision (liveness aside — nothing is down in a
// fault-free run), kCostAware prefers warm caches among equal loads,
// kFaultAware refuses recently-failing hosts, kCombined does both.
//
// Reading signals is a survey, like SurveyLoad: it consumes no virtual time and
// draws no RNG, so placement is deterministic and replay-stable.

#ifndef PMIG_SRC_APPS_PLACEMENT_H_
#define PMIG_SRC_APPS_PLACEMENT_H_

#include <string>
#include <string_view>
#include <vector>

#include "src/kernel/kernel.h"
#include "src/net/network.h"

namespace pmig::apps {

class ClusterIndex;

enum class PlacementPolicy {
  kLoadOnly,    // the historical behaviour: least-loaded live host
  kCostAware,   // least-loaded, then fewest estimated bytes on the wire
  kFaultAware,  // least-loaded among hosts below the fault-score threshold
  kCombined,    // fault filter + load + cost
};

std::string_view PlacementPolicyName(PlacementPolicy policy);

struct PlacementQuery {
  std::string from_host;  // the source; never a candidate
  // The process being placed (on from_host). -1 disables the cost signal
  // (est_bytes reports 0 for every candidate).
  int32_t pid = -1;
  // kFaultAware/kCombined: hosts whose decayed fault score is at or above this
  // are excluded outright.
  double fault_threshold = 0.5;
  // kFaultAware/kCombined: hosts whose HealthMonitor score (anomalous series,
  // firing burn alerts) is at or above this are excluded too — a host can be
  // demoted for *looking* sick before any migrate against it has failed. The
  // default demotes on any active signal; 0 scores (healthy, or monitor off)
  // never exclude.
  double health_threshold = 1.0;
  // Load = every live VM process instead of just the runnable ones. Back-to-back
  // placements (evacuation) want this: a just-restarted process sits briefly off
  // the run queue, and counting occupancy keeps consecutive picks from stacking
  // onto the same host. The balancer keeps the classic run-queue signal.
  bool occupancy = false;
  // Hosts to leave out entirely — a coordinator that failed to win a target's
  // placement lease re-picks with the loser added here, so lease contention
  // spreads the herd instead of deadlocking it.
  std::vector<std::string> exclude;
  // Incrementally maintained placement state (see cluster_index.h). When set,
  // loads come from the index's entries and PickTarget walks its maintained
  // (load, network-order) rank instead of re-surveying every host — zero
  // survey messages per decision. Null (the default) keeps the full scan.
  const ClusterIndex* index = nullptr;
  // When non-empty, candidates this host cannot currently reach
  // (net::Network::Reachable) are filtered out before scoring — no migrate leg
  // is ever aimed across a partition. Reachability is a free read, but the
  // filter changes decisions, so it is opt-in; empty keeps the historical
  // behaviour (the doomed leg fails fast and the coordinator re-picks).
  std::string reachable_from;
  // Audit label for the decision log: who is asking ("balancer",
  // "night-shift", "evacuation", "reaper"). Recorded verbatim; never read by
  // the pick itself.
  std::string context;
  // The reason recorded against `exclude` hosts in the decision log. Every
  // current excluder is a lease re-pick loop, hence the default; a future
  // caller excluding for another reason labels it here.
  std::string exclude_reason = "lease-contended";
};

// One candidate's signals, in network host order.
struct CandidateScore {
  std::string host;
  int load = 0;             // runnable VM processes (HostLoad)
  int64_t est_bytes = 0;    // estimated dump payload the wire would carry
  int64_t wire_history = 0; // net.bytes between from_host and this host, both ways
  // Observed restart latency on this host: the p50 of its migration.restart_ns
  // histogram (0 with metrics off or no restarts yet). A host that has been
  // restarting processes slowly — cold caches, slow disk under the cost model —
  // loses ties to one with a faster record.
  sim::Nanos est_restart_ns = 0;
  double fault_score = 0;   // decayed failure weight (0 when no history exists)
  bool fault_excluded = false;  // over the threshold under this policy
  // HealthMonitor penalty: anomalous series and firing SLO burn alerts against
  // this host (0 when the monitor is off or the host looks healthy).
  double health_score = 0;
  bool health_excluded = false;
};

class PlacementEngine {
 public:
  explicit PlacementEngine(net::Network* net,
                           PlacementPolicy policy = PlacementPolicy::kLoadOnly)
      : net_(net), policy_(policy) {}

  PlacementPolicy policy() const { return policy_; }

  // A host this policy would consider at all: powered on, and (for the
  // fault-aware policies) below both the fault-score and health-score
  // thresholds.
  bool Eligible(const kernel::Kernel& host, double fault_threshold = 0.5,
                double health_threshold = 1.0) const;

  // Every live candidate except from_host, in network order, signals filled.
  std::vector<CandidateScore> Score(const PlacementQuery& query) const;

  // The best candidate under the policy, or "" when none qualifies. Ties break
  // toward the earliest host in network order — which is exactly what the
  // pre-engine min_element scan did, so kLoadOnly is decision-identical. With
  // query.index set this walks the maintained rank: the minimal-load eligible
  // group is found without surveying anyone, and only that group is scored for
  // the policy's secondary signals. On a fresh index the answer is identical
  // to the full scan (same loads, same tie-break order).
  std::string PickTarget(const PlacementQuery& query) const;

  // Places a whole batch with one survey (or the index view) and
  // occupancy-style lookahead: each pick bumps its target's working load so
  // consecutive victims spread instead of stacking — the evacuation trick,
  // without evacuation's per-process re-survey. Returns one target per pid
  // ("" where nothing qualified). query.pid is ignored; each pid supplies its
  // own cost signal under the cost-aware policies.
  std::vector<std::string> PlaceBatch(const PlacementQuery& query,
                                      const std::vector<int32_t>& pids) const;

 private:
  bool UsesFaultSignal() const {
    return policy_ == PlacementPolicy::kFaultAware ||
           policy_ == PlacementPolicy::kCombined;
  }
  bool UsesCostSignal() const {
    return policy_ == PlacementPolicy::kCostAware ||
           policy_ == PlacementPolicy::kCombined;
  }
  // True when `better` should displace `incumbent` under this policy
  // (strictly — equal candidates keep the incumbent, preserving host order).
  bool Beats(const CandidateScore& better, const CandidateScore& incumbent) const;

  bool PassesQueryFilters(const PlacementQuery& query, std::string_view host) const;
  void FillSignals(const PlacementQuery& query, kernel::Kernel* from,
                   kernel::Kernel& host, CandidateScore* s) const;
  std::vector<CandidateScore> ScoreFromIndex(const PlacementQuery& query) const;
  std::string PickFromIndex(const PlacementQuery& query) const;
  // Decision-log recording (no-op unless the network carries an armed
  // apps::DecisionLog). Builds the audit record — candidates, exclusions with
  // reasons, runner-up, margin factor — from `scores` and free reads only, so
  // an armed log never perturbs the run it is observing.
  void RecordDecision(const PlacementQuery& query, bool from_index,
                      const std::vector<CandidateScore>& scores,
                      const std::string& chosen) const;

  net::Network* net_;
  PlacementPolicy policy_;
};

// One host's runnable VM-process count (its "load"). When the host's metrics
// are enabled this reads the scheduler's sched.runnable_vm gauge — the real
// per-host statistics a load daemon would export — and otherwise falls back to
// scanning the process table directly.
int HostLoad(kernel::Kernel& host);

// One host's occupancy load: every live VM process, runnable or not (see
// PlacementQuery::occupancy).
int HostOccupancy(kernel::Kernel& host);

// Per-host runnable VM-process count as a load daemon would report. Crashed
// (down) machines are not surveyed: a dead host reports nothing, rather than a
// load of zero that would make it everyone's favourite target.
std::vector<std::pair<std::string, int>> SurveyLoad(net::Network& net);

// Books one survey message against the surveyed host (`placement.survey_msgs`
// in its registry, so Cluster::AggregateMetrics sums the cluster-wide total).
// Every placement-driven read of a host's run queue / process table charges
// one — the cost the ClusterIndex exists to avoid. Pure observation: no
// virtual time, so counting never perturbs a run.
void NoteSurveyMessage(kernel::Kernel& surveyed);

}  // namespace pmig::apps

#endif  // PMIG_SRC_APPS_PLACEMENT_H_
