// Load balancing (Section 8, second application).
//
// "CPU bound jobs can be moved from busy nodes of the network to others that are
// idle... Candidates for migration can be best selected from the processes that
// have been running for more than a certain amount of time. This will ensure that
// there is a high probability that the candidate program will keep running for
// some time, and that it is worth paying the overhead of moving it."
//
// The balancer is a native program on one machine. It surveys per-host load the
// way rwhod/load daemons would (reading each kernel's run queue), picks the oldest
// eligible CPU-bound process on the busiest machine, and migrates it to the idlest
// one. As the paper notes, migrate-over-rsh "may be too slow in terms of real time
// response" for this use — so the balancer defaults to the migration daemon.

#ifndef PMIG_SRC_APPS_LOAD_BALANCER_H_
#define PMIG_SRC_APPS_LOAD_BALANCER_H_

#include <string>
#include <vector>

#include "src/kernel/kernel.h"
#include "src/net/network.h"

namespace pmig::apps {

struct LoadBalancerOptions {
  sim::Nanos poll_interval = sim::Seconds(5);
  // Minimum runtime before a process is worth moving.
  sim::Nanos min_age = sim::Seconds(5);
  // Migrate only when busiest - idlest runnable count is at least this.
  int imbalance_threshold = 2;
  bool use_daemon = true;  // rsh is too slow for load balancing (Section 8)
  int max_rounds = 100;    // survey rounds before giving up
};

struct LoadBalancerStats {
  int migrations = 0;
  int rounds = 0;
};

// One host's runnable VM-process count (its "load"). When the host's metrics are
// enabled this reads the scheduler's sched.runnable_vm gauge — the real per-host
// statistics a load daemon would export — and otherwise falls back to scanning
// the process table directly.
int HostLoad(kernel::Kernel& host);

// Per-host runnable VM-process count (the "load") as a load daemon would report.
std::vector<std::pair<std::string, int>> SurveyLoad(net::Network& net);

// Runs until the cluster's VM load is balanced (or max_rounds elapsed).
LoadBalancerStats RunLoadBalancer(kernel::SyscallApi& api, net::Network& net,
                                  const LoadBalancerOptions& options);

}  // namespace pmig::apps

#endif  // PMIG_SRC_APPS_LOAD_BALANCER_H_
