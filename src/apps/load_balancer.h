// Load balancing (Section 8, second application).
//
// "CPU bound jobs can be moved from busy nodes of the network to others that are
// idle... Candidates for migration can be best selected from the processes that
// have been running for more than a certain amount of time. This will ensure that
// there is a high probability that the candidate program will keep running for
// some time, and that it is worth paying the overhead of moving it."
//
// The balancer is a native program on one machine. It surveys per-host load the
// way rwhod/load daemons would (reading each kernel's run queue), picks the oldest
// eligible CPU-bound process on the busiest machine, and hands target selection to
// the PlacementEngine (the default kLoadOnly policy reproduces the historical
// idlest-host choice; cost- and fault-aware policies use the richer signals). As
// the paper notes, migrate-over-rsh "may be too slow in terms of real time
// response" for this use — so the balancer defaults to the migration daemon.

#ifndef PMIG_SRC_APPS_LOAD_BALANCER_H_
#define PMIG_SRC_APPS_LOAD_BALANCER_H_

#include <string>
#include <vector>

#include "src/apps/cluster_index.h"
#include "src/apps/placement.h"
#include "src/core/tools.h"
#include "src/kernel/kernel.h"
#include "src/net/network.h"

namespace pmig::apps {

struct LoadBalancerOptions {
  sim::Nanos poll_interval = sim::Seconds(5);
  // Minimum runtime before a process is worth moving.
  sim::Nanos min_age = sim::Seconds(5);
  // Migrate only when busiest - idlest runnable count is at least this.
  int imbalance_threshold = 2;
  bool use_daemon = true;  // rsh is too slow for load balancing (Section 8)
  int max_rounds = 100;    // survey rounds before giving up
  // Target selection. kLoadOnly is decision-identical to the pre-engine
  // balancer on a fault-free cluster.
  PlacementPolicy policy = PlacementPolicy::kLoadOnly;
  double fault_threshold = 0.5;  // kFaultAware/kCombined exclusion cutoff
  // Per-migration behaviour, passed through to core::Migrate. The default is
  // the paper's one-shot command; pass core::MigrateOptions::Robust() to make
  // every balancer migration a never-lose-a-process transaction.
  core::MigrateOptions migrate;
  // Hold the target's placement lease (apps::AcquirePlacementLease) across
  // each migration, re-picking with the contended host excluded when another
  // coordinator already holds it — so two balancers on different hosts stop
  // dog-piling the same idle machine. Off by default: single-coordinator runs
  // are untouched (and bit-identical).
  bool lease_targets = false;
  sim::Nanos lease_ttl = sim::Seconds(30);
  // The cluster-scale path: maintain an apps::ClusterIndex across rounds.
  // Loads come from the index (kept current by migrate-outcome deltas, sampler
  // snapshots, and a per-round Refresh that re-surveys only entries older than
  // index_ttl), targets rank from its maintained order, and candidates this
  // coordinator cannot reach are filtered before any migrate leg. Off by
  // default: the classic survey-every-round balancer, bit-identical to
  // before. With use_index on and index_ttl = 0 every round re-surveys, so
  // decisions match the full scan exactly (the equivalence gate).
  bool use_index = false;
  sim::Nanos index_ttl = sim::Seconds(10);
  // Victims migrated per imbalanced round (>= 1). A batch is placed in one
  // PlaceBatch call — one survey (or the index view) with lookahead bumps —
  // instead of one survey per victim.
  int batch_per_round = 1;
  // Prefer the victim with the most accumulated CPU (utime + stime) instead of
  // the oldest start time. Same Section 8 heuristic — "has been running for
  // more than a certain amount of time" — measured directly instead of proxied
  // by age: the process that has burned the most CPU is the likeliest to keep
  // burning, so moving it pays for itself. Off keeps the historical
  // oldest-first choice.
  bool victim_by_cpu = false;
  // Event-driven rounds: instead of sleeping poll_interval between rounds, the
  // balancer arms a wake condition on its ClusterIndex (event_driven implies
  // use_index) and blocks until an observation — a sampler snapshot, a migrate
  // delta, a fault/health change, a reachability heal — flips the round's
  // predicate: indexed LoadSpread() crossing imbalance_threshold after a
  // balanced round, any index epoch movement after a round that saw work but
  // could not act. A silent cluster still gets a liveness round every max_idle
  // (the heartbeat), which also covers what the indexed view cannot see — a
  // host that died unobserved, a partition heal with no traffic. Off by
  // default: the classic fixed-interval poller, bit-identical to before.
  bool event_driven = false;
  sim::Nanos max_idle = sim::Seconds(60);
  // Virtual-time budget: stop once this much time has elapsed since the run
  // started (checked at round boundaries; waits never overshoot it). -1 =
  // unbounded, the classic max_rounds-only exit. Gives polling and
  // event-driven runs a common window so their round counts compare.
  sim::Nanos run_for = -1;
};

struct LoadBalancerStats {
  int migrations = 0;         // processes that actually moved (migrate exit 0)
  int rounds = 0;
  int failed_migrations = 0;  // migrate failed outright (nonzero, not a fallback)
  int fallback_restarts = 0;  // transactional migrate restarted on the source
  int no_target_rounds = 0;   // imbalance seen but no eligible target existed
  int attempts_to_down = 0;   // chosen target was down at migrate time (bug if >0)
  int lease_conflicts = 0;    // target re-picked because its lease was held
  // Chosen target was unreachable from the coordinator at migrate time. The
  // index path filters these before picking, so it must stay 0 there; the
  // classic path counts each wasted leg it was about to pay for.
  int attempts_to_unreachable = 0;
  int index_refreshes = 0;    // hosts re-surveyed by staleness-driven Refresh
  // Rounds that attempted no migration (balanced, no eligible victim, or no
  // target) — the idle polls event-driven mode exists to eliminate.
  int idle_rounds = 0;
  // Event-driven waits released by a wake event vs by the max_idle heartbeat.
  int event_wakeups = 0;
  int heartbeats = 0;
  // One "pid:from->to=rc;" entry per migrate call, in order — the decision
  // sequence, for determinism/equivalence tests and the ablation bench.
  std::string decisions;
};

// The balancer's victim choice on `host`, exposed for tests: up to `max_victims`
// eligible processes (runnable VM, older than min_age, childless, socket-free),
// oldest-first — or, with by_cpu, most-accumulated-CPU-first (ties to the older
// start). Reads the host's process table once (one survey message), which also
// carries the per-proc CPU signal. A down host has no candidates.
std::vector<int32_t> PickVictims(kernel::Kernel& host, sim::Nanos now,
                                 sim::Nanos min_age, bool by_cpu, int max_victims);

// Runs until the cluster's VM load is balanced (or max_rounds elapsed).
LoadBalancerStats RunLoadBalancer(kernel::SyscallApi& api, net::Network& net,
                                  const LoadBalancerOptions& options);

}  // namespace pmig::apps

#endif  // PMIG_SRC_APPS_LOAD_BALANCER_H_
