// Load balancing (Section 8, second application).
//
// "CPU bound jobs can be moved from busy nodes of the network to others that are
// idle... Candidates for migration can be best selected from the processes that
// have been running for more than a certain amount of time. This will ensure that
// there is a high probability that the candidate program will keep running for
// some time, and that it is worth paying the overhead of moving it."
//
// The balancer is a native program on one machine. It surveys per-host load the
// way rwhod/load daemons would (reading each kernel's run queue), picks the oldest
// eligible CPU-bound process on the busiest machine, and hands target selection to
// the PlacementEngine (the default kLoadOnly policy reproduces the historical
// idlest-host choice; cost- and fault-aware policies use the richer signals). As
// the paper notes, migrate-over-rsh "may be too slow in terms of real time
// response" for this use — so the balancer defaults to the migration daemon.

#ifndef PMIG_SRC_APPS_LOAD_BALANCER_H_
#define PMIG_SRC_APPS_LOAD_BALANCER_H_

#include <string>
#include <vector>

#include "src/apps/placement.h"
#include "src/core/tools.h"
#include "src/kernel/kernel.h"
#include "src/net/network.h"

namespace pmig::apps {

struct LoadBalancerOptions {
  sim::Nanos poll_interval = sim::Seconds(5);
  // Minimum runtime before a process is worth moving.
  sim::Nanos min_age = sim::Seconds(5);
  // Migrate only when busiest - idlest runnable count is at least this.
  int imbalance_threshold = 2;
  bool use_daemon = true;  // rsh is too slow for load balancing (Section 8)
  int max_rounds = 100;    // survey rounds before giving up
  // Target selection. kLoadOnly is decision-identical to the pre-engine
  // balancer on a fault-free cluster.
  PlacementPolicy policy = PlacementPolicy::kLoadOnly;
  double fault_threshold = 0.5;  // kFaultAware/kCombined exclusion cutoff
  // Per-migration behaviour, passed through to core::Migrate. The default is
  // the paper's one-shot command; pass core::MigrateOptions::Robust() to make
  // every balancer migration a never-lose-a-process transaction.
  core::MigrateOptions migrate;
  // Hold the target's placement lease (apps::AcquirePlacementLease) across
  // each migration, re-picking with the contended host excluded when another
  // coordinator already holds it — so two balancers on different hosts stop
  // dog-piling the same idle machine. Off by default: single-coordinator runs
  // are untouched (and bit-identical).
  bool lease_targets = false;
  sim::Nanos lease_ttl = sim::Seconds(30);
};

struct LoadBalancerStats {
  int migrations = 0;         // processes that actually moved (migrate exit 0)
  int rounds = 0;
  int failed_migrations = 0;  // migrate failed outright (nonzero, not a fallback)
  int fallback_restarts = 0;  // transactional migrate restarted on the source
  int no_target_rounds = 0;   // imbalance seen but no eligible target existed
  int attempts_to_down = 0;   // chosen target was down at migrate time (bug if >0)
  int lease_conflicts = 0;    // target re-picked because its lease was held
  // One "pid:from->to=rc;" entry per migrate call, in order — the decision
  // sequence, for determinism/equivalence tests and the ablation bench.
  std::string decisions;
};

// Runs until the cluster's VM load is balanced (or max_rounds elapsed).
LoadBalancerStats RunLoadBalancer(kernel::SyscallApi& api, net::Network& net,
                                  const LoadBalancerOptions& options);

}  // namespace pmig::apps

#endif  // PMIG_SRC_APPS_LOAD_BALANCER_H_
