#include "src/apps/evacuate.h"

#include "src/core/tools.h"

namespace pmig::apps {

namespace {

// The Section 7 eligibility rules, same as the load balancer's.
bool Movable(kernel::Kernel& host, const kernel::Proc& p) {
  for (const kernel::OpenFilePtr& f : p.fds) {
    if (f != nullptr && f->kind != kernel::FileKind::kInode) return false;
  }
  for (kernel::Proc* q : host.ListProcs()) {
    if (q->ppid == p.pid) return false;
  }
  return true;
}

}  // namespace

EvacuationReport EvacuateHost(kernel::SyscallApi& api, net::Network& net,
                              std::string_view from_host, std::string_view to_host,
                              bool use_daemon, const core::MigrateOptions& opts,
                              PlacementPolicy policy, double fault_threshold,
                              double health_threshold) {
  EvacuationReport report;
  kernel::Kernel* from = net.FindHost(from_host);
  if (from == nullptr) return report;
  const PlacementEngine engine(&net, policy);

  // Snapshot the pids first; the list changes as processes move away.
  std::vector<int32_t> candidates;
  for (kernel::Proc* p : from->ListProcs()) {
    if (p->kind == kernel::ProcKind::kVm && p->Alive()) candidates.push_back(p->pid);
  }
  for (const int32_t pid : candidates) {
    kernel::Proc* p = from->FindProc(pid);
    if (p == nullptr || !p->Alive()) continue;  // exited meanwhile
    if (!Movable(*from, *p)) {
      report.unmovable.push_back(pid);
      continue;
    }
    std::string target(to_host);
    if (target.empty()) {
      PlacementQuery query;
      query.from_host = std::string(from_host);
      query.pid = pid;
      query.fault_threshold = fault_threshold;
      query.health_threshold = health_threshold;
      query.occupancy = true;  // count earlier evacuees even before they reschedule
      target = engine.PickTarget(query);
      if (target.empty()) {
        report.unplaced.push_back(pid);
        continue;
      }
    }
    const int rc = core::Migrate(api, net, pid, std::string(from_host), target,
                                 use_daemon, opts);
    if (rc == 0) {
      report.moved.push_back(pid);
    } else {
      report.failed.push_back(pid);
    }
  }
  return report;
}

}  // namespace pmig::apps
