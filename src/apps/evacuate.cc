#include "src/apps/evacuate.h"

#include "src/apps/cluster_index.h"
#include "src/apps/decision_log.h"
#include "src/apps/recovery.h"
#include "src/core/tools.h"

namespace pmig::apps {

namespace {

// The Section 7 eligibility rules, same as the load balancer's.
bool Movable(kernel::Kernel& host, const kernel::Proc& p) {
  for (const kernel::OpenFilePtr& f : p.fds) {
    if (f != nullptr && f->kind != kernel::FileKind::kInode) return false;
  }
  for (kernel::Proc* q : host.ListProcs()) {
    if (q->ppid == p.pid) return false;
  }
  return true;
}

}  // namespace

EvacuationReport EvacuateHost(kernel::SyscallApi& api, net::Network& net,
                              std::string_view from_host, std::string_view to_host,
                              bool use_daemon, const core::MigrateOptions& opts,
                              PlacementPolicy policy, double fault_threshold,
                              double health_threshold, bool lease_targets,
                              sim::Nanos lease_ttl, ClusterIndex* index) {
  EvacuationReport report;
  kernel::Kernel* from = net.FindHost(from_host);
  if (from == nullptr) return report;
  const PlacementEngine engine(&net, policy);

  // Snapshot the pids first; the list changes as processes move away.
  std::vector<int32_t> candidates;
  for (kernel::Proc* p : from->ListProcs()) {
    if (p->kind == kernel::ProcKind::kVm && p->Alive()) candidates.push_back(p->pid);
  }
  for (const int32_t pid : candidates) {
    kernel::Proc* p = from->FindProc(pid);
    if (p == nullptr || !p->Alive()) continue;  // exited meanwhile
    if (!Movable(*from, *p)) {
      report.unmovable.push_back(pid);
      continue;
    }
    std::string target(to_host);
    PlacementLease lease;
    bool have_lease = false;
    if (target.empty()) {
      PlacementQuery query;
      query.from_host = std::string(from_host);
      query.pid = pid;
      query.fault_threshold = fault_threshold;
      query.health_threshold = health_threshold;
      query.occupancy = true;  // count earlier evacuees even before they reschedule
      query.context = "evacuation";
      if (index != nullptr) {
        query.index = index;  // survey-free picks from the maintained view
        query.reachable_from = api.GetHostname();  // never aim across a partition
      }
      // Like the balancer: with leasing on, a pick must also be won. Contended
      // targets are excluded and the query re-run, so a concurrent coordinator
      // cannot receive the same flood of evacuees.
      for (size_t tries = 0; tries <= net.hosts().size(); ++tries) {
        target = engine.PickTarget(query);
        if (target.empty() || !lease_targets) break;
        LeaseOptions lopts;
        lopts.ttl = lease_ttl;
        const Result<PlacementLease> acquired =
            AcquirePlacementLease(api, net, target, lopts);
        if (acquired.ok() && acquired->held) {
          lease = *acquired;
          have_lease = true;
          break;
        }
        ++report.lease_conflicts;
        query.exclude.push_back(target);
        target.clear();
      }
      if (target.empty()) {
        report.unplaced.push_back(pid);
        api.kernel().metrics().Inc("evacuate.unplaced");
        continue;
      }
    }
    const int rc = core::Migrate(api, net, pid, std::string(from_host), target,
                                 use_daemon, opts);
    if (have_lease) ReleasePlacementLease(api, lease);
    if (DecisionLog* dlog = net.decision_log(); dlog != nullptr && dlog->enabled()) {
      dlog->AttachOutcome(pid, from_host, target, rc, api.proc().trace_id);
    }
    if (rc == 0) {
      report.moved.push_back(pid);
      if (index != nullptr) index->NoteMigrated(std::string(from_host), target);
    } else {
      report.failed.push_back(pid);
      api.kernel().metrics().Inc("evacuate.failed");
    }
  }
  return report;
}

}  // namespace pmig::apps
