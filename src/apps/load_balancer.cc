#include "src/apps/load_balancer.h"

#include <algorithm>

#include "src/core/tools.h"

namespace pmig::apps {

int HostLoad(kernel::Kernel& host) {
  if (host.metrics().enabled()) {
    return static_cast<int>(host.metrics().Gauge("sched.runnable_vm"));
  }
  int runnable = 0;
  for (kernel::Proc* p : host.ListProcs()) {
    if (p->kind == kernel::ProcKind::kVm && p->state == kernel::ProcState::kRunnable) {
      ++runnable;
    }
  }
  return runnable;
}

std::vector<std::pair<std::string, int>> SurveyLoad(net::Network& net) {
  std::vector<std::pair<std::string, int>> loads;
  for (kernel::Kernel* host : net.hosts()) {
    loads.emplace_back(host->hostname(), HostLoad(*host));
  }
  return loads;
}

namespace {

// The oldest runnable VM process on `host` older than `min_age`. Skips processes
// blocked in wait() (the Section 7 caveat) and anything holding sockets.
kernel::Proc* PickCandidate(kernel::Kernel& host, sim::Nanos now, sim::Nanos min_age) {
  kernel::Proc* best = nullptr;
  for (kernel::Proc* p : host.ListProcs()) {
    if (p->kind != kernel::ProcKind::kVm || p->state != kernel::ProcState::kRunnable) continue;
    if (now - p->start_time < min_age) continue;
    bool has_children = false;
    for (kernel::Proc* q : host.ListProcs()) {
      if (q->ppid == p->pid) has_children = true;
    }
    if (has_children) continue;
    bool has_socket = false;
    for (const kernel::OpenFilePtr& f : p->fds) {
      if (f != nullptr && f->kind != kernel::FileKind::kInode) has_socket = true;
    }
    if (has_socket) continue;
    if (best == nullptr || p->start_time < best->start_time) best = p;
  }
  return best;
}

}  // namespace

LoadBalancerStats RunLoadBalancer(kernel::SyscallApi& api, net::Network& net,
                                  const LoadBalancerOptions& options) {
  LoadBalancerStats stats;
  for (int round = 0; round < options.max_rounds; ++round) {
    ++stats.rounds;
    auto loads = SurveyLoad(net);
    auto busiest = std::max_element(loads.begin(), loads.end(),
                                    [](const auto& a, const auto& b) { return a.second < b.second; });
    auto idlest = std::min_element(loads.begin(), loads.end(),
                                   [](const auto& a, const auto& b) { return a.second < b.second; });
    if (busiest == loads.end() || idlest == loads.end()) break;
    if (busiest->second - idlest->second < options.imbalance_threshold) {
      // Balanced. If no VM work remains at all, we are done; otherwise keep
      // watching until the jobs drain.
      int total = 0;
      for (const auto& [host, n] : loads) total += n;
      if (total == 0) break;
      api.Sleep(options.poll_interval);
      continue;
    }
    kernel::Kernel* from = net.FindHost(busiest->first);
    kernel::Proc* candidate = PickCandidate(*from, api.Now(), options.min_age);
    if (candidate == nullptr) {
      api.Sleep(options.poll_interval);
      continue;
    }
    const int rc = core::Migrate(api, net, candidate->pid, busiest->first, idlest->first,
                                 options.use_daemon);
    if (rc == 0) ++stats.migrations;
    api.Sleep(options.poll_interval);
  }
  return stats;
}

}  // namespace pmig::apps
