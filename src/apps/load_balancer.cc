#include "src/apps/load_balancer.h"

#include <algorithm>

#include "src/apps/recovery.h"
#include "src/core/tools.h"

namespace pmig::apps {

namespace {

// The oldest runnable VM process on `host` older than `min_age`. Skips processes
// blocked in wait() (the Section 7 caveat) and anything holding sockets. A down
// host has no candidates: its processes are frozen, not runnable work to shed.
kernel::Proc* PickCandidate(kernel::Kernel& host, sim::Nanos now, sim::Nanos min_age) {
  if (host.down()) return nullptr;
  kernel::Proc* best = nullptr;
  for (kernel::Proc* p : host.ListProcs()) {
    if (p->kind != kernel::ProcKind::kVm || p->state != kernel::ProcState::kRunnable) continue;
    if (now - p->start_time < min_age) continue;
    bool has_children = false;
    for (kernel::Proc* q : host.ListProcs()) {
      if (q->ppid == p->pid) has_children = true;
    }
    if (has_children) continue;
    bool has_socket = false;
    for (const kernel::OpenFilePtr& f : p->fds) {
      if (f != nullptr && f->kind != kernel::FileKind::kInode) has_socket = true;
    }
    if (has_socket) continue;
    if (best == nullptr || p->start_time < best->start_time) best = p;
  }
  return best;
}

}  // namespace

LoadBalancerStats RunLoadBalancer(kernel::SyscallApi& api, net::Network& net,
                                  const LoadBalancerOptions& options) {
  LoadBalancerStats stats;
  const PlacementEngine engine(&net, options.policy);
  for (int round = 0; round < options.max_rounds; ++round) {
    ++stats.rounds;
    auto loads = SurveyLoad(net);  // live hosts only
    auto busiest = std::max_element(loads.begin(), loads.end(),
                                    [](const auto& a, const auto& b) { return a.second < b.second; });
    auto idlest = std::min_element(loads.begin(), loads.end(),
                                   [](const auto& a, const auto& b) { return a.second < b.second; });
    if (busiest == loads.end() || idlest == loads.end()) break;
    if (busiest->second - idlest->second < options.imbalance_threshold) {
      // Balanced. If no VM work remains at all, we are done; otherwise keep
      // watching until the jobs drain.
      int total = 0;
      for (const auto& [host, n] : loads) total += n;
      if (total == 0) break;
      api.Sleep(options.poll_interval);
      continue;
    }
    kernel::Kernel* from = net.FindHost(busiest->first);
    kernel::Proc* candidate = PickCandidate(*from, api.Now(), options.min_age);
    if (candidate == nullptr) {
      api.Sleep(options.poll_interval);
      continue;
    }
    const int32_t victim = candidate->pid;  // the Proc may be reaped by the migration
    PlacementQuery query;
    query.from_host = busiest->first;
    query.pid = victim;
    query.fault_threshold = options.fault_threshold;
    // With leasing on, the pick must also be won: a target whose placement
    // lease another coordinator holds is excluded and the query re-run, so
    // concurrent balancers spread across targets instead of thundering onto
    // the one idlest host.
    std::string target;
    PlacementLease lease;
    bool have_lease = false;
    for (size_t tries = 0; tries <= net.hosts().size(); ++tries) {
      target = engine.PickTarget(query);
      if (target.empty() || !options.lease_targets) break;
      LeaseOptions lopts;
      lopts.ttl = options.lease_ttl;
      const Result<PlacementLease> acquired =
          AcquirePlacementLease(api, net, target, lopts);
      if (acquired.ok() && acquired->held) {
        lease = *acquired;
        have_lease = true;
        break;
      }
      ++stats.lease_conflicts;
      query.exclude.push_back(target);
      target.clear();
    }
    if (target.empty()) {
      // Imbalanced, but every other host is down, fault-excluded, or leased
      // away. Wait for one to come back (or for a lease/score to lapse).
      ++stats.no_target_rounds;
      api.Sleep(options.poll_interval);
      continue;
    }
    if (kernel::Kernel* t = net.FindHost(target); t != nullptr && t->down()) {
      ++stats.attempts_to_down;  // the engine never does this; count it if it ever did
    }
    const int rc = core::Migrate(api, net, victim, busiest->first, target,
                                 options.use_daemon, options.migrate);
    if (have_lease) ReleasePlacementLease(api, lease);
    if (rc == 0) {
      ++stats.migrations;
    } else if (rc == core::kMigrateFellBack) {
      ++stats.fallback_restarts;
    } else {
      ++stats.failed_migrations;
    }
    stats.decisions += std::to_string(victim) + ":" + busiest->first + "->" + target +
                       "=" + std::to_string(rc) + ";";
    api.Sleep(options.poll_interval);
  }
  return stats;
}

}  // namespace pmig::apps
