#include "src/apps/load_balancer.h"

#include <algorithm>
#include <memory>
#include <optional>

#include "src/apps/decision_log.h"
#include "src/apps/recovery.h"
#include "src/core/tools.h"

namespace pmig::apps {

namespace {

// Section 7 eligibility for one process: runnable VM work, old enough to be
// worth moving, no children to orphan, no sockets to sever.
bool EligibleVictim(kernel::Kernel& host, kernel::Proc& p, sim::Nanos now,
                    sim::Nanos min_age) {
  if (p.kind != kernel::ProcKind::kVm || p.state != kernel::ProcState::kRunnable) {
    return false;
  }
  if (now - p.start_time < min_age) return false;
  for (kernel::Proc* q : host.ListProcs()) {
    if (q->ppid == p.pid) return false;
  }
  for (const kernel::OpenFilePtr& f : p.fds) {
    if (f != nullptr && f->kind != kernel::FileKind::kInode) return false;
  }
  return true;
}

}  // namespace

std::vector<int32_t> PickVictims(kernel::Kernel& host, sim::Nanos now,
                                 sim::Nanos min_age, bool by_cpu, int max_victims) {
  std::vector<int32_t> victims;
  if (host.down() || max_victims <= 0) return victims;
  NoteSurveyMessage(host);  // one proc-table read serves the whole batch
  std::vector<kernel::Proc*> eligible;
  for (kernel::Proc* p : host.ListProcs()) {
    if (EligibleVictim(host, *p, now, min_age)) eligible.push_back(p);
  }
  // Oldest-first is the paper's proxy for "will keep running"; by_cpu measures
  // it instead — most accumulated CPU first, ties to the older start. A stable
  // sort keeps the process-table order on full ties, so the single-victim
  // default picks exactly what the pre-batch balancer picked.
  std::stable_sort(eligible.begin(), eligible.end(),
                   [by_cpu](const kernel::Proc* a, const kernel::Proc* b) {
                     if (by_cpu) {
                       const sim::Nanos ca = a->utime + a->stime;
                       const sim::Nanos cb = b->utime + b->stime;
                       if (ca != cb) return ca > cb;
                     }
                     return a->start_time < b->start_time;
                   });
  for (kernel::Proc* p : eligible) {
    victims.push_back(p->pid);
    if (static_cast<int>(victims.size()) >= max_victims) break;
  }
  return victims;
}

namespace {

// The armed wake condition, shared between the balancer's blocked wait and the
// index's wake callback (which runs inside observation delivery — pure
// bookkeeping, so it only latches `fired`).
struct WakeCondition {
  bool armed = false;
  bool fired = false;
  // false: release on the imbalance predicate (spread >= threshold, or no VM
  // work left). true: the round saw the imbalance but could not act — release
  // on *any* index movement past epoch0 (or a reachability heal, which
  // generates no event and is polled by the wait predicate instead).
  bool any_change = false;
  int threshold = 0;
  uint64_t epoch0 = 0;
};

}  // namespace

LoadBalancerStats RunLoadBalancer(kernel::SyscallApi& api, net::Network& net,
                                  const LoadBalancerOptions& options) {
  LoadBalancerStats stats;
  const PlacementEngine engine(&net, options.policy);
  const std::string local = api.GetHostname();
  sim::MetricsRegistry& metrics = api.kernel().metrics();
  const sim::Nanos deadline =
      options.run_for >= 0 ? api.Now() + options.run_for : -1;
  // The index lives across rounds: migrate outcomes and sampler snapshots keep
  // it current between the staleness-driven refreshes.
  std::optional<ClusterIndex> index;
  if (options.use_index || options.event_driven) {
    ClusterIndexOptions iopts;
    iopts.ttl = options.index_ttl;
    index.emplace(&net, local, iopts);
  }
  auto cond = std::make_shared<WakeCondition>();
  if (options.event_driven) {
    ClusterIndex* idx = &*index;
    index->set_wake_callback([cond, idx] {
      if (!cond->armed || cond->fired) return;
      if (cond->any_change || idx->LoadSpread() >= cond->threshold ||
          idx->TotalLoad() == 0) {
        cond->fired = true;
      }
    });
  }
  // The between-rounds wait. Returns false when the balancer should exit now
  // instead of waiting: the last allowed round just ran (exit paths pay no
  // trailing poll_interval) or the virtual-time budget is spent. Polling mode
  // sleeps the fixed interval; event-driven mode blocks until the armed
  // condition releases it, with max_idle as the heartbeat bound. Waits never
  // overshoot the run_for deadline.
  const auto wait_for_next_round = [&](int round, bool any_change) -> bool {
    if (round + 1 >= options.max_rounds) return false;
    sim::Nanos budget = -1;
    if (deadline >= 0) {
      budget = deadline - api.Now();
      if (budget <= 0) return false;
    }
    if (!options.event_driven) {
      api.Sleep(budget >= 0 ? std::min(options.poll_interval, budget)
                            : options.poll_interval);
      return true;
    }
    ClusterIndex* idx = &*index;
    cond->fired = false;
    cond->any_change = any_change;
    cond->threshold = options.imbalance_threshold;
    cond->armed = true;
    const sim::Nanos timeout =
        budget >= 0 ? std::min(options.max_idle, budget) : options.max_idle;
    // The predicate re-evaluates the armed condition directly (O(1) aggregate
    // reads), so an event that slipped in before arming — or a heal, which
    // generates no event at all — still releases the wait immediately.
    const bool woke = api.BlockUntilFor(
        [cond, idx] {
          if (cond->fired) return true;
          if (cond->any_change) {
            return idx->epoch() != cond->epoch0 ||
                   idx->AnyMarkedUnreachableHealed();
          }
          return idx->LoadSpread() >= cond->threshold || idx->TotalLoad() == 0;
        },
        timeout);
    cond->armed = false;
    if (woke) {
      ++stats.event_wakeups;
    } else {
      ++stats.heartbeats;
    }
    return true;
  };
  for (int round = 0; round < options.max_rounds; ++round) {
    if (deadline >= 0 && api.Now() >= deadline) break;
    ++stats.rounds;
    metrics.Inc("balancer.rounds");
    // Any index movement during this round (a migrate delta, a sampler edge
    // that landed mid-migration) releases the next any_change wait instantly.
    if (index.has_value()) cond->epoch0 = index->epoch();
    std::vector<std::pair<std::string, int>> loads;
    if (index.has_value()) {
      stats.index_refreshes += index->Refresh(api.Now());
      loads = index->Loads();
    } else {
      loads = SurveyLoad(net);  // live hosts only
    }
    auto busiest = std::max_element(loads.begin(), loads.end(),
                                    [](const auto& a, const auto& b) { return a.second < b.second; });
    auto idlest = std::min_element(loads.begin(), loads.end(),
                                   [](const auto& a, const auto& b) { return a.second < b.second; });
    if (busiest == loads.end() || idlest == loads.end()) break;
    if (busiest->second - idlest->second < options.imbalance_threshold) {
      // Balanced. If no VM work remains at all, we are done; otherwise keep
      // watching until the jobs drain.
      int total = 0;
      for (const auto& [host, n] : loads) total += n;
      ++stats.idle_rounds;
      metrics.Inc("balancer.idle_rounds");
      if (total == 0) break;
      if (!wait_for_next_round(round, /*any_change=*/false)) break;
      continue;
    }
    kernel::Kernel* from = net.FindHost(busiest->first);
    const std::vector<int32_t> victims =
        PickVictims(*from, api.Now(), options.min_age,
                    options.victim_by_cpu, std::max(1, options.batch_per_round));
    if (victims.empty()) {
      // Imbalanced but nothing is old enough (or eligible) to move yet.
      // Eligibility ripens with time, not with observations, so the wait here
      // takes any index movement or the heartbeat — whichever is first.
      ++stats.idle_rounds;
      metrics.Inc("balancer.idle_rounds");
      if (!wait_for_next_round(round, /*any_change=*/true)) break;
      continue;
    }
    PlacementQuery query;
    query.from_host = busiest->first;
    query.fault_threshold = options.fault_threshold;
    query.context = "balancer";
    if (index.has_value()) {
      query.index = &*index;
      // Partitioned-away candidates are filtered before any leg is aimed.
      query.reachable_from = local;
    }
    // The whole batch is placed from one survey (or the index view) with
    // lookahead bumps; a single victim goes through PickTarget, which on the
    // index walks the maintained rank instead.
    std::vector<std::string> placed;
    if (victims.size() > 1) {
      placed = engine.PlaceBatch(query, victims);
    } else {
      query.pid = victims.front();
      placed.push_back(engine.PickTarget(query));
    }
    bool attempted = false;
    for (size_t i = 0; i < victims.size(); ++i) {
      const int32_t victim = victims[i];
      std::string target = placed[i];
      // With leasing on, the pick must also be won: a target whose placement
      // lease another coordinator holds is excluded and the query re-run, so
      // concurrent balancers spread across targets instead of thundering onto
      // the one idlest host.
      PlacementLease lease;
      bool have_lease = false;
      if (options.lease_targets) {
        PlacementQuery retry = query;
        retry.pid = victim;
        for (size_t tries = 0; tries <= net.hosts().size(); ++tries) {
          if (target.empty()) break;
          LeaseOptions lopts;
          lopts.ttl = options.lease_ttl;
          const Result<PlacementLease> acquired =
              AcquirePlacementLease(api, net, target, lopts);
          if (acquired.ok() && acquired->held) {
            lease = *acquired;
            have_lease = true;
            break;
          }
          ++stats.lease_conflicts;
          retry.exclude.push_back(target);
          target = engine.PickTarget(retry);
        }
        if (!have_lease) target.clear();
      }
      if (target.empty()) continue;
      attempted = true;
      if (kernel::Kernel* t = net.FindHost(target); t != nullptr && t->down()) {
        ++stats.attempts_to_down;  // the engine never does this; count it if it ever did
      }
      if (target != local && !net.Reachable(local, target)) {
        ++stats.attempts_to_unreachable;  // the index path filters these out
        if (index.has_value()) index->NoteReachable(target, false);
      }
      const int rc = core::Migrate(api, net, victim, busiest->first, target,
                                   options.use_daemon, options.migrate);
      if (have_lease) ReleasePlacementLease(api, lease);
      if (DecisionLog* dlog = net.decision_log(); dlog != nullptr && dlog->enabled()) {
        dlog->AttachOutcome(victim, busiest->first, target, rc, api.proc().trace_id);
      }
      if (rc == 0) {
        ++stats.migrations;
        if (index.has_value()) index->NoteMigrated(busiest->first, target);
      } else if (rc == core::kMigrateFellBack) {
        ++stats.fallback_restarts;
      } else {
        ++stats.failed_migrations;
      }
      stats.decisions += std::to_string(victim) + ":" + busiest->first + "->" + target +
                         "=" + std::to_string(rc) + ";";
    }
    if (!attempted) {
      // Imbalanced, but every other host is down, fault-excluded, unreachable,
      // or leased away. Wait for one to come back (or a lease/score to lapse).
      ++stats.no_target_rounds;
      ++stats.idle_rounds;
      metrics.Inc("balancer.idle_rounds");
    }
    // After a round that acted, wait on the imbalance predicate itself: if the
    // migrate deltas left the spread across the threshold the wait releases
    // immediately (the next batch runs back-to-back); if the cluster is
    // balanced now, the balancer sleeps through the steady state without the
    // trailing idle round a poller would pay. A round that could not act
    // waits for the cluster to change under it.
    if (!wait_for_next_round(round, /*any_change=*/!attempted)) break;
  }
  return stats;
}

}  // namespace pmig::apps
