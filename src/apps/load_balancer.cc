#include "src/apps/load_balancer.h"

#include <algorithm>
#include <optional>

#include "src/apps/recovery.h"
#include "src/core/tools.h"

namespace pmig::apps {

namespace {

// Section 7 eligibility for one process: runnable VM work, old enough to be
// worth moving, no children to orphan, no sockets to sever.
bool EligibleVictim(kernel::Kernel& host, kernel::Proc& p, sim::Nanos now,
                    sim::Nanos min_age) {
  if (p.kind != kernel::ProcKind::kVm || p.state != kernel::ProcState::kRunnable) {
    return false;
  }
  if (now - p.start_time < min_age) return false;
  for (kernel::Proc* q : host.ListProcs()) {
    if (q->ppid == p.pid) return false;
  }
  for (const kernel::OpenFilePtr& f : p.fds) {
    if (f != nullptr && f->kind != kernel::FileKind::kInode) return false;
  }
  return true;
}

}  // namespace

std::vector<int32_t> PickVictims(kernel::Kernel& host, sim::Nanos now,
                                 sim::Nanos min_age, bool by_cpu, int max_victims) {
  std::vector<int32_t> victims;
  if (host.down() || max_victims <= 0) return victims;
  NoteSurveyMessage(host);  // one proc-table read serves the whole batch
  std::vector<kernel::Proc*> eligible;
  for (kernel::Proc* p : host.ListProcs()) {
    if (EligibleVictim(host, *p, now, min_age)) eligible.push_back(p);
  }
  // Oldest-first is the paper's proxy for "will keep running"; by_cpu measures
  // it instead — most accumulated CPU first, ties to the older start. A stable
  // sort keeps the process-table order on full ties, so the single-victim
  // default picks exactly what the pre-batch balancer picked.
  std::stable_sort(eligible.begin(), eligible.end(),
                   [by_cpu](const kernel::Proc* a, const kernel::Proc* b) {
                     if (by_cpu) {
                       const sim::Nanos ca = a->utime + a->stime;
                       const sim::Nanos cb = b->utime + b->stime;
                       if (ca != cb) return ca > cb;
                     }
                     return a->start_time < b->start_time;
                   });
  for (kernel::Proc* p : eligible) {
    victims.push_back(p->pid);
    if (static_cast<int>(victims.size()) >= max_victims) break;
  }
  return victims;
}

LoadBalancerStats RunLoadBalancer(kernel::SyscallApi& api, net::Network& net,
                                  const LoadBalancerOptions& options) {
  LoadBalancerStats stats;
  const PlacementEngine engine(&net, options.policy);
  const std::string local = api.GetHostname();
  // The index lives across rounds: migrate outcomes and sampler snapshots keep
  // it current between the staleness-driven refreshes.
  std::optional<ClusterIndex> index;
  if (options.use_index) {
    ClusterIndexOptions iopts;
    iopts.ttl = options.index_ttl;
    index.emplace(&net, local, iopts);
  }
  for (int round = 0; round < options.max_rounds; ++round) {
    ++stats.rounds;
    std::vector<std::pair<std::string, int>> loads;
    if (index.has_value()) {
      stats.index_refreshes += index->Refresh(api.Now());
      loads = index->Loads();
    } else {
      loads = SurveyLoad(net);  // live hosts only
    }
    auto busiest = std::max_element(loads.begin(), loads.end(),
                                    [](const auto& a, const auto& b) { return a.second < b.second; });
    auto idlest = std::min_element(loads.begin(), loads.end(),
                                   [](const auto& a, const auto& b) { return a.second < b.second; });
    if (busiest == loads.end() || idlest == loads.end()) break;
    if (busiest->second - idlest->second < options.imbalance_threshold) {
      // Balanced. If no VM work remains at all, we are done; otherwise keep
      // watching until the jobs drain.
      int total = 0;
      for (const auto& [host, n] : loads) total += n;
      if (total == 0) break;
      api.Sleep(options.poll_interval);
      continue;
    }
    kernel::Kernel* from = net.FindHost(busiest->first);
    const std::vector<int32_t> victims =
        PickVictims(*from, api.Now(), options.min_age,
                    options.victim_by_cpu, std::max(1, options.batch_per_round));
    if (victims.empty()) {
      api.Sleep(options.poll_interval);
      continue;
    }
    PlacementQuery query;
    query.from_host = busiest->first;
    query.fault_threshold = options.fault_threshold;
    if (index.has_value()) {
      query.index = &*index;
      // Partitioned-away candidates are filtered before any leg is aimed.
      query.reachable_from = local;
    }
    // The whole batch is placed from one survey (or the index view) with
    // lookahead bumps; a single victim goes through PickTarget, which on the
    // index walks the maintained rank instead.
    std::vector<std::string> placed;
    if (victims.size() > 1) {
      placed = engine.PlaceBatch(query, victims);
    } else {
      query.pid = victims.front();
      placed.push_back(engine.PickTarget(query));
    }
    bool attempted = false;
    for (size_t i = 0; i < victims.size(); ++i) {
      const int32_t victim = victims[i];
      std::string target = placed[i];
      // With leasing on, the pick must also be won: a target whose placement
      // lease another coordinator holds is excluded and the query re-run, so
      // concurrent balancers spread across targets instead of thundering onto
      // the one idlest host.
      PlacementLease lease;
      bool have_lease = false;
      if (options.lease_targets) {
        PlacementQuery retry = query;
        retry.pid = victim;
        for (size_t tries = 0; tries <= net.hosts().size(); ++tries) {
          if (target.empty()) break;
          LeaseOptions lopts;
          lopts.ttl = options.lease_ttl;
          const Result<PlacementLease> acquired =
              AcquirePlacementLease(api, net, target, lopts);
          if (acquired.ok() && acquired->held) {
            lease = *acquired;
            have_lease = true;
            break;
          }
          ++stats.lease_conflicts;
          retry.exclude.push_back(target);
          target = engine.PickTarget(retry);
        }
        if (!have_lease) target.clear();
      }
      if (target.empty()) continue;
      attempted = true;
      if (kernel::Kernel* t = net.FindHost(target); t != nullptr && t->down()) {
        ++stats.attempts_to_down;  // the engine never does this; count it if it ever did
      }
      if (target != local && !net.Reachable(local, target)) {
        ++stats.attempts_to_unreachable;  // the index path filters these out
        if (index.has_value()) index->NoteReachable(target, false);
      }
      const int rc = core::Migrate(api, net, victim, busiest->first, target,
                                   options.use_daemon, options.migrate);
      if (have_lease) ReleasePlacementLease(api, lease);
      if (rc == 0) {
        ++stats.migrations;
        if (index.has_value()) index->NoteMigrated(busiest->first, target);
      } else if (rc == core::kMigrateFellBack) {
        ++stats.fallback_restarts;
      } else {
        ++stats.failed_migrations;
      }
      stats.decisions += std::to_string(victim) + ":" + busiest->first + "->" + target +
                         "=" + std::to_string(rc) + ";";
    }
    if (!attempted) {
      // Imbalanced, but every other host is down, fault-excluded, unreachable,
      // or leased away. Wait for one to come back (or a lease/score to lapse).
      ++stats.no_target_rounds;
    }
    api.Sleep(options.poll_interval);
  }
  return stats;
}

}  // namespace pmig::apps
