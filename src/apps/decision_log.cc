#include "src/apps/decision_log.h"

#include <cstdio>
#include <ostream>

#include "src/sim/metrics.h"  // sim::JsonEscape

namespace pmig::apps {

namespace {

// Shortest-round-trip-ish double formatting shared by every rendering so the
// canonical diff lines, the JSONL report, and the pwhy table all agree on what
// a score looks like.
std::string Num(double v) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  return buf;
}

}  // namespace

uint64_t DecisionLog::Record(DecisionRecord record) {
  if (!enabled_) return 0;
  record.seq = next_seq_++;
  record.at = clock_ != nullptr ? clock_->now() : 0;
  records_.push_back(std::move(record));
  while (records_.size() > capacity_) records_.pop_front();
  return records_.back().seq;
}

void DecisionLog::AttachOutcome(int32_t pid, std::string_view from_host,
                                std::string_view chosen, int rc,
                                uint64_t trace_id) {
  if (!enabled_) return;
  for (auto it = records_.rbegin(); it != records_.rend(); ++it) {
    if (it->outcome_rc != DecisionRecord::kNoOutcome) continue;
    if (it->pid != pid || it->from_host != from_host || it->chosen != chosen) {
      continue;
    }
    it->outcome_rc = rc;
    it->trace_id = trace_id;
    return;
  }
}

const DecisionRecord* DecisionLog::Latest() const {
  return records_.empty() ? nullptr : &records_.back();
}

const DecisionRecord* DecisionLog::LatestForPid(int32_t pid) const {
  for (auto it = records_.rbegin(); it != records_.rend(); ++it) {
    if (it->pid == pid) return &*it;
  }
  return nullptr;
}

const DecisionRecord* DecisionLog::LatestForHost(std::string_view host) const {
  for (auto it = records_.rbegin(); it != records_.rend(); ++it) {
    if (it->chosen == host || it->runner_up == host || it->from_host == host) {
      return &*it;
    }
    for (const DecisionCandidate& c : it->candidates) {
      if (c.host == host) return &*it;
    }
    for (const DecisionExclusion& e : it->exclusions) {
      if (e.host == host) return &*it;
    }
  }
  return nullptr;
}

std::string DecisionLog::Render(const DecisionRecord& r) {
  std::string out = "decision #" + std::to_string(r.seq) +
                    " t=" + std::to_string(r.at) + "ns " + r.context + "/" +
                    r.policy + " via " + r.source + ": pid " +
                    std::to_string(r.pid) + " from " +
                    (r.from_host.empty() ? "-" : r.from_host) + " -> " +
                    (r.chosen.empty() ? "NO TARGET" : r.chosen);
  if (!r.runner_up.empty()) {
    out += " (runner-up " + r.runner_up + "; margin " + r.margin_factor + "=" +
           Num(r.margin) + ")";
  } else {
    out += " (" + r.margin_factor + ")";
  }
  if (r.near_tie) out += " NEAR-TIE";
  out += " [trace=" + std::to_string(r.trace_id) +
         " rc=" + std::to_string(r.outcome_rc) + "]\n";
  out +=
      "  host             load   est_bytes        wire  restart_ns   fault  "
      "health  verdict\n";
  for (const DecisionCandidate& c : r.candidates) {
    const char* verdict = c.host == r.chosen      ? "CHOSEN"
                          : c.host == r.runner_up ? "runner-up"
                                                  : "";
    char line[192];
    std::snprintf(line, sizeof(line),
                  "  %-15s %5d %11lld %11lld %11lld %7s %7s  %s\n",
                  c.host.c_str(), c.load, static_cast<long long>(c.est_bytes),
                  static_cast<long long>(c.wire_history),
                  static_cast<long long>(c.est_restart_ns),
                  Num(c.fault_score).c_str(), Num(c.health_score).c_str(),
                  verdict);
    out += line;
  }
  for (const DecisionExclusion& e : r.exclusions) {
    out += "  " + e.host + ": excluded (" + e.reason;
    if (e.value != 0) out += " " + Num(e.value);
    out += ")\n";
  }
  return out;
}

std::string DecisionLog::CanonicalLine(const DecisionRecord& r) {
  std::string out = "ctx=" + r.context + " policy=" + r.policy +
                    " from=" + r.from_host + " pid=" + std::to_string(r.pid) +
                    " chosen=" + r.chosen + " ru=" + r.runner_up +
                    " margin=" + r.margin_factor + ":" + Num(r.margin) +
                    " rc=" + std::to_string(r.outcome_rc) + " cands[";
  for (size_t i = 0; i < r.candidates.size(); ++i) {
    const DecisionCandidate& c = r.candidates[i];
    if (i != 0) out += "|";
    out += c.host + ":l" + std::to_string(c.load) + ",b" +
           std::to_string(c.est_bytes) + ",w" + std::to_string(c.wire_history) +
           ",r" + std::to_string(c.est_restart_ns) + ",f" + Num(c.fault_score) +
           ",h" + Num(c.health_score);
  }
  out += "] excl[";
  for (size_t i = 0; i < r.exclusions.size(); ++i) {
    const DecisionExclusion& e = r.exclusions[i];
    if (i != 0) out += "|";
    out += e.host + ":" + e.reason;
    if (e.value != 0) out += "=" + Num(e.value);
  }
  out += "]";
  return out;
}

void DecisionLog::WriteJsonl(std::ostream& out) const {
  for (const DecisionRecord& r : records_) {
    out << "{\"type\":\"decision\",\"seq\":" << r.seq << ",\"t_ns\":" << r.at
        << ",\"ctx\":\"" << sim::JsonEscape(r.context) << "\",\"policy\":\""
        << sim::JsonEscape(r.policy) << "\",\"src\":\""
        << sim::JsonEscape(r.source) << "\",\"from\":\""
        << sim::JsonEscape(r.from_host) << "\",\"pid\":" << r.pid
        << ",\"chosen\":\"" << sim::JsonEscape(r.chosen)
        << "\",\"runner_up\":\"" << sim::JsonEscape(r.runner_up)
        << "\",\"margin_factor\":\"" << sim::JsonEscape(r.margin_factor)
        << "\",\"margin\":" << Num(r.margin)
        << ",\"near_tie\":" << (r.near_tie ? "true" : "false")
        << ",\"trace\":" << r.trace_id << ",\"rc\":" << r.outcome_rc
        << ",\"candidates\":[";
    for (size_t i = 0; i < r.candidates.size(); ++i) {
      const DecisionCandidate& c = r.candidates[i];
      if (i != 0) out << ",";
      out << "{\"host\":\"" << sim::JsonEscape(c.host)
          << "\",\"load\":" << c.load << ",\"est_bytes\":" << c.est_bytes
          << ",\"wire\":" << c.wire_history
          << ",\"restart_ns\":" << c.est_restart_ns
          << ",\"fault\":" << Num(c.fault_score)
          << ",\"health\":" << Num(c.health_score) << "}";
    }
    out << "],\"exclusions\":[";
    for (size_t i = 0; i < r.exclusions.size(); ++i) {
      const DecisionExclusion& e = r.exclusions[i];
      if (i != 0) out << ",";
      out << "{\"host\":\"" << sim::JsonEscape(e.host) << "\",\"reason\":\""
          << sim::JsonEscape(e.reason) << "\",\"value\":" << Num(e.value)
          << "}";
    }
    out << "]}\n";
  }
}

}  // namespace pmig::apps
