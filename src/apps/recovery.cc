#include "src/apps/recovery.h"

#include <algorithm>
#include <set>

#include "src/core/dump_format.h"
#include "src/net/migration_daemon.h"
#include "src/net/rsh.h"

namespace pmig::apps {

namespace {

using vm::abi::OpenFlags;

std::string LeasePath(const std::string& local, const std::string& target) {
  const std::string dir =
      target == local ? std::string(kLeaseDir) : "/n/" + target + kLeaseDir;
  return dir + "/placement";
}

Result<std::string> ReadWholeFile(kernel::SyscallApi& api, const std::string& path) {
  PMIG_TRY(int fd, api.Open(path, OpenFlags::kORdOnly));
  Result<std::string> bytes = api.ReadAll(fd);
  const Status closed = api.Close(fd);
  (void)closed;
  return bytes;
}

struct LeaseRecord {
  std::string holder;
  sim::Nanos expires = -1;
};

LeaseRecord ParseLease(const std::string& bytes) {
  LeaseRecord out;
  std::string cur;
  std::vector<std::string> tokens;
  for (char c : bytes) {
    if (c == ' ' || c == '\n' || c == '\t') {
      if (!cur.empty()) tokens.push_back(cur);
      cur.clear();
    } else {
      cur.push_back(c);
    }
  }
  if (!cur.empty()) tokens.push_back(cur);
  for (size_t i = 0; i + 1 < tokens.size(); ++i) {
    if (tokens[i] == "holder") out.holder = tokens[i + 1];
    if (tokens[i] == "expires") {
      out.expires = static_cast<sim::Nanos>(std::atoll(tokens[i + 1].c_str()));
    }
  }
  return out;
}

Status WriteLease(kernel::SyscallApi& api, int fd, const std::string& holder,
                  sim::Nanos expires) {
  const Result<int64_t> n = api.Write(
      fd, "holder " + holder + " expires " + std::to_string(expires) + "\n");
  if (!n.ok()) return n.error();
  return Status::Ok();
}

// One acquisition pass: O_EXCL create, break-expired-and-retry-once, or
// report the contending holder. The public wrapper adds the backoff loop.
Result<PlacementLease> AcquireLeaseOnce(kernel::SyscallApi& api,
                                        net::Network& net,
                                        const std::string& target,
                                        const LeaseOptions& opts) {
  const std::string local = api.GetHostname();
  const std::string path = LeasePath(local, target);
  sim::MetricsRegistry& metrics = api.kernel().metrics();
  // A target that is down or on the far side of a partition must fail the
  // acquisition outright (EHOSTUNREACH from the NFS walk), never wedge.
  kernel::Kernel* remote = net.FindHost(target);
  if (remote == nullptr || remote->down()) return Errno::kHostUnreach;
  for (int attempt = 0; attempt < 2; ++attempt) {
    const Result<int> fd = api.Open(
        path, OpenFlags::kOWrOnly | OpenFlags::kOCreat | OpenFlags::kOExcl, 0600);
    if (fd.ok()) {
      PlacementLease lease;
      lease.target = target;
      lease.holder = local;
      lease.expires = api.Now() + opts.ttl;
      lease.held = true;
      const Status wrote = WriteLease(api, *fd, local, lease.expires);
      const Status closed = api.Close(*fd);
      (void)closed;
      if (!wrote.ok()) {
        // A lease file we cannot stamp is worse than none: break it.
        const Status st = api.Unlink(path);
        (void)st;
        return wrote.error();
      }
      metrics.Inc("lease.acquired");
      return lease;
    }
    if (fd.error() != Errno::kExist) return fd.error();
    const Result<std::string> bytes = ReadWholeFile(api, path);
    if (!bytes.ok()) {
      // Unlinked between our create and read: go around and try again.
      if (bytes.error() == Errno::kNoEnt) continue;
      return bytes.error();
    }
    const LeaseRecord rec = ParseLease(*bytes);
    if (rec.expires >= 0 && api.Now() >= rec.expires) {
      // The holder sat on an expired lease (crashed, partitioned, or just
      // slow): break it and retry the exclusive create once.
      const Status st = api.Unlink(path);
      (void)st;
      metrics.Inc("lease.broken");
      continue;
    }
    PlacementLease lease;
    lease.target = target;
    lease.holder = rec.holder;
    lease.expires = rec.expires;
    lease.held = false;
    metrics.Inc("lease.contended");
    return lease;
  }
  // Lost the post-break race twice: report contention, not an error.
  PlacementLease lease;
  lease.target = target;
  metrics.Inc("lease.contended");
  return lease;
}

}  // namespace

Result<PlacementLease> AcquirePlacementLease(kernel::SyscallApi& api,
                                             net::Network& net,
                                             const std::string& target,
                                             const LeaseOptions& opts) {
  sim::Nanos backoff = opts.first_backoff;
  sim::Nanos waited = 0;
  for (;;) {
    const Result<PlacementLease> r = AcquireLeaseOnce(api, net, target, opts);
    // Errors (unreachable target) and wins return as-is; so does contention
    // once the wait budget cannot cover another backoff — the default budget
    // of 0 keeps the classic immediate-contention return bit-identical.
    if (!r.ok() || r->held) return r;
    if (backoff <= 0 || waited + backoff > opts.wait) return r;
    api.Sleep(backoff);
    waited += backoff;
    api.kernel().metrics().Inc("lease.wait_ns", backoff);
    backoff = std::min(backoff * 2, opts.max_backoff);
  }
}

Status RenewPlacementLease(kernel::SyscallApi& api, PlacementLease* lease,
                           const LeaseOptions& opts) {
  if (lease == nullptr || !lease->held) return Errno::kAcces;
  const std::string local = api.GetHostname();
  const std::string path = LeasePath(local, lease->target);
  const Result<std::string> bytes = ReadWholeFile(api, path);
  if (!bytes.ok()) return bytes.error();
  if (ParseLease(*bytes).holder != local) {
    // Somebody broke our expired lease and took it; we no longer hold it.
    lease->held = false;
    return Errno::kAcces;
  }
  const sim::Nanos expires = api.Now() + opts.ttl;
  PMIG_TRY(int fd, api.Creat(path, 0600));
  const Status wrote = WriteLease(api, fd, local, expires);
  const Status closed = api.Close(fd);
  (void)closed;
  if (!wrote.ok()) return wrote.error();
  lease->expires = expires;
  api.kernel().metrics().Inc("lease.renewed");
  return Status::Ok();
}

void ReleasePlacementLease(kernel::SyscallApi& api, const PlacementLease& lease) {
  if (!lease.held) return;
  const std::string local = api.GetHostname();
  const std::string path = LeasePath(local, lease.target);
  const Result<std::string> bytes = ReadWholeFile(api, path);
  if (!bytes.ok() || ParseLease(*bytes).holder != local) return;
  const Status st = api.Unlink(path);
  (void)st;
  api.kernel().metrics().Inc("lease.released");
}

// --- Orphan dump-set reaper ---------------------------------------------------

namespace {

bool PathExists(kernel::SyscallApi& api, const std::string& path) {
  return api.Stat(path).ok();
}

core::DumpMarker ReadMarker(kernel::SyscallApi& api, const std::string& path) {
  const Result<std::string> bytes = ReadWholeFile(api, path);
  if (!bytes.ok()) return {};
  return core::ParseDumpMarker(*bytes);
}

void RemoveDumpSet(kernel::SyscallApi& api, const core::DumpPaths& paths) {
  for (const std::string* p : {&paths.aout, &paths.files, &paths.stack,
                               &paths.ready, &paths.claim}) {
    const Status st = api.Unlink(*p);
    (void)st;
  }
}

// A live migrated process anywhere (reachable) whose pre-migration identity is
// (pid, dump_host): the dump set was consumed; the process survives elsewhere.
bool SurvivorExists(net::Network& net, const std::string& local,
                    const std::string& dump_host, int32_t pid) {
  for (kernel::Kernel* h : net.hosts()) {
    if (h->down() || !net.Reachable(local, h->hostname())) continue;
    for (kernel::Proc* p : h->ListProcs()) {
      if (p->kind != kernel::ProcKind::kVm || !p->Alive()) continue;
      if (p->old_pid == pid && p->old_host == dump_host) return true;
    }
  }
  return false;
}

// All pids with any dump-set file ("a.out"/"files"/"stack"/"ready"/"claim" +
// digits) in `dir`, in ascending order — the scan is deterministic because
// directory entries iterate sorted.
std::set<int32_t> DumpSetPids(kernel::SyscallApi& api, const std::string& dir) {
  std::set<int32_t> pids;
  const Result<std::vector<std::string>> names = api.ReadDir(dir);
  if (!names.ok()) return pids;
  for (const std::string& name : *names) {
    for (const char* prefix : {"a.out", "files", "stack", "ready", "claim"}) {
      const size_t len = std::string(prefix).size();
      if (name.size() <= len || name.compare(0, len, prefix) != 0) continue;
      bool digits = true;
      for (size_t i = len; i < name.size(); ++i) {
        if (name[i] < '0' || name[i] > '9') {
          digits = false;
          break;
        }
      }
      if (!digits) continue;
      pids.insert(static_cast<int32_t>(std::atoi(name.c_str() + len)));
      break;
    }
  }
  return pids;
}

struct ReapContext {
  kernel::SyscallApi& api;
  net::Network& net;
  const ReaperOptions& opts;
  ReaperState* state;
  ReaperReport* report;
  std::string local;
};

void Note(ReapContext& ctx, int32_t pid, const std::string& host,
          const char* action) {
  ctx.report->log += std::to_string(pid) + "@" + host + ":" + action + ";";
}

Result<int> RunRestart(ReapContext& ctx, const std::string& target,
                       int32_t pid, const std::string& dump_host) {
  std::vector<std::string> args = {"-p", std::to_string(pid), "-h", dump_host,
                                   "--claim"};
  if (target == ctx.local) {
    PMIG_TRY(int32_t child, ctx.api.SpawnProgram("restart", std::move(args)));
    (void)child;
    PMIG_TRY(kernel::WaitResult wr, ctx.api.Wait());
    return wr.overlaid ? 0 : wr.info.exit_code;
  }
  net::RemoteExecOptions remote_opts;
  if (ctx.opts.attempt_timeout > 0) remote_opts.timeout = ctx.opts.attempt_timeout;
  return ctx.opts.use_daemon
             ? net::DaemonExec(ctx.api, ctx.net, target, "restart",
                               std::move(args), remote_opts)
             : net::Rsh(ctx.api, ctx.net, target, "restart", std::move(args),
                        remote_opts);
}

// Re-drives the restart of a stale, unclaimed (or just-unclaimed) dump set on
// a placement-chosen reachable host, holding the target's lease while the
// restart runs. restart --claim's O_EXCL is the actual mutex against every
// other concurrent consumer — a racing coordinator's restart loses the claim
// and bows out.
void Revive(ReapContext& ctx, const std::string& host, const std::string& dir,
            int32_t pid, const core::DumpPaths& paths) {
  PlacementEngine engine(&ctx.net, ctx.opts.policy);
  PlacementQuery query;
  query.from_host = host;
  query.fault_threshold = ctx.opts.fault_threshold;
  query.health_threshold = ctx.opts.health_threshold;
  query.occupancy = true;
  query.context = "reaper";
  const size_t max_tries = ctx.net.hosts().size();
  for (size_t i = 0; i < max_tries; ++i) {
    std::string target = engine.PickTarget(query);
    if (target.empty()) {
      // No other host qualifies; the dump host itself (alive — we just read
      // its disk) is the fallback, as with migrate's source restart.
      target = host;
    }
    if (target != ctx.local && !ctx.net.Reachable(ctx.local, target)) {
      if (target == host) break;
      query.exclude.push_back(target);
      continue;
    }
    PlacementLease lease;
    if (ctx.opts.use_lease) {
      Result<PlacementLease> acquired =
          AcquirePlacementLease(ctx.api, ctx.net, target, ctx.opts.lease);
      if (!acquired.ok() || !acquired->held) {
        if (target == host) break;  // nowhere left to go this pass
        query.exclude.push_back(target);
        continue;
      }
      lease = *acquired;
    }
    const Result<int> rc = RunRestart(ctx, target, pid, host);
    if (ctx.opts.use_lease) ReleasePlacementLease(ctx.api, lease);
    if (rc.ok() && *rc == 0) {
      ctx.api.kernel().metrics().Inc("reaper.revived");
      RemoveDumpSet(ctx.api, paths);
      ctx.report->revived.push_back(pid);
      Note(ctx, pid, host, "revived");
      return;
    }
    if (rc.ok() && *rc == core::kToolClaimed) {
      // A concurrent consumer won the claim mid-pass; the process is in
      // better-informed hands. Leave the sweep to the winner.
      ctx.report->skipped.push_back(pid);
      Note(ctx, pid, host, "lost-claim");
      return;
    }
    // Transient or hard failure: keep the set for the next pass rather than
    // guessing. (A hard restart failure with a valid-looking set usually
    // means the set is unconsumable; the next pass's survivor/age checks
    // keep it from living forever.)
    ctx.report->skipped.push_back(pid);
    Note(ctx, pid, host, "revive-failed");
    return;
  }
  ctx.report->skipped.push_back(pid);
  Note(ctx, pid, host, "no-target");
}

void ReapOne(ReapContext& ctx, const std::string& host, const std::string& dir,
             int32_t pid) {
  ++ctx.report->scanned;
  const core::DumpPaths paths = core::DumpPaths::For(pid, dir);
  const sim::Nanos now = ctx.api.Now();

  // The origin process still running means there is no orphan here — the dump
  // is mid-flight (dumpproc polling) or already resumed after an abort.
  kernel::Kernel* owner = ctx.net.FindHost(host);
  if (owner != nullptr) {
    kernel::Proc* p = owner->FindProc(pid);
    if (p != nullptr && p->Alive()) {
      ctx.report->skipped.push_back(pid);
      Note(ctx, pid, host, "origin-alive");
      return;
    }
  }

  // A survivor elsewhere means the set was consumed and only its GC was cut
  // short (e.g. the consumer lost the source's disk to a partition right
  // after committing): collect it.
  if (SurvivorExists(ctx.net, ctx.local, host, pid)) {
    RemoveDumpSet(ctx.api, paths);
    ctx.api.kernel().metrics().Inc("reaper.collected");
    ctx.report->collected.push_back(pid);
    Note(ctx, pid, host, "consumed");
    return;
  }

  // Incomplete set (no ready marker): no timestamp to age it by, so it is
  // only debris once it has sat unchanged across a full grace period of
  // passes. One-shot runs (no state) must leave it alone — it may be a dump
  // landing right now.
  if (!PathExists(ctx.api, paths.ready)) {
    if (ctx.state == nullptr) {
      ctx.report->skipped.push_back(pid);
      Note(ctx, pid, host, "incomplete");
      return;
    }
    const std::string key = host + ":" + std::to_string(pid);
    auto it = ctx.state->find(key);
    if (it == ctx.state->end()) {
      (*ctx.state)[key] = now;
      ctx.report->skipped.push_back(pid);
      Note(ctx, pid, host, "incomplete-first-seen");
      return;
    }
    if (now - it->second < ctx.opts.grace) {
      ctx.report->skipped.push_back(pid);
      Note(ctx, pid, host, "incomplete-young");
      return;
    }
    ctx.state->erase(it);
    RemoveDumpSet(ctx.api, paths);
    ctx.api.kernel().metrics().Inc("reaper.collected");
    ctx.report->collected.push_back(pid);
    Note(ctx, pid, host, "debris");
    return;
  }

  // Complete set. Too young to touch?
  const core::DumpMarker ready = ReadMarker(ctx.api, paths.ready);
  if (ready.at >= 0 && now - ready.at < ctx.opts.grace) {
    ctx.report->skipped.push_back(pid);
    Note(ctx, pid, host, "young");
    return;
  }

  if (PathExists(ctx.api, paths.claim)) {
    const core::DumpMarker claim = ReadMarker(ctx.api, paths.claim);
    if (!claim.host.empty()) {
      kernel::Kernel* holder = ctx.net.FindHost(claim.host);
      const bool reachable = holder != nullptr && !holder->down() &&
                             ctx.net.Reachable(ctx.local, claim.host);
      if (!reachable) {
        // THE exactly-once rule: the holder may be running this process on
        // the far side of a partition. Hands off until it is observable.
        ctx.report->skipped.push_back(pid);
        Note(ctx, pid, host, "holder-unreachable");
        return;
      }
      if (claim.at >= 0 && now - claim.at < ctx.opts.grace) {
        ctx.report->skipped.push_back(pid);
        Note(ctx, pid, host, "claim-fresh");
        return;
      }
    }
    // The holder is reachable, no survivor exists anywhere we can see, and
    // the claim has gone stale: the claimant died between claiming and
    // committing. Break the claim under the dump host's lease (serialising
    // concurrent reapers over this host's sets) and re-drive the restart.
    PlacementLease breaker;
    if (ctx.opts.use_lease) {
      Result<PlacementLease> acquired =
          AcquirePlacementLease(ctx.api, ctx.net, host, ctx.opts.lease);
      if (!acquired.ok() || !acquired->held) {
        ctx.report->skipped.push_back(pid);
        Note(ctx, pid, host, "break-contended");
        return;
      }
      breaker = *acquired;
    }
    const Status st = ctx.api.Unlink(paths.claim);
    (void)st;
    ctx.api.kernel().metrics().Inc("reaper.claims_broken");
    // With the stale claim gone, restart --claim's O_EXCL is the mutex again;
    // release the serialising lease before reviving so the revive may lease
    // the dump host itself as a target.
    if (ctx.opts.use_lease) ReleasePlacementLease(ctx.api, breaker);
    Revive(ctx, host, dir, pid, paths);
    return;
  }

  // Ready, unclaimed, stale, no survivor: a completed dump whose coordinator
  // never came back for it. Revive it.
  Revive(ctx, host, dir, pid, paths);
}

}  // namespace

ReaperReport ReapOrphans(kernel::SyscallApi& api, net::Network& net,
                         const ReaperOptions& opts, ReaperState* state) {
  ReaperReport report;
  ReapContext ctx{api, net, opts, state, &report, api.GetHostname()};
  for (kernel::Kernel* host : net.hosts()) {
    if (host->down()) continue;
    const std::string hname = host->hostname();
    if (!opts.hosts.empty() &&
        std::find(opts.hosts.begin(), opts.hosts.end(), hname) == opts.hosts.end()) {
      continue;  // another shard's host
    }
    // Both directions must flow to scan and settle a host's sets; a one-way
    // view is how split brains happen.
    if (hname != ctx.local && (!net.Reachable(ctx.local, hname) ||
                               !net.Reachable(hname, ctx.local))) {
      continue;
    }
    const std::string dir =
        hname == ctx.local ? std::string("/usr/tmp") : "/n/" + hname + "/usr/tmp";
    for (int32_t pid : DumpSetPids(api, dir)) {
      ReapOne(ctx, hname, dir, pid);
    }
  }
  return report;
}

int PreapMain(kernel::SyscallApi& api, net::Network& net,
              const std::vector<std::string>& args) {
  ReaperOptions opts;
  for (size_t i = 0; i < args.size(); ++i) {
    if (args[i] == "-g" && i + 1 < args.size()) {
      opts.grace = sim::Seconds(std::atoi(args[++i].c_str()));
    } else if (args[i] == "--rsh") {
      opts.use_daemon = false;
    } else if (args[i] == "--no-lease") {
      opts.use_lease = false;
    } else if (args[i] == "-H" && i + 1 < args.size()) {
      opts.hosts.push_back(args[++i]);  // repeatable: this pass's shard
    } else {
      const Result<int64_t> n = api.Write(
          2, "usage: preap [-g grace_seconds] [-H host ...] [--rsh] [--no-lease]\n");
      (void)n;
      return core::kToolUsage;
    }
  }
  const ReaperReport report = ReapOrphans(api, net, opts);
  const Result<int64_t> n = api.Write(
      1, "preap: scanned " + std::to_string(report.scanned) + " revived " +
             std::to_string(report.revived.size()) + " collected " +
             std::to_string(report.collected.size()) + " skipped " +
             std::to_string(report.skipped.size()) + "\n");
  (void)n;
  return core::kToolOk;
}

int ReaperDaemonMain(kernel::SyscallApi& api, net::Network& net,
                     const ReaperOptions& opts) {
  ReaperState state;
  for (int round = 0; opts.rounds <= 0 || round < opts.rounds; ++round) {
    const ReaperReport report = ReapOrphans(api, net, opts, &state);
    (void)report;
    api.Sleep(opts.poll_interval);
  }
  return 0;
}

}  // namespace pmig::apps
