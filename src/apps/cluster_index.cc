#include "src/apps/cluster_index.h"

#include "src/apps/placement.h"

namespace pmig::apps {

ClusterIndex::ClusterIndex(net::Network* net, std::string local_host,
                           ClusterIndexOptions opts)
    : net_(net), local_(std::move(local_host)), opts_(opts) {
  for (kernel::Kernel* host : net_->hosts()) {
    IndexEntry e;
    e.host = host->hostname();
    e.order = entries_.size();
    by_name_[e.host] = e.order;
    rank_.insert({e.load, e.order});
    entries_.push_back(std::move(e));
  }
  load_observer_id_ = net_->AddLoadObserver(
      [this](const net::LoadObservation& obs) { NoteObservation(obs); });
  if (sim::FaultHistory* history = net_->fault_history(); history != nullptr) {
    listening_to_ = history;
    chained_listener_ = history->listener();
    history->set_listener([this](std::string_view host) {
      if (IndexEntry* e = FindMutable(host); e != nullptr) {
        e->fault_score = listening_to_->Score(host);
      }
      if (chained_listener_) chained_listener_(host);
    });
  }
}

ClusterIndex::~ClusterIndex() {
  net_->RemoveLoadObserver(load_observer_id_);
  if (listening_to_ != nullptr) {
    listening_to_->set_listener(std::move(chained_listener_));
  }
}

IndexEntry* ClusterIndex::FindMutable(std::string_view host) {
  const auto it = by_name_.find(host);
  return it == by_name_.end() ? nullptr : &entries_[it->second];
}

const IndexEntry* ClusterIndex::Find(std::string_view host) const {
  const auto it = by_name_.find(host);
  return it == by_name_.end() ? nullptr : &entries_[it->second];
}

void ClusterIndex::SetLoad(IndexEntry& e, int load) {
  if (e.load == load) return;
  rank_.erase(rank_.find({e.load, e.order}));
  e.load = load;
  rank_.insert({e.load, e.order});
}

void ClusterIndex::NoteMigrated(std::string_view from, std::string_view to) {
  if (IndexEntry* e = FindMutable(from); e != nullptr) {
    SetLoad(*e, e->load > 0 ? e->load - 1 : 0);
    if (e->occupancy > 0) --e->occupancy;
  }
  if (IndexEntry* e = FindMutable(to); e != nullptr) {
    SetLoad(*e, e->load + 1);
    ++e->occupancy;
    e->reachable = true;  // the leg just landed there
  }
}

void ClusterIndex::NoteReachable(std::string_view host, bool reachable) {
  if (IndexEntry* e = FindMutable(host); e != nullptr) e->reachable = reachable;
}

void ClusterIndex::NoteObservation(const net::LoadObservation& obs) {
  IndexEntry* e = FindMutable(obs.host);
  if (e == nullptr) return;
  e->down = obs.down;
  if (!obs.down) {
    SetLoad(*e, obs.runnable);
    e->occupancy = obs.alive_vm;
  }
  e->updated_at = obs.at;
}

void ClusterIndex::Survey(IndexEntry& e, sim::Nanos now) {
  kernel::Kernel* host = net_->FindHost(e.host);
  if (host == nullptr) return;
  e.down = host->down();
  if (!e.down) {
    NoteSurveyMessage(*host);
    SetLoad(e, HostLoad(*host));
    e.occupancy = HostOccupancy(*host);
  }
  // The free signals ride along: the history/monitor are coordinator-local
  // reads and reachability is a pure function — no extra messages.
  if (const sim::FaultHistory* h = net_->fault_history(); h != nullptr) {
    e.fault_score = h->Score(e.host);
  }
  if (const sim::HealthMonitor* m = net_->health_monitor(); m != nullptr) {
    e.health_score = m->HealthScore(e.host);
  }
  e.reachable = e.host == local_ || net_->Reachable(local_, e.host);
  e.updated_at = now;
}

int ClusterIndex::Refresh(sim::Nanos now) {
  int surveyed = 0;
  for (IndexEntry& e : entries_) {
    if (e.updated_at >= 0 && now - e.updated_at <= opts_.ttl) continue;
    Survey(e, now);
    ++surveyed;
  }
  return surveyed;
}

bool ClusterIndex::RefreshHost(std::string_view host, sim::Nanos now) {
  IndexEntry* e = FindMutable(host);
  if (e == nullptr) return false;
  Survey(*e, now);
  return true;
}

std::vector<std::pair<std::string, int>> ClusterIndex::Loads() const {
  std::vector<std::pair<std::string, int>> loads;
  for (const IndexEntry& e : entries_) {
    kernel::Kernel* host = net_->FindHost(e.host);
    if (host == nullptr || host->down()) continue;  // liveness is free: read live
    loads.emplace_back(e.host, e.load);
  }
  return loads;
}

}  // namespace pmig::apps
