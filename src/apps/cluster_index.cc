#include "src/apps/cluster_index.h"

#include "src/apps/placement.h"

namespace pmig::apps {

ClusterIndex::ClusterIndex(net::Network* net, std::string local_host,
                           ClusterIndexOptions opts)
    : net_(net), local_(std::move(local_host)), opts_(opts) {
  for (kernel::Kernel* host : net_->hosts()) {
    IndexEntry e;
    e.host = host->hostname();
    e.order = entries_.size();
    by_name_[e.host] = e.order;
    rank_.insert({e.load, e.order});
    live_loads_.insert(e.load);
    entries_.push_back(std::move(e));
  }
  load_observer_id_ = net_->AddLoadObserver(
      [this](const net::LoadObservation& obs) { NoteObservation(obs); });
  if (sim::FaultHistory* history = net_->fault_history(); history != nullptr) {
    listening_to_ = history;
    chain_ = std::make_shared<ListenerChain>();
    chain_->index = this;
    chain_->chained = history->listener();
    std::shared_ptr<ListenerChain> chain = chain_;
    history->set_listener([chain](std::string_view host) {
      if (chain->index != nullptr) chain->index->OnFaultRecorded(host);
      if (chain->chained) chain->chained(host);
    });
    listener_token_ = history->listener_token();
  }
}

ClusterIndex::~ClusterIndex() {
  net_->RemoveLoadObserver(load_observer_id_);
  if (listening_to_ != nullptr) {
    // Restore the saved chain only while our install is still the *top* of it
    // (the token has not moved). An index buried under a later subscriber must
    // not re-install its saved chain — that would both drop the later
    // subscriber and resurrect a closure over this dying object. Nulling the
    // shared state instead degrades our closure, wherever it still lives in
    // the chain, to a pure forwarder.
    if (listening_to_->listener_token() == listener_token_) {
      listening_to_->set_listener(std::move(chain_->chained));
    }
    chain_->index = nullptr;
  }
}

IndexEntry* ClusterIndex::FindMutable(std::string_view host) {
  const auto it = by_name_.find(host);
  return it == by_name_.end() ? nullptr : &entries_[it->second];
}

const IndexEntry* ClusterIndex::Find(std::string_view host) const {
  const auto it = by_name_.find(host);
  return it == by_name_.end() ? nullptr : &entries_[it->second];
}

void ClusterIndex::NotifyIfChanged(uint64_t epoch_before) {
  if (epoch_ != epoch_before && wake_) wake_();
}

void ClusterIndex::SetLoad(IndexEntry& e, int load) {
  if (e.load == load) return;
  rank_.erase(rank_.find({e.load, e.order}));
  if (!e.down) {
    live_loads_.erase(live_loads_.find(e.load));
    live_loads_.insert(load);
    live_total_ += load - e.load;
  }
  e.load = load;
  rank_.insert({e.load, e.order});
  ++epoch_;
}

void ClusterIndex::SetDown(IndexEntry& e, bool down) {
  if (e.down == down) return;
  if (down) {
    live_loads_.erase(live_loads_.find(e.load));
    live_total_ -= e.load;
  } else {
    live_loads_.insert(e.load);
    live_total_ += e.load;
  }
  e.down = down;
  ++epoch_;
}

void ClusterIndex::SetReachable(IndexEntry& e, bool reachable) {
  if (e.reachable == reachable) return;
  e.reachable = reachable;
  if (reachable) {
    unreachable_orders_.erase(e.order);
  } else {
    unreachable_orders_.insert(e.order);
  }
  ++epoch_;
}

int ClusterIndex::LoadSpread() const {
  if (live_loads_.size() < 2) return 0;
  return *live_loads_.rbegin() - *live_loads_.begin();
}

int ClusterIndex::TotalLoad() const { return static_cast<int>(live_total_); }

bool ClusterIndex::AnyMarkedUnreachableHealed() const {
  for (size_t order : unreachable_orders_) {
    const IndexEntry& e = entries_[order];
    if (e.host == local_) continue;
    if (net_->Reachable(local_, e.host)) return true;
  }
  return false;
}

void ClusterIndex::NoteMigrated(std::string_view from, std::string_view to) {
  const uint64_t before = epoch_;
  if (IndexEntry* e = FindMutable(from); e != nullptr) {
    SetLoad(*e, e->load > 0 ? e->load - 1 : 0);
    if (e->occupancy > 0) {
      --e->occupancy;
      ++epoch_;
    }
  }
  if (IndexEntry* e = FindMutable(to); e != nullptr) {
    SetLoad(*e, e->load + 1);
    ++e->occupancy;
    ++epoch_;
    SetReachable(*e, true);  // the leg just landed there
  }
  NotifyIfChanged(before);
}

void ClusterIndex::NoteReachable(std::string_view host, bool reachable) {
  const uint64_t before = epoch_;
  if (IndexEntry* e = FindMutable(host); e != nullptr) SetReachable(*e, reachable);
  NotifyIfChanged(before);
}

void ClusterIndex::NoteObservation(const net::LoadObservation& obs) {
  IndexEntry* e = FindMutable(obs.host);
  if (e == nullptr) return;
  const uint64_t before = epoch_;
  SetDown(*e, obs.down);
  if (!obs.down) {
    SetLoad(*e, obs.runnable);
    if (e->occupancy != obs.alive_vm) {
      e->occupancy = obs.alive_vm;
      ++epoch_;
    }
  }
  e->updated_at = obs.at;  // freshness renewal alone is not an event
  NotifyIfChanged(before);
}

void ClusterIndex::OnFaultRecorded(std::string_view host) {
  IndexEntry* e = FindMutable(host);
  if (e == nullptr || listening_to_ == nullptr) return;
  const double score = listening_to_->Score(host);
  if (score == e->fault_score) return;
  e->fault_score = score;
  ++epoch_;
  if (wake_) wake_();
}

void ClusterIndex::Survey(IndexEntry& e, sim::Nanos now) {
  kernel::Kernel* host = net_->FindHost(e.host);
  if (host == nullptr) return;
  SetDown(e, host->down());
  if (!e.down) {
    NoteSurveyMessage(*host);
    SetLoad(e, HostLoad(*host));
    if (const int occ = HostOccupancy(*host); occ != e.occupancy) {
      e.occupancy = occ;
      ++epoch_;
    }
  }
  // The free signals ride along: the history/monitor are coordinator-local
  // reads and reachability is a pure function — no extra messages.
  if (const sim::FaultHistory* h = net_->fault_history(); h != nullptr) {
    if (const double score = h->Score(e.host); score != e.fault_score) {
      e.fault_score = score;
      ++epoch_;
    }
  }
  if (const sim::HealthMonitor* m = net_->health_monitor(); m != nullptr) {
    if (const double score = m->HealthScore(e.host); score != e.health_score) {
      e.health_score = score;
      ++epoch_;
    }
  }
  SetReachable(e, e.host == local_ || net_->Reachable(local_, e.host));
  e.updated_at = now;
}

int ClusterIndex::Refresh(sim::Nanos now) {
  const uint64_t before = epoch_;
  int surveyed = 0;
  for (IndexEntry& e : entries_) {
    if (e.updated_at >= 0 && now - e.updated_at <= opts_.ttl) continue;
    Survey(e, now);
    ++surveyed;
  }
  NotifyIfChanged(before);
  return surveyed;
}

bool ClusterIndex::RefreshHost(std::string_view host, sim::Nanos now) {
  IndexEntry* e = FindMutable(host);
  if (e == nullptr) return false;
  const uint64_t before = epoch_;
  Survey(*e, now);
  NotifyIfChanged(before);
  return true;
}

std::vector<std::pair<std::string, int>> ClusterIndex::Loads() const {
  std::vector<std::pair<std::string, int>> loads;
  for (const IndexEntry& e : entries_) {
    kernel::Kernel* host = net_->FindHost(e.host);
    if (host == nullptr || host->down()) continue;  // liveness is free: read live
    loads.emplace_back(e.host, e.load);
  }
  return loads;
}

}  // namespace pmig::apps
