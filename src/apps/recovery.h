// Partition-tolerant recovery: placement leases and the orphan dump-set reaper.
//
// Two coordination protocols, both built on nothing but O_EXCL file creation
// over NFS (the same primitive as the dump claim files), virtual-time
// timestamps written into the files (inodes carry no mtime), and the
// reachability model — so they need no new kernel machinery and degrade to
// ordinary Errno failures across a partition.
//
//   Placement lease — /var/lease/placement on the *target* host. A coordinator
//   (balancer, evacuation, night shift, reaper) acquires it before aiming a
//   migration at the target and releases it afterwards; a second coordinator
//   finds the file, reads the holder, and picks somewhere else. Expiry makes a
//   crashed or partitioned holder's lease breakable instead of a permanent
//   denial of service.
//
//   Orphan reaper — scans every reachable host's /usr/tmp for dump sets whose
//   coordinator is gone: claimed by a host that died mid-restart, completed
//   (readyXXXXX) but never consumed, or half-written debris. Depending on what
//   it finds it revives the process on a placement-engine-chosen host, GCs the
//   set, or — crucially — leaves it alone. The exactly-once rule, shared with
//   core::Migrate's fallback path: NOBODY sweeps or resurrects a claimed dump
//   set while its claim holder is unreachable, because the holder may be
//   running the process on the far side of the partition. Only after the heal,
//   when the holder (and any survivor process) is observable again, does the
//   set get settled — as a GC if the restart committed, as a revival if the
//   claimant died first.
//
// Determinism: everything here is surveys, file ops, and virtual-time sleeps —
// no RNG, no wall clock — so recovery passes replay bit-identically.

#ifndef PMIG_SRC_APPS_RECOVERY_H_
#define PMIG_SRC_APPS_RECOVERY_H_

#include <map>
#include <string>
#include <vector>

#include "src/apps/placement.h"
#include "src/core/tools.h"
#include "src/kernel/kernel.h"
#include "src/net/network.h"

namespace pmig::apps {

// Every host's lease directory (created world-writable at boot, like /usr/tmp).
inline constexpr char kLeaseDir[] = "/var/lease";

struct LeaseOptions {
  sim::Nanos ttl = sim::Seconds(30);
  // Contention wait budget. 0 (the default) keeps the classic one-shot
  // behaviour: contention returns held=false immediately and the caller picks
  // somewhere else. Positive: retry the acquisition with deterministic
  // doubling backoff — sleep first_backoff, then double up to max_backoff —
  // until a retry would push the total slept time past `wait`. Backoff stops
  // contending coordinators from hammering the target's lease file at a fixed
  // cadence; the slept time is booked in the lease.wait_ns counter.
  sim::Nanos wait = 0;
  sim::Nanos first_backoff = sim::Millis(100);
  sim::Nanos max_backoff = sim::Seconds(5);
};

struct PlacementLease {
  std::string target;
  std::string holder;      // us when held; the contending holder otherwise
  sim::Nanos expires = 0;
  bool held = false;
};

// Tries to acquire `target`'s placement lease for the calling host (O_EXCL
// create of /n/<target>/var/lease/placement). A present-but-expired lease is
// broken and the acquisition retried once. Returns held=false carrying the
// current holder on contention; an Errno when the target cannot be reached at
// all (down, partitioned) — a coordinator cut off from its target must abandon
// cleanly, not wedge.
Result<PlacementLease> AcquirePlacementLease(kernel::SyscallApi& api,
                                             net::Network& net,
                                             const std::string& target,
                                             const LeaseOptions& opts = {});

// Extends a held lease's expiry to now + ttl. Fails (kAcces) if the lease file
// no longer names us — someone broke an expired lease we sat on too long.
Status RenewPlacementLease(kernel::SyscallApi& api, PlacementLease* lease,
                           const LeaseOptions& opts = {});

// Releases a held lease (verifying it is still ours before unlinking, so a
// broken-and-reacquired lease is never released out from under its new
// holder). No-op on a lease that was never held.
void ReleasePlacementLease(kernel::SyscallApi& api, const PlacementLease& lease);

// --- Orphan dump-set reaper ---------------------------------------------------

struct ReaperOptions {
  // Minimum marker age before a dump set is considered abandoned. Must
  // comfortably exceed migrate's fallback persistence window (30 s) so the
  // reaper and a still-running coordinator don't race over a live transaction.
  sim::Nanos grace = sim::Seconds(60);
  bool use_daemon = true;                // transport for remote restarts
  sim::Nanos attempt_timeout = sim::Seconds(30);
  PlacementPolicy policy = PlacementPolicy::kLoadOnly;
  double fault_threshold = 0.5;
  double health_threshold = 1.0;
  bool use_lease = true;                 // lease targets before reviving
  LeaseOptions lease;
  // Periodic pass (ReaperDaemonMain) cadence and bound; rounds 0 = forever.
  sim::Nanos poll_interval = sim::Seconds(30);
  int rounds = 0;
  // Scan only these hosts' /usr/tmp (empty = every host, the classic serial
  // cluster pass). Per-host reaper daemons on a big cluster each take a
  // shard of the host list so the scan splits instead of serialising; the
  // decision ladder and the exactly-once rule are unchanged, and restart
  // --claim's O_EXCL still arbitrates any overlap between shards.
  std::vector<std::string> hosts;
};

// Caller-owned first-seen times for marker-less (incomplete) dump sets, keyed
// "host:pid". A set with no readyXXXXX has no timestamp to age it by, so the
// reaper only collects it after seeing it across a full grace period. One-shot
// passes without state leave incomplete sets alone.
using ReaperState = std::map<std::string, sim::Nanos>;

struct ReaperReport {
  int scanned = 0;
  std::vector<int32_t> revived;    // restart re-driven on a healthy host
  std::vector<int32_t> collected;  // dump set GCed (consumed or debris)
  std::vector<int32_t> skipped;    // left alone (young, holder unreachable, ...)
  std::string log;                 // "pid@host:action;" per decision, for tests
};

// One reaper pass over every reachable host's /usr/tmp.
ReaperReport ReapOrphans(kernel::SyscallApi& api, net::Network& net,
                         const ReaperOptions& opts = {},
                         ReaperState* state = nullptr);

// preap [-g grace_seconds] [--rsh] [--no-lease]: one reaper pass from this
// host; prints "preap: scanned N revived N collected N skipped N".
int PreapMain(kernel::SyscallApi& api, net::Network& net,
              const std::vector<std::string>& args);

// The periodic cluster pass: ReapOrphans every poll_interval (with first-seen
// state carried across passes), opts.rounds times (0 = forever).
int ReaperDaemonMain(kernel::SyscallApi& api, net::Network& net,
                     const ReaperOptions& opts = {});

}  // namespace pmig::apps

#endif  // PMIG_SRC_APPS_RECOVERY_H_
