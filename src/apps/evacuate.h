// Host evacuation — the paper's introductory use case: "moving a process from a
// machine that is about to go down, to another."
//
// EvacuateHost migrates every live VM process off a machine (skipping the ones
// Section 7 says cannot move: socket holders and parents with children — those
// are reported, not silently dropped). Run it as root before taking the machine
// down for maintenance.

#ifndef PMIG_SRC_APPS_EVACUATE_H_
#define PMIG_SRC_APPS_EVACUATE_H_

#include <string>
#include <vector>

#include "src/apps/placement.h"
#include "src/core/tools.h"
#include "src/kernel/kernel.h"
#include "src/net/network.h"

namespace pmig::apps {

// Distinct overall exit statuses (see EvacuationReport::Status). kUnplaced is
// deliberately outside the tool exit-code range (0..5): an evacuation that
// left processes stranded on the host with no target is not a success and not
// an ordinary failure — the caller must re-drive placement (retry later, relax
// thresholds, or hand the survivors to the reaper).
constexpr int kEvacuateOk = 0;
constexpr int kEvacuateFailed = 1;
constexpr int kEvacuateUnplaced = 6;

struct EvacuationReport {
  std::vector<int32_t> moved;        // migrated successfully
  std::vector<int32_t> unmovable;    // skipped: sockets / children (Section 7)
  std::vector<int32_t> failed;       // migration attempted but failed
  std::vector<int32_t> unplaced;     // engine found no eligible target (not attempted)
  int lease_conflicts = 0;           // target re-picked because its lease was held

  // kEvacuateUnplaced when anything was left with no target (dominates: those
  // processes are still on the dying host), else kEvacuateFailed when any
  // migration failed, else kEvacuateOk.
  int Status() const {
    if (!unplaced.empty()) return kEvacuateUnplaced;
    if (!failed.empty()) return kEvacuateFailed;
    return kEvacuateOk;
  }
};

// Moves every eligible VM process from `from_host` to `to_host`. The caller must
// be root (it migrates other users' processes). Pass MigrateOptions::Robust()
// as `opts` to evacuate through a flaky network: each migration then retries
// transient failures and falls back to restarting on the source rather than
// losing the process (counted as failed, since it did not move).
//
// An empty `to_host` asks the PlacementEngine to pick a target per process under
// `policy` — spreading the evacuees across the cluster instead of dumping them
// all on one machine, and never picking a host that is down (or, under the
// fault-aware policies, one with a bad recent track record or a health-monitor
// score at or above `health_threshold`). Processes with no eligible target are
// reported as `unplaced` and receive no migrate attempt.
//
// With `lease_targets`, each auto-placed pick is held under the target's
// placement lease for the duration of its migration (contended targets are
// excluded and the pick re-run), so an evacuation and a balancer — or two
// evacuations — cannot dog-pile one receiving host.
//
// With `index` (a coordinator-maintained apps::ClusterIndex), each auto-placed
// pick reads the index instead of re-surveying the cluster per evacuee, and
// targets the coordinator cannot currently reach are filtered before any
// migrate leg. Each committed move is noted back into the index, so
// consecutive picks see the occupancy the re-survey used to provide. Null
// (the default) keeps the classic per-process survey.
//
// The returned report's Status() is the command-style verdict: unplaced
// processes make the whole evacuation kEvacuateUnplaced (nonzero), never a
// silent success. Per-host `evacuate.unplaced` / `evacuate.failed` counters
// surface the same facts in the cluster run report.
EvacuationReport EvacuateHost(kernel::SyscallApi& api, net::Network& net,
                              std::string_view from_host, std::string_view to_host,
                              bool use_daemon = true,
                              const core::MigrateOptions& opts = {},
                              PlacementPolicy policy = PlacementPolicy::kLoadOnly,
                              double fault_threshold = 0.5,
                              double health_threshold = 1.0,
                              bool lease_targets = false,
                              sim::Nanos lease_ttl = sim::Seconds(30),
                              ClusterIndex* index = nullptr);

}  // namespace pmig::apps

#endif  // PMIG_SRC_APPS_EVACUATE_H_
