// The "CPU hogs at night" application (Section 8, third application).
//
// "These jobs can be run in one machine during the day ..., when users want to use
// the majority of the machines in the network. At night, when the load on most
// machines is low, these jobs can be distributed evenly throughout the system."
//
// NightShiftController is a native program: at nightfall it spreads every hog
// process from the day machine across the cluster; at dawn it gathers them back
// onto the day machine. Hogs are recognised by ownership (a dedicated batch uid),
// not by name — migration renames processes. Spread targets come from the
// PlacementEngine: the default kLoadOnly policy keeps the historical round-robin
// walk (now skipping crashed hosts); the richer policies place each job on the
// engine's best candidate instead.

#ifndef PMIG_SRC_APPS_NIGHT_SHIFT_H_
#define PMIG_SRC_APPS_NIGHT_SHIFT_H_

#include <string>
#include <vector>

#include "src/apps/placement.h"
#include "src/core/tools.h"
#include "src/kernel/kernel.h"
#include "src/net/network.h"

namespace pmig::apps {

struct NightShiftOptions {
  // Where the hogs live during the day. Empty = let the placement engine pick
  // one under `policy` (least occupied eligible host, fault/health-filtered)
  // instead of the caller hardcoding a machine; the choice is made once at
  // startup and reported in NightShiftStats::day_host.
  std::string day_host;
  int32_t batch_uid = 999;     // uid that marks batch (hog) jobs
  sim::Nanos night_length = sim::Seconds(60);
  int nights = 1;
  bool use_daemon = true;
  // Target selection for the dusk spread. kLoadOnly keeps the round-robin walk
  // over eligible hosts; other policies pick per-job via the engine.
  PlacementPolicy policy = PlacementPolicy::kLoadOnly;
  double fault_threshold = 0.5;
  // Passed through to every core::Migrate call (dusk and dawn). Default is the
  // one-shot command; core::MigrateOptions::Robust() makes each a transaction.
  core::MigrateOptions migrate;
  // Hold each spread target's placement lease across its migration, skipping
  // (kLoadOnly) or excluding (engine policies) targets another coordinator
  // holds. Off by default: solo runs are untouched (and bit-identical).
  bool lease_targets = false;
  sim::Nanos lease_ttl = sim::Seconds(30);
};

struct NightShiftStats {
  int spread_migrations = 0;   // dusk: day host -> others
  int gather_migrations = 0;   // dawn: others -> day host
  int nights_run = 0;
  int failed_spread = 0;       // dusk migrations that failed (job stayed home)
  // Dawn gathers that failed or could not be attempted — each is a job visibly
  // stranded on a night host instead of silently uncounted.
  int failed_gather = 0;
  int lease_conflicts = 0;     // dusk target skipped because its lease was held
  // The day host actually used: options.day_host, or the engine's pick when
  // that was empty ("" when nothing was eligible and the run did nothing).
  std::string day_host;
};

// Pids of live batch-uid VM processes on `host`.
std::vector<int32_t> BatchJobsOn(kernel::Kernel& host, int32_t batch_uid);

NightShiftStats RunNightShift(kernel::SyscallApi& api, net::Network& net,
                              const NightShiftOptions& options);

}  // namespace pmig::apps

#endif  // PMIG_SRC_APPS_NIGHT_SHIFT_H_
