#include "src/apps/placement.h"

#include "src/core/dump_format.h"
#include "src/sim/hash.h"
#include "src/vm/cpu.h"

namespace pmig::apps {

std::string_view PlacementPolicyName(PlacementPolicy policy) {
  switch (policy) {
    case PlacementPolicy::kLoadOnly:
      return "load-only";
    case PlacementPolicy::kCostAware:
      return "cost-aware";
    case PlacementPolicy::kFaultAware:
      return "fault-aware";
    case PlacementPolicy::kCombined:
      return "combined";
  }
  return "?";
}

int HostLoad(kernel::Kernel& host) {
  if (host.metrics().enabled()) {
    return static_cast<int>(host.metrics().Gauge("sched.runnable_vm"));
  }
  int runnable = 0;
  for (kernel::Proc* p : host.ListProcs()) {
    if (p->kind == kernel::ProcKind::kVm && p->state == kernel::ProcState::kRunnable) {
      ++runnable;
    }
  }
  return runnable;
}

std::vector<std::pair<std::string, int>> SurveyLoad(net::Network& net) {
  std::vector<std::pair<std::string, int>> loads;
  for (kernel::Kernel* host : net.hosts()) {
    if (host->down()) continue;  // a crashed machine is not an idle machine
    loads.emplace_back(host->hostname(), HostLoad(*host));
  }
  return loads;
}

namespace {

// Does `host`'s /var/segcache hold the blob for `digest`? A survey-style read
// of the host's own disk (the balancer already reads run queues this way).
bool HasCachedSegment(kernel::Kernel& host, uint64_t digest) {
  return host.vfs()
      .Resolve(host.vfs().RootState(), core::SegCachePath(digest), vfs::Follow::kAll,
               nullptr)
      .ok();
}

// Bytes a dump of `pid` would put on the wire toward `to`: segments the target
// already caches travel by digest (free); an armed dirty-tracked process whose
// base is cached ships only its dirty pages; everything else ships in full.
int64_t EstimatedBytes(kernel::Kernel& from, kernel::Kernel& to, int32_t pid) {
  kernel::Proc* p = from.FindProc(pid);
  if (p == nullptr || p->kind != kernel::ProcKind::kVm || p->vm == nullptr) return 0;
  const vm::VmContext& ctx = *p->vm;
  int64_t bytes = 0;
  if (!HasCachedSegment(to, sim::HashBytes(ctx.text))) {
    bytes += static_cast<int64_t>(ctx.text.size());
  }
  const bool delta_ok = ctx.dirty.armed && ctx.data.size() == ctx.dirty.base.size();
  if (delta_ok && HasCachedSegment(to, sim::HashBytes(ctx.dirty.base))) {
    bytes += ctx.dirty.CountDataDirty() * static_cast<int64_t>(vm::kDirtyPageBytes);
  } else {
    bytes += static_cast<int64_t>(ctx.data.size());
  }
  return bytes;
}

// Total observed net.bytes between the pair, both directions, across every
// host's registry (each end books the legs it received). Zero with metrics off.
int64_t WireHistory(net::Network& net, const std::string& a, const std::string& b) {
  const std::string ab = "net.bytes." + a + "->" + b;
  const std::string ba = "net.bytes." + b + "->" + a;
  int64_t total = 0;
  for (kernel::Kernel* host : net.hosts()) {
    total += host->metrics().Counter(ab) + host->metrics().Counter(ba);
  }
  return total;
}

// Occupancy load: every live VM process, runnable or not (see
// PlacementQuery::occupancy).
int AliveVmCount(kernel::Kernel& host) {
  int alive = 0;
  for (kernel::Proc* p : host.ListProcs()) {
    if (p->kind == kernel::ProcKind::kVm && p->Alive()) ++alive;
  }
  return alive;
}

}  // namespace

bool PlacementEngine::Eligible(const kernel::Kernel& host, double fault_threshold,
                               double health_threshold) const {
  if (host.down()) return false;
  if (UsesFaultSignal()) {
    const sim::FaultHistory* history = net_->fault_history();
    if (history != nullptr && history->Score(host.hostname()) >= fault_threshold) {
      return false;
    }
    const sim::HealthMonitor* monitor = net_->health_monitor();
    if (monitor != nullptr && monitor->HealthScore(host.hostname()) >= health_threshold) {
      return false;
    }
  }
  return true;
}

std::vector<CandidateScore> PlacementEngine::Score(const PlacementQuery& query) const {
  std::vector<CandidateScore> scores;
  kernel::Kernel* from = net_->FindHost(query.from_host);
  const sim::FaultHistory* history = net_->fault_history();
  for (kernel::Kernel* host : net_->hosts()) {
    if (host->down() || host->hostname() == query.from_host) continue;
    bool excluded = false;
    for (const std::string& name : query.exclude) {
      if (name == host->hostname()) {
        excluded = true;
        break;
      }
    }
    if (excluded) continue;
    CandidateScore s;
    s.host = host->hostname();
    s.load = query.occupancy ? AliveVmCount(*host) : HostLoad(*host);
    if (UsesCostSignal() && from != nullptr && query.pid >= 0) {
      s.est_bytes = EstimatedBytes(*from, *host, query.pid);
      s.wire_history = WireHistory(*net_, query.from_host, s.host);
      const sim::Histogram* restarts = host->metrics().FindHistogram("migration.restart_ns");
      if (restarts != nullptr) s.est_restart_ns = restarts->Percentile(50);
    }
    if (history != nullptr) s.fault_score = history->Score(s.host);
    s.fault_excluded = UsesFaultSignal() && s.fault_score >= query.fault_threshold;
    const sim::HealthMonitor* monitor = net_->health_monitor();
    if (monitor != nullptr) s.health_score = monitor->HealthScore(s.host);
    s.health_excluded = UsesFaultSignal() && s.health_score >= query.health_threshold;
    scores.push_back(std::move(s));
  }
  return scores;
}

bool PlacementEngine::Beats(const CandidateScore& better,
                            const CandidateScore& incumbent) const {
  if (better.load != incumbent.load) return better.load < incumbent.load;
  if (UsesCostSignal() && better.est_bytes != incumbent.est_bytes) {
    return better.est_bytes < incumbent.est_bytes;
  }
  if (UsesFaultSignal() && better.fault_score != incumbent.fault_score) {
    return better.fault_score < incumbent.fault_score;
  }
  // Below-threshold health still orders candidates: a host with one anomalous
  // series loses to a clean one. Zero everywhere (monitor off) changes nothing.
  if (UsesFaultSignal() && better.health_score != incumbent.health_score) {
    return better.health_score < incumbent.health_score;
  }
  if (UsesCostSignal() && better.wire_history != incumbent.wire_history) {
    return better.wire_history > incumbent.wire_history;  // prefer the warm path
  }
  // Last resort: the histogram-backed restart-latency record. Deliberately the
  // weakest signal — it only decides when every structural signal ties.
  if (UsesCostSignal() && better.est_restart_ns != incumbent.est_restart_ns) {
    return better.est_restart_ns < incumbent.est_restart_ns;
  }
  return false;  // equal: the incumbent (earlier in network order) keeps the slot
}

std::string PlacementEngine::PickTarget(const PlacementQuery& query) const {
  const std::vector<CandidateScore> scores = Score(query);
  const CandidateScore* best = nullptr;
  for (const CandidateScore& s : scores) {
    if (s.fault_excluded || s.health_excluded) continue;
    if (best == nullptr || Beats(s, *best)) best = &s;
  }
  return best != nullptr ? best->host : std::string();
}

}  // namespace pmig::apps
