#include "src/apps/placement.h"

#include <cmath>

#include "src/apps/cluster_index.h"
#include "src/apps/decision_log.h"
#include "src/core/dump_format.h"
#include "src/sim/hash.h"
#include "src/vm/cpu.h"

namespace pmig::apps {

std::string_view PlacementPolicyName(PlacementPolicy policy) {
  switch (policy) {
    case PlacementPolicy::kLoadOnly:
      return "load-only";
    case PlacementPolicy::kCostAware:
      return "cost-aware";
    case PlacementPolicy::kFaultAware:
      return "fault-aware";
    case PlacementPolicy::kCombined:
      return "combined";
  }
  return "?";
}

int HostLoad(kernel::Kernel& host) {
  if (host.metrics().enabled()) {
    return static_cast<int>(host.metrics().Gauge("sched.runnable_vm"));
  }
  int runnable = 0;
  for (kernel::Proc* p : host.ListProcs()) {
    if (p->kind == kernel::ProcKind::kVm && p->state == kernel::ProcState::kRunnable) {
      ++runnable;
    }
  }
  return runnable;
}

std::vector<std::pair<std::string, int>> SurveyLoad(net::Network& net) {
  std::vector<std::pair<std::string, int>> loads;
  for (kernel::Kernel* host : net.hosts()) {
    if (host->down()) continue;  // a crashed machine is not an idle machine
    NoteSurveyMessage(*host);
    loads.emplace_back(host->hostname(), HostLoad(*host));
  }
  return loads;
}

void NoteSurveyMessage(kernel::Kernel& surveyed) {
  surveyed.metrics().Inc("placement.survey_msgs");
}

namespace {

// Does `host`'s /var/segcache hold the blob for `digest`? A survey-style read
// of the host's own disk (the balancer already reads run queues this way).
bool HasCachedSegment(kernel::Kernel& host, uint64_t digest) {
  return host.vfs()
      .Resolve(host.vfs().RootState(), core::SegCachePath(digest), vfs::Follow::kAll,
               nullptr)
      .ok();
}

// Bytes a dump of `pid` would put on the wire toward `to`: segments the target
// already caches travel by digest (free); an armed dirty-tracked process whose
// base is cached ships only its dirty pages; everything else ships in full.
int64_t EstimatedBytes(kernel::Kernel& from, kernel::Kernel& to, int32_t pid) {
  kernel::Proc* p = from.FindProc(pid);
  if (p == nullptr || p->kind != kernel::ProcKind::kVm || p->vm == nullptr) return 0;
  const vm::VmContext& ctx = *p->vm;
  int64_t bytes = 0;
  if (!HasCachedSegment(to, sim::HashBytes(ctx.text))) {
    bytes += static_cast<int64_t>(ctx.text.size());
  }
  const bool delta_ok = ctx.dirty.armed && ctx.data.size() == ctx.dirty.base.size();
  if (delta_ok && HasCachedSegment(to, sim::HashBytes(ctx.dirty.base))) {
    bytes += ctx.dirty.CountDataDirty() * static_cast<int64_t>(vm::kDirtyPageBytes);
  } else {
    bytes += static_cast<int64_t>(ctx.data.size());
  }
  return bytes;
}

// Total observed net.bytes between the pair, both directions, across every
// host's registry (each end books the legs it received). Zero with metrics off.
int64_t WireHistory(net::Network& net, const std::string& a, const std::string& b) {
  const std::string ab = "net.bytes." + a + "->" + b;
  const std::string ba = "net.bytes." + b + "->" + a;
  int64_t total = 0;
  for (kernel::Kernel* host : net.hosts()) {
    total += host->metrics().Counter(ab) + host->metrics().Counter(ba);
  }
  return total;
}

}  // namespace

int HostOccupancy(kernel::Kernel& host) {
  int alive = 0;
  for (kernel::Proc* p : host.ListProcs()) {
    if (p->kind == kernel::ProcKind::kVm && p->Alive()) ++alive;
  }
  return alive;
}

bool PlacementEngine::Eligible(const kernel::Kernel& host, double fault_threshold,
                               double health_threshold) const {
  if (host.down()) return false;
  if (UsesFaultSignal()) {
    const sim::FaultHistory* history = net_->fault_history();
    if (history != nullptr && history->Score(host.hostname()) >= fault_threshold) {
      return false;
    }
    const sim::HealthMonitor* monitor = net_->health_monitor();
    if (monitor != nullptr && monitor->HealthScore(host.hostname()) >= health_threshold) {
      return false;
    }
  }
  return true;
}

// The per-query candidate filters shared by every path: never the source,
// never an excluded host, and — when the query names a coordinator — never a
// host it cannot currently reach (a free read of the partition model; the
// wasted migrate leg is the whole point of filtering here).
bool PlacementEngine::PassesQueryFilters(const PlacementQuery& query,
                                         std::string_view host) const {
  if (host == query.from_host) return false;
  for (const std::string& name : query.exclude) {
    if (name == host) return false;
  }
  if (!query.reachable_from.empty() && host != query.reachable_from &&
      !net_->Reachable(query.reachable_from, host)) {
    return false;
  }
  return true;
}

// Fills every signal except load (the caller knows whether load came from a
// survey or the index). The fault/health reads are coordinator-local memory
// and cost no messages; the cost probes only fire under the cost policies.
void PlacementEngine::FillSignals(const PlacementQuery& query, kernel::Kernel* from,
                                  kernel::Kernel& host, CandidateScore* s) const {
  if (UsesCostSignal() && from != nullptr && query.pid >= 0) {
    s->est_bytes = EstimatedBytes(*from, host, query.pid);
    s->wire_history = WireHistory(*net_, query.from_host, s->host);
    const sim::Histogram* restarts = host.metrics().FindHistogram("migration.restart_ns");
    if (restarts != nullptr) s->est_restart_ns = restarts->Percentile(50);
  }
  if (const sim::FaultHistory* history = net_->fault_history(); history != nullptr) {
    s->fault_score = history->Score(s->host);
  }
  s->fault_excluded = UsesFaultSignal() && s->fault_score >= query.fault_threshold;
  if (const sim::HealthMonitor* monitor = net_->health_monitor(); monitor != nullptr) {
    s->health_score = monitor->HealthScore(s->host);
  }
  s->health_excluded = UsesFaultSignal() && s->health_score >= query.health_threshold;
}

std::vector<CandidateScore> PlacementEngine::Score(const PlacementQuery& query) const {
  if (query.index != nullptr) return ScoreFromIndex(query);
  std::vector<CandidateScore> scores;
  kernel::Kernel* from = net_->FindHost(query.from_host);
  for (kernel::Kernel* host : net_->hosts()) {
    if (host->down() || !PassesQueryFilters(query, host->hostname())) continue;
    CandidateScore s;
    s.host = host->hostname();
    NoteSurveyMessage(*host);
    s.load = query.occupancy ? HostOccupancy(*host) : HostLoad(*host);
    FillSignals(query, from, *host, &s);
    scores.push_back(std::move(s));
  }
  return scores;
}

// The index-backed Score: loads come from the maintained entries (zero survey
// messages); liveness, reachability, and fault/health are re-read live — all
// free. On a fresh index the list is element-for-element what the full scan
// would have produced.
std::vector<CandidateScore> PlacementEngine::ScoreFromIndex(
    const PlacementQuery& query) const {
  std::vector<CandidateScore> scores;
  kernel::Kernel* from = net_->FindHost(query.from_host);
  for (const IndexEntry& e : query.index->entries()) {
    if (!PassesQueryFilters(query, e.host)) continue;
    kernel::Kernel* host = net_->FindHost(e.host);
    if (host == nullptr || host->down()) continue;
    CandidateScore s;
    s.host = e.host;
    s.load = query.occupancy ? e.occupancy : e.load;
    FillSignals(query, from, *host, &s);
    scores.push_back(std::move(s));
  }
  return scores;
}

bool PlacementEngine::Beats(const CandidateScore& better,
                            const CandidateScore& incumbent) const {
  if (better.load != incumbent.load) return better.load < incumbent.load;
  if (UsesCostSignal() && better.est_bytes != incumbent.est_bytes) {
    return better.est_bytes < incumbent.est_bytes;
  }
  if (UsesFaultSignal() && better.fault_score != incumbent.fault_score) {
    return better.fault_score < incumbent.fault_score;
  }
  // Below-threshold health still orders candidates: a host with one anomalous
  // series loses to a clean one. Zero everywhere (monitor off) changes nothing.
  if (UsesFaultSignal() && better.health_score != incumbent.health_score) {
    return better.health_score < incumbent.health_score;
  }
  if (UsesCostSignal() && better.wire_history != incumbent.wire_history) {
    return better.wire_history > incumbent.wire_history;  // prefer the warm path
  }
  // Last resort: the histogram-backed restart-latency record. Deliberately the
  // weakest signal — it only decides when every structural signal ties.
  if (UsesCostSignal() && better.est_restart_ns != incumbent.est_restart_ns) {
    return better.est_restart_ns < incumbent.est_restart_ns;
  }
  return false;  // equal: the incumbent (earlier in network order) keeps the slot
}

// The full audit record for one pick. Everything here is a free read or pure
// bookkeeping: the candidate signals were already computed for the decision,
// the exclusion walk touches only down()/Reachable()/the query's own lists,
// and the runner-up re-ranks the in-memory scores — so recording can never
// move a virtual time or consume RNG, and an armed-but-unread log replays
// bit-identically (the decision_diff gate pins this).
void PlacementEngine::RecordDecision(const PlacementQuery& query, bool from_index,
                                     const std::vector<CandidateScore>& scores,
                                     const std::string& chosen) const {
  DecisionLog* log = net_->decision_log();
  if (log == nullptr || !log->enabled()) return;
  DecisionRecord r;
  r.context = query.context;
  r.policy = std::string(PlacementPolicyName(policy_));
  r.source = from_index ? "index" : "scan";
  r.from_host = query.from_host;
  r.pid = query.pid;
  r.chosen = chosen;
  for (const CandidateScore& s : scores) {
    r.candidates.push_back({s.host, s.load, s.est_bytes, s.wire_history,
                            s.est_restart_ns, s.fault_score, s.health_score});
  }
  // Exclusions, in network order. A scored-but-threshold-excluded host keeps
  // its candidate row (pwhy shows the scores that damned it) *and* gets an
  // exclusion naming the tripping factor; hosts the filters dropped before
  // scoring get a structural reason, checked in the filters' own precedence:
  // liveness, then the caller's exclude list, then reachability.
  for (kernel::Kernel* host : net_->hosts()) {
    const std::string& name = host->hostname();
    if (name == query.from_host) continue;  // the source is never a candidate
    const CandidateScore* s = nullptr;
    for (const CandidateScore& cs : scores) {
      if (cs.host == name) {
        s = &cs;
        break;
      }
    }
    if (s != nullptr) {
      if (s->fault_excluded) {
        r.exclusions.push_back({name, "fault-threshold", s->fault_score});
      } else if (s->health_excluded) {
        r.exclusions.push_back({name, "health-threshold", s->health_score});
      }
      continue;
    }
    if (host->down()) {
      r.exclusions.push_back({name, "down", 0});
      continue;
    }
    bool listed = false;
    for (const std::string& ex : query.exclude) {
      if (ex == name) {
        listed = true;
        break;
      }
    }
    if (listed) {
      r.exclusions.push_back({name, query.exclude_reason, 0});
      continue;
    }
    if (!query.reachable_from.empty() && name != query.reachable_from &&
        !net_->Reachable(query.reachable_from, name)) {
      r.exclusions.push_back({name, "partitioned-from-source", 0});
    }
    // A live, reachable, unlisted host absent from the scores can only be a
    // host the index has not met yet; it was invisible, not excluded.
  }
  // Runner-up: the best eligible candidate that is not the winner, ranked by
  // the same Beats order the pick used. The margin names the first factor
  // where they differ; a dead tie ("order" — decided only by network
  // position) is the near-tie an operator should know about.
  const CandidateScore* chosen_s = nullptr;
  const CandidateScore* ru = nullptr;
  for (const CandidateScore& s : scores) {
    if (!chosen.empty() && s.host == chosen) {
      chosen_s = &s;
      continue;
    }
    if (s.fault_excluded || s.health_excluded) continue;
    if (ru == nullptr || Beats(s, *ru)) ru = &s;
  }
  if (chosen_s == nullptr) {
    r.margin_factor = "none";
  } else if (ru == nullptr) {
    r.margin_factor = "only";
  } else {
    r.runner_up = ru->host;
    if (chosen_s->load != ru->load) {
      r.margin_factor = "load";
      r.margin = std::abs(static_cast<double>(ru->load - chosen_s->load));
    } else if (UsesCostSignal() && chosen_s->est_bytes != ru->est_bytes) {
      r.margin_factor = "est_bytes";
      r.margin = std::abs(static_cast<double>(ru->est_bytes - chosen_s->est_bytes));
    } else if (UsesFaultSignal() && chosen_s->fault_score != ru->fault_score) {
      r.margin_factor = "fault";
      r.margin = std::abs(ru->fault_score - chosen_s->fault_score);
    } else if (UsesFaultSignal() && chosen_s->health_score != ru->health_score) {
      r.margin_factor = "health";
      r.margin = std::abs(ru->health_score - chosen_s->health_score);
    } else if (UsesCostSignal() && chosen_s->wire_history != ru->wire_history) {
      r.margin_factor = "wire";
      r.margin =
          std::abs(static_cast<double>(ru->wire_history - chosen_s->wire_history));
    } else if (UsesCostSignal() && chosen_s->est_restart_ns != ru->est_restart_ns) {
      r.margin_factor = "restart_ns";
      r.margin = std::abs(
          static_cast<double>(ru->est_restart_ns - chosen_s->est_restart_ns));
    } else {
      r.margin_factor = "order";
      r.near_tie = true;
    }
  }
  log->Record(std::move(r));
}

std::string PlacementEngine::PickTarget(const PlacementQuery& query) const {
  if (query.index != nullptr) return PickFromIndex(query);
  const std::vector<CandidateScore> scores = Score(query);
  const CandidateScore* best = nullptr;
  for (const CandidateScore& s : scores) {
    if (s.fault_excluded || s.health_excluded) continue;
    if (best == nullptr || Beats(s, *best)) best = &s;
  }
  const std::string chosen = best != nullptr ? best->host : std::string();
  RecordDecision(query, /*from_index=*/false, scores, chosen);
  return chosen;
}

// The maintained-order pick. The rank multiset is (load, network order)
// ascending, so the first eligible entry already has minimal load; under
// kLoadOnly it wins outright, and the richer policies score only the
// minimal-load group for their secondary signals — never the whole cluster.
// Occupancy queries rank on a different load, so they fall back to a linear
// walk of the index entries (still zero survey messages).
std::string PlacementEngine::PickFromIndex(const PlacementQuery& query) const {
  const ClusterIndex& index = *query.index;
  const sim::FaultHistory* history = net_->fault_history();
  const sim::HealthMonitor* monitor = net_->health_monitor();
  if (query.occupancy) {
    const std::vector<CandidateScore> scores = ScoreFromIndex(query);
    const CandidateScore* best = nullptr;
    for (const CandidateScore& s : scores) {
      if (s.fault_excluded || s.health_excluded) continue;
      if (best == nullptr || Beats(s, *best)) best = &s;
    }
    const std::string chosen = best != nullptr ? best->host : std::string();
    RecordDecision(query, /*from_index=*/true, scores, chosen);
    return chosen;
  }
  kernel::Kernel* from = net_->FindHost(query.from_host);
  std::vector<CandidateScore> group;  // eligible entries at the minimal load
  int group_load = 0;
  std::string picked;
  for (const auto& [load, order] : index.rank()) {
    if (!group.empty() && load != group_load) break;  // past the minimal group
    const IndexEntry& e = index.entry(order);
    if (!PassesQueryFilters(query, e.host)) continue;
    kernel::Kernel* host = net_->FindHost(e.host);
    if (host == nullptr || host->down()) continue;
    if (UsesFaultSignal()) {
      if (history != nullptr && history->Score(e.host) >= query.fault_threshold) continue;
      if (monitor != nullptr && monitor->HealthScore(e.host) >= query.health_threshold) {
        continue;
      }
    }
    if (group.empty() && policy_ == PlacementPolicy::kLoadOnly) {
      picked = e.host;  // load is the only signal; first eligible wins
      break;
    }
    CandidateScore s;
    s.host = e.host;
    s.load = load;
    FillSignals(query, from, *host, &s);
    group_load = load;
    group.push_back(std::move(s));
  }
  if (picked.empty()) {
    const CandidateScore* best = nullptr;
    for (const CandidateScore& s : group) {  // network order within equal load
      if (best == nullptr || Beats(s, *best)) best = &s;
    }
    if (best != nullptr) picked = best->host;
  }
  // Audit with the full index view, not just the minimal-load group the fast
  // path touched: load dominates Beats, so re-ranking the complete candidate
  // list provably picks the same winner, and the record gains the runner-up the
  // walk never materialised. ScoreFromIndex is survey-free, so the armed log
  // still books zero messages — recording cannot perturb what it observes.
  if (DecisionLog* log = net_->decision_log(); log != nullptr && log->enabled()) {
    RecordDecision(query, /*from_index=*/true, ScoreFromIndex(query), picked);
  }
  return picked;
}

std::vector<std::string> PlacementEngine::PlaceBatch(
    const PlacementQuery& query, const std::vector<int32_t>& pids) const {
  std::vector<std::string> targets(pids.size());
  if (pids.empty()) return targets;
  // One survey (or the index view) up front; after that every pick is pure
  // bookkeeping. Each assignment bumps its target's working load — the
  // occupancy-style lookahead evacuation gets by re-surveying after every
  // migration, here for free.
  PlacementQuery base = query;
  base.pid = pids.front();
  std::vector<CandidateScore> scores = Score(base);
  kernel::Kernel* from = net_->FindHost(query.from_host);
  for (size_t i = 0; i < pids.size(); ++i) {
    if (UsesCostSignal() && from != nullptr && pids[i] >= 0) {
      // The cost signal is per-process; re-probe it for this pid. Loads (and
      // their lookahead bumps) carry over untouched.
      for (CandidateScore& s : scores) {
        if (kernel::Kernel* host = net_->FindHost(s.host); host != nullptr) {
          s.est_bytes = EstimatedBytes(*from, *host, pids[i]);
        }
      }
    }
    const CandidateScore* best = nullptr;
    for (const CandidateScore& s : scores) {
      if (s.fault_excluded || s.health_excluded) continue;
      if (best == nullptr || Beats(s, *best)) best = &s;
    }
    if (DecisionLog* log = net_->decision_log(); log != nullptr && log->enabled()) {
      // One record per pid, captured before the lookahead bump below mutates
      // the working loads the next pid will see.
      PlacementQuery audit = query;
      audit.pid = pids[i];
      RecordDecision(audit, query.index != nullptr, scores,
                     best != nullptr ? best->host : std::string());
    }
    if (best == nullptr) continue;  // this pid stays unplaced ("")
    targets[i] = best->host;
    for (CandidateScore& s : scores) {
      if (s.host == targets[i]) {
        ++s.load;
        break;
      }
    }
  }
  return targets;
}

}  // namespace pmig::apps
