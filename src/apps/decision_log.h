// The placement decision audit log: why did each migration land where it did?
//
// Every PlacementEngine pick — balancer round, night-shift spread, evacuation,
// reaper revive, PlaceBatch slot — answers one question: "of the hosts I could
// see, which should receive this process?" The answer used to evaporate at
// pick time, leaving only a bare "pid:from->to=rc" breadcrumb; proving that an
// indexed pick equals a full-scan pick, or explaining why a sick host was
// passed over, meant re-deriving the decision from scratch.
//
// The DecisionLog keeps the whole answer: the full candidate set with every
// per-factor signal the policy weighed (load, estimated wire bytes, wire
// history, restart-latency record, fault weight, health score), every host the
// engine would not consider and the reason it was excluded (down,
// partitioned-from-source, fault-threshold, health-threshold,
// lease-contended), the chosen target, the runner-up, and which factor — and
// by how much — separated them (an "order" margin is a dead tie broken only by
// network position: a near-tie worth an operator's attention).
//
// Like the metrics registry and the health monitor it is observation-only:
// recording draws no RNG, charges no virtual time, arms no clock timers, and
// reads only signals that are free to read — so a run with the log armed but
// unread is bit-identical to one with it off. The ring is bounded; seq numbers
// keep climbing across evictions so records cross-link stably to traces
// ([trace=N] post-mortems) and to the report's decision lines.

#ifndef PMIG_SRC_APPS_DECISION_LOG_H_
#define PMIG_SRC_APPS_DECISION_LOG_H_

#include <cstdint>
#include <deque>
#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

#include "src/sim/clock.h"
#include "src/sim/time.h"

namespace pmig::apps {

// One scored candidate as the engine saw it, in network host order. Mirrors
// CandidateScore minus the exclusion flags (excluded hosts appear in the
// record's exclusions instead, with their tripping signal as the value).
struct DecisionCandidate {
  std::string host;
  int load = 0;
  int64_t est_bytes = 0;
  int64_t wire_history = 0;
  sim::Nanos est_restart_ns = 0;
  double fault_score = 0;
  double health_score = 0;
};

// One host the engine refused to consider, and why. `value` carries the
// tripping signal for the threshold reasons (the fault/health score) and is 0
// for the structural ones.
struct DecisionExclusion {
  std::string host;
  std::string reason;  // down | partitioned-from-source | fault-threshold |
                       // health-threshold | lease-contended
  double value = 0;
};

struct DecisionRecord {
  static constexpr int kNoOutcome = -1;

  uint64_t seq = 0;     // monotonic across ring evictions; 1-based
  sim::Nanos at = 0;    // virtual time of the pick
  std::string context;  // who asked: balancer | night-shift | evacuation | reaper
  std::string policy;   // PlacementPolicyName at pick time
  std::string source;   // "index" (maintained rank) | "scan" (full survey)
  std::string from_host;
  int32_t pid = -1;     // -1: no specific process (e.g. night-shift day pick)
  std::string chosen;   // "" = no eligible target existed
  std::string runner_up;
  // The first factor, in the policy's tie-break order, where chosen and
  // runner-up differed — and by how much. "order": a dead tie decided only by
  // network position (near_tie). "only": a single eligible candidate. "none":
  // nothing was eligible at all.
  std::string margin_factor;
  double margin = 0;
  bool near_tie = false;
  // Cross-links, attached after the migrate leg runs: the caller's distributed
  // trace id (grep [trace=N] in complaints and flight-recorder post-mortems)
  // and the migrate exit code (kNoOutcome until a leg was actually attempted).
  uint64_t trace_id = 0;
  int outcome_rc = kNoOutcome;
  std::vector<DecisionCandidate> candidates;
  std::vector<DecisionExclusion> exclusions;
};

class DecisionLog {
 public:
  explicit DecisionLog(const sim::VirtualClock* clock, size_t capacity = 1024)
      : clock_(clock), capacity_(capacity == 0 ? 1 : capacity) {}

  // Disarmed by default. Callers must check enabled() before building a
  // record, so a disarmed log costs one branch per pick — same discipline as
  // metrics and the health monitor.
  bool enabled() const { return enabled_; }
  void set_enabled(bool enabled) { enabled_ = enabled; }
  size_t capacity() const { return capacity_; }

  // Stamps seq + virtual time and appends (evicting the oldest past capacity).
  // Returns the record's seq, or 0 when the log is disabled.
  uint64_t Record(DecisionRecord record);

  // Attaches the migrate outcome (exit code + distributed trace id) to the
  // newest outcome-less record matching (pid, from_host, chosen) — the pick
  // whose migrate leg just returned. Lease re-pick loops record one decision
  // per attempt; only the final pick names the target that was migrated to,
  // so the match lands on exactly that record. No-op when nothing matches.
  void AttachOutcome(int32_t pid, std::string_view from_host,
                     std::string_view chosen, int rc, uint64_t trace_id);

  const std::deque<DecisionRecord>& records() const { return records_; }
  // Total ever recorded (not bounded by capacity) — the replay-fingerprint
  // count, stable even after the ring starts evicting.
  uint64_t total_recorded() const { return next_seq_ - 1; }

  // Newest record; null when empty.
  const DecisionRecord* Latest() const;
  // Newest record that placed `pid`; null when none.
  const DecisionRecord* LatestForPid(int32_t pid) const;
  // Newest record that mentions `host` anywhere — chosen, runner-up, source,
  // candidate, or exclusion — so `pwhy <host>` explains a host that keeps
  // being passed over, not just one that keeps winning.
  const DecisionRecord* LatestForHost(std::string_view host) const;

  // The human rendering `pwhy` prints: a one-line verdict header, a factor
  // table with one row per candidate (CHOSEN / runner-up marked), and one row
  // per exclusion with its reason and tripping value.
  static std::string Render(const DecisionRecord& r);

  // The canonical one-line form bench/decision_diff compares. Deliberately
  // omits seq, timestamp, trace id, and — crucially — `source`: an indexed
  // pick and a full-scan pick that weighed the same candidates the same way
  // and chose the same target are the *same decision*, which is exactly the
  // equivalence the diff gate exists to prove.
  static std::string CanonicalLine(const DecisionRecord& r);

  // One {"type":"decision"} JSONL line per retained record, oldest first
  // (Cluster::WriteReport calls this).
  void WriteJsonl(std::ostream& out) const;

 private:
  const sim::VirtualClock* clock_;
  size_t capacity_;
  bool enabled_ = false;
  uint64_t next_seq_ = 1;
  std::deque<DecisionRecord> records_;
};

}  // namespace pmig::apps

#endif  // PMIG_SRC_APPS_DECISION_LOG_H_
