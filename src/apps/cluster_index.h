// The cluster index: incrementally maintained placement state.
//
// The placement engine's signals are all surveys — SurveyLoad walks every
// host's run queue, Score re-reads every candidate per decision — so one
// balancer round on an H-host cluster costs O(H) survey messages per victim.
// That is fine for four machines and hopeless for four hundred. The index
// keeps a per-host view of the same signals current from events the
// coordinator already sees for free:
//
//   migrate outcomes  — a committed migration is a load of exactly one moving
//                       from source to target; NoteMigrated applies the delta.
//   sampler snapshots — Cluster::TakeSample publishes each host's runnable and
//                       occupancy counts through Network::PublishLoad; the
//                       index subscribes and folds them in (the sampler
//                       already paid for the read).
//   fault history     — the shared FaultHistory calls the index's listener on
//                       every recorded leg outcome. (Scores are re-read live
//                       at decision time anyway — the history is coordinator-
//                       local memory, so reading it costs no messages.)
//   reachability      — Network::Reachable is a pure function of the partition
//                       config and the virtual clock: also free, also read
//                       live, so a healed partition requalifies instantly.
//
// What cannot arrive by event goes stale, and staleness is repaired by
// Refresh(now): re-survey ONLY the hosts whose entry is older than `ttl` —
// never the whole cluster. With the sampler armed, Refresh typically surveys
// nothing at all.
//
// Consistency caveats: the index is the coordinator's view, not the truth. A
// process that exits on its own leaves the indexed load optimistically high
// until the next sample/refresh; two coordinators each hold their own index
// and may disagree. Decisions stay safe because liveness, reachability, and
// fault/health scores are read live (all free), and because a worst-case
// stale load only misdirects a migration — the placement lease and the
// robust-migrate transaction already absorb that. With ttl = 0 every decision
// re-surveys and the index is decision-identical to the full scan (the
// equivalence tests pin this).
//
// Determinism: entries live in network host order, the rank is (load, network
// order), and every update is bookkeeping — no RNG, no virtual-time cost — so
// indexed runs replay bit-identically.
//
// Event-driven consumers: every mutation that changes what a placement
// decision could see (a load, a down flag, a reachability verdict, an
// occupancy count, a fault/health score) bumps epoch() and fires the wake
// callback once per completed update. Alongside the rank the index maintains
// O(1) live-load aggregates — LoadSpread() (max - min indexed load over
// entries not marked down) and TotalLoad() — so a balancer's wake predicate
// costs two multiset-end reads per poll, not a scan. Both are *indexed* views:
// a host that died since its last observation still counts as live until the
// next sample or refresh folds the truth in, which is why event-driven
// consumers keep a heartbeat. The callback runs inside the mutation (sampler
// publish, fault record, migrate delta) and must stay pure bookkeeping:
// set a flag, never touch the clock, the RNG, or the index.

#ifndef PMIG_SRC_APPS_CLUSTER_INDEX_H_
#define PMIG_SRC_APPS_CLUSTER_INDEX_H_

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "src/kernel/kernel.h"
#include "src/net/network.h"
#include "src/sim/fault_history.h"
#include "src/sim/time.h"

namespace pmig::apps {

struct ClusterIndexOptions {
  // Entries older than this are re-surveyed by Refresh; fresher ones are
  // trusted as-is. 0 = trust nothing (every Refresh re-surveys every host,
  // making indexed decisions identical to the full scan).
  sim::Nanos ttl = sim::Seconds(10);
};

struct IndexEntry {
  std::string host;
  size_t order = 0;          // position in network host order (tie-break rank)
  int load = 0;              // runnable VM processes (HostLoad)
  int occupancy = 0;         // every live VM process (AliveVmCount)
  bool down = false;         // as of the last survey/sample (liveness is
                             // re-checked live at decision time)
  bool reachable = true;     // as of the last verdict folded in
  double fault_score = 0;    // as of the last FaultHistory callback/survey
  double health_score = 0;   // as of the last survey
  sim::Nanos updated_at = -1;  // virtual time of the last survey/sample; -1 =
                               // never observed (always stale)
};

class ClusterIndex {
 public:
  // Builds an entry per current host (hosts are fixed at boot), subscribes to
  // the network's load observations, and chains onto the shared FaultHistory's
  // listener slot. `local_host` is the coordinator running the index — the
  // vantage point for reachability verdicts.
  ClusterIndex(net::Network* net, std::string local_host,
               ClusterIndexOptions opts = {});
  ~ClusterIndex();

  ClusterIndex(const ClusterIndex&) = delete;
  ClusterIndex& operator=(const ClusterIndex&) = delete;

  const std::string& local_host() const { return local_; }
  sim::Nanos ttl() const { return opts_.ttl; }

  // --- free event feeds -------------------------------------------------------

  // A migration from `from` to `to` committed: one unit of load (and
  // occupancy) moved. Leaves timestamps alone — a delta refines an old
  // absolute reading, it does not renew it.
  void NoteMigrated(std::string_view from, std::string_view to);

  // A reachability verdict the coordinator just learned (a Reachable() check,
  // an EHOSTUNREACH from a migrate leg). Decisions re-check live; this keeps
  // the entry's view honest for reports and tests.
  void NoteReachable(std::string_view host, bool reachable);

  // A sampler observation (Network load-observer hook calls this).
  void NoteObservation(const net::LoadObservation& obs);

  // --- staleness-driven refresh ----------------------------------------------

  // Re-surveys (one survey message each) exactly the hosts whose entry is
  // older than ttl at `now`; fresh entries are never touched. Returns how many
  // hosts were re-surveyed.
  int Refresh(sim::Nanos now);

  // Unconditional single-host re-survey. Returns false for an unknown host.
  bool RefreshHost(std::string_view host, sim::Nanos now);

  // --- read side (no survey messages) ----------------------------------------

  const std::vector<IndexEntry>& entries() const { return entries_; }
  const IndexEntry* Find(std::string_view host) const;

  // Live hosts and their indexed loads, in network order — the survey-free
  // stand-in for SurveyLoad. Liveness is read live (free); loads come from the
  // index.
  std::vector<std::pair<std::string, int>> Loads() const;

  // The maintained rank: (load, network order) ascending. The engine walks
  // this instead of scoring every host; entry(order) resolves a rank key.
  const std::multiset<std::pair<int, size_t>>& rank() const { return rank_; }
  const IndexEntry& entry(size_t order) const { return entries_[order]; }

  // --- event-driven read side --------------------------------------------------

  // Bumped on every mutation a placement decision could observe (load, down,
  // reachable, occupancy, fault/health score). updated_at renewals alone do
  // not count — freshness is not an event. Monotonic within one index.
  uint64_t epoch() const { return epoch_; }

  // Indexed max - min load over entries not marked down (0 with fewer than two
  // such entries) and their load sum. O(1): maintained incrementally with the
  // rank, never a scan.
  int LoadSpread() const;
  int TotalLoad() const;

  // True when some entry this index has marked unreachable can be reached
  // again right now. Reachable() is a pure function of the partition config
  // and the virtual clock, so heals generate no event — wait predicates poll
  // this (no metrics are booked from here).
  bool AnyMarkedUnreachableHealed() const;

  // Invoked once after every epoch-bumping update completes, from inside the
  // mutation (a sampler publish, a fault record, a migrate delta). Must be
  // pure bookkeeping: set a flag for a blocked waiter's predicate to read —
  // no clock, no RNG, no calls back into the index.
  void set_wake_callback(std::function<void()> wake) { wake_ = std::move(wake); }

  net::Network* net() const { return net_; }

 private:
  // Shared with the listener closure installed on the FaultHistory: an index
  // destroyed while *buried* in the chain (a later subscriber still holds a
  // closure forwarding to it) cannot unlink itself, so the closure outlives it
  // as a pure forwarder once `index` is nulled.
  struct ListenerChain {
    ClusterIndex* index = nullptr;
    sim::FaultHistory::Listener chained;
  };

  IndexEntry* FindMutable(std::string_view host);
  void SetLoad(IndexEntry& e, int load);
  void SetDown(IndexEntry& e, bool down);
  void SetReachable(IndexEntry& e, bool reachable);
  void Survey(IndexEntry& e, sim::Nanos now);
  void OnFaultRecorded(std::string_view host);
  // Fires the wake callback iff the epoch moved past `epoch_before`.
  void NotifyIfChanged(uint64_t epoch_before);

  net::Network* net_;
  std::string local_;
  ClusterIndexOptions opts_;
  std::vector<IndexEntry> entries_;
  std::map<std::string, size_t, std::less<>> by_name_;
  std::multiset<std::pair<int, size_t>> rank_;
  // Loads of entries not marked down, plus their running sum: the O(1) feed
  // for LoadSpread()/TotalLoad().
  std::multiset<int> live_loads_;
  int64_t live_total_ = 0;
  // Orders of entries currently marked unreachable (the heal watch set).
  std::set<size_t> unreachable_orders_;
  uint64_t epoch_ = 0;
  std::function<void()> wake_;
  uint64_t load_observer_id_ = 0;
  sim::FaultHistory* listening_to_ = nullptr;
  std::shared_ptr<ListenerChain> chain_;
  uint64_t listener_token_ = 0;
};

}  // namespace pmig::apps

#endif  // PMIG_SRC_APPS_CLUSTER_INDEX_H_
