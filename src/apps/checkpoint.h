// Process checkpointing (Section 8, first application).
//
// "...we may write an application to take periodic snapshots of [a long-running
// program] and save those snapshots by moving them to a directory managed by the
// application ... which would then allow us to restart a program at its n-th
// checkpoint. The application should also make copies of all files that were open
// when the process was checkpointed, so that if the actual files were modified
// after the checkpoint, the copies can be used instead..."
//
// A checkpoint directory looks like:
//   <dir>/<n>.meta    — manifest: original pid, per-slot saved-file records
//                       (content hash + which checkpoint actually holds the copy)
//   <dir>/<n>.aout / <n>.files / <n>.stack — the three dump files
//   <dir>/<n>.open<i> — copy of the contents of open-file slot i (only when its
//                       content hash differs from checkpoint n−1's copy; otherwise
//                       the manifest records a reuse of the earlier copy)
//   <dir>/seg.<hex>   — content-addressed segment blobs referenced by incremental
//                       dumps, so the directory is self-contained
//
// Because a SIGDUMP snapshot kills the process, TakeCheckpoint immediately
// restarts it on the same machine; the process continues under a new pid.

#ifndef PMIG_SRC_APPS_CHECKPOINT_H_
#define PMIG_SRC_APPS_CHECKPOINT_H_

#include <string>
#include <vector>

#include "src/kernel/kernel.h"

namespace pmig::apps {

struct CheckpointResult {
  int32_t new_pid = 0;  // the process, restarted after the snapshot
};

// Snapshots `pid` (which must run on the caller's machine) into <dir>/<index>.*
// and restarts it locally. The caller must own the process or be root. With
// `incremental`, the dump is a delta against the exec-time image (dirty pages
// only) and the referenced segment blobs are archived into <dir>/seg.<hex>.
// Open-file copies whose content hash matches checkpoint index−1's copy are not
// rewritten; the manifest records the reuse.
Result<CheckpointResult> TakeCheckpoint(kernel::SyscallApi& api, int32_t pid,
                                        const std::string& dir, int index,
                                        bool incremental = false);

// Restores checkpoint <dir>/<index>.*: puts the saved open-file copies back at
// their recorded paths, re-stages the dump files, and restarts the process on this
// machine. Returns the new pid.
Result<int32_t> RestoreCheckpoint(kernel::SyscallApi& api, const std::string& dir, int index);

// checkpointd: takes `count` checkpoints of `pid`, one every `interval`, then
// exits. Returns the number of checkpoints taken.
struct CheckpointdOptions {
  int32_t pid = 0;
  std::string dir = "/ckpt";
  sim::Nanos interval = sim::Seconds(30);
  int count = 3;
  bool incremental = false;  // delta dumps + shared segment blobs
};
int CheckpointDaemon(kernel::SyscallApi& api, const CheckpointdOptions& options);

}  // namespace pmig::apps

#endif  // PMIG_SRC_APPS_CHECKPOINT_H_
