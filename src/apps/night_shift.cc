#include "src/apps/night_shift.h"

#include "src/apps/decision_log.h"
#include "src/apps/recovery.h"
#include "src/core/tools.h"

namespace pmig::apps {

std::vector<int32_t> BatchJobsOn(kernel::Kernel& host, int32_t batch_uid) {
  std::vector<int32_t> pids;
  for (kernel::Proc* p : host.ListProcs()) {
    if (p->kind == kernel::ProcKind::kVm && p->Alive() && p->creds.uid == batch_uid) {
      pids.push_back(p->pid);
    }
  }
  return pids;
}

NightShiftStats RunNightShift(kernel::SyscallApi& api, net::Network& net,
                              const NightShiftOptions& options) {
  NightShiftStats stats;
  const PlacementEngine engine(&net, options.policy);
  std::string day_host = options.day_host;
  if (day_host.empty()) {
    // No hardcoded day machine: ask the engine. Occupancy is the right load —
    // the day host will hold every hog, runnable or not — and the fault-aware
    // policies keep the batch off a machine that already looks sick.
    PlacementQuery query;
    query.fault_threshold = options.fault_threshold;
    query.occupancy = true;
    query.context = "night-shift";
    day_host = engine.PickTarget(query);
    if (day_host.empty()) return stats;  // nothing eligible; nothing to run
  }
  stats.day_host = day_host;
  for (int night = 0; night < options.nights; ++night) {
    // Dusk: spread the day machine's hogs across the other machines, leaving a
    // fair share at home. kLoadOnly walks the eligible hosts round-robin (the
    // historical behaviour); the other policies place each job via the engine.
    kernel::Kernel* day = net.FindHost(day_host);
    if (day == nullptr) break;
    std::vector<int32_t> jobs = BatchJobsOn(*day, options.batch_uid);
    const auto& hosts = net.hosts();
    std::vector<kernel::Kernel*> eligible;  // spread targets, in network order
    for (kernel::Kernel* host : hosts) {
      if (host->hostname() == day_host) continue;
      if (!engine.Eligible(*host, options.fault_threshold)) continue;
      eligible.push_back(host);
    }
    // The fair share counts the day machine itself as one of the workers.
    const size_t machines = eligible.size() + 1;
    const size_t share = (jobs.size() + machines - 1) / machines;
    size_t target_index = 0;
    size_t moved_to_target = 0;
    for (size_t i = share; i < jobs.size(); ++i) {
      std::string target;
      PlacementLease lease;
      bool have_lease = false;
      LeaseOptions lopts;
      lopts.ttl = options.lease_ttl;
      if (options.policy == PlacementPolicy::kLoadOnly) {
        // Advance past filled shares, and drop any target that crashed since
        // dusk began — a dead machine must receive zero migration attempts.
        // With leasing on, a contended target is rotated past the same way a
        // filled share is: the walk simply moves to the next eligible host.
        for (size_t tries = 0; tries <= eligible.size(); ++tries) {
          while (!eligible.empty()) {
            if (eligible[target_index]->down()) {
              eligible.erase(eligible.begin() + static_cast<ptrdiff_t>(target_index));
              if (eligible.empty()) break;
              target_index %= eligible.size();
              moved_to_target = 0;
              continue;
            }
            if (moved_to_target >= share) {
              target_index = (target_index + 1) % eligible.size();
              moved_to_target = 0;
              continue;
            }
            break;
          }
          if (eligible.empty()) break;
          target = eligible[target_index]->hostname();
          if (!options.lease_targets) break;
          const Result<PlacementLease> acquired =
              AcquirePlacementLease(api, net, target, lopts);
          if (acquired.ok() && acquired->held) {
            lease = *acquired;
            have_lease = true;
            break;
          }
          ++stats.lease_conflicts;
          target_index = (target_index + 1) % eligible.size();
          moved_to_target = 0;
          target.clear();
        }
        if (target.empty()) break;  // nowhere left to spread; jobs stay home
      } else {
        PlacementQuery query;
        query.from_host = day_host;
        query.pid = jobs[i];
        query.fault_threshold = options.fault_threshold;
        query.context = "night-shift";
        for (size_t tries = 0; tries <= hosts.size(); ++tries) {
          target = engine.PickTarget(query);
          if (target.empty() || !options.lease_targets) break;
          const Result<PlacementLease> acquired =
              AcquirePlacementLease(api, net, target, lopts);
          if (acquired.ok() && acquired->held) {
            lease = *acquired;
            have_lease = true;
            break;
          }
          ++stats.lease_conflicts;
          query.exclude.push_back(target);
          target.clear();
        }
        if (target.empty()) break;  // no eligible target; jobs stay home
      }
      const int rc = core::Migrate(api, net, jobs[i], day_host, target,
                                   options.use_daemon, options.migrate);
      if (have_lease) ReleasePlacementLease(api, lease);
      if (DecisionLog* dlog = net.decision_log(); dlog != nullptr && dlog->enabled()) {
        dlog->AttachOutcome(jobs[i], day_host, target, rc, api.proc().trace_id);
      }
      if (rc == 0) {
        ++stats.spread_migrations;
        ++moved_to_target;
      } else {
        ++stats.failed_spread;
      }
    }

    // Night: let them compute.
    api.Sleep(options.night_length);

    // Dawn: gather every surviving hog back onto the day machine. A night host
    // that is down holds its jobs frozen — they are counted as failed gathers
    // (visible, not silently stranded) and receive no doomed migrate attempts.
    for (kernel::Kernel* host : hosts) {
      if (host->hostname() == day_host) continue;
      const std::vector<int32_t> strays = BatchJobsOn(*host, options.batch_uid);
      if (host->down()) {
        stats.failed_gather += static_cast<int>(strays.size());
        continue;
      }
      for (const int32_t pid : strays) {
        const int rc = core::Migrate(api, net, pid, host->hostname(), day_host,
                                     options.use_daemon, options.migrate);
        if (rc == 0) {
          ++stats.gather_migrations;
        } else {
          ++stats.failed_gather;
        }
      }
    }
    ++stats.nights_run;
  }
  return stats;
}

}  // namespace pmig::apps
