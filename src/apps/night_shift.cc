#include "src/apps/night_shift.h"

#include "src/core/tools.h"

namespace pmig::apps {

std::vector<int32_t> BatchJobsOn(kernel::Kernel& host, int32_t batch_uid) {
  std::vector<int32_t> pids;
  for (kernel::Proc* p : host.ListProcs()) {
    if (p->kind == kernel::ProcKind::kVm && p->Alive() && p->creds.uid == batch_uid) {
      pids.push_back(p->pid);
    }
  }
  return pids;
}

NightShiftStats RunNightShift(kernel::SyscallApi& api, net::Network& net,
                              const NightShiftOptions& options) {
  NightShiftStats stats;
  for (int night = 0; night < options.nights; ++night) {
    // Dusk: spread the day machine's hogs across the other machines, round-robin,
    // leaving a fair share at home.
    kernel::Kernel* day = net.FindHost(options.day_host);
    if (day == nullptr) break;
    std::vector<int32_t> jobs = BatchJobsOn(*day, options.batch_uid);
    const auto& hosts = net.hosts();
    const size_t share = (jobs.size() + hosts.size() - 1) / hosts.size();
    size_t target_index = 0;
    size_t moved_to_target = 0;
    for (size_t i = share; i < jobs.size(); ++i) {
      // Skip the day host itself when choosing targets.
      while (hosts[target_index]->hostname() == options.day_host ||
             moved_to_target >= share) {
        target_index = (target_index + 1) % hosts.size();
        moved_to_target = 0;
      }
      const int rc = core::Migrate(api, net, jobs[i], options.day_host,
                                   hosts[target_index]->hostname(), options.use_daemon);
      if (rc == 0) {
        ++stats.spread_migrations;
        ++moved_to_target;
      }
    }

    // Night: let them compute.
    api.Sleep(options.night_length);

    // Dawn: gather every surviving hog back onto the day machine.
    for (kernel::Kernel* host : hosts) {
      if (host->hostname() == options.day_host) continue;
      for (const int32_t pid : BatchJobsOn(*host, options.batch_uid)) {
        const int rc = core::Migrate(api, net, pid, host->hostname(), options.day_host,
                                     options.use_daemon);
        if (rc == 0) ++stats.gather_migrations;
      }
    }
    ++stats.nights_run;
  }
  return stats;
}

}  // namespace pmig::apps
