// The VM workload programs, written in the simulator's assembly dialect.
//
// CounterProgram is the paper's measurement program (Section 6.2): "The program
// increments and prints three counters (a register, a static variable allocated on
// the data segment and a variable allocated on the stack). On each iteration it
// inputs a line and appends it to an output file." It is always dumped while
// blocked at its input prompt, exactly as in the paper.
//
// The others exercise specific behaviours: CPU hogs for the load-balancing and
// night-shift applications, a raw-mode "screen editor" for the tty-mode
// limitation, a socket user for the socket limitation, a parent-waiting program
// for the Section 7 caveat, a 68020-only program for the heterogeneity rule, an
// identity printer for the getpid()/gethostname() discussion, a signal-handler
// program for disposition preservation, and a deep-recursion program for large
// stack dumps.
//
// Note on signal handlers: delivery pushes the interrupted pc and jumps to the
// handler; the handler returns with `ret`. Unlike real Unix, register context is
// not saved around delivery, so handlers in these programs only touch memory whose
// clobbering the main loop tolerates.

#ifndef PMIG_SRC_CORE_TEST_PROGRAMS_H_
#define PMIG_SRC_CORE_TEST_PROGRAMS_H_

#include <string>
#include <string_view>

#include "src/kernel/kernel.h"

namespace pmig::core {

std::string_view CounterProgramSource();   // the paper's test program
std::string_view CpuHogProgramSource();    // argv[1] iterations, then exit(0)
std::string_view EditorProgramSource();    // raw-mode visual program
std::string_view SocketProgramSource();    // holds an open socket pair
std::string_view ForkWaitProgramSource();  // parent blocks in wait()
std::string_view Isa20ProgramSource();     // uses a 68020-only instruction
std::string_view IdentityProgramSource();  // prints "<pid>:<hostname>" per line
std::string_view HandlerProgramSource();   // catches SIGUSR1, ignores SIGINT
std::string_view DeepStackProgramSource(); // recursion, prompts at max depth
std::string_view DirtierProgramSource();   // scribbles argv[1] bytes/cycle in a
                                           // 16 KB buffer, forever (for pre-copy)

// Appends unreachable text (a nop sled modelling the statically linked C library)
// and zeroed data (bss) to a program source, giving it 1987-realistic segment
// sizes. The paper's test program, being a compiled C program, carried ~12 KB of
// library text and several KB of data; segment sizes drive the dump/core-file
// size ratios that Figures 2 and 3 measure.
std::string WithPadding(std::string_view source, int extra_text_instructions,
                        int extra_data_bytes);

// Assembles `source` and installs it as an executable at `path` on `host`'s disk.
// Aborts on assembly errors (sources here are known-good constants).
void InstallProgram(kernel::Kernel& host, const std::string& path, std::string_view source);

// Installs every program above under /bin on `host` (counter, hog, editor,
// socketer, forkwait, isa20, identity, handler, deepstack).
void InstallStandardPrograms(kernel::Kernel& host);

}  // namespace pmig::core

#endif  // PMIG_SRC_CORE_TEST_PROGRAMS_H_
