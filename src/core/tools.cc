#include "src/core/tools.h"

#include <cstdio>
#include <deque>

#include "src/core/dump_format.h"
#include "src/kernel/core_file.h"
#include "src/net/migration_daemon.h"
#include "src/net/rsh.h"
#include "src/vfs/path.h"
#include "src/vm/aout.h"

namespace pmig::core {

namespace {

using vm::abi::OpenFlags;

void Complain(kernel::SyscallApi& api, const std::string& message) {
  const Result<int64_t> n = api.Write(2, message + "\n");
  (void)n;
}

// Reads and parses one dump file.
template <typename T>
Result<T> LoadDumpFile(kernel::SyscallApi& api, const std::string& path) {
  PMIG_TRY(int fd, api.Open(path, OpenFlags::kORdOnly));
  const Result<std::string> bytes = api.ReadAll(fd);
  const Status closed = api.Close(fd);
  (void)closed;
  if (!bytes.ok()) return bytes.error();
  return T::Parse(*bytes);
}

Status WriteFileContents(kernel::SyscallApi& api, const std::string& path,
                         const std::string& contents, uint16_t mode) {
  PMIG_TRY(int fd, api.Creat(path, mode));
  const Result<int64_t> n = api.Write(fd, contents);
  const Status closed = api.Close(fd);
  (void)closed;
  if (!n.ok()) return n.error();
  return Status::Ok();
}

}  // namespace

Result<std::string> Realpath(kernel::SyscallApi& api, const std::string& path) {
  std::string start = path;
  if (!vfs::IsAbsolute(start)) {
    PMIG_TRY(std::string cwd, api.GetCwd());
    start = vfs::Combine(cwd, start);
  }
  std::deque<std::string> pending;
  for (std::string& c : vfs::SplitPath(start)) pending.push_back(std::move(c));

  std::vector<std::string> resolved;
  int expansions = 0;
  while (!pending.empty()) {
    const std::string comp = std::move(pending.front());
    pending.pop_front();
    if (comp == ".") continue;
    if (comp == "..") {
      if (!resolved.empty()) resolved.pop_back();
      continue;
    }
    resolved.push_back(comp);
    const std::string candidate = vfs::JoinAbsolute(resolved);
    const Result<kernel::StatInfo> info = api.LStat(candidate);
    if (!info.ok()) {
      if (info.error() == Errno::kNoEnt && pending.empty()) {
        return candidate;  // nonexistent leaf is fine (e.g. a file to be created)
      }
      return info.error();
    }
    if (info->type == vfs::InodeType::kSymlink) {
      if (++expansions > 4 * vfs::kMaxSymlinkExpansions) return Errno::kLoop;
      PMIG_TRY(std::string target, api.Readlink(candidate));
      resolved.pop_back();
      std::vector<std::string> target_comps = vfs::SplitPath(target);
      for (auto it = target_comps.rbegin(); it != target_comps.rend(); ++it) {
        pending.push_front(std::move(*it));
      }
      if (vfs::IsAbsolute(target)) resolved.clear();
    }
  }
  return vfs::JoinAbsolute(resolved);
}

// --- dumpproc ----------------------------------------------------------------------

namespace {

// The Section 4.4 path rewriting: resolve symlinks; terminals become /dev/tty;
// local paths get /n/<host> prepended so any machine can reopen them.
std::string RewritePathForMigration(kernel::SyscallApi& api, const std::string& host,
                                    const std::string& path, bool may_be_tty) {
  const Result<std::string> real = Realpath(api, path);
  std::string p = real.ok() ? *real : path;
  if (may_be_tty) {
    const Result<kernel::StatInfo> info = api.Stat(p);
    if (info.ok() && info->is_tty) return "/dev/tty";
  }
  if (!(p.size() >= 3 && p.compare(0, 3, "/n/") == 0)) {
    p = vfs::NormalizeAbsolute("/n/" + host + p);
  }
  return p;
}

}  // namespace

void RewriteFilesForMigration(kernel::SyscallApi& api, FilesFile* files) {
  const std::string host = api.GetHostname();
  files->cwd = RewritePathForMigration(api, host, files->cwd, /*may_be_tty=*/false);
  for (FilesEntry& entry : files->entries) {
    if (entry.kind != FilesEntry::Kind::kFile) continue;
    entry.path = RewritePathForMigration(api, host, entry.path, /*may_be_tty=*/true);
  }
}

namespace {

bool FileExists(kernel::SyscallApi& api, const std::string& path) {
  const Result<int> fd = api.Open(path, OpenFlags::kORdOnly);
  if (!fd.ok()) return false;
  const Status closed = api.Close(*fd);
  (void)closed;
  return true;
}

// Reads the claim marker next to a dump set. Empty host when the claim is
// missing, unreadable (e.g. across a partition), or from a pre-metadata writer.
DumpMarker ReadClaimMarker(kernel::SyscallApi& api, const DumpPaths& paths) {
  const Result<int> fd = api.Open(paths.claim, OpenFlags::kORdOnly);
  if (!fd.ok()) return {};
  const Result<std::string> bytes = api.ReadAll(*fd);
  const Status closed = api.Close(*fd);
  (void)closed;
  if (!bytes.ok()) return {};
  return ParseDumpMarker(*bytes);
}

// Removes every trace of a dump set, ignoring files that are not there. Used
// on the success path (the dump has been consumed) and on every failure path
// (a half-written or unconsumable dump must not survive as an orphan).
void CleanupDumpFiles(kernel::SyscallApi& api, const DumpPaths& paths) {
  for (const std::string* p : {&paths.aout, &paths.files, &paths.stack,
                               &paths.ready, &paths.claim}) {
    const Status st = api.Unlink(*p);
    (void)st;
  }
}

}  // namespace

bool IsTransientErrno(Errno e) {
  return e == Errno::kTimedOut || e == Errno::kHostUnreach || e == Errno::kIo ||
         e == Errno::kNoSpc;
}

MigrateOptions MigrateOptions::Robust() {
  MigrateOptions o;
  o.attempts = 3;
  o.retry_backoff = sim::Millis(500);
  o.max_backoff = sim::Seconds(8);
  o.attempt_timeout = sim::Seconds(30);
  o.transactional = true;
  return o;
}

int Dumpproc(kernel::SyscallApi& api, int32_t pid, bool tx, bool incremental) {
  // Signal phase: kill the process with SIGDUMP (kill() itself enforces that
  // only the superuser or the owner may do this), then poll for a.outXXXXX —
  // the dying process creates the dump files — sleeping one second after each
  // unsuccessful attempt (aborting after ten). The kernel's own "dump" span
  // nests inside this one, so the signal phase's self time is the kill plus the
  // retry-sleep slack.
  kernel::Proc& self = api.proc();
  if (self.trace_id == 0 && api.kernel().spans() != nullptr) {
    // Invoked by hand rather than by migrate: start a trace of our own.
    self.trace_id = api.kernel().spans()->MintTraceId();
  }
  const DumpPaths paths = DumpPaths::For(pid);
  if (tx && FileExists(api, paths.ready)) return kToolOk;  // rerun after success
  if (incremental) {
    // Arm the delta dump. A kernel without dirty tracking (or a target that is
    // not a VM process) refuses with ENOEXEC; proceed with a full dump — the
    // incremental path is an optimisation, never a requirement.
    const Status armed = api.SetDumpMode(pid, true);
    if (!armed.ok() && armed.error() == Errno::kNoExec) {
      Complain(api, "dumpproc: process " + std::to_string(pid) +
                        " cannot dump incrementally; dumping in full");
    }
  }
  bool appeared = false;
  {
    kernel::TraceSpan signal_phase(api.kernel(), self, "signal");
    const Status killed = api.Kill(pid, vm::abi::kSigDump);
    if (!killed.ok()) {
      // In a retried transaction the process may have dumped already (an
      // earlier dumpproc signalled it, then timed out before finishing the
      // rewrite): ESRCH with the dump files present means resume, not fail.
      if (!(tx && killed.error() == Errno::kSrch && FileExists(api, paths.aout))) {
        Complain(api, "dumpproc: cannot signal process " + std::to_string(pid) + ": " +
                          std::string(ErrnoName(killed.error())));
        return kToolFail;
      }
      appeared = true;
    } else {
      for (int attempt = 0; attempt < 10; ++attempt) {
        if (FileExists(api, paths.aout)) {
          appeared = true;
          break;
        }
        // A dump the kernel aborted (disk full, corruption) resumed the
        // process and will never produce files: stop waiting for them. ESRCH
        // means the process is gone — the files may still be about to land, so
        // keep polling for them.
        const Result<bool> failed = api.DumpFailed(pid);
        if (failed.ok() && *failed) {
          Complain(api, "dumpproc: dump of " + std::to_string(pid) +
                            " aborted by the kernel");
          CleanupDumpFiles(api, paths);
          return tx ? kToolTransient : kToolFail;
        }
        api.Sleep(sim::Seconds(1));
      }
    }
  }
  if (!appeared) {
    // The dump may be mid-write (an injected fault resumed the process, or the
    // kernel is slow): leave nothing behind and let the caller retry.
    CleanupDumpFiles(api, paths);
    Complain(api, "dumpproc: dump files for " + std::to_string(pid) + " never appeared");
    return tx ? kToolTransient : kToolFail;
  }

  Result<FilesFile> files = LoadDumpFile<FilesFile>(api, paths.files);
  if (!files.ok()) {
    CleanupDumpFiles(api, paths);
    Complain(api, "dumpproc: bad " + paths.files + " (" +
                      std::string(ErrnoName(files.error())) + ")");
    return kToolFail;
  }

  RewriteFilesForMigration(api, &files.value());

  if (tx) {
    // Commit the rewrite atomically (write-to-temp + rename) and only then
    // publish the ready marker: a reader that sees readyXXXXX sees a complete,
    // rewritten dump set.
    const std::string tmp = paths.files + ".tmp";
    Status wrote = WriteFileContents(api, tmp, files->Serialize(), 0600);
    if (wrote.ok()) wrote = api.Rename(tmp, paths.files);
    if (wrote.ok()) {
      // The marker carries when and where the set was completed so the orphan
      // reaper can age it later (inodes have no mtime).
      wrote = WriteFileContents(
          api, paths.ready, FormatReadyMarker(api.GetHostname(), api.Now()), 0600);
    }
    if (!wrote.ok()) {
      const Status st = api.Unlink(tmp);
      (void)st;
      Complain(api, "dumpproc: cannot rewrite " + paths.files + " (" +
                        std::string(ErrnoName(wrote.error())) + ")");
      if (IsTransientErrno(wrote.error())) {
        // The write-to-temp scheme left the kernel's original filesXXXXX
        // intact, and the process may already be dead — the dump set IS the
        // process now. Keep it; a retried dumpproc resumes from it (the ESRCH
        // + files-present path above) and redoes the idempotent rewrite.
        return kToolTransient;
      }
      CleanupDumpFiles(api, paths);
      return kToolFail;
    }
    return kToolOk;
  }

  if (const Status wrote = WriteFileContents(api, paths.files, files->Serialize(), 0600);
      !wrote.ok()) {
    // A half-rewritten filesXXXXX is poison for restart; take the whole dump
    // set down with it rather than leaving a trap (and an orphan) behind.
    CleanupDumpFiles(api, paths);
    Complain(api, "dumpproc: cannot rewrite " + paths.files + " (" +
                      std::string(ErrnoName(wrote.error())) + ")");
    return kToolFail;
  }
  return kToolOk;
}

// --- restart -----------------------------------------------------------------------

int Restart(kernel::SyscallApi& api, int32_t pid, const std::string& dump_host,
            bool claim) {
  kernel::Proc& self = api.proc();
  if (self.trace_id == 0 && api.kernel().spans() != nullptr) {
    // Invoked by hand (not through migrate, which threads its context in via
    // the spawn): start a trace of our own. rest_proc() still adopts the
    // dump's stamped id when ours is 0 — i.e. when spans are disabled.
    self.trace_id = api.kernel().spans()->MintTraceId();
  }
  std::string dir = "/usr/tmp";
  if (!dump_host.empty() && dump_host != api.GetHostname()) {
    dir = "/n/" + dump_host + "/usr/tmp";
  }
  const DumpPaths paths = DumpPaths::For(pid, dir);

  // Reading the dump files (over NFS on a remote-source restart) is the transfer
  // leg of a migration; span it so the run report can attribute it.
  Result<StackFile> stack = Errno::kNoEnt;
  Result<FilesFile> files = Errno::kNoEnt;
  {
    kernel::TraceSpan transfer_phase(api.kernel(), self, "transfer");

    // Verify that the three files exist and have the correct format.
    const Result<int> fd = api.Open(paths.aout, OpenFlags::kORdOnly);
    if (!fd.ok()) {
      Complain(api, "restart: no " + paths.aout);
      return 1;
    }
    const Result<std::string> head = api.Read(*fd, 4);
    const Status closed = api.Close(*fd);
    (void)closed;
    const uint32_t magic =
        !head.ok() || head->size() < 4
            ? 0
            : static_cast<uint32_t>(static_cast<uint8_t>((*head)[0]) |
                                    (static_cast<uint8_t>((*head)[1]) << 8));
    if (magic != vm::kAoutMagic && magic != kIncrAoutMagic) {
      Complain(api, "restart: bad executable magic in " + paths.aout);
      return 1;
    }
    stack = LoadDumpFile<StackFile>(api, paths.stack);
    files = LoadDumpFile<FilesFile>(api, paths.files);
  }
  if (!stack.ok()) {
    Complain(api, "restart: bad or missing " + paths.stack);
    return 1;
  }
  if (!files.ok()) {
    Complain(api, "restart: bad or missing " + paths.files);
    return 1;
  }

  // Establish the old credentials as our own (the only thing read from
  // stackXXXXX at user level).
  const Status creds = api.SetReUid(stack->creds.uid, stack->creds.euid);
  if (!creds.ok()) {
    Complain(api, "restart: cannot assume uid " + std::to_string(stack->creds.uid));
    return 1;
  }

  // The old current working directory.
  if (!api.Chdir(files->cwd).ok()) {
    const Status st = api.Chdir("/");
    (void)st;
  }

  // The claim: created exclusively next to the dump, immediately before the
  // irreversible part (tearing down our fd table and overlaying ourselves).
  // When several restart attempts race for one dump — a retried migrate whose
  // earlier attempt only *looked* dead — exactly one creation succeeds; the
  // rest learn the process is already being restarted and bow out.
  if (claim) {
    const Result<int> cfd =
        api.Open(paths.claim, OpenFlags::kOWrOnly | OpenFlags::kOCreat | OpenFlags::kOExcl, 0600);
    if (!cfd.ok()) {
      if (cfd.error() == Errno::kExist) return kToolClaimed;
      Complain(api, "restart: cannot claim " + paths.claim + " (" +
                        std::string(ErrnoName(cfd.error())) + ")");
      // The dump set is fine; the claim just cannot land right now (the dump
      // host's disk may be full — the very fault that strands dumps there).
      // Report transient so the migrate retries instead of giving the process
      // up for lost.
      return IsTransientErrno(cfd.error()) ? kToolTransient : kToolFail;
    }
    // Stamp who holds the claim and since when: if we die or get partitioned
    // away mid-restart, the source's migrate and the orphan reaper read this
    // back to decide between waiting, resurrecting, and collecting. Best
    // effort — an unwritable claim body degrades to the pre-metadata format.
    const Result<int64_t> n = api.Write(
        *cfd, FormatClaimMarker(api.GetHostname(), api.Now()));
    (void)n;
    const Status closed = api.Close(*cfd);
    (void)closed;
  }
  // Failures past the claim must release it, or the dump set becomes
  // unconsumable: no later attempt could ever win the claim again.
  auto fail = [&api, &paths, claim](int rc) {
    if (claim) {
      const Status st = api.Unlink(paths.claim);
      (void)st;
    }
    return rc;
  };

  // Rebuild the fd table: close everything (including our own stdio), then reopen
  // slot by slot so each file lands on its original descriptor number.
  for (int fd = 0; fd < kernel::kNoFile; ++fd) {
    const Status st = api.Close(fd);
    (void)st;
  }
  std::array<bool, kernel::kNoFile> placeholder{};
  for (int i = 0; i < kernel::kNoFile; ++i) {
    const FilesEntry& entry = files->entries[static_cast<size_t>(i)];
    int got = -1;
    if (entry.kind == FilesEntry::Kind::kFile) {
      // Correct access modes; never truncate or create on reopen.
      const int32_t flags =
          entry.flags & (vm::abi::kAccMode | OpenFlags::kOAppend);
      const Result<int> fd = api.Open(entry.path, flags);
      if (fd.ok()) {
        got = *fd;
        const Result<int64_t> pos = api.Lseek(got, entry.offset, vm::abi::kSeekSet);
        (void)pos;  // pipes-turned-files etc. may refuse; offset is best effort
      } else if (i < 3) {
        // Stdio that cannot be reopened: the terminal, "so that the user may have
        // some control over the restarted program".
        const Result<int> tty = api.Open("/dev/tty", OpenFlags::kORdWr);
        if (tty.ok()) got = *tty;
      }
    }
    if (got < 0) {
      // Unused slots, sockets, and unreopenable files: the null device, "so that
      // the restarted process can find an open file where it expects one, and to
      // preserve the order of open file numbers."
      const Result<int> null_fd = api.Open("/dev/null", OpenFlags::kORdWr);
      if (!null_fd.ok()) return fail(kToolFail);
      got = *null_fd;
      if (entry.kind == FilesEntry::Kind::kUnused) {
        placeholder[static_cast<size_t>(i)] = true;
      }
    }
    if (got != i) return fail(kToolFail);  // fd-table invariant broken; bail out
  }
  for (int i = 0; i < kernel::kNoFile; ++i) {
    if (placeholder[static_cast<size_t>(i)]) {
      const Status st = api.Close(i);
      (void)st;
    }
  }

  // The old terminal flags, applied to the current terminal — impossible under
  // rsh (no controlling tty), which is exactly the visual-program limitation.
  if (files->had_tty) {
    const Result<int> tty = api.Open("/dev/tty", OpenFlags::kORdWr);
    if (tty.ok()) {
      const Status st = api.TtySetFlags(*tty, files->tty_flags);
      (void)st;
      const Status closed = api.Close(*tty);
      (void)closed;
    }
  }

  // rest_proc() — no return on success.
  const Status st = api.RestProc(paths.aout, paths.stack);
  (void)st;
  return fail(kToolFail);
}

// --- migrate -----------------------------------------------------------------------

int Migrate(kernel::SyscallApi& api, net::Network& net, int32_t pid, std::string from_host,
            std::string to_host, bool use_daemon, const MigrateOptions& opts) {
  const std::string local = api.GetHostname();
  if (from_host.empty()) from_host = local;
  if (to_host.empty()) to_host = local;
  sim::MetricsRegistry& metrics = api.kernel().metrics();

  auto run_local = [&api](const std::string& program,
                          std::vector<std::string> args) -> Result<int> {
    PMIG_TRY(int32_t child, api.SpawnProgram(program, std::move(args)));
    (void)child;
    PMIG_TRY(kernel::WaitResult wr, api.Wait());
    return wr.overlaid ? 0 : wr.info.exit_code;
  };
  auto run_on = [&](const std::string& host, const std::string& program,
                    std::vector<std::string> args) -> Result<int> {
    if (host == local) return run_local(program, std::move(args));
    net::RemoteExecOptions remote_opts;
    if (opts.attempt_timeout > 0) remote_opts.timeout = opts.attempt_timeout;
    return use_daemon
               ? net::DaemonExec(api, net, host, program, std::move(args), remote_opts)
               : net::Rsh(api, net, host, program, std::move(args), remote_opts);
  };
  // Every remote attempt's outcome also feeds the cluster's per-host fault
  // history: placement policies read the decayed scores back to steer the next
  // migration away from hosts that have been failing. Recording is bookkeeping
  // only — it never consumes virtual time, so runs that never read the history
  // are bit-identical with or without it.
  auto record_outcome = [&](const std::string& host, const Result<int>& rc) {
    const bool bad = !rc.ok() || *rc == kToolTransient;
    // The health monitor sees every leg, local ones included: a host whose
    // dumps start failing should trip its error-rate series no matter where
    // the migrate command happens to run.
    sim::HealthMonitor* monitor = net.health_monitor();
    if (monitor != nullptr && monitor->enabled()) {
      monitor->ObserveOutcome(host, "migrate.errors", bad);
    }
    sim::FaultHistory* history = net.fault_history();
    if (history == nullptr || host == local) return;
    if (!rc.ok()) {
      history->RecordFailure(host, rc.error());
    } else if (*rc == kToolTransient) {
      history->RecordTransient(host);
    } else {
      history->RecordSuccess(host);  // the tool ran: the host is reachable
    }
  };
  // One leg of the transaction: up to opts.attempts tries, retrying only
  // failures a later attempt might not see again, with a doubling pause
  // between tries so a recovering host gets a moment to come back.
  auto run_leg = [&](const std::string& host, const std::string& program,
                     std::vector<std::string> args) -> Result<int> {
    sim::Nanos backoff = opts.retry_backoff;
    for (int attempt = 0;; ++attempt) {
      Result<int> rc = run_on(host, program, args);
      record_outcome(host, rc);
      const bool transient =
          rc.ok() ? *rc == kToolTransient : IsTransientErrno(rc.error());
      if (!transient || attempt + 1 >= opts.attempts) return rc;
      metrics.Inc("migrate.retries");
      if (backoff > 0) api.Sleep(backoff);
      backoff *= 2;
      if (opts.max_backoff > 0 && backoff > opts.max_backoff) {
        backoff = opts.max_backoff;
        metrics.Inc("migrate.backoff_capped");
      }
    }
  };
  auto describe = [](const Result<int>& rc) -> std::string {
    if (!rc.ok()) return std::string(ErrnoName(rc.error()));
    return "exit " + std::to_string(*rc);
  };

  const std::string pid_str = std::to_string(pid);
  const std::string dump_dir =
      from_host == local ? std::string("/usr/tmp") : "/n/" + from_host + "/usr/tmp";
  const DumpPaths dump_paths = DumpPaths::For(pid, dump_dir);
  sim::SpanLog* spans = api.kernel().spans();
  kernel::Proc& self = api.proc();
  if (self.trace_id == 0 && spans != nullptr) {
    // Every migrate is one distributed trace: the id travels with every remote
    // command (rsh/daemon spawn options), onto the SIGDUMP victim, and into
    // the dump metadata, so spans on every host reassemble into one tree.
    self.trace_id = spans->MintTraceId();
  }
  // Failures/fallbacks are tagged with the trace id and failing phase — the
  // same pair the flight-recorder post-mortems carry, so a complaint greps
  // straight to its post-mortem.
  auto tag = [&self](const char* phase) {
    return " [trace=" + std::to_string(self.trace_id) + " phase=" + phase + "]";
  };
  sim::FlightRecorder* recorder = api.kernel().flight_recorder();
  auto postmortem = [&](const char* phase, const std::string& reason) {
    if (recorder != nullptr && recorder->enabled()) {
      recorder->Dump(local, self.trace_id, reason + " phase=" + phase);
    }
  };
  // Root span for the whole command; its self time (network round trips, waits on
  // the remote tools) is reported as "other" in the run report.
  kernel::TraceSpan total(api.kernel(), self, "migrate");
  // End-to-end latency feed for the health monitor: successful migrations are
  // attributed to the host the process landed on, so a destination that gets
  // slow at receiving processes shows up on its own series.
  const sim::Nanos e2e_start = api.kernel().clock().now();
  auto observe_e2e = [&] {
    sim::HealthMonitor* monitor = net.health_monitor();
    if (monitor != nullptr && monitor->enabled()) {
      monitor->Observe(to_host, "migrate.e2e_ns",
                       static_cast<double>(api.kernel().clock().now() - e2e_start));
    }
  };

  std::vector<std::string> dump_args = {"-p", pid_str};
  if (opts.transactional) dump_args.push_back("--tx");
  if (opts.cached) dump_args.push_back("--incremental");
  Result<int> rc = Errno::kIo;
  {
    kernel::TraceSpan phase(api.kernel(), self, "dump");
    rc = run_leg(from_host, "dumpproc", dump_args);
  }
  // A transient dump failure can leave the process already dead with the dump
  // set as its only copy: the kernel's asynchronous dump may complete (and
  // terminate the process) in the instant dumpproc gives up, or the rewrite
  // may hit a full disk after the kill. dumpproc's resume path makes a retry
  // idempotent — ESRCH with the files present picks the set back up and
  // finishes the rewrite — so when the process is gone, persist like the
  // fallback-restart loop does rather than walking away (or worse, sweeping
  // up the process itself). A transient failure with the process still alive
  // keeps failing fast: the process is unharmed and the caller's own retry
  // policy (e.g. an evacuation sweeping round-robin) stays in charge.
  auto source_proc_alive = [&]() -> bool {
    kernel::Kernel* src = net.FindHost(from_host);
    if (src == nullptr || src->down()) return false;
    kernel::Proc* p = src->FindAnyProc(pid);
    return p != nullptr && p->Alive();
  };
  if (opts.transactional && rc.ok() && *rc == kToolTransient && !source_proc_alive()) {
    sim::Nanos backoff = opts.retry_backoff > 0 ? opts.retry_backoff : sim::Millis(500);
    const sim::Nanos give_up = api.kernel().clock().now() +
                               (opts.attempt_timeout > 0 ? opts.attempt_timeout
                                                         : sim::Seconds(30));
    kernel::TraceSpan phase(api.kernel(), self, "dump");
    while (rc.ok() && *rc == kToolTransient && api.kernel().clock().now() < give_up &&
           !source_proc_alive()) {
      api.Sleep(backoff);
      backoff *= 2;
      if (opts.max_backoff > 0 && backoff > opts.max_backoff) {
        backoff = opts.max_backoff;
        metrics.Inc("migrate.backoff_capped");
      }
      rc = run_leg(from_host, "dumpproc", dump_args);
    }
  }
  if (!rc.ok() || *rc != 0) {
    Complain(api, "migrate: dumpproc on " + from_host + " failed (" + describe(rc) + ")" +
                      tag("dump"));
    postmortem("dump", "dumpproc on " + from_host + " failed (" + describe(rc) + ")");
    if (opts.transactional) {
      // GC the partial set — unless the process is no longer alive and the
      // files are: then the set IS the process, and deleting it is the loss
      // this whole protocol exists to prevent. Leave it for a later migrate
      // or the orphan reaper.
      bool proc_alive = false;
      if (kernel::Kernel* src = net.FindHost(from_host);
          src != nullptr && !src->down()) {
        kernel::Proc* p = src->FindAnyProc(pid);
        proc_alive = p != nullptr && p->Alive();
      }
      if (!proc_alive && FileExists(api, dump_paths.aout)) {
        Complain(api, "migrate: " + pid_str +
                          " is gone but its dump set remains; leaving the set" +
                          tag("dump"));
        postmortem("dump", "dump set for " + pid_str + " kept: it is the process now");
        return kToolTransient;
      }
      CleanupDumpFiles(api, dump_paths);
    }
    return rc.ok() ? *rc : kTransportFailure;
  }

  std::vector<std::string> restart_args = {"-p", pid_str, "-h", from_host};
  if (opts.transactional) restart_args.push_back("--claim");
  {
    kernel::TraceSpan phase(api.kernel(), self, "restart");
    rc = run_leg(to_host, "restart", restart_args);
  }
  if (rc.ok() && *rc == 0) {
    if (opts.transactional) CleanupDumpFiles(api, dump_paths);
    observe_e2e();
    return kToolOk;
  }
  // kToolClaimed normally means "somebody's restart won the claim and the
  // process is running" — but a claimant that is down or cut off by a
  // partition may have died between claiming and committing, and GCing the
  // dump set on its behalf could lose the process (or, after the partition
  // heals, let a second restart resurrect it next to the first). Exactly-once
  // rule: never sweep a claimed set while its holder is unreachable; keep the
  // files, report transient, and let the orphan reaper disambiguate after the
  // heal.
  auto claim_holder_reachable = [&]() -> bool {
    const DumpMarker claim = ReadClaimMarker(api, dump_paths);
    if (claim.host.empty()) return true;  // no metadata: assume a live claimant
    kernel::Kernel* holder = net.FindHost(claim.host);
    if (holder == nullptr || holder->down()) return false;
    return net.Reachable(local, claim.host, &metrics);
  };
  // Whether the claim holder actually committed: a live process on the holder
  // carrying this dump's identity. A reachable holder with no such process is
  // a stale claim — a restart that claimed and then died mid-copy when a flap
  // cut the link, whose release (an unlink over that same dead link) failed
  // too. Sweeping on the claim alone would destroy the only copy.
  auto claim_consumed = [&]() -> bool {
    const DumpMarker claim = ReadClaimMarker(api, dump_paths);
    const std::string holder_host = claim.host.empty() ? to_host : claim.host;
    kernel::Kernel* holder = net.FindHost(holder_host);
    if (holder == nullptr || holder->down()) return false;
    for (kernel::Proc* p : holder->ListProcs()) {
      if (p->Alive() && p->old_pid == pid && p->old_host == from_host) return true;
    }
    return false;
  };
  if (opts.transactional && rc.ok() && *rc == kToolClaimed) {
    if (!claim_holder_reachable()) {
      Complain(api, "migrate: dump of " + pid_str +
                        " is claimed by an unreachable host; leaving the set" +
                        tag("restart"));
      postmortem("restart", "claim holder for " + pid_str + " unreachable");
      return kToolTransient;
    }
    // A racing attempt won the claim and may be consuming the dump right now.
    // Give the winner a beat to finish reading the files, then sweep up — but
    // only once its process is actually running. No process behind the claim
    // means the claimant died between claiming and committing: break the stale
    // claim and fall through to the fallback restart below, which can now win.
    api.Sleep(sim::Seconds(1));
    if (claim_consumed()) {
      CleanupDumpFiles(api, dump_paths);
      observe_e2e();
      return kToolOk;
    }
    Complain(api, "migrate: stale claim on " + pid_str +
                      " (holder has no such process); breaking it" + tag("restart"));
    postmortem("restart", "stale claim on " + pid_str + " broken");
    metrics.Inc("migrate.stale_claims_broken");
    const Status broke = api.Unlink(dump_paths.claim);
    (void)broke;
  }
  if (!opts.transactional) {
    Complain(api, "migrate: restart on " + to_host + " failed (" + describe(rc) + ")" +
                      tag("restart"));
    postmortem("restart", "restart on " + to_host + " failed (" + describe(rc) + ")");
    return rc.ok() ? *rc : kTransportFailure;
  }

  // Every remote attempt failed. The process must not be lost: as long as the
  // dump set is intact the process is exactly its dump files, so restart it on
  // the host it came from — a migration that merely fails to move beats one
  // that loses its subject. Only after a fallback restart is alive may the
  // dump files be declared garbage.
  Complain(api, "migrate: restart on " + to_host + " failed (" + describe(rc) +
                    "); restarting on " + from_host + tag("restart"));
  postmortem("restart", "restart on " + to_host + " failed (" + describe(rc) +
                            "); falling back to " + from_host);
  if (!FileExists(api, dump_paths.aout) || !FileExists(api, dump_paths.files) ||
      !FileExists(api, dump_paths.stack)) {
    Complain(api, "migrate: dump files for " + pid_str + " are gone; cannot fall back" +
                      tag("fallback"));
    postmortem("fallback", "dump files for " + pid_str + " are gone; cannot fall back");
    return kToolFail;
  }
  kernel::TraceSpan phase(api.kernel(), self, "restart");
  rc = run_leg(from_host, "restart",
               {"-p", pid_str, "-h", from_host, "--claim"});
  // The fallback is the never-lose path. While the dump set is intact and the
  // failures are transient (e.g. the source disk is still inside a full window,
  // so nobody can write the claim file next to the dump), keep trying until the
  // attempt timeout: the files are the process, and walking away from them over
  // a condition that will pass turns a stuck disk into a lost process.
  {
    sim::Nanos backoff = opts.retry_backoff > 0 ? opts.retry_backoff : sim::Millis(500);
    const sim::Nanos give_up = api.kernel().clock().now() +
                               (opts.attempt_timeout > 0 ? opts.attempt_timeout
                                                         : sim::Seconds(30));
    while (rc.ok() && *rc == kToolTransient && api.kernel().clock().now() < give_up &&
           FileExists(api, dump_paths.aout) && FileExists(api, dump_paths.files) &&
           FileExists(api, dump_paths.stack)) {
      api.Sleep(backoff);
      backoff *= 2;
      if (opts.max_backoff > 0 && backoff > opts.max_backoff) {
        backoff = opts.max_backoff;
        metrics.Inc("migrate.backoff_capped");
      }
      rc = run_leg(from_host, "restart", {"-p", pid_str, "-h", from_host, "--claim"});
    }
  }
  if (rc.ok() && *rc == kToolClaimed) {
    if (!claim_holder_reachable()) {
      // The target claimed the dump before the link went away: it may be
      // running the process right now, on the far side of the partition. A
      // fallback restart here would be the double-resurrection this protocol
      // exists to prevent; leave the set for the reaper to settle post-heal.
      Complain(api, "migrate: dump of " + pid_str +
                        " is claimed by an unreachable host; not falling back" +
                        tag("fallback"));
      postmortem("fallback", "claim holder for " + pid_str + " unreachable");
      return kToolTransient;
    }
    // The holder is reachable — but reachable is not committed. Wait a beat
    // for an in-flight winner, then verify a live copy exists behind the
    // claim. A claim with no process is the debris of a restart the partition
    // killed mid-copy (its release unlink died on the same cut link): break
    // it and retry the fallback, which can now win the claim itself.
    api.Sleep(sim::Seconds(1));
    if (!claim_consumed()) {
      Complain(api, "migrate: stale claim on " + pid_str +
                        " (holder has no such process); breaking it" + tag("fallback"));
      postmortem("fallback", "stale claim on " + pid_str + " broken");
      metrics.Inc("migrate.stale_claims_broken");
      const Status broke = api.Unlink(dump_paths.claim);
      (void)broke;
      rc = run_leg(from_host, "restart", {"-p", pid_str, "-h", from_host, "--claim"});
      if (rc.ok() && *rc == kToolClaimed && !claim_consumed()) {
        // Claimed again and still no copy anywhere — stop second-guessing and
        // leave the set for the orphan reaper to settle.
        postmortem("fallback", "claim on " + pid_str + " contended; leaving the set");
        return kToolTransient;
      }
    }
  }
  if (rc.ok() && (*rc == 0 || *rc == kToolClaimed)) {
    if (*rc == kToolClaimed) {
      const DumpMarker claim = ReadClaimMarker(api, dump_paths);
      if (!claim.host.empty() && claim.host != from_host) {
        // The verified winner is remote: the restart committed and only its
        // reply was lost. That is a successful migration, not a fallback.
        CleanupDumpFiles(api, dump_paths);
        observe_e2e();
        return kToolOk;
      }
    }
    metrics.Inc("migrate.fallback_restarts");
    postmortem("fallback", "migrate of " + pid_str + " fell back; process restarted on " +
                               from_host);
    CleanupDumpFiles(api, dump_paths);
    return kMigrateFellBack;
  }
  Complain(api, "migrate: fallback restart on " + from_host + " failed (" + describe(rc) +
                    ")" + tag("fallback"));
  postmortem("fallback",
             "fallback restart on " + from_host + " failed (" + describe(rc) + ")");
  if (rc.ok() && *rc != kToolTransient) {
    // The tool ran and rejected the dump set — it is unconsumable (corrupted,
    // truncated), so keeping it helps nobody; sweep it up.
    CleanupDumpFiles(api, dump_paths);
    return kToolFail;
  }
  // On a transport failure or a still-transient refusal the files stay: they
  // are the process now, and a later restart (or the next migrate of the same
  // pid) can still recover it.
  return rc.ok() ? kToolTransient : kToolFail;
}

// --- undump ------------------------------------------------------------------------

int Undump(kernel::SyscallApi& api, const std::string& aout_path,
           const std::string& core_path, const std::string& output_path) {
  const Result<int> afd = api.Open(aout_path, OpenFlags::kORdOnly);
  if (!afd.ok()) {
    Complain(api, "undump: cannot open " + aout_path);
    return 1;
  }
  const Result<std::string> aout_bytes = api.ReadAll(*afd);
  const Status ac = api.Close(*afd);
  (void)ac;
  if (!aout_bytes.ok()) return 1;
  if (IsIncrAout(*aout_bytes)) {
    // An incremental dump is not self-contained; only restart (which can reach
    // the segment caches) can consume it.
    Complain(api, "undump: " + aout_path + " is an incremental dump; use restart");
    return 1;
  }
  Result<vm::AoutImage> image =
      vm::AoutImage::Parse(std::vector<uint8_t>(aout_bytes->begin(), aout_bytes->end()));
  if (!image.ok()) {
    Complain(api, "undump: " + aout_path + " is not an executable");
    return 1;
  }

  const Result<int> cfd = api.Open(core_path, OpenFlags::kORdOnly);
  if (!cfd.ok()) {
    Complain(api, "undump: cannot open " + core_path);
    return 1;
  }
  const Result<std::string> core_bytes = api.ReadAll(*cfd);
  const Status cc = api.Close(*cfd);
  (void)cc;
  if (!core_bytes.ok()) return 1;
  const Result<kernel::CoreFile> core = kernel::CoreFile::Parse(*core_bytes);
  if (!core.ok()) {
    Complain(api, "undump: " + core_path + " is not a core dump");
    return 1;
  }

  image->data = core->data;  // statics take their values at the time of death
  const std::vector<uint8_t> out = image->Serialize();
  if (!WriteFileContents(api, output_path, std::string(out.begin(), out.end()), 0755).ok()) {
    Complain(api, "undump: cannot write " + output_path);
    return 1;
  }
  return 0;
}

// --- ps ----------------------------------------------------------------------------

int PsMain(kernel::SyscallApi& api, const std::vector<std::string>& args) {
  const bool all = !args.empty() && args[0] == "-a";
  std::string out = "  PID STAT KIND TIME(ms) COMMAND\n";
  for (kernel::Proc* p : api.kernel().ListProcs()) {
    if (!all && p->creds.uid == 0) continue;
    const char* state = "?";
    switch (p->state) {
      case kernel::ProcState::kRunnable:
        state = "R";
        break;
      case kernel::ProcState::kSleeping:
        state = "S";
        break;
      case kernel::ProcState::kBlocked:
        state = "B";
        break;
      case kernel::ProcState::kZombie:
        state = "Z";
        break;
      case kernel::ProcState::kDead:
        continue;
    }
    char line[160];
    std::snprintf(line, sizeof(line), "%5d %4s %4s %8lld %s\n", p->pid, state,
                  p->kind == kernel::ProcKind::kVm ? "vm" : "sys",
                  static_cast<long long>(sim::ToMillis(p->utime + p->stime)),
                  p->command.c_str());
    out += line;
  }
  const Result<int64_t> n = api.Write(1, out);
  return n.ok() ? 0 : 1;
}

// --- argv wrappers -----------------------------------------------------------------

namespace {

struct ParsedArgs {
  int32_t pid = -1;
  std::string h_host;
  std::string f_host;
  std::string t_host;
  bool daemon = false;
  bool tx = false;
  bool claim = false;
  bool robust = false;
  bool incremental = false;
  bool cached = false;
  std::vector<std::string> positional;
  bool ok = true;
};

ParsedArgs ParseArgs(const std::vector<std::string>& args) {
  ParsedArgs out;
  for (size_t i = 0; i < args.size(); ++i) {
    const std::string& a = args[i];
    auto next = [&]() -> const std::string* {
      if (i + 1 >= args.size()) {
        out.ok = false;
        return nullptr;
      }
      return &args[++i];
    };
    if (a == "-p") {
      if (const std::string* v = next()) out.pid = static_cast<int32_t>(std::atoi(v->c_str()));
    } else if (a == "-h") {
      if (const std::string* v = next()) out.h_host = *v;
    } else if (a == "-f") {
      if (const std::string* v = next()) out.f_host = *v;
    } else if (a == "-t") {
      if (const std::string* v = next()) out.t_host = *v;
    } else if (a == "--daemon") {
      out.daemon = true;
    } else if (a == "--tx") {
      out.tx = true;
    } else if (a == "--claim") {
      out.claim = true;
    } else if (a == "--robust") {
      out.robust = true;
    } else if (a == "--incremental") {
      out.incremental = true;
    } else if (a == "--cached") {
      out.cached = true;
    } else {
      out.positional.push_back(a);
    }
  }
  return out;
}

}  // namespace

int DumpprocMain(kernel::SyscallApi& api, const std::vector<std::string>& args) {
  const ParsedArgs parsed = ParseArgs(args);
  if (!parsed.ok || parsed.pid < 0) {
    Complain(api, "usage: dumpproc -p pid [--tx] [--incremental]");
    return kToolUsage;
  }
  return Dumpproc(api, parsed.pid, parsed.tx, parsed.incremental);
}

int RestartMain(kernel::SyscallApi& api, const std::vector<std::string>& args) {
  const ParsedArgs parsed = ParseArgs(args);
  if (!parsed.ok || parsed.pid < 0) {
    Complain(api, "usage: restart -p pid [-h host] [--claim]");
    return kToolUsage;
  }
  return Restart(api, parsed.pid, parsed.h_host, parsed.claim);
}

int MigrateMain(kernel::SyscallApi& api, net::Network& net,
                const std::vector<std::string>& args) {
  const ParsedArgs parsed = ParseArgs(args);
  if (!parsed.ok || parsed.pid < 0) {
    Complain(api,
             "usage: migrate -p pid [-f host] [-t host] [--daemon] [--robust] [--cached]");
    return kToolUsage;
  }
  MigrateOptions opts = parsed.robust ? MigrateOptions::Robust() : MigrateOptions{};
  opts.cached = parsed.cached;
  return Migrate(api, net, parsed.pid, parsed.f_host, parsed.t_host, parsed.daemon, opts);
}

int UndumpMain(kernel::SyscallApi& api, const std::vector<std::string>& args) {
  const ParsedArgs parsed = ParseArgs(args);
  if (!parsed.ok || parsed.positional.size() != 3) {
    Complain(api, "usage: undump a.out core output");
    return 2;
  }
  return Undump(api, parsed.positional[0], parsed.positional[1], parsed.positional[2]);
}

}  // namespace pmig::core
