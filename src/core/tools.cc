#include "src/core/tools.h"

#include <cstdio>
#include <deque>

#include "src/core/dump_format.h"
#include "src/kernel/core_file.h"
#include "src/net/migration_daemon.h"
#include "src/net/rsh.h"
#include "src/vfs/path.h"
#include "src/vm/aout.h"

namespace pmig::core {

namespace {

using vm::abi::OpenFlags;

void Complain(kernel::SyscallApi& api, const std::string& message) {
  const Result<int64_t> n = api.Write(2, message + "\n");
  (void)n;
}

// Reads and parses one dump file.
template <typename T>
Result<T> LoadDumpFile(kernel::SyscallApi& api, const std::string& path) {
  PMIG_TRY(int fd, api.Open(path, OpenFlags::kORdOnly));
  const Result<std::string> bytes = api.ReadAll(fd);
  const Status closed = api.Close(fd);
  (void)closed;
  if (!bytes.ok()) return bytes.error();
  return T::Parse(*bytes);
}

Status WriteFileContents(kernel::SyscallApi& api, const std::string& path,
                         const std::string& contents, uint16_t mode) {
  PMIG_TRY(int fd, api.Creat(path, mode));
  const Result<int64_t> n = api.Write(fd, contents);
  const Status closed = api.Close(fd);
  (void)closed;
  if (!n.ok()) return n.error();
  return Status::Ok();
}

}  // namespace

Result<std::string> Realpath(kernel::SyscallApi& api, const std::string& path) {
  std::string start = path;
  if (!vfs::IsAbsolute(start)) {
    PMIG_TRY(std::string cwd, api.GetCwd());
    start = vfs::Combine(cwd, start);
  }
  std::deque<std::string> pending;
  for (std::string& c : vfs::SplitPath(start)) pending.push_back(std::move(c));

  std::vector<std::string> resolved;
  int expansions = 0;
  while (!pending.empty()) {
    const std::string comp = std::move(pending.front());
    pending.pop_front();
    if (comp == ".") continue;
    if (comp == "..") {
      if (!resolved.empty()) resolved.pop_back();
      continue;
    }
    resolved.push_back(comp);
    const std::string candidate = vfs::JoinAbsolute(resolved);
    const Result<kernel::StatInfo> info = api.LStat(candidate);
    if (!info.ok()) {
      if (info.error() == Errno::kNoEnt && pending.empty()) {
        return candidate;  // nonexistent leaf is fine (e.g. a file to be created)
      }
      return info.error();
    }
    if (info->type == vfs::InodeType::kSymlink) {
      if (++expansions > 4 * vfs::kMaxSymlinkExpansions) return Errno::kLoop;
      PMIG_TRY(std::string target, api.Readlink(candidate));
      resolved.pop_back();
      std::vector<std::string> target_comps = vfs::SplitPath(target);
      for (auto it = target_comps.rbegin(); it != target_comps.rend(); ++it) {
        pending.push_front(std::move(*it));
      }
      if (vfs::IsAbsolute(target)) resolved.clear();
    }
  }
  return vfs::JoinAbsolute(resolved);
}

// --- dumpproc ----------------------------------------------------------------------

namespace {

// The Section 4.4 path rewriting: resolve symlinks; terminals become /dev/tty;
// local paths get /n/<host> prepended so any machine can reopen them.
std::string RewritePathForMigration(kernel::SyscallApi& api, const std::string& host,
                                    const std::string& path, bool may_be_tty) {
  const Result<std::string> real = Realpath(api, path);
  std::string p = real.ok() ? *real : path;
  if (may_be_tty) {
    const Result<kernel::StatInfo> info = api.Stat(p);
    if (info.ok() && info->is_tty) return "/dev/tty";
  }
  if (!(p.size() >= 3 && p.compare(0, 3, "/n/") == 0)) {
    p = vfs::NormalizeAbsolute("/n/" + host + p);
  }
  return p;
}

}  // namespace

void RewriteFilesForMigration(kernel::SyscallApi& api, FilesFile* files) {
  const std::string host = api.GetHostname();
  files->cwd = RewritePathForMigration(api, host, files->cwd, /*may_be_tty=*/false);
  for (FilesEntry& entry : files->entries) {
    if (entry.kind != FilesEntry::Kind::kFile) continue;
    entry.path = RewritePathForMigration(api, host, entry.path, /*may_be_tty=*/true);
  }
}

int Dumpproc(kernel::SyscallApi& api, int32_t pid) {
  // Signal phase: kill the process with SIGDUMP (kill() itself enforces that
  // only the superuser or the owner may do this), then poll for a.outXXXXX —
  // the dying process creates the dump files — sleeping one second after each
  // unsuccessful attempt (aborting after ten). The kernel's own "dump" span
  // nests inside this one, so the signal phase's self time is the kill plus the
  // retry-sleep slack.
  const DumpPaths paths = DumpPaths::For(pid);
  bool appeared = false;
  {
    sim::SpanScope signal_phase(api.kernel().spans(), "signal", api.kernel().hostname(),
                                api.pid());
    const Status killed = api.Kill(pid, vm::abi::kSigDump);
    if (!killed.ok()) {
      Complain(api, "dumpproc: cannot signal process " + std::to_string(pid) + ": " +
                        std::string(ErrnoName(killed.error())));
      return 1;
    }
    for (int attempt = 0; attempt < 10; ++attempt) {
      const Result<int> fd = api.Open(paths.aout, OpenFlags::kORdOnly);
      if (fd.ok()) {
        const Status closed = api.Close(*fd);
        (void)closed;
        appeared = true;
        break;
      }
      api.Sleep(sim::Seconds(1));
    }
  }
  if (!appeared) {
    Complain(api, "dumpproc: dump files for " + std::to_string(pid) + " never appeared");
    return 1;
  }

  Result<FilesFile> files = LoadDumpFile<FilesFile>(api, paths.files);
  if (!files.ok()) {
    Complain(api, "dumpproc: bad " + paths.files);
    return 1;
  }

  RewriteFilesForMigration(api, &files.value());

  if (!WriteFileContents(api, paths.files, files->Serialize(), 0600).ok()) {
    Complain(api, "dumpproc: cannot rewrite " + paths.files);
    return 1;
  }
  return 0;
}

// --- restart -----------------------------------------------------------------------

int Restart(kernel::SyscallApi& api, int32_t pid, const std::string& dump_host) {
  std::string dir = "/usr/tmp";
  if (!dump_host.empty() && dump_host != api.GetHostname()) {
    dir = "/n/" + dump_host + "/usr/tmp";
  }
  const DumpPaths paths = DumpPaths::For(pid, dir);

  // Reading the dump files (over NFS on a remote-source restart) is the transfer
  // leg of a migration; span it so the run report can attribute it.
  Result<StackFile> stack = Errno::kNoEnt;
  Result<FilesFile> files = Errno::kNoEnt;
  {
    sim::SpanScope transfer_phase(api.kernel().spans(), "transfer", api.kernel().hostname(),
                                  api.pid());

    // Verify that the three files exist and have the correct format.
    const Result<int> fd = api.Open(paths.aout, OpenFlags::kORdOnly);
    if (!fd.ok()) {
      Complain(api, "restart: no " + paths.aout);
      return 1;
    }
    const Result<std::string> head = api.Read(*fd, 4);
    const Status closed = api.Close(*fd);
    (void)closed;
    if (!head.ok() || head->size() < 4 ||
        (static_cast<uint8_t>((*head)[0]) | (static_cast<uint8_t>((*head)[1]) << 8)) !=
            vm::kAoutMagic) {
      Complain(api, "restart: bad executable magic in " + paths.aout);
      return 1;
    }
    stack = LoadDumpFile<StackFile>(api, paths.stack);
    files = LoadDumpFile<FilesFile>(api, paths.files);
  }
  if (!stack.ok()) {
    Complain(api, "restart: bad or missing " + paths.stack);
    return 1;
  }
  if (!files.ok()) {
    Complain(api, "restart: bad or missing " + paths.files);
    return 1;
  }

  // Establish the old credentials as our own (the only thing read from
  // stackXXXXX at user level).
  const Status creds = api.SetReUid(stack->creds.uid, stack->creds.euid);
  if (!creds.ok()) {
    Complain(api, "restart: cannot assume uid " + std::to_string(stack->creds.uid));
    return 1;
  }

  // The old current working directory.
  if (!api.Chdir(files->cwd).ok()) {
    const Status st = api.Chdir("/");
    (void)st;
  }

  // Rebuild the fd table: close everything (including our own stdio), then reopen
  // slot by slot so each file lands on its original descriptor number.
  for (int fd = 0; fd < kernel::kNoFile; ++fd) {
    const Status st = api.Close(fd);
    (void)st;
  }
  std::array<bool, kernel::kNoFile> placeholder{};
  for (int i = 0; i < kernel::kNoFile; ++i) {
    const FilesEntry& entry = files->entries[static_cast<size_t>(i)];
    int got = -1;
    if (entry.kind == FilesEntry::Kind::kFile) {
      // Correct access modes; never truncate or create on reopen.
      const int32_t flags =
          entry.flags & (vm::abi::kAccMode | OpenFlags::kOAppend);
      const Result<int> fd = api.Open(entry.path, flags);
      if (fd.ok()) {
        got = *fd;
        const Result<int64_t> pos = api.Lseek(got, entry.offset, vm::abi::kSeekSet);
        (void)pos;  // pipes-turned-files etc. may refuse; offset is best effort
      } else if (i < 3) {
        // Stdio that cannot be reopened: the terminal, "so that the user may have
        // some control over the restarted program".
        const Result<int> tty = api.Open("/dev/tty", OpenFlags::kORdWr);
        if (tty.ok()) got = *tty;
      }
    }
    if (got < 0) {
      // Unused slots, sockets, and unreopenable files: the null device, "so that
      // the restarted process can find an open file where it expects one, and to
      // preserve the order of open file numbers."
      const Result<int> null_fd = api.Open("/dev/null", OpenFlags::kORdWr);
      if (!null_fd.ok()) return 1;
      got = *null_fd;
      if (entry.kind == FilesEntry::Kind::kUnused) {
        placeholder[static_cast<size_t>(i)] = true;
      }
    }
    if (got != i) return 1;  // fd-table invariant broken; bail out
  }
  for (int i = 0; i < kernel::kNoFile; ++i) {
    if (placeholder[static_cast<size_t>(i)]) {
      const Status st = api.Close(i);
      (void)st;
    }
  }

  // The old terminal flags, applied to the current terminal — impossible under
  // rsh (no controlling tty), which is exactly the visual-program limitation.
  if (files->had_tty) {
    const Result<int> tty = api.Open("/dev/tty", OpenFlags::kORdWr);
    if (tty.ok()) {
      const Status st = api.TtySetFlags(*tty, files->tty_flags);
      (void)st;
      const Status closed = api.Close(*tty);
      (void)closed;
    }
  }

  // rest_proc() — no return on success.
  const Status st = api.RestProc(paths.aout, paths.stack);
  (void)st;
  return 1;
}

// --- migrate -----------------------------------------------------------------------

int Migrate(kernel::SyscallApi& api, net::Network& net, int32_t pid, std::string from_host,
            std::string to_host, bool use_daemon) {
  const std::string local = api.GetHostname();
  if (from_host.empty()) from_host = local;
  if (to_host.empty()) to_host = local;

  auto run_local = [&api](const std::string& program,
                          std::vector<std::string> args) -> int {
    const Result<int32_t> pid_or = api.SpawnProgram(program, std::move(args));
    if (!pid_or.ok()) return 127;
    const Result<kernel::WaitResult> wr = api.Wait();
    if (!wr.ok()) return 127;
    return wr->overlaid ? 0 : wr->info.exit_code;
  };
  auto run_on = [&](const std::string& host, const std::string& program,
                    std::vector<std::string> args) -> int {
    if (host == local) return run_local(program, std::move(args));
    const Result<int> rc = use_daemon
                               ? net::DaemonExec(api, net, host, program, std::move(args))
                               : net::Rsh(api, net, host, program, std::move(args));
    return rc.ok() ? *rc : 127;
  };

  const std::string pid_str = std::to_string(pid);
  sim::SpanLog* spans = api.kernel().spans();
  // Root span for the whole command; its self time (network round trips, waits on
  // the remote tools) is reported as "other" in the run report.
  sim::SpanScope total(spans, "migrate", local, api.pid());
  int rc;
  {
    sim::SpanScope phase(spans, "dump", local, api.pid());
    rc = run_on(from_host, "dumpproc", {"-p", pid_str});
  }
  if (rc != 0) {
    Complain(api, "migrate: dumpproc on " + from_host + " failed (" + std::to_string(rc) + ")");
    return rc;
  }
  {
    sim::SpanScope phase(spans, "restart", local, api.pid());
    rc = run_on(to_host, "restart", {"-p", pid_str, "-h", from_host});
  }
  if (rc != 0) {
    Complain(api, "migrate: restart on " + to_host + " failed (" + std::to_string(rc) + ")");
  }
  return rc;
}

// --- undump ------------------------------------------------------------------------

int Undump(kernel::SyscallApi& api, const std::string& aout_path,
           const std::string& core_path, const std::string& output_path) {
  const Result<int> afd = api.Open(aout_path, OpenFlags::kORdOnly);
  if (!afd.ok()) {
    Complain(api, "undump: cannot open " + aout_path);
    return 1;
  }
  const Result<std::string> aout_bytes = api.ReadAll(*afd);
  const Status ac = api.Close(*afd);
  (void)ac;
  if (!aout_bytes.ok()) return 1;
  Result<vm::AoutImage> image =
      vm::AoutImage::Parse(std::vector<uint8_t>(aout_bytes->begin(), aout_bytes->end()));
  if (!image.ok()) {
    Complain(api, "undump: " + aout_path + " is not an executable");
    return 1;
  }

  const Result<int> cfd = api.Open(core_path, OpenFlags::kORdOnly);
  if (!cfd.ok()) {
    Complain(api, "undump: cannot open " + core_path);
    return 1;
  }
  const Result<std::string> core_bytes = api.ReadAll(*cfd);
  const Status cc = api.Close(*cfd);
  (void)cc;
  if (!core_bytes.ok()) return 1;
  const Result<kernel::CoreFile> core = kernel::CoreFile::Parse(*core_bytes);
  if (!core.ok()) {
    Complain(api, "undump: " + core_path + " is not a core dump");
    return 1;
  }

  image->data = core->data;  // statics take their values at the time of death
  const std::vector<uint8_t> out = image->Serialize();
  if (!WriteFileContents(api, output_path, std::string(out.begin(), out.end()), 0755).ok()) {
    Complain(api, "undump: cannot write " + output_path);
    return 1;
  }
  return 0;
}

// --- ps ----------------------------------------------------------------------------

int PsMain(kernel::SyscallApi& api, const std::vector<std::string>& args) {
  const bool all = !args.empty() && args[0] == "-a";
  std::string out = "  PID STAT KIND TIME(ms) COMMAND\n";
  for (kernel::Proc* p : api.kernel().ListProcs()) {
    if (!all && p->creds.uid == 0) continue;
    const char* state = "?";
    switch (p->state) {
      case kernel::ProcState::kRunnable:
        state = "R";
        break;
      case kernel::ProcState::kSleeping:
        state = "S";
        break;
      case kernel::ProcState::kBlocked:
        state = "B";
        break;
      case kernel::ProcState::kZombie:
        state = "Z";
        break;
      case kernel::ProcState::kDead:
        continue;
    }
    char line[160];
    std::snprintf(line, sizeof(line), "%5d %4s %4s %8lld %s\n", p->pid, state,
                  p->kind == kernel::ProcKind::kVm ? "vm" : "sys",
                  static_cast<long long>(sim::ToMillis(p->utime + p->stime)),
                  p->command.c_str());
    out += line;
  }
  const Result<int64_t> n = api.Write(1, out);
  return n.ok() ? 0 : 1;
}

// --- argv wrappers -----------------------------------------------------------------

namespace {

struct ParsedArgs {
  int32_t pid = -1;
  std::string h_host;
  std::string f_host;
  std::string t_host;
  bool daemon = false;
  std::vector<std::string> positional;
  bool ok = true;
};

ParsedArgs ParseArgs(const std::vector<std::string>& args) {
  ParsedArgs out;
  for (size_t i = 0; i < args.size(); ++i) {
    const std::string& a = args[i];
    auto next = [&]() -> const std::string* {
      if (i + 1 >= args.size()) {
        out.ok = false;
        return nullptr;
      }
      return &args[++i];
    };
    if (a == "-p") {
      if (const std::string* v = next()) out.pid = static_cast<int32_t>(std::atoi(v->c_str()));
    } else if (a == "-h") {
      if (const std::string* v = next()) out.h_host = *v;
    } else if (a == "-f") {
      if (const std::string* v = next()) out.f_host = *v;
    } else if (a == "-t") {
      if (const std::string* v = next()) out.t_host = *v;
    } else if (a == "--daemon") {
      out.daemon = true;
    } else {
      out.positional.push_back(a);
    }
  }
  return out;
}

}  // namespace

int DumpprocMain(kernel::SyscallApi& api, const std::vector<std::string>& args) {
  const ParsedArgs parsed = ParseArgs(args);
  if (!parsed.ok || parsed.pid < 0) {
    Complain(api, "usage: dumpproc -p pid");
    return 2;
  }
  return Dumpproc(api, parsed.pid);
}

int RestartMain(kernel::SyscallApi& api, const std::vector<std::string>& args) {
  const ParsedArgs parsed = ParseArgs(args);
  if (!parsed.ok || parsed.pid < 0) {
    Complain(api, "usage: restart -p pid [-h host]");
    return 2;
  }
  return Restart(api, parsed.pid, parsed.h_host);
}

int MigrateMain(kernel::SyscallApi& api, net::Network& net,
                const std::vector<std::string>& args) {
  const ParsedArgs parsed = ParseArgs(args);
  if (!parsed.ok || parsed.pid < 0) {
    Complain(api, "usage: migrate -p pid [-f host] [-t host] [--daemon]");
    return 2;
  }
  return Migrate(api, net, parsed.pid, parsed.f_host, parsed.t_host, parsed.daemon);
}

int UndumpMain(kernel::SyscallApi& api, const std::vector<std::string>& args) {
  const ParsedArgs parsed = ParseArgs(args);
  if (!parsed.ok || parsed.positional.size() != 3) {
    Complain(api, "usage: undump a.out core output");
    return 2;
  }
  return Undump(api, parsed.positional[0], parsed.positional[1], parsed.positional[2]);
}

}  // namespace pmig::core
