#include "src/core/test_programs.h"

#include "src/vm/assembler.h"

namespace pmig::core {

namespace {

// Shared I/O routines appended to programs that print.
//   print_cstr: r1 = NUL-terminated string -> fd 1. Clobbers r0, r2, r3.
//   print_num:  r0 = non-negative value -> decimal on fd 1. Clobbers r0-r4.
constexpr std::string_view kPrintLib = R"(
print_cstr:
        mov  r2, r1
pcs1:   ldb  r0, r2, 0
        movi r3, 0
        beq  r0, r3, pcs2
        addi r2, r2, 1
        jmp  pcs1
pcs2:   sub  r2, r2, r1
        movi r0, 1
        sys  SYS_write
        ret

print_num:
        movi r3, numbuf+24
        movi r4, 10
pn1:    addi r3, r3, -1
        mod  r1, r0, r4
        addi r1, r1, 48
        stb  r1, r3, 0
        div  r0, r0, r4
        movi r1, 0
        bne  r0, r1, pn1
        movi r0, numbuf+24
        sub  r2, r0, r3
        mov  r1, r3
        movi r0, 1
        sys  SYS_write
        ret
)";

const std::string kCounter = std::string(R"(
; The paper's test program (Section 6.2): three counters, line-in, append-out.
        .text
start:
        movi r0, outname
        movi r1, O_WRONLY+O_CREAT+O_APPEND
        movi r2, 420
        sys  SYS_open
        mov  r6, r0             ; r6 = output-file fd
        movi r0, 0
        push r0                 ; the stack counter's cell (above any exec argv)
        rdsp r1
        movi r2, kptr
        st   r1, r2, 0          ; its address, kept in a static for addressing
loop:
        addi r5, r5, 1          ; register counter
        movi r1, sctr
        ld   r0, r1, 0
        addi r0, r0, 1
        st   r0, r1, 0          ; static (data segment) counter
        movi r1, kptr
        ld   r2, r1, 0
        ld   r0, r2, 0
        addi r0, r0, 1
        st   r0, r2, 0          ; stack counter
        ; print "r=<reg> s=<static> k=<stack>\n"
        movi r1, msg_r
        call print_cstr
        mov  r0, r5
        call print_num
        movi r1, msg_s
        call print_cstr
        movi r1, sctr
        ld   r0, r1, 0
        call print_num
        movi r1, msg_k
        call print_cstr
        movi r1, kptr
        ld   r2, r1, 0
        ld   r0, r2, 0
        call print_num
        movi r1, msg_nl
        call print_cstr
        ; prompt and read one line (the SIGDUMP always lands here)
        movi r1, msg_pr
        call print_cstr
        movi r0, 0
        movi r1, linebuf
        movi r2, 128
        sys  SYS_read
        movi r1, 1
        blt  r0, r1, done       ; EOF or error
        ; append the line to the output file
        mov  r2, r0
        movi r1, linebuf
        mov  r0, r6
        sys  SYS_write
        jmp  loop
done:
        movi r0, 0
        sys  SYS_exit
)") + std::string(kPrintLib) + R"(
        .data
outname: .asciiz "counter.out"
sctr:    .quad 0
kptr:    .quad 0
msg_r:   .asciiz "r="
msg_s:   .asciiz " s="
msg_k:   .asciiz " k="
msg_nl:  .asciiz "\n"
msg_pr:  .asciiz "> "
numbuf:  .space 24
linebuf: .space 128
)";

constexpr std::string_view kCpuHog = R"(
; CPU-bound job: argv[1] iterations (default 200000), then exit(0).
        .text
start:  movi r7, 200000
        movi r2, 2
        blt  r0, r2, run
        ld   r3, r1, 8          ; argv[1]
        movi r7, 0
atoi:   ldb  r4, r3, 0
        movi r5, 0
        beq  r4, r5, run
        movi r5, 10
        mul  r7, r7, r5
        addi r4, r4, -48
        add  r7, r7, r4
        addi r3, r3, 1
        jmp  atoi
run:    movi r6, 0
work:   addi r6, r6, 1
        blt  r6, r7, work
        movi r0, 0
        sys  SYS_exit
)";

constexpr std::string_view kEditor = R"(
; A "screen editor": switches the terminal to raw mode and echoes [c] per key.
        .text
start:
        movi r0, 0
        movi r1, TIOCGETP
        movi r2, oldfl
        sys  SYS_ioctl
        movi r3, TTY_RAW
        movi r4, newfl
        stb  r3, r4, 0
        movi r3, 0
        stb  r3, r4, 1
        movi r0, 0
        movi r1, TIOCSETP
        mov  r2, r4
        sys  SYS_ioctl
edlp:   movi r0, 0
        movi r1, chbuf
        movi r2, 1
        sys  SYS_read
        movi r3, 0
        beq  r0, r3, quit
        movi r3, chbuf
        ldb  r4, r3, 0
        movi r3, 113            ; 'q' quits
        beq  r4, r3, quit
        movi r3, brkt+1
        stb  r4, r3, 0
        movi r0, 1
        movi r1, brkt
        movi r2, 3
        sys  SYS_write
        jmp  edlp
quit:   movi r0, 0
        sys  SYS_exit
        .data
oldfl:  .space 8
newfl:  .space 8
chbuf:  .space 8
brkt:   .ascii "[?]"
        .byte 0
)";

constexpr std::string_view kSocketer = R"(
; Holds an open socket pair across its prompt loop (the migration limitation).
        .text
start:  sys  SYS_socket         ; r0, r1 = connected pair
        mov  r6, r0
        mov  r7, r1
slp:    mov  r0, r7
        movi r1, ping
        movi r2, 4
        sys  SYS_write          ; best effort; /dev/null after migration
        movi r0, 1
        movi r1, prompt
        movi r2, 2
        sys  SYS_write
        movi r0, 0
        movi r1, buf
        movi r2, 64
        sys  SYS_read
        movi r3, 0
        beq  r0, r3, sdone
        jmp  slp
sdone:  movi r0, 0
        sys  SYS_exit
        .data
ping:   .ascii "ping"
        .byte 0
prompt: .asciiz "? "
buf:    .space 64
)";

constexpr std::string_view kForkWait = R"(
; Parent forks, then blocks in wait() — the Section 7 caveat: do not migrate it.
        .text
start:  sys  SYS_fork
        movi r1, 0
        beq  r0, r1, child
        sys  SYS_wait           ; r0 = pid or -errno, r1 = status
        movi r1, 0
        blt  r0, r1, werr
        movi r0, 0
        sys  SYS_exit
werr:   movi r0, 10             ; exit(10): wait() failed (ECHILD after migration)
        sys  SYS_exit
child:  movi r0, 0
        movi r1, cbuf
        movi r2, 8
        sys  SYS_read           ; child blocks on the terminal
        movi r0, 7
        sys  SYS_exit
        .data
cbuf:   .space 8
)";

constexpr std::string_view kIsa20 = R"(
; Uses lmul, a 68020-only instruction: runs on Sun-3s, faults on Sun-2s.
        .isa 20
        .text
start:  movi r2, 3
        movi r3, 7
        lmul r5, r2, r3
i2lp:   movi r0, 1
        movi r1, p2
        movi r2, 2
        sys  SYS_write
        movi r0, 0
        movi r1, b2
        movi r2, 32
        sys  SYS_read
        movi r3, 0
        beq  r0, r3, i2q
        movi r3, 1
        lmul r5, r5, r3
        jmp  i2lp
i2q:    movi r0, 0
        sys  SYS_exit
        .data
p2:     .asciiz "# "
b2:     .space 32
)";

const std::string kIdentity = std::string(R"(
; Prints "<pid>:<hostname>" each iteration — the programs that "know things about
; their environment" from Section 7.
        .text
start:
idlp:   sys  SYS_getpid
        call print_num
        movi r1, sep
        call print_cstr
        movi r0, hostbuf
        movi r1, 64
        sys  SYS_gethostname
        movi r1, hostbuf
        call print_cstr
        movi r1, nl
        call print_cstr
        movi r1, pr
        call print_cstr
        movi r0, 0
        movi r1, ibuf
        movi r2, 64
        sys  SYS_read
        movi r3, 0
        beq  r0, r3, idq
        jmp  idlp
idq:    movi r0, 0
        sys  SYS_exit
)") + std::string(kPrintLib) + R"(
        .data
sep:    .asciiz ":"
nl:     .asciiz "\n"
pr:     .asciiz "> "
hostbuf: .space 64
ibuf:   .space 64
numbuf: .space 24
)";

const std::string kHandler = std::string(R"(
; Catches SIGUSR1 (counts deliveries in a static), ignores SIGINT; prompts in a
; loop printing the count. Tests that dispositions survive migration.
        .text
start:  movi r0, SIGUSR1
        movi r1, handler
        sys  SYS_signal
        movi r0, SIGINT
        movi r1, SIG_IGN
        sys  SYS_signal
hlp:    movi r1, hits
        ld   r0, r1, 0
        call print_num
        movi r1, nl
        call print_cstr
        movi r1, pr
        call print_cstr
        movi r0, 0
        movi r1, ibuf
        movi r2, 64
        sys  SYS_read
        movi r3, 0
        beq  r0, r3, hq
        jmp  hlp
hq:     movi r0, 0
        sys  SYS_exit
handler:
        push r0                 ; delivery does not save registers; the handler
        push r1                 ; must (it may interrupt a blocked syscall whose
        movi r1, hits           ; arguments live in r0..r2)
        ld   r0, r1, 0
        addi r0, r0, 1
        st   r0, r1, 0
        pop  r1
        pop  r0
        ret
)") + std::string(kPrintLib) + R"(
        .data
hits:   .quad 0
nl:     .asciiz "\n"
pr:     .asciiz "> "
ibuf:   .space 64
numbuf: .space 24
)";

const std::string kDeepStack = std::string(R"(
; Recurses to depth argv-less 40, prompting for input at maximum depth (so the
; dump carries a deep stack), then sums the frames on the way back up.
        .text
start:  movi r0, 40
        movi r7, 0
        call rec
        movi r1, sm
        call print_cstr
        mov  r0, r7
        call print_num
        movi r1, nl
        call print_cstr
        movi r0, 0
        sys  SYS_exit
rec:    movi r1, 0
        beq  r0, r1, base
        push r0
        addi r0, r0, -1
        call rec
        pop  r0
        add  r7, r7, r0
        ret
base:   movi r1, dmsg
        call print_cstr
        movi r0, 0
        movi r1, dbuf
        movi r2, 16
        sys  SYS_read
        ret
)") + std::string(kPrintLib) + R"(
        .data
sm:     .asciiz "sum="
nl:     .asciiz "\n"
dmsg:   .asciiz "deep> "
dbuf:   .space 16
numbuf: .space 24
)";

constexpr std::string_view kDirtier = R"(
; Dirties memory at a controllable rate: each cycle burns a fixed compute loop,
; then touches argv[1] bytes (default 64) of a 16 KB buffer at a moving cursor.
; Runs until killed — the workload for pre-copy migration experiments.
        .text
start:  movi r7, 64
        movi r2, 2
        blt  r0, r2, dlp
        ld   r3, r1, 8          ; argv[1] = bytes dirtied per cycle
        movi r7, 0
datoi:  ldb  r4, r3, 0
        movi r5, 0
        beq  r4, r5, dlp
        movi r5, 10
        mul  r7, r7, r5
        addi r4, r4, -48
        add  r7, r7, r4
        addi r3, r3, 1
        jmp  datoi
dlp:    movi r2, 0              ; compute phase
cmp1:   addi r2, r2, 1
        movi r3, 200
        blt  r2, r3, cmp1
        movi r2, 0              ; dirty phase: touch r7 bytes
dty:    beq  r2, r7, dnext
        add  r3, r6, r2
        movi r4, 16384
        mod  r3, r3, r4
        movi r4, buf
        add  r3, r3, r4
        ldb  r5, r3, 0
        addi r5, r5, 1
        stb  r5, r3, 0
        addi r2, r2, 1
        jmp  dty
dnext:  add  r6, r6, r7
        jmp  dlp
        .data
buf:    .space 16384
)";

}  // namespace

std::string_view CounterProgramSource() { return kCounter; }
std::string_view CpuHogProgramSource() { return kCpuHog; }
std::string_view EditorProgramSource() { return kEditor; }
std::string_view SocketProgramSource() { return kSocketer; }
std::string_view ForkWaitProgramSource() { return kForkWait; }
std::string_view Isa20ProgramSource() { return kIsa20; }
std::string_view IdentityProgramSource() { return kIdentity; }
std::string_view HandlerProgramSource() { return kHandler; }
std::string_view DeepStackProgramSource() { return kDeepStack; }
std::string_view DirtierProgramSource() { return kDirtier; }

std::string WithPadding(std::string_view source, int extra_text_instructions,
                        int extra_data_bytes) {
  std::string out(source);
  out += "\n        .text\n";
  out.reserve(out.size() + 16 * static_cast<size_t>(extra_text_instructions) + 64);
  for (int i = 0; i < extra_text_instructions; ++i) {
    out += "        nop\n";
  }
  out += "        .data\n        .space " + std::to_string(extra_data_bytes) + "\n";
  return out;
}

void InstallProgram(kernel::Kernel& host, const std::string& path, std::string_view source) {
  const vm::AoutImage image = vm::MustAssemble(source);
  const std::vector<uint8_t> bytes = image.Serialize();
  host.vfs().SetupCreateFile(path, std::string_view(reinterpret_cast<const char*>(bytes.data()),
                                                    bytes.size()),
                             /*uid=*/0, /*mode=*/0755);
}

void InstallStandardPrograms(kernel::Kernel& host) {
  InstallProgram(host, "/bin/counter", CounterProgramSource());
  InstallProgram(host, "/bin/hog", CpuHogProgramSource());
  InstallProgram(host, "/bin/editor", EditorProgramSource());
  InstallProgram(host, "/bin/socketer", SocketProgramSource());
  InstallProgram(host, "/bin/forkwait", ForkWaitProgramSource());
  InstallProgram(host, "/bin/isa20", Isa20ProgramSource());
  InstallProgram(host, "/bin/identity", IdentityProgramSource());
  InstallProgram(host, "/bin/handler", HandlerProgramSource());
  InstallProgram(host, "/bin/deepstack", DeepStackProgramSource());
  InstallProgram(host, "/bin/dirtier", DirtierProgramSource());
}

}  // namespace pmig::core
