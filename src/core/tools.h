// The user-level migration commands (Section 4): dumpproc, restart, migrate — plus
// the undump utility the dump format gives "for free".
//
// Each is an ordinary native program built only on SyscallApi (the public syscall
// surface), exactly as the paper implements them on top of SIGDUMP + rest_proc().
// The *Main wrappers parse command-line style arguments so the tools can be
// launched by name through rsh and the migration daemon.

#ifndef PMIG_SRC_CORE_TOOLS_H_
#define PMIG_SRC_CORE_TOOLS_H_

#include <string>
#include <vector>

#include "src/core/dump_format.h"
#include "src/kernel/kernel.h"
#include "src/net/network.h"

namespace pmig::core {

// Userland realpath: resolves every symbolic link in `path` with readlink(),
// iteratively, as Section 4.3 prescribes for dump-file rewriting. Does not require
// the final component to exist if the parent chain does.
Result<std::string> Realpath(kernel::SyscallApi& api, const std::string& path);

// The Section 4.4 rewriting dumpproc applies to a filesXXXXX image: resolve every
// symbolic link, turn terminals into /dev/tty, and prepend /n/<thishost> to local
// paths so they can be reopened from any machine. Runs on the machine the process
// was dumped on. Exposed for alternative migration transports (see precopy.h).
void RewriteFilesForMigration(kernel::SyscallApi& api, FilesFile* files);

// dumpproc -p <pid>: SIGDUMPs the process, then rewrites filesXXXXX — resolving
// symlinks, turning terminals into /dev/tty, and prepending /n/<thishost> to local
// paths so the files can be reopened from any machine. Returns 0 on success.
int Dumpproc(kernel::SyscallApi& api, int32_t pid);

// restart -p <pid> [-h <host>]: restores a dumped process on this machine, at this
// terminal. `dump_host` empty means the dump is local. Does not return on success
// (the calling process is overlaid); returns nonzero on failure.
int Restart(kernel::SyscallApi& api, int32_t pid, const std::string& dump_host);

// migrate -p <pid> [-f <host>] [-t <host>]: dumpproc + restart, via rsh when either
// end is remote. With `use_daemon`, remote ends go through the migration daemon
// (the Section 6.4 improvement) instead of rsh.
int Migrate(kernel::SyscallApi& api, net::Network& net, int32_t pid, std::string from_host,
            std::string to_host, bool use_daemon = false);

// undump <a.out> <core> <output>: combines an executable and a core dump into a new
// executable whose static data is the core's.
int Undump(kernel::SyscallApi& api, const std::string& aout_path,
           const std::string& core_path, const std::string& output_path);

// ps: lists processes on this machine (pid, state, times, command). Takes an
// optional "-a" to include system (root) processes.
int PsMain(kernel::SyscallApi& api, const std::vector<std::string>& args);

// Argument-parsing entry points for the program registry ("/usr/local/bin").
int DumpprocMain(kernel::SyscallApi& api, const std::vector<std::string>& args);
int RestartMain(kernel::SyscallApi& api, const std::vector<std::string>& args);
// MigrateMain needs the network; bound at registration time (see setup.h).
int MigrateMain(kernel::SyscallApi& api, net::Network& net,
                const std::vector<std::string>& args);
int UndumpMain(kernel::SyscallApi& api, const std::vector<std::string>& args);

}  // namespace pmig::core

#endif  // PMIG_SRC_CORE_TOOLS_H_
