// The user-level migration commands (Section 4): dumpproc, restart, migrate — plus
// the undump utility the dump format gives "for free".
//
// Each is an ordinary native program built only on SyscallApi (the public syscall
// surface), exactly as the paper implements them on top of SIGDUMP + rest_proc().
// The *Main wrappers parse command-line style arguments so the tools can be
// launched by name through rsh and the migration daemon.

#ifndef PMIG_SRC_CORE_TOOLS_H_
#define PMIG_SRC_CORE_TOOLS_H_

#include <string>
#include <vector>

#include "src/core/dump_format.h"
#include "src/kernel/kernel.h"
#include "src/net/network.h"

namespace pmig::core {

// Exit codes shared by the migration tools. The interesting ones drive the
// migrate transaction: kToolTransient marks a failure worth retrying (a poll
// that timed out, a host that was briefly unreachable), kToolClaimed means a
// concurrent restart already won the dump's claim file (the process IS running
// — the caller lost a race, not the process), and kMigrateFellBack reports
// that after every remote attempt failed the process was restarted on its
// source host. kTransportFailure is the historical rsh-style 127.
constexpr int kToolOk = 0;
constexpr int kToolFail = 1;
constexpr int kToolUsage = 2;
constexpr int kToolTransient = 3;
constexpr int kToolClaimed = 4;
constexpr int kMigrateFellBack = 5;
constexpr int kTransportFailure = 127;

// Errors that a later attempt might not see again: lost messages, crashed-but-
// rebooting hosts, NFS flakes, a disk-full window.
bool IsTransientErrno(Errno e);

// How hard migrate tries. The default is the paper's one-shot behavior; the
// transaction (retries, timeouts, claim files, fallback restart on the source)
// is opt-in so default-config runs are unchanged.
struct MigrateOptions {
  int attempts = 1;                // total tries per leg (dump, restart)
  sim::Nanos retry_backoff = 0;    // pause before the second try; doubles after
  sim::Nanos max_backoff = 0;      // cap on the doubling; 0 = uncapped
  sim::Nanos attempt_timeout = 0;  // per remote command; 0 = transport default
  bool transactional = false;      // dumpproc --tx / restart --claim / GC / fallback
  // migrate --cached: dump incrementally (dumpproc --incremental), so text and
  // the data base travel by content digest and hosts that have seen them serve
  // them from /var/segcache instead of the wire. Needs a kernel booted with
  // track_dirty_pages; degrades to a full dump otherwise.
  bool cached = false;
  static MigrateOptions Robust();
};

// Userland realpath: resolves every symbolic link in `path` with readlink(),
// iteratively, as Section 4.3 prescribes for dump-file rewriting. Does not require
// the final component to exist if the parent chain does.
Result<std::string> Realpath(kernel::SyscallApi& api, const std::string& path);

// The Section 4.4 rewriting dumpproc applies to a filesXXXXX image: resolve every
// symbolic link, turn terminals into /dev/tty, and prepend /n/<thishost> to local
// paths so they can be reopened from any machine. Runs on the machine the process
// was dumped on. Exposed for alternative migration transports (see precopy.h).
void RewriteFilesForMigration(kernel::SyscallApi& api, FilesFile* files);

// dumpproc -p <pid> [--tx] [--incremental]: SIGDUMPs the process, then rewrites
// filesXXXXX —
// resolving symlinks, turning terminals into /dev/tty, and prepending
// /n/<thishost> to local paths so the files can be reopened from any machine.
// Returns 0 on success; a mid-flight failure unlinks whatever partial dump
// files exist so a half-written dump never survives. In --tx mode the command
// is additionally idempotent (a rerun after the process already dumped resumes
// the rewrite), reports a poll timeout as kToolTransient, and marks a complete
// dump set with a readyXXXXX file. With `incremental`, setdumpmode() arms a
// delta dump first (falling back to a full dump if the kernel cannot).
int Dumpproc(kernel::SyscallApi& api, int32_t pid, bool tx = false,
             bool incremental = false);

// restart -p <pid> [-h <host>] [--claim]: restores a dumped process on this
// machine, at this terminal. `dump_host` empty means the dump is local. Does
// not return on success (the calling process is overlaid); returns nonzero on
// failure. With `claim`, creates claimXXXXX next to the dump (O_EXCL) before
// committing, so at most one of several racing restart attempts consumes the
// dump; the losers exit kToolClaimed.
int Restart(kernel::SyscallApi& api, int32_t pid, const std::string& dump_host,
            bool claim = false);

// migrate -p <pid> [-f host] [-t host] [--daemon] [--robust]: dumpproc +
// restart, via rsh when either end is remote. With `use_daemon`, remote ends go
// through the migration daemon (the Section 6.4 improvement) instead of rsh.
// `opts` turns the command into a transaction: transient failures are retried
// with backoff, each remote command is bounded by a timeout, and when every
// attempt to restart on the target fails the process is restarted on its
// source host instead (kMigrateFellBack) — the process is never lost, and the
// dump files are unlinked on success and on every failure path.
int Migrate(kernel::SyscallApi& api, net::Network& net, int32_t pid, std::string from_host,
            std::string to_host, bool use_daemon = false,
            const MigrateOptions& opts = {});

// undump <a.out> <core> <output>: combines an executable and a core dump into a new
// executable whose static data is the core's.
int Undump(kernel::SyscallApi& api, const std::string& aout_path,
           const std::string& core_path, const std::string& output_path);

// ps: lists processes on this machine (pid, state, times, command). Takes an
// optional "-a" to include system (root) processes.
int PsMain(kernel::SyscallApi& api, const std::vector<std::string>& args);

// Argument-parsing entry points for the program registry ("/usr/local/bin").
int DumpprocMain(kernel::SyscallApi& api, const std::vector<std::string>& args);
int RestartMain(kernel::SyscallApi& api, const std::vector<std::string>& args);
// MigrateMain needs the network; bound at registration time (see setup.h).
int MigrateMain(kernel::SyscallApi& api, net::Network& net,
                const std::vector<std::string>& args);
int UndumpMain(kernel::SyscallApi& api, const std::vector<std::string>& args);

}  // namespace pmig::core

#endif  // PMIG_SRC_CORE_TOOLS_H_
