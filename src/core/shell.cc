#include "src/core/shell.h"

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <cstdlib>

#include "src/apps/decision_log.h"

namespace pmig::core {

namespace {

// One placement summary line: the survey/lease/balancer counters an operator
// checks when asking "is placement cheap and making progress". Printed even
// when all-zero — absence would read as "not instrumented", which is wrong.
std::string PlacementCountersLine(const sim::MetricsRegistry& m) {
  return "  placement: survey_msgs=" + std::to_string(m.Counter("placement.survey_msgs")) +
         " lease_wait_ms=" + std::to_string(m.Counter("lease.wait_ns") / 1000000) +
         " balancer_rounds=" + std::to_string(m.Counter("balancer.rounds")) +
         " idle_rounds=" + std::to_string(m.Counter("balancer.idle_rounds")) + "\n";
}

void Say(kernel::SyscallApi& api, const std::string& text) {
  const Result<int64_t> n = api.Write(1, text);
  (void)n;
}

// pstat: the kernel's bookkeeping at a glance — KernelStats always, plus the
// metrics registry when the cluster was booted with metrics enabled.
void PstatBuiltin(kernel::SyscallApi& api) {
  kernel::Kernel& k = api.kernel();
  const kernel::KernelStats& st = k.stats();
  char head[192];
  std::snprintf(head, sizeof(head),
                "%s: syscalls=%lld ctxsw=%lld signals=%lld procs=%lld name_bytes=%lld/%lld\n",
                k.hostname().c_str(), static_cast<long long>(st.syscalls),
                static_cast<long long>(st.context_switches),
                static_cast<long long>(st.signals_posted),
                static_cast<long long>(st.procs_spawned),
                static_cast<long long>(st.name_bytes_current),
                static_cast<long long>(st.name_bytes_peak));
  std::string out = head;
  const sim::MetricsRegistry& m = k.metrics();
  if (!m.enabled()) {
    out += "(metrics disabled; boot the cluster with enable_metrics for counters)\n";
  } else {
    for (const auto& [name, value] : m.counters()) {
      out += "  counter " + name + " = " + std::to_string(value) + "\n";
    }
    for (const auto& [name, value] : m.gauges()) {
      out += "  gauge " + name + " = " + std::to_string(value) + "\n";
    }
    for (const auto& [name, hist] : m.histograms()) {
      out += "  histogram " + name + ": count=" + std::to_string(hist.count) +
             " p50_ns=" + std::to_string(hist.Percentile(50)) +
             " p95_ns=" + std::to_string(hist.Percentile(95)) +
             " p99_ns=" + std::to_string(hist.Percentile(99)) +
             " max_ns=" + std::to_string(hist.max) + "\n";
    }
    out += PlacementCountersLine(m);
  }
  Say(api, out);
}

// ptop: the processes burning this machine's CPU, busiest first, plus the
// migration latency records — the interactive view an admin deciding "should
// this process move, and where" actually wants.
void PtopBuiltin(kernel::SyscallApi& api) {
  kernel::Kernel& k = api.kernel();
  std::vector<kernel::Proc*> procs = k.ListProcs();
  auto cpu_of = [](const kernel::Proc* p) { return p->utime + p->stime; };
  std::sort(procs.begin(), procs.end(),
            [&cpu_of](const kernel::Proc* a, const kernel::Proc* b) {
              if (cpu_of(a) != cpu_of(b)) return cpu_of(a) > cpu_of(b);
              return a->pid < b->pid;
            });
  std::string out = k.hostname() + ": pid cpu_ms state command\n";
  for (const kernel::Proc* p : procs) {
    if (!p->Alive()) continue;
    const char* state = p->state == kernel::ProcState::kRunnable   ? "run"
                       : p->state == kernel::ProcState::kSleeping  ? "sleep"
                       : p->state == kernel::ProcState::kBlocked   ? "block"
                                                                   : "other";
    char line[160];
    std::snprintf(line, sizeof(line), "  %5d %8lld %-5s %s\n", p->pid,
                  static_cast<long long>((p->utime + p->stime) / 1000000), state,
                  p->command.c_str());
    out += line;
  }
  const sim::MetricsRegistry& m = k.metrics();
  if (m.enabled()) {
    for (const char* name : {"migration.dump_ns", "migration.restart_ns"}) {
      const sim::Histogram* hist = m.FindHistogram(name);
      if (hist == nullptr || hist->count == 0) continue;
      out += std::string("  ") + name + ": count=" + std::to_string(hist->count) +
             " p50_ns=" + std::to_string(hist->Percentile(50)) +
             " p95_ns=" + std::to_string(hist->Percentile(95)) +
             " p99_ns=" + std::to_string(hist->Percentile(99)) + "\n";
    }
    out += PlacementCountersLine(m);
  }
  Say(api, out);
}

// pwhy: why did placement pick (or refuse) what it did? Renders the matching
// decision record — per-factor candidate table, exclusions with reasons,
// runner-up and margin. `pwhy` / `pwhy last` shows the newest decision,
// `pwhy <pid>` the newest decision about that process, `pwhy <host>` the
// newest decision that involved that host (chosen, runner-up, source,
// candidate, or excluded — so a fault-demoted host's pwhy names the factor
// that demoted it).
void PwhyBuiltin(kernel::SyscallApi& api, const std::vector<std::string>& tokens) {
  const apps::DecisionLog* log = api.kernel().decision_log();
  if (log == nullptr || !log->enabled()) {
    Say(api,
        "decision log disabled; boot the cluster with enable_decision_log for "
        "placement audits\n");
    return;
  }
  const std::string arg = tokens.size() > 1 ? tokens[1] : "last";
  const apps::DecisionRecord* r = nullptr;
  if (arg == "last") {
    r = log->Latest();
  } else if (!arg.empty() &&
             (std::isdigit(static_cast<unsigned char>(arg[0])) || arg[0] == '-')) {
    r = log->LatestForPid(std::atoi(arg.c_str()));
  } else {
    r = log->LatestForHost(arg);
  }
  if (r == nullptr) {
    Say(api, "pwhy: no decision recorded for '" + arg + "'\n");
    return;
  }
  Say(api, apps::DecisionLog::Render(*r));
}

// phealth: the cluster health monitor at a glance — SLO error budgets, firing
// alerts, and per-host anomaly state. The monitor is cluster-wide, so any
// host's shell sees the whole picture.
void PhealthBuiltin(kernel::SyscallApi& api) {
  const sim::HealthMonitor* monitor = api.kernel().health_monitor();
  if (monitor == nullptr || !monitor->enabled()) {
    Say(api,
        "health monitor disabled; configure slos or health.anomaly_detection "
        "on the cluster\n");
    return;
  }
  auto fmt = [](double v) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.3g", v);
    return std::string(buf);
  };
  std::string out = api.GetHostname() + ": health monitor (active alerts=" +
                    std::to_string(monitor->ActiveAlerts()) + ")\n";
  for (const sim::HealthMonitor::BudgetStatus& b : monitor->Budgets()) {
    out += "  slo " + b.slo->name + " host=" + b.host + ": " + std::to_string(b.bad) +
           "/" + std::to_string(b.events) + " bad (budget " + fmt(b.allowed) +
           ") burn fast=" + fmt(b.burn_fast) + "x slow=" + fmt(b.burn_slow) + "x";
    if (b.firing_fast) out += " FIRING-FAST";
    if (b.firing_slow) out += " FIRING-SLOW";
    out += "\n";
  }
  for (const std::string& host : monitor->Hosts()) {
    out += "  host " + host + ": score=" + fmt(monitor->HealthScore(host));
    for (const std::string& metric : monitor->SeriesNames(host)) {
      if (!monitor->Anomalous(host, metric)) continue;
      out += " ANOMALY:" + metric + "(z=" + fmt(monitor->AnomalyZ(host, metric)) + ")";
    }
    out += "\n";
  }
  for (const sim::HealthAlert& a : monitor->alerts()) {
    out += std::string("  alert ") + (a.resolved ? "[resolved] " : "[firing]  ") +
           a.rule + " host=" + a.host + " " + a.detail + "\n";
  }
  Say(api, out);
}

// Reaps any finished background jobs; announces them like sh's "[n] Done".
void ReapBackground(kernel::SyscallApi& api, std::vector<int32_t>* jobs) {
  kernel::Kernel& k = api.kernel();
  for (auto it = jobs->begin(); it != jobs->end();) {
    kernel::Proc* p = k.FindAnyProc(*it);
    const bool finished = p == nullptr || !p->Alive() || p->overlaid;
    if (finished) {
      Say(api, "[done] " + std::to_string(*it) + "\n");
      if (p != nullptr && p->state == kernel::ProcState::kZombie) {
        // Reap via wait(); our wait returns the first ready child, which must be
        // this one or another finished job — either way it gets collected.
        const Result<kernel::WaitResult> wr = api.Wait();
        (void)wr;
      }
      it = jobs->erase(it);
    } else {
      ++it;
    }
  }
}

// Runs one command; returns its exit code (0 for built-ins that succeed).
int RunCommand(kernel::SyscallApi& api, const std::vector<std::string>& tokens,
               bool background, std::vector<int32_t>* jobs) {
  const std::string& cmd = tokens[0];
  std::vector<std::string> args(tokens.begin() + 1, tokens.end());

  // Resolve: registered program, absolute path, or /bin/<name>.
  Result<int32_t> pid = Errno::kNoEnt;
  const kernel::ProgramRegistry* registry = api.kernel().program_registry();
  if (registry != nullptr && registry->find(cmd) != registry->end()) {
    pid = api.SpawnProgram(cmd, args);
  } else {
    std::vector<std::string> argv = tokens;  // argv[0] = program name, as execve
    const std::string path = cmd.front() == '/' ? cmd : "/bin/" + cmd;
    pid = api.SpawnVm(path, argv);
  }
  if (!pid.ok()) {
    Say(api, cmd + ": not found\n");
    return 127;
  }
  if (background) {
    jobs->push_back(*pid);
    Say(api, "[" + std::to_string(*pid) + "]\n");
    return 0;
  }
  // Foreground: wait for *this* child (background jobs may finish meanwhile and
  // be returned first; keep collecting).
  for (;;) {
    const Result<kernel::WaitResult> wr = api.Wait();
    if (!wr.ok()) return 127;
    if (wr->pid == *pid) {
      if (!wr->overlaid) return wr->info.exit_code;
      // The child was overlaid by rest_proc() (e.g. a foreground `restart`): the
      // restored program now owns this terminal. A real shell keeps waiting for
      // its foreground job, so block until the process is truly gone — otherwise
      // the shell's prompt read would steal the program's keystrokes.
      kernel::Kernel& k = api.kernel();
      const int32_t fg = wr->pid;
      api.BlockUntil([&k, fg] {
        const kernel::Proc* p = k.FindAnyProc(fg);
        return p == nullptr || !p->Alive();
      });
      return 0;
    }
    // Some background job finished first; drop it from the table.
    for (auto it = jobs->begin(); it != jobs->end(); ++it) {
      if (*it == wr->pid) {
        jobs->erase(it);
        break;
      }
    }
  }
}

}  // namespace

std::vector<std::string> TokenizeCommandLine(std::string_view line) {
  std::vector<std::string> tokens;
  std::string current;
  for (const char c : line) {
    if (std::isspace(static_cast<unsigned char>(c))) {
      if (!current.empty()) {
        tokens.push_back(std::move(current));
        current.clear();
      }
    } else {
      current.push_back(c);
    }
  }
  if (!current.empty()) tokens.push_back(std::move(current));
  return tokens;
}

int ShellMain(kernel::SyscallApi& api, const std::vector<std::string>& args) {
  (void)args;
  std::vector<int32_t> jobs;
  for (;;) {
    ReapBackground(api, &jobs);
    Say(api, "$ ");
    const Result<std::string> line = api.ReadLine(0);
    if (!line.ok() || line->empty()) {
      Say(api, "\n");
      return 0;  // EOF
    }
    std::vector<std::string> tokens = TokenizeCommandLine(*line);
    if (tokens.empty()) continue;

    bool background = false;
    if (tokens.back() == "&") {
      background = true;
      tokens.pop_back();
      if (tokens.empty()) continue;
    }

    const std::string& cmd = tokens[0];
    if (cmd == "exit") {
      return tokens.size() > 1 ? std::atoi(tokens[1].c_str()) : 0;
    }
    if (cmd == "cd") {
      const std::string target = tokens.size() > 1 ? tokens[1] : "/";
      if (!api.Chdir(target).ok()) Say(api, "cd: " + target + ": no such directory\n");
      continue;
    }
    if (cmd == "pwd") {
      const Result<std::string> cwd = api.GetCwd();
      Say(api, (cwd.ok() ? *cwd : std::string("?")) + "\n");
      continue;
    }
    if (cmd == "jobs") {
      for (const int32_t job : jobs) Say(api, std::to_string(job) + "\n");
      continue;
    }
    if (cmd == "pstat") {
      PstatBuiltin(api);
      continue;
    }
    if (cmd == "ptop") {
      PtopBuiltin(api);
      continue;
    }
    if (cmd == "phealth") {
      PhealthBuiltin(api);
      continue;
    }
    if (cmd == "pwhy") {
      PwhyBuiltin(api, tokens);
      continue;
    }
    if (cmd == "help") {
      Say(api,
          "built-ins: cd pwd jobs pstat ptop phealth pwhy exit help; commands run from "
          "the registry or /bin (migrate, preap, ps, ...)\n");
      continue;
    }
    RunCommand(api, tokens, background, &jobs);
  }
}

}  // namespace pmig::core
