#include "src/core/precopy.h"

#include <algorithm>

#include "src/core/dump_format.h"
#include "src/core/sigdump.h"
#include "src/core/tools.h"

namespace pmig::core {

namespace {

struct Snapshot {
  std::vector<uint8_t> data;
  std::vector<uint8_t> stack;

  static Snapshot Of(const kernel::Proc& p) {
    Snapshot s;
    s.data = p.vm->data;
    s.stack = p.vm->StackContents();
    return s;
  }

  int64_t TotalBytes() const {
    return static_cast<int64_t>(data.size() + stack.size());
  }
};

// Bytes that differ between two snapshots (size changes count as dirty bytes).
int64_t DirtyBytes(const Snapshot& a, const Snapshot& b) {
  auto diff = [](const std::vector<uint8_t>& x, const std::vector<uint8_t>& y) {
    const size_t common = std::min(x.size(), y.size());
    int64_t n = 0;
    for (size_t i = 0; i < common; ++i) {
      if (x[i] != y[i]) ++n;
    }
    n += static_cast<int64_t>(std::max(x.size(), y.size()) - common);
    return n;
  };
  return diff(a.data, b.data) + diff(a.stack, b.stack);
}

}  // namespace

Result<PrecopyStats> PrecopyMigrate(kernel::SyscallApi& api, net::Network& net,
                                    int32_t pid, std::string_view to_host,
                                    const PrecopyOptions& options) {
  kernel::Kernel& source = api.kernel();
  kernel::Kernel* target = net.FindHost(to_host);
  if (target == nullptr) return Errno::kHostUnreach;
  if (!api.proc().creds.IsSuperuser()) return Errno::kPerm;

  kernel::Proc* src = source.FindProc(pid);
  if (src == nullptr || !src->Alive() || src->kind != kernel::ProcKind::kVm) {
    return Errno::kSrch;
  }

  PrecopyStats stats;
  const sim::Nanos t0 = api.Now();

  // Ships `bytes` to the target; the source process keeps running meanwhile.
  auto ship = [&](int64_t bytes) {
    api.ChargeCpu(bytes * 150);  // packetising copy cost
    api.Sleep(net.TransferTime(bytes));
  };

  // Round 1: the whole address space (text ships once; it cannot change).
  Snapshot shipped = Snapshot::Of(*src);
  stats.rounds = 1;
  const int64_t first = static_cast<int64_t>(src->vm->text.size()) + shipped.TotalBytes();
  stats.bytes_precopied += first;
  ship(first);

  // Further rounds: only what changed since the last shipment.
  for (int round = 2; round <= options.max_rounds; ++round) {
    src = source.FindProc(pid);
    if (src == nullptr || !src->Alive()) return Errno::kSrch;  // exited mid-copy
    Snapshot live = Snapshot::Of(*src);
    api.ChargeCpu(live.TotalBytes() * 150);  // dirty scan
    const int64_t dirty = DirtyBytes(live, shipped);
    if (dirty <= options.freeze_threshold) break;
    shipped = std::move(live);
    stats.rounds = round;
    stats.bytes_precopied += dirty;
    ship(dirty);
  }

  // Freeze: suspend the process, ship the final dirty set + the kernel state,
  // destroy the original, restart the copy. The process makes no progress from
  // here until the destination continues it — that window is the freeze time.
  src = source.FindProc(pid);
  if (src == nullptr || !src->Alive()) return Errno::kSrch;
  const sim::Nanos freeze_start = api.Now();
  src->state = kernel::ProcState::kBlocked;
  src->unblock_check = [] { return false; };  // suspended
  if (src->wake_timer != 0) {
    source.clock().CancelTimer(src->wake_timer);
    src->wake_timer = 0;
  }

  const Snapshot final_state = Snapshot::Of(*src);
  const int64_t final_dirty = DirtyBytes(final_state, shipped);

  // Build the three dump images from the frozen process (same code as SIGDUMP),
  // rewrite the file names for cross-machine reopening, and stage them in the
  // target's /usr/tmp. Only the final dirty bytes plus the two small state files
  // cross the wire — the rest is already at the destination.
  PMIG_TRY(kernel::PreparedDump dump, BuildSigdump(source, *src));
  PMIG_TRY(FilesFile files, FilesFile::Parse(dump.files[1].second));
  RewriteFilesForMigration(api, &files);
  dump.files[1].second = files.Serialize();

  stats.bytes_frozen = final_dirty +
                       static_cast<int64_t>(dump.files[1].second.size()) +
                       static_cast<int64_t>(dump.files[2].second.size());
  ship(stats.bytes_frozen);

  const kernel::Credentials owner = src->creds;
  const DumpPaths paths = DumpPaths::For(pid);
  for (const auto& [path, contents] : dump.files) {
    target->vfs().SetupCreateFile(path, contents, owner.uid, 0600);
  }
  kernel::ExitInfo info;
  info.killed_by_signal = vm::abi::kSigDump;
  info.migration_dumped = true;
  source.TerminateProc(*src, info);

  // Reconstruct on the destination. Unlike the paper's user-level restart, the
  // V-style transport rebuilds the process from a resident kernel server: no tool
  // binary to load, no dump-file re-verification, and only the slots that were
  // actually open get reopened — this is what keeps the freeze short.
  kernel::SpawnOptions opts;
  opts.creds = owner;
  opts.tty = options.target_tty;
  opts.cwd = "/";
  opts.stdio_on_tty = false;  // the reconstruction sets up the fd table itself
  const DumpPaths target_paths = paths;
  const int32_t restart_pid = target->SpawnNative(
      "precopy-reconstruct",
      [files, target_paths](kernel::SyscallApi& tapi) {
        const Status cd = tapi.Chdir(files.cwd);
        if (!cd.ok()) {
          const Status root_cd = tapi.Chdir("/");
          (void)root_cd;
        }
        // Highest slot that must end up occupied.
        int max_used = -1;
        for (int i = 0; i < kernel::kNoFile; ++i) {
          if (files.entries[static_cast<size_t>(i)].kind != FilesEntry::Kind::kUnused) {
            max_used = i;
          }
        }
        std::array<bool, kernel::kNoFile> placeholder{};
        for (int i = 0; i <= max_used; ++i) {
          const FilesEntry& entry = files.entries[static_cast<size_t>(i)];
          int got = -1;
          if (entry.kind == FilesEntry::Kind::kFile) {
            const int32_t flags =
                entry.flags & (vm::abi::kAccMode | vm::abi::kOAppend);
            const Result<int> fd = tapi.Open(entry.path, flags);
            if (fd.ok()) {
              got = *fd;
              const Result<int64_t> pos =
                  tapi.Lseek(got, entry.offset, vm::abi::kSeekSet);
              (void)pos;
            } else if (i < 3) {
              const Result<int> tty = tapi.Open("/dev/tty", vm::abi::kORdWr);
              if (tty.ok()) got = *tty;
            }
          }
          if (got < 0) {
            const Result<int> null_fd = tapi.Open("/dev/null", vm::abi::kORdWr);
            if (!null_fd.ok()) return 1;
            got = *null_fd;
            if (entry.kind == FilesEntry::Kind::kUnused) {
              placeholder[static_cast<size_t>(i)] = true;
            }
          }
          if (got != i) return 1;
        }
        for (int i = 0; i <= max_used; ++i) {
          if (placeholder[static_cast<size_t>(i)]) {
            const Status st = tapi.Close(i);
            (void)st;
          }
        }
        if (files.had_tty) {
          const Result<int> tty = tapi.Open("/dev/tty", vm::abi::kORdWr);
          if (tty.ok()) {
            const Status st = tapi.TtySetFlags(*tty, files.tty_flags);
            (void)st;
            const Status closed = tapi.Close(*tty);
            (void)closed;
          }
        }
        const Status st = tapi.RestProc(target_paths.aout, target_paths.stack);
        (void)st;
        return 1;  // only reached on failure
      },
      opts);
  api.BlockUntil([target, restart_pid] {
    const kernel::Proc* p = target->FindAnyProc(restart_pid);
    if (p == nullptr) return true;
    if (!p->Alive()) return true;  // restart failed
    return p->kind == kernel::ProcKind::kVm &&
           p->state != kernel::ProcState::kSleeping;
  });
  kernel::Proc* restarted = target->FindAnyProc(restart_pid);
  if (restarted == nullptr || !restarted->Alive() ||
      restarted->kind != kernel::ProcKind::kVm) {
    return Errno::kNoExec;
  }
  stats.new_pid = restart_pid;
  stats.freeze_time = api.Now() - freeze_start;
  stats.total_time = api.Now() - t0;
  return stats;
}

}  // namespace pmig::core
