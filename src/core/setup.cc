#include "src/core/setup.h"

#include "src/apps/recovery.h"
#include "src/core/dump_format.h"
#include "src/core/rest_proc.h"
#include "src/core/shell.h"
#include "src/core/sigdump.h"
#include "src/core/tools.h"

namespace pmig::core {

void InstallMigration(cluster::Cluster& cluster) {
  kernel::MigrationHooks hooks;
  hooks.sigdump = BuildSigdump;
  hooks.rest_proc = RestProcImpl;
  hooks.verify_dump = VerifyDumpBytes;
  for (const auto& host : cluster.hosts()) {
    host->set_migration_hooks(hooks);
    // The content-addressed segment cache lives on every host, like /usr/tmp;
    // it stays empty unless incremental dumps are used.
    host->vfs().SetupMkdirAll(kSegCacheDir)->mode = 0777;
    // Placement leases live next to it; empty unless coordinators lease.
    host->vfs().SetupMkdirAll(apps::kLeaseDir)->mode = 0777;
  }

  cluster.RegisterProgram("dumpproc", DumpprocMain);
  cluster.RegisterProgram("restart", RestartMain);
  cluster.RegisterProgram("undump", UndumpMain);
  cluster.RegisterProgram("ps", PsMain);
  cluster.RegisterProgram("sh", ShellMain);
  net::Network* network = &cluster.network();
  cluster.RegisterProgram("migrate",
                          [network](kernel::SyscallApi& api,
                                    const std::vector<std::string>& args) {
                            return MigrateMain(api, *network, args);
                          });
  cluster.RegisterProgram("preap",
                          [network](kernel::SyscallApi& api,
                                    const std::vector<std::string>& args) {
                            return apps::PreapMain(api, *network, args);
                          });
}

}  // namespace pmig::core
