// The rest_proc() system call (Section 5.2), installed as
// MigrationHooks::rest_proc. Overlays the calling process with the process
// described by a dumped a.outXXXXX / stackXXXXX pair.

#ifndef PMIG_SRC_CORE_REST_PROC_H_
#define PMIG_SRC_CORE_REST_PROC_H_

#include <string>

#include "src/kernel/kernel.h"

namespace pmig::core {

// On success the caller has become the restored program (a VM process resuming at
// the dumped pc) and this returns Ok; native callers must then unwind their thread
// (SyscallApi::RestProc throws BecameVm). On failure the caller is untouched —
// "if the system call does return, ... something was wrong with the two files".
Status RestProcImpl(kernel::Kernel& k, kernel::Proc& p, const std::string& aout_path,
                    const std::string& stack_path);

}  // namespace pmig::core

#endif  // PMIG_SRC_CORE_REST_PROC_H_
