#include "src/core/dump_format.h"

#include "src/sim/bytes.h"
#include "src/vm/aout.h"

namespace pmig::core {

namespace {
constexpr uint32_t kStackFormatVersion = 2;  // v2 added the identity extension
}

std::string FilesFile::Serialize() const {
  sim::ByteWriter w;
  w.U32(kFilesMagic);
  w.Str(host);
  w.Str(cwd);
  for (const FilesEntry& e : entries) {
    w.U8(static_cast<uint8_t>(e.kind));
    if (e.kind == FilesEntry::Kind::kFile) {
      w.Str(e.path);
      w.I32(e.flags);
      w.I64(e.offset);
    }
    // Sockets: "no extra information is kept in the case of a socket."
  }
  w.U8(had_tty ? 1 : 0);
  w.U16(tty_flags);
  return w.Take();
}

Result<FilesFile> FilesFile::Parse(const std::string& bytes) {
  sim::ByteReader r(bytes);
  if (r.U32() != kFilesMagic) return Errno::kNoExec;
  FilesFile f;
  f.host = r.Str();
  f.cwd = r.Str();
  for (FilesEntry& e : f.entries) {
    e.kind = static_cast<FilesEntry::Kind>(r.U8());
    if (e.kind == FilesEntry::Kind::kFile) {
      e.path = r.Str();
      e.flags = r.I32();
      e.offset = r.I64();
    }
  }
  f.had_tty = r.U8() != 0;
  f.tty_flags = r.U16();
  if (!r.ok()) return Errno::kNoExec;
  return f;
}

std::string StackFile::Serialize() const {
  sim::ByteWriter w;
  w.U32(kStackMagic);
  w.U32(kStackFormatVersion);
  w.I32(creds.uid);
  w.I32(creds.gid);
  w.I32(creds.euid);
  w.I32(creds.egid);
  w.Blob(stack);  // length prefix is "the size of the stack"
  for (const int64_t reg : cpu.regs) w.I64(reg);
  w.U32(cpu.pc);
  w.U32(cpu.sp);
  for (const kernel::SignalDisposition& d : sig_dispositions) {
    w.U8(static_cast<uint8_t>(d.action));
    w.U32(d.handler);
  }
  w.U64(sig_pending);
  // v2 extension.
  w.I32(old_pid);
  w.Str(old_host);
  return w.Take();
}

Result<StackFile> StackFile::Parse(const std::string& bytes) {
  sim::ByteReader r(bytes);
  if (r.U32() != kStackMagic) return Errno::kNoExec;
  const uint32_t version = r.U32();
  if (version < 1 || version > kStackFormatVersion) return Errno::kNoExec;
  StackFile s;
  s.creds.uid = r.I32();
  s.creds.gid = r.I32();
  s.creds.euid = r.I32();
  s.creds.egid = r.I32();
  s.stack = r.Blob();
  for (int64_t& reg : s.cpu.regs) reg = r.I64();
  s.cpu.pc = r.U32();
  s.cpu.sp = r.U32();
  for (kernel::SignalDisposition& d : s.sig_dispositions) {
    d.action = static_cast<kernel::SignalDisposition::Action>(r.U8());
    d.handler = r.U32();
  }
  s.sig_pending = r.U64();
  if (version >= 2) {
    s.old_pid = r.I32();
    s.old_host = r.Str();
  }
  if (!r.ok()) return Errno::kNoExec;
  return s;
}

DumpPaths DumpPaths::For(int32_t pid, const std::string& dir) {
  DumpPaths p;
  const std::string suffix = std::to_string(pid);
  p.aout = dir + "/a.out" + suffix;
  p.files = dir + "/files" + suffix;
  p.stack = dir + "/stack" + suffix;
  p.ready = dir + "/ready" + suffix;
  p.claim = dir + "/claim" + suffix;
  return p;
}

bool VerifyDumpBytes(const std::vector<std::pair<std::string, std::string>>& files) {
  for (const auto& [path, bytes] : files) {
    const size_t slash = path.rfind('/');
    const std::string base = slash == std::string::npos ? path : path.substr(slash + 1);
    if (base.rfind("a.out", 0) == 0) {
      const std::vector<uint8_t> raw(bytes.begin(), bytes.end());
      if (!vm::AoutImage::Parse(raw).ok()) return false;
    } else if (base.rfind("files", 0) == 0) {
      if (!FilesFile::Parse(bytes).ok()) return false;
    } else if (base.rfind("stack", 0) == 0) {
      if (!StackFile::Parse(bytes).ok()) return false;
    }
  }
  return true;
}

}  // namespace pmig::core
