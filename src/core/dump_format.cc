#include "src/core/dump_format.h"

#include <algorithm>

#include "src/sim/bytes.h"
#include "src/sim/hash.h"
#include "src/vm/aout.h"

namespace pmig::core {

namespace {
constexpr uint32_t kStackFormatVersion = 4;  // v2: identity; v3: trace id; v4: command
}

std::string FilesFile::Serialize() const {
  sim::ByteWriter w;
  w.U32(kFilesMagic);
  w.Str(host);
  w.Str(cwd);
  for (const FilesEntry& e : entries) {
    w.U8(static_cast<uint8_t>(e.kind));
    if (e.kind == FilesEntry::Kind::kFile) {
      w.Str(e.path);
      w.I32(e.flags);
      w.I64(e.offset);
    }
    // Sockets: "no extra information is kept in the case of a socket."
  }
  w.U8(had_tty ? 1 : 0);
  w.U16(tty_flags);
  return w.Take();
}

Result<FilesFile> FilesFile::Parse(const std::string& bytes) {
  sim::ByteReader r(bytes);
  if (r.U32() != kFilesMagic) return Errno::kNoExec;
  FilesFile f;
  f.host = r.Str();
  f.cwd = r.Str();
  for (FilesEntry& e : f.entries) {
    e.kind = static_cast<FilesEntry::Kind>(r.U8());
    if (e.kind == FilesEntry::Kind::kFile) {
      e.path = r.Str();
      e.flags = r.I32();
      e.offset = r.I64();
    }
  }
  f.had_tty = r.U8() != 0;
  f.tty_flags = r.U16();
  if (!r.ok()) return Errno::kNoExec;
  return f;
}

std::string StackFile::Serialize() const {
  sim::ByteWriter w;
  w.U32(kStackMagic);
  w.U32(kStackFormatVersion);
  w.I32(creds.uid);
  w.I32(creds.gid);
  w.I32(creds.euid);
  w.I32(creds.egid);
  w.Blob(stack);  // length prefix is "the size of the stack"
  for (const int64_t reg : cpu.regs) w.I64(reg);
  w.U32(cpu.pc);
  w.U32(cpu.sp);
  for (const kernel::SignalDisposition& d : sig_dispositions) {
    w.U8(static_cast<uint8_t>(d.action));
    w.U32(d.handler);
  }
  w.U64(sig_pending);
  // v2 extension.
  w.I32(old_pid);
  w.Str(old_host);
  // v3 extension.
  w.U64(trace_id);
  // v4 extension.
  w.Str(command);
  return w.Take();
}

Result<StackFile> StackFile::Parse(const std::string& bytes) {
  sim::ByteReader r(bytes);
  if (r.U32() != kStackMagic) return Errno::kNoExec;
  const uint32_t version = r.U32();
  if (version < 1 || version > kStackFormatVersion) return Errno::kNoExec;
  StackFile s;
  s.creds.uid = r.I32();
  s.creds.gid = r.I32();
  s.creds.euid = r.I32();
  s.creds.egid = r.I32();
  s.stack = r.Blob();
  for (int64_t& reg : s.cpu.regs) reg = r.I64();
  s.cpu.pc = r.U32();
  s.cpu.sp = r.U32();
  for (kernel::SignalDisposition& d : s.sig_dispositions) {
    d.action = static_cast<kernel::SignalDisposition::Action>(r.U8());
    d.handler = r.U32();
  }
  s.sig_pending = r.U64();
  if (version >= 2) {
    s.old_pid = r.I32();
    s.old_host = r.Str();
  }
  if (version >= 3) {
    s.trace_id = r.U64();
  }
  if (version >= 4) {
    s.command = r.Str();
  }
  if (!r.ok()) return Errno::kNoExec;
  return s;
}

std::string SegCachePath(uint64_t digest, const std::string& nfs_prefix) {
  return nfs_prefix + kSegCacheDir + "/" + sim::HexDigest(digest);
}

int64_t IncrAout::FullEquivalentBytes() const {
  const uint32_t data_size =
      encoding == DataEncoding::kFull ? static_cast<uint32_t>(full_data.size()) : full_size;
  return static_cast<int64_t>(vm::kAoutHeaderBytes) + text_size + data_size;
}

std::string IncrAout::Serialize() const {
  sim::ByteWriter w;
  w.U32(kIncrAoutMagic);
  w.U32(kIncrAoutVersion);
  w.U32(machtype);
  w.U32(entry);
  w.U64(text_digest);
  w.U32(text_size);
  w.U8(static_cast<uint8_t>(encoding));
  if (encoding == DataEncoding::kFull) {
    w.Blob(full_data);
  } else {
    w.U64(base_digest);
    w.U64(result_digest);
    w.U32(full_size);
    w.U32(static_cast<uint32_t>(pages.size()));
    for (const DeltaPage& page : pages) {
      w.U32(page.index);
      w.Blob(page.bytes);
    }
  }
  return w.Take();
}

Result<IncrAout> IncrAout::Parse(const std::string& bytes) {
  sim::ByteReader r(bytes);
  if (r.U32() != kIncrAoutMagic) return Errno::kNoExec;
  if (r.U32() != kIncrAoutVersion) return Errno::kNoExec;
  IncrAout a;
  a.machtype = r.U32();
  a.entry = r.U32();
  a.text_digest = r.U64();
  a.text_size = r.U32();
  const uint8_t enc = r.U8();
  if (enc > static_cast<uint8_t>(DataEncoding::kDelta)) return Errno::kNoExec;
  a.encoding = static_cast<DataEncoding>(enc);
  if (a.encoding == DataEncoding::kFull) {
    a.full_data = r.Blob();
  } else {
    a.base_digest = r.U64();
    a.result_digest = r.U64();
    a.full_size = r.U32();
    const uint32_t npages = r.U32();
    if (!r.ok()) return Errno::kNoExec;
    a.pages.resize(npages);
    for (DeltaPage& page : a.pages) {
      page.index = r.U32();
      page.bytes = r.Blob();
    }
  }
  if (!r.ok() || !r.AtEnd()) return Errno::kNoExec;
  return a;
}

bool IsIncrAout(std::string_view bytes) {
  sim::ByteReader r(bytes);
  return r.U32() == kIncrAoutMagic && r.ok();
}

IncrAout BuildIncrAout(const vm::VmContext& ctx, uint32_t machtype) {
  const vm::DirtyTracking& dirty = ctx.dirty;
  IncrAout a;
  a.machtype = machtype;
  a.entry = 0;
  a.text_digest = dirty.text_digest;
  a.text_size = static_cast<uint32_t>(ctx.text.size());
  a.encoding = IncrAout::DataEncoding::kDelta;
  a.base_digest = dirty.base_digest;
  a.result_digest = sim::HashBytes(ctx.data);
  a.full_size = static_cast<uint32_t>(ctx.data.size());
  for (uint32_t page = 0; page < dirty.data_dirty.size(); ++page) {
    if (!dirty.data_dirty[page]) continue;
    const uint32_t start = page * vm::kDirtyPageBytes;
    // A bit can be stale: set while the segment was larger, before an sbrk()
    // shrink. A page wholly past the current data has nothing to contribute.
    if (start >= ctx.data.size()) continue;
    const uint32_t end = std::min(start + vm::kDirtyPageBytes,
                                  static_cast<uint32_t>(ctx.data.size()));
    a.pages.push_back({page, {ctx.data.begin() + start, ctx.data.begin() + end}});
  }
  return a;
}

Result<ReconstructedImage> ReconstructIncrAout(const IncrAout& incr,
                                               std::vector<uint8_t> text,
                                               std::vector<uint8_t> base) {
  if (text.size() != incr.text_size) return Errno::kNoExec;
  if (sim::HashBytes(text) != incr.text_digest) return Errno::kNoExec;

  ReconstructedImage out;
  out.image.text = std::move(text);
  if (incr.encoding == IncrAout::DataEncoding::kFull) {
    out.image.data = incr.full_data;
  } else {
    if (base.size() != incr.full_size) return Errno::kNoExec;
    if (sim::HashBytes(base) != incr.base_digest) return Errno::kNoExec;
    std::vector<uint8_t> data = base;
    for (const IncrAout::DeltaPage& page : incr.pages) {
      const uint64_t start = uint64_t{page.index} * vm::kDirtyPageBytes;
      if (start + page.bytes.size() > data.size() ||
          page.bytes.size() > vm::kDirtyPageBytes) {
        return Errno::kNoExec;
      }
      std::copy(page.bytes.begin(), page.bytes.end(),
                data.begin() + static_cast<ptrdiff_t>(start));
      out.delta_pages.push_back(page.index);
    }
    // Final check: the patched segment must hash to what the dumper recorded, so
    // a stale cache entry or a digest collision can never restore wrong bytes.
    if (sim::HashBytes(data) != incr.result_digest) return Errno::kNoExec;
    out.image.data = std::move(data);
    out.was_delta = true;
    out.base = std::move(base);
  }
  out.image.header.magic = vm::kAoutMagic;
  out.image.header.machtype = incr.machtype;
  out.image.header.text_size = static_cast<uint32_t>(out.image.text.size());
  out.image.header.data_size = static_cast<uint32_t>(out.image.data.size());
  out.image.header.entry = incr.entry;
  return out;
}

std::string FormatReadyMarker(std::string_view host, sim::Nanos at) {
  return "ok t " + std::to_string(at) + " h " + std::string(host) + "\n";
}

std::string FormatClaimMarker(std::string_view host, sim::Nanos at) {
  return "holder " + std::string(host) + " t " + std::to_string(at) + "\n";
}

DumpMarker ParseDumpMarker(const std::string& bytes) {
  DumpMarker out;
  std::vector<std::string> tokens;
  std::string cur;
  for (char c : bytes) {
    if (c == ' ' || c == '\n' || c == '\t') {
      if (!cur.empty()) tokens.push_back(std::move(cur));
      cur.clear();
    } else {
      cur.push_back(c);
    }
  }
  if (!cur.empty()) tokens.push_back(std::move(cur));
  for (size_t i = 0; i + 1 < tokens.size(); ++i) {
    if (tokens[i] == "t") {
      out.at = static_cast<sim::Nanos>(std::atoll(tokens[i + 1].c_str()));
    } else if (tokens[i] == "h" || tokens[i] == "holder") {
      out.host = tokens[i + 1];
    }
  }
  return out;
}

DumpPaths DumpPaths::For(int32_t pid, const std::string& dir) {
  DumpPaths p;
  const std::string suffix = std::to_string(pid);
  p.aout = dir + "/a.out" + suffix;
  p.files = dir + "/files" + suffix;
  p.stack = dir + "/stack" + suffix;
  p.ready = dir + "/ready" + suffix;
  p.claim = dir + "/claim" + suffix;
  return p;
}

bool VerifyDumpBytes(const std::vector<std::pair<std::string, std::string>>& files) {
  for (const auto& [path, bytes] : files) {
    const size_t slash = path.rfind('/');
    const std::string base = slash == std::string::npos ? path : path.substr(slash + 1);
    if (path.rfind(std::string(kSegCacheDir) + "/", 0) == 0) {
      // A segment-cache blob must hash to the digest it is named by.
      uint64_t digest = 0;
      if (!sim::ParseHexDigest(base, &digest)) return false;
      if (sim::HashBytes(bytes) != digest) return false;
    } else if (base.rfind("a.out", 0) == 0) {
      if (IsIncrAout(bytes)) {
        if (!IncrAout::Parse(bytes).ok()) return false;
      } else {
        const std::vector<uint8_t> raw(bytes.begin(), bytes.end());
        if (!vm::AoutImage::Parse(raw).ok()) return false;
      }
    } else if (base.rfind("files", 0) == 0) {
      if (!FilesFile::Parse(bytes).ok()) return false;
    } else if (base.rfind("stack", 0) == 0) {
      if (!StackFile::Parse(bytes).ok()) return false;
    }
  }
  return true;
}

}  // namespace pmig::core
