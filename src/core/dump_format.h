// The three SIGDUMP dump files (Section 4.3).
//
//   a.outXXXXX  — an ordinary executable: header + text + data (vm::AoutImage).
//   filesXXXXX  — everything restart needs at *user level*: magic 0445, the dump
//                 host, the cwd path, one fixed slot per possible open file
//                 (unused / file+path+flags+offset / socket), and the tty flags.
//   stackXXXXX  — everything the *kernel* needs: magic 0444, credentials, stack
//                 size and contents, registers, and the signal state. Plus a
//                 versioned extension block carrying the old pid/host for the
//                 Section 7 identity-virtualisation proposal.
//
// XXXXX is the pid of the dumped process; the files land in /usr/tmp.

#ifndef PMIG_SRC_CORE_DUMP_FORMAT_H_
#define PMIG_SRC_CORE_DUMP_FORMAT_H_

#include <array>
#include <string>
#include <vector>

#include "src/kernel/proc.h"
#include "src/sim/result.h"
#include "src/vm/cpu.h"

namespace pmig::core {

constexpr uint32_t kFilesMagic = 0445;  // "arbitrarily set to octal 445"
constexpr uint32_t kStackMagic = 0444;  // "arbitrarily set to octal 444"

struct FilesEntry {
  enum class Kind : uint8_t { kUnused = 0, kFile = 1, kSocket = 2 };
  Kind kind = Kind::kUnused;
  std::string path;    // absolute (from the kernel's name tracking); kFile only
  int32_t flags = 0;   // open flags
  int64_t offset = 0;  // file offset at dump time
};

struct FilesFile {
  std::string host;  // "the name of the host on which the process was running"
  std::string cwd;   // "the absolute path name of the current working directory"
  std::array<FilesEntry, kernel::kNoFile> entries;
  bool had_tty = false;
  uint16_t tty_flags = 0;  // "raw mode, echo/noecho, etc."

  std::string Serialize() const;
  static Result<FilesFile> Parse(const std::string& bytes);
};

struct StackFile {
  kernel::Credentials creds;
  std::vector<uint8_t> stack;  // contents from sp to the stack top
  vm::CpuState cpu;            // "the contents of all the registers"
  std::array<kernel::SignalDisposition, vm::abi::kNSig> sig_dispositions = {};
  uint64_t sig_pending = 0;
  // Extension block (version >= 2): pre-migration identity.
  int32_t old_pid = 0;
  std::string old_host;

  uint32_t stack_size() const { return static_cast<uint32_t>(stack.size()); }

  std::string Serialize() const;
  static Result<StackFile> Parse(const std::string& bytes);
};

// Dump-file names: "a.outXXXXX", "filesXXXXX", "stackXXXXX" in `dir`, plus the
// two migration-transaction markers: "readyXXXXX" (dumpproc finished rewriting
// filesXXXXX — the dump set is complete and consumable) and "claimXXXXX"
// (created O_EXCL by `restart --claim` just before it commits; at most one
// restart attempt per dump set can ever win it).
struct DumpPaths {
  std::string aout;
  std::string files;
  std::string stack;
  std::string ready;
  std::string claim;

  static DumpPaths For(int32_t pid, const std::string& dir = "/usr/tmp");
};

// True when `bytes` parses as the dump file its basename prefix announces
// ("a.out" -> vm::AoutImage, "files" -> FilesFile, "stack" -> StackFile).
// Installed as MigrationHooks::verify_dump so a dump whose files would not
// parse back — e.g. corrupted by an injected fault — is aborted and unlinked
// instead of killing the process it can no longer represent.
bool VerifyDumpBytes(const std::vector<std::pair<std::string, std::string>>& files);

}  // namespace pmig::core

#endif  // PMIG_SRC_CORE_DUMP_FORMAT_H_
