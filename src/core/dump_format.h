// The three SIGDUMP dump files (Section 4.3).
//
//   a.outXXXXX  — an ordinary executable: header + text + data (vm::AoutImage).
//   filesXXXXX  — everything restart needs at *user level*: magic 0445, the dump
//                 host, the cwd path, one fixed slot per possible open file
//                 (unused / file+path+flags+offset / socket), and the tty flags.
//   stackXXXXX  — everything the *kernel* needs: magic 0444, credentials, stack
//                 size and contents, registers, and the signal state. Plus a
//                 versioned extension block carrying the old pid/host for the
//                 Section 7 identity-virtualisation proposal.
//
// XXXXX is the pid of the dumped process; the files land in /usr/tmp.

#ifndef PMIG_SRC_CORE_DUMP_FORMAT_H_
#define PMIG_SRC_CORE_DUMP_FORMAT_H_

#include <array>
#include <string>
#include <string_view>
#include <vector>

#include "src/kernel/proc.h"
#include "src/sim/result.h"
#include "src/vm/cpu.h"

namespace pmig::core {

constexpr uint32_t kFilesMagic = 0445;  // "arbitrarily set to octal 445"
constexpr uint32_t kStackMagic = 0444;  // "arbitrarily set to octal 444"

struct FilesEntry {
  enum class Kind : uint8_t { kUnused = 0, kFile = 1, kSocket = 2 };
  Kind kind = Kind::kUnused;
  std::string path;    // absolute (from the kernel's name tracking); kFile only
  int32_t flags = 0;   // open flags
  int64_t offset = 0;  // file offset at dump time
};

struct FilesFile {
  std::string host;  // "the name of the host on which the process was running"
  std::string cwd;   // "the absolute path name of the current working directory"
  std::array<FilesEntry, kernel::kNoFile> entries;
  bool had_tty = false;
  uint16_t tty_flags = 0;  // "raw mode, echo/noecho, etc."

  std::string Serialize() const;
  static Result<FilesFile> Parse(const std::string& bytes);
};

struct StackFile {
  kernel::Credentials creds;
  std::vector<uint8_t> stack;  // contents from sp to the stack top
  vm::CpuState cpu;            // "the contents of all the registers"
  std::array<kernel::SignalDisposition, vm::abi::kNSig> sig_dispositions = {};
  uint64_t sig_pending = 0;
  // Extension block (version >= 2): pre-migration identity.
  int32_t old_pid = 0;
  std::string old_host;
  // Extension (version >= 3): the distributed trace this dump belongs to, so a
  // restart on another host rejoins the originating migrate's span tree.
  uint64_t trace_id = 0;
  // Extension (version >= 4): the command the process ran as, so a restart
  // keeps the name visible to ps/ptop and to tools tracking a process across
  // hops, instead of renaming every migrant to its dump file.
  std::string command;

  uint32_t stack_size() const { return static_cast<uint32_t>(stack.size()); }

  std::string Serialize() const;
  static Result<StackFile> Parse(const std::string& bytes);
};

// Dump-file names: "a.outXXXXX", "filesXXXXX", "stackXXXXX" in `dir`, plus the
// two migration-transaction markers: "readyXXXXX" (dumpproc finished rewriting
// filesXXXXX — the dump set is complete and consumable) and "claimXXXXX"
// (created O_EXCL by `restart --claim` just before it commits; at most one
// restart attempt per dump set can ever win it).
struct DumpPaths {
  std::string aout;
  std::string files;
  std::string stack;
  std::string ready;
  std::string claim;

  static DumpPaths For(int32_t pid, const std::string& dir = "/usr/tmp");
};

// --- Transaction marker metadata ----------------------------------------------
//
// readyXXXXX carries "ok t <ns> h <host>" (when dumpproc finished the rewrite,
// and where) and claimXXXXX carries "holder <host> t <ns>" (who claimed the
// set, and when). The recovery tools use the timestamps to age orphaned dump
// sets (inodes carry no mtime) and the claim holder to decide whether a
// claimant is dead, partitioned, or merely slow. Markers from writers that
// predate the metadata (empty files, a bare "ok") parse to an empty host and
// at = -1; every reader must tolerate that.
struct DumpMarker {
  std::string host;
  sim::Nanos at = -1;
};

std::string FormatReadyMarker(std::string_view host, sim::Nanos at);
std::string FormatClaimMarker(std::string_view host, sim::Nanos at);
DumpMarker ParseDumpMarker(const std::string& bytes);

// --- Incremental dumps (the opt-in delta data path) ---------------------------
//
// An incremental a.outXXXXX never carries text: text is immutable, so it is
// referenced by content digest and resolved from a per-host segment cache
// (/var/segcache/<16-hex-digest>). Data is either a full blob (first dump of a
// process whose base is not worth referencing) or a delta: a base digest plus
// the dirty 1 KB pages. Reconstruction is strictly validated — any digest or
// size mismatch is an Errno, never a silently wrong restore.

constexpr uint32_t kIncrAoutMagic = 0446;  // next octal after files' 0445
constexpr uint32_t kIncrAoutVersion = 1;

// The per-host content-addressed segment cache directory.
inline constexpr char kSegCacheDir[] = "/var/segcache";

// "/var/segcache/<16-hex>" on the local host, or prefixed for an NFS reach.
std::string SegCachePath(uint64_t digest, const std::string& nfs_prefix = "");

struct IncrAout {
  uint32_t machtype = 0;
  uint32_t entry = 0;

  uint64_t text_digest = 0;
  uint32_t text_size = 0;

  // Data segment: full bytes, or a delta against a cached base.
  enum class DataEncoding : uint8_t { kFull = 0, kDelta = 1 };
  DataEncoding encoding = DataEncoding::kFull;
  std::vector<uint8_t> full_data;  // kFull only

  // kDelta only.
  uint64_t base_digest = 0;
  uint64_t result_digest = 0;  // digest of the reconstructed data segment
  uint32_t full_size = 0;      // size of base and of the result
  struct DeltaPage {
    uint32_t index = 0;  // page number (vm::kDirtyPageBytes granules)
    std::vector<uint8_t> bytes;
  };
  std::vector<DeltaPage> pages;

  // Bytes a full a.out of the same image would have occupied (for bytes_saved).
  int64_t FullEquivalentBytes() const;

  std::string Serialize() const;
  static Result<IncrAout> Parse(const std::string& bytes);
};

// True when `bytes` begins with kIncrAoutMagic (cheap dispatch for restart).
bool IsIncrAout(std::string_view bytes);

// Builds the incremental a.out for an armed VM context: text by digest, data as
// a delta of the dirty pages against the armed base.
IncrAout BuildIncrAout(const vm::VmContext& ctx, uint32_t machtype);

// The materialised image plus what rest_proc needs to re-arm tracking on the
// restored process (so its *next* dump stays a delta against the same base).
struct ReconstructedImage {
  vm::AoutImage image;
  bool was_delta = false;
  std::vector<uint8_t> base;          // kDelta: the base data segment
  std::vector<uint32_t> delta_pages;  // kDelta: pages that differ from base
};

// Reconstructs the full image from an incremental dump plus the cached
// segments. `text` must hash to incr.text_digest; for kDelta dumps `base` must
// hash to incr.base_digest and the patched result to incr.result_digest.
// Errno::kNoExec on any mismatch.
Result<ReconstructedImage> ReconstructIncrAout(const IncrAout& incr,
                                               std::vector<uint8_t> text,
                                               std::vector<uint8_t> base);

// True when `bytes` parses as the dump file its basename prefix announces
// ("a.out" -> vm::AoutImage or IncrAout, "files" -> FilesFile, "stack" ->
// StackFile; files under /var/segcache must hash to their basename digest).
// Installed as MigrationHooks::verify_dump so a dump whose files would not
// parse back — e.g. corrupted by an injected fault — is aborted and unlinked
// instead of killing the process it can no longer represent.
bool VerifyDumpBytes(const std::vector<std::pair<std::string, std::string>>& files);

}  // namespace pmig::core

#endif  // PMIG_SRC_CORE_DUMP_FORMAT_H_
