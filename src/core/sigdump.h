// The kernel side of SIGDUMP: building the three dump files from a process.
//
// Installed into a Kernel as MigrationHooks::sigdump (see InstallMigration in
// src/core/setup.h). Kept out of the kernel proper so the substrate stays
// mechanism-free, mirroring how the paper adds this code to a stock kernel.

#ifndef PMIG_SRC_CORE_SIGDUMP_H_
#define PMIG_SRC_CORE_SIGDUMP_H_

#include "src/kernel/kernel.h"

namespace pmig::core {

// Builds the a.outXXXXX / filesXXXXX / stackXXXXX contents for `p` (a VM process)
// and prices the work. The kernel writes the files into /usr/tmp when the dump
// completes and then terminates the process.
Result<kernel::PreparedDump> BuildSigdump(kernel::Kernel& k, kernel::Proc& p);

}  // namespace pmig::core

#endif  // PMIG_SRC_CORE_SIGDUMP_H_
