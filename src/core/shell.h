// msh — a minimal interactive shell for the simulated system.
//
// Just enough of a 1980s /bin/sh to drive the machines the way the paper's users
// did: run commands from a terminal (registered tools like dumpproc/restart/
// migrate/ps, or VM executables by path or from /bin), wait for them, push long
// jobs into the background with a trailing '&', and move around with cd/pwd.
//
//   $ counter &
//   $ ps
//   $ migrate -p 1234 -f brick -t schooner
//   $ cd /usr/tmp
//   $ exit
//
// Built-ins: cd [dir], pwd, exit [code], jobs, help. Anything else resolves as a
// registered program first, then as /bin/<name> (or an absolute path) executable.

#ifndef PMIG_SRC_CORE_SHELL_H_
#define PMIG_SRC_CORE_SHELL_H_

#include <string>
#include <vector>

#include "src/kernel/kernel.h"

namespace pmig::core {

// The shell program entry (registered as "sh"). Reads commands from fd 0 until
// EOF or `exit`.
int ShellMain(kernel::SyscallApi& api, const std::vector<std::string>& args);

// Splits a command line into whitespace-separated tokens (exposed for tests).
std::vector<std::string> TokenizeCommandLine(std::string_view line);

}  // namespace pmig::core

#endif  // PMIG_SRC_CORE_SHELL_H_
