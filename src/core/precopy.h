// Pre-copying migration, in the style of the V-System (the paper's Section 2).
//
// The paper's own mechanism freezes a process for the entire state transfer: from
// SIGDUMP delivery until restart's rest_proc() completes on the destination, the
// process makes no progress. The V-System instead "copies the state of a process
// to the destination machine and then repeatedly copies that part of the state
// that has changed since the previous copy, until relatively little information is
// copied. At this stage, the old process is frozen and any remaining modifications
// in its state are copied... This pre-copying is made to reduce the time that a
// process remains frozen."
//
// PrecopyMigrate implements that strategy on this substrate as a kernel-resident
// migration manager (it must be run by root, like the V kernel server): rounds of
// transfer-while-running, then a short freeze covering only the final dirty bytes
// plus the restart. bench/ablation_precopy compares freeze time and total bytes
// against the paper's freeze-everything approach across dirtying rates.

#ifndef PMIG_SRC_CORE_PRECOPY_H_
#define PMIG_SRC_CORE_PRECOPY_H_

#include <string>

#include "src/kernel/kernel.h"
#include "src/net/network.h"

namespace pmig::core {

struct PrecopyOptions {
  int max_rounds = 6;             // pre-copy rounds before freezing regardless
  int64_t freeze_threshold = 512; // freeze once a round would move fewer bytes
  kernel::Tty* target_tty = nullptr;  // terminal for the restarted process
};

struct PrecopyStats {
  int rounds = 0;               // pre-copy rounds performed (first full copy included)
  int64_t bytes_precopied = 0;  // bytes shipped while the process kept running
  int64_t bytes_frozen = 0;     // bytes shipped during the freeze (final dirty set)
  sim::Nanos freeze_time = 0;   // suspension -> running again on the target
  sim::Nanos total_time = 0;    // start of round 1 -> running again on the target
  int32_t new_pid = -1;         // pid on the destination
};

// Migrates `pid` (a VM process on the caller's machine) to `to_host` by
// pre-copying. The caller must be a root native process on the source machine.
// On success the source process is gone and the destination runs its continuation.
Result<PrecopyStats> PrecopyMigrate(kernel::SyscallApi& api, net::Network& net,
                                    int32_t pid, std::string_view to_host,
                                    const PrecopyOptions& options = {});

}  // namespace pmig::core

#endif  // PMIG_SRC_CORE_PRECOPY_H_
