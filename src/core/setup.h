// Wiring: installs the migration mechanism into a cluster.
//
// After InstallMigration(cluster):
//   * every kernel delivers SIGDUMP by writing the three dump files (sigdump.h)
//     and implements rest_proc() (rest_proc.h);
//   * dumpproc / restart / migrate / undump are registered in the program registry
//     so shells, rsh, and the migration daemon can launch them by name.

#ifndef PMIG_SRC_CORE_SETUP_H_
#define PMIG_SRC_CORE_SETUP_H_

#include "src/cluster/cluster.h"

namespace pmig::core {

void InstallMigration(cluster::Cluster& cluster);

}  // namespace pmig::core

#endif  // PMIG_SRC_CORE_SETUP_H_
