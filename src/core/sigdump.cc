#include "src/core/sigdump.h"

#include "src/core/dump_format.h"
#include "src/vm/aout.h"

namespace pmig::core {

Result<kernel::PreparedDump> BuildSigdump(kernel::Kernel& k, kernel::Proc& p) {
  if (p.kind != kernel::ProcKind::kVm || p.vm == nullptr) {
    // Tool processes keep their state on a C++ stack; like the paper's own
    // commands, they are not migratable.
    return Errno::kInval;
  }
  const vm::VmContext& ctx = *p.vm;

  // --- a.outXXXXX: text + data behind an ordinary exec header. Running it from
  // scratch is the `undump` behaviour: fresh start, dumped statics.
  vm::AoutImage image;
  image.text = ctx.text;
  image.data = ctx.data;
  image.header.entry = 0;  // entry is only used when executed as a fresh program
  image.header.machtype =
      vm::RequiredLevel(ctx.text.data(), ctx.text.size()) == vm::IsaLevel::kIsa20 ? 20 : 10;
  const std::vector<uint8_t> aout_bytes = image.Serialize();

  // --- filesXXXXX: user-level restart information.
  FilesFile files;
  files.host = k.hostname();
  files.cwd = p.u_cwd_path.empty() ? "/" : p.u_cwd_path;
  for (int fd = 0; fd < kernel::kNoFile; ++fd) {
    const kernel::OpenFilePtr& file = p.fds[static_cast<size_t>(fd)];
    FilesEntry& entry = files.entries[static_cast<size_t>(fd)];
    if (file == nullptr) {
      entry.kind = FilesEntry::Kind::kUnused;
    } else if (file->kind != kernel::FileKind::kInode) {
      // Pipes and sockets cannot be redirected to a migrated process (Section 7);
      // the dump records only that a socket-class descriptor was there.
      entry.kind = FilesEntry::Kind::kSocket;
    } else if (!file->name.has_value()) {
      // Without the 5.1 name tracking the kernel cannot say what this file is.
      entry.kind = FilesEntry::Kind::kUnused;
    } else {
      entry.kind = FilesEntry::Kind::kFile;
      entry.path = *file->name;
      entry.flags = file->flags;
      entry.offset = file->offset;
    }
  }
  if (p.controlling_tty != nullptr) {
    files.had_tty = true;
    files.tty_flags = p.controlling_tty->flags();
  }
  const std::string files_bytes = files.Serialize();

  // --- stackXXXXX: kernel-level restart information.
  StackFile stack;
  stack.creds = p.creds;
  stack.stack = ctx.StackContents();
  stack.cpu = ctx.cpu;
  stack.sig_dispositions = p.sig_dispositions;
  stack.sig_pending = p.sig_pending;
  stack.old_pid = p.pid;
  stack.old_host = k.hostname();
  const std::string stack_bytes = stack.Serialize();

  const DumpPaths paths = DumpPaths::For(p.pid);
  kernel::PreparedDump dump;
  dump.files.emplace_back(paths.aout,
                          std::string(aout_bytes.begin(), aout_bytes.end()));
  dump.files.emplace_back(paths.files, files_bytes);
  dump.files.emplace_back(paths.stack, stack_bytes);

  // Cost: like the SIGQUIT core-dump path but for three files — assemble the
  // bytes, create three directory entries under /usr/tmp, push the blocks out.
  const sim::CostModel& costs = k.costs();
  int64_t total_bytes = 0;
  for (const auto& [path, contents] : dump.files) {
    total_bytes += static_cast<int64_t>(contents.size());
    dump.cpu += 2 * costs.namei_component + costs.file_table_slot + costs.syscall_entry;
  }
  const auto io = costs.DiskIo(total_bytes);
  dump.cpu += io.cpu;
  dump.wait = io.wait;
  return dump;
}

}  // namespace pmig::core
