#include "src/core/sigdump.h"

#include "src/core/dump_format.h"
#include "src/vm/aout.h"

namespace pmig::core {

Result<kernel::PreparedDump> BuildSigdump(kernel::Kernel& k, kernel::Proc& p) {
  if (p.kind != kernel::ProcKind::kVm || p.vm == nullptr) {
    // Tool processes keep their state on a C++ stack; like the paper's own
    // commands, they are not migratable.
    return Errno::kInval;
  }
  const vm::VmContext& ctx = *p.vm;
  const uint32_t machtype =
      vm::RequiredLevel(ctx.text.data(), ctx.text.size()) == vm::IsaLevel::kIsa20 ? 20 : 10;

  // --- a.outXXXXX. Full dump: text + data behind an ordinary exec header
  // (running it from scratch is the `undump` behaviour: fresh start, dumped
  // statics). Incremental dump (setdumpmode): text by content digest, data as
  // dirty pages against the exec-time base; the cache blobs the restore side
  // will need are written alongside if this host does not have them yet.
  // A delta can only express a data segment the same size as its armed base
  // (ReconstructIncrAout rejects anything else), so a process that grew or
  // shrank its heap via sbrk() gets a full dump instead — still restorable
  // anywhere. The restart re-arms tracking at the new size, so the *next*
  // dump of the restored process is a delta again.
  const bool delta_ok = ctx.dirty.armed && ctx.data.size() == ctx.dirty.base.size();
  const bool incremental = p.dump_incremental && delta_ok;
  if (p.dump_incremental && ctx.dirty.armed && !delta_ok) {
    k.metrics().Inc("dump.full_fallback");
  }
  std::string aout_bytes;
  std::vector<std::pair<std::string, std::string>> cache_blobs;
  int64_t full_equivalent = 0;
  if (incremental) {
    const IncrAout incr = BuildIncrAout(ctx, machtype);
    aout_bytes = incr.Serialize();
    full_equivalent = incr.FullEquivalentBytes();
    const std::pair<uint64_t, const std::vector<uint8_t>*> segments[] = {
        {incr.text_digest, &ctx.text}, {incr.base_digest, &ctx.dirty.base}};
    for (const auto& [digest, bytes] : segments) {
      const std::string path = SegCachePath(digest);
      if (k.vfs().Resolve(k.vfs().RootState(), path, vfs::Follow::kAll, nullptr).ok()) {
        k.metrics().Inc("cache.seg.dump_hits");
        continue;  // the blob is already on this host's disk: nothing to ship
      }
      k.metrics().Inc("cache.seg.dump_misses");
      cache_blobs.emplace_back(path, std::string(bytes->begin(), bytes->end()));
    }
    k.metrics().Set("vm.dirty_pages.data", ctx.dirty.CountDataDirty());
    k.metrics().Set("vm.dirty_pages.stack", ctx.dirty.CountStackDirty());
  } else {
    vm::AoutImage image;
    image.text = ctx.text;
    image.data = ctx.data;
    image.header.entry = 0;  // entry is only used when executed as a fresh program
    image.header.machtype = machtype;
    const std::vector<uint8_t> raw = image.Serialize();
    aout_bytes.assign(raw.begin(), raw.end());
  }

  // --- filesXXXXX: user-level restart information.
  FilesFile files;
  files.host = k.hostname();
  files.cwd = p.u_cwd_path.empty() ? "/" : p.u_cwd_path;
  for (int fd = 0; fd < kernel::kNoFile; ++fd) {
    const kernel::OpenFilePtr& file = p.fds[static_cast<size_t>(fd)];
    FilesEntry& entry = files.entries[static_cast<size_t>(fd)];
    if (file == nullptr) {
      entry.kind = FilesEntry::Kind::kUnused;
    } else if (file->kind != kernel::FileKind::kInode) {
      // Pipes and sockets cannot be redirected to a migrated process (Section 7);
      // the dump records only that a socket-class descriptor was there.
      entry.kind = FilesEntry::Kind::kSocket;
    } else if (!file->name.has_value()) {
      // Without the 5.1 name tracking the kernel cannot say what this file is.
      entry.kind = FilesEntry::Kind::kUnused;
    } else {
      entry.kind = FilesEntry::Kind::kFile;
      entry.path = *file->name;
      entry.flags = file->flags;
      entry.offset = file->offset;
    }
  }
  if (p.controlling_tty != nullptr) {
    files.had_tty = true;
    files.tty_flags = p.controlling_tty->flags();
  }
  const std::string files_bytes = files.Serialize();

  // --- stackXXXXX: kernel-level restart information.
  StackFile stack;
  stack.creds = p.creds;
  stack.stack = ctx.StackContents();
  stack.cpu = ctx.cpu;
  stack.sig_dispositions = p.sig_dispositions;
  stack.sig_pending = p.sig_pending;
  stack.old_pid = p.pid;
  stack.old_host = k.hostname();
  stack.trace_id = p.trace_id;
  stack.command = p.command;
  const std::string stack_bytes = stack.Serialize();

  const DumpPaths paths = DumpPaths::For(p.pid);
  kernel::PreparedDump dump;
  dump.files.emplace_back(paths.aout, std::move(aout_bytes));
  dump.files.emplace_back(paths.files, files_bytes);
  dump.files.emplace_back(paths.stack, stack_bytes);
  for (auto& blob : cache_blobs) dump.files.push_back(std::move(blob));

  // Cost: like the SIGQUIT core-dump path but for each written file — assemble
  // the bytes, create a directory entry, push the blocks out. An incremental
  // dump's savings appear here as fewer bytes through DiskIo, nowhere else.
  const sim::CostModel& costs = k.costs();
  int64_t total_bytes = 0;
  for (const auto& [path, contents] : dump.files) {
    total_bytes += static_cast<int64_t>(contents.size());
    dump.cpu += 2 * costs.namei_component + costs.file_table_slot + costs.syscall_entry;
  }
  const auto io = costs.DiskIo(total_bytes);
  dump.cpu += io.cpu;
  dump.wait = io.wait;
  if (incremental) {
    // What a full dump of the same image would have written, minus what this
    // one actually writes (cache blobs included) — observation only.
    const int64_t full_total = full_equivalent +
                               static_cast<int64_t>(files_bytes.size()) +
                               static_cast<int64_t>(stack_bytes.size());
    if (full_total > total_bytes) {
      k.metrics().Inc("migration.bytes_saved", full_total - total_bytes);
    }
  }
  return dump;
}

}  // namespace pmig::core
