#include "src/core/rest_proc.h"

#include <algorithm>

#include "src/core/dump_format.h"
#include "src/vfs/path.h"
#include "src/vm/aout.h"

namespace pmig::core {

namespace {

// Reads a whole dump file on behalf of `p`, enforcing read permission with the
// caller's (pre-restore) credentials — this is what makes only the owner or the
// superuser able to restart a process.
Result<std::string> ReadDumpFile(kernel::Kernel& k, kernel::Proc& p,
                                 const std::string& path) {
  kernel::SyscallApi* sink = k.ApiFor(p.pid);
  PMIG_TRY(vfs::Vfs::Resolved r, k.vfs().Resolve(p.cwd, path, vfs::Follow::kAll, sink));
  if (!r.inode->IsRegular()) return Errno::kNoExec;
  if (!vfs::CheckAccess(*r.inode, p.creds.euid, vfs::kWantRead)) return Errno::kAcces;
  std::string bytes;
  k.vfs().ReadAt(*r.inode, 0, r.inode->size(), &bytes, sink);
  return bytes;
}

// Reads the a.out the way the modified execve() does: demand-paged, so only the
// header + first pages are charged synchronously.
Result<std::string> ReadAoutDemandPaged(kernel::Kernel& k, kernel::Proc& p,
                                        const std::string& path) {
  kernel::SyscallApi* sink = k.ApiFor(p.pid);
  PMIG_TRY(vfs::Vfs::Resolved r, k.vfs().Resolve(p.cwd, path, vfs::Follow::kAll, sink));
  if (!r.inode->IsRegular()) return Errno::kNoExec;
  if (!vfs::CheckAccess(*r.inode, p.creds.euid, vfs::kWantRead)) return Errno::kAcces;
  std::string bytes;
  k.vfs().ReadAt(*r.inode, 0, r.inode->size(), &bytes, nullptr);
  if (sink != nullptr) {
    const sim::CostModel& costs = k.costs();
    const int64_t prefetch = std::min<int64_t>(r.inode->size(), costs.exec_prefetch_bytes);
    const bool remote = k.vfs().InodeIsRemote(*r.inode);
    const auto io = remote ? costs.NetIo(prefetch) : costs.DiskIo(prefetch);
    sink->ChargeCpu(io.cpu);
    sink->ChargeWait(io.wait + (remote ? costs.nfs_rpc : costs.inode_fetch));
  }
  return bytes;
}

}  // namespace

Status RestProcImpl(kernel::Kernel& k, kernel::Proc& p, const std::string& aout_path,
                    const std::string& stack_path) {
  // 1. Open the stackXXXXX file, checking access permissions and the magic number.
  PMIG_TRY(std::string stack_bytes, ReadDumpFile(k, p, stack_path));
  PMIG_TRY(StackFile stack, StackFile::Parse(stack_bytes));
  if (stack.stack.size() > vm::kStackMax) return Errno::kNoExec;

  // 2. The executable (validated before we touch the caller's image). Loaded via
  // the modified execve(), i.e. demand-paged.
  PMIG_TRY(std::string aout_bytes, ReadAoutDemandPaged(k, p, aout_path));
  PMIG_TRY(vm::AoutImage image,
           vm::AoutImage::Parse(std::vector<uint8_t>(aout_bytes.begin(), aout_bytes.end())));

  // 3. Set the global flag indicating process migration and the stack-size
  // variable, then 4. call execve() with a null environment. ("As the environment
  // of the old process was stored in its stack, it will be automatically restored
  // when the stack is read in.")
  k.SetRestProcExec(stack.stack_size());
  const kernel::ProcKind previous_kind = p.kind;
  p.kind = kernel::ProcKind::kVm;
  const Status exec_status = k.OverlayVmImage(p, image, {});
  // 5. Reset the flag so that further calls to execve() work properly.
  k.ClearRestProcExec();
  if (!exec_status.ok()) {
    p.kind = previous_kind;
    if (previous_kind == kernel::ProcKind::kNative) p.vm.reset();
    return exec_status;
  }

  // 6. Set the user credentials to those already read.
  p.creds = stack.creds;

  // 7. Read in the contents of the stack and registers.
  p.vm->SetStackContents(stack.stack);
  p.vm->cpu = stack.cpu;
  kernel::SyscallApi* sink = k.ApiFor(p.pid);
  if (sink != nullptr) {
    sink->ChargeCpu(static_cast<sim::Nanos>(stack.stack.size()) *
                    k.costs().buffer_copy_per_byte);
  }

  // 8. Read in the information on the disposition of signals.
  p.sig_dispositions = stack.sig_dispositions;
  p.sig_pending = stack.sig_pending;

  // 9. At this point, the process running is a copy of the old process.
  p.migrated = true;
  p.old_pid = stack.old_pid;
  p.old_host = stack.old_host;
  p.command = vfs::Basename(aout_path) + " (migrated)";
  return Status::Ok();
}

}  // namespace pmig::core
