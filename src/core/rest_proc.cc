#include "src/core/rest_proc.h"

#include <algorithm>

#include "src/core/dump_format.h"
#include "src/sim/hash.h"
#include "src/vfs/path.h"
#include "src/vm/aout.h"

namespace pmig::core {

namespace {

// Reads a whole dump file on behalf of `p`, enforcing read permission with the
// caller's (pre-restore) credentials — this is what makes only the owner or the
// superuser able to restart a process.
Result<std::string> ReadDumpFile(kernel::Kernel& k, kernel::Proc& p,
                                 const std::string& path) {
  kernel::SyscallApi* sink = k.ApiFor(p.pid);
  PMIG_TRY(vfs::Vfs::Resolved r, k.vfs().Resolve(p.cwd, path, vfs::Follow::kAll, sink));
  if (!r.inode->IsRegular()) return Errno::kNoExec;
  if (!vfs::CheckAccess(*r.inode, p.creds.euid, vfs::kWantRead)) return Errno::kAcces;
  std::string bytes;
  k.vfs().ReadAt(*r.inode, 0, r.inode->size(), &bytes, sink);
  return bytes;
}

// Reads the a.out the way the modified execve() does: demand-paged, so only the
// header + first pages are charged synchronously.
Result<std::string> ReadAoutDemandPaged(kernel::Kernel& k, kernel::Proc& p,
                                        const std::string& path) {
  kernel::SyscallApi* sink = k.ApiFor(p.pid);
  PMIG_TRY(vfs::Vfs::Resolved r, k.vfs().Resolve(p.cwd, path, vfs::Follow::kAll, sink));
  if (!r.inode->IsRegular()) return Errno::kNoExec;
  if (!vfs::CheckAccess(*r.inode, p.creds.euid, vfs::kWantRead)) return Errno::kAcces;
  std::string bytes;
  k.vfs().ReadAt(*r.inode, 0, r.inode->size(), &bytes, nullptr);
  if (sink != nullptr) {
    const sim::CostModel& costs = k.costs();
    const int64_t prefetch = std::min<int64_t>(r.inode->size(), costs.exec_prefetch_bytes);
    const bool remote = k.vfs().InodeIsRemote(*r.inode);
    const auto io = remote ? costs.NetIo(prefetch) : costs.DiskIo(prefetch);
    sink->ChargeCpu(io.cpu);
    sink->ChargeWait(io.wait + (remote ? costs.nfs_rpc : costs.inode_fetch));
  }
  return bytes;
}

// "/n/<host>" when `path` reaches through the NFS namespace, else "".
std::string NfsPrefixOf(const std::string& path) {
  if (path.rfind("/n/", 0) != 0) return "";
  const size_t slash = path.find('/', 3);
  return slash == std::string::npos ? path : path.substr(0, slash);
}

// Resolves a content-addressed segment: local cache first (demand-paged, like
// any local executable), then the dump host's cache over NFS (full transfer,
// write-through into the local cache). `kind` is "text" or "data" for the
// hit/miss counters; `nfs_prefix` is where the dump came from.
Result<std::vector<uint8_t>> FetchSegment(kernel::Kernel& k, kernel::Proc& p,
                                          uint64_t digest, uint32_t expected_size,
                                          const std::string& nfs_prefix,
                                          const char* kind) {
  kernel::SyscallApi* sink = k.ApiFor(p.pid);
  const sim::CostModel& costs = k.costs();
  sim::MetricsRegistry& metrics = k.metrics();
  const std::string hit_name = std::string("cache.") + kind + ".hits";
  const std::string miss_name = std::string("cache.") + kind + ".misses";

  // 1. The local cache. A valid entry is mapped like an executable: only the
  // first pages are charged synchronously (the full-dump path reads its whole
  // a.out the same demand-paged way).
  const std::string local_path = SegCachePath(digest);
  auto local = k.vfs().Resolve(k.vfs().RootState(), local_path, vfs::Follow::kAll, nullptr);
  if (local.ok() && local->inode->IsRegular()) {
    std::string bytes;
    k.vfs().ReadAt(*local->inode, 0, local->inode->size(), &bytes, nullptr);
    if (bytes.size() == expected_size && sim::HashBytes(bytes) == digest) {
      if (sink != nullptr) {
        const int64_t prefetch = std::min<int64_t>(
            static_cast<int64_t>(bytes.size()), costs.exec_prefetch_bytes);
        const auto io = costs.DiskIo(prefetch);
        sink->ChargeCpu(io.cpu);
        sink->ChargeWait(io.wait + costs.inode_fetch);
      }
      metrics.Inc(hit_name);
      return std::vector<uint8_t>(bytes.begin(), bytes.end());
    }
    // A blob that no longer hashes to its name is useless: drop it and refetch.
    k.vfs().SetupUnlink(local_path);
    metrics.Inc("cache.seg.corrupt");
  }
  metrics.Inc(miss_name);

  // 2. The dump host's cache over NFS. The whole blob crosses the wire (it must
  // be complete to validate and to populate the local cache).
  if (nfs_prefix.empty()) return Errno::kNoEnt;
  const std::string remote_path = SegCachePath(digest, nfs_prefix);
  PMIG_TRY(vfs::Vfs::Resolved remote,
           k.vfs().Resolve(p.cwd, remote_path, vfs::Follow::kAll, sink));
  if (!remote.inode->IsRegular()) return Errno::kNoEnt;
  if (!vfs::CheckAccess(*remote.inode, p.creds.euid, vfs::kWantRead)) return Errno::kAcces;
  PMIG_RETURN_IF_ERROR(k.vfs().InjectedIoFault(*remote.inode, /*write=*/false));
  std::string bytes;
  k.vfs().ReadAt(*remote.inode, 0, remote.inode->size(), &bytes, sink);
  if (bytes.size() != expected_size || sim::HashBytes(bytes) != digest) {
    return Errno::kNoExec;  // corrupted in the source cache: refuse, never guess
  }

  // 3. Write-through so the *next* restore of this segment hits locally. Pays
  // the full local disk cost; skipped (non-fatally) when the disk-full fault
  // window is open — the cache is an optimisation, not a correctness need.
  if (k.faults() != nullptr && k.faults()->DiskFull(k.hostname(), &metrics)) {
    metrics.Inc("cache.writethrough_failed");
  } else {
    k.vfs().SetupCreateFile(local_path, bytes, 0, 0644);
    if (sink != nullptr) {
      const auto io = costs.DiskIo(static_cast<int64_t>(bytes.size()));
      sink->ChargeCpu(io.cpu);
      sink->ChargeWait(io.wait);
    }
  }
  return std::vector<uint8_t>(bytes.begin(), bytes.end());
}

}  // namespace

Status RestProcImpl(kernel::Kernel& k, kernel::Proc& p, const std::string& aout_path,
                    const std::string& stack_path) {
  // 1. Open the stackXXXXX file, checking access permissions and the magic number.
  PMIG_TRY(std::string stack_bytes, ReadDumpFile(k, p, stack_path));
  PMIG_TRY(StackFile stack, StackFile::Parse(stack_bytes));
  if (stack.stack.size() > vm::kStackMax) return Errno::kNoExec;

  // 2. The executable (validated before we touch the caller's image). Loaded via
  // the modified execve(), i.e. demand-paged. An incremental dump references its
  // segments by digest; they are resolved from the local cache or the dump
  // host's cache, and the reconstruction is digest-checked end to end.
  PMIG_TRY(std::string aout_bytes, ReadAoutDemandPaged(k, p, aout_path));
  vm::AoutImage image;
  ReconstructedImage recon;
  bool was_incremental = false;
  if (IsIncrAout(aout_bytes)) {
    PMIG_TRY(IncrAout incr, IncrAout::Parse(aout_bytes));
    const std::string nfs_prefix = NfsPrefixOf(aout_path);
    PMIG_TRY(std::vector<uint8_t> text,
             FetchSegment(k, p, incr.text_digest, incr.text_size, nfs_prefix, "text"));
    std::vector<uint8_t> base;
    if (incr.encoding == IncrAout::DataEncoding::kDelta) {
      PMIG_TRY(base,
               FetchSegment(k, p, incr.base_digest, incr.full_size, nfs_prefix, "data"));
    }
    PMIG_TRY(recon, ReconstructIncrAout(incr, std::move(text), std::move(base)));
    image = std::move(recon.image);
    was_incremental = true;
  } else {
    PMIG_TRY(vm::AoutImage full,
             vm::AoutImage::Parse(std::vector<uint8_t>(aout_bytes.begin(), aout_bytes.end())));
    image = std::move(full);
  }

  // 3. Set the global flag indicating process migration and the stack-size
  // variable, then 4. call execve() with a null environment. ("As the environment
  // of the old process was stored in its stack, it will be automatically restored
  // when the stack is read in.")
  k.SetRestProcExec(stack.stack_size());
  const kernel::ProcKind previous_kind = p.kind;
  p.kind = kernel::ProcKind::kVm;
  const Status exec_status = k.OverlayVmImage(p, image, {});
  // 5. Reset the flag so that further calls to execve() work properly.
  k.ClearRestProcExec();
  if (!exec_status.ok()) {
    p.kind = previous_kind;
    if (previous_kind == kernel::ProcKind::kNative) p.vm.reset();
    return exec_status;
  }

  // 6. Set the user credentials to those already read.
  p.creds = stack.creds;

  // 7. Read in the contents of the stack and registers.
  p.vm->SetStackContents(stack.stack);
  p.vm->cpu = stack.cpu;
  kernel::SyscallApi* sink = k.ApiFor(p.pid);
  if (sink != nullptr) {
    sink->ChargeCpu(static_cast<sim::Nanos>(stack.stack.size()) *
                    k.costs().buffer_copy_per_byte);
  }

  // 8. Read in the information on the disposition of signals.
  p.sig_dispositions = stack.sig_dispositions;
  p.sig_pending = stack.sig_pending;

  // Keep the delta base stable across migrations: re-arm tracking against the
  // *original* base (already in every involved host's cache) with the restored
  // pages pre-marked dirty, so the next dump is again a cumulative delta and
  // never has to ship a new full-size base blob.
  if (was_incremental && recon.was_delta && p.vm->dirty.armed) {
    p.vm->ArmDirtyTrackingWithBase(std::move(recon.base), recon.delta_pages);
  }

  // 9. At this point, the process running is a copy of the old process.
  p.migrated = true;
  p.old_pid = stack.old_pid;
  p.old_host = stack.old_host;
  // Rejoin the trace the dump was taken under (a restart tool invoked outside
  // any trace — e.g. undump by hand — adopts the dump's id).
  if (p.trace_id == 0) p.trace_id = stack.trace_id;
  // A v4 dump carries the original command, so the migrant keeps its name; a
  // process that hops repeatedly stays e.g. "worker (migrated)", not a chain of
  // suffixes. Older dumps fall back to the dump-file basename.
  constexpr std::string_view kMigratedSuffix = " (migrated)";
  std::string base = stack.command.empty() ? vfs::Basename(aout_path) : stack.command;
  if (base.size() < kMigratedSuffix.size() ||
      base.compare(base.size() - kMigratedSuffix.size(), kMigratedSuffix.size(),
                   kMigratedSuffix) != 0) {
    base += kMigratedSuffix;
  }
  p.command = std::move(base);
  return Status::Ok();
}

}  // namespace pmig::core
