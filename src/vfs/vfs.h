// Per-machine VFS: path resolution, mount table, and cost-accounted file I/O.
//
// Every machine sees its own local disk at "/" and — following the 8th-edition
// convention the paper's site used — every other machine's root mounted at
// /n/<host> (Section 3). A path walk that crosses a mount point continues on the
// remote machine's filesystem and from then on pays NFS RPC costs instead of local
// disk costs. Symbolic links are resolved mid-walk with a 4.2BSD-style expansion
// limit (ELOOP).
//
// ".." is resolved against the walk itself (a stack of inodes), not against parent
// pointers, so a remote root's ".." correctly leads back to the *local* /n — and a
// walk can never escape the root.

#ifndef PMIG_SRC_VFS_VFS_H_
#define PMIG_SRC_VFS_VFS_H_

#include <deque>
#include <functional>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "src/sim/cost_model.h"
#include "src/sim/fault.h"
#include "src/sim/metrics.h"
#include "src/sim/result.h"
#include "src/vfs/filesystem.h"
#include "src/vfs/inode.h"
#include "src/vfs/path.h"

namespace pmig::vfs {

// 4.2BSD MAXSYMLINKS.
constexpr int kMaxSymlinkExpansions = 8;

// Receiver for the virtual-time cost of an operation. The kernel passes the calling
// process's accountant; tests may pass nullptr to resolve "for free".
class CostSink {
 public:
  virtual void ChargeCpu(sim::Nanos amount) = 0;
  virtual void ChargeWait(sim::Nanos amount) = 0;

 protected:
  ~CostSink() = default;
};

// A position in the namespace: the chain of inodes from the local root down to (and
// including) a directory. This is the kernel's *physical* knowledge of the current
// directory — the textual path in the user structure is the paper's addition and is
// maintained separately by the kernel.
struct WalkState {
  std::vector<InodePtr> stack;

  const InodePtr& dir() const { return stack.back(); }
  bool empty() const { return stack.empty(); }
};

enum class Follow : uint8_t {
  kAll,        // resolve symlinks everywhere (stat, chdir, open)
  kNotLast,    // resolve symlinks except in the final component (lstat, unlink,
               // readlink, symlink creation)
};

class Vfs {
 public:
  Vfs(Filesystem* local, const sim::CostModel* costs);

  Vfs(const Vfs&) = delete;
  Vfs& operator=(const Vfs&) = delete;

  Filesystem* local_fs() const { return local_; }

  // Installed by the owning kernel: byte/block counters for ReadAt/WriteAt land
  // here. May stay null (tests construct a bare Vfs); recording never charges cost.
  void set_metrics(sim::MetricsRegistry* metrics) {
    metrics_ = metrics;
    if (metrics == nullptr) return;
    // ReadAt/WriteAt run once per buffer on every file syscall: pre-resolve the
    // counter slots instead of paying a map lookup per call.
    bytes_read_metric_ = metrics->MakeCounter("vfs.bytes_read");
    blocks_read_metric_ = metrics->MakeCounter("vfs.blocks_read");
    nfs_bytes_read_metric_ = metrics->MakeCounter("vfs.nfs_bytes_read");
    nfs_blocks_read_metric_ = metrics->MakeCounter("vfs.nfs_blocks_read");
    bytes_written_metric_ = metrics->MakeCounter("vfs.bytes_written");
    blocks_written_metric_ = metrics->MakeCounter("vfs.blocks_written");
    nfs_bytes_written_metric_ = metrics->MakeCounter("vfs.nfs_bytes_written");
    nfs_blocks_written_metric_ = metrics->MakeCounter("vfs.nfs_blocks_written");
  }

  // Installed by the owning kernel: the cluster-wide fault injector plus this
  // machine's hostname (for disk-full window matching). Stays null in default
  // configs, making InjectedIoFault a dead branch.
  void set_fault_injector(sim::FaultInjector* faults, std::string host) {
    faults_ = faults;
    fault_host_ = std::move(host);
  }

  // Consulted by the kernel's file-I/O syscalls before touching `inode`:
  // remote (NFS) inodes may draw an injected EIO; local writes inside a
  // configured disk-full window fail with ENOSPC. OkStatus when no injector
  // is installed or nothing fires.
  Status InjectedIoFault(const Inode& inode, bool write) const;

  // Grafts `remote_root` over the directory inode `mount_point`: any walk reaching
  // the mount point continues at the remote root.
  void AddMount(const InodePtr& mount_point, InodePtr remote_root);

  // Installed by the cluster: true when the machine owning `fs` is unreachable
  // (down). Walks and I/O that would touch it fail with EHOSTUNREACH — NFS with
  // a dead server (well, the historical NFS would hang; we fail fast).
  void set_unreachable_check(std::function<bool(const Filesystem*)> check) {
    unreachable_ = std::move(check);
  }
  bool FsUnreachable(const Filesystem* fs) const {
    return unreachable_ && fs != local_ && unreachable_(fs);
  }
  bool IsMountPoint(const Inode& inode) const;

  WalkState RootState() const;

  struct Resolved {
    InodePtr inode;
    WalkState state;  // walk ending at `inode` (if a directory) or its parent chain
  };

  // Resolves `path` starting from `cwd` (ignored for absolute paths).
  Result<Resolved> Resolve(const WalkState& cwd, std::string_view path, Follow follow,
                           CostSink* sink) const;

  struct ResolvedParent {
    InodePtr dir;        // existing parent directory
    std::string name;    // final component (may or may not exist in `dir`)
    InodePtr existing;   // the entry if it exists (symlinks NOT followed), else null
  };

  // Resolves all but the final component; for creat/unlink/link/symlink.
  Result<ResolvedParent> ResolveParent(const WalkState& cwd, std::string_view path,
                                       CostSink* sink) const;

  // readlink(): the target string of a symlink, with I/O cost.
  Result<std::string> Readlink(const WalkState& cwd, std::string_view path,
                               CostSink* sink) const;

  // --- Regular-file I/O with disk/NFS cost accounting ---
  // Reads up to `len` bytes at `offset`; returns bytes read (0 at EOF).
  int64_t ReadAt(const Inode& inode, int64_t offset, int64_t len, std::string* out,
                 CostSink* sink) const;
  // Writes `bytes` at `offset`, growing the file as needed; returns bytes written.
  int64_t WriteAt(Inode& inode, int64_t offset, std::string_view bytes, CostSink* sink) const;
  Status Truncate(Inode& inode, int64_t size, CostSink* sink) const;

  // Charges the cost of one component lookup against `sink` (exposed so the kernel
  // can charge its name-tracking work consistently). `remote` selects NFS costs.
  void ChargeLookup(CostSink* sink, bool remote) const;

  bool InodeIsRemote(const Inode& inode) const { return inode.fs != local_; }

  // --- Setup helpers (no cost accounting; for boot code and tests) ---
  // Creates every missing directory along an absolute path; returns the leaf.
  InodePtr SetupMkdirAll(std::string_view path);
  // Creates (or replaces) a regular file with the given contents; returns it.
  InodePtr SetupCreateFile(std::string_view path, std::string_view contents, int32_t uid = 0,
                           uint16_t mode = 0644);
  // Creates a symlink at `path` pointing to `target`.
  InodePtr SetupSymlink(std::string_view path, std::string_view target);
  // Removes the directory entry for an absolute path if it exists (no cost
  // accounting; for cleanup in kernel dump-abort paths and tests).
  void SetupUnlink(std::string_view path);

 private:
  Result<Resolved> WalkComponents(WalkState state, std::deque<std::string> pending,
                                  Follow follow, CostSink* sink) const;

  Filesystem* local_;
  const sim::CostModel* costs_;
  sim::MetricsRegistry* metrics_ = nullptr;
  // mutable: ReadAt/WriteAt are const (they mutate only the inode) but recording
  // a metric updates the handle's cached slot.
  mutable sim::CounterHandle bytes_read_metric_, blocks_read_metric_;
  mutable sim::CounterHandle nfs_bytes_read_metric_, nfs_blocks_read_metric_;
  mutable sim::CounterHandle bytes_written_metric_, blocks_written_metric_;
  mutable sim::CounterHandle nfs_bytes_written_metric_, nfs_blocks_written_metric_;
  sim::FaultInjector* faults_ = nullptr;
  std::string fault_host_;
  std::map<const Inode*, InodePtr> mounts_;
  std::function<bool(const Filesystem*)> unreachable_;
};

}  // namespace pmig::vfs

#endif  // PMIG_SRC_VFS_VFS_H_
