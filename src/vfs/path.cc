#include "src/vfs/path.h"

namespace pmig::vfs {

std::vector<std::string> SplitPath(std::string_view path) {
  std::vector<std::string> out;
  size_t i = 0;
  while (i < path.size()) {
    while (i < path.size() && path[i] == '/') ++i;
    size_t j = i;
    while (j < path.size() && path[j] != '/') ++j;
    if (j > i) out.emplace_back(path.substr(i, j - i));
    i = j;
  }
  return out;
}

std::string JoinAbsolute(const std::vector<std::string>& components) {
  if (components.empty()) return "/";
  std::string out;
  for (const std::string& c : components) {
    out += '/';
    out += c;
  }
  return out;
}

std::string NormalizeAbsolute(std::string_view path) {
  std::vector<std::string> stack;
  for (std::string& c : SplitPath(path)) {
    if (c == ".") continue;
    if (c == "..") {
      if (!stack.empty()) stack.pop_back();
      continue;
    }
    stack.push_back(std::move(c));
  }
  return JoinAbsolute(stack);
}

std::string Combine(std::string_view cwd, std::string_view path) {
  if (IsAbsolute(path)) return NormalizeAbsolute(path);
  std::string joined(cwd);
  joined += '/';
  joined += path;
  return NormalizeAbsolute(joined);
}

std::string Dirname(std::string_view path) {
  auto comps = SplitPath(path);
  if (comps.empty()) return "/";
  comps.pop_back();
  return JoinAbsolute(comps);
}

std::string Basename(std::string_view path) {
  auto comps = SplitPath(path);
  if (comps.empty()) return "";
  return comps.back();
}

}  // namespace pmig::vfs
