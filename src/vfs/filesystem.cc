#include "src/vfs/filesystem.h"

#include <utility>

namespace pmig::vfs {

Filesystem::Filesystem(std::string disk_name) : disk_name_(std::move(disk_name)) {
  root_ = NewInode(InodeType::kDirectory, 0, 0755);
  root_->ino = 2;
  root_->nlink = 1;
}

InodePtr Filesystem::NewInode(InodeType type, int32_t uid, uint16_t mode) {
  auto inode = std::make_shared<Inode>();
  inode->type = type;
  inode->ino = next_ino_++;
  inode->uid = uid;
  inode->mode = mode;
  inode->fs = this;
  ++live_inodes_;
  return inode;
}

InodePtr Filesystem::NewRegular(int32_t uid, uint16_t mode) {
  return NewInode(InodeType::kRegular, uid, mode);
}

InodePtr Filesystem::NewDirectory(int32_t uid, uint16_t mode) {
  return NewInode(InodeType::kDirectory, uid, mode);
}

InodePtr Filesystem::NewSymlink(std::string target, int32_t uid) {
  InodePtr inode = NewInode(InodeType::kSymlink, uid, 0777);
  inode->symlink_target = std::move(target);
  return inode;
}

InodePtr Filesystem::NewCharDevice(Device* device, int32_t uid, uint16_t mode) {
  InodePtr inode = NewInode(InodeType::kCharDevice, uid, mode);
  inode->device = device;
  return inode;
}

Status Filesystem::Link(const InodePtr& dir, const std::string& name, const InodePtr& child) {
  if (!dir || !dir->IsDir()) return Errno::kNotDir;
  if (name.empty() || name == "." || name == "..") return Errno::kInval;
  if (dir->entries.count(name) != 0) return Errno::kExist;
  dir->entries[name] = child;
  ++child->nlink;
  return Status::Ok();
}

Status Filesystem::Unlink(const InodePtr& dir, const std::string& name) {
  if (!dir || !dir->IsDir()) return Errno::kNotDir;
  auto it = dir->entries.find(name);
  if (it == dir->entries.end()) return Errno::kNoEnt;
  if (it->second->IsDir() && !it->second->entries.empty()) return Errno::kIsDir;
  --it->second->nlink;
  dir->entries.erase(it);
  return Status::Ok();
}

Result<InodePtr> Filesystem::Lookup(const InodePtr& dir, const std::string& name) const {
  if (!dir || !dir->IsDir()) return Errno::kNotDir;
  auto it = dir->entries.find(name);
  if (it == dir->entries.end()) return Errno::kNoEnt;
  return it->second;
}

}  // namespace pmig::vfs
