#include "src/vfs/inode.h"

namespace pmig::vfs {

bool CheckAccess(const Inode& inode, int32_t uid, uint8_t want) {
  if (uid == 0) return true;
  uint8_t granted;
  if (uid == inode.uid) {
    granted = static_cast<uint8_t>((inode.mode >> 6) & 7);
  } else {
    granted = static_cast<uint8_t>(inode.mode & 7);
  }
  return (granted & want) == want;
}

}  // namespace pmig::vfs
