// A single machine's local filesystem: an inode tree rooted at "/".
//
// Purely mechanical object management (allocation, linking); path walking, mounts,
// and cost accounting live in Vfs. Direct helpers that take component names (not
// paths) are used by the resolver and by test fixtures that want to build trees
// without going through a kernel.

#ifndef PMIG_SRC_VFS_FILESYSTEM_H_
#define PMIG_SRC_VFS_FILESYSTEM_H_

#include <memory>
#include <string>

#include "src/sim/result.h"
#include "src/vfs/inode.h"

namespace pmig::vfs {

class Filesystem {
 public:
  // `disk_name` identifies the machine whose disk this is (for traces/tests).
  explicit Filesystem(std::string disk_name);

  Filesystem(const Filesystem&) = delete;
  Filesystem& operator=(const Filesystem&) = delete;

  const std::string& disk_name() const { return disk_name_; }
  const InodePtr& root() const { return root_; }

  // --- Inode allocation ---
  InodePtr NewRegular(int32_t uid, uint16_t mode = 0644);
  InodePtr NewDirectory(int32_t uid, uint16_t mode = 0755);
  InodePtr NewSymlink(std::string target, int32_t uid);
  InodePtr NewCharDevice(Device* device, int32_t uid, uint16_t mode = 0666);

  // --- Directory surgery (component names, not paths) ---
  // Fails with kExist / kNotDir as appropriate.
  Status Link(const InodePtr& dir, const std::string& name, const InodePtr& child);
  // Removes a directory entry; directories must be empty (kNotDir semantics follow
  // 4.2BSD: unlink on a directory is refused with kIsDir).
  Status Unlink(const InodePtr& dir, const std::string& name);
  // Looks a component up; nullptr result encoded as kNoEnt.
  Result<InodePtr> Lookup(const InodePtr& dir, const std::string& name) const;

  int64_t live_inodes() const { return live_inodes_; }

 private:
  InodePtr NewInode(InodeType type, int32_t uid, uint16_t mode);

  std::string disk_name_;
  uint32_t next_ino_ = 2;  // 2 is the traditional root ino
  int64_t live_inodes_ = 0;
  InodePtr root_;
};

}  // namespace pmig::vfs

#endif  // PMIG_SRC_VFS_FILESYSTEM_H_
