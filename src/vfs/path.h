// Lexical path utilities.
//
// These operate on path *strings* only — no filesystem access and, crucially, no
// symbolic-link resolution. Combine() is exactly the operation the paper's modified
// kernel performs on the user-structure cwd string after chdir()/open(): relative
// names are appended to the saved current directory and "." / ".." references are
// resolved textually (Section 5.1). Because it is textual, a ".." that crosses a
// symlink behaves "wrongly" in the same way the paper's kernel did — that fidelity
// is intentional and tested.

#ifndef PMIG_SRC_VFS_PATH_H_
#define PMIG_SRC_VFS_PATH_H_

#include <string>
#include <string_view>
#include <vector>

namespace pmig::vfs {

inline bool IsAbsolute(std::string_view path) {
  return !path.empty() && path.front() == '/';
}

// Splits into components, dropping empty ones: "/a//b/" -> {"a", "b"}.
std::vector<std::string> SplitPath(std::string_view path);

// Joins components into an absolute path: {} -> "/", {"a","b"} -> "/a/b".
std::string JoinAbsolute(const std::vector<std::string>& components);

// Lexically normalises an absolute path: collapses "//", ".", "..".
// ".." at the root stays at the root. The input must be absolute.
std::string NormalizeAbsolute(std::string_view path);

// The Section 5.1 cwd-combination rule: if `path` is absolute the result is simply
// its normalisation; otherwise it is appended to `cwd` (which must be absolute) and
// normalised. No symlinks are consulted.
std::string Combine(std::string_view cwd, std::string_view path);

// Dirname/Basename on absolute paths: "/a/b" -> "/a" and "b"; "/" -> "/" and "".
std::string Dirname(std::string_view path);
std::string Basename(std::string_view path);

}  // namespace pmig::vfs

#endif  // PMIG_SRC_VFS_PATH_H_
