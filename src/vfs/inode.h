// Inodes: the on-"disk" objects of the simulated filesystem.
//
// As in the real kernel (Section 5.1), an inode records where a file's bytes live
// and its attributes — it does NOT know the file's name. Name information is what
// the paper's kernel modifications add, and they add it to the *file table* and the
// *user structure*, never here. Keeping that separation honest is what makes the
// name-tracking machinery in src/kernel meaningful.

#ifndef PMIG_SRC_VFS_INODE_H_
#define PMIG_SRC_VFS_INODE_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>

namespace pmig::vfs {

class Filesystem;

enum class InodeType : uint8_t {
  kRegular,
  kDirectory,
  kSymlink,
  kCharDevice,
};

// Opaque device hook. The kernel's tty and null devices implement this; the VFS
// only needs identity and a debugging name.
class Device {
 public:
  virtual ~Device() = default;
  virtual std::string_view DeviceName() const = 0;
};

// Permission bits (classic octal).
constexpr uint16_t kModeRUser = 0400, kModeWUser = 0200, kModeXUser = 0100;
constexpr uint16_t kModeROther = 0004, kModeWOther = 0002, kModeXOther = 0001;

struct Inode {
  InodeType type = InodeType::kRegular;
  uint32_t ino = 0;
  uint16_t mode = 0644;
  int32_t uid = 0;
  int32_t gid = 0;
  int32_t nlink = 0;

  // Back-pointer to the owning filesystem; lets callers detect when a path walk
  // has crossed onto another machine's disk (NFS accounting).
  Filesystem* fs = nullptr;

  // kRegular: file contents.
  std::string data;

  // kDirectory: name -> inode. (No "." / ".." entries; the resolver handles those.)
  std::map<std::string, std::shared_ptr<Inode>> entries;

  // kSymlink: link target (may be relative or absolute).
  std::string symlink_target;

  // kCharDevice: non-owning device hook (the kernel owns its devices).
  Device* device = nullptr;

  int64_t size() const { return static_cast<int64_t>(data.size()); }

  bool IsDir() const { return type == InodeType::kDirectory; }
  bool IsRegular() const { return type == InodeType::kRegular; }
  bool IsSymlink() const { return type == InodeType::kSymlink; }
  bool IsDevice() const { return type == InodeType::kCharDevice; }
};

using InodePtr = std::shared_ptr<Inode>;

// Access-check wants.
enum AccessWant : uint8_t { kWantRead = 4, kWantWrite = 2, kWantExec = 1 };

// Unix-style owner/other permission check (group is modelled as "other"; groups
// play no role in the paper). uid 0 bypasses everything.
bool CheckAccess(const Inode& inode, int32_t uid, uint8_t want);

}  // namespace pmig::vfs

#endif  // PMIG_SRC_VFS_INODE_H_
