#include "src/vfs/vfs.h"

#include <cassert>
#include <utility>

namespace pmig::vfs {

Vfs::Vfs(Filesystem* local, const sim::CostModel* costs) : local_(local), costs_(costs) {
  assert(local_ != nullptr && costs_ != nullptr);
}

void Vfs::AddMount(const InodePtr& mount_point, InodePtr remote_root) {
  assert(mount_point->IsDir() && remote_root->IsDir());
  mounts_[mount_point.get()] = std::move(remote_root);
}

bool Vfs::IsMountPoint(const Inode& inode) const {
  return mounts_.count(&inode) != 0;
}

WalkState Vfs::RootState() const {
  WalkState state;
  state.stack.push_back(local_->root());
  return state;
}

void Vfs::ChargeLookup(CostSink* sink, bool remote) const {
  if (sink == nullptr) return;
  sink->ChargeCpu(costs_->namei_component);
  if (remote) {
    sink->ChargeWait(costs_->nfs_rpc);
  }
}

Result<Vfs::Resolved> Vfs::Resolve(const WalkState& cwd, std::string_view path, Follow follow,
                                   CostSink* sink) const {
  if (path.empty()) return Errno::kNoEnt;
  WalkState state = IsAbsolute(path) ? RootState() : cwd;
  if (state.empty()) return Errno::kNoEnt;
  std::deque<std::string> pending;
  for (std::string& c : SplitPath(path)) pending.push_back(std::move(c));
  return WalkComponents(std::move(state), std::move(pending), follow, sink);
}

Result<Vfs::Resolved> Vfs::WalkComponents(WalkState state, std::deque<std::string> pending,
                                          Follow follow, CostSink* sink) const {
  int expansions = 0;
  while (!pending.empty()) {
    const std::string comp = std::move(pending.front());
    pending.pop_front();
    // "." and ".." are real directory lookups in namei and cost like any other
    // component (Figure 1's chdir measurement depends on this).
    if (comp == ".") {
      ChargeLookup(sink, InodeIsRemote(*state.dir()));
      continue;
    }
    if (comp == "..") {
      ChargeLookup(sink, InodeIsRemote(*state.dir()));
      if (state.stack.size() > 1) state.stack.pop_back();
      continue;
    }
    const InodePtr& cur = state.dir();
    if (!cur->IsDir()) return Errno::kNotDir;
    ChargeLookup(sink, InodeIsRemote(*cur));
    auto it = cur->entries.find(comp);
    if (it == cur->entries.end()) return Errno::kNoEnt;
    InodePtr child = it->second;
    if (auto mount = mounts_.find(child.get()); mount != mounts_.end()) {
      child = mount->second;
      if (FsUnreachable(child->fs)) return Errno::kHostUnreach;
    }
    if (child->IsSymlink()) {
      const bool is_last = pending.empty();
      if (!(follow == Follow::kNotLast && is_last)) {
        if (++expansions > kMaxSymlinkExpansions) return Errno::kLoop;
        if (sink != nullptr) {
          sink->ChargeCpu(costs_->readlink);
          if (InodeIsRemote(*child)) sink->ChargeWait(costs_->nfs_rpc);
        }
        std::vector<std::string> target = SplitPath(child->symlink_target);
        for (auto rit = target.rbegin(); rit != target.rend(); ++rit) {
          pending.push_front(std::move(*rit));
        }
        if (IsAbsolute(child->symlink_target)) {
          // An absolute target restarts at *this machine's* root. This is the exact
          // behaviour that makes "/n/classic" + a path containing an NFS symlink
          // resolve wrongly (Section 4.3); dumpproc must resolve links first.
          state = RootState();
        }
        continue;
      }
    }
    state.stack.push_back(std::move(child));
  }
  return Resolved{state.stack.back(), std::move(state)};
}

Result<Vfs::ResolvedParent> Vfs::ResolveParent(const WalkState& cwd, std::string_view path,
                                               CostSink* sink) const {
  if (path.empty()) return Errno::kNoEnt;
  std::vector<std::string> comps = SplitPath(path);
  if (comps.empty()) return Errno::kInval;  // "/" has no parent entry
  const std::string name = comps.back();
  if (name == "." || name == "..") return Errno::kInval;
  comps.pop_back();

  WalkState state = IsAbsolute(path) ? RootState() : cwd;
  if (state.empty()) return Errno::kNoEnt;
  std::deque<std::string> pending(comps.begin(), comps.end());
  PMIG_TRY(Resolved parent, WalkComponents(std::move(state), std::move(pending), Follow::kAll, sink));
  if (!parent.inode->IsDir()) return Errno::kNotDir;

  ResolvedParent out;
  out.dir = parent.inode;
  out.name = name;
  ChargeLookup(sink, InodeIsRemote(*parent.inode));
  auto it = parent.inode->entries.find(name);
  if (it != parent.inode->entries.end()) {
    out.existing = it->second;
    if (auto mount = mounts_.find(out.existing.get()); mount != mounts_.end()) {
      out.existing = mount->second;
    }
  }
  return out;
}

Result<std::string> Vfs::Readlink(const WalkState& cwd, std::string_view path,
                                  CostSink* sink) const {
  PMIG_TRY(Resolved r, Resolve(cwd, path, Follow::kNotLast, sink));
  if (!r.inode->IsSymlink()) return Errno::kInval;
  if (sink != nullptr) {
    sink->ChargeCpu(costs_->readlink);
    if (InodeIsRemote(*r.inode)) sink->ChargeWait(costs_->nfs_rpc);
  }
  return r.inode->symlink_target;
}

int64_t Vfs::ReadAt(const Inode& inode, int64_t offset, int64_t len, std::string* out,
                    CostSink* sink) const {
  out->clear();
  if (FsUnreachable(inode.fs)) return 0;  // server gone: reads see nothing
  if (offset >= inode.size() || len <= 0) return 0;
  const int64_t n = std::min(len, inode.size() - offset);
  out->assign(inode.data, static_cast<size_t>(offset), static_cast<size_t>(n));
  if (sink != nullptr) {
    const auto io = InodeIsRemote(inode) ? costs_->NetIo(n) : costs_->DiskIo(n);
    sink->ChargeCpu(io.cpu);
    sink->ChargeWait(io.wait);
  }
  if (metrics_ != nullptr && metrics_->enabled()) {
    const bool remote = InodeIsRemote(inode);
    const int64_t blocks = (n + costs_->disk_block_bytes - 1) / costs_->disk_block_bytes;
    (remote ? nfs_bytes_read_metric_ : bytes_read_metric_).Inc(n);
    (remote ? nfs_blocks_read_metric_ : blocks_read_metric_).Inc(blocks);
  }
  return n;
}

int64_t Vfs::WriteAt(Inode& inode, int64_t offset, std::string_view bytes,
                     CostSink* sink) const {
  if (offset > inode.size()) {
    inode.data.resize(static_cast<size_t>(offset), '\0');
  }
  if (offset + static_cast<int64_t>(bytes.size()) > inode.size()) {
    inode.data.resize(static_cast<size_t>(offset) + bytes.size());
  }
  inode.data.replace(static_cast<size_t>(offset), bytes.size(), bytes);
  if (sink != nullptr) {
    const int64_t n = static_cast<int64_t>(bytes.size());
    if (InodeIsRemote(inode)) {
      // NFS writes are synchronous through to the server's disk (the era's
      // write-through semantics): wire cost plus the remote disk.
      const auto wire = costs_->NetIo(n);
      const auto disk = costs_->DiskIo(n);
      sink->ChargeCpu(wire.cpu);
      sink->ChargeWait(wire.wait + disk.wait);
    } else {
      const auto io = costs_->DiskIo(n);
      sink->ChargeCpu(io.cpu);
      sink->ChargeWait(io.wait);
    }
  }
  if (metrics_ != nullptr && metrics_->enabled()) {
    const bool remote = InodeIsRemote(inode);
    const int64_t n = static_cast<int64_t>(bytes.size());
    const int64_t blocks = (n + costs_->disk_block_bytes - 1) / costs_->disk_block_bytes;
    (remote ? nfs_bytes_written_metric_ : bytes_written_metric_).Inc(n);
    (remote ? nfs_blocks_written_metric_ : blocks_written_metric_).Inc(blocks);
  }
  return static_cast<int64_t>(bytes.size());
}

Status Vfs::Truncate(Inode& inode, int64_t size, CostSink* sink) const {
  if (!inode.IsRegular()) return Errno::kInval;
  if (size < 0) return Errno::kInval;
  inode.data.resize(static_cast<size_t>(size), '\0');
  if (sink != nullptr) sink->ChargeCpu(costs_->file_table_slot);
  return Status::Ok();
}

InodePtr Vfs::SetupMkdirAll(std::string_view path) {
  assert(IsAbsolute(path));
  InodePtr cur = local_->root();
  for (const std::string& comp : SplitPath(path)) {
    auto it = cur->entries.find(comp);
    InodePtr child;
    if (it == cur->entries.end()) {
      Filesystem* owner = cur->fs;
      child = owner->NewDirectory(0);
      const Status st = owner->Link(cur, comp, child);
      assert(st.ok());
      (void)st;
    } else {
      child = it->second;
    }
    if (auto mount = mounts_.find(child.get()); mount != mounts_.end()) {
      child = mount->second;
    }
    assert(child->IsDir() && "SetupMkdirAll hit a non-directory");
    cur = std::move(child);
  }
  return cur;
}

InodePtr Vfs::SetupCreateFile(std::string_view path, std::string_view contents, int32_t uid,
                              uint16_t mode) {
  InodePtr dir = SetupMkdirAll(Dirname(path));
  const std::string name = Basename(path);
  dir->entries.erase(name);
  Filesystem* owner = dir->fs;
  InodePtr file = owner->NewRegular(uid, mode);
  file->data.assign(contents);
  const Status st = owner->Link(dir, name, file);
  assert(st.ok());
  (void)st;
  return file;
}

Status Vfs::InjectedIoFault(const Inode& inode, bool write) const {
  if (faults_ == nullptr || !faults_->enabled()) return Status::Ok();
  if (InodeIsRemote(inode)) {
    if (faults_->NfsIoFails(metrics_)) return Errno::kIo;
  } else if (write && faults_->DiskFull(fault_host_, metrics_)) {
    return Errno::kNoSpc;
  }
  return Status::Ok();
}

void Vfs::SetupUnlink(std::string_view path) {
  auto rp = ResolveParent(RootState(), path, nullptr);
  if (!rp.ok()) return;
  rp->dir->entries.erase(rp->name);
}

InodePtr Vfs::SetupSymlink(std::string_view path, std::string_view target) {
  InodePtr dir = SetupMkdirAll(Dirname(path));
  const std::string name = Basename(path);
  dir->entries.erase(name);
  Filesystem* owner = dir->fs;
  InodePtr link = owner->NewSymlink(std::string(target), 0);
  const Status st = owner->Link(dir, name, link);
  assert(st.ok());
  (void)st;
  return link;
}

}  // namespace pmig::vfs
