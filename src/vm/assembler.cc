#include "src/vm/assembler.h"

#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <optional>
#include <utility>

#include "src/vm/abi.h"

namespace pmig::vm {

namespace {

using abi::Sys;

// Symbolic names every program can use without declaring them.
std::map<std::string, int64_t, std::less<>> PredefinedSymbols() {
  using namespace abi;
  return {
      {"SYS_exit", kSysExit},
      {"SYS_fork", kSysFork},
      {"SYS_read", kSysRead},
      {"SYS_write", kSysWrite},
      {"SYS_open", kSysOpen},
      {"SYS_close", kSysClose},
      {"SYS_wait", kSysWait},
      {"SYS_creat", kSysCreat},
      {"SYS_link", kSysLink},
      {"SYS_unlink", kSysUnlink},
      {"SYS_chdir", kSysChdir},
      {"SYS_time", kSysTime},
      {"SYS_brk", kSysBrk},
      {"SYS_lseek", kSysLseek},
      {"SYS_getpid", kSysGetPid},
      {"SYS_kill", kSysKill},
      {"SYS_dup", kSysDup},
      {"SYS_pipe", kSysPipe},
      {"SYS_signal", kSysSignal},
      {"SYS_ioctl", kSysIoctl},
      {"SYS_readlink", kSysReadlink},
      {"SYS_execve", kSysExecve},
      {"SYS_gethostname", kSysGetHostname},
      {"SYS_setreuid", kSysSetReUid},
      {"SYS_getuid", kSysGetUid},
      {"SYS_getppid", kSysGetPpid},
      {"SYS_sleep", kSysSleep},
      {"SYS_socket", kSysSocket},
      {"SYS_getcwd", kSysGetCwd},
      {"SYS_rename", kSysRename},
      {"SYS_mkdir", kSysMkdir},
      {"SYS_rmdir", kSysRmdir},
      {"SYS_stat", kSysStat},
      {"SYS_rest_proc", kSysRestProc},
      {"SYS_getpid_real", kSysGetPidReal},
      {"SYS_gethostname_real", kSysGetHostnameReal},
      {"O_RDONLY", kORdOnly},
      {"O_WRONLY", kOWrOnly},
      {"O_RDWR", kORdWr},
      {"O_APPEND", kOAppend},
      {"O_CREAT", kOCreat},
      {"O_TRUNC", kOTrunc},
      {"O_EXCL", kOExcl},
      {"SEEK_SET", kSeekSet},
      {"SEEK_CUR", kSeekCur},
      {"SEEK_END", kSeekEnd},
      {"TIOCGETP", kTiocGetP},
      {"TIOCSETP", kTiocSetP},
      {"TTY_ECHO", kTtyEcho},
      {"TTY_CBREAK", kTtyCbreak},
      {"TTY_RAW", kTtyRaw},
      {"TTY_CRMOD", kTtyCrMod},
      {"SIGHUP", kSigHup},
      {"SIGINT", kSigInt},
      {"SIGQUIT", kSigQuit},
      {"SIGILL", kSigIll},
      {"SIGFPE", kSigFpe},
      {"SIGKILL", kSigKill},
      {"SIGSEGV", kSigSegv},
      {"SIGPIPE", kSigPipe},
      {"SIGALRM", kSigAlrm},
      {"SIGTERM", kSigTerm},
      {"SIGCHLD", kSigChld},
      {"SIGUSR1", kSigUsr1},
      {"SIGUSR2", kSigUsr2},
      {"SIGDUMP", kSigDump},
      {"SIG_DFL", kSigDfl},
      {"SIG_IGN", kSigIgn},
      {"DATA_BASE", kDataBase},
      {"STACK_TOP", kStackTop},
  };
}

struct Line {
  int number = 0;
  std::string label;     // without the ':'
  std::string op;        // directive (with '.') or mnemonic, lower-case
  std::vector<std::string> operands;
  std::string raw;       // operand text before splitting (for string directives)
};

bool IsIdentStart(char c) { return std::isalpha(static_cast<unsigned char>(c)) || c == '_'; }
bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_' || c == '.';
}

std::string_view Trim(std::string_view s) {
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.front()))) s.remove_prefix(1);
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.back()))) s.remove_suffix(1);
  return s;
}

// Strips a comment that is not inside a double-quoted string.
std::string_view StripComment(std::string_view s) {
  bool in_string = false;
  for (size_t i = 0; i < s.size(); ++i) {
    const char c = s[i];
    if (c == '"' && (i == 0 || s[i - 1] != '\\')) in_string = !in_string;
    if (!in_string && (c == ';' || c == '#')) return s.substr(0, i);
  }
  return s;
}

// Splits operands on commas that are not inside a string literal.
std::vector<std::string> SplitOperands(std::string_view s) {
  std::vector<std::string> out;
  bool in_string = false;
  size_t begin = 0;
  for (size_t i = 0; i <= s.size(); ++i) {
    const bool at_end = i == s.size();
    const char c = at_end ? ',' : s[i];
    if (!at_end && c == '"' && (i == 0 || s[i - 1] != '\\')) in_string = !in_string;
    if (!in_string && c == ',') {
      auto piece = Trim(s.substr(begin, i - begin));
      if (!piece.empty() || !out.empty() || !at_end) {
        if (!piece.empty()) out.emplace_back(piece);
      }
      begin = i + 1;
    }
  }
  return out;
}

class Assembler {
 public:
  explicit Assembler(std::string_view source) : source_(source) {
    symbols_ = PredefinedSymbols();
  }

  AsmOutput Run() {
    ParseLines();
    Pass1();
    if (output_.errors.empty()) Pass2();
    output_.ok = output_.errors.empty();
    if (output_.ok) {
      for (const auto& [name, value] : symbols_) output_.symbols[name] = value;
      FinishImage();
    }
    return std::move(output_);
  }

 private:
  enum class Section { kText, kData };

  void Error(int line, std::string message) {
    output_.errors.push_back(AsmError{line, std::move(message)});
  }

  void ParseLines() {
    int number = 0;
    size_t pos = 0;
    while (pos <= source_.size()) {
      const size_t nl = source_.find('\n', pos);
      std::string_view raw_line =
          source_.substr(pos, nl == std::string_view::npos ? std::string_view::npos : nl - pos);
      pos = nl == std::string_view::npos ? source_.size() + 1 : nl + 1;
      ++number;

      std::string_view text = Trim(StripComment(raw_line));
      if (text.empty()) continue;

      Line line;
      line.number = number;

      // Optional leading "label:".
      if (IsIdentStart(text.front())) {
        size_t i = 1;
        while (i < text.size() && IsIdentChar(text[i])) ++i;
        if (i < text.size() && text[i] == ':') {
          line.label = std::string(text.substr(0, i));
          text = Trim(text.substr(i + 1));
        }
      }

      if (!text.empty()) {
        size_t i = 0;
        while (i < text.size() && !std::isspace(static_cast<unsigned char>(text[i]))) ++i;
        line.op = std::string(text.substr(0, i));
        for (char& c : line.op) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
        line.raw = std::string(Trim(text.substr(i)));
        line.operands = SplitOperands(line.raw);
      }
      lines_.push_back(std::move(line));
    }
  }

  // Size of the data emitted by a directive, or instruction slot, without
  // evaluating expressions (needed so labels can be forward-referenced).
  void Pass1() {
    Section section = Section::kText;
    uint32_t text_off = 0;
    uint32_t data_off = 0;
    for (const Line& line : lines_) {
      if (!line.label.empty()) {
        const int64_t value = section == Section::kText
                                  ? static_cast<int64_t>(text_off)
                                  : static_cast<int64_t>(kDataBase + data_off);
        if (!symbols_.emplace(line.label, value).second) {
          Error(line.number, "duplicate label '" + line.label + "'");
        }
      }
      if (line.op.empty()) continue;
      if (line.op == ".text") {
        section = Section::kText;
      } else if (line.op == ".data") {
        section = Section::kData;
      } else if (line.op == ".entry" || line.op == ".isa") {
        // handled in pass 2
      } else if (line.op == ".equ") {
        if (line.operands.size() != 2) {
          Error(line.number, ".equ needs a name and a value");
          continue;
        }
        // .equ values may not forward-reference labels; evaluate immediately.
        auto v = Eval(line.operands[1], line.number);
        if (v) symbols_[line.operands[0]] = *v;
      } else if (line.op == ".quad") {
        data_off += 8 * static_cast<uint32_t>(line.operands.size());
      } else if (line.op == ".byte") {
        data_off += static_cast<uint32_t>(line.operands.size());
      } else if (line.op == ".asciiz" || line.op == ".ascii") {
        auto s = ParseString(line.raw, line.number);
        if (s) data_off += static_cast<uint32_t>(s->size()) + (line.op == ".asciiz" ? 1 : 0);
      } else if (line.op == ".space") {
        auto v = Eval(line.operands.empty() ? "" : line.operands[0], line.number);
        if (v) data_off += static_cast<uint32_t>(*v);
      } else if (line.op[0] == '.') {
        Error(line.number, "unknown directive '" + line.op + "'");
      } else {
        if (section != Section::kText) {
          Error(line.number, "instruction outside .text");
          continue;
        }
        text_off += kInstrBytes;
      }
    }
  }

  void Pass2() {
    Section section = Section::kText;
    for (const Line& line : lines_) {
      if (line.op.empty()) continue;
      if (line.op == ".text") {
        section = Section::kText;
      } else if (line.op == ".data") {
        section = Section::kData;
      } else if (line.op == ".equ") {
        // already evaluated
      } else if (line.op == ".entry") {
        auto v = Eval(line.operands.empty() ? "" : line.operands[0], line.number);
        if (v) entry_ = static_cast<uint32_t>(*v);
        entry_set_ = true;
      } else if (line.op == ".isa") {
        auto v = Eval(line.operands.empty() ? "" : line.operands[0], line.number);
        if (v && (*v == 10 || *v == 20)) {
          declared_isa_ = static_cast<uint32_t>(*v);
        } else {
          Error(line.number, ".isa expects 10 or 20");
        }
      } else if (line.op == ".quad") {
        for (const std::string& operand : line.operands) {
          auto v = Eval(operand, line.number);
          EmitQuad(v.value_or(0));
        }
      } else if (line.op == ".byte") {
        for (const std::string& operand : line.operands) {
          auto v = Eval(operand, line.number);
          data_.push_back(static_cast<uint8_t>(v.value_or(0)));
        }
      } else if (line.op == ".asciiz" || line.op == ".ascii") {
        auto s = ParseString(line.raw, line.number);
        if (s) {
          data_.insert(data_.end(), s->begin(), s->end());
          if (line.op == ".asciiz") data_.push_back(0);
        }
      } else if (line.op == ".space") {
        auto v = Eval(line.operands.empty() ? "" : line.operands[0], line.number);
        if (v) data_.insert(data_.end(), static_cast<size_t>(*v), 0);
      } else {
        EmitInstruction(line);
      }
    }
    (void)section;
  }

  void EmitQuad(int64_t v) {
    for (int i = 0; i < 8; ++i) {
      data_.push_back(static_cast<uint8_t>((static_cast<uint64_t>(v) >> (8 * i)) & 0xFF));
    }
  }

  std::optional<Opcode> FindOpcode(std::string_view mnemonic) const {
    for (size_t i = 0; i < static_cast<size_t>(Opcode::kNumOpcodes); ++i) {
      if (GetOpcodeInfo(static_cast<Opcode>(i)).mnemonic == mnemonic) {
        return static_cast<Opcode>(i);
      }
    }
    return std::nullopt;
  }

  std::optional<uint8_t> ParseReg(const std::string& s, int line) {
    if (s.size() >= 2 && (s[0] == 'r' || s[0] == 'R')) {
      char* end = nullptr;
      const long n = std::strtol(s.c_str() + 1, &end, 10);
      if (end && *end == '\0' && n >= 0 && n < kNumRegs) return static_cast<uint8_t>(n);
    }
    Error(line, "expected register r0..r7, got '" + s + "'");
    return std::nullopt;
  }

  void EmitInstruction(const Line& line) {
    const auto op = FindOpcode(line.op);
    if (!op) {
      Error(line.number, "unknown mnemonic '" + line.op + "'");
      return;
    }
    const OpcodeInfo& info = GetOpcodeInfo(*op);
    if (info.level == IsaLevel::kIsa20) used_isa20_ = true;

    Instruction instr;
    instr.op = *op;
    using Shape = OpcodeInfo::Shape;
    const auto& ops = line.operands;
    auto need = [&](size_t n) {
      if (ops.size() != n) {
        Error(line.number, line.op + " expects " + std::to_string(n) + " operand(s)");
        return false;
      }
      return true;
    };
    switch (info.shape) {
      case Shape::kNone:
        if (!need(0)) return;
        break;
      case Shape::kReg: {
        if (!need(1)) return;
        auto ra = ParseReg(ops[0], line.number);
        if (!ra) return;
        instr.ra = *ra;
        break;
      }
      case Shape::kRegImm: {
        if (!need(2)) return;
        auto ra = ParseReg(ops[0], line.number);
        auto imm = Eval(ops[1], line.number);
        if (!ra || !imm) return;
        instr.ra = *ra;
        instr.imm = CheckImm(*imm, line.number);
        break;
      }
      case Shape::kRegReg: {
        if (!need(2)) return;
        auto ra = ParseReg(ops[0], line.number);
        auto rb = ParseReg(ops[1], line.number);
        if (!ra || !rb) return;
        instr.ra = *ra;
        instr.rb = *rb;
        break;
      }
      case Shape::kThreeReg: {
        if (!need(3)) return;
        auto ra = ParseReg(ops[0], line.number);
        auto rb = ParseReg(ops[1], line.number);
        auto rc = ParseReg(ops[2], line.number);
        if (!ra || !rb || !rc) return;
        instr.ra = *ra;
        instr.rb = *rb;
        instr.rc = *rc;
        break;
      }
      case Shape::kRegRegImm: {
        if (!need(3)) return;
        auto ra = ParseReg(ops[0], line.number);
        auto rb = ParseReg(ops[1], line.number);
        auto imm = Eval(ops[2], line.number);
        if (!ra || !rb || !imm) return;
        instr.ra = *ra;
        instr.rb = *rb;
        instr.imm = CheckImm(*imm, line.number);
        break;
      }
      case Shape::kImm: {
        if (!need(1)) return;
        auto imm = Eval(ops[0], line.number);
        if (!imm) return;
        instr.imm = CheckImm(*imm, line.number);
        break;
      }
    }
    const auto bytes = instr.Encode();
    text_.insert(text_.end(), bytes.begin(), bytes.end());
  }

  int32_t CheckImm(int64_t v, int line) {
    if (v < INT32_MIN || v > INT32_MAX) {
      Error(line, "immediate out of 32-bit range");
      return 0;
    }
    return static_cast<int32_t>(v);
  }

  // Expression: term (('+'|'-') term)*, term = number | 'c' | identifier.
  std::optional<int64_t> Eval(std::string_view expr, int line) {
    expr = Trim(expr);
    if (expr.empty()) {
      Error(line, "missing expression");
      return std::nullopt;
    }
    int64_t acc = 0;
    int sign = 1;
    bool first = true;
    size_t i = 0;
    while (i < expr.size()) {
      while (i < expr.size() && std::isspace(static_cast<unsigned char>(expr[i]))) ++i;
      if (!first) {
        if (i >= expr.size() || (expr[i] != '+' && expr[i] != '-')) {
          Error(line, "bad expression '" + std::string(expr) + "'");
          return std::nullopt;
        }
        sign = expr[i] == '+' ? 1 : -1;
        ++i;
        while (i < expr.size() && std::isspace(static_cast<unsigned char>(expr[i]))) ++i;
      } else if (i < expr.size() && (expr[i] == '-' || expr[i] == '+')) {
        sign = expr[i] == '-' ? -1 : 1;
        ++i;
      }
      auto term = EvalTerm(expr, &i, line);
      if (!term) return std::nullopt;
      acc += sign * *term;
      first = false;
      sign = 1;
    }
    return acc;
  }

  std::optional<int64_t> EvalTerm(std::string_view expr, size_t* i, int line) {
    if (*i >= expr.size()) {
      Error(line, "bad expression '" + std::string(expr) + "'");
      return std::nullopt;
    }
    const char c = expr[*i];
    if (c == '\'') {  // character literal
      if (*i + 2 < expr.size() && expr[*i + 1] == '\\' && expr[*i + 3] == '\'') {
        const char esc = expr[*i + 2];
        *i += 4;
        switch (esc) {
          case 'n':
            return '\n';
          case 't':
            return '\t';
          case '0':
            return 0;
          case 'r':
            return '\r';
          case '\\':
            return '\\';
          default:
            Error(line, "bad character escape");
            return std::nullopt;
        }
      }
      if (*i + 2 < expr.size() && expr[*i + 2] == '\'') {
        const char lit = expr[*i + 1];
        *i += 3;
        return lit;
      }
      Error(line, "bad character literal");
      return std::nullopt;
    }
    if (std::isdigit(static_cast<unsigned char>(c))) {
      char* end = nullptr;
      const long long v = std::strtoll(expr.data() + *i, &end, 0);
      *i = static_cast<size_t>(end - expr.data());
      return v;
    }
    if (IsIdentStart(c)) {
      size_t j = *i + 1;
      while (j < expr.size() && IsIdentChar(expr[j])) ++j;
      const std::string name(expr.substr(*i, j - *i));
      *i = j;
      auto it = symbols_.find(name);
      if (it == symbols_.end()) {
        Error(line, "undefined symbol '" + name + "'");
        return std::nullopt;
      }
      return it->second;
    }
    Error(line, "bad expression '" + std::string(expr) + "'");
    return std::nullopt;
  }

  std::optional<std::string> ParseString(std::string_view raw, int line) {
    raw = Trim(raw);
    if (raw.size() < 2 || raw.front() != '"' || raw.back() != '"') {
      Error(line, "expected a double-quoted string");
      return std::nullopt;
    }
    std::string out;
    for (size_t i = 1; i + 1 < raw.size(); ++i) {
      char c = raw[i];
      if (c == '\\' && i + 2 < raw.size()) {
        ++i;
        switch (raw[i]) {
          case 'n':
            c = '\n';
            break;
          case 't':
            c = '\t';
            break;
          case 'r':
            c = '\r';
            break;
          case '0':
            c = '\0';
            break;
          case '\\':
            c = '\\';
            break;
          case '"':
            c = '"';
            break;
          default:
            Error(line, "bad string escape");
            return std::nullopt;
        }
      }
      out.push_back(c);
    }
    return out;
  }

  void FinishImage() {
    output_.image.text = std::move(text_);
    output_.image.data = std::move(data_);
    output_.image.header.text_size = static_cast<uint32_t>(output_.image.text.size());
    output_.image.header.data_size = static_cast<uint32_t>(output_.image.data.size());
    if (!entry_set_) {
      auto it = symbols_.find("start");
      if (it != symbols_.end()) entry_ = static_cast<uint32_t>(it->second);
    }
    output_.image.header.entry = entry_;
    output_.image.header.machtype = declared_isa_ != 0 ? declared_isa_ : (used_isa20_ ? 20 : 10);
  }

  std::string_view source_;
  std::vector<Line> lines_;
  std::map<std::string, int64_t, std::less<>> symbols_;
  std::vector<uint8_t> text_;
  std::vector<uint8_t> data_;
  uint32_t entry_ = 0;
  bool entry_set_ = false;
  uint32_t declared_isa_ = 0;
  bool used_isa20_ = false;
  AsmOutput output_;
};

}  // namespace

AsmOutput Assemble(std::string_view source) { return Assembler(source).Run(); }

AoutImage MustAssemble(std::string_view source) {
  AsmOutput out = Assemble(source);
  if (!out.ok) {
    for (const AsmError& e : out.errors) {
      std::fprintf(stderr, "asm error at line %d: %s\n", e.line, e.message.c_str());
    }
    std::abort();
  }
  return std::move(out.image);
}

}  // namespace pmig::vm
