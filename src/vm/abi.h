// The machine/kernel ABI: system-call numbers, open flags, seek modes, ioctl
// requests, and signal numbers as seen by programs running on the simulated CPU.
//
// Numbers follow 4.2BSD where the call existed there; the paper's additions
// (SIGDUMP, rest_proc(), and the Section 7 "real identity" calls) take numbers past
// the historical ones. The assembler predefines every symbolic name in this header
// so test programs read like real Unix assembly.

#ifndef PMIG_SRC_VM_ABI_H_
#define PMIG_SRC_VM_ABI_H_

#include <cstdint>

namespace pmig::vm::abi {

// System-call numbers (trap immediate).
enum Sys : int32_t {
  kSysExit = 1,
  kSysFork = 2,
  kSysRead = 3,
  kSysWrite = 4,
  kSysOpen = 5,
  kSysClose = 6,
  kSysWait = 7,
  kSysCreat = 8,
  kSysLink = 9,
  kSysUnlink = 10,
  kSysChdir = 12,
  kSysTime = 13,       // seconds of virtual time since cluster boot
  kSysBrk = 17,        // sbrk: r0 = signed increment in bytes; returns the OLD
                       // break address (end of data), or -ENOMEM
  kSysLseek = 19,
  kSysGetPid = 20,
  kSysKill = 37,
  kSysDup = 41,
  kSysPipe = 42,
  kSysSignal = 48,     // set signal disposition: r0 = signo, r1 = handler addr / 0 / 1
  kSysIoctl = 54,
  kSysReadlink = 58,
  kSysExecve = 59,
  kSysGetHostname = 60,  // r0 = buf, r1 = len
  kSysSetReUid = 61,     // r0 = ruid, r1 = euid
  kSysGetUid = 62,
  kSysGetPpid = 64,
  kSysSleep = 70,        // r0 = seconds (real Unix uses alarm()+pause(); one call here)
  kSysSocket = 71,       // degenerate local socket, enough to exercise the limitation
  kSysGetCwd = 72,       // r0 = buf, r1 = len (the 4.3BSD getwd() goes via /bin/pwd;
                         // our kernel can answer directly thanks to the 5.1 tracking)
  kSysRename = 128,      // r0 = from path, r1 = to path (4.3BSD number)
  kSysMkdir = 136,       // r0 = path, r1 = mode
  kSysRmdir = 137,       // r0 = path
  kSysStat = 38,         // r0 = path, r1 = buf (writes {type,size,uid,mode} as 4 quads)
  // --- the paper's additions ---
  kSysRestProc = 100,    // r0 = a.out path, r1 = stack-file path
  kSysGetPidReal = 101,      // Section 7 proposal: true pid regardless of migration
  kSysGetHostnameReal = 102, // Section 7 proposal: true hostname
};

// open() flags (4.2BSD values, octal).
enum OpenFlags : int32_t {
  kORdOnly = 0,
  kOWrOnly = 1,
  kORdWr = 2,
  kOAppend = 00010,
  kOCreat = 01000,
  kOTrunc = 02000,
  kOExcl = 04000,
};
constexpr int32_t kAccMode = 3;  // mask selecting the access mode from flags

// lseek() whence.
enum Whence : int32_t { kSeekSet = 0, kSeekCur = 1, kSeekEnd = 2 };

// ioctl() requests for the tty line discipline (modelled on TIOCGETP/TIOCSETP).
enum Ioctl : int32_t {
  kTiocGetP = 1,  // read tty flags into mem16[r2]
  kTiocSetP = 2,  // set tty flags from mem16[r2]
};

// Tty mode flag bits (a condensed sgttyb sg_flags).
enum TtyFlags : uint16_t {
  kTtyEcho = 0x0008,   // echo input characters
  kTtyCbreak = 0x0002, // deliver characters without waiting for newline
  kTtyRaw = 0x0020,    // no input/output processing at all
  kTtyCrMod = 0x0010,  // map \r to \n on input, emit \r\n for \n
};
constexpr uint16_t kTtyDefaultFlags = kTtyEcho | kTtyCrMod;  // "cooked" mode

// Signal numbers.
enum Sig : int32_t {
  kSigHup = 1,
  kSigInt = 2,
  kSigQuit = 3,   // terminates with a core dump; SIGDUMP is modelled on its code path
  kSigIll = 4,
  kSigFpe = 8,
  kSigKill = 9,
  kSigSegv = 11,
  kSigPipe = 13,
  kSigAlrm = 14,
  kSigTerm = 15,
  kSigChld = 20,
  kSigUsr1 = 30,
  kSigUsr2 = 31,
  kSigDump = 32,  // the paper's new signal
};
constexpr int32_t kNSig = 33;

// Signal dispositions passed to kSysSignal as the handler argument.
constexpr int64_t kSigDfl = 0;
constexpr int64_t kSigIgn = 1;

}  // namespace pmig::vm::abi

#endif  // PMIG_SRC_VM_ABI_H_
