#include "src/vm/disassembler.h"

#include <cstdio>

namespace pmig::vm {

std::string DisassembleInstruction(const Instruction& in) {
  const OpcodeInfo& info = GetOpcodeInfo(in.op);
  char buf[96];
  using Shape = OpcodeInfo::Shape;
  const auto m = std::string(info.mnemonic);
  switch (info.shape) {
    case Shape::kNone:
      std::snprintf(buf, sizeof(buf), "%s", m.c_str());
      break;
    case Shape::kReg:
      std::snprintf(buf, sizeof(buf), "%s r%d", m.c_str(), in.ra);
      break;
    case Shape::kRegImm:
      std::snprintf(buf, sizeof(buf), "%s r%d, %d", m.c_str(), in.ra, in.imm);
      break;
    case Shape::kRegReg:
      std::snprintf(buf, sizeof(buf), "%s r%d, r%d", m.c_str(), in.ra, in.rb);
      break;
    case Shape::kThreeReg:
      std::snprintf(buf, sizeof(buf), "%s r%d, r%d, r%d", m.c_str(), in.ra, in.rb, in.rc);
      break;
    case Shape::kRegRegImm:
      std::snprintf(buf, sizeof(buf), "%s r%d, r%d, %d", m.c_str(), in.ra, in.rb, in.imm);
      break;
    case Shape::kImm:
      std::snprintf(buf, sizeof(buf), "%s %d", m.c_str(), in.imm);
      break;
  }
  return buf;
}

std::string DisassembleText(const std::vector<uint8_t>& text) {
  std::string out;
  for (size_t off = 0; off + kInstrBytes <= text.size(); off += kInstrBytes) {
    char head[32];
    std::snprintf(head, sizeof(head), "%6zu: ", off);
    out += head;
    out += DisassembleInstruction(Instruction::Decode(text.data() + off));
    out += '\n';
  }
  return out;
}

}  // namespace pmig::vm
