// The CPU executor and the migratable machine context.
//
// A VmContext is the complete machine-level state of a running program: text, data,
// stack segments plus registers. It is exactly the state the paper's SIGDUMP writes
// out (text+data into a.outXXXXX; stack, registers into stackXXXXX) and rest_proc()
// reads back, so a migrated process in this repository really is reconstructed from
// bytes that crossed the (simulated) network.

#ifndef PMIG_SRC_VM_CPU_H_
#define PMIG_SRC_VM_CPU_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/vm/aout.h"
#include "src/vm/isa.h"

namespace pmig::vm {

struct CpuState {
  int64_t regs[kNumRegs] = {};
  uint32_t pc = 0;
  uint32_t sp = kStackTop;

  bool operator==(const CpuState&) const = default;
};

enum class Fault : uint8_t {
  kNone = 0,
  kIllegalInstruction,  // undefined opcode or kHalt
  kIsaViolation,        // kIsa20 instruction on a kIsa10 machine
  kBadAddress,          // load/store/fetch outside mapped segments, or store to text
  kDivideByZero,
  kStackOverflow,       // sp pushed below kStackBase
};

std::string_view FaultName(Fault f);

enum class StopReason : uint8_t {
  kSteps,    // step budget exhausted (preempted)
  kSyscall,  // executed SYS; number in Cpu::last_syscall()
  kFault,    // faulted; kind in Cpu::last_fault()
};

// Dirty-tracking granule: 1 KB, matching the cost model's disk_block_bytes, so a
// dirty page maps one-to-one onto a disk block in the delta dump.
constexpr uint32_t kDirtyPageBytes = 1024;

// Page-granular dirty tracking for the incremental dump path (opt-in via
// KernelConfig::track_dirty_pages). Text is immutable after load and is tracked
// once by content digest; data is tracked against a stable `base` snapshot taken
// at arm time, so a delta dump is always cumulative against one well-known base
// (no chain replay on restore). The stack is tracked too, but only for
// observability — stacks are small and always dumped in full.
struct DirtyTracking {
  bool armed = false;
  uint64_t text_digest = 0;  // FNV-1a of the text segment at arm time
  uint64_t base_digest = 0;  // FNV-1a of `base`
  std::vector<uint8_t> base;  // the data segment as of arming (the delta base)
  std::vector<bool> data_dirty;   // one flag per kDirtyPageBytes page of data
  std::vector<bool> stack_dirty;  // one flag per page of [kStackBase, kStackTop)

  int64_t CountDataDirty() const;
  int64_t CountStackDirty() const;
};

// The migratable machine context.
struct VmContext {
  std::vector<uint8_t> text;
  std::vector<uint8_t> data;
  // Backing store for the whole possible stack region [kStackBase, kStackTop).
  // Only [sp, kStackTop) is meaningful and only that slice is dumped.
  std::vector<uint8_t> stack = std::vector<uint8_t>(kStackMax, 0);
  CpuState cpu;
  DirtyTracking dirty;

  // Loads an executable image: resets segments and registers, pc at entry, empty
  // stack. (The modified execve() of Section 5.2 instead pre-sizes the stack; that
  // logic lives in the kernel.)
  void LoadImage(const AoutImage& image);

  // Arms dirty tracking with the current data segment as the delta base (used at
  // exec time). Clears both bitmaps and computes the text/base digests.
  void ArmDirtyTracking();
  // Arms with an explicit base (a restored process: `base` is the original
  // exec-time data, `dirty_pages` are the pages the restored image differs in).
  // Requires base.size() == data.size(); returns false otherwise.
  bool ArmDirtyTrackingWithBase(std::vector<uint8_t> base,
                                const std::vector<uint32_t>& dirty_pages);
  // Records a data-segment resize (sbrk) in the dirty state: pages covering the
  // resized range are marked dirty, since the bytes there change (shrink
  // discards, regrow zero-fills) without any tracked write. No-op when disarmed.
  void NoteDataResize(size_t old_size, size_t new_size);

  // The dumped stack: bytes from sp to kStackTop.
  uint32_t StackSize() const { return kStackTop - cpu.sp; }
  std::vector<uint8_t> StackContents() const;
  // Restores a previously dumped stack: sp = kStackTop - contents.size().
  bool SetStackContents(const std::vector<uint8_t>& contents);

  // --- Memory access (data + stack are read/write; text is fetch-only) ---
  bool ReadBytes(uint32_t addr, uint32_t len, uint8_t* out) const;
  bool WriteBytes(uint32_t addr, uint32_t len, const uint8_t* in);
  bool ReadU64(uint32_t addr, int64_t* out) const;
  bool WriteU64(uint32_t addr, int64_t value);
  bool ReadU16(uint32_t addr, uint16_t* out) const;
  bool WriteU16(uint32_t addr, uint16_t value);
  // Reads a NUL-terminated string of at most `max_len` bytes (excluding NUL).
  bool ReadCString(uint32_t addr, uint32_t max_len, std::string* out) const;
  bool WriteCString(uint32_t addr, const std::string& s);  // writes s + NUL

 private:
  // Flags the pages covered by a completed write. Every mutation of data/stack
  // funnels through WriteBytes, so this is the single tracking point.
  void MarkDirty(uint32_t addr, uint32_t len);
};

// Executes instructions against a VmContext.
class Cpu {
 public:
  // `machine_level` is the ISA of the machine this context is running on.
  explicit Cpu(IsaLevel machine_level) : machine_level_(machine_level) {}

  // Runs up to `max_steps` instructions. Returns why execution stopped. On
  // kSyscall the pc has advanced past the SYS instruction (rewind by kInstrBytes to
  // re-execute it, which is how interrupted blocking syscalls restart).
  StopReason Run(VmContext& ctx, int64_t max_steps);

  int64_t steps_executed() const { return steps_executed_; }
  int32_t last_syscall() const { return last_syscall_; }
  Fault last_fault() const { return last_fault_; }

 private:
  StopReason StepOnce(VmContext& ctx);

  IsaLevel machine_level_;
  int64_t steps_executed_ = 0;
  int32_t last_syscall_ = 0;
  Fault last_fault_ = Fault::kNone;
};

}  // namespace pmig::vm

#endif  // PMIG_SRC_VM_CPU_H_
