// The executable file format ("a.out").
//
// SIGDUMP's first dump file is "an executable obtained by dumping the text and data
// segments of the process, and prepending a suitable header that will make UNIX
// recognise the file as an executable" (Section 4.3). We use the same scheme: a
// small header (magic 0407, like OMAGIC a.out; machine type, like Sun's a_machtype;
// segment sizes; entry point) followed by the raw text and data bytes. Executing a
// dumped image from scratch behaves like the paper's `undump`: the program starts at
// its entry point but every static variable holds the value it had at dump time.

#ifndef PMIG_SRC_VM_AOUT_H_
#define PMIG_SRC_VM_AOUT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/sim/result.h"
#include "src/vm/isa.h"

namespace pmig::vm {

// 0407 octal: the original PDP-11 a.out magic.
constexpr uint32_t kAoutMagic = 0407;

struct AoutHeader {
  uint32_t magic = kAoutMagic;
  uint32_t machtype = 10;  // 10 = kIsa10, 20 = kIsa20
  uint32_t text_size = 0;
  uint32_t data_size = 0;
  uint32_t entry = 0;  // byte offset into the text segment
};
constexpr size_t kAoutHeaderBytes = 5 * sizeof(uint32_t);

// A loaded (or to-be-written) executable image.
struct AoutImage {
  AoutHeader header;
  std::vector<uint8_t> text;
  std::vector<uint8_t> data;

  IsaLevel isa_level() const {
    return header.machtype >= 20 ? IsaLevel::kIsa20 : IsaLevel::kIsa10;
  }

  // Serialises header + text + data into the on-disk byte stream.
  std::vector<uint8_t> Serialize() const;

  // Parses and validates an executable file. Fails with kNoExec on a bad magic or
  // inconsistent sizes.
  static Result<AoutImage> Parse(const std::vector<uint8_t>& bytes);
};

}  // namespace pmig::vm

#endif  // PMIG_SRC_VM_AOUT_H_
