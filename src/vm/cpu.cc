#include "src/vm/cpu.h"

#include <algorithm>
#include <cstring>

#include "src/sim/hash.h"

namespace pmig::vm {

std::string_view FaultName(Fault f) {
  switch (f) {
    case Fault::kNone:
      return "none";
    case Fault::kIllegalInstruction:
      return "illegal instruction";
    case Fault::kIsaViolation:
      return "isa violation";
    case Fault::kBadAddress:
      return "bad address";
    case Fault::kDivideByZero:
      return "divide by zero";
    case Fault::kStackOverflow:
      return "stack overflow";
  }
  return "?";
}

void VmContext::LoadImage(const AoutImage& image) {
  text = image.text;
  data = image.data;
  stack.assign(kStackMax, 0);
  cpu = CpuState{};
  cpu.pc = image.header.entry;
  cpu.sp = kStackTop;
  dirty = DirtyTracking{};  // a fresh image disarms tracking; the kernel re-arms
}

int64_t DirtyTracking::CountDataDirty() const {
  return std::count(data_dirty.begin(), data_dirty.end(), true);
}

int64_t DirtyTracking::CountStackDirty() const {
  return std::count(stack_dirty.begin(), stack_dirty.end(), true);
}

void VmContext::ArmDirtyTracking() {
  dirty.armed = true;
  dirty.text_digest = sim::HashBytes(text);
  dirty.base = data;
  dirty.base_digest = sim::HashBytes(dirty.base);
  dirty.data_dirty.assign((data.size() + kDirtyPageBytes - 1) / kDirtyPageBytes, false);
  dirty.stack_dirty.assign(kStackMax / kDirtyPageBytes, false);
}

bool VmContext::ArmDirtyTrackingWithBase(std::vector<uint8_t> base,
                                         const std::vector<uint32_t>& dirty_pages) {
  if (base.size() != data.size()) return false;
  ArmDirtyTracking();
  dirty.base = std::move(base);
  dirty.base_digest = sim::HashBytes(dirty.base);
  for (const uint32_t page : dirty_pages) {
    if (page < dirty.data_dirty.size()) dirty.data_dirty[page] = true;
  }
  return true;
}

void VmContext::MarkDirty(uint32_t addr, uint32_t len) {
  const uint32_t last = addr + len - 1;  // len > 0 checked by the caller
  if (addr >= kDataBase && last < kDataBase + data.size()) {
    // The bitmap was sized at arm time; sbrk() may have grown the segment since,
    // so pages past the bitmap are untrackable. That is safe: a dump whose data
    // size differs from the base falls back to a full dump (BuildSigdump).
    const uint32_t tracked = static_cast<uint32_t>(dirty.data_dirty.size());
    for (uint32_t page = (addr - kDataBase) / kDirtyPageBytes;
         page <= (last - kDataBase) / kDirtyPageBytes && page < tracked; ++page) {
      dirty.data_dirty[page] = true;
    }
  } else if (addr >= kStackBase && last < kStackTop) {
    for (uint32_t page = (addr - kStackBase) / kDirtyPageBytes;
         page <= (last - kStackBase) / kDirtyPageBytes; ++page) {
      dirty.stack_dirty[page] = true;
    }
  }
}

void VmContext::NoteDataResize(size_t old_size, size_t new_size) {
  if (!dirty.armed || old_size == new_size || dirty.data_dirty.empty()) return;
  // A resize changes bytes without going through WriteBytes: everything from the
  // low-water mark up is discarded on shrink and zero-filled on a later regrow.
  // Mark those pages dirty so a delta taken once the size is back at the base's
  // still reconstructs bit-exactly. Pages past the bitmap need no marking — with
  // the size off the base's, the dump falls back to full anyway.
  const size_t lo = std::min(old_size, new_size);
  const size_t hi = std::max(old_size, new_size);
  const size_t last = std::min((hi - 1) / kDirtyPageBytes, dirty.data_dirty.size() - 1);
  for (size_t page = lo / kDirtyPageBytes; page <= last; ++page) {
    dirty.data_dirty[page] = true;
  }
}

std::vector<uint8_t> VmContext::StackContents() const {
  const uint32_t size = StackSize();
  std::vector<uint8_t> out(size);
  if (size > 0) {
    std::memcpy(out.data(), stack.data() + (cpu.sp - kStackBase), size);
  }
  return out;
}

bool VmContext::SetStackContents(const std::vector<uint8_t>& contents) {
  if (contents.size() > kStackMax) return false;
  stack.assign(kStackMax, 0);
  cpu.sp = kStackTop - static_cast<uint32_t>(contents.size());
  if (!contents.empty()) {
    std::memcpy(stack.data() + (cpu.sp - kStackBase), contents.data(), contents.size());
  }
  return true;
}

namespace {

// Resolves a [addr, addr+len) range to a backing pointer within one segment, or
// nullptr. Text is excluded: it is execute-only, as on a real split-I/D machine.
const uint8_t* ResolveRead(const VmContext& ctx, uint32_t addr, uint32_t len) {
  if (len == 0) return reinterpret_cast<const uint8_t*>(&ctx);  // any non-null
  if (addr >= kDataBase && addr + len > addr &&
      addr + len <= kDataBase + ctx.data.size()) {
    return ctx.data.data() + (addr - kDataBase);
  }
  if (addr >= kStackBase && addr + len > addr && addr + len <= kStackTop) {
    return ctx.stack.data() + (addr - kStackBase);
  }
  return nullptr;
}

uint8_t* ResolveWrite(VmContext& ctx, uint32_t addr, uint32_t len) {
  return const_cast<uint8_t*>(ResolveRead(ctx, addr, len));
}

}  // namespace

bool VmContext::ReadBytes(uint32_t addr, uint32_t len, uint8_t* out) const {
  const uint8_t* p = ResolveRead(*this, addr, len);
  if (p == nullptr) return false;
  if (len > 0) std::memcpy(out, p, len);
  return true;
}

bool VmContext::WriteBytes(uint32_t addr, uint32_t len, const uint8_t* in) {
  uint8_t* p = ResolveWrite(*this, addr, len);
  if (p == nullptr) return false;
  if (len > 0) {
    std::memcpy(p, in, len);
    if (dirty.armed) MarkDirty(addr, len);
  }
  return true;
}

bool VmContext::ReadU64(uint32_t addr, int64_t* out) const {
  uint8_t buf[8];
  if (!ReadBytes(addr, 8, buf)) return false;
  uint64_t v = 0;
  for (int i = 7; i >= 0; --i) v = (v << 8) | buf[i];
  *out = static_cast<int64_t>(v);
  return true;
}

bool VmContext::WriteU64(uint32_t addr, int64_t value) {
  uint8_t buf[8];
  const auto u = static_cast<uint64_t>(value);
  for (int i = 0; i < 8; ++i) buf[i] = static_cast<uint8_t>((u >> (8 * i)) & 0xFF);
  return WriteBytes(addr, 8, buf);
}

bool VmContext::ReadU16(uint32_t addr, uint16_t* out) const {
  uint8_t buf[2];
  if (!ReadBytes(addr, 2, buf)) return false;
  *out = static_cast<uint16_t>(buf[0] | (buf[1] << 8));
  return true;
}

bool VmContext::WriteU16(uint32_t addr, uint16_t value) {
  uint8_t buf[2] = {static_cast<uint8_t>(value & 0xFF), static_cast<uint8_t>(value >> 8)};
  return WriteBytes(addr, 2, buf);
}

bool VmContext::ReadCString(uint32_t addr, uint32_t max_len, std::string* out) const {
  out->clear();
  for (uint32_t i = 0; i <= max_len; ++i) {
    uint8_t c;
    if (!ReadBytes(addr + i, 1, &c)) return false;
    if (c == 0) return true;
    out->push_back(static_cast<char>(c));
  }
  return false;  // unterminated within max_len
}

bool VmContext::WriteCString(uint32_t addr, const std::string& s) {
  if (!WriteBytes(addr, static_cast<uint32_t>(s.size()),
                  reinterpret_cast<const uint8_t*>(s.data()))) {
    return false;
  }
  const uint8_t nul = 0;
  return WriteBytes(addr + static_cast<uint32_t>(s.size()), 1, &nul);
}

StopReason Cpu::Run(VmContext& ctx, int64_t max_steps) {
  steps_executed_ = 0;
  last_fault_ = Fault::kNone;
  while (steps_executed_ < max_steps) {
    const StopReason reason = StepOnce(ctx);
    ++steps_executed_;
    if (reason != StopReason::kSteps) return reason;
  }
  return StopReason::kSteps;
}

StopReason Cpu::StepOnce(VmContext& ctx) {
  CpuState& cpu = ctx.cpu;
  if (cpu.pc + kInstrBytes > ctx.text.size() || cpu.pc % kInstrBytes != 0) {
    last_fault_ = Fault::kBadAddress;
    return StopReason::kFault;
  }
  const Instruction in = Instruction::Decode(ctx.text.data() + cpu.pc);
  const OpcodeInfo& info = GetOpcodeInfo(in.op);
  if (in.op >= Opcode::kNumOpcodes) {
    last_fault_ = Fault::kIllegalInstruction;
    return StopReason::kFault;
  }
  if (!IsaCompatible(info.level, machine_level_)) {
    last_fault_ = Fault::kIsaViolation;
    return StopReason::kFault;
  }
  if ((in.ra >= kNumRegs && info.shape != OpcodeInfo::Shape::kNone &&
       info.shape != OpcodeInfo::Shape::kImm) ||
      in.rb >= kNumRegs || in.rc >= kNumRegs) {
    last_fault_ = Fault::kIllegalInstruction;
    return StopReason::kFault;
  }
  cpu.pc += kInstrBytes;  // default: fall through; branches overwrite

  auto fault = [&](Fault f) {
    cpu.pc -= kInstrBytes;  // leave pc at the faulting instruction
    last_fault_ = f;
    return StopReason::kFault;
  };

  int64_t* r = cpu.regs;
  switch (in.op) {
    case Opcode::kNop:
      break;
    case Opcode::kMovI:
      r[in.ra] = in.imm;
      break;
    case Opcode::kMov:
      r[in.ra] = r[in.rb];
      break;
    case Opcode::kAdd:
      r[in.ra] = r[in.rb] + r[in.rc];
      break;
    case Opcode::kSub:
      r[in.ra] = r[in.rb] - r[in.rc];
      break;
    case Opcode::kMul:
    case Opcode::kLMul:
      r[in.ra] = r[in.rb] * r[in.rc];
      break;
    case Opcode::kDiv:
      if (r[in.rc] == 0) return fault(Fault::kDivideByZero);
      r[in.ra] = r[in.rb] / r[in.rc];
      break;
    case Opcode::kMod:
      if (r[in.rc] == 0) return fault(Fault::kDivideByZero);
      r[in.ra] = r[in.rb] % r[in.rc];
      break;
    case Opcode::kAnd:
      r[in.ra] = r[in.rb] & r[in.rc];
      break;
    case Opcode::kOr:
      r[in.ra] = r[in.rb] | r[in.rc];
      break;
    case Opcode::kXor:
      r[in.ra] = r[in.rb] ^ r[in.rc];
      break;
    case Opcode::kShl:
      r[in.ra] = r[in.rb] << (r[in.rc] & 63);
      break;
    case Opcode::kShr:
      r[in.ra] = static_cast<int64_t>(static_cast<uint64_t>(r[in.rb]) >> (r[in.rc] & 63));
      break;
    case Opcode::kAddI:
      r[in.ra] = r[in.rb] + in.imm;
      break;
    case Opcode::kLd: {
      int64_t v;
      if (!ctx.ReadU64(static_cast<uint32_t>(r[in.rb] + in.imm), &v)) {
        return fault(Fault::kBadAddress);
      }
      r[in.ra] = v;
      break;
    }
    case Opcode::kLdB: {
      uint8_t v;
      if (!ctx.ReadBytes(static_cast<uint32_t>(r[in.rb] + in.imm), 1, &v)) {
        return fault(Fault::kBadAddress);
      }
      r[in.ra] = v;
      break;
    }
    case Opcode::kSt:
      if (!ctx.WriteU64(static_cast<uint32_t>(r[in.rb] + in.imm), r[in.ra])) {
        return fault(Fault::kBadAddress);
      }
      break;
    case Opcode::kStB: {
      const uint8_t v = static_cast<uint8_t>(r[in.ra] & 0xFF);
      if (!ctx.WriteBytes(static_cast<uint32_t>(r[in.rb] + in.imm), 1, &v)) {
        return fault(Fault::kBadAddress);
      }
      break;
    }
    case Opcode::kPush:
      if (cpu.sp < kStackBase + 8) return fault(Fault::kStackOverflow);
      cpu.sp -= 8;
      if (!ctx.WriteU64(cpu.sp, r[in.ra])) return fault(Fault::kBadAddress);
      break;
    case Opcode::kPop: {
      int64_t v;
      if (cpu.sp + 8 > kStackTop) return fault(Fault::kBadAddress);
      if (!ctx.ReadU64(cpu.sp, &v)) return fault(Fault::kBadAddress);
      cpu.sp += 8;
      r[in.ra] = v;
      break;
    }
    case Opcode::kJmp:
      cpu.pc = static_cast<uint32_t>(in.imm);
      break;
    case Opcode::kCall:
      if (cpu.sp < kStackBase + 8) return fault(Fault::kStackOverflow);
      cpu.sp -= 8;
      if (!ctx.WriteU64(cpu.sp, cpu.pc)) return fault(Fault::kBadAddress);
      cpu.pc = static_cast<uint32_t>(in.imm);
      break;
    case Opcode::kRet: {
      int64_t v;
      if (cpu.sp + 8 > kStackTop) return fault(Fault::kBadAddress);
      if (!ctx.ReadU64(cpu.sp, &v)) return fault(Fault::kBadAddress);
      cpu.sp += 8;
      cpu.pc = static_cast<uint32_t>(v);
      break;
    }
    case Opcode::kBeq:
      if (r[in.ra] == r[in.rb]) cpu.pc = static_cast<uint32_t>(in.imm);
      break;
    case Opcode::kBne:
      if (r[in.ra] != r[in.rb]) cpu.pc = static_cast<uint32_t>(in.imm);
      break;
    case Opcode::kBlt:
      if (r[in.ra] < r[in.rb]) cpu.pc = static_cast<uint32_t>(in.imm);
      break;
    case Opcode::kBge:
      if (r[in.ra] >= r[in.rb]) cpu.pc = static_cast<uint32_t>(in.imm);
      break;
    case Opcode::kBfExt: {
      const int shift = in.imm & 0xFF;
      const int width = (in.imm >> 8) & 0xFF;
      const uint64_t mask = width >= 64 ? ~uint64_t{0} : ((uint64_t{1} << width) - 1);
      r[in.ra] = static_cast<int64_t>((static_cast<uint64_t>(r[in.rb]) >> shift) & mask);
      break;
    }
    case Opcode::kRdSp:
      r[in.ra] = cpu.sp;
      break;
    case Opcode::kSys:
      last_syscall_ = in.imm;
      return StopReason::kSyscall;
    case Opcode::kHalt:
      return fault(Fault::kIllegalInstruction);
    case Opcode::kNumOpcodes:
      return fault(Fault::kIllegalInstruction);
  }
  return StopReason::kSteps;
}

}  // namespace pmig::vm
