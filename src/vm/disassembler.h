// Disassembler: renders encoded text segments back to assembly. Used by tests
// (encode/decode round trips), by core-dump inspection, and by examples that print
// what a migrated program is executing.

#ifndef PMIG_SRC_VM_DISASSEMBLER_H_
#define PMIG_SRC_VM_DISASSEMBLER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/vm/isa.h"

namespace pmig::vm {

// One instruction, e.g. "addi r0, r0, 1".
std::string DisassembleInstruction(const Instruction& in);

// Whole text segment, one line per instruction, prefixed with the byte offset.
std::string DisassembleText(const std::vector<uint8_t>& text);

}  // namespace pmig::vm

#endif  // PMIG_SRC_VM_DISASSEMBLER_H_
