// Instruction-set architecture of the simulated workstation CPU.
//
// The paper migrates processes between Sun-2 (MC68010) and Sun-3 (MC68020)
// workstations, and Section 7 notes that migration is only possible toward a CPU
// whose instruction set is a *superset* of the source's. We model this with a small
// load/store register machine with two ISA levels: kIsa10 (base) and kIsa20 (adds a
// few instructions). A process whose text contains kIsa20-only opcodes dies with an
// illegal-instruction fault when run (or migrated onto) a kIsa10 machine, exactly
// like running 68020 code on a 68010.
//
// Machine model:
//   * eight 64-bit data registers r0..r7, a program counter, a stack pointer;
//   * a text segment at address 0 (execute-only), a data segment at kDataBase, and a
//     stack growing down from kStackTop (at most kStackMax bytes);
//   * fixed 8-byte instructions: opcode, three register fields, 32-bit immediate.
//
// This state — text, data, stack, registers — is exactly what SIGDUMP saves and
// rest_proc() restores, so migration in this repository is genuine state transfer.

#ifndef PMIG_SRC_VM_ISA_H_
#define PMIG_SRC_VM_ISA_H_

#include <array>
#include <cstdint>
#include <string_view>

namespace pmig::vm {

// Address-space layout (byte addresses).
constexpr uint32_t kTextBase = 0;
constexpr uint32_t kDataBase = 0x100000;   // 1 MB
constexpr uint32_t kStackTop = 0x800000;   // 8 MB; sp starts here, grows down
constexpr uint32_t kStackMax = 0x40000;    // 256 KB of stack at most
constexpr uint32_t kStackBase = kStackTop - kStackMax;

constexpr int kNumRegs = 8;
constexpr int kInstrBytes = 8;

// ISA level of a machine or an instruction. kIsa20 machines execute everything;
// kIsa10 machines fault on kIsa20-only opcodes.
enum class IsaLevel : uint8_t {
  kIsa10 = 10,  // "MC68010": the base instruction set
  kIsa20 = 20,  // "MC68020": superset
};

// True if code requiring `needed` can run on a machine providing `provided`.
constexpr bool IsaCompatible(IsaLevel needed, IsaLevel provided) {
  return static_cast<uint8_t>(needed) <= static_cast<uint8_t>(provided);
}

enum class Opcode : uint8_t {
  kNop = 0,
  // Data movement.
  kMovI,    // ra <- imm (sign-extended 32-bit)
  kMov,     // ra <- rb
  // Arithmetic / logic (ra <- rb OP rc).
  kAdd,
  kSub,
  kMul,
  kDiv,     // faults on divide-by-zero
  kMod,
  kAnd,
  kOr,
  kXor,
  kShl,
  kShr,
  kAddI,    // ra <- rb + imm
  // Memory (data/stack segments only; text is execute-only).
  kLd,      // ra <- mem64[rb + imm]
  kLdB,     // ra <- zero-extended mem8[rb + imm]
  kSt,      // mem64[rb + imm] <- ra
  kStB,     // mem8[rb + imm] <- low byte of ra
  // Stack.
  kPush,    // sp -= 8; mem64[sp] <- ra
  kPop,     // ra <- mem64[sp]; sp += 8
  // Control flow.
  kJmp,     // pc <- imm
  kCall,    // push return pc; pc <- imm
  kRet,     // pop pc
  kBeq,     // if ra == rb: pc <- imm
  kBne,
  kBlt,     // signed
  kBge,
  kRdSp,    // ra <- sp (move from the stack-pointer register, like MOVE.L A7,Dn)
  // Kernel trap: system call number in imm, arguments in r0..r3, result in r0
  // (negative values are -errno, as on the PDP-11/VAX Unix trap interface).
  kSys,
  kHalt,    // stop with an illegal-halt fault (programs should call SYS exit)
  // --- kIsa20-only instructions ("68020 extensions") ---
  kLMul,    // ra <- rb * rc (identical result to kMul; exists to model ISA level)
  kBfExt,   // ra <- (rb >> imm[0..7]) & ((1 << imm[8..15]) - 1)  bit-field extract

  kNumOpcodes,
};

struct OpcodeInfo {
  std::string_view mnemonic;
  IsaLevel level;
  // Operand shape used by the assembler/disassembler.
  enum class Shape : uint8_t {
    kNone,       // nop, ret, halt
    kRegImm,     // movi ra, imm
    kRegReg,     // mov ra, rb
    kThreeReg,   // add ra, rb, rc
    kRegRegImm,  // addi ra, rb, imm ; ld ra, rb, imm ; beq ra, rb, label
    kReg,        // push ra
    kImm,        // jmp label ; sys n
  } shape;
};

const OpcodeInfo& GetOpcodeInfo(Opcode op);

// Fixed-size instruction encoding.
struct Instruction {
  Opcode op = Opcode::kNop;
  uint8_t ra = 0;
  uint8_t rb = 0;
  uint8_t rc = 0;
  int32_t imm = 0;

  std::array<uint8_t, kInstrBytes> Encode() const;
  static Instruction Decode(const uint8_t* bytes);

  bool operator==(const Instruction&) const = default;
};

// Strictest ISA level required by an encoded text segment (used by execve to refuse
// images the machine cannot run, and by tests of the heterogeneity limitation).
IsaLevel RequiredLevel(const uint8_t* text, size_t size);

}  // namespace pmig::vm

#endif  // PMIG_SRC_VM_ISA_H_
