#include "src/vm/aout.h"

#include <cstring>

namespace pmig::vm {

namespace {

void PutU32(std::vector<uint8_t>& out, uint32_t v) {
  out.push_back(static_cast<uint8_t>(v & 0xFF));
  out.push_back(static_cast<uint8_t>((v >> 8) & 0xFF));
  out.push_back(static_cast<uint8_t>((v >> 16) & 0xFF));
  out.push_back(static_cast<uint8_t>((v >> 24) & 0xFF));
}

uint32_t GetU32(const uint8_t* p) {
  return static_cast<uint32_t>(p[0]) | (static_cast<uint32_t>(p[1]) << 8) |
         (static_cast<uint32_t>(p[2]) << 16) | (static_cast<uint32_t>(p[3]) << 24);
}

}  // namespace

std::vector<uint8_t> AoutImage::Serialize() const {
  std::vector<uint8_t> out;
  out.reserve(kAoutHeaderBytes + text.size() + data.size());
  PutU32(out, header.magic);
  PutU32(out, header.machtype);
  PutU32(out, static_cast<uint32_t>(text.size()));
  PutU32(out, static_cast<uint32_t>(data.size()));
  PutU32(out, header.entry);
  out.insert(out.end(), text.begin(), text.end());
  out.insert(out.end(), data.begin(), data.end());
  return out;
}

Result<AoutImage> AoutImage::Parse(const std::vector<uint8_t>& bytes) {
  if (bytes.size() < kAoutHeaderBytes) return Errno::kNoExec;
  AoutImage img;
  img.header.magic = GetU32(&bytes[0]);
  img.header.machtype = GetU32(&bytes[4]);
  img.header.text_size = GetU32(&bytes[8]);
  img.header.data_size = GetU32(&bytes[12]);
  img.header.entry = GetU32(&bytes[16]);
  if (img.header.magic != kAoutMagic) return Errno::kNoExec;
  if (img.header.machtype != 10 && img.header.machtype != 20) return Errno::kNoExec;
  const size_t need = kAoutHeaderBytes + static_cast<size_t>(img.header.text_size) +
                      static_cast<size_t>(img.header.data_size);
  if (bytes.size() < need) return Errno::kNoExec;
  if (img.header.text_size % kInstrBytes != 0) return Errno::kNoExec;
  if (img.header.entry >= img.header.text_size && img.header.text_size != 0) {
    return Errno::kNoExec;
  }
  const uint8_t* text_begin = bytes.data() + kAoutHeaderBytes;
  img.text.assign(text_begin, text_begin + img.header.text_size);
  img.data.assign(text_begin + img.header.text_size,
                  text_begin + img.header.text_size + img.header.data_size);
  return img;
}

}  // namespace pmig::vm
