#include "src/vm/isa.h"

#include <cstring>

namespace pmig::vm {

namespace {

using Shape = OpcodeInfo::Shape;

constexpr OpcodeInfo kUnknown{"???", IsaLevel::kIsa10, Shape::kNone};

constexpr OpcodeInfo kTable[] = {
    /* kNop   */ {"nop", IsaLevel::kIsa10, Shape::kNone},
    /* kMovI  */ {"movi", IsaLevel::kIsa10, Shape::kRegImm},
    /* kMov   */ {"mov", IsaLevel::kIsa10, Shape::kRegReg},
    /* kAdd   */ {"add", IsaLevel::kIsa10, Shape::kThreeReg},
    /* kSub   */ {"sub", IsaLevel::kIsa10, Shape::kThreeReg},
    /* kMul   */ {"mul", IsaLevel::kIsa10, Shape::kThreeReg},
    /* kDiv   */ {"div", IsaLevel::kIsa10, Shape::kThreeReg},
    /* kMod   */ {"mod", IsaLevel::kIsa10, Shape::kThreeReg},
    /* kAnd   */ {"and", IsaLevel::kIsa10, Shape::kThreeReg},
    /* kOr    */ {"or", IsaLevel::kIsa10, Shape::kThreeReg},
    /* kXor   */ {"xor", IsaLevel::kIsa10, Shape::kThreeReg},
    /* kShl   */ {"shl", IsaLevel::kIsa10, Shape::kThreeReg},
    /* kShr   */ {"shr", IsaLevel::kIsa10, Shape::kThreeReg},
    /* kAddI  */ {"addi", IsaLevel::kIsa10, Shape::kRegRegImm},
    /* kLd    */ {"ld", IsaLevel::kIsa10, Shape::kRegRegImm},
    /* kLdB   */ {"ldb", IsaLevel::kIsa10, Shape::kRegRegImm},
    /* kSt    */ {"st", IsaLevel::kIsa10, Shape::kRegRegImm},
    /* kStB   */ {"stb", IsaLevel::kIsa10, Shape::kRegRegImm},
    /* kPush  */ {"push", IsaLevel::kIsa10, Shape::kReg},
    /* kPop   */ {"pop", IsaLevel::kIsa10, Shape::kReg},
    /* kJmp   */ {"jmp", IsaLevel::kIsa10, Shape::kImm},
    /* kCall  */ {"call", IsaLevel::kIsa10, Shape::kImm},
    /* kRet   */ {"ret", IsaLevel::kIsa10, Shape::kNone},
    /* kBeq   */ {"beq", IsaLevel::kIsa10, Shape::kRegRegImm},
    /* kBne   */ {"bne", IsaLevel::kIsa10, Shape::kRegRegImm},
    /* kBlt   */ {"blt", IsaLevel::kIsa10, Shape::kRegRegImm},
    /* kBge   */ {"bge", IsaLevel::kIsa10, Shape::kRegRegImm},
    /* kRdSp  */ {"rdsp", IsaLevel::kIsa10, Shape::kReg},
    /* kSys   */ {"sys", IsaLevel::kIsa10, Shape::kImm},
    /* kHalt  */ {"halt", IsaLevel::kIsa10, Shape::kNone},
    /* kLMul  */ {"lmul", IsaLevel::kIsa20, Shape::kThreeReg},
    /* kBfExt */ {"bfext", IsaLevel::kIsa20, Shape::kRegRegImm},
};

static_assert(sizeof(kTable) / sizeof(kTable[0]) ==
                  static_cast<size_t>(Opcode::kNumOpcodes),
              "opcode table out of sync with Opcode enum");

}  // namespace

const OpcodeInfo& GetOpcodeInfo(Opcode op) {
  const auto idx = static_cast<size_t>(op);
  if (idx >= static_cast<size_t>(Opcode::kNumOpcodes)) return kUnknown;
  return kTable[idx];
}

std::array<uint8_t, kInstrBytes> Instruction::Encode() const {
  std::array<uint8_t, kInstrBytes> out{};
  out[0] = static_cast<uint8_t>(op);
  out[1] = ra;
  out[2] = rb;
  out[3] = rc;
  // Little-endian immediate.
  const auto u = static_cast<uint32_t>(imm);
  out[4] = static_cast<uint8_t>(u & 0xFF);
  out[5] = static_cast<uint8_t>((u >> 8) & 0xFF);
  out[6] = static_cast<uint8_t>((u >> 16) & 0xFF);
  out[7] = static_cast<uint8_t>((u >> 24) & 0xFF);
  return out;
}

Instruction Instruction::Decode(const uint8_t* bytes) {
  Instruction in;
  in.op = static_cast<Opcode>(bytes[0]);
  in.ra = bytes[1];
  in.rb = bytes[2];
  in.rc = bytes[3];
  const uint32_t u = static_cast<uint32_t>(bytes[4]) | (static_cast<uint32_t>(bytes[5]) << 8) |
                     (static_cast<uint32_t>(bytes[6]) << 16) |
                     (static_cast<uint32_t>(bytes[7]) << 24);
  in.imm = static_cast<int32_t>(u);
  return in;
}

IsaLevel RequiredLevel(const uint8_t* text, size_t size) {
  IsaLevel level = IsaLevel::kIsa10;
  for (size_t off = 0; off + kInstrBytes <= size; off += kInstrBytes) {
    const auto op = static_cast<Opcode>(text[off]);
    if (GetOpcodeInfo(op).level == IsaLevel::kIsa20) {
      level = IsaLevel::kIsa20;
    }
  }
  return level;
}

}  // namespace pmig::vm
