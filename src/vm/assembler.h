// A small two-pass assembler for the simulated CPU.
//
// Test programs, the paper's counter benchmark program, and the example workloads
// are written in this assembly dialect rather than constructed instruction-by-
// instruction, which keeps them readable and lets tests cover realistic programs.
//
// Syntax:
//   ; comment to end of line (# also accepted)
//   .text / .data            switch section (text is default)
//   .entry label             set the entry point (default: label `start`, else 0)
//   .isa 10|20               declare machine type for the a.out header (default:
//                            inferred from the opcodes used)
//   .equ NAME, expr          define an assembly-time constant
//   label:                   define a label (text labels are byte offsets in text,
//                            data labels are absolute addresses at kDataBase+off)
//   .quad expr, ...          emit 64-bit little-endian words (data section)
//   .byte expr, ...          emit bytes
//   .asciiz "str"            emit a NUL-terminated string (supports \n \t \0 \\ \")
//   .ascii "str"             emit a string without the NUL
//   .space n                 emit n zero bytes
//   mnemonic operands        one instruction; register operands are r0..r7,
//                            immediates are decimal, 0x hex, 'c' chars, labels,
//                            predefined ABI names (SYS_write, O_CREAT, SIGQUIT,
//                            TTY_RAW, ...), optionally label+offset.
//
// Memory operands for ld/st are written `ld r1, r2, 8` (address = r2 + 8).

#ifndef PMIG_SRC_VM_ASSEMBLER_H_
#define PMIG_SRC_VM_ASSEMBLER_H_

#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "src/vm/aout.h"
#include "src/vm/isa.h"

namespace pmig::vm {

struct AsmError {
  int line = 0;
  std::string message;
};

struct AsmOutput {
  bool ok = false;
  AoutImage image;
  std::map<std::string, int64_t> symbols;  // labels and .equ constants
  std::vector<AsmError> errors;
};

// Assembles the given source. Never throws; on failure `ok` is false and `errors`
// describes every problem found.
AsmOutput Assemble(std::string_view source);

// Convenience: assemble or abort with the first error printed to stderr. For use in
// tests/examples where the source is a known-good constant.
AoutImage MustAssemble(std::string_view source);

}  // namespace pmig::vm

#endif  // PMIG_SRC_VM_ASSEMBLER_H_
