// Per-host fault history for placement decisions.
//
// One FaultHistory is shared cluster-wide (owned by the Cluster, reachable
// through the Network, like the fault injector): every migrate attempt records
// its outcome against the host it talked to, and placement policies read back a
// failure score. The score decays exponentially over *virtual* time, so a host
// that crashed and recovered re-qualifies as a target after a quiet interval —
// permanent blacklisting would defeat the paper's whole point of a cluster
// whose machines come and go.
//
// Recording is pure bookkeeping: no RNG, no timers, no virtual-time cost, so a
// run with recording on is bit-identical to one without (only code that *reads*
// the scores can behave differently, and the default policy never reads them).

#ifndef PMIG_SRC_SIM_FAULT_HISTORY_H_
#define PMIG_SRC_SIM_FAULT_HISTORY_H_

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <string_view>

#include "src/sim/clock.h"
#include "src/sim/result.h"
#include "src/sim/time.h"

namespace pmig::sim {

class FaultHistory {
 public:
  explicit FaultHistory(const VirtualClock* clock, Nanos half_life = Seconds(30))
      : clock_(clock), half_life_(half_life) {}

  // How fast a failure is forgotten: the score halves every `half_life` of
  // virtual time. Policies with long poll intervals want a longer memory.
  void set_half_life(Nanos half_life) { half_life_ = half_life; }
  Nanos half_life() const { return half_life_; }

  // A remote command against `host` failed with `error`. EHOSTUNREACH (the
  // machine is observably dead) weighs more than an ordinary transient.
  void RecordFailure(std::string_view host, Errno error);

  // A remote tool ran on `host` but reported a transient failure (a poll that
  // timed out, a disk-full window): weaker evidence than an unreachable host.
  void RecordTransient(std::string_view host);

  // A remote command on `host` completed: the host is reachable. Knocks the
  // accumulated score down sharply so a recovered host re-qualifies fast.
  void RecordSuccess(std::string_view host);

  // The decayed failure weight at the current virtual time. 0 for a host that
  // has never failed (or whose failures have fully decayed away).
  double Score(std::string_view host) const;

  // Raw outcome counts (no decay) — for reports and tests.
  int64_t failures(std::string_view host) const;
  int64_t successes(std::string_view host) const;

  // Single listener slot, invoked after every recorded outcome with the host it
  // was recorded against. Coordinators keeping incremental placement state (the
  // apps::ClusterIndex) subscribe so fault updates reach them without polling.
  // A subscriber that replaces an existing listener should save it and chain;
  // recording stays pure bookkeeping (no time, no RNG) regardless.
  //
  // Every set_listener bumps listener_token(): a chaining subscriber saves the
  // token its own install produced and, on teardown, restores the saved chain
  // only while the token still matches — i.e. only while it is the *top* of the
  // chain. Without the token check, destroying stacked subscribers out of LIFO
  // order re-installs a closure capturing a destroyed subscriber.
  using Listener = std::function<void(std::string_view host)>;
  void set_listener(Listener listener) {
    listener_ = std::move(listener);
    ++listener_token_;
  }
  const Listener& listener() const { return listener_; }
  uint64_t listener_token() const { return listener_token_; }

 private:
  struct Entry {
    double weight = 0;   // decayed failure mass as of `as_of`
    Nanos as_of = 0;     // virtual time the weight was last normalised
    int64_t failures = 0;
    int64_t successes = 0;
  };

  double DecayedWeight(const Entry& e) const;
  Entry& Touch(std::string_view host);

  const VirtualClock* clock_;
  Nanos half_life_;
  std::map<std::string, Entry, std::less<>> entries_;
  Listener listener_;
  uint64_t listener_token_ = 0;
};

}  // namespace pmig::sim

#endif  // PMIG_SRC_SIM_FAULT_HISTORY_H_
