// Result<T>: the error-handling vocabulary for the whole library.
//
// Fallible operations return Result<T>, which carries either a value or a Unix-style
// errno. This mirrors the syscall interface of the simulated kernel: a simulated
// system call that fails with ENOENT surfaces as Result carrying Errno::kNoEnt.
// Exceptions are reserved for unwinding killed native-process threads (see
// kernel/native.h); everything else is explicit.

#ifndef PMIG_SRC_SIM_RESULT_H_
#define PMIG_SRC_SIM_RESULT_H_

#include <cassert>
#include <cstdint>
#include <optional>
#include <string_view>
#include <utility>
#include <variant>

namespace pmig {

// Unix errno values used by the simulated kernel. Numeric values match historical
// 4.2BSD so that dump files and traces read like the real thing.
enum class Errno : int32_t {
  kOk = 0,
  kPerm = 1,       // EPERM: operation not permitted
  kNoEnt = 2,      // ENOENT: no such file or directory
  kSrch = 3,       // ESRCH: no such process
  kIntr = 4,       // EINTR: interrupted system call
  kIo = 5,         // EIO: i/o error
  kNoExec = 8,     // ENOEXEC: exec format error
  kBadF = 9,       // EBADF: bad file number
  kChild = 10,     // ECHILD: no children
  kAgain = 11,     // EAGAIN: no more processes
  kNoMem = 12,     // ENOMEM: not enough memory
  kAcces = 13,     // EACCES: permission denied
  kFault = 14,     // EFAULT: bad address
  kExist = 17,     // EEXIST: file exists
  kXDev = 18,      // EXDEV: cross-device link
  kNoDev = 19,     // ENODEV: no such device
  kNotDir = 20,    // ENOTDIR: not a directory
  kIsDir = 21,     // EISDIR: is a directory
  kInval = 22,     // EINVAL: invalid argument
  kNFile = 23,     // ENFILE: system file table overflow
  kMFile = 24,     // EMFILE: too many open files
  kNoTty = 25,     // ENOTTY: not a typewriter
  kFBig = 27,      // EFBIG: file too large
  kNoSpc = 28,     // ENOSPC: no space left on device
  kSPipe = 29,     // ESPIPE: illegal seek
  kRoFs = 30,      // EROFS: read-only file system
  kPipe = 32,      // EPIPE: broken pipe
  kNameTooLong = 63,  // ENAMETOOLONG
  kLoop = 62,         // ELOOP: too many levels of symbolic links
  kNotSock = 38,      // ENOTSOCK
  kHostUnreach = 65,  // EHOSTUNREACH
  kTimedOut = 60,     // ETIMEDOUT
};

// Short symbolic name ("ENOENT") for traces and error messages.
std::string_view ErrnoName(Errno e);

// A value-or-errno sum type, in the spirit of std::expected (which libstdc++ 12 does
// not ship). Only what the library needs: construction, queries, value access.
template <typename T>
class [[nodiscard]] Result {
 public:
  // Implicit construction from a value or from an errno keeps call sites terse:
  //   return fd;                 // success
  //   return Errno::kBadF;       // failure
  Result(T value) : repr_(std::move(value)) {}  // NOLINT(google-explicit-constructor)
  Result(Errno error) : repr_(error) {          // NOLINT(google-explicit-constructor)
    assert(error != Errno::kOk && "Result error must not be kOk");
  }

  bool ok() const { return std::holds_alternative<T>(repr_); }
  explicit operator bool() const { return ok(); }

  Errno error() const { return ok() ? Errno::kOk : std::get<Errno>(repr_); }

  T& value() & {
    assert(ok());
    return std::get<T>(repr_);
  }
  const T& value() const& {
    assert(ok());
    return std::get<T>(repr_);
  }
  T&& value() && {
    assert(ok());
    return std::get<T>(std::move(repr_));
  }

  T value_or(T fallback) const {
    return ok() ? std::get<T>(repr_) : std::move(fallback);
  }

  T& operator*() & { return value(); }
  const T& operator*() const& { return value(); }
  T* operator->() { return &value(); }
  const T* operator->() const { return &value(); }

 private:
  std::variant<T, Errno> repr_;
};

// Result<void> analogue: success or errno.
class [[nodiscard]] Status {
 public:
  Status() : error_(Errno::kOk) {}
  Status(Errno error) : error_(error) {}  // NOLINT(google-explicit-constructor)

  static Status Ok() { return Status(); }

  bool ok() const { return error_ == Errno::kOk; }
  explicit operator bool() const { return ok(); }
  Errno error() const { return error_; }

 private:
  Errno error_;
};

// Propagate an error from an expression producing Result<T>/Status.
//
//   PMIG_TRY(auto fd, vfs.Open(path));      // declares fd on success
//   PMIG_RETURN_IF_ERROR(vfs.Unlink(path));
#define PMIG_INTERNAL_CONCAT_INNER(a, b) a##b
#define PMIG_INTERNAL_CONCAT(a, b) PMIG_INTERNAL_CONCAT_INNER(a, b)

#define PMIG_TRY_IMPL(decl, expr, tmp) \
  auto tmp = (expr);                   \
  if (!tmp.ok()) {                     \
    return tmp.error();                \
  }                                    \
  decl = std::move(tmp).value()

#define PMIG_TRY(decl, expr) \
  PMIG_TRY_IMPL(decl, expr, PMIG_INTERNAL_CONCAT(pmig_try_tmp_, __COUNTER__))

#define PMIG_RETURN_IF_ERROR(expr)          \
  do {                                      \
    auto pmig_status_ = (expr);             \
    if (!pmig_status_.ok()) {               \
      return pmig_status_.error();          \
    }                                       \
  } while (false)

}  // namespace pmig

#endif  // PMIG_SRC_SIM_RESULT_H_
