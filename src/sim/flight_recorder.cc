#include "src/sim/flight_recorder.h"

#include <fstream>
#include <sstream>

#include "src/sim/metrics.h"  // JsonEscape

namespace pmig::sim {

void FlightRecorder::Note(const std::string& host, int32_t pid, uint64_t trace_id,
                          std::string what) {
  if (!enabled_ || capacity_ == 0) return;
  std::deque<FlightEvent>& ring = rings_[host];
  ring.push_back(FlightEvent{clock_->now(), host, pid, trace_id, std::move(what)});
  while (ring.size() > capacity_) ring.pop_front();
}

void FlightRecorder::Dump(const std::string& host, uint64_t trace_id,
                          const std::string& reason) {
  if (!enabled_) return;
  Postmortem pm;
  pm.at = clock_->now();
  pm.host = host;
  pm.trace_id = trace_id;
  pm.reason = reason;
  std::ostringstream body;
  body << "{\"type\":\"postmortem\",\"t_ns\":" << pm.at << ",\"host\":\"" << JsonEscape(host)
       << "\",\"trace_id\":" << trace_id << ",\"reason\":\"" << JsonEscape(reason) << "\"}\n";
  const auto it = rings_.find(host);
  if (it != rings_.end()) {
    for (const FlightEvent& e : it->second) {
      body << "{\"type\":\"flight_event\",\"t_ns\":" << e.at << ",\"host\":\""
           << JsonEscape(e.host) << "\",\"pid\":" << e.pid << ",\"trace_id\":" << e.trace_id
           << ",\"what\":\"" << JsonEscape(e.what) << "\"}\n";
    }
  }
  pm.jsonl = body.str();
  if (!output_dir_.empty()) {
    const std::string path =
        output_dir_ + "/POSTMORTEM_" + std::to_string(postmortems_.size()) + ".jsonl";
    std::ofstream f(path, std::ios::trunc);
    if (f) f << pm.jsonl;
  }
  postmortems_.push_back(std::move(pm));
}

const std::deque<FlightEvent>& FlightRecorder::ring(const std::string& host) const {
  static const std::deque<FlightEvent> kEmpty;
  const auto it = rings_.find(host);
  return it != rings_.end() ? it->second : kEmpty;
}

void FlightRecorder::Clear() {
  rings_.clear();
  postmortems_.clear();
}

}  // namespace pmig::sim
