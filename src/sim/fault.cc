#include "src/sim/fault.h"

namespace pmig::sim {

bool FaultInjector::Draw(double rate, const char* metric,
                         MetricsRegistry* metrics) {
  if (!config_.enabled || rate <= 0) return false;
  if (!rng_.Chance(rate)) return false;
  if (metrics != nullptr) metrics->Inc(metric);
  return true;
}

bool FaultInjector::NetSendFails(MetricsRegistry* metrics) {
  if (!config_.enabled) return false;
  if (net_sends_ < config_.net_fail_first) {
    ++net_sends_;
    if (metrics != nullptr) metrics->Inc("fault.injected.net_send");
    return true;
  }
  ++net_sends_;
  return Draw(config_.net_send_failure_rate, "fault.injected.net_send", metrics);
}

bool FaultInjector::NfsIoFails(MetricsRegistry* metrics) {
  return Draw(config_.nfs_error_rate, "fault.injected.nfs_io", metrics);
}

bool FaultInjector::DiskFull(std::string_view host, MetricsRegistry* metrics) {
  if (!config_.enabled || config_.disk_full.empty()) return false;
  const Nanos now = clock_->now();
  for (const DiskFullWindow& w : config_.disk_full) {
    if (w.host == host && now >= w.begin && now < w.end) {
      if (metrics != nullptr) metrics->Inc("fault.injected.disk_full");
      return true;
    }
  }
  return false;
}

namespace {

bool InGroup(const std::vector<std::string>& group, std::string_view host) {
  for (const std::string& g : group) {
    if (g == host) return true;
  }
  return false;
}

}  // namespace

bool FaultInjector::Partitioned(std::string_view from, std::string_view to,
                                MetricsRegistry* metrics) const {
  if (!config_.enabled || config_.partitions.empty()) return false;
  if (from == to) return false;  // loopback never partitions
  const Nanos now = clock_->now();
  for (const PartitionFault& p : config_.partitions) {
    if (now < p.begin) continue;
    if (p.heal >= 0 && now >= p.heal) continue;
    if (p.flap_period > 0) {
      // Cut during even flap phases (the first phase at `begin` is cut).
      const Nanos phase = (now - p.begin) / p.flap_period;
      if (phase % 2 != 0) continue;
    }
    const bool from_a = InGroup(p.group_a, from);
    const bool to_a = InGroup(p.group_a, to);
    // Empty group_b = complement of group_a; otherwise membership is explicit
    // and hosts in neither group are unaffected.
    const bool from_b = p.group_b.empty() ? !from_a : InGroup(p.group_b, from);
    const bool to_b = p.group_b.empty() ? !to_a : InGroup(p.group_b, to);
    const bool cut_ab = from_a && to_b;
    const bool cut_ba = from_b && to_a;
    if (cut_ab || (!p.one_way && cut_ba)) {
      if (metrics != nullptr) metrics->Inc("fault.injected.partition");
      return true;
    }
  }
  return false;
}

bool FaultInjector::CorruptsDump(MetricsRegistry* metrics) {
  return Draw(config_.dump_corruption_rate, "fault.injected.dump_corrupt",
              metrics);
}

void FaultInjector::CorruptBytes(std::string* bytes) {
  if (bytes == nullptr || bytes->empty()) return;
  const size_t limit = bytes->size() < 4 ? bytes->size() : 4;
  const size_t index = rng_.Below(limit);
  const int bit = static_cast<int>(rng_.Below(8));
  (*bytes)[index] = static_cast<char>((*bytes)[index] ^ (1 << bit));
}

}  // namespace pmig::sim
