#include "src/sim/time_series.h"

#include <algorithm>

namespace pmig::sim {

void TimeSeries::Append(Nanos at, double value) {
  ++appended_;
  tiers_[0].push_back(SeriesPoint{at, value, 1});
  // Cascade: when a tier overflows, its two oldest points merge into one point
  // of the next-coarser tier. The merged point lands at the *back* of that tier
  // (it is newer than everything already there), so every tier stays sorted.
  for (size_t k = 0; k + 1 < tiers_.size(); ++k) {
    if (tiers_[k].size() <= per_tier_) return;
    SeriesPoint a = tiers_[k].front();
    tiers_[k].pop_front();
    SeriesPoint b = tiers_[k].front();
    tiers_[k].pop_front();
    SeriesPoint merged;
    merged.count = a.count + b.count;
    merged.value = (a.value * static_cast<double>(a.count) +
                    b.value * static_cast<double>(b.count)) /
                   static_cast<double>(merged.count);
    merged.at = std::max(a.at, b.at);
    tiers_[k + 1].push_back(merged);
  }
  // The coarsest tier has nowhere to fold into: the oldest history falls off.
  std::deque<SeriesPoint>& last = tiers_.back();
  while (last.size() > per_tier_) last.pop_front();
}

std::vector<SeriesPoint> TimeSeries::Points() const {
  std::vector<SeriesPoint> out;
  out.reserve(size());
  for (size_t k = tiers_.size(); k-- > 0;) {
    out.insert(out.end(), tiers_[k].begin(), tiers_[k].end());
  }
  return out;
}

size_t TimeSeries::size() const {
  size_t n = 0;
  for (const auto& tier : tiers_) n += tier.size();
  return n;
}

const SeriesPoint& TimeSeries::Newest() const {
  for (const auto& tier : tiers_) {
    if (!tier.empty()) return tier.back();
  }
  return tiers_.back().back();  // empty series: caller's contract violation
}

TimeSeries::WindowStats TimeSeries::Over(Nanos since) const {
  WindowStats stats;
  double weighted_sum = 0;
  for (const auto& tier : tiers_) {
    for (const SeriesPoint& p : tier) {
      if (p.at < since) continue;
      if (stats.count == 0) {
        stats.min = stats.max = p.value;
      } else {
        stats.min = std::min(stats.min, p.value);
        stats.max = std::max(stats.max, p.value);
      }
      stats.count += p.count;
      weighted_sum += p.value * static_cast<double>(p.count);
    }
  }
  if (stats.count > 0) stats.mean = weighted_sum / static_cast<double>(stats.count);
  return stats;
}

}  // namespace pmig::sim
