// The virtual-time cost model.
//
// Every simulated activity — executing a VM instruction, trapping into the kernel,
// walking a path component, allocating kernel memory, copying bytes, writing a disk
// block, crossing the Ethernet — advances virtual time by an amount computed from
// these unit costs. The figures in the paper's evaluation are *ratios* (normalised to
// SIGQUIT, execve(), or the local/local migration case); those ratios must emerge
// from the amount of modelled work each operation performs, not from hard-coded
// factors. The unit costs below are calibrated to 1987 Sun-2/Sun-3 magnitudes so the
// absolute numbers are also plausible: the paper reports ~0.6 s to SIGDUMP its test
// program, <0.2 s to execve() it, and rsh connection setup that pushes a
// remote-to-remote migrate to "almost half a minute".

#ifndef PMIG_SRC_SIM_COST_MODEL_H_
#define PMIG_SRC_SIM_COST_MODEL_H_

#include "src/sim/time.h"

namespace pmig::sim {

struct CostModel {
  // --- CPU ---------------------------------------------------------------------
  // A Sun-2 (MC68010, 10 MHz) ran at roughly 0.7 MIPS; 2 us/instruction is within
  // range for the memory-touching mix our VM executes.
  Nanos instruction = Micros(2);
  // Trap + register save/restore + dispatch for entering any system call.
  Nanos syscall_entry = Micros(120);
  // Scheduler context switch (pick next proc, swap u. area mappings).
  Nanos context_switch = Micros(400);

  // --- Kernel memory and string work (the Section 5.1 modifications) ------------
  // kmem_alloc()/kmem_free() for the dynamically allocated file-name strings.
  Nanos kmem_alloc = Micros(230);
  Nanos kmem_free = Micros(60);
  // Copying one byte of a path name into/out of kernel space (copyin/copyout and
  // string assembly are byte loops on a 68010).
  Nanos name_copy_per_byte = Micros(5);
  // Fixed cost of splicing a relative name onto the saved current-directory string
  // (scan for trailing slash, handle "." / ".." components).
  Nanos name_combine = Micros(180);

  // --- Filesystem --------------------------------------------------------------
  // namei(): directory search per path component (inode cache hit).
  Nanos namei_component = Micros(220);
  // Allocating a system file-table slot + in-core inode reference.
  Nanos file_table_slot = Micros(90);
  // Reading the target of a symbolic link (it is a tiny file).
  Nanos readlink = Micros(350);
  // Disk: 1 KB filesystem blocks. A Fujitsu Eagle-era disk gives a few ms per block
  // once seek amortisation is counted. Block transfers block the caller in real time
  // (the CPU is free); the per-byte copy below is CPU.
  int64_t disk_block_bytes = 1024;
  Nanos disk_block_latency = Millis(35);
  Nanos buffer_copy_per_byte = 300;  // bcopy() through the buffer cache
  // CPU burned in the filesystem block layer per block written/read (allocation
  // maps, buffer headers, checksums of the era's FS code paths).
  Nanos disk_block_cpu = Millis(5);
  // CPU to build/parse one NFS RPC (XDR encode/decode, UDP stack).
  Nanos nfs_rpc_cpu = Millis(1);
  // Fetching a cold in-core inode on a successful open()/exec() (the 1987 disk
  // again; remote files pay an NFS RPC instead). Real time, not CPU.
  Nanos inode_fetch = Millis(25);
  // exec() demand-pages the image: only the header and first pages are read
  // synchronously; this is how many bytes the initial load touches.
  int64_t exec_prefetch_bytes = 4096;

  // --- Terminals -----------------------------------------------------------------
  Nanos tty_ioctl = Micros(300);  // line-discipline parameter change

  // --- Network (10 Mbit Ethernet + NFS) ------------------------------------------
  // An NFS RPC round trip (UDP, lookup/read/write) on an otherwise idle net.
  Nanos nfs_rpc = Millis(20);
  // Payload cost: 10 Mbit/s is 1.25 bytes/us on the wire; protocol overhead and
  // user-level copies roughly halve the achievable rate.
  Nanos net_per_byte = 1600;  // ~0.6 MB/s effective
  // rcmd()/rshd connection establishment: privileged port allocation, reverse name
  // lookup, /etc/hosts.equiv checks, spawning a login-less shell. The paper's
  // numbers imply this dominates migrate's remote cases (~10 s per connection, two
  // connections making remote->remote "almost half a minute").
  Nanos rsh_setup = Seconds(11);
  // The Section 6.4 improvement: a resident migration daemon on a well-known port
  // only pays a TCP connect + request parse.
  Nanos daemon_request = Millis(150);

  // --- Process management ---------------------------------------------------------
  // execve() fixed overhead beyond image I/O: argument shuffling, u. area reset.
  Nanos exec_overhead = Millis(12);
  // Launching a tool binary (dumpproc/restart/...): fork + exec + C-runtime
  // startup of a real program, which the paper's measured commands all paid.
  Nanos tool_spawn_cpu = Millis(8);
  Nanos tool_spawn_wait = Millis(110);
  // fork(): proc table slot + segment duplication is charged per byte copied.
  Nanos fork_overhead = Millis(20);
  // Signal delivery bookkeeping (psignal/issig).
  Nanos signal_post = Micros(250);
  // User-mode computation a native (tool) process performs around each system call
  // — argument marshalling, sscanf-ing dump files, and so on.
  Nanos native_user_work = Micros(150);

  // Scheduler quantum used by the lockstep cluster loop.
  Nanos quantum = Millis(10);

  // Cost helpers -------------------------------------------------------------------
  // Synchronous file I/O of `bytes` starting at `offset`: CPU copy cost plus the
  // real-time disk latency for the blocks touched. Returns {cpu, wait}.
  struct IoCost {
    Nanos cpu;
    Nanos wait;
  };
  IoCost DiskIo(int64_t bytes) const {
    const int64_t blocks = bytes <= 0 ? 0 : (bytes + disk_block_bytes - 1) / disk_block_bytes;
    return IoCost{bytes * buffer_copy_per_byte + blocks * disk_block_cpu,
                  blocks * disk_block_latency};
  }
  // Network transfer of `bytes` over one NFS RPC exchange.
  IoCost NetIo(int64_t bytes) const {
    return IoCost{bytes * 150 + nfs_rpc_cpu, nfs_rpc + bytes * net_per_byte};
  }
};

}  // namespace pmig::sim

#endif  // PMIG_SRC_SIM_COST_MODEL_H_
