// Retained time series: a fixed-capacity ring with coarse downsampling tiers.
//
// The health monitor keeps per-host signal histories (migrate latency, dump
// bytes, error rates, sampled load) for anomaly baselines, SLO accounting, and
// the phealth view. A run can observe tens of thousands of points, so retention
// is bounded the way a real TSDB bounds it: the newest points are kept raw, and
// as the raw ring fills, the oldest points are folded pairwise into a coarser
// tier (count-weighted means over 2, then 4, then 8... raw samples). Memory is
// O(points_per_tier * tiers) regardless of run length, recent history stays
// exact, and old history stays visible at reduced resolution instead of
// vanishing.
//
// Appending is pure bookkeeping: no virtual time, no RNG, no clock reads — the
// caller stamps every point — so a series that nobody reads can never perturb a
// deterministic run.

#ifndef PMIG_SRC_SIM_TIME_SERIES_H_
#define PMIG_SRC_SIM_TIME_SERIES_H_

#include <cstddef>
#include <cstdint>
#include <deque>
#include <vector>

#include "src/sim/time.h"

namespace pmig::sim {

// One retained point. Downsampled points summarise `count` raw samples: `value`
// is their count-weighted mean and `at` the virtual time of the newest of them.
struct SeriesPoint {
  Nanos at = 0;
  double value = 0;
  int64_t count = 1;
};

class TimeSeries {
 public:
  explicit TimeSeries(size_t points_per_tier = 64, size_t tiers = 3)
      : per_tier_(points_per_tier > 2 ? points_per_tier : 2),
        tiers_(tiers > 0 ? tiers : 1) {}

  // Appends a raw point. `at` values must be non-decreasing (virtual time only
  // moves forward); downsampling relies on it.
  void Append(Nanos at, double value);

  // Every retained point, oldest first (coarser tiers hold the older history,
  // so they come before the raw ring). Timestamps are non-decreasing.
  std::vector<SeriesPoint> Points() const;

  // Retained points (not raw samples) across all tiers.
  size_t size() const;
  bool empty() const { return size() == 0; }
  // Raw samples ever appended; the counts of the retained points sum to at most
  // this (exactly, until the coarsest tier starts evicting).
  int64_t total_appended() const { return appended_; }
  // The newest retained point. Undefined when empty.
  const SeriesPoint& Newest() const;

  // Count-weighted aggregate over retained points with at >= since. min/max are
  // over retained point values (downsampled points already averaged their raw
  // extremes away — coarse, as advertised).
  struct WindowStats {
    int64_t count = 0;  // raw samples represented
    double mean = 0;
    double min = 0;
    double max = 0;
  };
  WindowStats Over(Nanos since) const;

 private:
  size_t per_tier_;
  // tiers_[0] is the raw ring; tier k holds points representing ~2^k raw
  // samples. Within a tier and from front of tier k+1 to back of tier k, time
  // ascends.
  std::vector<std::deque<SeriesPoint>> tiers_;
  int64_t appended_ = 0;
};

}  // namespace pmig::sim

#endif  // PMIG_SRC_SIM_TIME_SERIES_H_
