#include "src/sim/clock.h"

#include <algorithm>
#include <utility>

namespace pmig::sim {

void VirtualClock::Advance(Nanos delta) {
  const Nanos target = now_ + delta;
  while (!timers_.empty() && timers_.top().deadline <= target) {
    // priority_queue::top is const; move via const_cast is UB, so copy the function
    // out before popping. Timer functions are small (bound lambdas), this is cold.
    Timer t = timers_.top();
    timers_.pop();
    auto it = std::find(cancelled_.begin(), cancelled_.end(), t.id);
    if (it != cancelled_.end()) {
      cancelled_.erase(it);
      continue;
    }
    --live_timers_;
    now_ = std::max(now_, t.deadline);
    t.fn();
  }
  now_ = std::max(now_, target);
}

uint64_t VirtualClock::CallAt(Nanos deadline, std::function<void()> fn) {
  const uint64_t id = next_id_++;
  timers_.push(Timer{std::max(deadline, now_), next_seq_++, id, std::move(fn)});
  ++live_timers_;
  return id;
}

void VirtualClock::CancelTimer(uint64_t id) {
  cancelled_.push_back(id);
  --live_timers_;
}

Nanos VirtualClock::NextDeadline() const {
  // Cancelled timers may shadow the top of the queue; this is only used as a skip
  // hint, so a conservative (too early) answer is harmless.
  if (live_timers_ <= 0) return -1;
  return timers_.empty() ? -1 : timers_.top().deadline;
}

}  // namespace pmig::sim
