#include "src/sim/rng.h"

namespace pmig::sim {

uint64_t Rng::Next() {
  // SplitMix64 (Steele, Lea, Flood 2014).
  state_ += 0x9E3779B97F4A7C15ULL;
  uint64_t z = state_;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

uint64_t Rng::Below(uint64_t bound) {
  // Modulo bias is irrelevant at our bounds (<< 2^32) but reject anyway: cheap.
  const uint64_t limit = bound * ((~uint64_t{0}) / bound);
  uint64_t x;
  do {
    x = Next();
  } while (x >= limit);
  return x % bound;
}

int64_t Rng::Range(int64_t lo, int64_t hi) {
  return lo + static_cast<int64_t>(Below(static_cast<uint64_t>(hi - lo + 1)));
}

double Rng::Double() {
  return static_cast<double>(Next() >> 11) * (1.0 / 9007199254740992.0);  // 2^-53
}

std::string Rng::Ident(int len) {
  std::string s;
  s.reserve(static_cast<size_t>(len));
  for (int i = 0; i < len; ++i) {
    s.push_back(static_cast<char>('a' + Below(26)));
  }
  return s;
}

}  // namespace pmig::sim
