// Little-endian binary serialization helpers used by the dump-file formats
// (core files, a.outXXXXX headers, filesXXXXX, stackXXXXX).

#ifndef PMIG_SRC_SIM_BYTES_H_
#define PMIG_SRC_SIM_BYTES_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace pmig::sim {

class ByteWriter {
 public:
  void U8(uint8_t v) { out_.push_back(static_cast<char>(v)); }
  void U16(uint16_t v) {
    U8(static_cast<uint8_t>(v & 0xFF));
    U8(static_cast<uint8_t>(v >> 8));
  }
  void U32(uint32_t v) {
    U16(static_cast<uint16_t>(v & 0xFFFF));
    U16(static_cast<uint16_t>(v >> 16));
  }
  void U64(uint64_t v) {
    U32(static_cast<uint32_t>(v & 0xFFFFFFFFu));
    U32(static_cast<uint32_t>(v >> 32));
  }
  void I32(int32_t v) { U32(static_cast<uint32_t>(v)); }
  void I64(int64_t v) { U64(static_cast<uint64_t>(v)); }
  // Length-prefixed string.
  void Str(std::string_view s) {
    U32(static_cast<uint32_t>(s.size()));
    out_.append(s);
  }
  void Blob(const std::vector<uint8_t>& b) {
    U32(static_cast<uint32_t>(b.size()));
    out_.append(reinterpret_cast<const char*>(b.data()), b.size());
  }

  const std::string& str() const { return out_; }
  std::string Take() { return std::move(out_); }

 private:
  std::string out_;
};

class ByteReader {
 public:
  explicit ByteReader(std::string_view bytes) : bytes_(bytes) {}

  bool ok() const { return ok_; }
  bool AtEnd() const { return pos_ == bytes_.size(); }

  uint8_t U8() {
    if (!Need(1)) return 0;
    return static_cast<uint8_t>(bytes_[pos_++]);
  }
  uint16_t U16() {
    const uint16_t lo = U8();
    return static_cast<uint16_t>(lo | (U8() << 8));
  }
  uint32_t U32() {
    const uint32_t lo = U16();
    return lo | (static_cast<uint32_t>(U16()) << 16);
  }
  uint64_t U64() {
    const uint64_t lo = U32();
    return lo | (static_cast<uint64_t>(U32()) << 32);
  }
  int32_t I32() { return static_cast<int32_t>(U32()); }
  int64_t I64() { return static_cast<int64_t>(U64()); }
  std::string Str() {
    const uint32_t n = U32();
    if (!Need(n)) return {};
    std::string s(bytes_.substr(pos_, n));
    pos_ += n;
    return s;
  }
  std::vector<uint8_t> Blob() {
    const uint32_t n = U32();
    if (!Need(n)) return {};
    std::vector<uint8_t> b(bytes_.begin() + static_cast<ptrdiff_t>(pos_),
                           bytes_.begin() + static_cast<ptrdiff_t>(pos_ + n));
    pos_ += n;
    return b;
  }

 private:
  bool Need(size_t n) {
    if (!ok_ || pos_ + n > bytes_.size()) {
      ok_ = false;
      return false;
    }
    return true;
  }

  std::string_view bytes_;
  size_t pos_ = 0;
  bool ok_ = true;
};

}  // namespace pmig::sim

#endif  // PMIG_SRC_SIM_BYTES_H_
