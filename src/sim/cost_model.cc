#include "src/sim/cost_model.h"

// CostModel is a plain aggregate of calibrated constants; the helpers are inline.
// This translation unit exists so the module has a home for future non-inline logic
// (e.g. loading calibration overrides) and to give the header a compile check.
