#include "src/sim/metrics.h"

#include <algorithm>
#include <cstdio>

namespace pmig::sim {

namespace {

size_t BucketOf(Nanos value) {
  size_t bucket = 0;
  while (value > 1 && bucket + 1 < Histogram::kBuckets) {
    value >>= 1;
    ++bucket;
  }
  return bucket;
}

}  // namespace

void Histogram::Record(Nanos value) {
  value = std::max<Nanos>(value, 0);
  if (count == 0) {
    min = max = value;
  } else {
    min = std::min(min, value);
    max = std::max(max, value);
  }
  ++count;
  sum += value;
  ++buckets[BucketOf(value)];
}

void Histogram::MergeFrom(const Histogram& other) {
  if (other.count == 0) return;
  if (count == 0) {
    min = other.min;
    max = other.max;
  } else {
    min = std::min(min, other.min);
    max = std::max(max, other.max);
  }
  count += other.count;
  sum += other.sum;
  for (size_t i = 0; i < kBuckets; ++i) buckets[i] += other.buckets[i];
}

Nanos Histogram::Percentile(double p) const {
  if (count == 0) return 0;
  p = std::min(std::max(p, 0.0), 100.0);
  // The extremes are tracked exactly; only interior percentiles need the
  // log2-bucket estimate.
  if (p == 0.0) return min;
  if (p == 100.0) return max;
  // Rank of the percentile observation, 1-based (nearest-rank definition).
  const int64_t rank = std::max<int64_t>(
      1, static_cast<int64_t>(static_cast<double>(count) * p / 100.0 + 0.5));
  int64_t seen = 0;
  for (size_t i = 0; i < kBuckets; ++i) {
    if (buckets[i] == 0) continue;
    if (seen + buckets[i] < rank) {
      seen += buckets[i];
      continue;
    }
    // Interpolate within bucket i, whose value range is [lo, hi).
    const Nanos lo = i == 0 ? 0 : Nanos{1} << i;
    const Nanos hi = Nanos{1} << (i + 1);
    const double frac =
        static_cast<double>(rank - seen) / static_cast<double>(buckets[i]);
    const Nanos est = lo + static_cast<Nanos>(static_cast<double>(hi - lo) * frac);
    return std::min(std::max(est, min), max);
  }
  return max;
}

void MetricsRegistry::Observe(std::string_view name, Nanos value) {
  if (!enabled_) return;
  auto it = histograms_.find(name);
  if (it == histograms_.end()) it = histograms_.emplace(std::string(name), Histogram{}).first;
  it->second.Record(value);
}

int64_t MetricsRegistry::Counter(std::string_view name) const {
  const auto it = counters_.find(name);
  return it != counters_.end() ? it->second : 0;
}

int64_t MetricsRegistry::Gauge(std::string_view name) const {
  const auto it = gauges_.find(name);
  return it != gauges_.end() ? it->second : 0;
}

const Histogram* MetricsRegistry::FindHistogram(std::string_view name) const {
  const auto it = histograms_.find(name);
  return it != histograms_.end() ? &it->second : nullptr;
}

void MetricsRegistry::MergeFrom(const MetricsRegistry& other) {
  for (const auto& [name, value] : other.counters_) Slot(counters_, name) += value;
  for (const auto& [name, value] : other.gauges_) Slot(gauges_, name) += value;
  for (const auto& [name, hist] : other.histograms_) {
    auto it = histograms_.find(name);
    if (it == histograms_.end()) it = histograms_.emplace(name, Histogram{}).first;
    it->second.MergeFrom(hist);
  }
}

void MetricsRegistry::Clear() {
  counters_.clear();
  gauges_.clear();
  histograms_.clear();
  ++generation_;  // outstanding handles re-resolve their slots on next use
}

std::string JsonEscape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace pmig::sim
