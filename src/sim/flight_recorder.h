// Flight recorder: a per-host bounded ring of recent trace/span events kept in
// memory so a failed migration can be diagnosed *after the fact*.
//
// The chaos soak injects faults over hundreds of virtual seconds; when one
// migrate leg finally falls back, the interesting events happened long before
// anyone knew to look. The recorder is the always-cheap answer: every span
// begin/end and every migration-category kernel trace line is appended to a
// fixed-capacity ring for its host (old events fall off the back), and when a
// migrate transaction fails, falls back, or the kernel aborts a dump, the
// caller snapshots the ring into a JSONL post-mortem tagged with the trace id
// and a reason. Post-mortems are held in memory (tests assert on them) and
// optionally written to POSTMORTEM_<n>.jsonl files under a configured real
// directory.
//
// Recording is pure bookkeeping: it charges no virtual time and consumes no
// randomness, so an enabled recorder never perturbs the simulation.

#ifndef PMIG_SRC_SIM_FLIGHT_RECORDER_H_
#define PMIG_SRC_SIM_FLIGHT_RECORDER_H_

#include <cstdint>
#include <deque>
#include <map>
#include <string>
#include <vector>

#include "src/sim/clock.h"
#include "src/sim/time.h"

namespace pmig::sim {

struct FlightEvent {
  Nanos at = 0;
  std::string host;
  int32_t pid = -1;
  uint64_t trace_id = 0;
  std::string what;
};

class FlightRecorder {
 public:
  struct Postmortem {
    Nanos at = 0;
    std::string host;
    uint64_t trace_id = 0;
    std::string reason;
    std::string jsonl;  // one JSON object per line: the ring at dump time
  };

  explicit FlightRecorder(const VirtualClock* clock, size_t capacity_per_host = 256)
      : clock_(clock), capacity_(capacity_per_host) {}

  FlightRecorder(const FlightRecorder&) = delete;
  FlightRecorder& operator=(const FlightRecorder&) = delete;

  void set_enabled(bool on) { enabled_ = on; }
  bool enabled() const { return enabled_; }
  size_t capacity_per_host() const { return capacity_; }

  // Post-mortems are additionally written to `dir`/POSTMORTEM_<n>.jsonl on the
  // real filesystem when `dir` is non-empty. Empty (the default) keeps them in
  // memory only.
  void set_output_dir(std::string dir) { output_dir_ = std::move(dir); }

  // Appends an event to `host`'s ring, evicting the oldest past capacity.
  // No-op while disabled.
  void Note(const std::string& host, int32_t pid, uint64_t trace_id, std::string what);

  // Snapshots `host`'s ring into a post-mortem. A dump never clears the ring:
  // two failures in quick succession each get the full recent history.
  void Dump(const std::string& host, uint64_t trace_id, const std::string& reason);

  const std::vector<Postmortem>& postmortems() const { return postmortems_; }
  const std::deque<FlightEvent>& ring(const std::string& host) const;
  void Clear();

 private:
  bool enabled_ = false;
  const VirtualClock* clock_;
  size_t capacity_;
  std::string output_dir_;
  std::map<std::string, std::deque<FlightEvent>> rings_;
  std::vector<Postmortem> postmortems_;
};

}  // namespace pmig::sim

#endif  // PMIG_SRC_SIM_FLIGHT_RECORDER_H_
