#include "src/sim/fault_history.h"

#include <cmath>

namespace pmig::sim {

namespace {

// Failure weights. An unreachable host is the strongest evidence (the machine
// is dead or the wire to it is); a generic transport errno is ordinary; a tool
// that ran but reported a transient condition is the weakest.
constexpr double kUnreachableWeight = 2.0;
constexpr double kErrnoWeight = 1.0;
constexpr double kTransientWeight = 0.5;
// A completed command divides what remains of the score: one success after a
// recovery pulls a host most of the way back into the candidate pool.
constexpr double kSuccessFactor = 0.25;

}  // namespace

double FaultHistory::DecayedWeight(const Entry& e) const {
  if (e.weight <= 0) return 0;
  if (half_life_ <= 0) return e.weight;
  const Nanos elapsed = clock_->now() - e.as_of;
  if (elapsed <= 0) return e.weight;
  return e.weight *
         std::exp2(-static_cast<double>(elapsed) / static_cast<double>(half_life_));
}

FaultHistory::Entry& FaultHistory::Touch(std::string_view host) {
  auto it = entries_.find(host);
  if (it == entries_.end()) it = entries_.emplace(std::string(host), Entry{}).first;
  Entry& e = it->second;
  e.weight = DecayedWeight(e);
  e.as_of = clock_->now();
  return e;
}

void FaultHistory::RecordFailure(std::string_view host, Errno error) {
  Entry& e = Touch(host);
  e.weight += error == Errno::kHostUnreach ? kUnreachableWeight : kErrnoWeight;
  ++e.failures;
  if (listener_) listener_(host);
}

void FaultHistory::RecordTransient(std::string_view host) {
  Entry& e = Touch(host);
  e.weight += kTransientWeight;
  ++e.failures;
  if (listener_) listener_(host);
}

void FaultHistory::RecordSuccess(std::string_view host) {
  Entry& e = Touch(host);
  e.weight *= kSuccessFactor;
  ++e.successes;
  if (listener_) listener_(host);
}

double FaultHistory::Score(std::string_view host) const {
  const auto it = entries_.find(host);
  return it == entries_.end() ? 0.0 : DecayedWeight(it->second);
}

int64_t FaultHistory::failures(std::string_view host) const {
  const auto it = entries_.find(host);
  return it == entries_.end() ? 0 : it->second.failures;
}

int64_t FaultHistory::successes(std::string_view host) const {
  const auto it = entries_.find(host);
  return it == entries_.end() ? 0 : it->second.successes;
}

}  // namespace pmig::sim
