#include "src/sim/span.h"

#include <algorithm>

namespace pmig::sim {

uint64_t SpanLog::Begin(std::string phase, std::string host, int32_t pid) {
  if (!enabled_) return 0;
  SpanRecord record;
  record.id = next_id_++;
  record.phase = std::move(phase);
  record.host = std::move(host);
  record.pid = pid;
  record.begin = clock_->now();
  if (trace_ != nullptr && trace_->enabled()) {
    trace_->Add(TraceEvent{record.begin, TraceCategory::kMigration, record.host, record.pid,
                           "span begin id=" + std::to_string(record.id) +
                               " phase=" + record.phase});
  }
  spans_.push_back(std::move(record));
  return spans_.back().id;
}

void SpanLog::End(uint64_t id) {
  if (id == 0) return;
  for (auto it = spans_.rbegin(); it != spans_.rend(); ++it) {
    if (it->id != id) continue;
    if (it->closed()) return;  // double End; keep the first
    it->end = clock_->now();
    if (trace_ != nullptr && trace_->enabled()) {
      trace_->Add(TraceEvent{it->end, TraceCategory::kMigration, it->host, it->pid,
                             "span end id=" + std::to_string(it->id) + " phase=" + it->phase +
                                 " dur_ns=" + std::to_string(it->duration())});
    }
    return;
  }
}

const SpanRecord* SpanLog::Find(uint64_t id) const {
  for (const SpanRecord& s : spans_) {
    if (s.id == id) return &s;
  }
  return nullptr;
}

std::map<std::string, Nanos> SpanLog::PhaseSelfTimes() const {
  // Closed spans in Begin order are sorted by begin time, and spans on one
  // virtual timeline nest properly, so a stack sweep assigns each span to its
  // enclosing parent: pop every span that ended before this one starts, then the
  // stack top (if any) is the parent.
  struct Open {
    const SpanRecord* record;
    Nanos child_time = 0;
  };
  std::map<std::string, Nanos> out;
  std::vector<Open> stack;

  const auto finalize_top = [&] {
    const Open top = stack.back();
    stack.pop_back();
    const Nanos self = std::max<Nanos>(top.record->duration() - top.child_time, 0);
    out[top.record->phase] += self;
    if (!stack.empty()) stack.back().child_time += top.record->duration();
  };

  for (const SpanRecord& s : spans_) {
    if (!s.closed()) continue;
    while (!stack.empty() && stack.back().record->end <= s.begin) finalize_top();
    stack.push_back(Open{&s});
  }
  while (!stack.empty()) finalize_top();
  return out;
}

}  // namespace pmig::sim
