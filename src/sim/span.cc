#include "src/sim/span.h"

#include <algorithm>

#include "src/sim/flight_recorder.h"

namespace pmig::sim {

uint64_t SpanLog::Begin(std::string phase, std::string host, int32_t pid,
                        uint64_t trace_id, uint64_t parent_id) {
  if (!enabled_) return 0;
  SpanRecord record;
  record.id = next_id_++;
  record.phase = std::move(phase);
  record.host = std::move(host);
  record.pid = pid;
  record.begin = clock_->now();
  record.trace_id = trace_id;
  record.parent_id = parent_id;
  if (trace_ != nullptr && trace_->enabled()) {
    std::string text = "span begin id=" + std::to_string(record.id) +
                       " phase=" + record.phase;
    if (record.trace_id != 0) text += " trace=" + std::to_string(record.trace_id);
    trace_->Add(TraceEvent{record.begin, TraceCategory::kMigration, record.host, record.pid,
                           std::move(text)});
  }
  if (recorder_ != nullptr && recorder_->enabled()) {
    recorder_->Note(record.host, record.pid, record.trace_id,
                    "span begin phase=" + record.phase + " id=" + std::to_string(record.id));
  }
  spans_.push_back(std::move(record));
  return spans_.back().id;
}

void SpanLog::End(uint64_t id) {
  if (id == 0) return;
  for (auto it = spans_.rbegin(); it != spans_.rend(); ++it) {
    if (it->id != id) continue;
    if (it->closed()) return;  // double End; keep the first
    it->end = clock_->now();
    if (trace_ != nullptr && trace_->enabled()) {
      trace_->Add(TraceEvent{it->end, TraceCategory::kMigration, it->host, it->pid,
                             "span end id=" + std::to_string(it->id) + " phase=" + it->phase +
                                 " dur_ns=" + std::to_string(it->duration())});
    }
    if (recorder_ != nullptr && recorder_->enabled()) {
      recorder_->Note(it->host, it->pid, it->trace_id,
                      "span end phase=" + it->phase + " id=" + std::to_string(it->id) +
                          " dur_ns=" + std::to_string(it->duration()));
    }
    return;
  }
}

const SpanRecord* SpanLog::Find(uint64_t id) const {
  for (const SpanRecord& s : spans_) {
    if (s.id == id) return &s;
  }
  return nullptr;
}

std::map<std::string, Nanos> SpanLog::PhaseSelfTimes() const {
  // Closed spans in Begin order are sorted by begin time, and spans on one
  // virtual timeline nest properly, so a stack sweep assigns each span to its
  // enclosing parent: pop every span that ended before this one starts, then the
  // stack top (if any) is the parent.
  struct Open {
    const SpanRecord* record;
    Nanos child_time = 0;
  };
  std::map<std::string, Nanos> out;
  std::vector<Open> stack;

  const auto finalize_top = [&] {
    const Open top = stack.back();
    stack.pop_back();
    const Nanos self = std::max<Nanos>(top.record->duration() - top.child_time, 0);
    out[top.record->phase] += self;
    if (!stack.empty()) stack.back().child_time += top.record->duration();
  };

  for (const SpanRecord& s : spans_) {
    if (!s.closed()) continue;
    while (!stack.empty() && stack.back().record->end <= s.begin) finalize_top();
    stack.push_back(Open{&s});
  }
  while (!stack.empty()) finalize_top();
  return out;
}

std::vector<uint64_t> SpanLog::TraceIds() const {
  std::vector<uint64_t> ids;
  for (const SpanRecord& s : spans_) {
    if (s.trace_id == 0 || !s.closed()) continue;
    if (std::find(ids.begin(), ids.end(), s.trace_id) == ids.end()) ids.push_back(s.trace_id);
  }
  std::sort(ids.begin(), ids.end());
  return ids;
}

const SpanRecord* SpanLog::TraceRoot(uint64_t trace_id) const {
  if (trace_id == 0) return nullptr;
  for (const SpanRecord& s : spans_) {
    if (s.trace_id != trace_id || !s.closed()) continue;
    if (s.parent_id == 0) return &s;
    const SpanRecord* parent = Find(s.parent_id);
    if (parent == nullptr || parent->trace_id != trace_id) return &s;
  }
  return nullptr;
}

std::map<std::string, Nanos> SpanLog::TraceSelfTimes(uint64_t trace_id) const {
  // Tree-based, not timeline-based: a trace's spans live on several hosts, so
  // the stack sweep of PhaseSelfTimes does not apply; the explicit parent
  // links do. Children of one parent are sequential in virtual time (the
  // migration tools run their legs one after another), so subtracting direct
  // children's durations from each span partitions the root exactly.
  std::map<std::string, Nanos> out;
  if (trace_id == 0) return out;
  std::map<uint64_t, Nanos> child_time;
  for (const SpanRecord& s : spans_) {
    if (s.trace_id != trace_id || !s.closed()) continue;
    if (s.parent_id != 0) child_time[s.parent_id] += s.duration();
  }
  for (const SpanRecord& s : spans_) {
    if (s.trace_id != trace_id || !s.closed()) continue;
    const auto it = child_time.find(s.id);
    const Nanos children = it != child_time.end() ? it->second : 0;
    out[s.phase] += std::max<Nanos>(s.duration() - children, 0);
  }
  return out;
}

}  // namespace pmig::sim
