// Metrics: named counters, gauges, and virtual-time histograms.
//
// Each kernel owns one registry (per-host metrics, like a per-machine /dev/kmem
// statistics page); the cluster aggregates them for run reports. Everything is off
// by default: while disabled, Inc/Set/Observe return after a single branch and
// allocate nothing, so instrumentation can live permanently on hot paths without
// perturbing the deterministic virtual-time results (the figures must be
// bit-identical with metrics off).
//
// Names are dotted strings ("kernel.syscall.5", "net.bytes.brick->schooner");
// dynamic label material (syscall numbers, host pairs) is folded into the name, so
// callers that build names should guard on enabled() first.

#ifndef PMIG_SRC_SIM_METRICS_H_
#define PMIG_SRC_SIM_METRICS_H_

#include <array>
#include <cstdint>
#include <map>
#include <string>
#include <string_view>

#include "src/sim/time.h"

namespace pmig::sim {

// Log2-bucketed histogram of virtual-time durations (nanoseconds). Bucket i
// counts values v with 2^i <= v < 2^(i+1); bucket 0 also takes v <= 1.
struct Histogram {
  static constexpr size_t kBuckets = 48;  // 2^47 ns ≈ 39 hours, ample for any run

  int64_t count = 0;
  Nanos sum = 0;
  Nanos min = 0;
  Nanos max = 0;
  std::array<int64_t, kBuckets> buckets{};

  void Record(Nanos value);
  void MergeFrom(const Histogram& other);
  Nanos Mean() const { return count > 0 ? sum / count : 0; }
};

class MetricsRegistry {
 public:
  using CounterMap = std::map<std::string, int64_t, std::less<>>;
  using HistogramMap = std::map<std::string, Histogram, std::less<>>;

  void set_enabled(bool on) { enabled_ = on; }
  bool enabled() const { return enabled_; }

  // Monotonic counter. No-op (one branch, no allocation) while disabled.
  void Inc(std::string_view name, int64_t delta = 1) {
    if (!enabled_) return;
    Slot(counters_, name) += delta;
  }

  // Last-value gauge (e.g. the scheduler's current runnable count).
  void Set(std::string_view name, int64_t value) {
    if (!enabled_) return;
    Slot(gauges_, name) = value;
  }

  // Records one virtual-time duration into the named histogram.
  void Observe(std::string_view name, Nanos value);

  // Zero when the name has never been incremented/set.
  int64_t Counter(std::string_view name) const;
  int64_t Gauge(std::string_view name) const;
  const Histogram* FindHistogram(std::string_view name) const;

  const CounterMap& counters() const { return counters_; }
  const CounterMap& gauges() const { return gauges_; }
  const HistogramMap& histograms() const { return histograms_; }

  // Folds `other`'s data into this registry (counters and gauges add, histograms
  // merge), regardless of either registry's enabled flag — used by the cluster to
  // aggregate per-host registries into one report.
  void MergeFrom(const MetricsRegistry& other);

  void Clear();

 private:
  static int64_t& Slot(CounterMap& map, std::string_view name) {
    auto it = map.find(name);
    if (it == map.end()) it = map.emplace(std::string(name), 0).first;
    return it->second;
  }

  bool enabled_ = false;
  CounterMap counters_;
  CounterMap gauges_;
  HistogramMap histograms_;
};

// Minimal JSON string escaping for report writers (quotes, backslashes, control
// characters). Metric/host names are plain ASCII; this keeps the output valid
// even if one is not.
std::string JsonEscape(std::string_view s);

}  // namespace pmig::sim

#endif  // PMIG_SRC_SIM_METRICS_H_
