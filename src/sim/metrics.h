// Metrics: named counters, gauges, and virtual-time histograms.
//
// Each kernel owns one registry (per-host metrics, like a per-machine /dev/kmem
// statistics page); the cluster aggregates them for run reports. Everything is off
// by default: while disabled, Inc/Set/Observe return after a single branch and
// allocate nothing, so instrumentation can live permanently on hot paths without
// perturbing the deterministic virtual-time results (the figures must be
// bit-identical with metrics off).
//
// Names are dotted strings ("kernel.syscall.5", "net.bytes.brick->schooner");
// dynamic label material (syscall numbers, host pairs) is folded into the name, so
// callers that build names should guard on enabled() first.

#ifndef PMIG_SRC_SIM_METRICS_H_
#define PMIG_SRC_SIM_METRICS_H_

#include <array>
#include <cstdint>
#include <map>
#include <string>
#include <string_view>

#include "src/sim/time.h"

namespace pmig::sim {

// Log2-bucketed histogram of virtual-time durations (nanoseconds). Bucket i
// counts values v with 2^i <= v < 2^(i+1); bucket 0 also takes v <= 1.
struct Histogram {
  static constexpr size_t kBuckets = 48;  // 2^47 ns ≈ 39 hours, ample for any run

  int64_t count = 0;
  Nanos sum = 0;
  Nanos min = 0;
  Nanos max = 0;
  std::array<int64_t, kBuckets> buckets{};

  void Record(Nanos value);
  void MergeFrom(const Histogram& other);
  Nanos Mean() const { return count > 0 ? sum / count : 0; }
  // Estimated p-th percentile (p in [0,100]) from the log2 buckets: find the
  // bucket where the cumulative count crosses p% and interpolate linearly
  // within it, clamped to the exact observed [min, max]. Empty histogram: 0.
  Nanos Percentile(double p) const;
};

class CounterHandle;
class HistogramHandle;

class MetricsRegistry {
 public:
  using CounterMap = std::map<std::string, int64_t, std::less<>>;
  using HistogramMap = std::map<std::string, Histogram, std::less<>>;

  void set_enabled(bool on) { enabled_ = on; }
  bool enabled() const { return enabled_; }

  // Monotonic counter. No-op (one branch, no allocation) while disabled.
  void Inc(std::string_view name, int64_t delta = 1) {
    if (!enabled_) return;
    Slot(counters_, name) += delta;
  }

  // Last-value gauge (e.g. the scheduler's current runnable count).
  void Set(std::string_view name, int64_t value) {
    if (!enabled_) return;
    Slot(gauges_, name) = value;
  }

  // Records one virtual-time duration into the named histogram.
  void Observe(std::string_view name, Nanos value);

  // Zero when the name has never been incremented/set.
  int64_t Counter(std::string_view name) const;
  int64_t Gauge(std::string_view name) const;
  const Histogram* FindHistogram(std::string_view name) const;

  const CounterMap& counters() const { return counters_; }
  const CounterMap& gauges() const { return gauges_; }
  const HistogramMap& histograms() const { return histograms_; }

  // Folds `other`'s data into this registry (counters and gauges add, histograms
  // merge), regardless of either registry's enabled flag — used by the cluster to
  // aggregate per-host registries into one report.
  void MergeFrom(const MetricsRegistry& other);

  void Clear();

  // Pre-resolved handles for hot paths (syscall entry, VFS copy loops): resolve
  // the string-keyed map slot once and reuse the pointer on every subsequent
  // record. Cheap to construct; safe to keep for the registry's lifetime (Clear()
  // bumps a generation counter and the handle transparently re-resolves).
  CounterHandle MakeCounter(std::string_view name, bool gauge = false);
  HistogramHandle MakeHistogram(std::string_view name);

 private:
  friend class CounterHandle;
  friend class HistogramHandle;

  static int64_t& Slot(CounterMap& map, std::string_view name) {
    auto it = map.find(name);
    if (it == map.end()) it = map.emplace(std::string(name), 0).first;
    return it->second;
  }

  bool enabled_ = false;
  uint64_t generation_ = 0;  // bumped by Clear(); invalidates handle slots
  CounterMap counters_;
  CounterMap gauges_;
  HistogramMap histograms_;
};

// A counter (or gauge) whose map slot is resolved once per registry generation.
// While the registry is disabled, Inc/Set return after one branch and — unlike
// the dotted-name API — never even touch the name string. The slot itself is
// only materialised on the first enabled record, so a disabled run's report
// carries no phantom zero-valued entries.
class CounterHandle {
 public:
  CounterHandle() = default;

  void Inc(int64_t delta = 1) {
    if (registry_ == nullptr || !registry_->enabled_) return;
    if (slot_ == nullptr || generation_ != registry_->generation_) Rebind();
    *slot_ += delta;
  }
  void Set(int64_t value) {
    if (registry_ == nullptr || !registry_->enabled_) return;
    if (slot_ == nullptr || generation_ != registry_->generation_) Rebind();
    *slot_ = value;
  }

 private:
  friend class MetricsRegistry;
  CounterHandle(MetricsRegistry* registry, std::string name, bool gauge)
      : registry_(registry), name_(std::move(name)), gauge_(gauge) {}

  void Rebind() {
    // std::map nodes are pointer-stable, so the slot stays valid until Clear().
    slot_ = &MetricsRegistry::Slot(gauge_ ? registry_->gauges_ : registry_->counters_,
                                   name_);
    generation_ = registry_->generation_;
  }

  MetricsRegistry* registry_ = nullptr;
  std::string name_;
  bool gauge_ = false;
  int64_t* slot_ = nullptr;
  uint64_t generation_ = 0;
};

class HistogramHandle {
 public:
  HistogramHandle() = default;

  void Observe(Nanos value) {
    if (registry_ == nullptr || !registry_->enabled_) return;
    if (slot_ == nullptr || generation_ != registry_->generation_) Rebind();
    slot_->Record(value);
  }

 private:
  friend class MetricsRegistry;
  HistogramHandle(MetricsRegistry* registry, std::string name)
      : registry_(registry), name_(std::move(name)) {}

  void Rebind() {
    auto it = registry_->histograms_.find(name_);
    if (it == registry_->histograms_.end()) {
      it = registry_->histograms_.emplace(name_, Histogram{}).first;
    }
    slot_ = &it->second;
    generation_ = registry_->generation_;
  }

  MetricsRegistry* registry_ = nullptr;
  std::string name_;
  Histogram* slot_ = nullptr;
  uint64_t generation_ = 0;
};

inline CounterHandle MetricsRegistry::MakeCounter(std::string_view name, bool gauge) {
  return CounterHandle(this, std::string(name), gauge);
}
inline HistogramHandle MetricsRegistry::MakeHistogram(std::string_view name) {
  return HistogramHandle(this, std::string(name));
}

// Minimal JSON string escaping for report writers (quotes, backslashes, control
// characters). Metric/host names are plain ASCII; this keeps the output valid
// even if one is not.
std::string JsonEscape(std::string_view s);

}  // namespace pmig::sim

#endif  // PMIG_SRC_SIM_METRICS_H_
