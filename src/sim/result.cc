#include "src/sim/result.h"

namespace pmig {

std::string_view ErrnoName(Errno e) {
  switch (e) {
    case Errno::kOk:
      return "OK";
    case Errno::kPerm:
      return "EPERM";
    case Errno::kNoEnt:
      return "ENOENT";
    case Errno::kSrch:
      return "ESRCH";
    case Errno::kIntr:
      return "EINTR";
    case Errno::kIo:
      return "EIO";
    case Errno::kNoExec:
      return "ENOEXEC";
    case Errno::kBadF:
      return "EBADF";
    case Errno::kChild:
      return "ECHILD";
    case Errno::kAgain:
      return "EAGAIN";
    case Errno::kNoMem:
      return "ENOMEM";
    case Errno::kAcces:
      return "EACCES";
    case Errno::kFault:
      return "EFAULT";
    case Errno::kExist:
      return "EEXIST";
    case Errno::kXDev:
      return "EXDEV";
    case Errno::kNoDev:
      return "ENODEV";
    case Errno::kNotDir:
      return "ENOTDIR";
    case Errno::kIsDir:
      return "EISDIR";
    case Errno::kInval:
      return "EINVAL";
    case Errno::kNFile:
      return "ENFILE";
    case Errno::kMFile:
      return "EMFILE";
    case Errno::kNoTty:
      return "ENOTTY";
    case Errno::kFBig:
      return "EFBIG";
    case Errno::kNoSpc:
      return "ENOSPC";
    case Errno::kSPipe:
      return "ESPIPE";
    case Errno::kRoFs:
      return "EROFS";
    case Errno::kPipe:
      return "EPIPE";
    case Errno::kNameTooLong:
      return "ENAMETOOLONG";
    case Errno::kLoop:
      return "ELOOP";
    case Errno::kNotSock:
      return "ENOTSOCK";
    case Errno::kHostUnreach:
      return "EHOSTUNREACH";
    case Errno::kTimedOut:
      return "ETIMEDOUT";
  }
  return "E?";
}

}  // namespace pmig
