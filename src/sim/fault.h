// Deterministic fault injection for the simulated cluster.
//
// One FaultInjector is shared by every kernel and the network, the same way one
// VirtualClock is: because the whole simulation is a deterministic sequence of
// events, the injector's RNG draws happen in a fixed order and a given seed
// replays the exact same fault schedule every run. Faults surface to the code
// under test only as ordinary Errno values (ETIMEDOUT, EIO, ENOSPC, ...); the
// mechanism being exercised cannot tell an injected fault from a real one.
//
// The injector is configured through ClusterConfig::faults and is entirely
// inert — no RNG draws, no timers, no metrics — unless `enabled` is set, so
// default-config runs stay bit-identical to a build without it.

#ifndef PMIG_SRC_SIM_FAULT_H_
#define PMIG_SRC_SIM_FAULT_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "src/sim/clock.h"
#include "src/sim/metrics.h"
#include "src/sim/rng.h"

namespace pmig::sim {

// A half-open virtual-time window [begin, end) during which writes to `host`'s
// local disk fail with ENOSPC.
struct DiskFullWindow {
  std::string host;
  Nanos begin = 0;
  Nanos end = 0;
};

// Schedules `host` to power off at virtual time `at` and (optionally) come
// back at `recover_at`. recover_at < 0 means the host stays down.
struct HostCrash {
  std::string host;
  Nanos at = 0;
  Nanos recover_at = -1;
};

struct FaultConfig {
  bool enabled = false;
  uint64_t seed = 1;

  // Per-draw probabilities in [0, 1].
  double net_send_failure_rate = 0;   // rsh/daemon request lost on the wire
  double nfs_error_rate = 0;          // remote file I/O returns EIO
  double dump_corruption_rate = 0;    // a dump file's bytes are flipped on disk

  // Deterministically fail the first K network sends regardless of the rate —
  // lets tests script "one transient failure, then success" without tuning
  // probabilities.
  int net_fail_first = 0;

  std::vector<DiskFullWindow> disk_full;
  std::vector<HostCrash> crashes;
};

// The draw methods each consume RNG state only when their rate is nonzero, and
// bump the matching `fault.injected.*` counter when they fire. Callers pass the
// metrics registry of whichever host observed the fault (may be null).
class FaultInjector {
 public:
  FaultInjector(FaultConfig config, const VirtualClock* clock)
      : config_(std::move(config)), clock_(clock), rng_(config_.seed) {}

  bool enabled() const { return config_.enabled; }
  const FaultConfig& config() const { return config_; }

  // Turns all future injection off (scheduled crashes already armed as cluster
  // timers still fire). Chaos tests use this to drain the system cleanly after
  // the fault phase.
  void Disarm() { config_.enabled = false; }

  // A queued rsh/daemon request is lost in transit.
  bool NetSendFails(MetricsRegistry* metrics);

  // A read/write against a remote (NFS) inode fails with EIO.
  bool NfsIoFails(MetricsRegistry* metrics);

  // True while `host` sits inside a configured disk-full window.
  bool DiskFull(std::string_view host, MetricsRegistry* metrics);

  // This dump file's on-disk bytes get corrupted.
  bool CorruptsDump(MetricsRegistry* metrics);

  // Flips one bit in the magic-number prefix of `bytes` so the corruption is
  // structural — every dump-file parser rejects it — rather than silently
  // landing in payload bytes a restart might survive.
  void CorruptBytes(std::string* bytes);

 private:
  bool Draw(double rate, const char* metric, MetricsRegistry* metrics);

  FaultConfig config_;
  const VirtualClock* clock_;
  Rng rng_;
  int net_sends_ = 0;
};

}  // namespace pmig::sim

#endif  // PMIG_SRC_SIM_FAULT_H_
