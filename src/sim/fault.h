// Deterministic fault injection for the simulated cluster.
//
// One FaultInjector is shared by every kernel and the network, the same way one
// VirtualClock is: because the whole simulation is a deterministic sequence of
// events, the injector's RNG draws happen in a fixed order and a given seed
// replays the exact same fault schedule every run. Faults surface to the code
// under test only as ordinary Errno values (ETIMEDOUT, EIO, ENOSPC, ...); the
// mechanism being exercised cannot tell an injected fault from a real one.
//
// The injector is configured through ClusterConfig::faults and is entirely
// inert — no RNG draws, no timers, no metrics — unless `enabled` is set, so
// default-config runs stay bit-identical to a build without it.

#ifndef PMIG_SRC_SIM_FAULT_H_
#define PMIG_SRC_SIM_FAULT_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "src/sim/clock.h"
#include "src/sim/metrics.h"
#include "src/sim/rng.h"

namespace pmig::sim {

// A half-open virtual-time window [begin, end) during which writes to `host`'s
// local disk fail with ENOSPC.
struct DiskFullWindow {
  std::string host;
  Nanos begin = 0;
  Nanos end = 0;
};

// Schedules `host` to power off at virtual time `at` and (optionally) come
// back at `recover_at`. recover_at < 0 means the host stays down.
struct HostCrash {
  std::string host;
  Nanos at = 0;
  Nanos recover_at = -1;
};

// A network partition between two host groups, active during the half-open
// virtual-time window [begin, heal). heal < 0 means the partition never heals.
// An empty `group_b` means "everyone not in group_a". With `one_way` set, only
// traffic from group_a to group_b is cut (asymmetric link loss); replies and
// NFS requests in the other direction still flow. A nonzero `flap_period`
// makes the link flap: starting at `begin` the cut alternates on/off every
// `flap_period` of virtual time (cut first), until `heal`.
//
// Partition state is a pure function of this config and the virtual clock —
// no RNG draws, no injector state — so an armed-but-partition-free config
// replays bit-identically, and so reachability checks may be polled from
// BlockUntil predicates without perturbing the fault schedule.
struct PartitionFault {
  std::vector<std::string> group_a;
  std::vector<std::string> group_b;  // empty = complement of group_a
  Nanos begin = 0;
  Nanos heal = -1;       // < 0: never heals
  bool one_way = false;  // cut only a -> b
  Nanos flap_period = 0; // > 0: link flaps with this period until heal
};

struct FaultConfig {
  bool enabled = false;
  uint64_t seed = 1;

  // Per-draw probabilities in [0, 1].
  double net_send_failure_rate = 0;   // rsh/daemon request lost on the wire
  double nfs_error_rate = 0;          // remote file I/O returns EIO
  double dump_corruption_rate = 0;    // a dump file's bytes are flipped on disk

  // Deterministically fail the first K network sends regardless of the rate —
  // lets tests script "one transient failure, then success" without tuning
  // probabilities.
  int net_fail_first = 0;

  std::vector<DiskFullWindow> disk_full;
  std::vector<HostCrash> crashes;
  std::vector<PartitionFault> partitions;
};

// The draw methods each consume RNG state only when their rate is nonzero, and
// bump the matching `fault.injected.*` counter when they fire. Callers pass the
// metrics registry of whichever host observed the fault (may be null).
class FaultInjector {
 public:
  FaultInjector(FaultConfig config, const VirtualClock* clock)
      : config_(std::move(config)), clock_(clock), rng_(config_.seed) {}

  bool enabled() const { return config_.enabled; }
  const FaultConfig& config() const { return config_; }

  // Turns all future injection off (scheduled crashes already armed as cluster
  // timers still fire). Chaos tests use this to drain the system cleanly after
  // the fault phase.
  void Disarm() { config_.enabled = false; }

  // A queued rsh/daemon request is lost in transit.
  bool NetSendFails(MetricsRegistry* metrics);

  // A read/write against a remote (NFS) inode fails with EIO.
  bool NfsIoFails(MetricsRegistry* metrics);

  // True while `host` sits inside a configured disk-full window.
  bool DiskFull(std::string_view host, MetricsRegistry* metrics);

  // True while a configured partition blocks traffic from `from` to `to` at
  // the current virtual time. Pure (config, clock) — consumes no RNG state —
  // and safe to poll from wait predicates; pass null metrics when polling so
  // only decision points count injections.
  bool Partitioned(std::string_view from, std::string_view to,
                   MetricsRegistry* metrics) const;

  // This dump file's on-disk bytes get corrupted.
  bool CorruptsDump(MetricsRegistry* metrics);

  // Flips one bit in the magic-number prefix of `bytes` so the corruption is
  // structural — every dump-file parser rejects it — rather than silently
  // landing in payload bytes a restart might survive.
  void CorruptBytes(std::string* bytes);

 private:
  bool Draw(double rate, const char* metric, MetricsRegistry* metrics);

  FaultConfig config_;
  const VirtualClock* clock_;
  Rng rng_;
  int net_sends_ = 0;
};

}  // namespace pmig::sim

#endif  // PMIG_SRC_SIM_FAULT_H_
