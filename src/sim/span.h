// Phase spans: structured begin/end intervals layered on the trace log.
//
// The paper's evaluation is a cost breakdown — where the ~0.6 s of a SIGDUMP
// goes, how much of a remote-to-remote migrate is rsh connection setup. Spans
// attribute virtual time to those phases: the migration machinery opens a span
// per phase ("signal", "dump", "transfer", "setup", "restart", with a "migrate"
// root spanning the whole command), and the span log keeps the closed records
// for run reports. When the trace log is enabled, every Begin/End additionally
// emits a kMigration trace event carrying the span id, so a textual trace can be
// correlated with the structured report.
//
// Spans on one timeline nest (the simulator is sequential in virtual time), so
// per-phase totals are computed as *self* time: a span's duration minus the
// durations of the spans nested inside it. Summing self time over every phase of
// a migration therefore reproduces the end-to-end time exactly.

#ifndef PMIG_SRC_SIM_SPAN_H_
#define PMIG_SRC_SIM_SPAN_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "src/sim/clock.h"
#include "src/sim/time.h"
#include "src/sim/trace.h"

namespace pmig::sim {

class FlightRecorder;

struct SpanRecord {
  uint64_t id = 0;
  std::string phase;
  std::string host;
  int32_t pid = -1;
  Nanos begin = 0;
  Nanos end = -1;  // -1 while open
  // Distributed-trace context: spans recorded on different hosts that carry the
  // same trace_id belong to one causal migration, and parent_id links them into
  // a tree (0 = root / no parent). Both are 0 for spans opened outside a trace.
  uint64_t trace_id = 0;
  uint64_t parent_id = 0;

  bool closed() const { return end >= 0; }
  Nanos duration() const { return closed() ? end - begin : 0; }
};

class SpanLog {
 public:
  // `trace` may be null; begin/end events are emitted only when it is non-null
  // and enabled.
  SpanLog(VirtualClock* clock, TraceLog* trace) : clock_(clock), trace_(trace) {}

  SpanLog(const SpanLog&) = delete;
  SpanLog& operator=(const SpanLog&) = delete;

  void set_enabled(bool on) { enabled_ = on; }
  bool enabled() const { return enabled_; }

  // Opens a span at the current virtual time. Returns its id, or 0 while
  // disabled (End(0) is a no-op, so callers need not re-check). The trace_id /
  // parent_id pair is the caller's distributed-trace context; 0/0 records a
  // context-free span exactly as before.
  uint64_t Begin(std::string phase, std::string host, int32_t pid,
                 uint64_t trace_id = 0, uint64_t parent_id = 0);
  void End(uint64_t id);

  // Mints a cluster-unique trace id (one SpanLog is shared cluster-wide).
  // Returns 0 while disabled so a disabled run never stamps ids anywhere.
  uint64_t MintTraceId() { return enabled_ ? next_trace_id_++ : 0; }

  // Events additionally mirror into `recorder` (may be null) when it is
  // enabled; the recorder never charges virtual time.
  void set_flight_recorder(FlightRecorder* recorder) { recorder_ = recorder; }

  const std::vector<SpanRecord>& spans() const { return spans_; }
  const SpanRecord* Find(uint64_t id) const;
  void Clear() { spans_.clear(); }

  // Self (exclusive) virtual time per phase over all closed spans: each span's
  // duration minus the durations of spans nested directly inside it. Open spans
  // are ignored.
  std::map<std::string, Nanos> PhaseSelfTimes() const;

  // All distinct nonzero trace ids with at least one closed span, ascending.
  std::vector<uint64_t> TraceIds() const;
  // Root span of a trace (closed span with this trace_id whose parent_id is 0
  // or refers to no recorded span), or nullptr.
  const SpanRecord* TraceRoot(uint64_t trace_id) const;
  // Per-phase self time within one trace, computed from the parent links (not
  // the timeline sweep), so it works across hosts: each span's duration minus
  // its direct children's durations. Summing over a well-nested trace tree
  // reproduces the root's duration exactly.
  std::map<std::string, Nanos> TraceSelfTimes(uint64_t trace_id) const;

 private:
  bool enabled_ = false;
  uint64_t next_id_ = 1;
  uint64_t next_trace_id_ = 1;
  VirtualClock* clock_;
  TraceLog* trace_;
  FlightRecorder* recorder_ = nullptr;
  std::vector<SpanRecord> spans_;
};

// RAII span: opens on construction, closes on destruction. A null log (or a
// disabled one) makes the scope a no-op, so instrumentation sites never branch.
class SpanScope {
 public:
  SpanScope(SpanLog* log, std::string phase, std::string host, int32_t pid)
      : log_(log),
        id_(log != nullptr ? log->Begin(std::move(phase), std::move(host), pid) : 0) {}
  ~SpanScope() {
    if (id_ != 0) log_->End(id_);
  }

  SpanScope(const SpanScope&) = delete;
  SpanScope& operator=(const SpanScope&) = delete;

  uint64_t id() const { return id_; }

 private:
  SpanLog* log_;
  uint64_t id_;
};

}  // namespace pmig::sim

#endif  // PMIG_SRC_SIM_SPAN_H_
