// Phase spans: structured begin/end intervals layered on the trace log.
//
// The paper's evaluation is a cost breakdown — where the ~0.6 s of a SIGDUMP
// goes, how much of a remote-to-remote migrate is rsh connection setup. Spans
// attribute virtual time to those phases: the migration machinery opens a span
// per phase ("signal", "dump", "transfer", "setup", "restart", with a "migrate"
// root spanning the whole command), and the span log keeps the closed records
// for run reports. When the trace log is enabled, every Begin/End additionally
// emits a kMigration trace event carrying the span id, so a textual trace can be
// correlated with the structured report.
//
// Spans on one timeline nest (the simulator is sequential in virtual time), so
// per-phase totals are computed as *self* time: a span's duration minus the
// durations of the spans nested inside it. Summing self time over every phase of
// a migration therefore reproduces the end-to-end time exactly.

#ifndef PMIG_SRC_SIM_SPAN_H_
#define PMIG_SRC_SIM_SPAN_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "src/sim/clock.h"
#include "src/sim/time.h"
#include "src/sim/trace.h"

namespace pmig::sim {

struct SpanRecord {
  uint64_t id = 0;
  std::string phase;
  std::string host;
  int32_t pid = -1;
  Nanos begin = 0;
  Nanos end = -1;  // -1 while open

  bool closed() const { return end >= 0; }
  Nanos duration() const { return closed() ? end - begin : 0; }
};

class SpanLog {
 public:
  // `trace` may be null; begin/end events are emitted only when it is non-null
  // and enabled.
  SpanLog(VirtualClock* clock, TraceLog* trace) : clock_(clock), trace_(trace) {}

  SpanLog(const SpanLog&) = delete;
  SpanLog& operator=(const SpanLog&) = delete;

  void set_enabled(bool on) { enabled_ = on; }
  bool enabled() const { return enabled_; }

  // Opens a span at the current virtual time. Returns its id, or 0 while
  // disabled (End(0) is a no-op, so callers need not re-check).
  uint64_t Begin(std::string phase, std::string host, int32_t pid);
  void End(uint64_t id);

  const std::vector<SpanRecord>& spans() const { return spans_; }
  const SpanRecord* Find(uint64_t id) const;
  void Clear() { spans_.clear(); }

  // Self (exclusive) virtual time per phase over all closed spans: each span's
  // duration minus the durations of spans nested directly inside it. Open spans
  // are ignored.
  std::map<std::string, Nanos> PhaseSelfTimes() const;

 private:
  bool enabled_ = false;
  uint64_t next_id_ = 1;
  VirtualClock* clock_;
  TraceLog* trace_;
  std::vector<SpanRecord> spans_;
};

// RAII span: opens on construction, closes on destruction. A null log (or a
// disabled one) makes the scope a no-op, so instrumentation sites never branch.
class SpanScope {
 public:
  SpanScope(SpanLog* log, std::string phase, std::string host, int32_t pid)
      : log_(log),
        id_(log != nullptr ? log->Begin(std::move(phase), std::move(host), pid) : 0) {}
  ~SpanScope() {
    if (id_ != 0) log_->End(id_);
  }

  SpanScope(const SpanScope&) = delete;
  SpanScope& operator=(const SpanScope&) = delete;

  uint64_t id() const { return id_; }

 private:
  SpanLog* log_;
  uint64_t id_;
};

}  // namespace pmig::sim

#endif  // PMIG_SRC_SIM_SPAN_H_
