// Virtual-time vocabulary types.
//
// All simulated time is integer nanoseconds on a single virtual timeline shared by
// every machine in a cluster. Nothing in the library reads the wall clock; identical
// inputs produce identical timings, which is what makes the benchmark figures
// reproducible bit-for-bit.

#ifndef PMIG_SRC_SIM_TIME_H_
#define PMIG_SRC_SIM_TIME_H_

#include <cstdint>

namespace pmig::sim {

// Durations and instants in virtual nanoseconds. Plain integers (rather than
// std::chrono) keep the cost-model arithmetic transparent and overflow-checkable.
using Nanos = int64_t;

constexpr Nanos kNanosecond = 1;
constexpr Nanos kMicrosecond = 1'000;
constexpr Nanos kMillisecond = 1'000'000;
constexpr Nanos kSecond = 1'000'000'000;

constexpr Nanos Micros(int64_t n) { return n * kMicrosecond; }
constexpr Nanos Millis(int64_t n) { return n * kMillisecond; }
constexpr Nanos Seconds(int64_t n) { return n * kSecond; }

constexpr double ToSeconds(Nanos n) { return static_cast<double>(n) / kSecond; }
constexpr double ToMillis(Nanos n) { return static_cast<double>(n) / kMillisecond; }

}  // namespace pmig::sim

#endif  // PMIG_SRC_SIM_TIME_H_
