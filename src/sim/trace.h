// Event trace: a bounded in-memory log of simulator events.
//
// Kernels, the network, and the migration tools append human-readable events tagged
// with virtual time, host, and pid. Tests assert on event sequences; examples print
// them; benchmarks leave tracing off. The buffer is bounded so long benchmark runs
// cannot grow without limit.

#ifndef PMIG_SRC_SIM_TRACE_H_
#define PMIG_SRC_SIM_TRACE_H_

#include <cstdint>
#include <deque>
#include <optional>
#include <string>
#include <vector>

#include "src/sim/time.h"

namespace pmig::sim {

enum class TraceCategory : uint8_t {
  kSyscall,
  kSignal,
  kSched,
  kFs,
  kNet,
  kMigration,
  kApp,
};

std::string_view TraceCategoryName(TraceCategory c);

struct TraceEvent {
  Nanos when = 0;
  TraceCategory category = TraceCategory::kApp;
  std::string host;
  int32_t pid = -1;
  std::string text;

  std::string Format() const;
};

class TraceLog {
 public:
  explicit TraceLog(size_t capacity = 16384) : capacity_(capacity) {}

  void set_enabled(bool on) { enabled_ = on; }
  bool enabled() const { return enabled_; }

  void Add(TraceEvent event);

  const std::deque<TraceEvent>& events() const { return events_; }
  void Clear() { events_.clear(); }

  // All events whose text contains `needle`, oldest first, optionally restricted
  // to one category.
  std::vector<const TraceEvent*> Matching(
      std::string_view needle, std::optional<TraceCategory> category = std::nullopt) const;

  // Number of events whose text contains `needle` (same optional category
  // filter). Counts in place — no intermediate vector.
  size_t CountMatching(std::string_view needle,
                       std::optional<TraceCategory> category = std::nullopt) const;

 private:
  bool enabled_ = false;
  size_t capacity_;
  std::deque<TraceEvent> events_;
};

}  // namespace pmig::sim

#endif  // PMIG_SRC_SIM_TRACE_H_
