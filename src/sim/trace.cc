#include "src/sim/trace.h"

#include <cstdio>

namespace pmig::sim {

std::string_view TraceCategoryName(TraceCategory c) {
  switch (c) {
    case TraceCategory::kSyscall:
      return "syscall";
    case TraceCategory::kSignal:
      return "signal";
    case TraceCategory::kSched:
      return "sched";
    case TraceCategory::kFs:
      return "fs";
    case TraceCategory::kNet:
      return "net";
    case TraceCategory::kMigration:
      return "migration";
    case TraceCategory::kApp:
      return "app";
  }
  return "?";
}

std::string TraceEvent::Format() const {
  char head[128];
  std::snprintf(head, sizeof(head), "[%10.6fs %-9s %s:%d] ", ToSeconds(when),
                std::string(TraceCategoryName(category)).c_str(), host.c_str(), pid);
  return std::string(head) + text;
}

void TraceLog::Add(TraceEvent event) {
  if (!enabled_) return;
  if (events_.size() >= capacity_) {
    events_.pop_front();
  }
  events_.push_back(std::move(event));
}

namespace {

bool EventMatches(const TraceEvent& e, std::string_view needle,
                  std::optional<TraceCategory> category) {
  if (category.has_value() && e.category != *category) return false;
  return e.text.find(needle) != std::string::npos;
}

}  // namespace

std::vector<const TraceEvent*> TraceLog::Matching(std::string_view needle,
                                                  std::optional<TraceCategory> category) const {
  std::vector<const TraceEvent*> out;
  for (const TraceEvent& e : events_) {
    if (EventMatches(e, needle, category)) {
      out.push_back(&e);
    }
  }
  return out;
}

size_t TraceLog::CountMatching(std::string_view needle,
                               std::optional<TraceCategory> category) const {
  size_t n = 0;
  for (const TraceEvent& e : events_) {
    if (EventMatches(e, needle, category)) ++n;
  }
  return n;
}

}  // namespace pmig::sim
