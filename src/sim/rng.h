// Deterministic pseudo-random numbers for workload generators and property tests.
//
// SplitMix64: tiny, fast, well-distributed, and — unlike std::mt19937 plus
// std::uniform_int_distribution — identical across standard libraries, so recorded
// benchmark workloads replay exactly everywhere.

#ifndef PMIG_SRC_SIM_RNG_H_
#define PMIG_SRC_SIM_RNG_H_

#include <cstdint>
#include <string>
#include <vector>

namespace pmig::sim {

class Rng {
 public:
  explicit Rng(uint64_t seed) : state_(seed) {}

  uint64_t Next();

  // Uniform in [0, bound). bound must be > 0.
  uint64_t Below(uint64_t bound);

  // Uniform in [lo, hi] inclusive.
  int64_t Range(int64_t lo, int64_t hi);

  // Uniform in [0, 1).
  double Double();

  bool Chance(double p) { return Double() < p; }

  // Random lower-case identifier of the given length (for generated path names).
  std::string Ident(int len);

  // Picks one element of a non-empty vector.
  template <typename T>
  const T& Pick(const std::vector<T>& v) {
    return v[Below(v.size())];
  }

 private:
  uint64_t state_;
};

}  // namespace pmig::sim

#endif  // PMIG_SRC_SIM_RNG_H_
