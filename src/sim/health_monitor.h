// Cluster health monitor: retained per-host time series, online anomaly
// detection, and SLO error-budget / burn-rate alerting.
//
// The migration machinery emits rich raw signals (spans, metrics, post-mortems)
// but nothing *watches* them — a host whose restarts quietly triple in latency
// is only noticed when a human reads a report. The monitor closes that loop:
//
//   series    — every observation lands in a per-(host, metric) TimeSeries
//               (bounded ring + downsampling tiers), stamped with the virtual
//               time the caller passes in. Feeders: the cluster's lockstep
//               sampler (load, segcache bytes, fault score), the kernel's dump
//               and restart paths (latency, bytes), and every migrate leg
//               (end-to-end latency, per-host error outcomes).
//   anomaly   — an online detector per series: Welford rolling mean/variance
//               for the baseline, an EWMA for "what the signal is doing now",
//               and a z-score between them. Crossing the threshold raises an
//               anomaly (with hysteresis); the baseline freezes while anomalous
//               so a sustained shift cannot teach itself normal.
//   SLOs      — per-operation objectives ("migrate end-to-end ≤ 3 s for 90% of
//               migrations") with error-budget accounting over a window and
//               classic fast/slow burn-rate alert rules, all evaluated in
//               virtual time at observation/tick edges (never via clock timers).
//
// Alerts surface three ways: {"type":"alert"} lines in Cluster::WriteReport, a
// FlightRecorder post-mortem tagged [alert=<rule> host=<h>] at each firing
// edge, and a per-host HealthScore that the placement engine reads to demote
// anomalous (not just faulted) hosts under the fault-aware policies.
//
// Everything here is pure bookkeeping: no RNG, no timers, no virtual-time
// charge, and no clock reads outside the values callers pass in — so a monitor
// nobody reads leaves every virtual-time result bit-identical, and the default
// configuration (no SLOs, anomaly detection off) disables the monitor outright.

#ifndef PMIG_SRC_SIM_HEALTH_MONITOR_H_
#define PMIG_SRC_SIM_HEALTH_MONITOR_H_

#include <cstdint>
#include <deque>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "src/sim/clock.h"
#include "src/sim/time.h"
#include "src/sim/time_series.h"

namespace pmig::sim {

class FlightRecorder;

// One service-level objective over a monitored series. An observation of
// `metric` counts against the objective when its value exceeds `threshold`
// (for error-outcome series, threshold 0.5 makes every bad outcome a
// violation). Budgets and burn rates are tracked per host, because every
// observation is host-attributed.
struct Slo {
  std::string name;    // rule name, e.g. "migrate-e2e"
  std::string metric;  // series it watches, e.g. "migrate.e2e_ns"
  double threshold = 0;
  double objective = 0.99;         // promised fraction of good observations
  Nanos window = Seconds(60);      // error-budget accounting window
  Nanos fast_window = Seconds(5);  // burn measured over this fires a page...
  double fast_burn = 10.0;         // ...at this multiple of budget rate
  Nanos slow_window = Seconds(30); // ...and over this files a ticket
  double slow_burn = 2.0;
  int min_events = 3;  // windows with fewer observations never fire
};

struct HealthOptions {
  // Arms the Welford/EWMA detector on every series the monitor retains.
  bool anomaly_detection = false;
  // Retention shape of each per-(host, metric) series.
  size_t series_points_per_tier = 64;
  size_t series_tiers = 3;
  // Weight of the newest observation in the EWMA ("what the signal does now").
  double ewma_alpha = 0.3;
  // |ewma - mean| / sigma at which a series becomes anomalous, and the
  // hysteresis level below which it recovers.
  double anomaly_z = 3.0;
  double anomaly_clear_z = 1.5;
  // Baseline observations required before detection arms (a two-point history
  // has no business declaring anomalies).
  int min_samples = 8;
  // Sigma floor, as a fraction of the observed value range: near-constant
  // series would otherwise turn any wiggle into an infinite z-score.
  double min_sigma_frac = 0.05;
};

// One firing (and possibly later resolution) of an alert rule against a host.
struct HealthAlert {
  Nanos at = 0;
  std::string rule;  // "anomaly:<metric>", "<slo>:fast", or "<slo>:slow"
  std::string host;
  double value = 0;  // z-score or burn rate at the firing edge
  std::string detail;
  bool resolved = false;
  Nanos resolved_at = -1;
};

class HealthMonitor {
 public:
  HealthMonitor(const VirtualClock* clock, HealthOptions options, std::vector<Slo> slos);

  HealthMonitor(const HealthMonitor&) = delete;
  HealthMonitor& operator=(const HealthMonitor&) = delete;

  // Armed iff anomaly detection is on or at least one SLO is configured. While
  // disabled every entry point is a single-branch no-op, so default-config runs
  // carry no monitor state at all.
  bool enabled() const { return enabled_; }
  const HealthOptions& options() const { return options_; }
  const std::vector<Slo>& slos() const { return slos_; }

  // Alert firing edges additionally dump a post-mortem here (may be null).
  void set_flight_recorder(FlightRecorder* recorder) { recorder_ = recorder; }

  // Records one observation of `metric` against `host` at the current virtual
  // time: appends to the series, advances the anomaly detector, and feeds every
  // SLO watching the metric.
  void Observe(std::string_view host, std::string_view metric, double value);
  // Convenience for error-rate series: observes 1 (bad) or 0 (good).
  void ObserveOutcome(std::string_view host, std::string_view metric, bool bad) {
    Observe(host, metric, bad ? 1.0 : 0.0);
  }

  // Re-evaluates burn-rate alert states at the current virtual time (window
  // contents age out even when no new observation arrives). The cluster's
  // lockstep sampler calls this; it is idempotent and costs no virtual time.
  void Tick();

  // --- Read side (surveys: no virtual time, no RNG) ---
  // Hosts with at least one retained series, sorted.
  std::vector<std::string> Hosts() const;
  std::vector<std::string> SeriesNames(std::string_view host) const;
  const TimeSeries* Series(std::string_view host, std::string_view metric) const;

  // Current z-score of the series' EWMA against its baseline (0 until the
  // detector has min_samples of baseline), and whether it is anomalous now.
  double AnomalyZ(std::string_view host, std::string_view metric) const;
  bool Anomalous(std::string_view host, std::string_view metric) const;

  // The health penalty placement reads: 0 for a healthy host; +1 per anomalous
  // series, +2 per firing fast-burn alert, +1 per firing slow-burn alert. The
  // fault-aware placement policies demote hosts at or above their threshold
  // (default 1.0 — any active signal demotes).
  double HealthScore(std::string_view host) const;

  // SLO budget status per (rule, host) with at least one observation.
  struct BudgetStatus {
    const Slo* slo = nullptr;
    std::string host;
    int64_t events = 0;      // observations inside `window`
    int64_t bad = 0;         // violations inside `window`
    double allowed = 0;      // error budget: (1 - objective) * events
    double burn_fast = 0;    // bad-fraction over fast_window / (1 - objective)
    double burn_slow = 0;
    bool firing_fast = false;
    bool firing_slow = false;
  };
  std::vector<BudgetStatus> Budgets() const;

  // Every alert ever fired, in firing order (resolved ones stay, flagged).
  const std::vector<HealthAlert>& alerts() const { return alerts_; }
  int ActiveAlerts() const;

 private:
  struct SeriesKey {
    std::string host;
    std::string metric;
    bool operator<(const SeriesKey& o) const {
      if (host != o.host) return host < o.host;
      return metric < o.metric;
    }
  };

  // Online detector state for one series.
  struct Detector {
    int64_t n = 0;  // baseline sample count (anomalous samples are not folded in)
    double mean = 0;
    double m2 = 0;  // Welford sum of squared deviations
    double ewma = 0;
    bool ewma_init = false;
    double lo = 0, hi = 0;  // observed value range, all samples (sigma floor)
    bool range_init = false;
    double z = 0;
    bool anomalous = false;
  };

  // Sliding outcome window for one (slo, host) pair.
  struct SloState {
    size_t slo_index = 0;
    std::deque<std::pair<Nanos, bool>> events;  // (at, violated)
    bool firing_fast = false;
    bool firing_slow = false;
  };

  struct Burn {
    int64_t events = 0;
    int64_t bad = 0;
    double rate = 0;  // bad fraction / allowed fraction
  };

  void ObserveAnomaly(const SeriesKey& key, Detector& d, double value);
  void ObserveSlo(SloState& state, const std::string& host, Nanos now, bool violated);
  void EvaluateSlo(SloState& state, const std::string& host, Nanos now);
  Burn BurnOver(const SloState& state, Nanos now, Nanos window) const;
  void Raise(const std::string& rule, const std::string& host, double value,
             const std::string& detail);
  void Resolve(const std::string& rule, const std::string& host);

  bool enabled_;
  const VirtualClock* clock_;
  HealthOptions options_;
  std::vector<Slo> slos_;
  FlightRecorder* recorder_ = nullptr;
  std::map<SeriesKey, TimeSeries> series_;
  std::map<SeriesKey, Detector> detectors_;
  std::map<std::pair<size_t, std::string>, SloState> slo_states_;  // (slo idx, host)
  std::vector<HealthAlert> alerts_;
  std::map<std::string, size_t> open_alerts_;  // "rule|host" -> index in alerts_
};

}  // namespace pmig::sim

#endif  // PMIG_SRC_SIM_HEALTH_MONITOR_H_
