#include "src/sim/health_monitor.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "src/sim/flight_recorder.h"

namespace pmig::sim {

namespace {

std::string AlertKey(const std::string& rule, const std::string& host) {
  return rule + "|" + host;
}

std::string FormatValue(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.3g", v);
  return buf;
}

}  // namespace

HealthMonitor::HealthMonitor(const VirtualClock* clock, HealthOptions options,
                             std::vector<Slo> slos)
    : enabled_(options.anomaly_detection || !slos.empty()),
      clock_(clock),
      options_(options),
      slos_(std::move(slos)) {}

void HealthMonitor::Observe(std::string_view host, std::string_view metric,
                            double value) {
  if (!enabled_) return;
  const Nanos now = clock_->now();
  const SeriesKey key{std::string(host), std::string(metric)};
  auto it = series_.find(key);
  if (it == series_.end()) {
    it = series_
             .emplace(key, TimeSeries(options_.series_points_per_tier,
                                      options_.series_tiers))
             .first;
  }
  it->second.Append(now, value);

  if (options_.anomaly_detection) ObserveAnomaly(key, detectors_[key], value);

  for (size_t i = 0; i < slos_.size(); ++i) {
    if (slos_[i].metric != metric) continue;
    SloState& state = slo_states_[{i, key.host}];
    state.slo_index = i;
    ObserveSlo(state, key.host, now, value > slos_[i].threshold);
  }
}

void HealthMonitor::ObserveAnomaly(const SeriesKey& key, Detector& d, double value) {
  // EWMA tracks the signal's present regardless of anomaly state, so a
  // recovered signal pulls itself back under the threshold and resolves.
  d.ewma = d.ewma_init ? options_.ewma_alpha * value + (1 - options_.ewma_alpha) * d.ewma
                       : value;
  d.ewma_init = true;

  // The range (sigma floor) tracks every observation, anomalous ones included.
  // A pristine all-identical baseline (an error series of all zeros) would
  // otherwise keep a degenerate floor after the first deviation and never
  // resolve: once 1.0 enters the range, the floor is 0.05 and a few clean
  // observations pull the EWMA back under the clear threshold.
  if (!d.range_init) {
    d.lo = d.hi = value;
    d.range_init = true;
  } else {
    d.lo = std::min(d.lo, value);
    d.hi = std::max(d.hi, value);
  }

  if (d.n >= options_.min_samples) {
    const double variance =
        d.n > 1 ? d.m2 / static_cast<double>(d.n - 1) : 0.0;
    double sigma = std::sqrt(std::max(variance, 0.0));
    // Sigma floor: a near-constant baseline (every migrate succeeding, a flat
    // load) must not turn the first wiggle into an infinite z-score — but it
    // should still register a clear shift. Floor at a fraction of the observed
    // range, with a tiny absolute floor for the all-identical case.
    const double range = d.range_init ? d.hi - d.lo : 0.0;
    sigma = std::max({sigma, options_.min_sigma_frac * range, 1e-9});
    d.z = std::abs(d.ewma - d.mean) / sigma;
  } else {
    d.z = 0;
  }

  const bool was = d.anomalous;
  if (!was && d.z >= options_.anomaly_z) {
    d.anomalous = true;
    Raise("anomaly:" + key.metric, key.host, d.z,
          "ewma=" + FormatValue(d.ewma) + " baseline=" + FormatValue(d.mean) +
              " z=" + FormatValue(d.z));
  } else if (was && d.z < options_.anomaly_clear_z) {
    d.anomalous = false;
    Resolve("anomaly:" + key.metric, key.host);
  }

  // The baseline learns only from non-anomalous observations: a sustained shift
  // must stay anomalous rather than teaching itself normal. (It still recovers:
  // once the EWMA returns to baseline the series resolves and learning resumes.)
  if (!d.anomalous) {
    ++d.n;
    const double delta = value - d.mean;
    d.mean += delta / static_cast<double>(d.n);
    d.m2 += delta * (value - d.mean);
  }
}

HealthMonitor::Burn HealthMonitor::BurnOver(const SloState& state, Nanos now,
                                            Nanos window) const {
  Burn burn;
  const Nanos since = now - window;
  for (const auto& [at, violated] : state.events) {
    if (at < since) continue;
    ++burn.events;
    if (violated) ++burn.bad;
  }
  const Slo& slo = slos_[state.slo_index];
  const double allowed_frac = std::max(1.0 - slo.objective, 1e-9);
  if (burn.events >= slo.min_events) {
    burn.rate = (static_cast<double>(burn.bad) / static_cast<double>(burn.events)) /
                allowed_frac;
  }
  return burn;
}

void HealthMonitor::ObserveSlo(SloState& state, const std::string& host, Nanos now,
                               bool violated) {
  state.events.emplace_back(now, violated);
  const Slo& slo = slos_[state.slo_index];
  const Nanos keep = std::max({slo.window, slo.fast_window, slo.slow_window});
  while (!state.events.empty() && state.events.front().first < now - keep) {
    state.events.pop_front();
  }
  EvaluateSlo(state, host, now);
}

void HealthMonitor::EvaluateSlo(SloState& state, const std::string& host, Nanos now) {
  const Slo& slo = slos_[state.slo_index];
  const Burn fast = BurnOver(state, now, slo.fast_window);
  const Burn slow = BurnOver(state, now, slo.slow_window);
  // Hysteresis at 80%: a rate hovering exactly at the threshold must not
  // flap an alert on every observation.
  if (!state.firing_fast && fast.rate >= slo.fast_burn) {
    state.firing_fast = true;
    Raise(slo.name + ":fast", host, fast.rate,
          "burn=" + FormatValue(fast.rate) + "x over " +
              std::to_string(slo.fast_window / 1000000000) + "s (" +
              std::to_string(fast.bad) + "/" + std::to_string(fast.events) + " bad)");
  } else if (state.firing_fast && fast.rate < 0.8 * slo.fast_burn) {
    state.firing_fast = false;
    Resolve(slo.name + ":fast", host);
  }
  if (!state.firing_slow && slow.rate >= slo.slow_burn) {
    state.firing_slow = true;
    Raise(slo.name + ":slow", host, slow.rate,
          "burn=" + FormatValue(slow.rate) + "x over " +
              std::to_string(slo.slow_window / 1000000000) + "s (" +
              std::to_string(slow.bad) + "/" + std::to_string(slow.events) + " bad)");
  } else if (state.firing_slow && slow.rate < 0.8 * slo.slow_burn) {
    state.firing_slow = false;
    Resolve(slo.name + ":slow", host);
  }
}

void HealthMonitor::Tick() {
  if (!enabled_) return;
  const Nanos now = clock_->now();
  for (auto& [key, state] : slo_states_) {
    EvaluateSlo(state, key.second, now);
  }
}

void HealthMonitor::Raise(const std::string& rule, const std::string& host,
                          double value, const std::string& detail) {
  HealthAlert alert;
  alert.at = clock_->now();
  alert.rule = rule;
  alert.host = host;
  alert.value = value;
  alert.detail = detail;
  open_alerts_[AlertKey(rule, host)] = alerts_.size();
  alerts_.push_back(std::move(alert));
  if (recorder_ != nullptr && recorder_->enabled()) {
    // The same [alert=...] tag WriteReport and the terminal views use, so an
    // alert greps straight to the ring snapshot of what led up to it.
    recorder_->Dump(host, 0, "[alert=" + rule + " host=" + host + "] " + detail);
  }
}

void HealthMonitor::Resolve(const std::string& rule, const std::string& host) {
  const auto it = open_alerts_.find(AlertKey(rule, host));
  if (it == open_alerts_.end()) return;
  alerts_[it->second].resolved = true;
  alerts_[it->second].resolved_at = clock_->now();
  open_alerts_.erase(it);
}

std::vector<std::string> HealthMonitor::Hosts() const {
  std::vector<std::string> hosts;
  for (const auto& [key, unused] : series_) {
    if (hosts.empty() || hosts.back() != key.host) hosts.push_back(key.host);
  }
  std::sort(hosts.begin(), hosts.end());
  hosts.erase(std::unique(hosts.begin(), hosts.end()), hosts.end());
  return hosts;
}

std::vector<std::string> HealthMonitor::SeriesNames(std::string_view host) const {
  std::vector<std::string> names;
  for (const auto& [key, unused] : series_) {
    if (key.host == host) names.push_back(key.metric);
  }
  return names;
}

const TimeSeries* HealthMonitor::Series(std::string_view host,
                                        std::string_view metric) const {
  const auto it = series_.find(SeriesKey{std::string(host), std::string(metric)});
  return it != series_.end() ? &it->second : nullptr;
}

double HealthMonitor::AnomalyZ(std::string_view host, std::string_view metric) const {
  const auto it = detectors_.find(SeriesKey{std::string(host), std::string(metric)});
  return it != detectors_.end() ? it->second.z : 0.0;
}

bool HealthMonitor::Anomalous(std::string_view host, std::string_view metric) const {
  const auto it = detectors_.find(SeriesKey{std::string(host), std::string(metric)});
  return it != detectors_.end() && it->second.anomalous;
}

double HealthMonitor::HealthScore(std::string_view host) const {
  if (!enabled_) return 0;
  double score = 0;
  for (const auto& [key, d] : detectors_) {
    if (key.host == host && d.anomalous) score += 1.0;
  }
  for (const auto& [key, state] : slo_states_) {
    if (key.second != host) continue;
    if (state.firing_fast) score += 2.0;
    if (state.firing_slow) score += 1.0;
  }
  return score;
}

std::vector<HealthMonitor::BudgetStatus> HealthMonitor::Budgets() const {
  std::vector<BudgetStatus> out;
  if (!enabled_) return out;
  const Nanos now = clock_->now();
  for (const auto& [key, state] : slo_states_) {
    const Slo& slo = slos_[key.first];
    BudgetStatus b;
    b.slo = &slo;
    b.host = key.second;
    const Burn window = BurnOver(state, now, slo.window);
    b.events = window.events;
    b.bad = window.bad;
    b.allowed = (1.0 - slo.objective) * static_cast<double>(window.events);
    b.burn_fast = BurnOver(state, now, slo.fast_window).rate;
    b.burn_slow = BurnOver(state, now, slo.slow_window).rate;
    b.firing_fast = state.firing_fast;
    b.firing_slow = state.firing_slow;
    out.push_back(std::move(b));
  }
  return out;
}

int HealthMonitor::ActiveAlerts() const {
  return static_cast<int>(open_alerts_.size());
}

}  // namespace pmig::sim
