// The cluster-wide virtual clock.
//
// One VirtualClock instance is shared by every simulated machine in a cluster (the
// machines are on one Ethernet, so they live on one timeline). The cluster scheduler
// advances it in fixed quanta while machines execute in lockstep; timer events (sleep
// wakeups, disk and network completions) are kept in a queue and fired as the clock
// passes them.

#ifndef PMIG_SRC_SIM_CLOCK_H_
#define PMIG_SRC_SIM_CLOCK_H_

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "src/sim/time.h"

namespace pmig::sim {

class VirtualClock {
 public:
  VirtualClock() = default;

  VirtualClock(const VirtualClock&) = delete;
  VirtualClock& operator=(const VirtualClock&) = delete;

  Nanos now() const { return now_; }

  // Moves time forward and fires every timer whose deadline has been reached, in
  // deadline order (FIFO among equal deadlines). Only the cluster scheduler calls
  // this.
  void Advance(Nanos delta);

  // Schedules `fn` to run when the clock reaches now() + delay. Returns a timer id
  // that can be passed to CancelTimer.
  uint64_t CallAt(Nanos deadline, std::function<void()> fn);
  uint64_t CallAfter(Nanos delay, std::function<void()> fn) {
    return CallAt(now_ + delay, std::move(fn));
  }

  void CancelTimer(uint64_t id);

  // Earliest pending timer deadline, or -1 if none. Used to skip idle periods.
  Nanos NextDeadline() const;

  bool HasPendingTimers() const { return live_timers_ > 0; }

 private:
  struct Timer {
    Nanos deadline;
    uint64_t seq;  // tie-break so equal deadlines fire FIFO
    uint64_t id;
    std::function<void()> fn;

    bool operator>(const Timer& other) const {
      if (deadline != other.deadline) return deadline > other.deadline;
      return seq > other.seq;
    }
  };

  Nanos now_ = 0;
  uint64_t next_seq_ = 0;
  uint64_t next_id_ = 1;
  int64_t live_timers_ = 0;
  std::priority_queue<Timer, std::vector<Timer>, std::greater<>> timers_;
  std::vector<uint64_t> cancelled_;
};

}  // namespace pmig::sim

#endif  // PMIG_SRC_SIM_CLOCK_H_
