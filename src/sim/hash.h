// Deterministic content hashing for the incremental migration data path.
//
// Segments (text, base data) are named by a 64-bit FNV-1a digest of their bytes:
// the same program text hashes to the same name on every host and every run, so a
// per-host content-addressed cache can answer "have I seen this text before?"
// without coordination. Hashing is bookkeeping, like metrics: computing a digest
// never charges virtual-time cost (see DESIGN.md).
//
// FNV-1a is not collision-resistant against adversaries; dump validation therefore
// always re-checks the digest of the *reconstructed* bytes, so a collision (or a
// corrupted cache entry) surfaces as a clean Errno, never a silently wrong restore.

#ifndef PMIG_SRC_SIM_HASH_H_
#define PMIG_SRC_SIM_HASH_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace pmig::sim {

constexpr uint64_t kFnvOffsetBasis = 1469598103934665603ull;
constexpr uint64_t kFnvPrime = 1099511628211ull;

inline uint64_t HashBytes(const uint8_t* data, size_t len,
                          uint64_t seed = kFnvOffsetBasis) {
  uint64_t h = seed;
  for (size_t i = 0; i < len; ++i) {
    h ^= data[i];
    h *= kFnvPrime;
  }
  return h;
}

inline uint64_t HashBytes(const std::vector<uint8_t>& bytes,
                          uint64_t seed = kFnvOffsetBasis) {
  return HashBytes(bytes.data(), bytes.size(), seed);
}

inline uint64_t HashBytes(std::string_view bytes, uint64_t seed = kFnvOffsetBasis) {
  return HashBytes(reinterpret_cast<const uint8_t*>(bytes.data()), bytes.size(), seed);
}

// 16 lowercase hex characters; used as the cache file name for a digest.
inline std::string HexDigest(uint64_t h) {
  static constexpr char kHex[] = "0123456789abcdef";
  std::string out(16, '0');
  for (int i = 15; i >= 0; --i) {
    out[static_cast<size_t>(i)] = kHex[h & 0xF];
    h >>= 4;
  }
  return out;
}

// Parses a 16-hex-char digest back; returns false on any other string.
inline bool ParseHexDigest(std::string_view s, uint64_t* out) {
  if (s.size() != 16) return false;
  uint64_t h = 0;
  for (const char c : s) {
    h <<= 4;
    if (c >= '0' && c <= '9') {
      h |= static_cast<uint64_t>(c - '0');
    } else if (c >= 'a' && c <= 'f') {
      h |= static_cast<uint64_t>(c - 'a' + 10);
    } else {
      return false;
    }
  }
  *out = h;
  return true;
}

}  // namespace pmig::sim

#endif  // PMIG_SRC_SIM_HASH_H_
