// The Section 6.4 improvement: a resident daemon on a well-known port.
//
// "...it is always possible to write a better application which, by use of a UNIX
// daemon process and a well known port can achieve more satisfactory results:
// instead of using rsh to start processes remotely, applications will simply send
// messages to the daemon, who will start the processes on their behalf."
//
// SpawnService is the well-known port (a request queue); MigrationDaemonMain is the
// daemon program that serves it, spawning requested programs under the requester's
// credentials and reporting their exit status. DaemonExec is the client side. The
// only cost difference from rsh is connection establishment: daemon_request versus
// rsh_setup — which is the entire point of the ablation bench.

#ifndef PMIG_SRC_NET_MIGRATION_DAEMON_H_
#define PMIG_SRC_NET_MIGRATION_DAEMON_H_

#include <deque>
#include <memory>
#include <string>
#include <vector>

#include "src/kernel/kernel.h"
#include "src/net/network.h"

namespace pmig::net {

class SpawnService {
 public:
  struct Request {
    std::string program;
    std::vector<std::string> args;
    kernel::Credentials creds;
    // Requester's distributed-trace context; the daemon spawns the program in
    // it so remote spans join the originating trace (0/0 = no trace).
    uint64_t trace_id = 0;
    uint64_t trace_parent_span = 0;
    // Filled in by the daemon:
    bool done = false;
    bool spawn_failed = false;
    int exit_code = -1;
    // Set by a client that gave up waiting (timeout / host down): the daemon
    // discards the request instead of running work nobody will collect.
    bool abandoned = false;
  };
  using RequestPtr = std::shared_ptr<Request>;

  void Push(RequestPtr request) { queue_.push_back(std::move(request)); }
  RequestPtr Pop() {
    if (queue_.empty()) return nullptr;
    RequestPtr r = std::move(queue_.front());
    queue_.pop_front();
    return r;
  }
  bool HasPending() const { return !queue_.empty(); }

 private:
  std::deque<RequestPtr> queue_;
};

// Daemon program: serves requests forever. Runs as root so it can spawn programs
// under the requester's credentials.
int MigrationDaemonMain(kernel::SyscallApi& api, SpawnService* service);

// Client side: runs `program args...` on `host` through its migration daemon.
// Blocks until the command completes (or is overlaid), up to opts.timeout;
// returns its exit code, kHostUnreach if the host is (or goes) down, or
// kTimedOut when the wait expires or the request is lost in transit.
Result<int> DaemonExec(kernel::SyscallApi& api, Network& net, std::string_view host,
                       const std::string& program, std::vector<std::string> args,
                       const RemoteExecOptions& opts = {});

}  // namespace pmig::net

#endif  // PMIG_SRC_NET_MIGRATION_DAEMON_H_
