#include "src/net/migration_daemon.h"

#include <utility>

namespace pmig::net {

int MigrationDaemonMain(kernel::SyscallApi& api, SpawnService* service) {
  for (;;) {
    api.BlockUntil([service] { return service->HasPending(); });
    SpawnService::RequestPtr req = service->Pop();
    if (req == nullptr || req->abandoned) continue;

    // The fork/setuid/exec dance a real root daemon performs for the requester.
    kernel::SpawnOptions opts;
    opts.creds = req->creds;
    opts.tty = nullptr;
    opts.cwd = "/";
    opts.ppid = api.GetPid();
    opts.trace_id = req->trace_id;
    opts.trace_parent_span = req->trace_parent_span;
    const Result<int32_t> pid = api.kernel().SpawnProgram(req->program, req->args, opts);
    if (!pid.ok()) {
      req->spawn_failed = true;
      req->done = true;
      continue;
    }
    const Result<kernel::WaitResult> wr = api.Wait();
    req->exit_code = wr.ok() ? (wr->overlaid ? 0 : wr->info.exit_code) : -1;
    req->done = true;
  }
}

Result<int> DaemonExec(kernel::SyscallApi& api, Network& net, std::string_view host,
                       const std::string& program, std::vector<std::string> args,
                       const RemoteExecOptions& opts) {
  SpawnService* service = net.FindSpawnService(host);
  if (service == nullptr) return Errno::kHostUnreach;
  kernel::Kernel* remote = net.FindHost(host);
  if (remote == nullptr || remote->down()) return Errno::kHostUnreach;

  kernel::Kernel& local = api.kernel();
  if (local.metrics().enabled()) {
    local.metrics().Inc("net.daemon_connections");
    local.metrics().Inc("net.messages." + local.hostname() + "->" + std::string(host));
  }

  {
    // TCP connect + request marshalling to the well-known port: cheap, unlike rsh.
    kernel::TraceSpan setup(local, api.proc(), "setup");
    api.Sleep(net.costs().daemon_request);
  }
  // The host may have crashed during connect, a partition may cut the link
  // (EHOSTUNREACH — the request never reaches the daemon, so there is no
  // split-brain risk on this path), or the request may be lost on the wire
  // (injected transient fault).
  if (remote->down()) return Errno::kHostUnreach;
  if (!net.Reachable(local.hostname(), remote->hostname(), &local.metrics())) {
    return Errno::kHostUnreach;
  }
  if (sim::FaultInjector* f = net.faults();
      f != nullptr && f->NetSendFails(&local.metrics())) {
    return Errno::kTimedOut;
  }

  auto req = std::make_shared<SpawnService::Request>();
  req->program = program;
  req->args = std::move(args);
  req->creds = kernel::Credentials{api.GetUid(), 0, api.GetEuid(), 0};
  req->trace_id = api.proc().trace_id;
  req->trace_parent_span = api.proc().trace_parent_span;
  service->Push(req);

  // A host that powers off after accepting the request used to leave the
  // client blocked until the simulation's run limit; now the wait also ends on
  // host-down and on timeout, and the orphaned request is marked abandoned so
  // a recovered daemon won't run it for nobody. A partition cutting the reply
  // path is different: the daemon HAS the request and will run it, so the
  // request must not be abandoned — the caller times out while the remote
  // work stands (deliberate split brain; the claim protocol disambiguates).
  const std::string lhost = local.hostname();
  const std::string rhost = remote->hostname();
  const bool completed = api.BlockUntilFor(
      [req, remote, &net, lhost, rhost] {
        if (remote->down()) return true;
        return req->done && net.Reachable(rhost, lhost);
      },
      opts.timeout);
  if (!req->done) {
    req->abandoned = true;
    return remote->down() ? Errno::kHostUnreach : Errno::kTimedOut;
  }
  if (!completed) return Errno::kTimedOut;  // ran remotely; reply lost to the cut
  if (req->spawn_failed) return Errno::kNoEnt;
  return req->exit_code;
}

}  // namespace pmig::net
