#include "src/net/rsh.h"

#include <memory>
#include <utility>

namespace pmig::net {

Result<int> Rsh(kernel::SyscallApi& api, Network& net, std::string_view host,
                const std::string& program, std::vector<std::string> args,
                const RemoteExecOptions& opts) {
  kernel::Kernel* remote = net.FindHost(host);
  if (remote == nullptr || remote->down()) return Errno::kHostUnreach;

  kernel::Kernel& local = api.kernel();
  sim::MetricsRegistry& metrics = local.metrics();
  if (metrics.enabled()) {
    metrics.Inc("net.rsh_connections");
    metrics.Inc("net.messages." + local.hostname() + "->" + remote->hostname());
  }

  {
    // Connection establishment: privileged port, reverse lookup, hosts.equiv, rshd
    // fork. Pure real time — the caller's CPU is idle.
    kernel::TraceSpan setup(local, api.proc(), "setup");
    api.Sleep(net.costs().rsh_setup);
  }
  // The host may have crashed while we were connecting, a partition may cut
  // the link (connect timeout, surfaced as EHOSTUNREACH like a dead host), or
  // the request may be lost on the wire (injected transient fault —
  // indistinguishable from a dropped packet, so it reports as a timeout).
  if (remote->down()) return Errno::kHostUnreach;
  if (!net.Reachable(local.hostname(), remote->hostname(), &metrics)) {
    return Errno::kHostUnreach;
  }
  if (sim::FaultInjector* f = net.faults();
      f != nullptr && f->NetSendFails(&metrics)) {
    return Errno::kTimedOut;
  }

  // The remote command gets a network pipe for stdio, not a terminal.
  auto stdin_ch = std::make_shared<kernel::Channel>();
  stdin_ch->write_open = false;  // immediate EOF, like `rsh host cmd < /dev/null`
  auto stdout_ch = std::make_shared<kernel::Channel>();

  kernel::SpawnOptions spawn_opts;
  spawn_opts.creds = kernel::Credentials{api.GetUid(), 0, api.GetEuid(), 0};
  spawn_opts.tty = nullptr;
  spawn_opts.cwd = "/";
  spawn_opts.ppid = 0;  // child of the (unmodelled) remote rshd
  // The remote command runs in the caller's distributed-trace context: its
  // spans become children of whatever span the caller is inside right now.
  spawn_opts.trace_id = api.proc().trace_id;
  spawn_opts.trace_parent_span = api.proc().trace_parent_span;
  const Result<int32_t> pid_or = remote->SpawnProgram(program, std::move(args), spawn_opts);
  if (!pid_or.ok()) return pid_or.error();
  const int32_t rpid = *pid_or;

  kernel::Proc* rproc = remote->FindProc(rpid);
  if (rproc != nullptr) {
    remote->InstallFd(*rproc, 0,
                      kernel::Kernel::MakeChannelFile(stdin_ch, /*write_end=*/false,
                                                      kernel::FileKind::kSocket));
    kernel::OpenFilePtr out = kernel::Kernel::MakeChannelFile(
        stdout_ch, /*write_end=*/true, kernel::FileKind::kSocket);
    remote->InstallFd(*rproc, 1, out);
    remote->InstallFd(*rproc, 2, out);
  }

  // Wait for remote completion (exit, or overlay by rest_proc()). The host
  // dying mid-command also ends the wait; so does the timeout — a remote
  // machine wedged forever must not wedge the caller with it. A partition
  // cutting the reply path keeps us waiting even after the remote command
  // finishes: the work stands on the far side, but until the link heals (or
  // the timeout fires, whichever first) no status can come home.
  const std::string lhost = local.hostname();
  const std::string rhost = remote->hostname();
  const bool completed = api.BlockUntilFor(
      [remote, rpid, &net, lhost, rhost] {
        if (remote->down()) return true;
        kernel::Proc* p = remote->FindAnyProc(rpid);
        const bool finished = p == nullptr || !p->Alive() || p->overlaid;
        return finished && net.Reachable(rhost, lhost);
      },
      opts.timeout);
  if (remote->down()) return Errno::kHostUnreach;
  if (!completed) return Errno::kTimedOut;

  int exit_code = 0;
  bool overlaid = false;
  if (kernel::Proc* p = remote->FindAnyProc(rpid); p != nullptr) {
    overlaid = p->overlaid || (p->Alive() && p->kind == kernel::ProcKind::kVm);
    if (!p->Alive()) exit_code = p->exit_info.exit_code;
    if (p->overlaid) {
      p->overlaid = false;
      p->ppid = 0;  // detaches from the rsh session; keeps running remotely
    }
  }
  (void)overlaid;

  // Carry the remote output home and deliver it to the caller's stdout.
  const std::string output = std::move(stdout_ch->buffer);
  stdout_ch->buffer.clear();
  if (!output.empty()) {
    const sim::Nanos wire = net.TransferTime(static_cast<int64_t>(output.size()));
    if (metrics.enabled()) {
      metrics.Inc("net.bytes." + remote->hostname() + "->" + local.hostname(),
                  static_cast<int64_t>(output.size()));
      metrics.Inc("net.messages." + remote->hostname() + "->" + local.hostname());
      metrics.Observe("net.transfer_ns", wire);
    }
    kernel::TraceSpan transfer(local, api.proc(), "transfer");
    api.Sleep(wire);
    const Result<int64_t> written = api.Write(1, output);
    (void)written;  // a closed stdout is the caller's problem, as with real rsh
  }
  return exit_code;
}

}  // namespace pmig::net
