#include "src/net/network.h"

namespace pmig::net {

kernel::Kernel* Network::FindHost(std::string_view name) {
  for (kernel::Kernel* host : hosts_) {
    if (host->hostname() == name) return host;
  }
  return nullptr;
}

SpawnService* Network::FindSpawnService(std::string_view hostname) {
  auto it = spawn_services_.find(hostname);
  return it == spawn_services_.end() ? nullptr : it->second;
}

}  // namespace pmig::net
