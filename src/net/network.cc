#include "src/net/network.h"

namespace pmig::net {

kernel::Kernel* Network::FindHost(std::string_view name) {
  for (kernel::Kernel* host : hosts_) {
    if (host->hostname() == name) return host;
  }
  return nullptr;
}

SpawnService* Network::FindSpawnService(std::string_view hostname) {
  auto it = spawn_services_.find(hostname);
  return it == spawn_services_.end() ? nullptr : it->second;
}

uint64_t Network::AddLoadObserver(std::function<void(const LoadObservation&)> fn) {
  const uint64_t id = next_observer_id_++;
  load_observers_[id] = std::move(fn);
  return id;
}

void Network::RemoveLoadObserver(uint64_t id) { load_observers_.erase(id); }

void Network::PublishLoad(const LoadObservation& obs) {
  for (auto& [id, fn] : load_observers_) fn(obs);
}

}  // namespace pmig::net
