#include "src/net/network.h"

namespace pmig::net {

kernel::Kernel* Network::FindHost(std::string_view name) {
  for (kernel::Kernel* host : hosts_) {
    if (host->hostname() == name) return host;
  }
  return nullptr;
}

SpawnService* Network::FindSpawnService(std::string_view hostname) {
  auto it = spawn_services_.find(hostname);
  return it == spawn_services_.end() ? nullptr : it->second;
}

uint64_t Network::AddLoadObserver(std::function<void(const LoadObservation&)> fn) {
  const uint64_t id = next_observer_id_++;
  load_observers_[id] = std::move(fn);
  return id;
}

void Network::RemoveLoadObserver(uint64_t id) { load_observers_.erase(id); }

void Network::PublishLoad(const LoadObservation& obs) {
  // Snapshot the ids first: an observer's callback may register or remove
  // observers (a coordinator waking off this very observation can tear its
  // index down). Iterating the live map through that would be UB; walking the
  // id snapshot in ascending order preserves the registration-order delivery
  // guarantee and skips any observer removed mid-publish.
  std::vector<uint64_t> ids;
  ids.reserve(load_observers_.size());
  for (const auto& [id, fn] : load_observers_) ids.push_back(id);
  for (uint64_t id : ids) {
    const auto it = load_observers_.find(id);
    if (it != load_observers_.end() && it->second) it->second(obs);
  }
}

}  // namespace pmig::net
