// The Ethernet: host registry and transfer-cost model.
//
// The paper's machines share a 10 Mbit Ethernet (Section 3). File access across
// machines goes through NFS (costed in the VFS layer via inode remoteness); this
// class provides host lookup and raw transfer timing for the remote-execution
// services (rsh, migration daemon) that move command output and dump data around.

#ifndef PMIG_SRC_NET_NETWORK_H_
#define PMIG_SRC_NET_NETWORK_H_

#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "src/kernel/kernel.h"
#include "src/sim/cost_model.h"

namespace pmig::net {

class SpawnService;

class Network {
 public:
  explicit Network(const sim::CostModel* costs) : costs_(costs) {}

  Network(const Network&) = delete;
  Network& operator=(const Network&) = delete;

  void AddHost(kernel::Kernel* host) { hosts_.push_back(host); }
  kernel::Kernel* FindHost(std::string_view name);
  const std::vector<kernel::Kernel*>& hosts() const { return hosts_; }

  // One-way time to move `bytes` across the wire (latency + serialisation).
  sim::Nanos TransferTime(int64_t bytes) const {
    return costs_->nfs_rpc / 2 + bytes * costs_->net_per_byte;
  }

  const sim::CostModel& costs() const { return *costs_; }

  // Well-known-port registry for the Section 6.4 migration daemons.
  void RegisterSpawnService(const std::string& hostname, SpawnService* service) {
    spawn_services_[hostname] = service;
  }
  SpawnService* FindSpawnService(std::string_view hostname);

 private:
  const sim::CostModel* costs_;
  std::vector<kernel::Kernel*> hosts_;
  std::map<std::string, SpawnService*, std::less<>> spawn_services_;
};

}  // namespace pmig::net

#endif  // PMIG_SRC_NET_NETWORK_H_
