// The Ethernet: host registry and transfer-cost model.
//
// The paper's machines share a 10 Mbit Ethernet (Section 3). File access across
// machines goes through NFS (costed in the VFS layer via inode remoteness); this
// class provides host lookup and raw transfer timing for the remote-execution
// services (rsh, migration daemon) that move command output and dump data around.

#ifndef PMIG_SRC_NET_NETWORK_H_
#define PMIG_SRC_NET_NETWORK_H_

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "src/kernel/kernel.h"
#include "src/sim/cost_model.h"
#include "src/sim/fault.h"
#include "src/sim/fault_history.h"
#include "src/sim/health_monitor.h"

namespace pmig::apps {
class DecisionLog;  // pointer slot only; apps/ owns the type (see decision_log.h)
}  // namespace pmig::apps

namespace pmig::net {

class SpawnService;

// Knobs for a single remote execution (Rsh / DaemonExec). The default timeout
// bounds how long the caller blocks waiting for the remote side: a target that
// powers off after accepting the request used to hang the client until the
// simulation's RunUntil limit; now the wait wakes at the deadline and returns
// kTimedOut (or kHostUnreach when the host is observably down). timeout <= 0
// means wait forever (the old behaviour).
struct RemoteExecOptions {
  sim::Nanos timeout = sim::Seconds(300);
};

// One host's load as the cluster sampler saw it at a sampling edge. Published
// to registered load observers so coordinators that keep incremental placement
// state (the apps::ClusterIndex) learn per-host load without surveying — the
// sampler already paid for the read.
struct LoadObservation {
  sim::Nanos at = 0;
  std::string host;
  bool down = false;
  int runnable = 0;  // runnable VM processes (the classic load signal)
  int alive_vm = 0;  // every live VM process (the occupancy signal)
};

class Network {
 public:
  explicit Network(const sim::CostModel* costs) : costs_(costs) {}

  Network(const Network&) = delete;
  Network& operator=(const Network&) = delete;

  void AddHost(kernel::Kernel* host) { hosts_.push_back(host); }
  kernel::Kernel* FindHost(std::string_view name);
  const std::vector<kernel::Kernel*>& hosts() const { return hosts_; }

  // One-way time to move `bytes` across the wire (latency + serialisation).
  sim::Nanos TransferTime(int64_t bytes) const {
    return costs_->nfs_rpc / 2 + bytes * costs_->net_per_byte;
  }

  const sim::CostModel& costs() const { return *costs_; }

  // Well-known-port registry for the Section 6.4 migration daemons.
  void RegisterSpawnService(const std::string& hostname, SpawnService* service) {
    spawn_services_[hostname] = service;
  }
  SpawnService* FindSpawnService(std::string_view hostname);

  // Cluster-wide fault injector (null or disabled in default configs). The
  // remote-exec paths consult it to drop requests on the wire.
  void set_fault_injector(sim::FaultInjector* faults) { faults_ = faults; }
  sim::FaultInjector* faults() const { return faults_; }

  // True when traffic from `from` to `to` can flow right now: no configured
  // partition cuts that direction. Liveness (down()) is the caller's check —
  // a partitioned host is up, just unreachable. Pass null metrics when polling
  // from a wait predicate so only decision points count injections.
  bool Reachable(std::string_view from, std::string_view to,
                 sim::MetricsRegistry* metrics = nullptr) const {
    return faults_ == nullptr || !faults_->Partitioned(from, to, metrics);
  }

  // Cluster-wide per-host fault history (null when the network was built bare).
  // migrate records each remote leg's outcome here; placement policies read the
  // decayed scores back. Recording never affects virtual time.
  void set_fault_history(sim::FaultHistory* history) { fault_history_ = history; }
  sim::FaultHistory* fault_history() const { return fault_history_; }

  // Cluster-wide health monitor (null when the network was built bare).
  // migrate feeds it end-to-end latency and per-host error outcomes; the
  // placement engine reads host health scores back. Observation only.
  void set_health_monitor(sim::HealthMonitor* monitor) { health_monitor_ = monitor; }
  sim::HealthMonitor* health_monitor() const { return health_monitor_; }

  // Cluster-wide placement decision log (null when the network was built bare,
  // disarmed unless the cluster was configured for it). The placement engine
  // records every pick here; coordinators attach migrate outcomes and trace
  // ids after each leg. Observation only — recording never affects virtual
  // time, so an armed-but-unread log replays bit-identically.
  void set_decision_log(apps::DecisionLog* log) { decision_log_ = log; }
  apps::DecisionLog* decision_log() const { return decision_log_; }

  // Load-observation fan-out: the cluster sampler publishes each host's load
  // here as it samples, and subscribers (cluster indexes) fold it in for free.
  // Publishing is pure bookkeeping — no virtual time, no RNG — so an armed
  // sampler with observers stays bit-identical to one without. Observers must
  // remove themselves before they are destroyed.
  //
  // Delivery order is guaranteed: observers run in ascending registration
  // order, so a subscriber registered before another always folds an
  // observation in first. Event-driven consumers rely on this — a balancer's
  // wake condition (armed from its ClusterIndex's observer) must fire only
  // after that index has already absorbed the observation it is judging.
  // Delivery is also mutation-safe: an observer may add or remove observers
  // (including itself) mid-publish; removed observers registered later in the
  // same publish are simply skipped.
  uint64_t AddLoadObserver(std::function<void(const LoadObservation&)> fn);
  void RemoveLoadObserver(uint64_t id);
  void PublishLoad(const LoadObservation& obs);

 private:
  const sim::CostModel* costs_;
  std::vector<kernel::Kernel*> hosts_;
  std::map<std::string, SpawnService*, std::less<>> spawn_services_;
  sim::FaultInjector* faults_ = nullptr;
  sim::FaultHistory* fault_history_ = nullptr;
  sim::HealthMonitor* health_monitor_ = nullptr;
  apps::DecisionLog* decision_log_ = nullptr;
  std::map<uint64_t, std::function<void(const LoadObservation&)>> load_observers_;
  uint64_t next_observer_id_ = 1;
};

}  // namespace pmig::net

#endif  // PMIG_SRC_NET_NETWORK_H_
