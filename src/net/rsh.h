// The remote shell, as the migrate application uses it.
//
// "Migrate has been implemented by executing the other two applications internally,
// by means of the UNIX remote shell facility rsh ... Rsh requires a lot of time to
// establish a connection with another machine" (Section 6.4). The connection-setup
// cost (CostModel::rsh_setup) dominates Figure 4's remote cases.
//
// Fidelity points modelled here:
//   * the remote command runs with NO controlling terminal — its stdio is a network
//     pipe — so restart-under-rsh cannot reopen /dev/tty or preserve raw/noecho
//     modes (the Section 4.1 limitation for visual programs);
//   * the remote command's output is carried back over the wire and written to the
//     caller's stdout, paying per-byte transfer time;
//   * a remote command that is overlaid by rest_proc() counts as completed — the
//     restarted process keeps running on the remote host after rsh returns.

#ifndef PMIG_SRC_NET_RSH_H_
#define PMIG_SRC_NET_RSH_H_

#include <string>
#include <vector>

#include "src/kernel/kernel.h"
#include "src/net/network.h"

namespace pmig::net {

// Runs `program args...` on `host` under the caller's credentials; blocks until the
// remote command exits (or is overlaid), up to opts.timeout. Returns its exit code,
// kHostUnreach if the host is (or goes) down, or kTimedOut when the wait expires
// or the request is lost to an injected network fault.
Result<int> Rsh(kernel::SyscallApi& api, Network& net, std::string_view host,
                const std::string& program, std::vector<std::string> args,
                const RemoteExecOptions& opts = {});

}  // namespace pmig::net

#endif  // PMIG_SRC_NET_RSH_H_
