#include "src/cluster/cluster.h"
#include <algorithm>

#include <cassert>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <ostream>
#include <utility>

namespace pmig::cluster {

Cluster::Cluster(ClusterConfig config) : config_(std::move(config)) {
  trace_.set_enabled(config_.enable_trace);
  spans_.set_enabled(config_.enable_spans);
  faults_ = std::make_unique<sim::FaultInjector>(config_.faults, &clock_);
  network_ = std::make_unique<net::Network>(&config_.costs);
  Boot();
}

Cluster::~Cluster() = default;

void Cluster::Boot() {
  assert(!config_.hosts.empty());
  for (const HostSpec& spec : config_.hosts) {
    kernel::KernelConfig kcfg = config_.kernel;
    kcfg.isa = spec.isa;
    auto k = std::make_unique<kernel::Kernel>(spec.name, &clock_, &config_.costs, &trace_, kcfg);
    k->set_pid_base(100 + 1000 * static_cast<int32_t>(hosts_.size()));
    k->set_program_registry(&programs_);
    k->metrics().set_enabled(config_.enable_metrics);
    k->set_span_log(&spans_);
    k->set_fault_injector(faults_.get());
    network_->AddHost(k.get());
    hosts_.push_back(std::move(k));
  }
  network_->set_fault_injector(faults_.get());
  network_->set_fault_history(&fault_history_);

  // Cross-machine file access fails when the owning machine is down.
  std::map<const vfs::Filesystem*, kernel::Kernel*> owners;
  for (auto& k : hosts_) owners[&k->fs()] = k.get();
  for (auto& k : hosts_) {
    k->vfs().set_unreachable_check([owners](const vfs::Filesystem* fs) {
      auto it = owners.find(fs);
      return it != owners.end() && it->second->down();
    });
  }

  // The /n/<host> convention: every machine's root appears on every machine
  // (including itself — /n/self is a loopback view of the local disk).
  for (auto& a : hosts_) {
    for (auto& b : hosts_) {
      vfs::InodePtr mount_point = a->vfs().SetupMkdirAll("/n/" + b->hostname());
      if (a.get() != b.get()) {
        a->vfs().AddMount(mount_point, b->fs().root());
      } else {
        a->vfs().AddMount(mount_point, a->fs().root());
      }
    }
  }

  // Scheduled crash/recovery faults become ordinary clock timers. They fire
  // between scheduler quanta, so a crash is atomic with respect to syscalls —
  // exactly like pulling the plug on real hardware between instructions.
  if (config_.faults.enabled) {
    for (const sim::HostCrash& crash : config_.faults.crashes) {
      kernel::Kernel* victim = network_->FindHost(crash.host);
      if (victim == nullptr) continue;
      clock_.CallAt(crash.at, [victim] { victim->set_down(true); });
      if (crash.recover_at >= 0) {
        clock_.CallAt(crash.recover_at, [victim] { victim->set_down(false); });
      }
    }
  }

  if (config_.start_migration_daemons) {
    for (auto& k : hosts_) {
      auto service = std::make_unique<net::SpawnService>();
      network_->RegisterSpawnService(k->hostname(), service.get());
      net::SpawnService* raw = service.get();
      spawn_services_.push_back(std::move(service));
      kernel::SpawnOptions opts;  // root, no tty — a daemon
      k->SpawnNative("migrationd",
                     [raw](kernel::SyscallApi& api) {
                       return net::MigrationDaemonMain(api, raw);
                     },
                     opts);
    }
  }
}

kernel::Kernel& Cluster::host(std::string_view name) {
  kernel::Kernel* k = network_->FindHost(name);
  if (k == nullptr) {
    std::fprintf(stderr, "no such host: %.*s\n", static_cast<int>(name.size()), name.data());
    std::abort();
  }
  return *k;
}

net::SpawnService* Cluster::spawn_service(std::string_view hostname) {
  return network_->FindSpawnService(hostname);
}

void Cluster::SetHostDown(std::string_view name, bool down) {
  host(name).set_down(down);
}

bool Cluster::Step() {
  bool ran = false;
  for (auto& k : hosts_) {
    ran |= k->RunQuantum();
  }
  clock_.Advance(config_.costs.quantum);
  // A timer firing during the trailing Advance (a sleep expiring, a timeout
  // waking a blocked waiter) can make a process runnable after every kernel
  // already took its quantum. That is still work: reporting false here would
  // let the drivers below consult NextDeadline() — which may name a far-future
  // timeout timer — and fast-forward the clock right past the runnable process.
  if (!ran) {
    for (auto& k : hosts_) {
      if (k->HasRunnableProc()) return true;
    }
  }
  return ran;
}

bool Cluster::AnyTimedWork() const {
  for (const auto& k : hosts_) {
    // Blocked processes whose condition has become true must count as work.
    const_cast<kernel::Kernel&>(*k).WakeBlockedProcs();
  }
  for (const auto& k : hosts_) {
    if (k->HasTimedWork()) return true;
  }
  return false;
}

void Cluster::RunFor(sim::Nanos duration) {
  const sim::Nanos end = clock_.now() + duration;
  while (clock_.now() < end) {
    if (!Step()) {
      const sim::Nanos next = clock_.NextDeadline();
      if (next < 0 || next >= end) {
        clock_.Advance(end - clock_.now());
        return;
      }
      if (next > clock_.now()) clock_.Advance(next - clock_.now());
    }
  }
}

bool Cluster::RunUntilIdle(sim::Nanos limit) {
  const sim::Nanos end = clock_.now() + limit;
  while (clock_.now() < end) {
    if (!AnyTimedWork()) return true;
    if (!Step()) {
      const sim::Nanos next = clock_.NextDeadline();
      if (next < 0) return !AnyTimedWork();
      if (next > clock_.now()) clock_.Advance(next - clock_.now());
    }
  }
  return !AnyTimedWork();
}

bool Cluster::RunUntil(const std::function<bool()>& cond, sim::Nanos limit) {
  const sim::Nanos end = clock_.now() + limit;
  while (clock_.now() < end) {
    if (cond()) return true;
    if (!Step()) {
      const sim::Nanos next = clock_.NextDeadline();
      if (next < 0 && !AnyTimedWork()) return cond();
      if (next > clock_.now()) {
        clock_.Advance(std::min(next, end) - clock_.now());
      }
    }
  }
  return cond();
}

sim::Nanos Cluster::TotalCpu() const {
  sim::Nanos total = 0;
  for (const auto& k : hosts_) total += k->TotalCpu();
  return total;
}

sim::MetricsRegistry Cluster::AggregateMetrics() const {
  sim::MetricsRegistry total;
  for (const auto& k : hosts_) total.MergeFrom(k->metrics());
  return total;
}

namespace {

void WriteMetricsLines(std::ostream& out, const std::string& host,
                       const sim::MetricsRegistry& m) {
  for (const auto& [name, value] : m.counters()) {
    out << "{\"type\":\"counter\",\"host\":\"" << sim::JsonEscape(host) << "\",\"name\":\""
        << sim::JsonEscape(name) << "\",\"value\":" << value << "}\n";
  }
  for (const auto& [name, value] : m.gauges()) {
    out << "{\"type\":\"gauge\",\"host\":\"" << sim::JsonEscape(host) << "\",\"name\":\""
        << sim::JsonEscape(name) << "\",\"value\":" << value << "}\n";
  }
  for (const auto& [name, hist] : m.histograms()) {
    out << "{\"type\":\"histogram\",\"host\":\"" << sim::JsonEscape(host) << "\",\"name\":\""
        << sim::JsonEscape(name) << "\",\"count\":" << hist.count << ",\"sum_ns\":" << hist.sum
        << ",\"min_ns\":" << hist.min << ",\"max_ns\":" << hist.max << "}\n";
  }
}

}  // namespace

void Cluster::WriteReport(std::ostream& out) const {
  out << "{\"type\":\"report\",\"virtual_now_ns\":" << clock_.now() << ",\"hosts\":[";
  for (size_t i = 0; i < hosts_.size(); ++i) {
    if (i != 0) out << ",";
    out << "\"" << sim::JsonEscape(hosts_[i]->hostname()) << "\"";
  }
  out << "]}\n";

  for (const auto& k : hosts_) {
    WriteMetricsLines(out, k->hostname(), k->metrics());
  }

  for (const sim::SpanRecord& s : spans_.spans()) {
    if (!s.closed()) continue;
    out << "{\"type\":\"span\",\"id\":" << s.id << ",\"phase\":\"" << sim::JsonEscape(s.phase)
        << "\",\"host\":\"" << sim::JsonEscape(s.host) << "\",\"pid\":" << s.pid
        << ",\"begin_ns\":" << s.begin << ",\"end_ns\":" << s.end
        << ",\"dur_ns\":" << s.duration() << "}\n";
  }

  // Phase summary: self time per phase. The "migrate" root's self time is the
  // part not attributed to any sub-phase, reported as "other"; by construction
  // the phase values sum exactly to total_ns (the sum of the closed roots).
  const std::map<std::string, sim::Nanos> self = spans_.PhaseSelfTimes();
  sim::Nanos total = 0;
  for (const sim::SpanRecord& s : spans_.spans()) {
    if (s.closed() && s.phase == "migrate") total += s.duration();
  }
  out << "{\"type\":\"phase_summary\",\"total_ns\":" << total << ",\"phases\":{";
  bool first = true;
  for (const auto& [phase, ns] : self) {
    if (!first) out << ",";
    first = false;
    out << "\"" << sim::JsonEscape(phase == "migrate" ? "other" : phase) << "\":" << ns;
  }
  out << "}}\n";
}

bool Cluster::WriteReport(const std::string& path) const {
  std::ofstream out(path, std::ios::app);
  if (!out) return false;
  WriteReport(out);
  return out.good();
}

}  // namespace pmig::cluster
