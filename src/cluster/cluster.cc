#include "src/cluster/cluster.h"
#include <algorithm>

#include <cassert>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <ostream>
#include <utility>

#include "src/core/dump_format.h"
#include "src/sim/hash.h"

namespace pmig::cluster {

Cluster::Cluster(ClusterConfig config)
    : config_(std::move(config)),
      recorder_(&clock_, config_.flight_recorder_capacity),
      health_monitor_(&clock_, config_.health, config_.slos),
      decision_log_(&clock_, config_.decision_log_capacity) {
  trace_.set_enabled(config_.enable_trace);
  spans_.set_enabled(config_.enable_spans);
  recorder_.set_enabled(config_.enable_flight_recorder);
  recorder_.set_output_dir(config_.postmortem_dir);
  spans_.set_flight_recorder(&recorder_);
  health_monitor_.set_flight_recorder(&recorder_);
  decision_log_.set_enabled(config_.enable_decision_log);
  faults_ = std::make_unique<sim::FaultInjector>(config_.faults, &clock_);
  network_ = std::make_unique<net::Network>(&config_.costs);
  Boot();
}

Cluster::~Cluster() = default;

void Cluster::Boot() {
  assert(!config_.hosts.empty());
  for (const HostSpec& spec : config_.hosts) {
    kernel::KernelConfig kcfg = config_.kernel;
    kcfg.isa = spec.isa;
    auto k = std::make_unique<kernel::Kernel>(spec.name, &clock_, &config_.costs, &trace_, kcfg);
    k->set_pid_base(100 + 1000 * static_cast<int32_t>(hosts_.size()));
    k->set_program_registry(&programs_);
    k->metrics().set_enabled(config_.enable_metrics);
    k->set_span_log(&spans_);
    k->set_flight_recorder(&recorder_);
    k->set_health_monitor(&health_monitor_);
    k->set_decision_log(&decision_log_);
    k->set_fault_injector(faults_.get());
    network_->AddHost(k.get());
    hosts_.push_back(std::move(k));
  }
  network_->set_fault_injector(faults_.get());
  network_->set_fault_history(&fault_history_);
  network_->set_health_monitor(&health_monitor_);
  network_->set_decision_log(&decision_log_);

  // Cross-machine file access fails when the owning machine is down or a
  // partition separates us from it — both surface as EHOSTUNREACH, exactly
  // like a real NFS server that stops answering.
  std::map<const vfs::Filesystem*, kernel::Kernel*> owners;
  for (auto& k : hosts_) owners[&k->fs()] = k.get();
  for (auto& k : hosts_) {
    const std::string local = k->hostname();
    sim::MetricsRegistry* local_metrics = &k->metrics();
    sim::FaultInjector* faults = faults_.get();
    k->vfs().set_unreachable_check(
        [owners, local, local_metrics, faults](const vfs::Filesystem* fs) {
          auto it = owners.find(fs);
          if (it == owners.end()) return false;
          if (it->second->down()) return true;
          return faults != nullptr &&
                 faults->Partitioned(local, it->second->hostname(), local_metrics);
        });
  }

  // The /n/<host> convention: every machine's root appears on every machine
  // (including itself — /n/self is a loopback view of the local disk).
  for (auto& a : hosts_) {
    for (auto& b : hosts_) {
      vfs::InodePtr mount_point = a->vfs().SetupMkdirAll("/n/" + b->hostname());
      if (a.get() != b.get()) {
        a->vfs().AddMount(mount_point, b->fs().root());
      } else {
        a->vfs().AddMount(mount_point, a->fs().root());
      }
    }
  }

  // Scheduled crash/recovery faults become ordinary clock timers. They fire
  // between scheduler quanta, so a crash is atomic with respect to syscalls —
  // exactly like pulling the plug on real hardware between instructions.
  if (config_.faults.enabled) {
    for (const sim::HostCrash& crash : config_.faults.crashes) {
      kernel::Kernel* victim = network_->FindHost(crash.host);
      if (victim == nullptr) continue;
      clock_.CallAt(crash.at, [victim] { victim->set_down(true); });
      if (crash.recover_at >= 0) {
        clock_.CallAt(crash.recover_at, [victim] { victim->set_down(false); });
      }
    }
  }

  // Time-series sampler: snapshots are taken from Step() (see below) rather
  // than from a clock timer — a timer would add deadlines to the clock and
  // change how the run loops fast-forward through idle gaps, perturbing
  // virtual times. Piggybacking on Step() is provably timing-neutral.
  if (config_.sample_period > 0) next_sample_at_ = config_.sample_period;

  if (config_.start_migration_daemons) {
    for (auto& k : hosts_) {
      auto service = std::make_unique<net::SpawnService>();
      network_->RegisterSpawnService(k->hostname(), service.get());
      net::SpawnService* raw = service.get();
      spawn_services_.push_back(std::move(service));
      kernel::SpawnOptions opts;  // root, no tty — a daemon
      k->SpawnNative("migrationd",
                     [raw](kernel::SyscallApi& api) {
                       return net::MigrationDaemonMain(api, raw);
                     },
                     opts);
    }
  }
}

kernel::Kernel& Cluster::host(std::string_view name) {
  kernel::Kernel* k = network_->FindHost(name);
  if (k == nullptr) {
    std::fprintf(stderr, "no such host: %.*s\n", static_cast<int>(name.size()), name.data());
    std::abort();
  }
  return *k;
}

net::SpawnService* Cluster::spawn_service(std::string_view hostname) {
  return network_->FindSpawnService(hostname);
}

void Cluster::SetHostDown(std::string_view name, bool down) {
  host(name).set_down(down);
}

int64_t Cluster::SegcacheBytes(kernel::Kernel& k) {
  auto r = k.vfs().Resolve(k.vfs().RootState(), core::kSegCacheDir, vfs::Follow::kAll, nullptr);
  if (!r.ok() || !r->inode->IsDir()) return 0;
  int64_t total = 0;
  for (const auto& [name, child] : r->inode->entries) {
    if (child != nullptr && child->IsRegular()) total += child->size();
  }
  return total;
}

void Cluster::TakeSample() {
  for (auto& k : hosts_) {
    LoadSample s;
    s.at = clock_.now();
    s.host = k->hostname();
    s.down = k->down();
    int alive_vm = 0;
    if (!s.down) {
      for (kernel::Proc* p : k->ListProcs()) {
        if (p->kind != kernel::ProcKind::kVm) continue;
        if (p->state == kernel::ProcState::kRunnable) ++s.runnable;
        if (p->Alive()) ++alive_vm;
      }
      s.segcache_bytes = SegcacheBytes(*k);
    }
    s.fault_score = fault_history_.Score(k->hostname());
    if (health_monitor_.enabled() && !s.down) {
      health_monitor_.Observe(s.host, "load.runnable", s.runnable);
      health_monitor_.Observe(s.host, "segcache.bytes",
                              static_cast<double>(s.segcache_bytes));
      health_monitor_.Observe(s.host, "fault.score", s.fault_score);
    }
    // Fan the same reads out to load observers (cluster indexes): the sampler
    // already paid for this survey, so subscribers get freshness for free.
    net::LoadObservation obs;
    obs.at = s.at;
    obs.host = s.host;
    obs.down = s.down;
    obs.runnable = s.runnable;
    obs.alive_vm = alive_vm;
    network_->PublishLoad(obs);
    samples_.push_back(std::move(s));
  }
  // Burn windows age out even when no new observation arrives; re-evaluate at
  // the sampler edge (still zero virtual time, zero RNG).
  health_monitor_.Tick();
}

bool Cluster::Step() {
  bool ran = false;
  for (auto& k : hosts_) {
    ran |= k->RunQuantum();
  }
  clock_.Advance(config_.costs.quantum);
  // Sampler: reads state only, never the clock's deadline queue, so an armed
  // sampler leaves every virtual time bit-identical. After a long idle
  // fast-forward the catch-up loop takes one sample, not a burst.
  if (next_sample_at_ > 0 && clock_.now() >= next_sample_at_) {
    TakeSample();
    do {
      next_sample_at_ += config_.sample_period;
    } while (next_sample_at_ <= clock_.now());
  }
  // A timer firing during the trailing Advance (a sleep expiring, a timeout
  // waking a blocked waiter) can make a process runnable after every kernel
  // already took its quantum. That is still work: reporting false here would
  // let the drivers below consult NextDeadline() — which may name a far-future
  // timeout timer — and fast-forward the clock right past the runnable process.
  // The sampler publish above can likewise satisfy a blocked waiter's
  // condition (an event-driven balancer armed on the observation stream), so
  // wake-check blocked processes here: otherwise the drivers would
  // fast-forward an already-released wait all the way to its heartbeat timer.
  if (!ran) {
    for (auto& k : hosts_) {
      k->WakeBlockedProcs();
    }
    for (auto& k : hosts_) {
      if (k->HasRunnableProc()) return true;
    }
  }
  return ran;
}

bool Cluster::AnyTimedWork() const {
  for (const auto& k : hosts_) {
    // Blocked processes whose condition has become true must count as work.
    const_cast<kernel::Kernel&>(*k).WakeBlockedProcs();
  }
  for (const auto& k : hosts_) {
    if (k->HasTimedWork()) return true;
  }
  return false;
}

void Cluster::RunFor(sim::Nanos duration) {
  const sim::Nanos end = clock_.now() + duration;
  while (clock_.now() < end) {
    if (!Step()) {
      const sim::Nanos next = clock_.NextDeadline();
      if (next < 0 || next >= end) {
        clock_.Advance(end - clock_.now());
        return;
      }
      if (next > clock_.now()) clock_.Advance(next - clock_.now());
    }
  }
}

bool Cluster::RunUntilIdle(sim::Nanos limit) {
  const sim::Nanos end = clock_.now() + limit;
  while (clock_.now() < end) {
    if (!AnyTimedWork()) return true;
    if (!Step()) {
      const sim::Nanos next = clock_.NextDeadline();
      if (next < 0) return !AnyTimedWork();
      if (next > clock_.now()) clock_.Advance(next - clock_.now());
    }
  }
  return !AnyTimedWork();
}

bool Cluster::RunUntil(const std::function<bool()>& cond, sim::Nanos limit) {
  const sim::Nanos end = clock_.now() + limit;
  while (clock_.now() < end) {
    if (cond()) return true;
    if (!Step()) {
      const sim::Nanos next = clock_.NextDeadline();
      if (next < 0 && !AnyTimedWork()) return cond();
      if (next > clock_.now()) {
        clock_.Advance(std::min(next, end) - clock_.now());
      }
    }
  }
  return cond();
}

sim::Nanos Cluster::TotalCpu() const {
  sim::Nanos total = 0;
  for (const auto& k : hosts_) total += k->TotalCpu();
  return total;
}

sim::MetricsRegistry Cluster::AggregateMetrics() const {
  sim::MetricsRegistry total;
  for (const auto& k : hosts_) total.MergeFrom(k->metrics());
  return total;
}

namespace {

void WriteMetricsLines(std::ostream& out, const std::string& host,
                       const sim::MetricsRegistry& m) {
  for (const auto& [name, value] : m.counters()) {
    out << "{\"type\":\"counter\",\"host\":\"" << sim::JsonEscape(host) << "\",\"name\":\""
        << sim::JsonEscape(name) << "\",\"value\":" << value << "}\n";
  }
  for (const auto& [name, value] : m.gauges()) {
    out << "{\"type\":\"gauge\",\"host\":\"" << sim::JsonEscape(host) << "\",\"name\":\""
        << sim::JsonEscape(name) << "\",\"value\":" << value << "}\n";
  }
  for (const auto& [name, hist] : m.histograms()) {
    out << "{\"type\":\"histogram\",\"host\":\"" << sim::JsonEscape(host) << "\",\"name\":\""
        << sim::JsonEscape(name) << "\",\"count\":" << hist.count << ",\"sum_ns\":" << hist.sum
        << ",\"min_ns\":" << hist.min << ",\"max_ns\":" << hist.max
        << ",\"p50_ns\":" << hist.Percentile(50) << ",\"p95_ns\":" << hist.Percentile(95)
        << ",\"p99_ns\":" << hist.Percentile(99) << "}\n";
  }
}

// Microseconds with nanosecond precision, the unit Chrome trace "ts" expects.
std::string TraceMicros(sim::Nanos ns) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%lld.%03lld", static_cast<long long>(ns / 1000),
                static_cast<long long>(ns % 1000));
  return buf;
}

}  // namespace

void Cluster::WriteReport(std::ostream& out) const {
  out << "{\"type\":\"report\",\"virtual_now_ns\":" << clock_.now() << ",\"hosts\":[";
  for (size_t i = 0; i < hosts_.size(); ++i) {
    if (i != 0) out << ",";
    out << "\"" << sim::JsonEscape(hosts_[i]->hostname()) << "\"";
  }
  out << "]}\n";

  // Run header: the fault seed, every armed observability flag, and a
  // fingerprint of the configuration that produced this run — so a report (or
  // a replay claiming to reproduce it) can be matched to the exact
  // configuration it came from. The fingerprint hashes a canonical rendering
  // of the fields that shape the timeline: host names/ISAs, the cost model's
  // pacing knobs, the sampler period, and the injection seed.
  std::string canon;
  for (const HostSpec& h : config_.hosts) {
    canon += h.name + ":" + std::to_string(static_cast<int>(h.isa)) + ";";
  }
  canon += "quantum=" + std::to_string(config_.costs.quantum) +
           ";instr=" + std::to_string(config_.costs.instruction) +
           ";rpc=" + std::to_string(config_.costs.nfs_rpc) +
           ";netb=" + std::to_string(config_.costs.net_per_byte) +
           ";sample=" + std::to_string(config_.sample_period) +
           ";seed=" + std::to_string(config_.faults.seed) +
           ";faults=" + (config_.faults.enabled ? "1" : "0") +
           ";daemons=" + (config_.start_migration_daemons ? "1" : "0");
  const uint64_t fp = sim::HashBytes(
      reinterpret_cast<const uint8_t*>(canon.data()), canon.size());
  char fp_hex[24];
  std::snprintf(fp_hex, sizeof(fp_hex), "%016llx",
                static_cast<unsigned long long>(fp));
  const auto flag = [](bool b) { return b ? "true" : "false"; };
  out << "{\"type\":\"meta\",\"seed\":" << config_.faults.seed
      << ",\"hosts\":" << hosts_.size() << ",\"config_fingerprint\":\"" << fp_hex
      << "\",\"armed\":{\"metrics\":" << flag(config_.enable_metrics)
      << ",\"trace\":" << flag(config_.enable_trace)
      << ",\"spans\":" << flag(config_.enable_spans)
      << ",\"flight_recorder\":" << flag(config_.enable_flight_recorder)
      << ",\"sampler\":" << flag(config_.sample_period > 0)
      << ",\"health\":" << flag(health_monitor_.enabled())
      << ",\"decision_log\":" << flag(decision_log_.enabled())
      << ",\"faults\":" << flag(config_.faults.enabled) << "}}\n";

  for (const auto& k : hosts_) {
    WriteMetricsLines(out, k->hostname(), k->metrics());
  }

  for (const sim::SpanRecord& s : spans_.spans()) {
    if (!s.closed()) continue;
    out << "{\"type\":\"span\",\"id\":" << s.id << ",\"phase\":\"" << sim::JsonEscape(s.phase)
        << "\",\"host\":\"" << sim::JsonEscape(s.host) << "\",\"pid\":" << s.pid
        << ",\"begin_ns\":" << s.begin << ",\"end_ns\":" << s.end
        << ",\"dur_ns\":" << s.duration() << ",\"trace_id\":" << s.trace_id
        << ",\"parent_id\":" << s.parent_id << "}\n";
  }

  // Phase summary: self time per phase. The "migrate" root's self time is the
  // part not attributed to any sub-phase, reported as "other"; by construction
  // the phase values sum exactly to total_ns (the sum of the closed roots).
  const std::map<std::string, sim::Nanos> self = spans_.PhaseSelfTimes();
  sim::Nanos total = 0;
  for (const sim::SpanRecord& s : spans_.spans()) {
    if (s.closed() && s.phase == "migrate") total += s.duration();
  }
  out << "{\"type\":\"phase_summary\",\"total_ns\":" << total << ",\"phases\":{";
  bool first = true;
  for (const auto& [phase, ns] : self) {
    if (!first) out << ",";
    first = false;
    out << "\"" << sim::JsonEscape(phase == "migrate" ? "other" : phase) << "\":" << ns;
  }
  out << "}}\n";

  // Per-trace summaries: each causal migration gets its end-to-end time, the
  // per-phase self times of its (possibly cross-host) span tree, and the
  // critical path — the chain of largest children from the root down.
  for (const uint64_t trace_id : spans_.TraceIds()) {
    const sim::SpanRecord* root = spans_.TraceRoot(trace_id);
    if (root == nullptr) continue;
    out << "{\"type\":\"trace_summary\",\"trace_id\":" << trace_id << ",\"root_phase\":\""
        << sim::JsonEscape(root->phase) << "\",\"root_host\":\"" << sim::JsonEscape(root->host)
        << "\",\"total_ns\":" << root->duration() << ",\"phases\":{";
    bool first_phase = true;
    for (const auto& [phase, ns] : spans_.TraceSelfTimes(trace_id)) {
      if (!first_phase) out << ",";
      first_phase = false;
      out << "\"" << sim::JsonEscape(phase) << "\":" << ns;
    }
    out << "},\"critical_path\":[";
    const sim::SpanRecord* node = root;
    bool first_hop = true;
    while (node != nullptr) {
      if (!first_hop) out << ",";
      first_hop = false;
      out << "{\"phase\":\"" << sim::JsonEscape(node->phase) << "\",\"host\":\""
          << sim::JsonEscape(node->host) << "\",\"dur_ns\":" << node->duration() << "}";
      const sim::SpanRecord* widest = nullptr;
      for (const sim::SpanRecord& s : spans_.spans()) {
        if (!s.closed() || s.trace_id != trace_id || s.parent_id != node->id) continue;
        if (widest == nullptr || s.duration() > widest->duration()) widest = &s;
      }
      node = widest;
    }
    out << "]}\n";
  }

  // Time-series samples (present only when the sampler was armed).
  for (const LoadSample& s : samples_) {
    out << "{\"type\":\"sample\",\"t_ns\":" << s.at << ",\"host\":\"" << sim::JsonEscape(s.host)
        << "\",\"down\":" << (s.down ? "true" : "false") << ",\"runnable\":" << s.runnable
        << ",\"segcache_bytes\":" << s.segcache_bytes << ",\"fault_score\":" << s.fault_score
        << "}\n";
  }

  // One summary line per flight-recorder post-mortem (the full ring snapshots
  // live in FlightRecorder::postmortems() and the POSTMORTEM_<n>.jsonl files).
  for (const sim::FlightRecorder::Postmortem& pm : recorder_.postmortems()) {
    out << "{\"type\":\"postmortem\",\"t_ns\":" << pm.at << ",\"host\":\""
        << sim::JsonEscape(pm.host) << "\",\"trace_id\":" << pm.trace_id << ",\"reason\":\""
        << sim::JsonEscape(pm.reason) << "\"}\n";
  }

  // Health-monitor alerts and SLO budget status (present only when armed).
  for (const sim::HealthAlert& a : health_monitor_.alerts()) {
    out << "{\"type\":\"alert\",\"t_ns\":" << a.at << ",\"rule\":\"" << sim::JsonEscape(a.rule)
        << "\",\"host\":\"" << sim::JsonEscape(a.host) << "\",\"value\":" << a.value
        << ",\"detail\":\"" << sim::JsonEscape(a.detail)
        << "\",\"resolved\":" << (a.resolved ? "true" : "false")
        << ",\"resolved_at_ns\":" << a.resolved_at << "}\n";
  }
  for (const sim::HealthMonitor::BudgetStatus& b : health_monitor_.Budgets()) {
    out << "{\"type\":\"slo\",\"name\":\"" << sim::JsonEscape(b.slo->name) << "\",\"host\":\""
        << sim::JsonEscape(b.host) << "\",\"events\":" << b.events << ",\"bad\":" << b.bad
        << ",\"allowed\":" << b.allowed << ",\"burn_fast\":" << b.burn_fast
        << ",\"burn_slow\":" << b.burn_slow
        << ",\"firing_fast\":" << (b.firing_fast ? "true" : "false")
        << ",\"firing_slow\":" << (b.firing_slow ? "true" : "false") << "}\n";
  }

  // Placement decision audit lines (present only when the log was armed).
  decision_log_.WriteJsonl(out);
}

bool Cluster::WriteReport(const std::string& path) const {
  std::ofstream out(path, std::ios::app);
  if (!out) return false;
  WriteReport(out);
  return out.good();
}

void Cluster::WriteChromeTrace(std::ostream& out) const {
  // Host name -> Chrome "process" id. One track per host; each simulated pid is
  // a "thread" on its host's track, so nested phase spans render as a flame.
  std::map<std::string, int> host_pid;
  for (size_t i = 0; i < hosts_.size(); ++i) {
    host_pid[hosts_[i]->hostname()] = static_cast<int>(i);
  }

  std::vector<std::string> events;
  for (const auto& [hostname, idx] : host_pid) {
    events.push_back("{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":" + std::to_string(idx) +
                     ",\"tid\":0,\"args\":{\"name\":\"" + sim::JsonEscape(hostname) + "\"}}");
  }

  std::map<std::pair<int, int32_t>, std::vector<const sim::SpanRecord*>> threads;
  for (const sim::SpanRecord& s : spans_.spans()) {
    if (!s.closed()) continue;
    auto it = host_pid.find(s.host);
    if (it == host_pid.end()) continue;
    threads[{it->second, s.pid}].push_back(&s);
  }

  // B/E duration events per thread. Spans on one pid either nest or are
  // disjoint in virtual time, so sorting parents first (earlier begin, then
  // later end) and keeping a stack of open spans — closing every span that ends
  // at or before the next begin — yields a B/E stream where every End matches
  // the innermost open Begin.
  for (auto& [key, spans] : threads) {
    const int pid = key.first;
    const int32_t tid = key.second;
    std::sort(spans.begin(), spans.end(),
              [](const sim::SpanRecord* a, const sim::SpanRecord* b) {
                if (a->begin != b->begin) return a->begin < b->begin;
                if (a->end != b->end) return a->end > b->end;
                return a->id < b->id;
              });
    std::vector<const sim::SpanRecord*> open;
    auto emit_end = [&events, pid, tid](const sim::SpanRecord* s) {
      events.push_back("{\"ph\":\"E\",\"pid\":" + std::to_string(pid) +
                       ",\"tid\":" + std::to_string(tid) + ",\"ts\":" + TraceMicros(s->end) + "}");
    };
    for (const sim::SpanRecord* s : spans) {
      while (!open.empty() && open.back()->end <= s->begin) {
        emit_end(open.back());
        open.pop_back();
      }
      events.push_back("{\"name\":\"" + sim::JsonEscape(s->phase) + "\",\"ph\":\"B\",\"pid\":" +
                       std::to_string(pid) + ",\"tid\":" + std::to_string(tid) +
                       ",\"ts\":" + TraceMicros(s->begin) +
                       ",\"args\":{\"span_id\":" + std::to_string(s->id) +
                       ",\"trace_id\":" + std::to_string(s->trace_id) +
                       ",\"parent_id\":" + std::to_string(s->parent_id) + "}}");
      open.push_back(s);
    }
    while (!open.empty()) {
      emit_end(open.back());
      open.pop_back();
    }
  }

  // Flow arrows: a span whose parent closed on a *different* host is the far
  // side of a cross-machine hop (rsh command, daemon spawn, remote restart) —
  // draw source -> target so Perfetto connects the two tracks.
  for (const sim::SpanRecord& s : spans_.spans()) {
    if (!s.closed() || s.parent_id == 0) continue;
    const sim::SpanRecord* parent = spans_.Find(s.parent_id);
    if (parent == nullptr || !parent->closed() || parent->host == s.host) continue;
    auto pit = host_pid.find(parent->host);
    auto cit = host_pid.find(s.host);
    if (pit == host_pid.end() || cit == host_pid.end()) continue;
    const std::string id = std::to_string(s.id);
    const std::string ts = TraceMicros(s.begin);
    events.push_back("{\"name\":\"migrate\",\"cat\":\"flow\",\"ph\":\"s\",\"id\":" + id +
                     ",\"pid\":" + std::to_string(pit->second) +
                     ",\"tid\":" + std::to_string(parent->pid) + ",\"ts\":" + ts + "}");
    events.push_back("{\"name\":\"migrate\",\"cat\":\"flow\",\"ph\":\"f\",\"bp\":\"e\",\"id\":" +
                     id + ",\"pid\":" + std::to_string(cit->second) +
                     ",\"tid\":" + std::to_string(s.pid) + ",\"ts\":" + ts + "}");
  }

  // One event per line (tests and grep-ability); valid JSON either way.
  out << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n";
  for (size_t i = 0; i < events.size(); ++i) {
    out << events[i] << (i + 1 == events.size() ? "\n" : ",\n");
  }
  out << "]}\n";
}

bool Cluster::WriteChromeTrace(const std::string& path) const {
  std::ofstream out(path, std::ios::trunc);
  if (!out) return false;
  WriteChromeTrace(out);
  return out.good();
}

}  // namespace pmig::cluster
