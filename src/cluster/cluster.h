// A cluster of workstations on one Ethernet, sharing one virtual timeline.
//
// Reproduces the paper's environment (Section 3): Sun workstations plus a file
// server, each machine's root mounted on every other machine as /n/<host> (the 8th
// research edition convention), NFS for all cross-machine file access. Machines run
// in lockstep scheduler quanta; all timers and I/O completions live on the shared
// VirtualClock, so a whole multi-machine experiment is deterministic.

#ifndef PMIG_SRC_CLUSTER_CLUSTER_H_
#define PMIG_SRC_CLUSTER_CLUSTER_H_

#include <functional>
#include <iosfwd>
#include <memory>
#include <string>
#include <vector>

#include "src/kernel/kernel.h"
#include "src/net/migration_daemon.h"
#include "src/net/network.h"
#include "src/sim/clock.h"
#include "src/sim/cost_model.h"
#include "src/sim/fault.h"
#include "src/sim/fault_history.h"
#include "src/sim/metrics.h"
#include "src/sim/span.h"
#include "src/sim/trace.h"

namespace pmig::cluster {

struct HostSpec {
  std::string name;
  vm::IsaLevel isa = vm::IsaLevel::kIsa20;  // Sun-3 by default
};

struct ClusterConfig {
  std::vector<HostSpec> hosts;
  sim::CostModel costs;
  kernel::KernelConfig kernel;      // applied to every host (isa overridden per host)
  bool start_migration_daemons = false;  // run migrationd on every host (§6.4)
  bool enable_trace = false;
  // Observability (off by default; when off, instrumentation is a dead branch and
  // virtual-time results are bit-identical to an uninstrumented build).
  bool enable_metrics = false;  // per-host counter/gauge/histogram registries
  bool enable_spans = false;    // migration phase spans (cluster-wide log)
  // Deterministic fault injection (inert by default; when disabled no RNG is
  // consumed, no timers are armed, and results stay bit-identical).
  sim::FaultConfig faults;
};

class Cluster {
 public:
  explicit Cluster(ClusterConfig config);
  ~Cluster();

  Cluster(const Cluster&) = delete;
  Cluster& operator=(const Cluster&) = delete;

  kernel::Kernel& host(std::string_view name);
  const std::vector<std::unique_ptr<kernel::Kernel>>& hosts() const { return hosts_; }
  net::Network& network() { return *network_; }
  sim::VirtualClock& clock() { return clock_; }
  sim::FaultInjector& faults() { return *faults_; }
  sim::FaultHistory& fault_history() { return fault_history_; }
  sim::TraceLog& trace() { return trace_; }
  sim::SpanLog& spans() { return spans_; }
  const sim::SpanLog& spans() const { return spans_; }
  const sim::CostModel& costs() const { return config_.costs; }
  kernel::ProgramRegistry& programs() { return programs_; }

  void RegisterProgram(const std::string& name, kernel::ProgramEntry entry) {
    programs_[name] = std::move(entry);
  }

  // --- Simulation driving ---
  // Runs every machine for (roughly) `duration` of virtual time.
  void RunFor(sim::Nanos duration);
  // Runs until no machine has runnable/sleeping work (blocked-forever daemons are
  // considered idle) or `limit` virtual time elapses. True if it went idle.
  bool RunUntilIdle(sim::Nanos limit = sim::Seconds(600));
  // Runs until `cond()` holds; true if it did before `limit` elapsed.
  bool RunUntil(const std::function<bool()>& cond, sim::Nanos limit = sim::Seconds(600));

  // Total CPU consumed across all machines (for "CPU time of an operation" deltas).
  sim::Nanos TotalCpu() const;

  // The migration daemon's queue on `host` (null unless daemons are running).
  net::SpawnService* spawn_service(std::string_view host);

  // Powers a machine off (crash) or back on. While down it runs nothing and its
  // disk is unreachable from every other machine.
  void SetHostDown(std::string_view name, bool down);

  // --- Run reports ---
  // Sum of every host's metrics registry (counters/gauges add; histograms merge).
  sim::MetricsRegistry AggregateMetrics() const;
  // Machine-readable run report: one JSON object per line (JSONL). Includes a
  // header, per-host metrics, every closed span, and a phase-time summary whose
  // per-phase self times sum exactly to the end-to-end migrate time.
  void WriteReport(std::ostream& out) const;
  // Convenience: appends the report to `path` on the real filesystem. False on
  // open failure.
  bool WriteReport(const std::string& path) const;

 private:
  void Boot();
  // One lockstep step: each machine runs a quantum, then the clock advances by one
  // quantum (machines are parallel hardware). Returns true if anything ran.
  bool Step();
  bool AnyTimedWork() const;

  ClusterConfig config_;
  sim::VirtualClock clock_;
  sim::TraceLog trace_;
  sim::SpanLog spans_{&clock_, &trace_};
  kernel::ProgramRegistry programs_;
  std::unique_ptr<sim::FaultInjector> faults_;
  sim::FaultHistory fault_history_{&clock_};
  std::vector<std::unique_ptr<kernel::Kernel>> hosts_;
  std::unique_ptr<net::Network> network_;
  std::vector<std::unique_ptr<net::SpawnService>> spawn_services_;
};

}  // namespace pmig::cluster

#endif  // PMIG_SRC_CLUSTER_CLUSTER_H_
