// A cluster of workstations on one Ethernet, sharing one virtual timeline.
//
// Reproduces the paper's environment (Section 3): Sun workstations plus a file
// server, each machine's root mounted on every other machine as /n/<host> (the 8th
// research edition convention), NFS for all cross-machine file access. Machines run
// in lockstep scheduler quanta; all timers and I/O completions live on the shared
// VirtualClock, so a whole multi-machine experiment is deterministic.

#ifndef PMIG_SRC_CLUSTER_CLUSTER_H_
#define PMIG_SRC_CLUSTER_CLUSTER_H_

#include <functional>
#include <iosfwd>
#include <memory>
#include <string>
#include <vector>

#include "src/apps/decision_log.h"
#include "src/kernel/kernel.h"
#include "src/net/migration_daemon.h"
#include "src/net/network.h"
#include "src/sim/clock.h"
#include "src/sim/cost_model.h"
#include "src/sim/fault.h"
#include "src/sim/fault_history.h"
#include "src/sim/flight_recorder.h"
#include "src/sim/health_monitor.h"
#include "src/sim/metrics.h"
#include "src/sim/span.h"
#include "src/sim/trace.h"

namespace pmig::cluster {

struct HostSpec {
  std::string name;
  vm::IsaLevel isa = vm::IsaLevel::kIsa20;  // Sun-3 by default
};

struct ClusterConfig {
  std::vector<HostSpec> hosts;
  sim::CostModel costs;
  kernel::KernelConfig kernel;      // applied to every host (isa overridden per host)
  bool start_migration_daemons = false;  // run migrationd on every host (§6.4)
  bool enable_trace = false;
  // Observability (off by default; when off, instrumentation is a dead branch and
  // virtual-time results are bit-identical to an uninstrumented build).
  bool enable_metrics = false;  // per-host counter/gauge/histogram registries
  bool enable_spans = false;    // migration phase spans (cluster-wide log)
  // Flight recorder: per-host bounded rings of recent trace/span events that
  // auto-dump a JSONL post-mortem when a migrate fails, falls back, or the
  // kernel aborts a dump. Pure bookkeeping — no virtual time, no RNG.
  bool enable_flight_recorder = false;
  size_t flight_recorder_capacity = 256;  // events retained per host
  // Post-mortems are also written as POSTMORTEM_<n>.jsonl files here (real
  // filesystem) when non-empty; they always stay readable in memory.
  std::string postmortem_dir;
  // Time-series sampler: at least every `sample_period` of virtual time (checked
  // from the lockstep Step(), never via a clock timer, so sampling cannot perturb
  // virtual times), snapshot each host's runnable load, segment-cache bytes, and
  // fault score into the run report. 0 (the default) disables sampling.
  sim::Nanos sample_period = 0;
  // Health monitor (sim::HealthMonitor): armed iff `health.anomaly_detection`
  // is set or `slos` is non-empty. The sampler above feeds it per-host load /
  // segcache / fault-score series, and the kernel + migrate paths feed dump,
  // restart, and end-to-end latency plus per-host error outcomes. Like the
  // metrics layer it is observation-only (no RNG, no timers, no virtual-time
  // charge): with the defaults — no SLOs, detection off — it is a dead branch
  // and results stay bit-identical.
  sim::HealthOptions health;
  std::vector<sim::Slo> slos;
  // Placement decision audit log (apps::DecisionLog): every PlacementEngine
  // pick records its full candidate set, per-factor scores, exclusions with
  // reasons, runner-up, and score margin; surfaced as report "decision" lines
  // and the msh pwhy built-in. Observation-only like the health monitor: off
  // it is a dead branch, and armed-but-unread runs stay bit-identical.
  bool enable_decision_log = false;
  size_t decision_log_capacity = 1024;  // decisions retained in the ring
  // Deterministic fault injection (inert by default; when disabled no RNG is
  // consumed, no timers are armed, and results stay bit-identical).
  sim::FaultConfig faults;
};

// One sampler snapshot of one host.
struct LoadSample {
  sim::Nanos at = 0;
  std::string host;
  bool down = false;
  int runnable = 0;            // runnable VM processes
  int64_t segcache_bytes = 0;  // bytes held by /var/segcache
  double fault_score = 0.0;    // decayed FaultHistory score
};

class Cluster {
 public:
  explicit Cluster(ClusterConfig config);
  ~Cluster();

  Cluster(const Cluster&) = delete;
  Cluster& operator=(const Cluster&) = delete;

  kernel::Kernel& host(std::string_view name);
  const std::vector<std::unique_ptr<kernel::Kernel>>& hosts() const { return hosts_; }
  net::Network& network() { return *network_; }
  sim::VirtualClock& clock() { return clock_; }
  sim::FaultInjector& faults() { return *faults_; }
  sim::FaultHistory& fault_history() { return fault_history_; }
  sim::TraceLog& trace() { return trace_; }
  sim::SpanLog& spans() { return spans_; }
  const sim::SpanLog& spans() const { return spans_; }
  sim::FlightRecorder& flight_recorder() { return recorder_; }
  const sim::FlightRecorder& flight_recorder() const { return recorder_; }
  sim::HealthMonitor& health_monitor() { return health_monitor_; }
  const sim::HealthMonitor& health_monitor() const { return health_monitor_; }
  apps::DecisionLog& decision_log() { return decision_log_; }
  const apps::DecisionLog& decision_log() const { return decision_log_; }
  const std::vector<LoadSample>& samples() const { return samples_; }
  const sim::CostModel& costs() const { return config_.costs; }
  kernel::ProgramRegistry& programs() { return programs_; }

  void RegisterProgram(const std::string& name, kernel::ProgramEntry entry) {
    programs_[name] = std::move(entry);
  }

  // --- Simulation driving ---
  // Runs every machine for (roughly) `duration` of virtual time.
  void RunFor(sim::Nanos duration);
  // Runs until no machine has runnable/sleeping work (blocked-forever daemons are
  // considered idle) or `limit` virtual time elapses. True if it went idle.
  bool RunUntilIdle(sim::Nanos limit = sim::Seconds(600));
  // Runs until `cond()` holds; true if it did before `limit` elapsed.
  bool RunUntil(const std::function<bool()>& cond, sim::Nanos limit = sim::Seconds(600));

  // Total CPU consumed across all machines (for "CPU time of an operation" deltas).
  sim::Nanos TotalCpu() const;

  // The migration daemon's queue on `host` (null unless daemons are running).
  net::SpawnService* spawn_service(std::string_view host);

  // Powers a machine off (crash) or back on. While down it runs nothing and its
  // disk is unreachable from every other machine.
  void SetHostDown(std::string_view name, bool down);

  // --- Run reports ---
  // Sum of every host's metrics registry (counters/gauges add; histograms merge).
  sim::MetricsRegistry AggregateMetrics() const;
  // Machine-readable run report: one JSON object per line (JSONL). Includes a
  // header, per-host metrics, every closed span, and a phase-time summary whose
  // per-phase self times sum exactly to the end-to-end migrate time.
  void WriteReport(std::ostream& out) const;
  // Convenience: appends the report to `path` on the real filesystem. False on
  // open failure.
  bool WriteReport(const std::string& path) const;
  // Chrome trace-event JSON (loads in Perfetto / chrome://tracing): one track
  // per host, nested B/E phase slices per process, s/f flow arrows where a
  // span's parent lives on a different host. Only closed spans are emitted.
  void WriteChromeTrace(std::ostream& out) const;
  // Convenience: writes (truncates) `path` on the real filesystem.
  bool WriteChromeTrace(const std::string& path) const;

 private:
  void Boot();
  // One lockstep step: each machine runs a quantum, then the clock advances by one
  // quantum (machines are parallel hardware). Returns true if anything ran.
  bool Step();
  bool AnyTimedWork() const;
  void TakeSample();
  static int64_t SegcacheBytes(kernel::Kernel& k);

  ClusterConfig config_;
  sim::VirtualClock clock_;
  sim::TraceLog trace_;
  sim::SpanLog spans_{&clock_, &trace_};
  sim::FlightRecorder recorder_{&clock_};
  sim::HealthMonitor health_monitor_;
  apps::DecisionLog decision_log_{&clock_};
  std::vector<LoadSample> samples_;
  sim::Nanos next_sample_at_ = 0;  // next sampler due time (0 = sampler off)
  kernel::ProgramRegistry programs_;
  std::unique_ptr<sim::FaultInjector> faults_;
  sim::FaultHistory fault_history_{&clock_};
  std::vector<std::unique_ptr<kernel::Kernel>> hosts_;
  std::unique_ptr<net::Network> network_;
  std::vector<std::unique_ptr<net::SpawnService>> spawn_services_;
};

}  // namespace pmig::cluster

#endif  // PMIG_SRC_CLUSTER_CLUSTER_H_
