// Testbed: a booted cluster with the migration mechanism installed, the standard
// programs on every host, and a console terminal per host. The shared fixture for
// tests, benchmarks, and examples — and a convenient facade for library users.

#ifndef PMIG_SRC_CLUSTER_TESTBED_H_
#define PMIG_SRC_CLUSTER_TESTBED_H_

#include <memory>
#include <string>

#include "src/cluster/cluster.h"
#include "src/core/setup.h"
#include "src/core/test_programs.h"
#include "src/kernel/kernel.h"

namespace pmig::testbed {

constexpr int32_t kUserUid = 100;

struct TestbedOptions {
  int num_hosts = 2;
  bool track_names = true;
  bool virtualize_identity = false;
  bool daemons = false;
  bool trace = false;
  bool metrics = false;  // per-host MetricsRegistry instances
  bool spans = false;    // migration phase spans
  // Flight recorder: bounded per-host event rings that dump a post-mortem when
  // a migrate fails or falls back (see ClusterConfig::enable_flight_recorder).
  bool flight_recorder = false;
  size_t flight_recorder_capacity = 256;  // events retained per host ring
  // Arm the virtual-time load sampler with this period (0 = off).
  sim::Nanos sample_period = 0;
  // When non-empty, post-mortems are also written here as real files.
  std::string postmortem_dir;
  // Incremental data path: arm dirty-page tracking at exec so dumpproc
  // --incremental / migrate --cached can emit delta dumps.
  bool dirty_tracking = false;
  // The paper's site convention (Section 3 footnote): user home directories live
  // on a file server; /u/user on every machine is a symbolic link to
  // /n/<server>/u2/user. The *last* host acts as the server (with one host the
  // link loops back to the local disk). Off by default for unit-test simplicity;
  // the figure benchmarks turn it on.
  bool file_server_home = false;
  // Per-host ISA; hosts beyond the vector's size get kIsa20.
  std::vector<vm::IsaLevel> isa;
  // Cost-model override (experiments that slow the network, speed the disk, ...).
  sim::CostModel costs;
  // Deterministic fault injection (inert unless faults.enabled).
  sim::FaultConfig faults;
  // Health monitor (armed iff health.anomaly_detection or slos non-empty).
  sim::HealthOptions health;
  std::vector<sim::Slo> slos;
  // Placement decision audit log (see ClusterConfig::enable_decision_log).
  bool decision_log = false;
  size_t decision_log_capacity = 1024;
};

// Host names follow the paper's examples: brick, schooner, brador, classic.
inline std::vector<std::string> DefaultHostNames() {
  return {"brick", "schooner", "brador", "classic"};
}

// The name for host i: the paper's four machines, then host4, host5, ... —
// names must be unique (the network and /n mounts key on them), so clusters
// bigger than the paper's get synthetic names instead of colliding.
inline std::string DefaultHostName(int i) {
  const std::vector<std::string> names = DefaultHostNames();
  if (i >= 0 && static_cast<size_t>(i) < names.size()) {
    return names[static_cast<size_t>(i)];
  }
  return "host" + std::to_string(i);
}

class Testbed {
 public:
  explicit Testbed(TestbedOptions options = {}) {
    cluster::ClusterConfig config;
    for (int i = 0; i < options.num_hosts; ++i) {
      cluster::HostSpec spec;
      spec.name = DefaultHostName(i);
      if (static_cast<size_t>(i) < options.isa.size()) {
        spec.isa = options.isa[static_cast<size_t>(i)];
      }
      config.hosts.push_back(spec);
    }
    config.costs = options.costs;
    config.kernel.track_names = options.track_names;
    config.kernel.virtualize_identity = options.virtualize_identity;
    config.kernel.track_dirty_pages = options.dirty_tracking;
    config.start_migration_daemons = options.daemons;
    config.enable_trace = options.trace;
    config.enable_metrics = options.metrics;
    config.enable_spans = options.spans;
    config.enable_flight_recorder = options.flight_recorder;
    config.flight_recorder_capacity = options.flight_recorder_capacity;
    config.sample_period = options.sample_period;
    config.postmortem_dir = options.postmortem_dir;
    config.faults = options.faults;
    config.health = options.health;
    config.slos = options.slos;
    config.enable_decision_log = options.decision_log;
    config.decision_log_capacity = options.decision_log_capacity;
    cluster_ = std::make_unique<cluster::Cluster>(std::move(config));
    core::InstallMigration(*cluster_);
    for (const auto& host : cluster_->hosts()) {
      core::InstallStandardPrograms(*host);
      host->CreateTty("console");
      host->CreateTty("ttyp0");
      if (options.file_server_home) {
        const std::string server = cluster_->hosts().back()->hostname();
        host->vfs().SetupSymlink("/u/user", "/n/" + server + "/u2/user");
      } else {
        vfs::InodePtr home = host->vfs().SetupMkdirAll("/u/user");
        home->uid = kUserUid;  // the test user owns their home directory
      }
    }
    if (options.file_server_home) {
      vfs::InodePtr home = cluster_->hosts().back()->vfs().SetupMkdirAll("/u2/user");
      home->uid = kUserUid;
    }
  }

  cluster::Cluster& cluster() { return *cluster_; }
  kernel::Kernel& host(std::string_view name) { return cluster_->host(name); }
  kernel::Tty* console(std::string_view host_name) {
    return host(host_name).FindTty("console");
  }
  kernel::Tty* tty(std::string_view host_name, std::string_view tty_name) {
    return host(host_name).FindTty(tty_name);
  }

  // Starts a VM program as the test user, attached to the host's console.
  int32_t StartVm(std::string_view host_name, const std::string& path,
                  std::vector<std::string> args = {}, const std::string& cwd = "/u/user",
                  kernel::Tty* on_tty = nullptr) {
    kernel::Kernel& k = host(host_name);
    kernel::SpawnOptions opts;
    opts.creds = {kUserUid, 10, kUserUid, 10};
    opts.tty = on_tty != nullptr ? on_tty : console(host_name);
    opts.cwd = cwd;
    const Result<int32_t> pid = k.SpawnVm(path, std::move(args), opts);
    if (!pid.ok()) return -1;
    return *pid;
  }

  // Starts a registered native tool as the test user on a separate terminal.
  int32_t StartTool(std::string_view host_name, const std::string& program,
                    std::vector<std::string> args, int32_t uid = kUserUid,
                    kernel::Tty* on_tty = nullptr) {
    kernel::Kernel& k = host(host_name);
    kernel::SpawnOptions opts;
    opts.creds = {uid, 10, uid, 10};
    opts.tty = on_tty != nullptr ? on_tty : tty(host_name, "ttyp0");
    opts.cwd = "/";
    const Result<int32_t> pid = k.SpawnProgram(program, std::move(args), opts);
    if (!pid.ok()) return -1;
    return *pid;
  }

  // Runs until `pid` on `host_name` is blocked at its input prompt with no typed
  // input left to consume (so the process has genuinely quiesced — merely "still
  // blocked from before the last Type()" does not count).
  bool RunUntilBlocked(std::string_view host_name, int32_t pid,
                       sim::Nanos limit = sim::Seconds(120)) {
    kernel::Kernel& k = host(host_name);
    return cluster_->RunUntil(
        [&k, pid] {
          const kernel::Proc* p = k.FindProc(pid);
          if (p == nullptr || p->state != kernel::ProcState::kBlocked) return false;
          return p->controlling_tty == nullptr || !p->controlling_tty->InputReady();
        },
        limit);
  }

  // Runs until `pid` on `host_name` has terminated (zombie or reaped).
  bool RunUntilExited(std::string_view host_name, int32_t pid,
                      sim::Nanos limit = sim::Seconds(600)) {
    kernel::Kernel& k = host(host_name);
    return cluster_->RunUntil(
        [&k, pid] {
          const kernel::Proc* p = k.FindAnyProc(pid);
          return p == nullptr || !p->Alive();
        },
        limit);
  }

  // Exit info of a (possibly reaped) process.
  kernel::ExitInfo ExitInfoOf(std::string_view host_name, int32_t pid) {
    kernel::Proc* p = host(host_name).FindAnyProc(pid);
    return p != nullptr ? p->exit_info : kernel::ExitInfo{};
  }

  // The pid of the most recently started process matching `command` on a host.
  int32_t FindPidByCommand(std::string_view host_name, std::string_view needle) {
    int32_t found = -1;
    for (kernel::Proc* p : host(host_name).ListProcs()) {
      if (p->command.find(needle) != std::string::npos) found = p->pid;
    }
    return found;
  }

  // File contents on a host's local disk (no cost accounting).
  std::string FileContents(std::string_view host_name, const std::string& path) {
    kernel::Kernel& k = host(host_name);
    auto r = k.vfs().Resolve(k.vfs().RootState(), path, vfs::Follow::kAll, nullptr);
    if (!r.ok() || !r->inode->IsRegular()) return "<missing>";
    return r->inode->data;
  }

  bool FileExists(std::string_view host_name, const std::string& path) {
    kernel::Kernel& k = host(host_name);
    auto r = k.vfs().Resolve(k.vfs().RootState(), path, vfs::Follow::kAll, nullptr);
    return r.ok();
  }

 private:
  std::unique_ptr<cluster::Cluster> cluster_;
};

}  // namespace pmig::testbed

#endif  // PMIG_SRC_CLUSTER_TESTBED_H_
