// Terminal driver: a char device with 4.2BSD-flavoured line-discipline modes.
//
// The paper's restart command reads the dumped terminal flags and re-applies them to
// the current terminal "so that visual applications such as screen editors can be
// restarted properly" (Section 4.1) — and its migrate command *loses* raw/noecho
// modes when the restart side runs under rsh, because rsh attaches the remote
// command to a network pipe rather than a terminal. Both behaviours are modelled
// here: a Tty carries a flags word (kTtyRaw, kTtyEcho, ...), and processes spawned
// by the rsh service simply have no controlling terminal.

#ifndef PMIG_SRC_KERNEL_TTY_H_
#define PMIG_SRC_KERNEL_TTY_H_

#include <deque>
#include <string>

#include "src/vfs/inode.h"
#include "src/vm/abi.h"

namespace pmig::kernel {

class Tty : public vfs::Device {
 public:
  explicit Tty(std::string name) : name_(std::move(name)) {}

  std::string_view DeviceName() const override { return name_; }

  uint16_t flags() const { return flags_; }
  void set_flags(uint16_t flags) { flags_ = flags; }
  bool raw() const { return (flags_ & vm::abi::kTtyRaw) != 0; }
  bool cbreak() const { return (flags_ & vm::abi::kTtyCbreak) != 0; }
  bool echo() const { return (flags_ & vm::abi::kTtyEcho) != 0; }

  // --- Input side (the "user typing") ---
  // Queues keystrokes. With echo on, they are also appended to the output. This is
  // how tests and the interactive examples feed programs.
  void Type(std::string_view text);

  // True when a read() would not block: cooked mode needs a complete line, raw and
  // cbreak modes need at least one character.
  bool InputReady() const;

  // Consumes input for a read() of `max` bytes under the current modes: cooked mode
  // returns at most one line (including '\n'); raw/cbreak return what is queued.
  std::string ConsumeInput(int64_t max);

  // --- Output side ---
  void AppendOutput(std::string_view text);
  const std::string& output() const { return output_; }
  // Output with the line discipline's '\r' expansion stripped back out; what a user
  // "sees". Tests compare against this.
  std::string PlainOutput() const {
    std::string out;
    for (const char c : output_) {
      if (c != '\r') out.push_back(c);
    }
    return out;
  }
  void ClearOutput() { output_.clear(); }

  int64_t pending_input() const { return static_cast<int64_t>(input_.size()); }

 private:
  std::string name_;
  uint16_t flags_ = vm::abi::kTtyDefaultFlags;
  std::deque<char> input_;
  std::string output_;
};

// The null device (/dev/null): reads give EOF, writes vanish. One shared instance
// per kernel; restart points unreopenable files and ex-sockets at it.
class NullDevice : public vfs::Device {
 public:
  std::string_view DeviceName() const override { return "null"; }
};

}  // namespace pmig::kernel

#endif  // PMIG_SRC_KERNEL_TTY_H_
