// Native-process execution: C++ callables run as simulated processes.
//
// The migration tools (dumpproc, restart, migrate), shells, and daemons are native
// programs: ordinary C++ functions that talk to the kernel through SyscallApi. Each
// runs on its own host thread, but the simulation is strictly single-threaded in
// effect: exactly one thread (the scheduler's or one task's) is ever runnable, and
// control passes by explicit handoff. The scheduler parks inside Resume() while the
// task runs; the task parks inside Yield() (called from blocking syscalls) while
// the rest of the simulation runs. No kernel data is ever touched concurrently.
//
// A native task ends in one of four ways, all by unwinding its thread:
//   * its entry function returns an exit code;
//   * it calls SyscallApi::Exit (ExitRequest unwinds to the trampoline);
//   * it is killed (RequestKill; KilledSignal unwinds at the next yield point);
//   * it calls rest_proc() successfully: the *process* lives on as a VM process,
//     only the C++ thread unwinds (BecameVm).

#ifndef PMIG_SRC_KERNEL_NATIVE_H_
#define PMIG_SRC_KERNEL_NATIVE_H_

#include <atomic>
#include <condition_variable>
#include <functional>
#include <mutex>
#include <thread>

namespace pmig::kernel {

class SyscallApi;

// Unwind tokens. These deliberately do not derive from std::exception: nothing may
// catch them except the trampoline.
struct ExitRequest {
  int code;
};
struct KilledSignal {};
struct BecameVm {};

class NativeTask {
 public:
  using Entry = std::function<int(SyscallApi&)>;

  NativeTask() = default;
  ~NativeTask();

  NativeTask(const NativeTask&) = delete;
  NativeTask& operator=(const NativeTask&) = delete;

  // Launches the thread; the entry function does not run until the first Resume().
  void Start(Entry entry, SyscallApi* api);

  // Scheduler side: hands the turn to the task; returns when the task yields or
  // finishes. Must not be called after finished().
  void Resume();

  // Task side (only from within syscalls): hands the turn back to the scheduler;
  // returns when resumed. Throws KilledSignal if a kill was requested meanwhile.
  void Yield();

  // Scheduler side: arranges for the task to unwind at its next resume.
  void RequestKill() { kill_requested_ = true; }

  bool finished() const { return finished_; }
  bool became_vm() const { return became_vm_; }
  bool was_killed() const { return was_killed_; }
  int exit_code() const { return exit_code_; }

 private:
  enum class Turn { kScheduler, kTask };

  void HandToScheduler();
  void AwaitTurn();

  std::thread thread_;
  std::mutex mutex_;
  std::condition_variable cv_;
  Turn turn_ = Turn::kScheduler;

  std::atomic<bool> kill_requested_{false};
  std::atomic<bool> finished_{false};
  bool became_vm_ = false;
  bool was_killed_ = false;
  int exit_code_ = 0;
};

}  // namespace pmig::kernel

#endif  // PMIG_SRC_KERNEL_NATIVE_H_
