// The per-machine kernel: proc table, file table, syscalls, signals, scheduler.
//
// One Kernel is one workstation running the (modified or unmodified) operating
// system. A Cluster owns several kernels plus the shared virtual clock and the
// network. The paper's kernel work maps here as follows:
//
//   Section 5.1 (modifications)  -> KernelConfig::track_names and the name
//       bookkeeping in SysOpen/SysCreat/SysClose/SysChdir; the u_cwd_path field in
//       Proc; name-allocation counters in KernelStats (for the Figure 1 bench and
//       the name-storage ablation).
//   Section 5.2 (additions)      -> SIGDUMP delivery (signals.cc) and the
//       rest_proc() syscall, both delegated through MigrationHooks to src/core so
//       the kernel substrate stays mechanism-agnostic; the modified execve() with
//       its "global flag + stack size" protocol appears literally as
//       restproc_flag_ / restproc_stack_size_.
//   Section 6.3's in-kernel timing -> KernelTimers, filled by SysExecve/RestProc.

#ifndef PMIG_SRC_KERNEL_KERNEL_H_
#define PMIG_SRC_KERNEL_KERNEL_H_

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "src/kernel/file.h"
#include "src/kernel/native.h"
#include "src/kernel/proc.h"
#include "src/kernel/tty.h"
#include "src/sim/clock.h"
#include "src/sim/cost_model.h"
#include "src/sim/flight_recorder.h"
#include "src/sim/health_monitor.h"
#include "src/sim/metrics.h"
#include "src/sim/result.h"
#include "src/sim/span.h"
#include "src/sim/trace.h"
#include "src/vfs/vfs.h"
#include "src/vm/aout.h"

namespace pmig::apps {
class DecisionLog;  // pointer slot only; apps/ owns the type (see decision_log.h)
}  // namespace pmig::apps

namespace pmig::kernel {

class Kernel;
class SyscallApi;

struct KernelConfig {
  // The Section 5.1 modifications: track path names of the cwd and open files.
  // false == the unmodified Sun 3.0 kernel (baseline for Figure 1).
  bool track_names = true;

  // How the open-file name strings are stored (Section 5.1 discusses why dynamic
  // allocation was chosen; the ablation bench compares).
  enum class NameStorage { kDynamic, kFixed } name_storage = NameStorage::kDynamic;
  int fixed_name_bytes = 128;

  // The Section 7 proposal: getpid()/gethostname() report pre-migration values on
  // migrated processes; getpid_real()/gethostname_real() report the truth.
  bool virtualize_identity = false;

  // Incremental migration data path: arm page-granular dirty tracking on VM
  // data/stack segments at exec time, so SIGDUMP can emit delta dumps against the
  // loaded image. Off == the paper's kernel; dumps are always full images.
  bool track_dirty_pages = false;

  // CPU of this machine (Sun-2 = kIsa10, Sun-3 = kIsa20).
  vm::IsaLevel isa = vm::IsaLevel::kIsa20;
};

struct KernelStats {
  int64_t syscalls = 0;
  int64_t context_switches = 0;
  // Kernel memory held by file-name strings (the 5.1 augmentation).
  int64_t name_bytes_current = 0;
  int64_t name_bytes_peak = 0;
  int64_t name_allocs = 0;
  int64_t signals_posted = 0;
  int64_t procs_spawned = 0;
};

// "The performance of the system calls was obtained by adding timing code inside
// the kernel" (Section 6.3). CPU is system time charged during the call; real adds
// the I/O waits it incurred.
struct InKernelTiming {
  sim::Nanos cpu = 0;
  sim::Nanos real = 0;
  bool valid = false;
};
struct KernelTimers {
  InKernelTiming execve;
  InKernelTiming rest_proc;
};

// A dump prepared by the SIGDUMP hook: files to appear when the dump completes,
// plus its cost. (The dying process pays the cost; the files become visible only
// when the dump finishes — which is why dumpproc must poll for a.outXXXXX.)
struct PreparedDump {
  std::vector<std::pair<std::string, std::string>> files;  // absolute path -> bytes
  sim::Nanos cpu = 0;
  sim::Nanos wait = 0;
};

// The migration mechanism plugs into the kernel here (implemented in src/core).
struct MigrationHooks {
  // Builds the three dump files for `proc` (must be a VM process).
  std::function<Result<PreparedDump>(Kernel&, Proc&)> sigdump;
  // rest_proc(): overlays `proc` with the dumped process. On success the proc has
  // become a running VM process and, for native callers, the hook does not return
  // (BecameVm unwinds the thread). Returns an errno on failure.
  std::function<Status(Kernel&, Proc&, const std::string& aout_path,
                       const std::string& stack_path)>
      rest_proc;
  // Optional parse-back check of freshly written dump bytes (path -> bytes).
  // Returns false when any file fails to parse — the kernel then aborts the
  // dump, removes the partial files, and resumes the process instead of
  // terminating it against an unusable dump.
  std::function<bool(const std::vector<std::pair<std::string, std::string>>&)>
      verify_dump;
};

struct StatInfo {
  vfs::InodeType type = vfs::InodeType::kRegular;
  uint32_t ino = 0;
  int32_t uid = 0;
  uint16_t mode = 0;
  int64_t size = 0;
  bool is_tty = false;
  bool remote = false;  // lives on another machine's disk (reached via NFS)
};

struct WaitResult {
  int32_t pid = 0;
  ExitInfo info;
  bool overlaid = false;  // child became a VM process via rest_proc (not reaped)
};

struct SpawnOptions {
  Credentials creds;
  Tty* tty = nullptr;
  std::string cwd = "/";
  int32_t ppid = 0;
  // Attach fds 0/1/2 to `tty` (like login would). fork() copies the parent's fd
  // table instead and disables this.
  bool stdio_on_tty = true;
  // Distributed-trace context the new process starts in (see sim::SpanLog).
  // rsh and the migration daemon thread the requester's context through here so
  // spans opened by remote tools join the originating migrate's trace.
  uint64_t trace_id = 0;
  uint64_t trace_parent_span = 0;
};

// A registered native program: name -> entry. The registry models /usr/local/bin
// for native tools so rsh and SpawnProgram can start them by name on any host.
using ProgramEntry = std::function<int(SyscallApi&, const std::vector<std::string>& args)>;
using ProgramRegistry = std::map<std::string, ProgramEntry, std::less<>>;

class Kernel {
 public:
  Kernel(std::string hostname, sim::VirtualClock* clock, const sim::CostModel* costs,
         sim::TraceLog* trace, KernelConfig config);
  ~Kernel();

  Kernel(const Kernel&) = delete;
  Kernel& operator=(const Kernel&) = delete;

  const std::string& hostname() const { return hostname_; }
  // Machine power state: a downed machine schedules nothing and its disk is
  // unreachable over NFS (see Cluster::SetHostDown).
  bool down() const { return down_; }
  void set_down(bool down) { down_ = down; }
  vfs::Vfs& vfs() { return *vfs_; }
  vfs::Filesystem& fs() { return *fs_; }
  sim::VirtualClock& clock() { return *clock_; }
  const sim::CostModel& costs() const { return *costs_; }
  const KernelConfig& config() const { return config_; }
  // For experiment setup (e.g. switching name-storage policy between runs).
  KernelConfig& mutable_config() { return config_; }
  KernelStats& stats() { return stats_; }
  KernelTimers& timers() { return timers_; }
  // Per-machine metrics (off by default; Cluster::Boot enables them when the
  // cluster is configured for metrics). Observation only — recording a metric
  // never charges cost or changes scheduling.
  sim::MetricsRegistry& metrics() { return metrics_; }
  const sim::MetricsRegistry& metrics() const { return metrics_; }
  // Cluster-owned span log for migration phase attribution (may stay null).
  void set_span_log(sim::SpanLog* spans) { spans_ = spans; }
  sim::SpanLog* spans() { return spans_; }
  // Cluster-owned flight recorder (may stay null): kernel migration/signal
  // trace lines mirror into its per-host ring so post-mortems carry kernel
  // context alongside the spans.
  void set_flight_recorder(sim::FlightRecorder* recorder) { recorder_ = recorder; }
  sim::FlightRecorder* flight_recorder() { return recorder_; }
  // Cluster-owned health monitor (null or disabled in default configs). The
  // dump and restart paths feed it latency/byte series; like metrics it is
  // observation-only and never charges cost.
  void set_health_monitor(sim::HealthMonitor* monitor) { health_monitor_ = monitor; }
  sim::HealthMonitor* health_monitor() { return health_monitor_; }
  // Cluster-owned placement decision log (null or disarmed in default
  // configs). The shell's pwhy built-in reads it back; the kernel itself never
  // touches it.
  void set_decision_log(apps::DecisionLog* log) { decision_log_ = log; }
  apps::DecisionLog* decision_log() { return decision_log_; }
  // Cluster-owned fault injector (null or disabled in default configs). Also
  // hands it to the VFS so file-I/O syscalls can draw injected errors.
  void set_fault_injector(sim::FaultInjector* faults) {
    faults_ = faults;
    vfs_->set_fault_injector(faults, hostname_);
  }
  sim::FaultInjector* faults() { return faults_; }
  void set_migration_hooks(MigrationHooks hooks) { hooks_ = std::move(hooks); }
  // First pid this kernel hands out. The cluster gives each machine a distinct
  // range so cross-host pid collisions don't confuse tests and dump-file names.
  void set_pid_base(int32_t base) { next_pid_ = base; }
  void set_program_registry(const ProgramRegistry* registry) { programs_ = registry; }
  const ProgramRegistry* program_registry() const { return programs_; }

  // --- Devices ---
  // Creates a terminal /dev/<name> (e.g. "console", "ttyp0"). Kernel owns it.
  Tty* CreateTty(const std::string& name);
  Tty* FindTty(std::string_view name);

  // --- Process lifecycle ---
  // Starts a registered native program (by name) as a new process.
  Result<int32_t> SpawnProgram(const std::string& program, std::vector<std::string> args,
                               const SpawnOptions& opts);
  // Starts a native process from an arbitrary entry point (for tests/daemons).
  int32_t SpawnNative(std::string command_name, NativeTask::Entry entry,
                      const SpawnOptions& opts);
  // Loads an executable file and starts it as a VM process.
  Result<int32_t> SpawnVm(const std::string& aout_path, std::vector<std::string> args,
                          const SpawnOptions& opts);

  Proc* FindProc(int32_t pid);
  const Proc* FindProc(int32_t pid) const;
  // Like FindProc but also returns reaped (kDead) processes, whose ExitInfo is
  // still readable. Proc storage is never recycled within a simulation.
  Proc* FindAnyProc(int32_t pid);
  // Live process listing (used by ps-like tools and the load balancer).
  std::vector<Proc*> ListProcs();
  int RunnableCount() const;

  // Posts a signal (no permission check; syscall-level checks are in SysKill).
  Status PostSignal(int32_t pid, int signo, Proc* sender);

  // --- Scheduler ---
  // Runs one quantum of this machine's CPU at the current virtual time. Returns
  // true if any process ran.
  bool RunQuantum();
  // True if some process could make progress now or later (runnable, sleeping, or
  // blocked); false when the machine is idle.
  bool HasWork() const;
  // Re-evaluates blocked processes' conditions, waking satisfied ones. The cluster
  // loop calls this before deciding the machine is idle.
  void WakeBlockedProcs();
  // True if any process is runnable or sleeping-on-a-timer (blocked-forever
  // daemons do not count).
  bool HasTimedWork() const;
  bool HasRunnableProc() const;

  // --- System calls (Proc& is the caller). Shared by the VM trap dispatcher and
  // by SyscallApi (native processes). ---
  Result<int> SysOpen(Proc& p, std::string_view path, int32_t flags, uint16_t mode = 0644);
  Result<int> SysCreat(Proc& p, std::string_view path, uint16_t mode);
  Status SysClose(Proc& p, int fd);
  // Attempts a read. If it would block, returns kAgain and the caller (VM
  // dispatcher or SyscallApi) arranges blocking per its kind.
  Result<std::string> SysRead(Proc& p, int fd, int64_t max);
  Result<int64_t> SysWrite(Proc& p, int fd, std::string_view data);
  Result<int64_t> SysLseek(Proc& p, int fd, int64_t offset, int whence);
  Result<int> SysDup(Proc& p, int fd);
  Result<std::pair<int, int>> SysPipe(Proc& p);
  Result<std::pair<int, int>> SysSocket(Proc& p);  // degenerate socketpair
  Status SysChdir(Proc& p, std::string_view path);
  Result<std::string> SysGetCwd(Proc& p);
  Result<std::string> SysReadlink(Proc& p, std::string_view path);
  Result<StatInfo> SysStat(Proc& p, std::string_view path, bool follow);
  Result<std::vector<std::string>> SysReadDir(Proc& p, std::string_view path);
  Status SysUnlink(Proc& p, std::string_view path);
  Status SysLink(Proc& p, std::string_view oldpath, std::string_view newpath);
  Status SysMkdir(Proc& p, std::string_view path, uint16_t mode);
  Status SysRmdir(Proc& p, std::string_view path);
  // 4.3BSD rename(): atomic within one machine, EXDEV across machines.
  Status SysRename(Proc& p, std::string_view oldpath, std::string_view newpath);
  Status SysKill(Proc& p, int32_t pid, int signo);
  // Marks `pid`'s next SIGDUMP as incremental (delta against the segments loaded
  // at exec). Same permission rule as kill(); ENOEXEC when the target's kernel
  // was built without dirty tracking or the target is not a VM process.
  Status SysSetDumpMode(Proc& p, int32_t pid, bool incremental);
  Result<bool> SysDumpFailed(Proc& p, int32_t pid);
  Status SysSetReUid(Proc& p, int32_t ruid, int32_t euid);
  Status SysSignal(Proc& p, int signo, SignalDisposition disposition);
  Result<uint16_t> SysTtyGet(Proc& p, int fd);
  Status SysTtySet(Proc& p, int fd, uint16_t flags);
  Result<int32_t> SysFork(Proc& p);  // VM processes only
  Status SysExecve(Proc& p, std::string_view path, const std::vector<std::string>& args);
  Status SysRestProc(Proc& p, std::string_view aout_path, std::string_view stack_path);

  // The modified execve() of Section 5.2: when restproc_flag_ is set, the initial
  // stack is allocated with restproc_stack_size_ bytes instead of being built from
  // arguments and environment. Only SysRestProc (via the hook) sets these.
  void SetRestProcExec(uint32_t stack_size) {
    restproc_flag_ = true;
    restproc_stack_size_ = stack_size;
  }
  void ClearRestProcExec() { restproc_flag_ = false; }

  // --- Cost charging (per calling process) ---
  void ChargeCpu(Proc& p, sim::Nanos amount);
  // User-mode CPU (utime) — the tools' own computation between syscalls. Kept
  // separate because Figure 1 measures *system* CPU time only.
  void ChargeUser(Proc& p, sim::Nanos amount) {
    p.utime += amount;
    quantum_left_ -= amount;
  }
  void ChargeWait(Proc& p, sim::Nanos amount) { p.pending_wait += amount; }
  // Converts pending_wait into a sleep. Returns true if the proc went to sleep.
  bool SettlePendingWait(Proc& p);

  // Puts `p` to sleep for `duration` (plus any pending wait).
  void SleepProc(Proc& p, sim::Nanos duration);
  // Blocks `p` until `check` returns true (polled each quantum).
  void BlockProc(Proc& p, std::function<bool()> check);

  // Terminates `p` (closing fds, waking waiters, reparenting children).
  void TerminateProc(Proc& p, ExitInfo info);

  // Used by the rest_proc hook: loads `image` into `p` as its new VM program,
  // using the modified-execve stack protocol if armed. Charges I/O-free CPU only
  // (file reads are charged by the caller). Fails on ISA mismatch.
  Status OverlayVmImage(Proc& p, const vm::AoutImage& image,
                        const std::vector<std::string>& args);

  // --- Fd plumbing for spawn-time stdio setup (boot, rsh, daemons) ---
  // An OpenFile on a terminal's device node (O_RDWR), for wiring fds 0/1/2.
  OpenFilePtr OpenTtyFile(Tty* tty);
  static OpenFilePtr MakeChannelFile(std::shared_ptr<Channel> channel, bool write_end,
                                     FileKind kind);
  void InstallFd(Proc& p, int fd, OpenFilePtr file);

  // Predicate that is true when a read() on `fd` would no longer block.
  std::function<bool()> MakeReadCheck(Proc& p, int fd);
  // Non-blocking wait: kAgain when children exist but none has exited yet.
  Result<WaitResult> TryWait(Proc& p);
  // True when a wait() by `parent_pid` would complete now (ready or no children).
  bool WaitReady(int32_t parent_pid) const;

  void Trace(sim::TraceCategory cat, int32_t pid, std::string text);

  // Total CPU (user+system) consumed by all processes ever run on this machine.
  sim::Nanos TotalCpu() const;

  SyscallApi* ApiFor(int32_t pid);

 private:
  friend class SyscallApi;

  void BootFilesystem();
  int32_t AllocatePid() { return next_pid_++; }
  Proc& NewProc(std::string command, ProcKind kind, const SpawnOptions& opts);
  void InitProcCwd(Proc& p, const std::string& cwd);

  // Scheduler internals.
  Proc* PickNext();
  void RunVmProc(Proc& p);
  void RunNativeProc(Proc& p);
  void HandleNativeFinish(Proc& p);
  void DeliverPendingSignals();
  void DeliverSignal(Proc& p, int signo);
  void StartMigrationDump(Proc& p);
  void StartCoreDump(Proc& p, int signo);

  // VM syscall dispatch; returns false if the proc blocked/terminated and the run
  // loop must stop.
  bool DispatchVmSyscall(Proc& p, int32_t number);
  void VmFault(Proc& p, vm::Fault fault);

  // Name-tracking helpers (the Section 5.1 bookkeeping + its costs).
  void TrackOpenName(Proc& p, OpenFile& file, std::string_view user_path);
  void ReleaseOpenName(Proc& p, OpenFile& file);
  void TrackChdirName(Proc& p, std::string_view user_path);

  Result<OpenFilePtr> FdGet(Proc& p, int fd);

  std::string hostname_;
  bool down_ = false;
  sim::VirtualClock* clock_;
  const sim::CostModel* costs_;
  sim::TraceLog* trace_;
  KernelConfig config_;
  KernelStats stats_;
  KernelTimers timers_;
  sim::MetricsRegistry metrics_;
  // Pre-resolved handles for per-quantum/per-instruction-batch paths; everything
  // cooler keeps the dotted-name API.
  sim::CounterHandle instructions_metric_;
  sim::CounterHandle native_syscall_metric_;
  sim::CounterHandle context_switch_metric_;
  sim::CounterHandle runnable_vm_metric_;
  sim::SpanLog* spans_ = nullptr;
  sim::FlightRecorder* recorder_ = nullptr;
  sim::HealthMonitor* health_monitor_ = nullptr;
  apps::DecisionLog* decision_log_ = nullptr;
  sim::FaultInjector* faults_ = nullptr;
  MigrationHooks hooks_;
  const ProgramRegistry* programs_ = nullptr;

  std::unique_ptr<vfs::Filesystem> fs_;
  std::unique_ptr<vfs::Vfs> vfs_;
  std::unique_ptr<NullDevice> null_device_;
  std::vector<std::unique_ptr<Tty>> ttys_;
  std::map<const Tty*, vfs::InodePtr> tty_nodes_;

  int32_t next_pid_ = 100;
  std::vector<std::unique_ptr<Proc>> procs_;
  std::map<int32_t, std::unique_ptr<SyscallApi>> apis_;
  size_t rr_cursor_ = 0;
  int32_t last_run_pid_ = -1;
  sim::Nanos quantum_left_ = 0;
  sim::Nanos reaped_cpu_ = 0;

  // The Section 5.2 "global flag" protocol between rest_proc() and execve().
  bool restproc_flag_ = false;
  uint32_t restproc_stack_size_ = 0;
};

// RAII phase span opened in a process's distributed-trace context: the span
// begins as a child of the proc's innermost open span (proc.trace_parent_span)
// and becomes the proc's context until the scope closes, so nested scopes and
// remote children spawned inside the scope chain into one causal tree. A null
// or disabled span log makes the scope a no-op.
class TraceSpan {
 public:
  TraceSpan(Kernel& kernel, Proc& p, std::string phase);
  ~TraceSpan();

  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

  uint64_t id() const { return id_; }

 private:
  sim::SpanLog* log_ = nullptr;
  Proc* proc_ = nullptr;
  uint64_t id_ = 0;
  uint64_t saved_parent_ = 0;
};

// The system-call interface used by native programs. One per native process; also
// the CostSink the kernel passes to the VFS on that process's behalf.
class SyscallApi : public vfs::CostSink {
 public:
  SyscallApi(Kernel* kernel, int32_t pid) : kernel_(kernel), pid_(pid) {}
  virtual ~SyscallApi() = default;

  // vfs::CostSink:
  void ChargeCpu(sim::Nanos amount) override;
  void ChargeWait(sim::Nanos amount) override;

  Kernel& kernel() { return *kernel_; }
  Proc& proc();
  int32_t pid() const { return pid_; }

  // --- System calls. Each charges syscall entry + the operation's work, and
  // converts accumulated I/O waits into virtual-time sleeps. Blocking calls yield
  // to the scheduler until they can complete. ---
  Result<int> Open(std::string_view path, int32_t flags, uint16_t mode = 0644);
  Result<int> Creat(std::string_view path, uint16_t mode = 0644);
  Status Close(int fd);
  Result<std::string> Read(int fd, int64_t max);       // "" means EOF
  Result<std::string> ReadLine(int fd);                // convenience: reads to '\n'
  Result<std::string> ReadAll(int fd);                 // convenience: reads to EOF
  Result<int64_t> Write(int fd, std::string_view data);
  Result<int64_t> Lseek(int fd, int64_t offset, int whence);
  Result<int> Dup(int fd);
  Status Chdir(std::string_view path);
  Result<std::string> GetCwd();
  Result<std::string> Readlink(std::string_view path);
  Result<StatInfo> Stat(std::string_view path);
  Result<StatInfo> LStat(std::string_view path);
  // Directory listing (sorted entry names, no "."/".."). The recovery tools
  // use this to scan /usr/tmp for orphaned dump sets.
  Result<std::vector<std::string>> ReadDir(std::string_view path);
  Status Unlink(std::string_view path);
  Status Link(std::string_view oldpath, std::string_view newpath);
  Status Mkdir(std::string_view path, uint16_t mode = 0755);
  Status Rmdir(std::string_view path);
  Status Rename(std::string_view oldpath, std::string_view newpath);
  Status Kill(int32_t target_pid, int signo);
  // setdumpmode(): arms (or disarms) incremental dumping for the target's next
  // SIGDUMP. Owner-or-superuser, like kill().
  Status SetDumpMode(int32_t target_pid, bool incremental);
  // True when `target_pid`'s most recent SIGDUMP attempt aborted (disk full,
  // corruption) and the process was resumed instead of dumped. Lets dumpproc
  // fail fast rather than waiting out its whole dump-file poll.
  Result<bool> DumpFailed(int32_t target_pid);
  Status SetReUid(int32_t ruid, int32_t euid);
  int32_t GetPid();
  int32_t GetPpid();
  int32_t GetUid();
  int32_t GetEuid();
  std::string GetHostname();
  Result<uint16_t> TtyGetFlags(int fd);
  Status TtySetFlags(int fd, uint16_t flags);
  void Sleep(sim::Nanos duration);
  Result<WaitResult> Wait();  // blocks for any child (zombie or overlaid)
  Result<int32_t> SpawnProgram(const std::string& program, std::vector<std::string> args);
  Result<int32_t> SpawnVm(const std::string& aout_path, std::vector<std::string> args);
  // rest_proc(): on success does not return (the process is overlaid).
  Status RestProc(std::string_view aout_path, std::string_view stack_path);
  [[noreturn]] void Exit(int code);

  // For the net layer: block until `check` passes, charging nothing.
  void BlockUntil(std::function<bool()> check);
  // Like BlockUntil but gives up after `timeout` of virtual time. Returns the
  // final value of `check` — false means the wait expired. timeout <= 0 waits
  // forever (and returns true).
  bool BlockUntilFor(std::function<bool()> check, sim::Nanos timeout);

  sim::Nanos Now() const;

 private:
  friend class Kernel;

  // Common syscall prologue/epilogue for native processes.
  void EnterSyscall();
  void FinishSyscall();
  void YieldIfPreempted();

  Kernel* kernel_;
  int32_t pid_;
};

}  // namespace pmig::kernel

#endif  // PMIG_SRC_KERNEL_KERNEL_H_
