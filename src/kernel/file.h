// The system open-file table.
//
// An OpenFile is what Unix calls a `struct file`: the object an fd points at,
// holding the open mode, the offset, and a reference to the underlying inode, pipe,
// or socket. Section 5.1's key kernel modification lives here: "each file structure
// has been augmented with a pointer to a dynamically allocated character string
// containing the absolute path name of the file to which it refers". When the
// kernel's name tracking is enabled, `name` holds that string, and the kernel
// charges the kmem_alloc/copy costs that Figure 1 measures.

#ifndef PMIG_SRC_KERNEL_FILE_H_
#define PMIG_SRC_KERNEL_FILE_H_

#include <memory>
#include <optional>
#include <string>

#include "src/vfs/inode.h"

namespace pmig::kernel {

// Number of per-process open files (the historic NOFILE). The paper's filesXXXXX
// dump has exactly this many fixed slots.
constexpr int kNoFile = 20;

enum class FileKind : uint8_t {
  kInode,   // regular file, directory, or device via the VFS
  kPipe,
  kSocket,
};

// A half-duplex in-kernel byte channel; two OpenFiles (read end, write end) share
// one Pipe. Sockets reuse the same buffering with FileKind::kSocket.
struct Channel {
  std::string buffer;
  bool read_open = true;
  bool write_open = true;
};

struct OpenFile {
  FileKind kind = FileKind::kInode;

  // kInode:
  vfs::InodePtr inode;

  // kPipe / kSocket:
  std::shared_ptr<Channel> channel;
  bool write_end = false;

  int32_t flags = 0;   // abi::OpenFlags
  int64_t offset = 0;
  int32_t refcount = 0;  // fds (across fork/dup) sharing this entry

  // --- Section 5.1 augmentation: the absolute path name, when the kernel tracks
  // names. nullopt on an unmodified kernel, and always nullopt for pipes/sockets.
  std::optional<std::string> name;

  bool readable() const { return (flags & 3) != 1; }   // O_RDONLY or O_RDWR
  bool writable() const { return (flags & 3) != 0; }   // O_WRONLY or O_RDWR
};

using OpenFilePtr = std::shared_ptr<OpenFile>;

}  // namespace pmig::kernel

#endif  // PMIG_SRC_KERNEL_FILE_H_
