// System-call implementations, the VM trap dispatcher, and the native SyscallApi.
//
// Layout: Kernel::Sys*() hold the semantics and cost charging, shared by both
// process kinds. DispatchVmSyscall() decodes the trap register convention for VM
// processes (including the rewind-and-block protocol for interrupted reads — the
// 4.2BSD restartable-syscall behaviour that lets SIGDUMP hit a process blocked at
// its input prompt and still produce a restartable image). SyscallApi wraps the
// same calls for native (tool) processes, adding the yield/block handshake.

#include <algorithm>
#include <cassert>

#include "src/kernel/kernel.h"
#include "src/vfs/path.h"

namespace pmig::kernel {

namespace {

using vm::abi::OpenFlags;
using vm::abi::Sys;

Tty* AsTty(const vfs::Inode& inode) {
  if (!inode.IsDevice()) return nullptr;
  return dynamic_cast<Tty*>(inode.device);
}

bool IsNullDevice(const vfs::Inode& inode) {
  return inode.IsDevice() && dynamic_cast<NullDevice*>(inode.device) != nullptr;
}

}  // namespace

// --- Name tracking (Section 5.1) -------------------------------------------------

void Kernel::TrackOpenName(Proc& p, OpenFile& file, std::string_view user_path) {
  if (!config_.track_names || file.kind != FileKind::kInode) return;
  SyscallApi* sink = ApiFor(p.pid);
  std::string abs;
  if (vfs::IsAbsolute(user_path)) {
    abs = vfs::NormalizeAbsolute(user_path);
  } else {
    // "If the file name is a relative path name, its name is combined with the
    // name of the current working directory in the user structure."
    const std::string& cwd = p.u_cwd_path.empty() ? "/" : p.u_cwd_path;
    abs = vfs::Combine(cwd, user_path);
    if (sink != nullptr) sink->ChargeCpu(costs_->name_combine);
  }
  if (sink != nullptr) {
    sink->ChargeCpu(costs_->kmem_alloc);
    sink->ChargeCpu(static_cast<sim::Nanos>(abs.size() + 1) * costs_->name_copy_per_byte);
  }
  metrics_.Inc("kernel.kmem_allocs");
  metrics_.Inc("vfs.name_bytes_copied", static_cast<int64_t>(abs.size()) + 1);
  const int64_t held = config_.name_storage == KernelConfig::NameStorage::kFixed
                           ? config_.fixed_name_bytes
                           : static_cast<int64_t>(abs.size()) + 1;
  if (config_.name_storage == KernelConfig::NameStorage::kFixed &&
      static_cast<int>(abs.size()) >= config_.fixed_name_bytes) {
    abs.resize(static_cast<size_t>(config_.fixed_name_bytes - 1));  // truncated!
  }
  file.name = std::move(abs);
  ++stats_.name_allocs;
  stats_.name_bytes_current += held;
  stats_.name_bytes_peak = std::max(stats_.name_bytes_peak, stats_.name_bytes_current);
}

void Kernel::ReleaseOpenName(Proc& p, OpenFile& file) {
  if (!file.name.has_value()) return;
  SyscallApi* sink = ApiFor(p.pid);
  if (sink != nullptr && config_.track_names) sink->ChargeCpu(costs_->kmem_free);
  const int64_t held = config_.name_storage == KernelConfig::NameStorage::kFixed
                           ? config_.fixed_name_bytes
                           : static_cast<int64_t>(file.name->size()) + 1;
  stats_.name_bytes_current -= held;
  file.name.reset();
}

void Kernel::TrackChdirName(Proc& p, std::string_view user_path) {
  if (!config_.track_names) return;
  SyscallApi* sink = ApiFor(p.pid);
  if (vfs::IsAbsolute(user_path)) {
    // "if the argument ... is an absolute path name, it is simply copied" (with
    // "." / ".." references resolved when path names are constructed).
    p.u_cwd_path = vfs::NormalizeAbsolute(user_path);
    if (sink != nullptr) {
      sink->ChargeCpu(static_cast<sim::Nanos>(user_path.size() + 1) *
                      costs_->name_copy_per_byte);
    }
    return;
  }
  // "the updating procedure being skipped if the field has not been yet
  // initialised" — initialisation happens via the first absolute chdir() at boot.
  if (p.u_cwd_path.empty()) return;
  p.u_cwd_path = vfs::Combine(p.u_cwd_path, user_path);
  if (sink != nullptr) {
    sink->ChargeCpu(costs_->name_combine);
    sink->ChargeCpu(static_cast<sim::Nanos>(p.u_cwd_path.size() + 1) *
                    costs_->name_copy_per_byte);
  }
  metrics_.Inc("vfs.name_bytes_copied", static_cast<int64_t>(p.u_cwd_path.size()) + 1);
}

// --- File syscalls ----------------------------------------------------------------

Result<int> Kernel::SysOpen(Proc& p, std::string_view path, int32_t flags, uint16_t mode) {
  SyscallApi* sink = ApiFor(p.pid);
  const int fd = p.FreeFdSlot();
  if (fd < 0) return Errno::kMFile;

  // "/dev/tty" names the controlling terminal of the caller.
  if (path == "/dev/tty") {
    if (p.controlling_tty == nullptr) return Errno::kNoDev;
    auto file = std::make_shared<OpenFile>();
    file->kind = FileKind::kInode;
    file->inode = tty_nodes_.at(p.controlling_tty);
    file->flags = flags;
    if (sink != nullptr) sink->ChargeCpu(costs_->file_table_slot);
    TrackOpenName(p, *file, path);
    InstallFd(p, fd, file);
    return fd;
  }

  vfs::InodePtr inode;
  if ((flags & OpenFlags::kOCreat) != 0) {
    PMIG_TRY(vfs::Vfs::ResolvedParent rp, vfs_->ResolveParent(p.cwd, path, sink));
    if (rp.existing != nullptr && !rp.existing->IsSymlink()) {
      if ((flags & OpenFlags::kOExcl) != 0) return Errno::kExist;
      inode = rp.existing;
    } else if (rp.existing != nullptr) {
      // Existing symlink: open its target (creating it if absent is not
      // supported; follow and require existence like 4.2BSD namei did).
      PMIG_TRY(vfs::Vfs::Resolved r, vfs_->Resolve(p.cwd, path, vfs::Follow::kAll, sink));
      inode = r.inode;
    } else {
      if (!vfs::CheckAccess(*rp.dir, p.creds.euid, vfs::kWantWrite)) return Errno::kAcces;
      PMIG_RETURN_IF_ERROR(vfs_->InjectedIoFault(*rp.dir, /*write=*/true));
      vfs::Filesystem* owner = rp.dir->fs;
      inode = owner->NewRegular(p.creds.euid, mode);
      PMIG_RETURN_IF_ERROR(owner->Link(rp.dir, rp.name, inode));
      if (sink != nullptr) sink->ChargeCpu(costs_->file_table_slot);
    }
  } else {
    PMIG_TRY(vfs::Vfs::Resolved r, vfs_->Resolve(p.cwd, path, vfs::Follow::kAll, sink));
    inode = r.inode;
  }

  auto file = std::make_shared<OpenFile>();
  file->kind = FileKind::kInode;
  file->inode = inode;
  file->flags = flags;

  if (inode->IsDir() && file->writable()) return Errno::kIsDir;
  if (file->readable() && !vfs::CheckAccess(*inode, p.creds.euid, vfs::kWantRead)) {
    return Errno::kAcces;
  }
  if (file->writable() && !vfs::CheckAccess(*inode, p.creds.euid, vfs::kWantWrite)) {
    return Errno::kAcces;
  }
  if ((flags & OpenFlags::kOTrunc) != 0 && inode->IsRegular() && file->writable()) {
    PMIG_RETURN_IF_ERROR(vfs_->Truncate(*inode, 0, sink));
  }
  if (sink != nullptr) {
    sink->ChargeCpu(costs_->file_table_slot);
    // Cold in-core inode fetch: a disk read locally, an NFS RPC remotely. (No
    // inode cache is modelled; every successful open pays.)
    sink->ChargeWait(vfs_->InodeIsRemote(*inode) ? costs_->nfs_rpc : costs_->inode_fetch);
  }
  TrackOpenName(p, *file, path);
  InstallFd(p, fd, std::move(file));
  return fd;
}

Result<int> Kernel::SysCreat(Proc& p, std::string_view path, uint16_t mode) {
  // "the creat() system call simply calls the same internal routine that open()
  // calls, with slightly different arguments" (Section 6.1).
  return SysOpen(p, path, OpenFlags::kOWrOnly | OpenFlags::kOCreat | OpenFlags::kOTrunc, mode);
}

Status Kernel::SysClose(Proc& p, int fd) {
  PMIG_TRY(OpenFilePtr file, FdGet(p, fd));
  p.fds[static_cast<size_t>(fd)] = nullptr;
  if (--file->refcount == 0) {
    ReleaseOpenName(p, *file);
    if (file->channel != nullptr) {
      if (file->write_end) {
        file->channel->write_open = false;
      } else {
        file->channel->read_open = false;
      }
    }
  }
  return Status::Ok();
}

Result<std::string> Kernel::SysRead(Proc& p, int fd, int64_t max) {
  PMIG_TRY(OpenFilePtr file, FdGet(p, fd));
  if (!file->readable()) return Errno::kBadF;
  SyscallApi* sink = ApiFor(p.pid);

  if (file->kind == FileKind::kPipe || file->kind == FileKind::kSocket) {
    Channel& ch = *file->channel;
    if (ch.buffer.empty()) {
      if (ch.write_open) return Errno::kAgain;  // caller blocks
      return std::string();                     // EOF
    }
    const int64_t n = std::min<int64_t>(max, static_cast<int64_t>(ch.buffer.size()));
    std::string out = ch.buffer.substr(0, static_cast<size_t>(n));
    ch.buffer.erase(0, static_cast<size_t>(n));
    if (sink != nullptr) sink->ChargeCpu(n * costs_->buffer_copy_per_byte);
    return out;
  }

  vfs::Inode& inode = *file->inode;
  if (inode.IsDir()) return Errno::kIsDir;
  if (inode.IsRegular()) {
    PMIG_RETURN_IF_ERROR(vfs_->InjectedIoFault(inode, /*write=*/false));
    std::string out;
    const int64_t n = vfs_->ReadAt(inode, file->offset, max, &out, sink);
    file->offset += n;
    return out;
  }
  if (IsNullDevice(inode)) return std::string();  // EOF
  if (Tty* tty = AsTty(inode); tty != nullptr) {
    if (!tty->InputReady()) return Errno::kAgain;  // caller blocks
    std::string out = tty->ConsumeInput(max);
    if (sink != nullptr) {
      sink->ChargeCpu(static_cast<sim::Nanos>(out.size()) * costs_->buffer_copy_per_byte);
    }
    return out;
  }
  return Errno::kIo;
}

Result<int64_t> Kernel::SysWrite(Proc& p, int fd, std::string_view data) {
  PMIG_TRY(OpenFilePtr file, FdGet(p, fd));
  if (!file->writable()) return Errno::kBadF;
  SyscallApi* sink = ApiFor(p.pid);

  if (file->kind == FileKind::kPipe || file->kind == FileKind::kSocket) {
    Channel& ch = *file->channel;
    if (!ch.read_open) {
      const Status st = PostSignal(p.pid, vm::abi::kSigPipe, &p);
      (void)st;
      return Errno::kPipe;
    }
    ch.buffer.append(data);
    if (sink != nullptr) {
      sink->ChargeCpu(static_cast<sim::Nanos>(data.size()) * costs_->buffer_copy_per_byte);
    }
    return static_cast<int64_t>(data.size());
  }

  vfs::Inode& inode = *file->inode;
  if (inode.IsDir()) return Errno::kIsDir;
  if (inode.IsRegular()) {
    PMIG_RETURN_IF_ERROR(vfs_->InjectedIoFault(inode, /*write=*/true));
    if ((file->flags & OpenFlags::kOAppend) != 0) file->offset = inode.size();
    const int64_t n = vfs_->WriteAt(inode, file->offset, data, sink);
    file->offset += n;
    return n;
  }
  if (IsNullDevice(inode)) return static_cast<int64_t>(data.size());
  if (Tty* tty = AsTty(inode); tty != nullptr) {
    tty->AppendOutput(data);
    if (sink != nullptr) {
      sink->ChargeCpu(static_cast<sim::Nanos>(data.size()) * costs_->buffer_copy_per_byte);
    }
    return static_cast<int64_t>(data.size());
  }
  return Errno::kIo;
}

Result<int64_t> Kernel::SysLseek(Proc& p, int fd, int64_t offset, int whence) {
  PMIG_TRY(OpenFilePtr file, FdGet(p, fd));
  if (file->kind != FileKind::kInode || !file->inode->IsRegular()) return Errno::kSPipe;
  int64_t base = 0;
  switch (whence) {
    case vm::abi::kSeekSet:
      base = 0;
      break;
    case vm::abi::kSeekCur:
      base = file->offset;
      break;
    case vm::abi::kSeekEnd:
      base = file->inode->size();
      break;
    default:
      return Errno::kInval;
  }
  const int64_t pos = base + offset;
  if (pos < 0) return Errno::kInval;
  file->offset = pos;
  return pos;
}

Result<int> Kernel::SysDup(Proc& p, int fd) {
  PMIG_TRY(OpenFilePtr file, FdGet(p, fd));
  const int nfd = p.FreeFdSlot();
  if (nfd < 0) return Errno::kMFile;
  SyscallApi* sink = ApiFor(p.pid);
  if (sink != nullptr) sink->ChargeCpu(costs_->file_table_slot);
  InstallFd(p, nfd, std::move(file));
  return nfd;
}

Result<std::pair<int, int>> Kernel::SysPipe(Proc& p) {
  auto channel = std::make_shared<Channel>();
  const int rfd = p.FreeFdSlot();
  if (rfd < 0) return Errno::kMFile;
  InstallFd(p, rfd, MakeChannelFile(channel, /*write_end=*/false, FileKind::kPipe));
  const int wfd = p.FreeFdSlot();
  if (wfd < 0) {
    const Status st = SysClose(p, rfd);
    (void)st;
    return Errno::kMFile;
  }
  InstallFd(p, wfd, MakeChannelFile(channel, /*write_end=*/true, FileKind::kPipe));
  SyscallApi* sink = ApiFor(p.pid);
  if (sink != nullptr) sink->ChargeCpu(2 * costs_->file_table_slot);
  return std::make_pair(rfd, wfd);
}

Result<std::pair<int, int>> Kernel::SysSocket(Proc& p) {
  // A connected local socket pair — just enough for a process to *have* sockets in
  // its open-file table, which is what the migration limitation is about.
  auto channel = std::make_shared<Channel>();
  const int afd = p.FreeFdSlot();
  if (afd < 0) return Errno::kMFile;
  InstallFd(p, afd, MakeChannelFile(channel, /*write_end=*/false, FileKind::kSocket));
  const int bfd = p.FreeFdSlot();
  if (bfd < 0) {
    const Status st = SysClose(p, afd);
    (void)st;
    return Errno::kMFile;
  }
  InstallFd(p, bfd, MakeChannelFile(channel, /*write_end=*/true, FileKind::kSocket));
  SyscallApi* sink = ApiFor(p.pid);
  if (sink != nullptr) sink->ChargeCpu(2 * costs_->file_table_slot);
  return std::make_pair(afd, bfd);
}

// --- Directory / name syscalls ---------------------------------------------------

Status Kernel::SysChdir(Proc& p, std::string_view path) {
  SyscallApi* sink = ApiFor(p.pid);
  PMIG_TRY(vfs::Vfs::Resolved r, vfs_->Resolve(p.cwd, path, vfs::Follow::kAll, sink));
  if (!r.inode->IsDir()) return Errno::kNotDir;
  if (!vfs::CheckAccess(*r.inode, p.creds.euid, vfs::kWantExec)) return Errno::kAcces;
  p.cwd = r.state;
  TrackChdirName(p, path);
  return Status::Ok();
}

Result<std::string> Kernel::SysGetCwd(Proc& p) {
  // Only the modified kernel can answer this directly (Section 5.1); the stock
  // kernel's getwd() was a user-level library crawl we do not model.
  if (!config_.track_names) return Errno::kInval;
  SyscallApi* sink = ApiFor(p.pid);
  if (sink != nullptr) {
    sink->ChargeCpu(static_cast<sim::Nanos>(p.u_cwd_path.size() + 1) *
                    costs_->buffer_copy_per_byte);
  }
  return p.u_cwd_path.empty() ? std::string("/") : p.u_cwd_path;
}

Result<std::string> Kernel::SysReadlink(Proc& p, std::string_view path) {
  return vfs_->Readlink(p.cwd, path, ApiFor(p.pid));
}

Result<StatInfo> Kernel::SysStat(Proc& p, std::string_view path, bool follow) {
  PMIG_TRY(vfs::Vfs::Resolved r,
           vfs_->Resolve(p.cwd, path, follow ? vfs::Follow::kAll : vfs::Follow::kNotLast,
                         ApiFor(p.pid)));
  StatInfo info;
  info.type = r.inode->type;
  info.ino = r.inode->ino;
  info.uid = r.inode->uid;
  info.mode = r.inode->mode;
  info.size = r.inode->size();
  info.is_tty = AsTty(*r.inode) != nullptr;
  info.remote = vfs_->InodeIsRemote(*r.inode);
  return info;
}

Result<std::vector<std::string>> Kernel::SysReadDir(Proc& p,
                                                    std::string_view path) {
  SyscallApi* sink = ApiFor(p.pid);
  PMIG_TRY(vfs::Vfs::Resolved r,
           vfs_->Resolve(p.cwd, path, vfs::Follow::kAll, sink));
  if (!r.inode->IsDir()) return Errno::kNotDir;
  if (!vfs::CheckAccess(*r.inode, p.creds.euid, vfs::kWantRead)) {
    return Errno::kAcces;
  }
  std::vector<std::string> names;
  names.reserve(r.inode->entries.size());
  size_t bytes = 0;
  for (const auto& [name, child] : r.inode->entries) {
    names.push_back(name);
    bytes += name.size() + 1;
  }
  if (sink != nullptr) {
    sink->ChargeCpu(static_cast<sim::Nanos>(bytes) * costs_->buffer_copy_per_byte);
  }
  return names;
}

Status Kernel::SysUnlink(Proc& p, std::string_view path) {
  SyscallApi* sink = ApiFor(p.pid);
  PMIG_TRY(vfs::Vfs::ResolvedParent rp, vfs_->ResolveParent(p.cwd, path, sink));
  if (rp.existing == nullptr) return Errno::kNoEnt;
  if (rp.existing->IsDir()) return Errno::kIsDir;  // directories go through rmdir()
  if (!vfs::CheckAccess(*rp.dir, p.creds.euid, vfs::kWantWrite)) return Errno::kAcces;
  if (sink != nullptr) sink->ChargeCpu(costs_->file_table_slot);
  return rp.dir->fs->Unlink(rp.dir, rp.name);
}

Status Kernel::SysLink(Proc& p, std::string_view oldpath, std::string_view newpath) {
  SyscallApi* sink = ApiFor(p.pid);
  PMIG_TRY(vfs::Vfs::Resolved old, vfs_->Resolve(p.cwd, oldpath, vfs::Follow::kAll, sink));
  if (old.inode->IsDir()) return Errno::kIsDir;
  PMIG_TRY(vfs::Vfs::ResolvedParent rp, vfs_->ResolveParent(p.cwd, newpath, sink));
  if (rp.existing != nullptr) return Errno::kExist;
  if (!vfs::CheckAccess(*rp.dir, p.creds.euid, vfs::kWantWrite)) return Errno::kAcces;
  if (old.inode->fs != rp.dir->fs) return Errno::kXDev;  // NFS: no cross-machine links
  if (sink != nullptr) sink->ChargeCpu(costs_->file_table_slot);
  return rp.dir->fs->Link(rp.dir, rp.name, old.inode);
}

Status Kernel::SysMkdir(Proc& p, std::string_view path, uint16_t mode) {
  SyscallApi* sink = ApiFor(p.pid);
  PMIG_TRY(vfs::Vfs::ResolvedParent rp, vfs_->ResolveParent(p.cwd, path, sink));
  if (rp.existing != nullptr) return Errno::kExist;
  if (!vfs::CheckAccess(*rp.dir, p.creds.euid, vfs::kWantWrite)) return Errno::kAcces;
  vfs::Filesystem* owner = rp.dir->fs;
  vfs::InodePtr dir = owner->NewDirectory(p.creds.euid, mode);
  if (sink != nullptr) sink->ChargeCpu(costs_->file_table_slot);
  return owner->Link(rp.dir, rp.name, dir);
}

Status Kernel::SysRmdir(Proc& p, std::string_view path) {
  SyscallApi* sink = ApiFor(p.pid);
  PMIG_TRY(vfs::Vfs::ResolvedParent rp, vfs_->ResolveParent(p.cwd, path, sink));
  if (rp.existing == nullptr) return Errno::kNoEnt;
  // Mount points must be tested on the covering (local) inode — `existing` has
  // already been substituted with the mounted-on root.
  if (auto raw = rp.dir->entries.find(rp.name);
      raw != rp.dir->entries.end() && vfs_->IsMountPoint(*raw->second)) {
    return Errno::kPerm;
  }
  if (!rp.existing->IsDir()) return Errno::kNotDir;
  if (!rp.existing->entries.empty()) return Errno::kExist;  // 4.3BSD: ENOTEMPTY≈EEXIST
  if (!vfs::CheckAccess(*rp.dir, p.creds.euid, vfs::kWantWrite)) return Errno::kAcces;
  if (sink != nullptr) sink->ChargeCpu(costs_->file_table_slot);
  return rp.dir->fs->Unlink(rp.dir, rp.name);
}

Status Kernel::SysRename(Proc& p, std::string_view oldpath, std::string_view newpath) {
  SyscallApi* sink = ApiFor(p.pid);
  PMIG_TRY(vfs::Vfs::ResolvedParent from, vfs_->ResolveParent(p.cwd, oldpath, sink));
  if (from.existing == nullptr) return Errno::kNoEnt;
  PMIG_TRY(vfs::Vfs::ResolvedParent to, vfs_->ResolveParent(p.cwd, newpath, sink));
  if (!vfs::CheckAccess(*from.dir, p.creds.euid, vfs::kWantWrite)) return Errno::kAcces;
  if (!vfs::CheckAccess(*to.dir, p.creds.euid, vfs::kWantWrite)) return Errno::kAcces;
  if (from.dir->fs != to.dir->fs) return Errno::kXDev;
  if (to.existing == from.existing) return Status::Ok();
  if (to.existing != nullptr) {
    // Replace: the target must be removable (directories only over empty dirs).
    if (to.existing->IsDir() && !from.existing->IsDir()) return Errno::kIsDir;
    if (!to.existing->IsDir() && from.existing->IsDir()) return Errno::kNotDir;
    if (to.existing->IsDir() && !to.existing->entries.empty()) return Errno::kExist;
    PMIG_RETURN_IF_ERROR(to.dir->fs->Unlink(to.dir, to.name));
  }
  PMIG_RETURN_IF_ERROR(to.dir->fs->Link(to.dir, to.name, from.existing));
  if (sink != nullptr) sink->ChargeCpu(2 * costs_->file_table_slot);
  return from.dir->fs->Unlink(from.dir, from.name);
}

// --- Process syscalls ------------------------------------------------------------

Status Kernel::SysKill(Proc& p, int32_t pid, int signo) {
  Proc* target = FindProc(pid);
  if (target == nullptr || !target->Alive()) return Errno::kSrch;
  // "only the superuser or the owner of the process" may signal it.
  if (!p.creds.IsSuperuser() && p.creds.uid != target->creds.uid &&
      p.creds.euid != target->creds.uid) {
    return Errno::kPerm;
  }
  SyscallApi* sink = ApiFor(p.pid);
  if (sink != nullptr) sink->ChargeCpu(costs_->signal_post);
  return PostSignal(pid, signo, &p);
}

Status Kernel::SysSetDumpMode(Proc& p, int32_t pid, bool incremental) {
  Proc* target = FindProc(pid);
  if (target == nullptr || !target->Alive()) return Errno::kSrch;
  // Same rule as kill(): only the superuser or the owner may change dump mode.
  if (!p.creds.IsSuperuser() && p.creds.uid != target->creds.uid &&
      p.creds.euid != target->creds.uid) {
    return Errno::kPerm;
  }
  if (incremental) {
    // An incremental dump needs the dirty bitmaps armed at exec time.
    if (target->kind != ProcKind::kVm || target->vm == nullptr ||
        !target->vm->dirty.armed) {
      return Errno::kNoExec;
    }
  }
  target->dump_incremental = incremental;
  return Status::Ok();
}

Result<bool> Kernel::SysDumpFailed(Proc& p, int32_t pid) {
  Proc* target = FindProc(pid);
  if (target == nullptr || !target->Alive()) return Errno::kSrch;
  // Same visibility rule as setdumpmode(): superuser or owner only.
  if (!p.creds.IsSuperuser() && p.creds.uid != target->creds.uid &&
      p.creds.euid != target->creds.uid) {
    return Errno::kPerm;
  }
  return target->dump_failed;
}

Status Kernel::SysSetReUid(Proc& p, int32_t ruid, int32_t euid) {
  if (!p.creds.IsSuperuser()) {
    const bool ruid_ok = ruid == -1 || ruid == p.creds.uid || ruid == p.creds.euid;
    const bool euid_ok = euid == -1 || euid == p.creds.uid || euid == p.creds.euid;
    if (!ruid_ok || !euid_ok) return Errno::kPerm;
  }
  if (ruid != -1) p.creds.uid = ruid;
  if (euid != -1) p.creds.euid = euid;
  return Status::Ok();
}

Status Kernel::SysSignal(Proc& p, int signo, SignalDisposition disposition) {
  if (signo <= 0 || signo >= vm::abi::kNSig) return Errno::kInval;
  if (signo == vm::abi::kSigKill || signo == vm::abi::kSigDump) return Errno::kInval;
  p.sig_dispositions[static_cast<size_t>(signo)] = disposition;
  return Status::Ok();
}

Result<uint16_t> Kernel::SysTtyGet(Proc& p, int fd) {
  PMIG_TRY(OpenFilePtr file, FdGet(p, fd));
  if (file->kind != FileKind::kInode) return Errno::kNoTty;
  Tty* tty = AsTty(*file->inode);
  if (tty == nullptr) return Errno::kNoTty;
  SyscallApi* sink = ApiFor(p.pid);
  if (sink != nullptr) sink->ChargeCpu(costs_->tty_ioctl);
  return tty->flags();
}

Status Kernel::SysTtySet(Proc& p, int fd, uint16_t flags) {
  PMIG_TRY(OpenFilePtr file, FdGet(p, fd));
  if (file->kind != FileKind::kInode) return Errno::kNoTty;
  Tty* tty = AsTty(*file->inode);
  if (tty == nullptr) return Errno::kNoTty;
  SyscallApi* sink = ApiFor(p.pid);
  if (sink != nullptr) sink->ChargeCpu(costs_->tty_ioctl);
  tty->set_flags(flags);
  return Status::Ok();
}

Result<int32_t> Kernel::SysFork(Proc& p) {
  if (p.kind != ProcKind::kVm) return Errno::kInval;  // tools spawn, they don't fork
  SpawnOptions opts;
  opts.creds = p.creds;
  opts.tty = p.controlling_tty;
  opts.ppid = p.pid;
  opts.stdio_on_tty = false;  // fds are copied from the parent below
  Proc& child = NewProc(p.command, ProcKind::kVm, opts);
  child.cwd = p.cwd;
  child.u_cwd_path = p.u_cwd_path;
  child.sig_dispositions = p.sig_dispositions;
  for (int fd = 0; fd < kNoFile; ++fd) {
    OpenFilePtr file = p.fds[static_cast<size_t>(fd)];
    if (file != nullptr) InstallFd(child, fd, file);
  }
  child.vm = std::make_unique<vm::VmContext>(*p.vm);
  child.vm->cpu.regs[0] = 0;  // fork() returns 0 in the child

  SyscallApi* sink = ApiFor(p.pid);
  if (sink != nullptr) {
    sink->ChargeCpu(costs_->fork_overhead);
    sink->ChargeCpu(static_cast<sim::Nanos>(p.vm->data.size() + p.vm->StackSize()) *
                    costs_->buffer_copy_per_byte);
  }
  return child.pid;
}

Status Kernel::SysExecve(Proc& p, std::string_view path, const std::vector<std::string>& args) {
  if (p.kind != ProcKind::kVm) return Errno::kInval;
  SyscallApi* sink = ApiFor(p.pid);
  const sim::Nanos cpu0 = p.stime + p.utime;
  const sim::Nanos wait0 = p.pending_wait;

  PMIG_TRY(vfs::Vfs::Resolved r, vfs_->Resolve(p.cwd, path, vfs::Follow::kAll, sink));
  if (!r.inode->IsRegular()) return Errno::kAcces;
  if (!vfs::CheckAccess(*r.inode, p.creds.euid, vfs::kWantRead)) return Errno::kAcces;
  // exec() demand-pages the image: only the header + first pages are read
  // synchronously; the rest faults in as the program runs (not modelled as cost).
  std::string bytes;
  vfs_->ReadAt(*r.inode, 0, r.inode->size(), &bytes, nullptr);
  if (sink != nullptr) {
    const int64_t prefetch = std::min<int64_t>(r.inode->size(), costs_->exec_prefetch_bytes);
    const auto io = vfs_->InodeIsRemote(*r.inode) ? costs_->NetIo(prefetch)
                                                  : costs_->DiskIo(prefetch);
    sink->ChargeCpu(io.cpu);
    sink->ChargeWait(io.wait + (vfs_->InodeIsRemote(*r.inode) ? costs_->nfs_rpc
                                                              : costs_->inode_fetch));
  }
  PMIG_TRY(vm::AoutImage image,
           vm::AoutImage::Parse(std::vector<uint8_t>(bytes.begin(), bytes.end())));
  PMIG_RETURN_IF_ERROR(OverlayVmImage(p, image, args));
  p.command = vfs::Basename(path);

  timers_.execve.cpu = (p.stime + p.utime) - cpu0;
  timers_.execve.real = timers_.execve.cpu + (p.pending_wait - wait0);
  timers_.execve.valid = true;
  Trace(sim::TraceCategory::kSyscall, p.pid, "execve " + std::string(path));
  return Status::Ok();
}

Status Kernel::SysRestProc(Proc& p, std::string_view aout_path, std::string_view stack_path) {
  if (!hooks_.rest_proc) return Errno::kInval;
  const sim::Nanos cpu0 = p.stime + p.utime;
  const sim::Nanos wait0 = p.pending_wait;
  const Status st = hooks_.rest_proc(*this, p, std::string(aout_path), std::string(stack_path));
  if (st.ok()) {
    timers_.rest_proc.cpu = (p.stime + p.utime) - cpu0;
    timers_.rest_proc.real = timers_.rest_proc.cpu + (p.pending_wait - wait0);
    timers_.rest_proc.valid = true;
    metrics_.Inc("migration.restarts");
    metrics_.Observe("migration.restart_ns", timers_.rest_proc.real);
    if (health_monitor_ != nullptr && health_monitor_->enabled()) {
      health_monitor_->Observe(hostname_, "migration.restart_ns",
                               static_cast<double>(timers_.rest_proc.real));
    }
    Trace(sim::TraceCategory::kMigration, p.pid,
          "rest_proc restored image from " + std::string(aout_path));
    // Let the I/O wait of reading the dump files elapse before the restored
    // program runs.
    SettlePendingWait(p);
  }
  return st;
}

// --- Wait / reaping ---------------------------------------------------------------

Result<WaitResult> Kernel::TryWait(Proc& p) {
  bool any_child = false;
  for (auto& q : procs_) {
    if (q->ppid != p.pid || q->state == ProcState::kDead) continue;
    if (q->state == ProcState::kZombie) {
      q->state = ProcState::kDead;
      WaitResult wr;
      wr.pid = q->pid;
      wr.info = q->exit_info;
      return wr;
    }
    if (q->overlaid) {
      // rest_proc() overlaid this child; for the waiting parent it "completed".
      q->ppid = 0;
      q->overlaid = false;
      WaitResult wr;
      wr.pid = q->pid;
      wr.overlaid = true;
      return wr;
    }
    any_child = true;
  }
  if (!any_child) return Errno::kChild;
  return Errno::kAgain;
}

std::function<bool()> Kernel::MakeReadCheck(Proc& p, int fd) {
  auto file_or = FdGet(p, fd);
  if (!file_or.ok()) {
    return [] { return true; };
  }
  OpenFilePtr file = *file_or;
  if (file->kind == FileKind::kPipe || file->kind == FileKind::kSocket) {
    std::shared_ptr<Channel> ch = file->channel;
    return [ch] { return !ch->buffer.empty() || !ch->write_open; };
  }
  if (file->kind == FileKind::kInode) {
    if (Tty* tty = AsTty(*file->inode); tty != nullptr) {
      return [tty] { return tty->InputReady(); };
    }
  }
  return [] { return true; };
}

// --- VM trap dispatch --------------------------------------------------------------

void Kernel::RunVmProc(Proc& p) {
  while (p.state == ProcState::kRunnable && quantum_left_ > 0) {
    // Deliver pending caught signals to the user handler: push the resume pc and
    // jump. The handler returns with RET.
    if (p.sig_pending != 0) {
      for (int signo = 1; signo < vm::abi::kNSig; ++signo) {
        const uint64_t bit = uint64_t{1} << signo;
        if ((p.sig_pending & bit) == 0) continue;
        const SignalDisposition& d = p.sig_dispositions[static_cast<size_t>(signo)];
        if (d.action != SignalDisposition::Action::kCatch) continue;
        p.sig_pending &= ~bit;
        vm::CpuState& cpu = p.vm->cpu;
        if (cpu.sp < vm::kStackBase + 8) {
          VmFault(p, vm::Fault::kStackOverflow);
          return;
        }
        cpu.sp -= 8;
        if (!p.vm->WriteU64(cpu.sp, cpu.pc)) {
          VmFault(p, vm::Fault::kBadAddress);
          return;
        }
        cpu.pc = d.handler;
        ChargeCpu(p, costs_->signal_post);
      }
    }
    const int64_t steps = quantum_left_ / costs_->instruction;
    if (steps <= 0) break;
    vm::Cpu cpu(config_.isa);
    const vm::StopReason reason = cpu.Run(*p.vm, steps);
    const sim::Nanos used = cpu.steps_executed() * costs_->instruction;
    p.utime += used;
    quantum_left_ -= used;
    instructions_metric_.Inc(cpu.steps_executed());
    if (reason == vm::StopReason::kSyscall) {
      ++stats_.syscalls;
      if (metrics_.enabled()) {
        metrics_.Inc("kernel.syscall." + std::to_string(cpu.last_syscall()));
      }
      ChargeCpu(p, costs_->syscall_entry);
      if (!DispatchVmSyscall(p, cpu.last_syscall())) break;
    } else if (reason == vm::StopReason::kFault) {
      VmFault(p, cpu.last_fault());
      break;
    }
  }
}

bool Kernel::DispatchVmSyscall(Proc& p, int32_t number) {
  vm::VmContext& ctx = *p.vm;
  int64_t* r = ctx.cpu.regs;
  SyscallApi* sink = ApiFor(p.pid);

  auto ret = [&](int64_t v) { r[0] = v; };
  auto fail = [&](Errno e) { r[0] = -static_cast<int64_t>(e); };
  auto ret_or_fail = [&](const auto& result) {
    if (result.ok()) {
      ret(static_cast<int64_t>(*result));
    } else {
      fail(result.error());
    }
  };
  // Reads a NUL-terminated path argument; charges the copyin.
  auto read_str = [&](int64_t addr, std::string* out) {
    if (!ctx.ReadCString(static_cast<uint32_t>(addr), 1024, out)) return false;
    if (sink != nullptr) {
      sink->ChargeCpu(static_cast<sim::Nanos>(out->size() + 1) * costs_->buffer_copy_per_byte);
    }
    return true;
  };
  // Rewinds the pc onto the SYS instruction and blocks (restartable syscall).
  auto block_on = [&](std::function<bool()> check) {
    ctx.cpu.pc -= vm::kInstrBytes;
    BlockProc(p, std::move(check));
  };
  // Epilogue: convert accumulated I/O waits to sleep; tell the run loop whether to
  // keep executing this process.
  auto epilogue = [&]() {
    if (SettlePendingWait(p)) return false;
    return p.state == ProcState::kRunnable;
  };

  switch (number) {
    case Sys::kSysExit: {
      ExitInfo info;
      info.exit_code = static_cast<int>(r[0]);
      TerminateProc(p, info);
      return false;
    }
    case Sys::kSysFork:
      ret_or_fail(SysFork(p));
      return epilogue();
    case Sys::kSysRead: {
      const int fd = static_cast<int>(r[0]);
      const Result<std::string> out = SysRead(p, fd, r[2]);
      if (out.error() == Errno::kAgain) {
        block_on(MakeReadCheck(p, fd));
        return false;
      }
      if (!out.ok()) {
        fail(out.error());
        return epilogue();
      }
      if (!ctx.WriteBytes(static_cast<uint32_t>(r[1]), static_cast<uint32_t>(out->size()),
                          reinterpret_cast<const uint8_t*>(out->data()))) {
        fail(Errno::kFault);
        return epilogue();
      }
      ret(static_cast<int64_t>(out->size()));
      return epilogue();
    }
    case Sys::kSysWrite: {
      std::string data;
      data.resize(static_cast<size_t>(std::max<int64_t>(r[2], 0)));
      if (!ctx.ReadBytes(static_cast<uint32_t>(r[1]), static_cast<uint32_t>(data.size()),
                         reinterpret_cast<uint8_t*>(data.data()))) {
        fail(Errno::kFault);
        return epilogue();
      }
      ret_or_fail(SysWrite(p, static_cast<int>(r[0]), data));
      return epilogue();
    }
    case Sys::kSysOpen: {
      std::string path;
      if (!read_str(r[0], &path)) {
        fail(Errno::kFault);
        return epilogue();
      }
      ret_or_fail(SysOpen(p, path, static_cast<int32_t>(r[1]), static_cast<uint16_t>(r[2])));
      return epilogue();
    }
    case Sys::kSysCreat: {
      std::string path;
      if (!read_str(r[0], &path)) {
        fail(Errno::kFault);
        return epilogue();
      }
      ret_or_fail(SysCreat(p, path, static_cast<uint16_t>(r[1])));
      return epilogue();
    }
    case Sys::kSysClose: {
      const Status st = SysClose(p, static_cast<int>(r[0]));
      st.ok() ? ret(0) : fail(st.error());
      return epilogue();
    }
    case Sys::kSysWait: {
      const Result<WaitResult> wr = TryWait(p);
      if (wr.error() == Errno::kAgain) {
        const int32_t pid = p.pid;
        block_on([this, pid] { return WaitReady(pid); });
        return false;
      }
      if (!wr.ok()) {
        fail(wr.error());
        return epilogue();
      }
      ret(wr->pid);
      r[1] = wr->overlaid ? 0
                          : (wr->info.exit_code | (wr->info.killed_by_signal << 8) |
                             (wr->info.core_dumped ? 1 << 16 : 0));
      return epilogue();
    }
    case Sys::kSysLink: {
      std::string oldp, newp;
      if (!read_str(r[0], &oldp) || !read_str(r[1], &newp)) {
        fail(Errno::kFault);
        return epilogue();
      }
      const Status st = SysLink(p, oldp, newp);
      st.ok() ? ret(0) : fail(st.error());
      return epilogue();
    }
    case Sys::kSysUnlink: {
      std::string path;
      if (!read_str(r[0], &path)) {
        fail(Errno::kFault);
        return epilogue();
      }
      const Status st = SysUnlink(p, path);
      st.ok() ? ret(0) : fail(st.error());
      return epilogue();
    }
    case Sys::kSysMkdir: {
      std::string path;
      if (!read_str(r[0], &path)) {
        fail(Errno::kFault);
        return epilogue();
      }
      const Status st = SysMkdir(p, path, static_cast<uint16_t>(r[1]));
      st.ok() ? ret(0) : fail(st.error());
      return epilogue();
    }
    case Sys::kSysRmdir: {
      std::string path;
      if (!read_str(r[0], &path)) {
        fail(Errno::kFault);
        return epilogue();
      }
      const Status st = SysRmdir(p, path);
      st.ok() ? ret(0) : fail(st.error());
      return epilogue();
    }
    case Sys::kSysRename: {
      std::string from, to;
      if (!read_str(r[0], &from) || !read_str(r[1], &to)) {
        fail(Errno::kFault);
        return epilogue();
      }
      const Status st = SysRename(p, from, to);
      st.ok() ? ret(0) : fail(st.error());
      return epilogue();
    }
    case Sys::kSysStat: {
      std::string path;
      if (!read_str(r[0], &path)) {
        fail(Errno::kFault);
        return epilogue();
      }
      const Result<StatInfo> info = SysStat(p, path, /*follow=*/true);
      if (!info.ok()) {
        fail(info.error());
        return epilogue();
      }
      const uint32_t buf = static_cast<uint32_t>(r[1]);
      if (!ctx.WriteU64(buf, static_cast<int64_t>(info->type)) ||
          !ctx.WriteU64(buf + 8, info->size) || !ctx.WriteU64(buf + 16, info->uid) ||
          !ctx.WriteU64(buf + 24, info->mode)) {
        fail(Errno::kFault);
        return epilogue();
      }
      ret(0);
      return epilogue();
    }
    case Sys::kSysChdir: {
      std::string path;
      if (!read_str(r[0], &path)) {
        fail(Errno::kFault);
        return epilogue();
      }
      const Status st = SysChdir(p, path);
      st.ok() ? ret(0) : fail(st.error());
      return epilogue();
    }
    case Sys::kSysTime:
      ret(clock_->now() / sim::kSecond);
      return epilogue();
    case Sys::kSysBrk: {
      // sbrk(): grow or shrink the data segment. The dump formats carry the whole
      // (possibly grown) segment, so heap state migrates like everything else.
      constexpr int64_t kMaxData = 1 << 20;  // the segment's 1 MB window
      const int64_t old_size = static_cast<int64_t>(ctx.data.size());
      const int64_t new_size = old_size + r[0];
      if (new_size < 0 || new_size > kMaxData) {
        fail(Errno::kNoMem);
        return epilogue();
      }
      ctx.data.resize(static_cast<size_t>(new_size), 0);
      ctx.NoteDataResize(static_cast<size_t>(old_size), static_cast<size_t>(new_size));
      if (sink != nullptr && r[0] > 0) {
        sink->ChargeCpu(r[0] * 50);  // page zeroing
      }
      ret(vm::kDataBase + old_size);
      return epilogue();
    }
    case Sys::kSysLseek:
      ret_or_fail(SysLseek(p, static_cast<int>(r[0]), r[1], static_cast<int>(r[2])));
      return epilogue();
    case Sys::kSysGetPid:
      if (config_.virtualize_identity && p.migrated) {
        ret(p.old_pid);
      } else {
        ret(p.pid);
      }
      return epilogue();
    case Sys::kSysGetPidReal:
      ret(p.pid);
      return epilogue();
    case Sys::kSysGetPpid:
      ret(p.ppid);
      return epilogue();
    case Sys::kSysGetUid:
      ret(p.creds.uid);
      return epilogue();
    case Sys::kSysKill: {
      const Status st = SysKill(p, static_cast<int32_t>(r[0]), static_cast<int>(r[1]));
      st.ok() ? ret(0) : fail(st.error());
      return epilogue();
    }
    case Sys::kSysDup:
      ret_or_fail(SysDup(p, static_cast<int>(r[0])));
      return epilogue();
    case Sys::kSysPipe: {
      const auto fds = SysPipe(p);
      if (!fds.ok()) {
        fail(fds.error());
      } else {
        r[0] = fds->first;
        r[1] = fds->second;
      }
      return epilogue();
    }
    case Sys::kSysSocket: {
      const auto fds = SysSocket(p);
      if (!fds.ok()) {
        fail(fds.error());
      } else {
        r[0] = fds->first;
        r[1] = fds->second;
      }
      return epilogue();
    }
    case Sys::kSysSignal: {
      SignalDisposition d;
      if (r[1] == vm::abi::kSigDfl) {
        d.action = SignalDisposition::Action::kDefault;
      } else if (r[1] == vm::abi::kSigIgn) {
        d.action = SignalDisposition::Action::kIgnore;
      } else {
        d.action = SignalDisposition::Action::kCatch;
        d.handler = static_cast<uint32_t>(r[1]);
      }
      const Status st = SysSignal(p, static_cast<int>(r[0]), d);
      st.ok() ? ret(0) : fail(st.error());
      return epilogue();
    }
    case Sys::kSysIoctl: {
      const int fd = static_cast<int>(r[0]);
      if (r[1] == vm::abi::kTiocGetP) {
        const Result<uint16_t> flags = SysTtyGet(p, fd);
        if (!flags.ok()) {
          fail(flags.error());
        } else if (!ctx.WriteU16(static_cast<uint32_t>(r[2]), *flags)) {
          fail(Errno::kFault);
        } else {
          ret(0);
        }
      } else if (r[1] == vm::abi::kTiocSetP) {
        uint16_t flags;
        if (!ctx.ReadU16(static_cast<uint32_t>(r[2]), &flags)) {
          fail(Errno::kFault);
        } else {
          const Status st = SysTtySet(p, fd, flags);
          st.ok() ? ret(0) : fail(st.error());
        }
      } else {
        fail(Errno::kInval);
      }
      return epilogue();
    }
    case Sys::kSysReadlink: {
      std::string path;
      if (!read_str(r[0], &path)) {
        fail(Errno::kFault);
        return epilogue();
      }
      const Result<std::string> target = SysReadlink(p, path);
      if (!target.ok()) {
        fail(target.error());
        return epilogue();
      }
      const int64_t n = std::min<int64_t>(static_cast<int64_t>(target->size()), r[2]);
      if (!ctx.WriteBytes(static_cast<uint32_t>(r[1]), static_cast<uint32_t>(n),
                          reinterpret_cast<const uint8_t*>(target->data()))) {
        fail(Errno::kFault);
        return epilogue();
      }
      ret(n);
      return epilogue();
    }
    case Sys::kSysExecve: {
      std::string path;
      if (!read_str(r[0], &path)) {
        fail(Errno::kFault);
        return epilogue();
      }
      const Status st = SysExecve(p, path, {});
      if (!st.ok()) {
        fail(st.error());
        return epilogue();
      }
      // Registers belong to the new image now; do not touch r0.
      return epilogue();
    }
    case Sys::kSysGetHostname:
    case Sys::kSysGetHostnameReal: {
      const std::string& name = (number == Sys::kSysGetHostname &&
                                 config_.virtualize_identity && p.migrated)
                                    ? p.old_host
                                    : hostname_;
      const int64_t cap = r[1];
      if (static_cast<int64_t>(name.size()) + 1 > cap ||
          !ctx.WriteCString(static_cast<uint32_t>(r[0]), name)) {
        fail(Errno::kFault);
      } else {
        ret(0);
      }
      return epilogue();
    }
    case Sys::kSysSetReUid: {
      const Status st =
          SysSetReUid(p, static_cast<int32_t>(r[0]), static_cast<int32_t>(r[1]));
      st.ok() ? ret(0) : fail(st.error());
      return epilogue();
    }
    case Sys::kSysGetCwd: {
      const Result<std::string> cwd = SysGetCwd(p);
      if (!cwd.ok()) {
        fail(cwd.error());
        return epilogue();
      }
      if (static_cast<int64_t>(cwd->size()) + 1 > r[1] ||
          !ctx.WriteCString(static_cast<uint32_t>(r[0]), *cwd)) {
        fail(Errno::kFault);
        return epilogue();
      }
      ret(0);
      return epilogue();
    }
    case Sys::kSysSleep: {
      ret(0);
      SleepProc(p, r[0] * sim::kSecond);
      return false;
    }
    case Sys::kSysRestProc: {
      std::string aout, stack;
      if (!read_str(r[0], &aout) || !read_str(r[1], &stack)) {
        fail(Errno::kFault);
        return epilogue();
      }
      const Status st = SysRestProc(p, aout, stack);
      if (!st.ok()) {
        fail(st.error());
        return epilogue();
      }
      // The process is now the restored program; its registers are the dumped
      // ones. It may have been put to sleep to cover the dump-file I/O.
      return p.state == ProcState::kRunnable;
    }
    default:
      fail(Errno::kInval);
      return epilogue();
  }
}

// --- SyscallApi (native processes) -------------------------------------------------

Proc& SyscallApi::proc() {
  Proc* p = kernel_->FindProc(pid_);
  assert(p != nullptr && "syscall from a dead process");
  return *p;
}

void SyscallApi::ChargeCpu(sim::Nanos amount) { kernel_->ChargeCpu(proc(), amount); }
void SyscallApi::ChargeWait(sim::Nanos amount) { kernel_->ChargeWait(proc(), amount); }

sim::Nanos SyscallApi::Now() const { return kernel_->clock().now(); }

void SyscallApi::EnterSyscall() {
  Proc& p = proc();
  ++kernel_->stats_.syscalls;
  kernel_->native_syscall_metric_.Inc();
  kernel_->ChargeCpu(p, kernel_->costs_->syscall_entry);
  kernel_->ChargeUser(p, kernel_->costs_->native_user_work);
  YieldIfPreempted();
}

void SyscallApi::YieldIfPreempted() {
  Proc& p = proc();
  if (kernel_->quantum_left_ <= 0 && p.native != nullptr) {
    p.native->Yield();  // stays runnable; rescheduled next quantum
  }
}

void SyscallApi::FinishSyscall() {
  Proc& p = proc();
  if (kernel_->SettlePendingWait(p) && p.native != nullptr) {
    p.native->Yield();
  }
}

void SyscallApi::BlockUntil(std::function<bool()> check) {
  Proc& p = proc();
  while (!check()) {
    kernel_->BlockProc(p, check);
    p.native->Yield();
  }
}

bool SyscallApi::BlockUntilFor(std::function<bool()> check, sim::Nanos timeout) {
  if (timeout <= 0) {
    BlockUntil(std::move(check));
    return true;
  }
  Proc& p = proc();
  sim::VirtualClock& clock = kernel_->clock();
  const sim::Nanos deadline = clock.now() + timeout;
  auto expired = [&clock, deadline] { return clock.now() >= deadline; };
  while (!check() && !expired()) {
    // A wake-up timer so the blocked-proc poll runs when the deadline passes
    // even if nothing else is happening. CancelTimer must not run after the
    // timer fired (it would corrupt the clock's live-timer count), hence the
    // shared flag; a timer left live after the proc dies degenerates to a
    // no-op when it finds no blocked proc.
    auto fired = std::make_shared<bool>(false);
    Kernel* k = kernel_;
    const int32_t pid = pid_;
    const uint64_t timer = clock.CallAt(deadline, [k, pid, fired] {
      *fired = true;
      Proc* bp = k->FindProc(pid);
      if (bp != nullptr && bp->state == ProcState::kBlocked) {
        bp->state = ProcState::kRunnable;
        bp->unblock_check = nullptr;
      }
    });
    kernel_->BlockProc(p, [check, expired] { return check() || expired(); });
    p.native->Yield();
    if (!*fired) clock.CancelTimer(timer);
  }
  return check();
}

Result<int> SyscallApi::Open(std::string_view path, int32_t flags, uint16_t mode) {
  EnterSyscall();
  const Result<int> fd = kernel_->SysOpen(proc(), path, flags, mode);
  FinishSyscall();
  return fd;
}

Result<int> SyscallApi::Creat(std::string_view path, uint16_t mode) {
  EnterSyscall();
  const Result<int> fd = kernel_->SysCreat(proc(), path, mode);
  FinishSyscall();
  return fd;
}

Status SyscallApi::Close(int fd) {
  EnterSyscall();
  const Status st = kernel_->SysClose(proc(), fd);
  FinishSyscall();
  return st;
}

Result<std::string> SyscallApi::Read(int fd, int64_t max) {
  EnterSyscall();
  for (;;) {
    Proc& p = proc();
    const Result<std::string> out = kernel_->SysRead(p, fd, max);
    if (out.error() == Errno::kAgain) {
      kernel_->BlockProc(p, kernel_->MakeReadCheck(p, fd));
      p.native->Yield();
      continue;
    }
    FinishSyscall();
    return out;
  }
}

Result<std::string> SyscallApi::ReadLine(int fd) {
  // Stdio-style line input: read a chunk, seek back past the unconsumed tail for
  // seekable files. Terminals in cooked mode already return exactly one line.
  Result<std::string> chunk = Read(fd, 256);
  if (!chunk.ok()) return chunk;
  std::string& s = *chunk;
  const size_t nl = s.find('\n');
  if (nl == std::string::npos || nl + 1 == s.size()) return chunk;
  const int64_t extra = static_cast<int64_t>(s.size() - (nl + 1));
  const Result<int64_t> pos = Lseek(fd, -extra, vm::abi::kSeekCur);
  if (pos.ok()) {
    s.resize(nl + 1);
  }
  return chunk;
}

Result<std::string> SyscallApi::ReadAll(int fd) {
  std::string all;
  for (;;) {
    Result<std::string> chunk = Read(fd, 4096);
    if (!chunk.ok()) return chunk;
    if (chunk->empty()) return all;
    all += *chunk;
  }
}

Result<int64_t> SyscallApi::Write(int fd, std::string_view data) {
  EnterSyscall();
  const Result<int64_t> n = kernel_->SysWrite(proc(), fd, data);
  FinishSyscall();
  return n;
}

Result<int64_t> SyscallApi::Lseek(int fd, int64_t offset, int whence) {
  EnterSyscall();
  const Result<int64_t> n = kernel_->SysLseek(proc(), fd, offset, whence);
  FinishSyscall();
  return n;
}

Result<int> SyscallApi::Dup(int fd) {
  EnterSyscall();
  const Result<int> n = kernel_->SysDup(proc(), fd);
  FinishSyscall();
  return n;
}

Status SyscallApi::Chdir(std::string_view path) {
  EnterSyscall();
  const Status st = kernel_->SysChdir(proc(), path);
  FinishSyscall();
  return st;
}

Result<std::string> SyscallApi::GetCwd() {
  EnterSyscall();
  const Result<std::string> cwd = kernel_->SysGetCwd(proc());
  FinishSyscall();
  return cwd;
}

Result<std::string> SyscallApi::Readlink(std::string_view path) {
  EnterSyscall();
  const Result<std::string> target = kernel_->SysReadlink(proc(), path);
  FinishSyscall();
  return target;
}

Result<StatInfo> SyscallApi::Stat(std::string_view path) {
  EnterSyscall();
  const Result<StatInfo> info = kernel_->SysStat(proc(), path, /*follow=*/true);
  FinishSyscall();
  return info;
}

Result<StatInfo> SyscallApi::LStat(std::string_view path) {
  EnterSyscall();
  const Result<StatInfo> info = kernel_->SysStat(proc(), path, /*follow=*/false);
  FinishSyscall();
  return info;
}

Result<std::vector<std::string>> SyscallApi::ReadDir(std::string_view path) {
  EnterSyscall();
  Result<std::vector<std::string>> names = kernel_->SysReadDir(proc(), path);
  FinishSyscall();
  return names;
}

Status SyscallApi::Unlink(std::string_view path) {
  EnterSyscall();
  const Status st = kernel_->SysUnlink(proc(), path);
  FinishSyscall();
  return st;
}

Status SyscallApi::Link(std::string_view oldpath, std::string_view newpath) {
  EnterSyscall();
  const Status st = kernel_->SysLink(proc(), oldpath, newpath);
  FinishSyscall();
  return st;
}

Status SyscallApi::Mkdir(std::string_view path, uint16_t mode) {
  EnterSyscall();
  const Status st = kernel_->SysMkdir(proc(), path, mode);
  FinishSyscall();
  return st;
}

Status SyscallApi::Rmdir(std::string_view path) {
  EnterSyscall();
  const Status st = kernel_->SysRmdir(proc(), path);
  FinishSyscall();
  return st;
}

Status SyscallApi::Rename(std::string_view oldpath, std::string_view newpath) {
  EnterSyscall();
  const Status st = kernel_->SysRename(proc(), oldpath, newpath);
  FinishSyscall();
  return st;
}

Status SyscallApi::Kill(int32_t target_pid, int signo) {
  EnterSyscall();
  const Status st = kernel_->SysKill(proc(), target_pid, signo);
  FinishSyscall();
  return st;
}

Status SyscallApi::SetDumpMode(int32_t target_pid, bool incremental) {
  EnterSyscall();
  const Status st = kernel_->SysSetDumpMode(proc(), target_pid, incremental);
  FinishSyscall();
  return st;
}

Result<bool> SyscallApi::DumpFailed(int32_t target_pid) {
  EnterSyscall();
  const Result<bool> r = kernel_->SysDumpFailed(proc(), target_pid);
  FinishSyscall();
  return r;
}

Status SyscallApi::SetReUid(int32_t ruid, int32_t euid) {
  EnterSyscall();
  const Status st = kernel_->SysSetReUid(proc(), ruid, euid);
  FinishSyscall();
  return st;
}

int32_t SyscallApi::GetPid() {
  Proc& p = proc();
  if (kernel_->config_.virtualize_identity && p.migrated) return p.old_pid;
  return p.pid;
}

int32_t SyscallApi::GetPpid() { return proc().ppid; }
int32_t SyscallApi::GetUid() { return proc().creds.uid; }
int32_t SyscallApi::GetEuid() { return proc().creds.euid; }

std::string SyscallApi::GetHostname() {
  Proc& p = proc();
  if (kernel_->config_.virtualize_identity && p.migrated) return p.old_host;
  return kernel_->hostname_;
}

Result<uint16_t> SyscallApi::TtyGetFlags(int fd) {
  EnterSyscall();
  const Result<uint16_t> flags = kernel_->SysTtyGet(proc(), fd);
  FinishSyscall();
  return flags;
}

Status SyscallApi::TtySetFlags(int fd, uint16_t flags) {
  EnterSyscall();
  const Status st = kernel_->SysTtySet(proc(), fd, flags);
  FinishSyscall();
  return st;
}

void SyscallApi::Sleep(sim::Nanos duration) {
  EnterSyscall();
  Proc& p = proc();
  kernel_->SleepProc(p, duration);
  p.native->Yield();
}

Result<WaitResult> SyscallApi::Wait() {
  EnterSyscall();
  for (;;) {
    Proc& p = proc();
    const Result<WaitResult> wr = kernel_->TryWait(p);
    if (wr.error() != Errno::kAgain) {
      FinishSyscall();
      return wr;
    }
    Kernel* k = kernel_;
    const int32_t pid = pid_;
    kernel_->BlockProc(p, [k, pid] { return k->WaitReady(pid); });
    p.native->Yield();
  }
}

Result<int32_t> SyscallApi::SpawnProgram(const std::string& program,
                                         std::vector<std::string> args) {
  EnterSyscall();
  Proc& p = proc();
  SpawnOptions opts;
  opts.creds = p.creds;
  opts.tty = p.controlling_tty;
  opts.cwd = p.u_cwd_path.empty() ? "/" : p.u_cwd_path;
  opts.ppid = p.pid;
  kernel_->ChargeCpu(p, kernel_->costs_->fork_overhead + kernel_->costs_->exec_overhead);
  const Result<int32_t> pid = kernel_->SpawnProgram(program, std::move(args), opts);
  FinishSyscall();
  return pid;
}

Result<int32_t> SyscallApi::SpawnVm(const std::string& aout_path,
                                    std::vector<std::string> args) {
  EnterSyscall();
  Proc& p = proc();
  SpawnOptions opts;
  opts.creds = p.creds;
  opts.tty = p.controlling_tty;
  opts.cwd = p.u_cwd_path.empty() ? "/" : p.u_cwd_path;
  opts.ppid = p.pid;
  kernel_->ChargeCpu(p, kernel_->costs_->fork_overhead);
  const Result<int32_t> pid = kernel_->SpawnVm(aout_path, std::move(args), opts);
  FinishSyscall();
  return pid;
}

Status SyscallApi::RestProc(std::string_view aout_path, std::string_view stack_path) {
  EnterSyscall();
  Proc& p = proc();
  const Status st = kernel_->SysRestProc(p, aout_path, stack_path);
  if (st.ok()) {
    // "Normally, there is no return from this system call." The process has been
    // overlaid; unwind the native thread while the (VM) process lives on.
    p.overlaid = true;
    throw BecameVm{};
  }
  FinishSyscall();
  return st;
}

void SyscallApi::Exit(int code) { throw ExitRequest{code}; }

}  // namespace pmig::kernel
