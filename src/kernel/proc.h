// Process and user structures.
//
// Proc merges what Unix splits into `struct proc` (always resident) and the `user`
// structure (swappable, per-process): identity, credentials, fd table, signal
// state, and — per Section 5.1 — the textual current-working-directory string that
// the modified kernel maintains ("a character string of fixed size was added to
// this structure, which contains the full path name of the current directory").
//
// Two process kinds exist:
//   * kVm: runs machine code on the simulated CPU; fully migratable.
//   * kNative: a C++ callable on a parked host thread (the dumpproc/restart/migrate
//     tools, shells, daemons). Scheduled and time-charged like any process, but its
//     state lives in a C++ stack, so SIGDUMP cannot dump it (the paper's tools are
//     not themselves migratable either).

#ifndef PMIG_SRC_KERNEL_PROC_H_
#define PMIG_SRC_KERNEL_PROC_H_

#include <array>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>

#include "src/kernel/file.h"
#include "src/kernel/tty.h"
#include "src/sim/time.h"
#include "src/vfs/vfs.h"
#include "src/vm/abi.h"
#include "src/vm/cpu.h"

namespace pmig::kernel {

class NativeTask;

struct Credentials {
  int32_t uid = 0;   // real uid
  int32_t gid = 0;
  int32_t euid = 0;  // effective uid
  int32_t egid = 0;

  bool IsSuperuser() const { return euid == 0; }
  bool operator==(const Credentials&) const = default;
};

enum class ProcState : uint8_t {
  kRunnable,
  kSleeping,  // waiting for a timer (sleep(), disk/net completion, dump finishing)
  kBlocked,   // waiting for a condition (tty input, pipe data, child exit)
  kZombie,    // exited, wait()able
  kDead,      // reaped; slot free
};

enum class ProcKind : uint8_t { kVm, kNative };

// Why a process exited, for wait() status and tests.
struct ExitInfo {
  int exit_code = 0;
  int killed_by_signal = 0;  // 0 if normal exit
  bool core_dumped = false;  // SIGQUIT-style core
  bool migration_dumped = false;  // terminated by SIGDUMP with a successful dump
};

struct SignalDisposition {
  enum class Action : uint8_t { kDefault, kIgnore, kCatch } action = Action::kDefault;
  uint32_t handler = 0;  // VM text address when kCatch

  bool operator==(const SignalDisposition&) const = default;
};

struct Proc {
  int32_t pid = 0;
  int32_t ppid = 0;
  std::string command;  // for traces and ps-like listings
  ProcKind kind = ProcKind::kVm;
  ProcState state = ProcState::kRunnable;
  Credentials creds;

  // Physical knowledge of the cwd (inode chain) — what the unmodified kernel has.
  vfs::WalkState cwd;
  // Section 5.1: the textual cwd in the user structure, maintained by the modified
  // kernel. Empty string == "not yet initialised" (the paper initialises it on the
  // first absolute chdir(), done at boot, and children inherit it).
  std::string u_cwd_path;

  // Per-process fd table: indexes into the system file table (shared OpenFiles).
  std::array<OpenFilePtr, kNoFile> fds;

  // Signal state (dumped to stackXXXXX and restored by rest_proc()).
  std::array<SignalDisposition, vm::abi::kNSig> sig_dispositions;
  uint64_t sig_pending = 0;

  Tty* controlling_tty = nullptr;  // null for rsh-spawned and daemon processes

  // Accounting.
  sim::Nanos utime = 0;  // user CPU
  sim::Nanos stime = 0;  // system CPU
  sim::Nanos start_time = 0;

  // kVm state.
  std::unique_ptr<vm::VmContext> vm;

  // kNative state.
  std::unique_ptr<NativeTask> native;

  // Blocking: when kBlocked, the scheduler re-runs this predicate each quantum and
  // wakes the process when it yields true. Cleared on wake.
  std::function<bool()> unblock_check;
  // When kSleeping, id of the wake timer (so kill can cancel it).
  uint64_t wake_timer = 0;

  // Real-time cost (disk latency, NFS round trips) accumulated during the current
  // syscall; converted into a kSleeping period when the syscall completes.
  sim::Nanos pending_wait = 0;

  ExitInfo exit_info;

  // True once a native process successfully called rest_proc(): the process was
  // overlaid with a restarted VM image. Parents waiting on it treat this as
  // successful completion (the process itself lives on, reparented to the kernel).
  bool overlaid = false;

  // --- Migration bookkeeping ---
  // Set by rest_proc() on the restarted process. With the kernel's
  // virtualize_identity option (the Section 7 proposal), getpid()/gethostname()
  // report these instead of the real values.
  bool migrated = false;
  int32_t old_pid = 0;
  std::string old_host;

  // Set by setdumpmode(): the next SIGDUMP emits a delta dump (dirty pages against
  // the exec-time image) instead of a full one. Cleared by execve().
  bool dump_incremental = false;

  // The last SIGDUMP attempt aborted (disk full, corruption, verification) and
  // the process was resumed. Cleared when a new dump starts; read via the
  // dumpfailed() syscall so dumpproc can bail out immediately instead of
  // polling its full timeout for dump files that will never appear.
  bool dump_failed = false;

  // Distributed-trace context (see sim::SpanLog): the trace this process
  // participates in, and its innermost open span — the parent for spans it
  // opens and for processes it spawns. Inherited via SpawnOptions, copied onto
  // a SIGDUMP victim by PostSignal, and stamped into / adopted from dump
  // metadata so one migration's spans on every host share a trace id.
  uint64_t trace_id = 0;
  uint64_t trace_parent_span = 0;

  bool Alive() const { return state != ProcState::kZombie && state != ProcState::kDead; }

  int FreeFdSlot() const {
    for (int i = 0; i < kNoFile; ++i) {
      if (fds[static_cast<size_t>(i)] == nullptr) return i;
    }
    return -1;
  }
};

}  // namespace pmig::kernel

#endif  // PMIG_SRC_KERNEL_PROC_H_
