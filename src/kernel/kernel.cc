#include "src/kernel/kernel.h"

#include <algorithm>
#include <cassert>
#include <utility>

#include "src/vfs/path.h"

namespace pmig::kernel {

Kernel::Kernel(std::string hostname, sim::VirtualClock* clock, const sim::CostModel* costs,
               sim::TraceLog* trace, KernelConfig config)
    : hostname_(std::move(hostname)),
      clock_(clock),
      costs_(costs),
      trace_(trace),
      config_(config) {
  fs_ = std::make_unique<vfs::Filesystem>(hostname_);
  vfs_ = std::make_unique<vfs::Vfs>(fs_.get(), costs_);
  vfs_->set_metrics(&metrics_);
  instructions_metric_ = metrics_.MakeCounter("kernel.instructions");
  native_syscall_metric_ = metrics_.MakeCounter("kernel.syscall.native");
  context_switch_metric_ = metrics_.MakeCounter("sched.context_switches");
  runnable_vm_metric_ = metrics_.MakeCounter("sched.runnable_vm", /*gauge=*/true);
  null_device_ = std::make_unique<NullDevice>();
  BootFilesystem();
}

Kernel::~Kernel() {
  // Unwind native threads before anything they might reference is destroyed.
  for (auto& proc : procs_) {
    if (proc->native != nullptr) {
      proc->native.reset();
    }
  }
}

void Kernel::BootFilesystem() {
  vfs_->SetupMkdirAll("/dev");
  vfs_->SetupMkdirAll("/usr/tmp")->mode = 0777;  // sticky temp dirs, world-writable
  vfs_->SetupMkdirAll("/tmp")->mode = 0777;
  vfs_->SetupMkdirAll("/etc");
  vfs_->SetupMkdirAll("/bin");
  vfs_->SetupMkdirAll("/u");
  vfs_->SetupMkdirAll("/n");

  // /dev/null.
  auto dev = vfs_->Resolve(vfs_->RootState(), "/dev", vfs::Follow::kAll, nullptr);
  assert(dev.ok());
  vfs::InodePtr null_node = fs_->NewCharDevice(null_device_.get(), 0);
  const Status st = fs_->Link(dev->inode, "null", null_node);
  assert(st.ok());
  (void)st;
}

Tty* Kernel::CreateTty(const std::string& name) {
  auto tty = std::make_unique<Tty>(name);
  Tty* raw = tty.get();
  ttys_.push_back(std::move(tty));
  auto dev = vfs_->Resolve(vfs_->RootState(), "/dev", vfs::Follow::kAll, nullptr);
  assert(dev.ok());
  vfs::InodePtr node = fs_->NewCharDevice(raw, 0, 0622);
  const Status st = fs_->Link(dev->inode, name, node);
  assert(st.ok());
  (void)st;
  tty_nodes_[raw] = std::move(node);
  return raw;
}

Tty* Kernel::FindTty(std::string_view name) {
  for (auto& tty : ttys_) {
    if (tty->DeviceName() == name) return tty.get();
  }
  return nullptr;
}

// --- Process lifecycle --------------------------------------------------------

Proc& Kernel::NewProc(std::string command, ProcKind kind, const SpawnOptions& opts) {
  auto owned = std::make_unique<Proc>();
  Proc& p = *owned;
  p.pid = AllocatePid();
  p.ppid = opts.ppid;
  p.command = std::move(command);
  p.kind = kind;
  p.creds = opts.creds;
  p.controlling_tty = opts.tty;
  p.start_time = clock_->now();
  p.trace_id = opts.trace_id;
  p.trace_parent_span = opts.trace_parent_span;
  InitProcCwd(p, opts.cwd);
  procs_.push_back(std::move(owned));
  apis_[p.pid] = std::make_unique<SyscallApi>(this, p.pid);
  ++stats_.procs_spawned;
  metrics_.Inc("kernel.procs_spawned");
  if (opts.tty != nullptr && opts.stdio_on_tty) {
    OpenFilePtr stdio = OpenTtyFile(opts.tty);
    for (int fd = 0; fd < 3; ++fd) InstallFd(p, fd, stdio);
  }
  Trace(sim::TraceCategory::kSched, p.pid, "spawn " + p.command);
  return p;
}

bool Kernel::WaitReady(int32_t parent_pid) const {
  bool any = false;
  for (const auto& q : procs_) {
    if (q->ppid != parent_pid || q->state == ProcState::kDead) continue;
    if (q->state == ProcState::kZombie) return true;
    if (q->overlaid) return true;
    any = true;
  }
  return !any;  // no children left -> wait() returns ECHILD immediately
}

void Kernel::InitProcCwd(Proc& p, const std::string& cwd) {
  auto resolved = vfs_->Resolve(vfs_->RootState(), cwd, vfs::Follow::kAll, nullptr);
  if (resolved.ok() && resolved->inode->IsDir()) {
    p.cwd = resolved->state;
  } else {
    p.cwd = vfs_->RootState();
  }
  // The textual cwd is "inherited from the parent"; spawn options carry it. As at
  // boot, the field only exists on the modified kernel.
  if (config_.track_names) {
    p.u_cwd_path = vfs::Combine("/", cwd);
  }
}

Result<int32_t> Kernel::SpawnProgram(const std::string& program, std::vector<std::string> args,
                                     const SpawnOptions& opts) {
  if (programs_ == nullptr) return Errno::kNoEnt;
  auto it = programs_->find(program);
  if (it == programs_->end()) return Errno::kNoEnt;
  const ProgramEntry& entry = it->second;
  const int32_t pid = SpawnNative(program,
                                  [entry, args = std::move(args)](SyscallApi& api) {
                                    return entry(api, args);
                                  },
                                  opts);
  // A registered program is a real binary: it pays fork + exec + runtime startup
  // before its first instruction runs.
  if (Proc* p = FindProc(pid); p != nullptr) {
    ChargeCpu(*p, costs_->tool_spawn_cpu);
    ChargeWait(*p, costs_->tool_spawn_wait);
    SettlePendingWait(*p);
  }
  return pid;
}

int32_t Kernel::SpawnNative(std::string command_name, NativeTask::Entry entry,
                            const SpawnOptions& opts) {
  Proc& p = NewProc(std::move(command_name), ProcKind::kNative, opts);
  p.native = std::make_unique<NativeTask>();
  p.native->Start(std::move(entry), apis_[p.pid].get());
  return p.pid;
}

Result<int32_t> Kernel::SpawnVm(const std::string& aout_path, std::vector<std::string> args,
                                const SpawnOptions& opts) {
  Proc& p = NewProc(vfs::Basename(aout_path), ProcKind::kVm, opts);
  p.vm = std::make_unique<vm::VmContext>();
  const Status st = SysExecve(p, aout_path, args);
  if (!st.ok()) {
    TerminateProc(p, ExitInfo{.exit_code = 127});
    return st.error();
  }
  return p.pid;
}

Proc* Kernel::FindProc(int32_t pid) {
  for (auto& p : procs_) {
    if (p->pid == pid && p->state != ProcState::kDead) return p.get();
  }
  return nullptr;
}

const Proc* Kernel::FindProc(int32_t pid) const {
  return const_cast<Kernel*>(this)->FindProc(pid);
}

Proc* Kernel::FindAnyProc(int32_t pid) {
  for (auto& p : procs_) {
    if (p->pid == pid) return p.get();
  }
  return nullptr;
}

std::vector<Proc*> Kernel::ListProcs() {
  std::vector<Proc*> out;
  for (auto& p : procs_) {
    if (p->Alive()) out.push_back(p.get());
  }
  return out;
}

int Kernel::RunnableCount() const {
  int n = 0;
  for (const auto& p : procs_) {
    if (p->state == ProcState::kRunnable) ++n;
  }
  return n;
}

SyscallApi* Kernel::ApiFor(int32_t pid) {
  auto it = apis_.find(pid);
  return it == apis_.end() ? nullptr : it->second.get();
}

sim::Nanos Kernel::TotalCpu() const {
  sim::Nanos total = 0;
  for (const auto& p : procs_) total += p->utime + p->stime;
  return total;
}

// --- Fd plumbing ----------------------------------------------------------------

OpenFilePtr Kernel::OpenTtyFile(Tty* tty) {
  auto file = std::make_shared<OpenFile>();
  file->kind = FileKind::kInode;
  file->inode = tty_nodes_.at(tty);
  file->flags = vm::abi::kORdWr;
  if (config_.track_names) {
    // Held name storage, same as TrackOpenName — ReleaseOpenName gives these
    // bytes back on close, so skipping the add here would drive
    // name_bytes_current negative.
    file->name = "/dev/" + std::string(tty->DeviceName());
    const int64_t held = config_.name_storage == KernelConfig::NameStorage::kFixed
                             ? config_.fixed_name_bytes
                             : static_cast<int64_t>(file->name->size()) + 1;
    ++stats_.name_allocs;
    stats_.name_bytes_current += held;
    stats_.name_bytes_peak = std::max(stats_.name_bytes_peak, stats_.name_bytes_current);
  }
  return file;
}

OpenFilePtr Kernel::MakeChannelFile(std::shared_ptr<Channel> channel, bool write_end,
                                    FileKind kind) {
  auto file = std::make_shared<OpenFile>();
  file->kind = kind;
  file->channel = std::move(channel);
  file->write_end = write_end;
  file->flags = write_end ? vm::abi::kOWrOnly : vm::abi::kORdOnly;
  return file;
}

void Kernel::InstallFd(Proc& p, int fd, OpenFilePtr file) {
  assert(fd >= 0 && fd < kNoFile);
  assert(p.fds[static_cast<size_t>(fd)] == nullptr);
  ++file->refcount;
  p.fds[static_cast<size_t>(fd)] = std::move(file);
}

Result<OpenFilePtr> Kernel::FdGet(Proc& p, int fd) {
  if (fd < 0 || fd >= kNoFile || p.fds[static_cast<size_t>(fd)] == nullptr) {
    return Errno::kBadF;
  }
  return p.fds[static_cast<size_t>(fd)];
}

// --- Charging ---------------------------------------------------------------------

void Kernel::ChargeCpu(Proc& p, sim::Nanos amount) {
  p.stime += amount;
  quantum_left_ -= amount;
}

bool Kernel::SettlePendingWait(Proc& p) {
  if (p.pending_wait <= 0 || !p.Alive()) {
    p.pending_wait = 0;
    return false;
  }
  SleepProc(p, 0);
  return true;
}

void Kernel::SleepProc(Proc& p, sim::Nanos duration) {
  const sim::Nanos total = duration + p.pending_wait;
  p.pending_wait = 0;
  if (total <= 0) return;
  p.state = ProcState::kSleeping;
  const int32_t pid = p.pid;
  p.wake_timer = clock_->CallAfter(total, [this, pid] {
    Proc* proc = FindProc(pid);
    if (proc != nullptr && proc->state == ProcState::kSleeping) {
      proc->state = ProcState::kRunnable;
      proc->wake_timer = 0;
    }
  });
}

void Kernel::BlockProc(Proc& p, std::function<bool()> check) {
  p.state = ProcState::kBlocked;
  p.unblock_check = std::move(check);
}

// --- Scheduler ---------------------------------------------------------------------

bool Kernel::HasWork() const {
  for (const auto& p : procs_) {
    switch (p->state) {
      case ProcState::kRunnable:
      case ProcState::kSleeping:
      case ProcState::kBlocked:
        return true;
      default:
        break;
    }
  }
  return false;
}

bool Kernel::HasTimedWork() const {
  if (down_) return false;
  for (const auto& p : procs_) {
    if (p->state == ProcState::kRunnable || p->state == ProcState::kSleeping) return true;
  }
  return false;
}

bool Kernel::HasRunnableProc() const {
  if (down_) return false;
  for (const auto& p : procs_) {
    if (p->state == ProcState::kRunnable) return true;
  }
  return false;
}

void Kernel::WakeBlockedProcs() {
  for (auto& p : procs_) {
    if (p->state == ProcState::kBlocked && p->unblock_check && p->unblock_check()) {
      p->state = ProcState::kRunnable;
      p->unblock_check = nullptr;
    }
  }
}

Proc* Kernel::PickNext() {
  if (procs_.empty()) return nullptr;
  const size_t n = procs_.size();
  for (size_t i = 0; i < n; ++i) {
    Proc* p = procs_[(rr_cursor_ + i) % n].get();
    if (p->state == ProcState::kRunnable) {
      rr_cursor_ = (rr_cursor_ + i + 1) % n;
      return p;
    }
  }
  return nullptr;
}

bool Kernel::RunQuantum() {
  if (down_) return false;  // the machine is powered off / crashed
  DeliverPendingSignals();
  WakeBlockedProcs();
  if (metrics_.enabled()) {
    int64_t runnable_vm = 0;
    for (const auto& q : procs_) {
      if (q->kind == ProcKind::kVm && q->state == ProcState::kRunnable) ++runnable_vm;
    }
    runnable_vm_metric_.Set(runnable_vm);
  }
  Proc* p = PickNext();
  if (p == nullptr) return false;

  quantum_left_ = costs_->quantum;
  if (p->pid != last_run_pid_) {
    ++stats_.context_switches;
    context_switch_metric_.Inc();
    ChargeCpu(*p, costs_->context_switch);
  }
  last_run_pid_ = p->pid;

  if (p->kind == ProcKind::kVm) {
    RunVmProc(*p);
  } else {
    RunNativeProc(*p);
  }
  return true;
}

void Kernel::RunNativeProc(Proc& p) {
  NativeTask* task = p.native.get();
  assert(task != nullptr);
  task->Resume();
  if (task->finished()) {
    HandleNativeFinish(p);
  }
}

void Kernel::HandleNativeFinish(Proc& p) {
  NativeTask* task = p.native.get();
  if (task->became_vm()) {
    // rest_proc() succeeded: the process was overlaid with the restarted program.
    // Only the C++ thread ends; the process (now kVm) keeps running.
    p.native.reset();
    Trace(sim::TraceCategory::kMigration, p.pid, "native task overlaid by rest_proc");
    return;
  }
  ExitInfo info;
  if (task->was_killed()) {
    info = p.exit_info;  // filled in by signal delivery
    if (info.killed_by_signal == 0) info.killed_by_signal = vm::abi::kSigKill;
  } else {
    info.exit_code = task->exit_code();
  }
  p.native.reset();
  TerminateProc(p, info);
}

void Kernel::TerminateProc(Proc& p, ExitInfo info) {
  if (!p.Alive()) return;
  if (p.wake_timer != 0) {
    clock_->CancelTimer(p.wake_timer);
    p.wake_timer = 0;
  }
  // Release the fd table.
  for (int fd = 0; fd < kNoFile; ++fd) {
    const Status st = SysClose(p, fd);
    (void)st;  // EBADF on empty slots is fine
  }
  p.exit_info = info;
  p.unblock_check = nullptr;
  p.pending_wait = 0;
  p.sig_pending = 0;

  // Children are reparented to the kernel ("init"); their exit will be autoreaped.
  for (auto& q : procs_) {
    if (q->Alive() && q->ppid == p.pid) q->ppid = 0;
  }

  if (p.kind == ProcKind::kNative && p.native != nullptr) {
    // Termination initiated outside the task (e.g. kernel shutdown): unwind it.
    p.native->RequestKill();
    p.state = ProcState::kZombie;
    p.native.reset();
  } else {
    p.state = ProcState::kZombie;
  }
  p.vm.reset();

  Trace(sim::TraceCategory::kSched, p.pid,
        "exit code=" + std::to_string(info.exit_code) +
            " sig=" + std::to_string(info.killed_by_signal) +
            (info.migration_dumped ? " (migration dump)" : "") +
            (info.core_dumped ? " (core dumped)" : ""));

  // Orphans (and processes whose parent already died) are reaped immediately.
  const Proc* parent = FindProc(p.ppid);
  if (p.ppid == 0 || parent == nullptr || !parent->Alive()) {
    p.state = ProcState::kDead;
  }
}

Status Kernel::OverlayVmImage(Proc& p, const vm::AoutImage& image,
                              const std::vector<std::string>& args) {
  if (!vm::IsaCompatible(image.isa_level(), config_.isa)) {
    return Errno::kNoExec;  // 68020 binary on a 68010 machine
  }
  if (p.vm == nullptr) p.vm = std::make_unique<vm::VmContext>();
  p.vm->LoadImage(image);
  p.dump_incremental = false;  // a new image invalidates any pending delta mode
  if (config_.track_dirty_pages) p.vm->ArmDirtyTracking();
  ChargeCpu(p, costs_->exec_overhead);
  ChargeCpu(p, static_cast<sim::Nanos>(image.text.size() + image.data.size()) *
                   costs_->buffer_copy_per_byte);

  vm::VmContext& ctx = *p.vm;
  if (restproc_flag_) {
    // The Section 5.2 modification: "instead of calculating how much initial stack
    // to allocate ... it simply allocates as many bytes as are indicated in another
    // global variable".
    const uint32_t size = std::min(restproc_stack_size_, vm::kStackMax);
    ctx.cpu.sp = vm::kStackTop - size;
    return Status::Ok();
  }

  // Normal execve(): build argc/argv on the initial stack.
  uint32_t cursor = vm::kStackTop;
  std::vector<uint32_t> arg_addrs;
  for (auto it = args.rbegin(); it != args.rend(); ++it) {
    cursor -= static_cast<uint32_t>(it->size()) + 1;
    ctx.cpu.sp = cursor;  // keep sp <= cursor so writes are in-range
    if (!ctx.WriteCString(cursor, *it)) return Errno::kFault;
    arg_addrs.push_back(cursor);
  }
  std::reverse(arg_addrs.begin(), arg_addrs.end());
  cursor &= ~uint32_t{7};  // align
  cursor -= 8;             // NULL terminator
  ctx.cpu.sp = cursor;
  if (!ctx.WriteU64(cursor, 0)) return Errno::kFault;
  for (auto it = arg_addrs.rbegin(); it != arg_addrs.rend(); ++it) {
    cursor -= 8;
    ctx.cpu.sp = cursor;
    if (!ctx.WriteU64(cursor, *it)) return Errno::kFault;
  }
  const uint32_t argv_addr = cursor;
  cursor -= 8;
  ctx.cpu.sp = cursor;
  if (!ctx.WriteU64(cursor, static_cast<int64_t>(args.size()))) return Errno::kFault;
  ctx.cpu.regs[0] = static_cast<int64_t>(args.size());
  ctx.cpu.regs[1] = argv_addr;
  return Status::Ok();
}

void Kernel::Trace(sim::TraceCategory cat, int32_t pid, std::string text) {
  // Migration/signal events mirror into the flight recorder's per-host ring
  // (when one is wired up) even while the textual trace log is off: the
  // recorder exists precisely for runs too long to keep a full trace.
  if (recorder_ != nullptr && recorder_->enabled() &&
      (cat == sim::TraceCategory::kMigration || cat == sim::TraceCategory::kSignal)) {
    const Proc* p = FindProc(pid);
    recorder_->Note(hostname_, pid, p != nullptr ? p->trace_id : 0, text);
  }
  if (trace_ == nullptr || !trace_->enabled()) return;
  trace_->Add(sim::TraceEvent{clock_->now(), cat, hostname_, pid, std::move(text)});
}

TraceSpan::TraceSpan(Kernel& kernel, Proc& p, std::string phase)
    : log_(kernel.spans()), proc_(&p) {
  if (log_ == nullptr) return;
  id_ = log_->Begin(std::move(phase), kernel.hostname(), p.pid, p.trace_id,
                    p.trace_parent_span);
  if (id_ != 0) {
    saved_parent_ = p.trace_parent_span;
    p.trace_parent_span = id_;
  }
}

TraceSpan::~TraceSpan() {
  if (id_ == 0) return;
  log_->End(id_);
  proc_->trace_parent_span = saved_parent_;
}

}  // namespace pmig::kernel
