// The classic `core` file written by SIGQUIT and friends.
//
// SIGDUMP's implementation is "similar to that of ... SIGQUIT, which causes a
// process to terminate (dumping a subset of the information we dump for our new
// signal) in a file named core" (Section 5.2). The subset here: registers, data
// segment, stack — but not the text, not the open-file names, and not the signal
// state, which is exactly why a core file alone cannot restart a process while the
// three SIGDUMP files can. The paper's `undump` trick (executable + core -> new
// executable) is implemented in src/core/tools.cc on top of this format.

#ifndef PMIG_SRC_KERNEL_CORE_FILE_H_
#define PMIG_SRC_KERNEL_CORE_FILE_H_

#include <string>
#include <vector>

#include "src/sim/result.h"
#include "src/vm/cpu.h"

namespace pmig::kernel {

constexpr uint32_t kCoreMagic = 0420;  // octal, arbitrary like the paper's 0444/0445

struct CoreFile {
  vm::CpuState cpu;
  std::vector<uint8_t> data;
  std::vector<uint8_t> stack;  // bytes from sp to kStackTop

  std::string Serialize() const;
  static Result<CoreFile> Parse(const std::string& bytes);
};

}  // namespace pmig::kernel

#endif  // PMIG_SRC_KERNEL_CORE_FILE_H_
