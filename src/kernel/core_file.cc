#include "src/kernel/core_file.h"

#include "src/sim/bytes.h"

namespace pmig::kernel {

std::string CoreFile::Serialize() const {
  sim::ByteWriter w;
  w.U32(kCoreMagic);
  for (const int64_t reg : cpu.regs) w.I64(reg);
  w.U32(cpu.pc);
  w.U32(cpu.sp);
  w.Blob(data);
  w.Blob(stack);
  return w.Take();
}

Result<CoreFile> CoreFile::Parse(const std::string& bytes) {
  sim::ByteReader r(bytes);
  if (r.U32() != kCoreMagic) return Errno::kNoExec;
  CoreFile core;
  for (int64_t& reg : core.cpu.regs) reg = r.I64();
  core.cpu.pc = r.U32();
  core.cpu.sp = r.U32();
  core.data = r.Blob();
  core.stack = r.Blob();
  if (!r.ok()) return Errno::kNoExec;
  return core;
}

}  // namespace pmig::kernel
