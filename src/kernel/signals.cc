// Signal posting and delivery, including the two dumping terminations:
// SIGQUIT-style core dumps and the paper's SIGDUMP migration dump.

#include <cassert>

#include "src/kernel/core_file.h"
#include "src/kernel/kernel.h"

namespace pmig::kernel {

namespace {

using vm::abi::Sig;

bool DefaultActionDumpsCore(int signo) {
  return signo == Sig::kSigQuit || signo == Sig::kSigIll || signo == Sig::kSigFpe ||
         signo == Sig::kSigSegv;
}

bool DefaultActionIgnores(int signo) { return signo == Sig::kSigChld; }

// SIGKILL and SIGDUMP always take their default action (SIGDUMP must be reliable
// for the migration tools, so like SIGKILL it cannot be caught or ignored).
bool Unblockable(int signo) { return signo == Sig::kSigKill || signo == Sig::kSigDump; }

}  // namespace

Status Kernel::PostSignal(int32_t pid, int signo, Proc* sender) {
  if (signo <= 0 || signo >= vm::abi::kNSig) return Errno::kInval;
  Proc* target = FindProc(pid);
  if (target == nullptr || !target->Alive()) return Errno::kSrch;
  ++stats_.signals_posted;
  // SIGDUMP is always sent by the migration machinery; hand the sender's
  // distributed-trace context to the victim so the kernel dump span (and the
  // dump metadata) join the originating migrate's trace.
  if (signo == Sig::kSigDump) {
    // A fresh dump request supersedes the previous attempt's failure flag.
    // Cleared here at post time — not at delivery — so a dumpproc that kills
    // and immediately polls dumpfailed() cannot read an earlier attempt's
    // abort as its own and walk away from a dump that is about to succeed.
    target->dump_failed = false;
    if (sender != nullptr && sender->trace_id != 0) {
      target->trace_id = sender->trace_id;
      target->trace_parent_span = sender->trace_parent_span;
    }
  }
  target->sig_pending |= (uint64_t{1} << signo);
  Trace(sim::TraceCategory::kSignal, pid,
        "signal " + std::to_string(signo) + " posted" +
            (sender != nullptr ? " by pid " + std::to_string(sender->pid) : ""));
  return Status::Ok();
}

void Kernel::DeliverPendingSignals() {
  for (size_t i = 0; i < procs_.size(); ++i) {
    Proc& p = *procs_[i];
    if (!p.Alive() || p.sig_pending == 0) continue;
    for (int signo = 1; signo < vm::abi::kNSig && p.Alive(); ++signo) {
      const uint64_t bit = uint64_t{1} << signo;
      if ((p.sig_pending & bit) == 0) continue;
      SignalDisposition d = p.sig_dispositions[static_cast<size_t>(signo)];
      if (Unblockable(signo)) d.action = SignalDisposition::Action::kDefault;
      switch (d.action) {
        case SignalDisposition::Action::kIgnore:
          p.sig_pending &= ~bit;
          break;
        case SignalDisposition::Action::kCatch:
          if (p.kind == ProcKind::kVm) {
            // Left pending; RunVmProc delivers to the user handler. A blocked
            // process is woken so the handler runs now — its pc was rewound onto
            // the SYS instruction when it blocked, so the interrupted call
            // restarts afterwards (BSD restartable-syscall semantics).
            if (p.state == ProcState::kBlocked) {
              p.state = ProcState::kRunnable;
              p.unblock_check = nullptr;
            }
          } else {
            // Native (tool) processes have no user-mode handlers.
            p.sig_pending &= ~bit;
          }
          break;
        case SignalDisposition::Action::kDefault:
          if (DefaultActionIgnores(signo)) {
            p.sig_pending &= ~bit;
          } else {
            p.sig_pending &= ~bit;
            DeliverSignal(p, signo);
          }
          break;
      }
    }
  }
}

void Kernel::DeliverSignal(Proc& p, int signo) {
  Trace(sim::TraceCategory::kSignal, p.pid, "delivering fatal signal " + std::to_string(signo));
  metrics_.Inc("kernel.signals_delivered");
  if (p.kind == ProcKind::kNative) {
    p.exit_info = ExitInfo{};
    p.exit_info.killed_by_signal = signo;
    p.sig_pending = 0;
    if (p.wake_timer != 0) {
      clock_->CancelTimer(p.wake_timer);
      p.wake_timer = 0;
    }
    if (p.native != nullptr) {
      p.native->RequestKill();
      // Make it runnable so the scheduler resumes (and thereby unwinds) it.
      p.state = ProcState::kRunnable;
      p.unblock_check = nullptr;
    } else {
      ExitInfo info = p.exit_info;
      TerminateProc(p, info);
    }
    return;
  }
  // VM processes.
  if (signo == Sig::kSigDump) {
    StartMigrationDump(p);
  } else if (DefaultActionDumpsCore(signo)) {
    StartCoreDump(p, signo);
  } else {
    ExitInfo info;
    info.killed_by_signal = signo;
    TerminateProc(p, info);
  }
}

void Kernel::StartMigrationDump(Proc& p) {
  assert(p.kind == ProcKind::kVm);
  p.sig_pending = 0;
  p.dump_failed = false;  // a fresh attempt; set again only if this one aborts
  if (!hooks_.sigdump) {
    // Kernel without the migration additions: SIGDUMP just kills.
    ExitInfo info;
    info.killed_by_signal = Sig::kSigDump;
    TerminateProc(p, info);
    return;
  }
  Result<PreparedDump> prepared = hooks_.sigdump(*this, p);
  if (!prepared.ok()) {
    Trace(sim::TraceCategory::kMigration, p.pid,
          std::string("SIGDUMP failed: ") + std::string(ErrnoName(prepared.error())));
    ExitInfo info;
    info.killed_by_signal = Sig::kSigDump;
    TerminateProc(p, info);
    return;
  }
  ChargeCpu(p, prepared->cpu);
  metrics_.Inc("migration.dumps_started");
  metrics_.Observe("migration.dump_ns", prepared->cpu + prepared->wait);
  if (health_monitor_ != nullptr && health_monitor_->enabled()) {
    int64_t dump_bytes = 0;
    for (const auto& [path, contents] : prepared->files) {
      dump_bytes += static_cast<int64_t>(contents.size());
    }
    health_monitor_->Observe(hostname_, "migration.dump_ns",
                             static_cast<double>(prepared->cpu + prepared->wait));
    health_monitor_->Observe(hostname_, "migration.dump_bytes",
                             static_cast<double>(dump_bytes));
  }
  // The dying process spends (cpu + wait) producing the three files; they become
  // visible — and the process exits — when the dump completes. This is why
  // dumpproc has to poll for a.outXXXXX (Section 6.2).
  if (p.wake_timer != 0) clock_->CancelTimer(p.wake_timer);
  p.state = ProcState::kSleeping;
  p.unblock_check = nullptr;
  const int32_t pid = p.pid;
  Trace(sim::TraceCategory::kMigration, pid, "SIGDUMP: dumping process state");
  // The dump is asynchronous (the process sleeps while the files are written), so
  // the span cannot be a scope on this stack — it closes inside the timer.
  const uint64_t span_id =
      spans_ != nullptr
          ? spans_->Begin("dump", hostname_, pid, p.trace_id, p.trace_parent_span)
          : 0;
  p.wake_timer = clock_->CallAfter(
      prepared->cpu + prepared->wait,
      [this, pid, span_id, files = std::move(prepared->files)] {
        Proc* proc = FindProc(pid);
        if (proc == nullptr || proc->state != ProcState::kSleeping) return;  // killed
        proc->wake_timer = 0;
        // Write the dump, subject to injected disk-full and corruption faults.
        // On any failure the partial files are removed and the process resumes
        // — a dump that cannot land intact must never kill its process.
        bool aborted = false;
        std::vector<std::pair<std::string, std::string>> written;
        for (const auto& [path, contents] : files) {
          if (faults_ != nullptr && faults_->DiskFull(hostname_, &metrics_)) {
            Trace(sim::TraceCategory::kMigration, pid,
                  "dump aborted: disk full writing " + path);
            aborted = true;
            break;
          }
          std::string bytes = contents;
          if (faults_ != nullptr && faults_->CorruptsDump(&metrics_)) {
            faults_->CorruptBytes(&bytes);
            Trace(sim::TraceCategory::kMigration, pid, "dump file corrupted " + path);
          }
          vfs_->SetupCreateFile(path, bytes, proc->creds.uid, 0600);  // owner-only: the
          // restart permission model rests on dump-file access
          written.emplace_back(path, std::move(bytes));
          Trace(sim::TraceCategory::kMigration, pid, "dump file " + path);
        }
        if (!aborted && hooks_.verify_dump && !hooks_.verify_dump(written)) {
          Trace(sim::TraceCategory::kMigration, pid,
                "dump aborted: verification failed");
          aborted = true;
        }
        if (aborted) {
          for (const auto& wf : written) vfs_->SetupUnlink(wf.first);
          metrics_.Inc("migration.dump_aborts");
          if (spans_ != nullptr) spans_->End(span_id);
          if (recorder_ != nullptr && recorder_->enabled()) {
            recorder_->Dump(hostname_, proc->trace_id,
                            "dump aborted for pid " + std::to_string(pid) + " phase=dump");
          }
          proc->state = ProcState::kRunnable;  // resume; the process is not lost
          proc->unblock_check = nullptr;
          // Nothing can be written to disk to announce the failure (the disk
          // may be the problem), so record it on the proc where dumpfailed()
          // finds it.
          proc->dump_failed = true;
          return;
        }
        if (spans_ != nullptr) spans_->End(span_id);
        ExitInfo info;
        info.killed_by_signal = Sig::kSigDump;
        info.migration_dumped = true;
        TerminateProc(*proc, info);
      });
}

void Kernel::StartCoreDump(Proc& p, int signo) {
  assert(p.kind == ProcKind::kVm);
  p.sig_pending = 0;
  CoreFile core;
  core.cpu = p.vm->cpu;
  core.data = p.vm->data;
  core.stack = p.vm->StackContents();
  std::string bytes = core.Serialize();

  const auto io = costs_->DiskIo(static_cast<int64_t>(bytes.size()));
  const sim::Nanos cpu_cost =
      io.cpu + costs_->file_table_slot + costs_->namei_component + costs_->syscall_entry;
  ChargeCpu(p, cpu_cost);

  // Write "core" in the process's current directory when the I/O completes.
  vfs::InodePtr dir = p.cwd.empty() ? fs_->root() : p.cwd.dir();
  if (p.wake_timer != 0) clock_->CancelTimer(p.wake_timer);
  p.state = ProcState::kSleeping;
  p.unblock_check = nullptr;
  const int32_t pid = p.pid;
  p.wake_timer = clock_->CallAfter(
      cpu_cost + io.wait, [this, pid, signo, dir, bytes = std::move(bytes)] {
        Proc* proc = FindProc(pid);
        if (proc == nullptr || proc->state != ProcState::kSleeping) return;
        proc->wake_timer = 0;
        dir->entries.erase("core");
        vfs::Filesystem* owner = dir->fs;
        vfs::InodePtr file = owner->NewRegular(proc->creds.uid, 0600);
        file->data = bytes;
        const Status st = owner->Link(dir, "core", file);
        (void)st;
        ExitInfo info;
        info.killed_by_signal = signo;
        info.core_dumped = true;
        TerminateProc(*proc, info);
      });
  Trace(sim::TraceCategory::kSignal, pid, "dumping core (signal " + std::to_string(signo) + ")");
}

void Kernel::VmFault(Proc& p, vm::Fault fault) {
  int signo;
  switch (fault) {
    case vm::Fault::kIllegalInstruction:
    case vm::Fault::kIsaViolation:
      signo = Sig::kSigIll;
      break;
    case vm::Fault::kDivideByZero:
      signo = Sig::kSigFpe;
      break;
    default:
      signo = Sig::kSigSegv;
      break;
  }
  Trace(sim::TraceCategory::kSignal, p.pid,
        std::string("fault: ") + std::string(vm::FaultName(fault)));
  StartCoreDump(p, signo);
}

}  // namespace pmig::kernel
