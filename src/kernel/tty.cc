#include "src/kernel/tty.h"

#include <algorithm>

namespace pmig::kernel {

void Tty::Type(std::string_view text) {
  for (char c : text) {
    if ((flags_ & vm::abi::kTtyCrMod) != 0 && c == '\r') c = '\n';
    input_.push_back(c);
  }
  if (echo() && !raw()) {
    AppendOutput(text);
  }
}

bool Tty::InputReady() const {
  if (input_.empty()) return false;
  if (raw() || cbreak()) return true;
  return std::find(input_.begin(), input_.end(), '\n') != input_.end();
}

std::string Tty::ConsumeInput(int64_t max) {
  std::string out;
  if (max <= 0) return out;
  if (raw() || cbreak()) {
    while (!input_.empty() && static_cast<int64_t>(out.size()) < max) {
      out.push_back(input_.front());
      input_.pop_front();
    }
    return out;
  }
  // Cooked: return up to one line.
  while (!input_.empty() && static_cast<int64_t>(out.size()) < max) {
    const char c = input_.front();
    input_.pop_front();
    out.push_back(c);
    if (c == '\n') break;
  }
  return out;
}

void Tty::AppendOutput(std::string_view text) {
  for (const char c : text) {
    if (!raw() && (flags_ & vm::abi::kTtyCrMod) != 0 && c == '\n') {
      output_ += "\r\n";
    } else {
      output_.push_back(c);
    }
  }
}

}  // namespace pmig::kernel
