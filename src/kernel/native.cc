#include "src/kernel/native.h"

#include <utility>

namespace pmig::kernel {

NativeTask::~NativeTask() {
  if (thread_.joinable()) {
    if (!finished_) {
      RequestKill();
      while (!finished_) {
        Resume();
      }
    }
    thread_.join();
  }
}

void NativeTask::Start(Entry entry, SyscallApi* api) {
  thread_ = std::thread([this, entry = std::move(entry), api]() {
    AwaitTurn();
    int code = 0;
    try {
      if (kill_requested_) throw KilledSignal{};
      code = entry(*api);
    } catch (const ExitRequest& e) {
      code = e.code;
    } catch (const KilledSignal&) {
      was_killed_ = true;
    } catch (const BecameVm&) {
      became_vm_ = true;
    }
    std::unique_lock<std::mutex> lock(mutex_);
    exit_code_ = code;
    finished_ = true;
    turn_ = Turn::kScheduler;
    cv_.notify_all();
  });
}

void NativeTask::Resume() {
  std::unique_lock<std::mutex> lock(mutex_);
  if (finished_) return;
  turn_ = Turn::kTask;
  cv_.notify_all();
  cv_.wait(lock, [this] { return turn_ == Turn::kScheduler; });
}

void NativeTask::Yield() {
  HandToScheduler();
  if (kill_requested_) throw KilledSignal{};
}

void NativeTask::HandToScheduler() {
  std::unique_lock<std::mutex> lock(mutex_);
  turn_ = Turn::kScheduler;
  cv_.notify_all();
  cv_.wait(lock, [this] { return turn_ == Turn::kTask; });
}

void NativeTask::AwaitTurn() {
  std::unique_lock<std::mutex> lock(mutex_);
  cv_.wait(lock, [this] { return turn_ == Turn::kTask; });
}

}  // namespace pmig::kernel
