// Evacuating a machine that is about to go down — the paper's opening use case.
//
// brick is running a mix of work: an interactive counter, two batch hogs, and a
// socket-holding process that Section 7 says cannot move. The operator evacuates
// brick onto schooner, powers brick off, and the movable work continues.
//
// Build & run:  ./build/examples/evacuation

#include <cstdio>

#include "src/apps/evacuate.h"
#include "src/cluster/testbed.h"

using namespace pmig;
using testbed::kUserUid;
using testbed::Testbed;
using testbed::TestbedOptions;

namespace {

void PrintPlacement(Testbed& world) {
  for (const auto& host : world.cluster().hosts()) {
    std::printf("  %-9s%s:", host->hostname().c_str(), host->down() ? " (DOWN)" : "");
    for (kernel::Proc* p : host->ListProcs()) {
      if (p->kind == kernel::ProcKind::kVm && p->Alive()) {
        std::printf("  %s[%d]", p->command.c_str(), p->pid);
      }
    }
    std::printf("\n");
  }
}

}  // namespace

int main() {
  TestbedOptions options;
  options.daemons = true;  // evacuation goes through the migration daemons
  Testbed world(options);

  std::printf("== Evacuating brick before shutdown ==\n\n");
  const int32_t counter = world.StartVm("brick", "/bin/counter");
  world.RunUntilBlocked("brick", counter);
  world.console("brick")->Type("work in progress\n");
  world.RunUntilBlocked("brick", counter);
  world.StartVm("brick", "/bin/hog", {"hog", "30000000"});
  world.StartVm("brick", "/bin/hog", {"hog", "30000000"});
  const int32_t socketer = world.StartVm("brick", "/bin/socketer");
  world.RunUntilBlocked("brick", socketer);

  std::printf("before:\n");
  PrintPlacement(world);

  auto report = std::make_shared<apps::EvacuationReport>();
  net::Network* net = &world.cluster().network();
  kernel::SpawnOptions opts;  // root, from the machine that will survive
  opts.tty = world.console("schooner");
  const int32_t ev = world.host("schooner").SpawnNative(
      "evacuate",
      [report, net](kernel::SyscallApi& api) {
        *report = apps::EvacuateHost(api, *net, "brick", "schooner");
        return 0;
      },
      opts);
  world.RunUntilExited("schooner", ev, sim::Seconds(600));
  std::printf("\nevacuation: %zu moved, %zu unmovable (sockets/children), %zu failed\n",
              report->moved.size(), report->unmovable.size(), report->failed.size());

  world.cluster().SetHostDown("brick", true);
  std::printf("\nbrick powered off. after:\n");
  PrintPlacement(world);

  // The migrated counter still answers on schooner's console.
  const int32_t moved = world.FindPidByCommand("schooner", "migrated");
  if (moved > 0) {
    world.RunUntilBlocked("schooner", moved);
    world.console("schooner")->Type("still here\n");
    world.cluster().RunUntil([&] {
      return world.console("schooner")->PlainOutput().find("r=3 s=3 k=3") !=
             std::string::npos;
    });
    std::printf("\nthe counter answered on schooner:\n%s\n",
                world.console("schooner")->PlainOutput().c_str());
  }
  std::printf("(the socketer could not be moved — Section 7 — and went down with brick)\n");
  return 0;
}
