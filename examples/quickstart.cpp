// Quickstart: the Section 4.2 user interaction, as a program.
//
// Boots a two-workstation cluster (brick and schooner, NFS-connected), starts the
// paper's counter program on brick, feeds it a line, then moves it to schooner
// with `migrate -p <pid> -f brick -t schooner` — typed on schooner, as the paper
// recommends, so the process lands on schooner's terminal with its modes intact.
//
// Build & run:  ./build/examples/quickstart

#include <cstdio>

#include "src/cluster/testbed.h"

using pmig::testbed::kUserUid;
using pmig::testbed::Testbed;

int main() {
  Testbed world;  // brick + schooner, migration installed, /bin programs ready

  std::printf("== A process migration implementation for a (simulated) Unix system ==\n\n");

  // Start the counter program on brick's console.
  const int32_t pid = world.StartVm("brick", "/bin/counter");
  world.RunUntilBlocked("brick", pid);
  std::printf("[brick] started /bin/counter as pid %d\n", pid);

  world.console("brick")->Type("hello from brick\n");
  world.RunUntilBlocked("brick", pid);
  std::printf("[brick] console so far:\n%s\n", world.console("brick")->PlainOutput().c_str());

  // Move it: migrate typed on schooner.
  std::printf("[schooner] $ migrate -p %d -f brick -t schooner\n", pid);
  const int32_t mig = world.StartTool(
      "schooner", "migrate",
      {"-p", std::to_string(pid), "-f", "brick", "-t", "schooner"}, kUserUid,
      world.console("schooner"));
  world.RunUntilExited("schooner", mig, pmig::sim::Seconds(300));
  std::printf("[schooner] migrate exited with %d after %.1f virtual seconds\n",
              world.ExitInfoOf("schooner", mig).exit_code,
              pmig::sim::ToSeconds(world.cluster().clock().now()));

  const int32_t new_pid = world.FindPidByCommand("schooner", "migrated");
  if (new_pid < 0) {
    std::printf("migration failed!\n");
    return 1;
  }
  std::printf("[schooner] process restarted as pid %d (was %d on brick)\n\n", new_pid, pid);

  // Keep talking to it — the counters continue where they stopped.
  world.RunUntilBlocked("schooner", new_pid);
  world.console("schooner")->Type("hello from schooner\n");
  world.RunUntilBlocked("schooner", new_pid);
  std::printf("[schooner] console:\n%s\n", world.console("schooner")->PlainOutput().c_str());

  // The output file kept appending across the move (it lives on brick's disk,
  // reached over NFS from schooner).
  std::printf("[brick] /u/user/counter.out:\n%s\n",
              world.FileContents("brick", "/u/user/counter.out").c_str());

  std::printf("The register, static, and stack counters carried straight across the\n"
              "migration, and the output file kept appending at the right offset.\n");
  return 0;
}
