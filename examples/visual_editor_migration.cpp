// Migrating a visually oriented program (Sections 4.1 and 7).
//
// A raw-mode "screen editor" is migrated two ways:
//   1. the right way — migrate typed on the DESTINATION, so restart runs locally
//      and re-applies the terminal modes ("the best option in this case");
//   2. the wrong way — migrate typed on the SOURCE, so restart runs under rsh,
//      which has no terminal: the raw/noecho modes are lost and "the process will
//      become useless".
//
// Build & run:  ./build/examples/visual_editor_migration

#include <cstdio>

#include "src/cluster/testbed.h"

using namespace pmig;
using testbed::kUserUid;
using testbed::Testbed;

namespace {

// Starts the editor on brick and types a couple of keys. Returns its pid.
int32_t StartEditor(Testbed& world) {
  const int32_t pid = world.StartVm("brick", "/bin/editor");
  world.cluster().RunUntil([&] {
    const kernel::Proc* p = world.host("brick").FindProc(pid);
    return p != nullptr && p->state == kernel::ProcState::kBlocked;
  });
  world.console("brick")->Type("hi");
  world.cluster().RunFor(sim::Seconds(1));
  return pid;
}

void Report(Testbed& world, const char* label) {
  const int32_t pid = world.FindPidByCommand("schooner", "migrated");
  const bool raw = world.console("schooner")->raw();
  std::printf("%s\n", label);
  if (pid < 0) {
    std::printf("  migration FAILED\n\n");
    return;
  }
  kernel::Proc* p = world.host("schooner").FindProc(pid);
  const bool on_terminal =
      p != nullptr && p->fds[0] != nullptr && p->fds[0]->inode != nullptr &&
      p->fds[0]->inode->device != nullptr &&
      std::string(p->fds[0]->inode->device->DeviceName()) != "null";
  std::printf("  editor alive as pid %d on schooner\n", pid);
  std::printf("  schooner console raw mode: %s\n", raw ? "YES (usable)" : "no (lost)");
  std::printf("  editor attached to: %s\n",
              on_terminal ? "schooner's terminal" : "/dev/null (useless)");
  if (on_terminal && raw) {
    world.console("schooner")->Type("x");
    world.cluster().RunFor(sim::Seconds(1));
    std::printf("  keystroke echo test: %s\n\n",
                world.console("schooner")->PlainOutput().find("[x]") != std::string::npos
                    ? "editor responded with [x]"
                    : "no response");
  } else {
    std::printf("\n");
  }
}

}  // namespace

int main() {
  std::printf("== Migrating a raw-mode screen editor ==\n\n");

  {
    Testbed world;
    const int32_t pid = StartEditor(world);
    // Typed on SCHOONER (the destination): restart runs locally there.
    const int32_t mig = world.StartTool(
        "schooner", "migrate",
        {"-p", std::to_string(pid), "-f", "brick", "-t", "schooner"}, kUserUid,
        world.console("schooner"));
    world.RunUntilExited("schooner", mig, sim::Seconds(300));
    Report(world, "Case 1: migrate typed on the destination (the paper's advice)");
  }
  {
    Testbed world;
    const int32_t pid = StartEditor(world);
    // Typed on BRICK (the source): restart reaches schooner via rsh.
    const int32_t mig = world.StartTool(
        "brick", "migrate",
        {"-p", std::to_string(pid), "-f", "brick", "-t", "schooner"}, kUserUid,
        world.console("brick"));
    world.RunUntilExited("brick", mig, sim::Seconds(300));
    Report(world, "Case 2: migrate typed on the source (restart under rsh)");
  }

  std::printf("Because of the way rsh is implemented, certain terminal modes can not be\n"
              "preserved when moving a process to a remote host (Section 4.1).\n");
  return 0;
}
