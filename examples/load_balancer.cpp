// Load balancing with process migration (Section 8, second application).
//
// Six CPU-bound jobs pile up on brick in a three-machine cluster. The balancer
// surveys per-machine load and migrates the oldest eligible job from the busiest
// machine to the idlest one, through the migration daemons (rsh would be "too
// slow in terms of real time response" — the paper's words).
//
// Build & run:  ./build/examples/load_balancer

#include <cstdio>

#include "src/apps/load_balancer.h"
#include "src/cluster/testbed.h"

using namespace pmig;
using testbed::Testbed;
using testbed::TestbedOptions;

namespace {

void PrintLoads(Testbed& world, const char* when) {
  std::printf("%-18s", when);
  for (const auto& [host, load] : apps::SurveyLoad(world.cluster().network())) {
    std::printf("  %s=%d", host.c_str(), load);
  }
  std::printf("\n");
}

}  // namespace

int main() {
  TestbedOptions options;
  options.num_hosts = 3;
  options.daemons = true;  // migration daemons on every machine
  options.metrics = true;  // the balancer reads each scheduler's runnable gauge
  Testbed world(options);

  std::printf("== Load balancing by process migration ==\n\n");
  for (int i = 0; i < 6; ++i) {
    world.StartVm("brick", "/bin/hog", {"hog", "3000000"});
  }
  world.cluster().RunFor(sim::Seconds(3));
  PrintLoads(world, "before balancing:");

  auto stats = std::make_shared<apps::LoadBalancerStats>();
  net::Network* net = &world.cluster().network();
  kernel::SpawnOptions opts;  // root
  world.host("brick").SpawnNative(
      "balancer",
      [net, stats](kernel::SyscallApi& api) {
        apps::LoadBalancerOptions lb;
        lb.poll_interval = sim::Seconds(2);
        lb.min_age = sim::Seconds(1);
        lb.use_daemon = true;
        lb.max_rounds = 100;
        *stats = apps::RunLoadBalancer(api, *net, lb);
        return 0;
      },
      opts);

  // Watch the loads while the balancer works.
  for (int tick = 0; tick < 5; ++tick) {
    world.cluster().RunFor(sim::Seconds(4));
    PrintLoads(world, ("t+" + std::to_string((tick + 1) * 4) + "s:").c_str());
  }

  world.cluster().RunUntilIdle(sim::Seconds(600));
  std::printf("\nall jobs finished at t=%.1fs after %d migration(s) in %d round(s)\n",
              sim::ToSeconds(world.cluster().clock().now()), stats->migrations,
              stats->rounds);
  std::printf("(compare bench/ablation_loadbalance for makespan vs an unbalanced run)\n");
  return 0;
}
