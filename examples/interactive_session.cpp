// A scripted interactive session: two users at two workstations, driving the
// whole system through msh shells — exactly the workflow Section 4.2 narrates,
// with ps thrown in to watch the process move.
//
// Build & run:  ./build/examples/interactive_session

#include <cstdio>

#include "src/cluster/testbed.h"

using namespace pmig;
using testbed::kUserUid;
using testbed::Testbed;

namespace {

size_t PromptCount(Testbed& world, std::string_view host) {
  const std::string out = world.console(host)->PlainOutput();
  size_t n = 0;
  for (size_t at = out.find("$ "); at != std::string::npos; at = out.find("$ ", at + 2)) ++n;
  return n;
}

// Types a shell command and waits for the next prompt.
void Sh(Testbed& world, std::string_view host, const std::string& line) {
  const size_t before = PromptCount(world, host);
  world.console(host)->Type(line + "\n");
  world.cluster().RunUntil(
      [&world, host, before] { return PromptCount(world, host) > before; },
      sim::Seconds(300));
}

void ShowConsole(Testbed& world, std::string_view host) {
  std::printf("---- %.*s console ----\n%s\n", static_cast<int>(host.size()), host.data(),
              world.console(host)->PlainOutput().c_str());
  world.console(host)->ClearOutput();
}

}  // namespace

int main() {
  Testbed world;
  const int32_t sh_brick = world.StartTool("brick", "sh", {}, kUserUid,
                                           world.console("brick"));
  world.RunUntilBlocked("brick", sh_brick);

  // The user on brick runs the counter in the FOREGROUND: the shell hands it the
  // terminal and waits, so typed lines go to the program.
  Sh(world, "brick", "cd /u/user");
  world.console("brick")->Type("counter\n");
  world.cluster().RunUntil(
      [&] { return world.FindPidByCommand("brick", "counter") > 0; });
  const int32_t counter = world.FindPidByCommand("brick", "counter");
  world.RunUntilBlocked("brick", counter);
  world.console("brick")->Type("first line\n");
  world.RunUntilBlocked("brick", counter);
  ShowConsole(world, "brick");

  // "we must determine its process id, which can easily be done using ps" — and
  // since the console belongs to the counter, this happens on ANOTHER terminal
  // (Section 4.2: "go to another terminal to type the dumpproc command").
  const int32_t sh_side = world.StartTool("brick", "sh", {}, kUserUid,
                                          world.tty("brick", "ttyp0"));
  world.RunUntilBlocked("brick", sh_side);
  const size_t before = [&] {
    const std::string out = world.tty("brick", "ttyp0")->PlainOutput();
    size_t n = 0;
    for (size_t at = out.find("$ "); at != std::string::npos; at = out.find("$ ", at + 2))
      ++n;
    return n;
  }();
  world.tty("brick", "ttyp0")->Type("ps\n");
  world.tty("brick", "ttyp0")->Type("dumpproc -p " + std::to_string(counter) + "\n");
  world.cluster().RunUntil([&] {
    const std::string out = world.tty("brick", "ttyp0")->PlainOutput();
    size_t n = 0;
    for (size_t at = out.find("$ "); at != std::string::npos; at = out.find("$ ", at + 2))
      ++n;
    return n >= before + 2;
  }, sim::Seconds(300));
  world.RunUntilExited("brick", counter);
  std::printf(">>> on brick's second window:\n---- brick ttyp0 ----\n%s\n",
              world.tty("brick", "ttyp0")->PlainOutput().c_str());

  // The user walks over to schooner and restarts it there, in the foreground.
  const int32_t sh_schooner = world.StartTool("schooner", "sh", {}, kUserUid,
                                              world.console("schooner"));
  world.RunUntilBlocked("schooner", sh_schooner);
  std::printf(">>> user on schooner: restart -p %d -h brick\n\n", counter);
  world.console("schooner")->Type("restart -p " + std::to_string(counter) + " -h brick\n");
  world.cluster().RunUntil(
      [&] { return world.FindPidByCommand("schooner", "migrated") > 0; },
      sim::Seconds(300));
  const int32_t moved = world.FindPidByCommand("schooner", "migrated");
  world.RunUntilBlocked("schooner", moved);

  // Now the restored program owns schooner's terminal (the shell is waiting on
  // its foreground job); talk to it.
  world.console("schooner")->Type("typed on schooner\n");
  world.cluster().RunUntil([&] {
    return world.console("schooner")->PlainOutput().find("r=2 s=2 k=2") !=
           std::string::npos;
  });
  ShowConsole(world, "schooner");

  std::printf("counter.out (on brick, via NFS): %s",
              world.FileContents("brick", "/u/user/counter.out").c_str());
  std::printf("\nsession complete: the process moved hosts mid-conversation.\n");
  return 0;
}
