// Checkpointing a long-running job (Section 8, first application).
//
// A batch job runs on brick while checkpointd snapshots it every 10 virtual
// seconds into /ckpt. Halfway through, the machine "crashes" (we SIGKILL the
// job); the job is then restored from its latest checkpoint — including the
// contents of its open files — and runs to completion.
//
// Build & run:  ./build/examples/checkpoint_long_job

#include <cstdio>

#include "src/apps/checkpoint.h"
#include "src/cluster/testbed.h"

using namespace pmig;
using testbed::Testbed;

int main() {
  Testbed world;
  world.host("brick").vfs().SetupMkdirAll("/ckpt");

  std::printf("== Checkpointing a long-running job ==\n\n");

  // The job: a counter fed by a scripted "user" every few seconds.
  const int32_t pid = world.StartVm("brick", "/bin/counter");
  world.RunUntilBlocked("brick", pid);

  // checkpointd: snapshot every 10 s, up to 3 snapshots. It carries the job's
  // terminal so each restart can reattach the job to it.
  kernel::SpawnOptions opts;  // root
  opts.tty = world.console("brick");
  auto taken = std::make_shared<int>(0);
  world.host("brick").SpawnNative(
      "checkpointd",
      [pid, taken](kernel::SyscallApi& api) {
        apps::CheckpointdOptions options;
        options.pid = pid;
        options.dir = "/ckpt";
        options.interval = sim::Seconds(10);
        options.count = 3;
        *taken = apps::CheckpointDaemon(api, options);
        return 0;
      },
      opts);

  // The user types a line every ~7 virtual seconds while snapshots happen.
  for (int i = 1; i <= 4; ++i) {
    world.cluster().RunFor(sim::Seconds(7));
    const int32_t current = [&] {
      for (kernel::Proc* p : world.host("brick").ListProcs()) {
        if (p->kind == kernel::ProcKind::kVm && p->Alive()) return p->pid;
      }
      return -1;
    }();
    if (current < 0) continue;
    world.RunUntilBlocked("brick", current);
    world.console("brick")->Type("entry " + std::to_string(i) + "\n");
    world.RunUntilBlocked("brick", current);
  }
  world.cluster().RunUntilIdle(sim::Seconds(120));
  std::printf("checkpointd took %d snapshot(s); output so far:\n  %s\n", *taken,
              world.FileContents("brick", "/u/user/counter.out").c_str());

  // Crash: kill whatever incarnation of the job is running.
  for (kernel::Proc* p : world.host("brick").ListProcs()) {
    if (p->kind == kernel::ProcKind::kVm && p->Alive()) {
      std::printf("simulating a crash: SIGKILL pid %d\n", p->pid);
      const Status st = world.host("brick").PostSignal(p->pid, vm::abi::kSigKill, nullptr);
      (void)st;
    }
  }
  world.cluster().RunUntilIdle(sim::Seconds(60));

  // Restore from the last checkpoint.
  const int last = *taken - 1;
  std::printf("restoring checkpoint %d...\n", last);
  auto restored = std::make_shared<int32_t>(-1);
  const int32_t restorer = world.host("brick").SpawnNative(
      "restore",
      [last, restored](kernel::SyscallApi& api) {
        const Result<int32_t> r = apps::RestoreCheckpoint(api, "/ckpt", last);
        if (r.ok()) *restored = *r;
        return r.ok() ? 0 : 1;
      },
      opts);
  world.RunUntilExited("brick", restorer, sim::Seconds(300));
  if (*restored < 0) {
    std::printf("restore failed\n");
    return 1;
  }
  std::printf("restored as pid %d; output file rolled back to the checkpoint:\n  %s\n",
              *restored, world.FileContents("brick", "/u/user/counter.out").c_str());

  // The job continues from the checkpointed state.
  world.RunUntilBlocked("brick", *restored);
  world.console("brick")->Type("post-crash entry\n");
  world.RunUntilBlocked("brick", *restored);
  std::printf("after resuming:\n  %s\n",
              world.FileContents("brick", "/u/user/counter.out").c_str());
  return 0;
}
