// pmigsim — an interactive driver for the simulated cluster.
//
// Boots machines with shells on their consoles and bridges YOUR terminal to
// theirs: every line you type goes to the current machine's console; simulator
// output comes back. Directives starting with '@' control the simulation itself.
//
//   $ ./build/examples/pmigsim                  # brick + schooner
//   pmig(brick:console)> counter                 # run it in the foreground
//   pmig(brick:console)> hello                   # talk to it
//   pmig(brick:console)> @tty ttyp0              # "go to another terminal"
//   pmig(brick:ttyp0)> ps
//   pmig(brick:ttyp0)> dumpproc -p 103
//   pmig(brick:ttyp0)> @host schooner
//   pmig(schooner:ttyp0)> restart -p 103 -h brick
//   pmig(schooner:ttyp0)> carries on             # same process, new machine
//   pmig(schooner:ttyp0)> @quit
//
// Directives: @host <name>   switch machine
//             @tty <name>    switch window on this machine (console / ttyp0 — the
//                            paper's "go to another terminal" workflow)
//             @hosts         list machines and their processes
//             @run <secs>    advance virtual time without typing anything
//             @down <name> / @up <name>   power machines off/on
//             @type <text>   send text without a newline (for raw-mode programs)
//             @quit
//
// Also scriptable: pipe a command file into stdin.

#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <string>

#include "src/cluster/testbed.h"

using namespace pmig;
using testbed::kUserUid;
using testbed::Testbed;
using testbed::TestbedOptions;

namespace {

struct Session {
  Testbed world;
  std::string current = "brick";
  std::string tty_name = "console";
  std::map<std::string, size_t> printed;  // per host:tty, bytes already shown

  explicit Session(TestbedOptions options) : world(std::move(options)) {
    // A login shell on every terminal of every machine.
    for (const auto& host : world.cluster().hosts()) {
      for (const char* tty : {"console", "ttyp0"}) {
        const int32_t sh = world.StartTool(host->hostname(), "sh", {}, kUserUid,
                                           world.tty(host->hostname(), tty));
        world.RunUntilBlocked(host->hostname(), sh);
      }
    }
  }

  kernel::Tty* CurrentTty() { return world.tty(current, tty_name); }

  // Prints output of the current window that appeared since the last flush.
  void Flush() {
    const std::string out = CurrentTty()->PlainOutput();
    size_t& seen = printed[current + ":" + tty_name];
    if (out.size() > seen) {
      std::fwrite(out.data() + seen, 1, out.size() - seen, stdout);
      seen = out.size();
      std::fflush(stdout);
    }
  }

  void RunAndFlush(sim::Nanos duration) {
    world.cluster().RunFor(duration);
    Flush();
  }

  void ListHosts() {
    for (const auto& host : world.cluster().hosts()) {
      std::printf("%s%s%s\n", host->hostname().c_str(), host->down() ? " (down)" : "",
                  host->hostname() == current ? "  <- current" : "");
      for (kernel::Proc* p : host->ListProcs()) {
        std::printf("    %5d %-4s %s\n", p->pid,
                    p->kind == kernel::ProcKind::kVm ? "vm" : "sys", p->command.c_str());
      }
    }
  }
};

}  // namespace

int main(int argc, char** argv) {
  TestbedOptions options;
  options.num_hosts = 2;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--daemons") options.daemons = true;
    if (arg == "--metrics") options.metrics = true;  // pstat shows the counters
    if (arg == "--tracked") options.dirty_tracking = true;  // incremental dumps
    if (arg == "--health") options.health.anomaly_detection = true;  // phealth live
    if (arg == "--hosts" && i + 1 < argc) options.num_hosts = std::atoi(argv[++i]);
  }
  Session session(std::move(options));
  session.Flush();

  std::string line;
  for (;;) {
    std::printf("pmig(%s:%s)> ", session.current.c_str(), session.tty_name.c_str());
    std::fflush(stdout);
    if (!std::getline(std::cin, line)) break;

    if (line.rfind("@quit", 0) == 0) break;
    if (line.rfind("@hosts", 0) == 0) {
      session.ListHosts();
      continue;
    }
    if (line.rfind("@host ", 0) == 0) {
      const std::string name = line.substr(6);
      if (session.world.cluster().network().FindHost(name) != nullptr) {
        session.current = name;
        session.Flush();
      } else {
        std::printf("no such machine: %s\n", name.c_str());
      }
      continue;
    }
    if (line.rfind("@tty ", 0) == 0) {
      const std::string name = line.substr(5);
      if (session.world.tty(session.current, name) != nullptr) {
        session.tty_name = name;
        session.Flush();
      } else {
        std::printf("no such terminal: %s (try console or ttyp0)\n", name.c_str());
      }
      continue;
    }
    if (line.rfind("@run ", 0) == 0) {
      session.RunAndFlush(sim::Seconds(std::atoi(line.c_str() + 5)));
      continue;
    }
    if (line.rfind("@down ", 0) == 0) {
      session.world.cluster().SetHostDown(line.substr(6), true);
      std::printf("%s is down\n", line.substr(6).c_str());
      continue;
    }
    if (line.rfind("@up ", 0) == 0) {
      session.world.cluster().SetHostDown(line.substr(4), false);
      std::printf("%s is back\n", line.substr(4).c_str());
      continue;
    }
    if (line.rfind("@type ", 0) == 0) {
      session.CurrentTty()->Type(line.substr(6));
      session.RunAndFlush(sim::Seconds(2));
      continue;
    }
    if (!line.empty() && line[0] == '@') {
      std::printf("directives: @host @tty @hosts @run @down @up @type @quit\n");
      continue;
    }

    session.CurrentTty()->Type(line + "\n");
    // Give the machine a generous slice; long commands (rsh migrations!) need it.
    session.RunAndFlush(sim::Seconds(45));
  }
  std::printf("\nbye\n");
  return 0;
}
