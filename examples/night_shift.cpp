// The "CPU hogs at night" scheduler (Section 8, third application).
//
// Six batch jobs live on brick during the day so interactive users get the other
// machines. At dusk the night-shift controller spreads them across the cluster;
// at dawn it gathers the survivors back.
//
// Build & run:  ./build/examples/night_shift

#include <cstdio>

#include "src/apps/night_shift.h"
#include "src/cluster/testbed.h"

using namespace pmig;
using testbed::Testbed;
using testbed::TestbedOptions;

namespace {

constexpr int32_t kBatchUid = 999;

void PrintPlacement(Testbed& world, const char* when) {
  std::printf("%-10s", when);
  for (const auto& host : world.cluster().hosts()) {
    std::printf("  %s=%zu", host->hostname().c_str(),
                apps::BatchJobsOn(*host, kBatchUid).size());
  }
  std::printf("\n");
}

}  // namespace

int main() {
  TestbedOptions options;
  options.num_hosts = 3;
  options.daemons = true;
  Testbed world(options);

  std::printf("== Night-shift scheduling of CPU hogs ==\n\n");
  kernel::Kernel& brick = world.host("brick");
  for (int i = 0; i < 6; ++i) {
    kernel::SpawnOptions opts;
    opts.creds = {kBatchUid, 99, kBatchUid, 99};
    opts.cwd = "/tmp";
    const Result<int32_t> pid = brick.SpawnVm("/bin/hog", {"hog", "30000000"}, opts);
    if (!pid.ok()) return 1;
  }
  PrintPlacement(world, "day:");

  auto stats = std::make_shared<apps::NightShiftStats>();
  net::Network* net = &world.cluster().network();
  kernel::SpawnOptions opts;  // root
  world.host("brick").SpawnNative(
      "nightshiftd",
      [net, stats](kernel::SyscallApi& api) {
        apps::NightShiftOptions ns;
        ns.day_host = "brick";
        ns.batch_uid = kBatchUid;
        ns.night_length = sim::Seconds(40);
        ns.nights = 1;
        *stats = apps::RunNightShift(api, *net, ns);
        return 0;
      },
      opts);

  // Dusk happens immediately; sample placements during the night.
  world.cluster().RunFor(sim::Seconds(15));
  PrintPlacement(world, "night:");
  world.cluster().RunFor(sim::Seconds(60));
  PrintPlacement(world, "dawn:");

  world.cluster().RunUntilIdle(sim::Seconds(1200));
  std::printf("\nspread %d job(s) at dusk, gathered %d at dawn; all done at t=%.1fs\n",
              stats->spread_migrations, stats->gather_migrations,
              sim::ToSeconds(world.cluster().clock().now()));
  return 0;
}
