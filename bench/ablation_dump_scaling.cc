// Ablation C: dump and restart cost vs process size.
//
// SIGDUMP writes text+data (a.outXXXXX) plus stack; SIGQUIT's core writes only
// data+stack. The Figure 2 and 3 ratios are therefore direct functions of segment
// sizes. This sweep makes that dependence explicit: text-heavy processes make
// SIGDUMP comparatively expensive; data-heavy processes narrow the gap (the core
// file grows too).

#include "bench/bench_util.h"

namespace pmig::bench {
namespace {

struct Sizes {
  int text_instructions;
  int data_bytes;
};

struct DumpCosts {
  Measurement sigquit;
  Measurement sigdump;
  Measurement restart;
};

DumpCosts Measure(const Sizes& sizes) {
  TestbedOptions options;
  options.num_hosts = 1;
  Testbed world(options);
  const std::string padded =
      core::WithPadding(core::CounterProgramSource(), sizes.text_instructions,
                        sizes.data_bytes);
  core::InstallProgram(world.host("brick"), "/bin/sized", padded);

  DumpCosts costs;
  auto measure_kill = [&](int signo) {
    Testbed w(options);
    core::InstallProgram(w.host("brick"), "/bin/sized", padded);
    const int32_t pid = w.StartVm("brick", "/bin/sized");
    w.RunUntilBlocked("brick", pid);
    const sim::Nanos cpu0 = w.cluster().TotalCpu();
    const sim::Nanos t0 = w.cluster().clock().now();
    const Status st = w.host("brick").PostSignal(pid, signo, nullptr);
    (void)st;
    w.RunUntilExited("brick", pid);
    return Measurement{sim::ToMillis(w.cluster().TotalCpu() - cpu0),
                       sim::ToMillis(w.cluster().clock().now() - t0)};
  };
  costs.sigquit = measure_kill(vm::abi::kSigQuit);
  costs.sigdump = measure_kill(vm::abi::kSigDump);

  // Restart of the dumped image.
  {
    Testbed w(options);
    core::InstallProgram(w.host("brick"), "/bin/sized", padded);
    const int32_t pid = w.StartVm("brick", "/bin/sized");
    w.RunUntilBlocked("brick", pid);
    const Status st = w.host("brick").PostSignal(pid, vm::abi::kSigDump, nullptr);
    (void)st;
    w.RunUntilExited("brick", pid);
    const sim::Nanos cpu0 = w.cluster().TotalCpu();
    const sim::Nanos t0 = w.cluster().clock().now();
    const int32_t rs = w.StartTool("brick", "restart", {"-p", std::to_string(pid)},
                                   kUserUid, w.console("brick"));
    kernel::Kernel& k = w.host("brick");
    w.cluster().RunUntil([&k, rs] {
      const kernel::Proc* p = k.FindProc(rs);
      return p != nullptr && p->kind == kernel::ProcKind::kVm &&
             p->state == kernel::ProcState::kBlocked;
    });
    costs.restart = Measurement{sim::ToMillis(w.cluster().TotalCpu() - cpu0),
                                sim::ToMillis(w.cluster().clock().now() - t0)};
  }
  return costs;
}

}  // namespace
}  // namespace pmig::bench

int main(int argc, char** argv) {
  using namespace pmig::bench;
  ParseBenchFlags(&argc, argv);
  using pmig::sim::Nanos;
  namespace sim = pmig::sim;
  std::printf("\n=== Ablation C: dump/restart cost vs process size ===\n");
  std::printf("%10s %10s | %12s %12s %8s | %12s\n", "text (KB)", "data (KB)",
              "SIGQUIT (ms)", "SIGDUMP (ms)", "ratio", "restart (ms)");
  const Sizes sweep[] = {
      {0, 0},        // the bare counter
      {500, 2048},   // small C program
      {1400, 5600},  // the Figure 2/3 configuration
      {1400, 16384}, // data-heavy (narrows the SIGDUMP/SIGQUIT gap)
      {4000, 5600},  // text-heavy (widens it)
  };
  for (const Sizes& sizes : sweep) {
    const DumpCosts costs = Measure(sizes);
    std::printf("%10.1f %10.1f | %12.1f %12.1f %7.2fx | %12.1f\n",
                sizes.text_instructions * 8 / 1024.0, sizes.data_bytes / 1024.0,
                costs.sigquit.real_ms, costs.sigdump.real_ms,
                costs.sigdump.real_ms / costs.sigquit.real_ms, costs.restart.real_ms);
  }
  std::printf("\n(text grows only the SIGDUMP side — the a.out carries text+data while the\n"
              " core carries data+stack; the paper's ~3x comes from a typical C program's\n"
              " text:data proportions)\n");

  RegisterSim("ablationC/fig2_size/sigdump",
              [] { return Measure({1400, 5600}).sigdump; });
  RegisterSim("ablationC/text_heavy/sigdump",
              [] { return Measure({4000, 5600}).sigdump; });
  RegisterSim("ablationC/data_heavy/sigdump",
              [] { return Measure({1400, 16384}).sigdump; });
  return RunBenchmarks(argc, argv);
}
