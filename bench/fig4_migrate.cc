// Figure 4: real-time performance of the migrate application, compared to running
// dumpproc and restart separately on the appropriate machines (Section 6.4).
//
// Four placements relative to the machine where migrate is typed (L = that
// machine, R = a remote machine): L->L, L->R, R->L, R->R. migrate runs dumpproc
// and restart through rsh when either end is remote, and rsh's connection setup
// dominates: the paper reports up to ~10x the separate-command baseline, "almost
// half a minute", for the doubly remote case.

#include "bench/bench_util.h"

namespace pmig::bench {
namespace {

// The machine migrate is typed on is "home". Source/destination pick between home
// and the two remotes.
struct Placement {
  std::string name;
  std::string from;
  std::string to;
  std::string paper_note;
};

const Placement kPlacements[] = {
    {"local -> local  (L->L)", "brick", "brick", "~1x"},
    {"local -> remote (L->R)", "brick", "schooner", "one rsh: several x"},
    {"remote -> local (R->L)", "schooner", "brick", "one rsh: several x"},
    {"remote -> remote(R->R)", "schooner", "brador", "up to ~10x, ~half a minute"},
};

Testbed MakeWorld(bool instrumented = false) {
  TestbedOptions options;
  options.num_hosts = 3;  // brick (home), schooner, brador (also file server)
  options.file_server_home = true;
  options.metrics = true;  // for bytes_moved; observation-only, times unchanged
  if (instrumented) EnableAllInstrumentation(&options);
  return Testbed(options);
}

// Baseline: dumpproc on the source machine, restart on the destination machine,
// each run directly where it belongs.
Measurement MeasureSeparate(const Placement& placement, bool instrumented = false) {
  Testbed world = MakeWorld(instrumented);
  InstallPaddedCounter(world);
  const int32_t pid = StartBlockedCounter(world, placement.from);

  const sim::Nanos cpu0 = world.cluster().TotalCpu();
  const sim::Nanos t0 = world.cluster().clock().now();
  const int64_t bytes0 = TotalBytesMoved(world);
  const int32_t dp = world.StartTool(placement.from, "dumpproc", {"-p", std::to_string(pid)});
  world.RunUntilExited(placement.from, dp);
  const int32_t rs = world.StartTool(
      placement.to, "restart", {"-p", std::to_string(pid), "-h", placement.from}, kUserUid,
      world.console(placement.to));
  kernel::Kernel& dst = world.host(placement.to);
  world.cluster().RunUntil([&dst, rs] {
    const kernel::Proc* p = dst.FindProc(rs);
    return p == nullptr || !p->Alive() ||
           (p->kind == kernel::ProcKind::kVm && p->state == kernel::ProcState::kBlocked);
  });
  return Measurement{sim::ToMillis(world.cluster().TotalCpu() - cpu0),
                     sim::ToMillis(world.cluster().clock().now() - t0),
                     TotalBytesMoved(world) - bytes0};
}

Measurement MeasureMigrate(const Placement& placement, bool use_daemon,
                           bool instrumented = false) {
  TestbedOptions options;
  options.num_hosts = 3;
  options.file_server_home = true;
  options.daemons = use_daemon;
  options.metrics = true;  // for bytes_moved; observation-only, times unchanged
  if (instrumented) EnableAllInstrumentation(&options);
  Testbed world(options);
  InstallPaddedCounter(world);
  const int32_t pid = StartBlockedCounter(world, placement.from);

  std::vector<std::string> args = {"-p", std::to_string(pid), "-f", placement.from,
                                   "-t", placement.to};
  if (use_daemon) args.push_back("--daemon");

  const sim::Nanos cpu0 = world.cluster().TotalCpu();
  const sim::Nanos t0 = world.cluster().clock().now();
  const int64_t bytes0 = TotalBytesMoved(world);
  const int32_t mig = world.StartTool("brick", "migrate", args, kUserUid,
                                      world.console("brick"));
  world.RunUntilExited("brick", mig, sim::Seconds(600));
  return Measurement{sim::ToMillis(world.cluster().TotalCpu() - cpu0),
                     sim::ToMillis(world.cluster().clock().now() - t0),
                     TotalBytesMoved(world) - bytes0};
}

}  // namespace
}  // namespace pmig::bench

namespace pmig::bench {
namespace {

// With --report and/or --trace-out: one instrumented remote-to-remote migrate
// (metrics, spans, tracing, flight recorder, sampler all on) whose full cluster
// report — per-host metrics, spans with trace ids, per-phase and per-trace
// breakdowns — is appended to the report file, and whose Chrome trace-event
// timeline is written to the trace file (open it in Perfetto). Run separately
// from the measured scenarios so the figure numbers above stay bit-identical to
// an uninstrumented run.
void AppendInstrumentedReport() {
  if (ReportPath().empty() && TraceOutPath().empty()) return;
  TestbedOptions options;
  options.num_hosts = 3;
  options.file_server_home = true;
  EnableAllInstrumentation(&options);
  Testbed world(options);
  InstallPaddedCounter(world);
  const int32_t pid = StartBlockedCounter(world, "schooner");
  const int32_t mig = world.StartTool(
      "brick", "migrate",
      {"-p", std::to_string(pid), "-f", "schooner", "-t", "brador"}, kUserUid,
      world.console("brick"));
  world.RunUntilExited("brick", mig, sim::Seconds(600));
  if (!ReportPath().empty()) world.cluster().WriteReport(ReportPath());
  if (!TraceOutPath().empty()) world.cluster().WriteChromeTrace(TraceOutPath());
}

}  // namespace
}  // namespace pmig::bench

int main(int argc, char** argv) {
  using namespace pmig::bench;
  ParseBenchFlags(&argc, argv);

  // --check: the bit-identical gate. Each placement re-run with the whole
  // observability layer on (trace, spans, flight recorder, sampler) must
  // reproduce the plain run's measurements exactly.
  if (ParseBoolFlag(&argc, argv, "--check")) {
    int failures = 0;
    const auto compare = [&failures](const std::string& name, const Measurement& plain,
                                     const Measurement& instrumented) {
      const bool ok = SameMeasurement(plain, instrumented);
      std::printf("fig4/%s: plain cpu=%.4f real=%.4f bytes=%lld | instrumented "
                  "cpu=%.4f real=%.4f bytes=%lld -> %s\n",
                  name.c_str(), plain.cpu_ms, plain.real_ms,
                  static_cast<long long>(plain.bytes_moved), instrumented.cpu_ms,
                  instrumented.real_ms, static_cast<long long>(instrumented.bytes_moved),
                  ok ? "IDENTICAL" : "MISMATCH");
      failures += ok ? 0 : 1;
    };
    compare("separate", MeasureSeparate(kPlacements[0], false),
            MeasureSeparate(kPlacements[0], true));
    for (const Placement& placement : kPlacements) {
      compare("migrate " + placement.name, MeasureMigrate(placement, false, false),
              MeasureMigrate(placement, false, true));
    }
    return failures == 0 ? 0 : 1;
  }

  std::vector<Row> rows;
  // One shared baseline, as in the figure: the separate dumpproc/restart pair.
  const Measurement base = MeasureSeparate(kPlacements[0]);
  rows.push_back({"dumpproc + restart (separate)", base, "1.0 (baseline)"});
  for (const Placement& placement : kPlacements) {
    rows.push_back({"migrate " + placement.name, MeasureMigrate(placement, false),
                    placement.paper_note});
  }
  PrintFigure("Figure 4: migrate vs separate dumpproc/restart (real time)", rows, 0);
  WriteBenchJson("fig4", rows);

  std::printf("\n(remote cases pay rsh connection setup; see ablation_daemon_vs_rsh for\n"
              " the Section 6.4 daemon-based improvement)\n");

  AppendInstrumentedReport();

  for (const Placement& placement : kPlacements) {
    RegisterSim("fig4/migrate/" + placement.name.substr(placement.name.find('(')),
                [placement] { return MeasureMigrate(placement, false); });
  }
  RegisterSim("fig4/separate_baseline", [] { return MeasureSeparate(kPlacements[0]); });
  return RunBenchmarks(argc, argv);
}
