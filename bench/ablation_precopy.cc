// Ablation F: freeze-everything (the paper's SIGDUMP/restart) vs V-System-style
// pre-copying (Section 2's related work, implemented in src/core/precopy.h).
//
// The paper's mechanism freezes the process for the entire transfer; pre-copying
// ships state while the process runs and freezes only for the final dirty bytes.
// The trade: shorter freezes, more total bytes on the wire — and the advantage
// shrinks as the process dirties memory faster.

#include "bench/bench_util.h"
#include "src/core/dump_format.h"
#include "src/core/precopy.h"

namespace pmig::bench {
namespace {

struct FreezeResult {
  double freeze_ms = 0;
  double total_ms = 0;
  int64_t bytes = 0;
  int rounds = 0;
};

// The paper's transport: SIGDUMP on brick, restart on schooner. Freeze spans the
// whole thing.
FreezeResult MeasureFreezeEverything(int dirty_stride, int net_slowdown = 1) {
  TestbedOptions options;
  options.costs.net_per_byte *= net_slowdown;
  Testbed world(options);
  const int32_t pid =
      world.StartVm("brick", "/bin/dirtier", {"dirtier", std::to_string(dirty_stride)});
  world.cluster().RunFor(sim::Millis(300));

  const sim::Nanos t0 = world.cluster().clock().now();
  const Status st = world.host("brick").PostSignal(pid, vm::abi::kSigDump, nullptr);
  (void)st;
  world.RunUntilExited("brick", pid);
  kernel::Proc* old_proc = world.host("brick").FindAnyProc(pid);
  int64_t bytes = 0;
  if (old_proc != nullptr) {
    // Everything crosses the wire after the freeze began.
    const std::string aout = world.FileContents("brick", core::DumpPaths::For(pid).aout);
    const std::string files = world.FileContents("brick", core::DumpPaths::For(pid).files);
    const std::string stack = world.FileContents("brick", core::DumpPaths::For(pid).stack);
    bytes = static_cast<int64_t>(aout.size() + files.size() + stack.size());
  }
  const int32_t rs =
      world.StartTool("schooner", "restart", {"-p", std::to_string(pid), "-h", "brick"});
  world.cluster().RunUntil([&] {
    const kernel::Proc* p = world.host("schooner").FindProc(rs);
    return p != nullptr && p->kind == kernel::ProcKind::kVm &&
           p->state == kernel::ProcState::kRunnable;
  });
  FreezeResult r;
  r.freeze_ms = sim::ToMillis(world.cluster().clock().now() - t0);
  r.total_ms = r.freeze_ms;
  r.bytes = bytes;
  r.rounds = 1;
  const Status kill = world.host("schooner").PostSignal(rs, vm::abi::kSigKill, nullptr);
  (void)kill;
  return r;
}

FreezeResult MeasurePrecopy(int dirty_stride, int net_slowdown = 1) {
  TestbedOptions options;
  options.costs.net_per_byte *= net_slowdown;
  Testbed world(options);
  const int32_t pid =
      world.StartVm("brick", "/bin/dirtier", {"dirtier", std::to_string(dirty_stride)});
  world.cluster().RunFor(sim::Millis(300));

  auto stats = std::make_shared<Result<core::PrecopyStats>>(Errno::kAgain);
  net::Network* net = &world.cluster().network();
  kernel::SpawnOptions opts;  // root
  const int32_t mgr = world.host("brick").SpawnNative(
      "precopy-mgr",
      [stats, net, pid](kernel::SyscallApi& api) {
        *stats = core::PrecopyMigrate(api, *net, pid, "schooner", {});
        return stats->ok() ? 0 : 1;
      },
      opts);
  world.RunUntilExited("brick", mgr, sim::Seconds(600));
  FreezeResult r;
  if (stats->ok()) {
    r.freeze_ms = sim::ToMillis((*stats)->freeze_time);
    r.total_ms = sim::ToMillis((*stats)->total_time);
    r.bytes = (*stats)->bytes_precopied + (*stats)->bytes_frozen;
    r.rounds = (*stats)->rounds;
    const Status kill =
        world.host("schooner").PostSignal((*stats)->new_pid, vm::abi::kSigKill, nullptr);
    (void)kill;
  }
  return r;
}

}  // namespace
}  // namespace pmig::bench

int main(int argc, char** argv) {
  using namespace pmig::bench;
  ParseBenchFlags(&argc, argv);
  std::printf("\n=== Ablation F: freeze-everything (the paper) vs pre-copy (V-System) ===\n");
  std::printf("%12s | %12s %10s | %12s %10s %8s %7s | %10s\n", "dirty B/cyc",
              "paper frz ms", "bytes", "precopy frz", "total ms", "bytes", "rounds",
              "frz speedup");
  for (const int stride : {0, 64, 512, 4096}) {
    const FreezeResult paper = MeasureFreezeEverything(stride);
    const FreezeResult pre = MeasurePrecopy(stride);
    std::printf("%12d | %12.1f %10lld | %12.1f %10.1f %8lld %7d | %9.1fx\n", stride,
                paper.freeze_ms, static_cast<long long>(paper.bytes), pre.freeze_ms,
                pre.total_ms, static_cast<long long>(pre.bytes), pre.rounds,
                paper.freeze_ms / pre.freeze_ms);
  }
  std::printf("\nSame sweep on a 20x slower network (transfer windows long enough for the\n"
              "dirtier to matter):\n");
  for (const int stride : {0, 64, 512, 4096}) {
    const FreezeResult paper = MeasureFreezeEverything(stride, 20);
    const FreezeResult pre = MeasurePrecopy(stride, 20);
    std::printf("%12d | %12.1f %10lld | %12.1f %10.1f %8lld %7d | %9.1fx\n", stride,
                paper.freeze_ms, static_cast<long long>(paper.bytes), pre.freeze_ms,
                pre.total_ms, static_cast<long long>(pre.bytes), pre.rounds,
                paper.freeze_ms / pre.freeze_ms);
  }
  std::printf("\n(pre-copying trades total bytes for a much shorter freeze; the advantage\n"
              " narrows as the dirty rate rises — the V-System's design point, versus the\n"
              " paper's simpler freeze-everything approach)\n");

  RegisterSim("ablationF/paper_freeze", [] {
    const FreezeResult r = MeasureFreezeEverything(64);
    return Measurement{0, r.freeze_ms};
  });
  RegisterSim("ablationF/precopy_freeze", [] {
    const FreezeResult r = MeasurePrecopy(64);
    return Measurement{0, r.freeze_ms};
  });
  return RunBenchmarks(argc, argv);
}
