// Differential decision gate: the audit log as a regression instrument.
//
// The decision log records every placement verdict with its full evidence, so
// two runs of the same scenario can be compared decision-by-decision instead
// of by their end state. Three claims, each checked by --check (the ctest
// decision_diff_check gate):
//
//  D1 (equivalence): an indexed balancer with ttl 0 must produce the exact
//     canonical decision stream of the full scan — same contexts, candidates,
//     per-factor scores, exclusions, chosen targets, runner-ups, margins.
//     CanonicalLine deliberately omits the index/scan source tag: two picks
//     that weighed the same evidence the same way are the same decision.
//
//  D2 (divergence is precise): a deliberately perturbed config (a higher
//     imbalance threshold) must diverge from the baseline stream, and the
//     diff must name the exact first divergent decision — not just "streams
//     differ". This is the tool an operator uses when two configs disagree.
//
//  D3 (observation-only): the same scenario with the log disarmed and with it
//     armed-but-unread must agree on every decision, the virtual clock, and
//     every measured value to the last bit. Recording must never perturb the
//     run it is observing.
//
// The armed run also writes a full cluster report (REPORT_decision_diff.jsonl
// next to the binary) whose every line — including the new "meta" and
// "decision" records — the report_schema gate then validates.

#include <fstream>

#include "bench/bench_util.h"
#include "src/apps/decision_log.h"
#include "src/apps/load_balancer.h"
#include "src/apps/placement.h"

namespace pmig::bench {
namespace {

struct DiffOutcome {
  std::vector<std::string> stream;  // CanonicalLine per retained record
  std::string decisions;            // the balancer's "pid:from->to=rc;" log
  sim::Nanos clock = 0;
  uint64_t total_recorded = 0;
  Measurement m;
};

// The S2 equivalence scenario from ablation_scale, with the decision log in
// the loop: five hogs on brick, one balancer, paper scale.
DiffOutcome RunScenario(bool use_index, int imbalance_threshold, bool log_armed,
                        bool write_report) {
  TestbedOptions options;
  options.num_hosts = 3;
  options.daemons = true;
  options.metrics = true;
  options.decision_log = log_armed;
  Testbed world(options);
  for (int i = 0; i < 5; ++i) {
    world.StartVm("brick", "/bin/hog", {"hog", "4000000"});
  }
  world.cluster().RunFor(sim::Seconds(3));

  net::Network* net = &world.cluster().network();
  auto stats = std::make_shared<apps::LoadBalancerStats>();
  const sim::Nanos cpu0 = world.cluster().TotalCpu();
  const sim::Nanos t0 = world.cluster().clock().now();
  const int64_t bytes0 = TotalBytesMoved(world);
  kernel::SpawnOptions opts;  // root
  const int32_t balancer = world.host("brick").SpawnNative(
      "balancer",
      [net, use_index, imbalance_threshold, stats](kernel::SyscallApi& api) {
        apps::LoadBalancerOptions lb;
        lb.poll_interval = sim::Seconds(2);
        lb.min_age = sim::Seconds(1);
        lb.max_rounds = 12;
        lb.imbalance_threshold = imbalance_threshold;
        lb.use_index = use_index;
        lb.index_ttl = 0;  // trust nothing: every round re-surveys
        *stats = apps::RunLoadBalancer(api, *net, lb);
        return 0;
      },
      opts);
  world.RunUntilExited("brick", balancer, sim::Seconds(600));

  DiffOutcome out;
  out.decisions = stats->decisions;
  out.m = Measurement{sim::ToMillis(world.cluster().TotalCpu() - cpu0),
                      sim::ToMillis(world.cluster().clock().now() - t0),
                      TotalBytesMoved(world) - bytes0};
  out.clock = world.cluster().clock().now();
  const apps::DecisionLog& log = world.cluster().decision_log();
  out.total_recorded = log.total_recorded();
  for (const apps::DecisionRecord& r : log.records()) {
    out.stream.push_back(apps::DecisionLog::CanonicalLine(r));
  }
  if (write_report) {
    world.cluster().WriteReport("REPORT_decision_diff.jsonl");
  }
  return out;
}

// First index where the streams disagree, or -1 when identical. A stream that
// ends while the other continues diverges at its end.
int FirstDivergence(const std::vector<std::string>& a,
                    const std::vector<std::string>& b) {
  const size_t n = a.size() < b.size() ? a.size() : b.size();
  for (size_t i = 0; i < n; ++i) {
    if (a[i] != b[i]) return static_cast<int>(i);
  }
  if (a.size() != b.size()) return static_cast<int>(n);
  return -1;
}

void PrintDivergence(const char* label, const std::vector<std::string>& a,
                     const std::vector<std::string>& b, int at) {
  if (at < 0) {
    std::printf("%s: streams identical (%zu decisions)\n", label, a.size());
    return;
  }
  const auto line = [at](const std::vector<std::string>& s) {
    return static_cast<size_t>(at) < s.size() ? s[static_cast<size_t>(at)].c_str()
                                              : "<end of stream>";
  };
  std::printf("%s: first divergence at decision %d\n  a: %s\n  b: %s\n", label, at,
              line(a), line(b));
}

}  // namespace
}  // namespace pmig::bench

int main(int argc, char** argv) {
  using namespace pmig::bench;
  const bool check = ParseBoolFlag(&argc, argv, "--check");
  ParseBenchFlags(&argc, argv);

  std::printf("\n=== Decision diff: indexed-ttl0 vs full scan (D1) ===\n");
  // Truncate the report so the schema gate validates exactly this run's lines
  // (WriteReport appends).
  { std::ofstream trunc("REPORT_decision_diff.jsonl"); }
  const DiffOutcome scan = RunScenario(false, 2, true, /*write_report=*/true);
  const DiffOutcome indexed = RunScenario(true, 2, true, /*write_report=*/false);
  const int d1 = FirstDivergence(scan.stream, indexed.stream);
  PrintDivergence("scan vs indexed", scan.stream, indexed.stream, d1);

  std::printf("\n=== Decision diff: perturbed config diverges precisely (D2) ===\n");
  const DiffOutcome perturbed = RunScenario(false, 4, true, /*write_report=*/false);
  const int d2 = FirstDivergence(scan.stream, perturbed.stream);
  PrintDivergence("baseline vs imbalance=4", scan.stream, perturbed.stream, d2);

  std::printf("\n=== Decision diff: armed-but-unread is bit-identical (D3) ===\n");
  const DiffOutcome dark = RunScenario(false, 2, false, /*write_report=*/false);
  std::printf("decisions match: %s   clock match: %s   measurement match: %s\n",
              dark.decisions == scan.decisions ? "yes" : "NO",
              dark.clock == scan.clock ? "yes" : "NO",
              SameMeasurement(dark.m, scan.m) ? "yes" : "NO");

  std::vector<Row> rows;
  rows.push_back({"diff3/full-scan", scan.m,
                  std::to_string(scan.stream.size()) + " decisions"});
  rows.push_back({"diff3/indexed-ttl0", indexed.m, "stream-identical"});
  rows.push_back({"diff3/perturbed", perturbed.m, "diverges precisely"});
  WriteBenchJson("decision_diff", rows);
  for (const Row& row : rows) {
    WriteBenchRow("decision_diff", row.name, row.m, 0, 0, row.paper_note);
  }

  if (check) {
    bool ok = true;
    if (scan.stream.empty()) {
      std::printf("check: FAIL baseline recorded no decisions\n");
      ok = false;
    }
    if (scan.total_recorded != scan.stream.size()) {
      std::printf("check: FAIL ring evicted records at this scale (%llu vs %zu)\n",
                  static_cast<unsigned long long>(scan.total_recorded),
                  scan.stream.size());
      ok = false;
    }
    if (d1 != -1) {
      std::printf("check: FAIL indexed stream diverges from full scan\n");
      ok = false;
    }
    if (d2 == -1) {
      std::printf("check: FAIL perturbed config produced an identical stream\n");
      ok = false;
    }
    if (dark.decisions != scan.decisions || dark.clock != scan.clock ||
        !SameMeasurement(dark.m, scan.m)) {
      std::printf("check: FAIL armed log perturbed the run\n");
      ok = false;
    }
    std::printf("check: %s\n", ok ? "ok" : "REGRESSION");
    return ok ? 0 : 1;
  }

  RegisterSim("diff/fullscan_armed", [] { return RunScenario(false, 2, true, false).m; });
  RegisterSim("diff/indexed_armed", [] { return RunScenario(true, 2, true, false).m; });
  return RunBenchmarks(argc, argv);
}
