// Figure 1: overhead of the modified system calls (Section 6.1).
//
// "For the open()/close() system calls, we gauged the overhead by measuring the
// system CPU execution time of a program that opens and closes a certain file for
// a hundred times, both under the standard UNIX kernel and under our new kernel...
// For the chdir() system call ... one hundred sets of three calls ..., one with an
// absolute path name, one with the parent directory '..' and one with a path
// relative to the current directory '.'"
//
// Paper result: open/close ≈ +44%, chdir ≈ +36%.

#include <memory>

#include "bench/bench_util.h"

namespace pmig::bench {
namespace {

constexpr int kIterations = 100;

// System CPU time (stime) per open/close pair, in microseconds.
double MeasureOpenClose(bool track_names) {
  TestbedOptions options;
  options.num_hosts = 1;
  options.track_names = track_names;
  Testbed world(options);
  kernel::Kernel& k = world.host("brick");

  auto per_pair_us = std::make_shared<double>(0.0);
  kernel::SpawnOptions opts;
  opts.creds = {kUserUid, 10, kUserUid, 10};
  k.SpawnNative("fig1-openclose", [per_pair_us](kernel::SyscallApi& api) {
    const Result<int> created = api.Creat("/tmp/fig1.dat", 0644);
    if (!created.ok()) return 1;
    const Status closed = api.Close(*created);
    (void)closed;
    const sim::Nanos stime0 = api.proc().stime;
    for (int i = 0; i < kIterations; ++i) {
      const Result<int> fd = api.Open("/tmp/fig1.dat", vm::abi::kORdOnly);
      if (!fd.ok()) return 1;
      const Status st = api.Close(*fd);
      (void)st;
    }
    *per_pair_us = static_cast<double>(api.proc().stime - stime0) /
                   (kIterations * sim::kMicrosecond);
    return 0;
  }, opts);
  world.cluster().RunUntilIdle();
  return *per_pair_us;
}

// System CPU time per {absolute, "..", "."} chdir triple, in microseconds.
double MeasureChdir(bool track_names) {
  TestbedOptions options;
  options.num_hosts = 1;
  options.track_names = track_names;
  Testbed world(options);
  kernel::Kernel& k = world.host("brick");

  auto per_triple_us = std::make_shared<double>(0.0);
  kernel::SpawnOptions opts;
  opts.creds = {kUserUid, 10, kUserUid, 10};
  k.SpawnNative("fig1-chdir", [per_triple_us](kernel::SyscallApi& api) {
    const sim::Nanos stime0 = api.proc().stime;
    for (int i = 0; i < kIterations; ++i) {
      if (!api.Chdir("/usr/tmp").ok()) return 1;
      if (!api.Chdir("..").ok()) return 1;
      if (!api.Chdir(".").ok()) return 1;
    }
    *per_triple_us = static_cast<double>(api.proc().stime - stime0) /
                     (kIterations * sim::kMicrosecond);
    return 0;
  }, opts);
  world.cluster().RunUntilIdle();
  return *per_triple_us;
}

void PrintTables() {
  const double oc_orig = MeasureOpenClose(false);
  const double oc_mod = MeasureOpenClose(true);
  const double cd_orig = MeasureChdir(false);
  const double cd_mod = MeasureChdir(true);

  std::printf("\n=== Figure 1: performance of modified system calls ===\n");
  std::printf("%-22s %16s %16s %10s   %s\n", "syscall", "original (us)", "modified (us)",
              "overhead", "paper");
  std::printf("%-22s %16.1f %16.1f %9.1f%%   +44%%\n", "open()/close() pair", oc_orig, oc_mod,
              100.0 * (oc_mod - oc_orig) / oc_orig);
  std::printf("%-22s %16.1f %16.1f %9.1f%%   +36%%\n", "chdir() triple", cd_orig, cd_mod,
              100.0 * (cd_mod - cd_orig) / cd_orig);

  // Figure 1's table is hand-printed (microseconds, not the PrintFigure shape), so
  // its machine-readable rows are too.
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "{\"type\":\"bench_row\",\"figure\":\"fig1\",\"case\":\"open_close_pair\","
                "\"original_us\":%.2f,\"modified_us\":%.2f,\"overhead_pct\":%.2f,"
                "\"paper\":\"+44%%\"}",
                oc_orig, oc_mod, 100.0 * (oc_mod - oc_orig) / oc_orig);
  WriteReportLine(buf);
  std::snprintf(buf, sizeof(buf),
                "{\"type\":\"bench_row\",\"figure\":\"fig1\",\"case\":\"chdir_triple\","
                "\"original_us\":%.2f,\"modified_us\":%.2f,\"overhead_pct\":%.2f,"
                "\"paper\":\"+36%%\"}",
                cd_orig, cd_mod, 100.0 * (cd_mod - cd_orig) / cd_orig);
  WriteReportLine(buf);
}

}  // namespace
}  // namespace pmig::bench

int main(int argc, char** argv) {
  pmig::bench::ParseBenchFlags(&argc, argv);
  pmig::bench::PrintTables();
  using pmig::bench::Measurement;
  pmig::bench::RegisterSim("fig1/open_close/original", [] {
    const double v = pmig::bench::MeasureOpenClose(false) / 1000.0;
    return Measurement{v, v};
  });
  pmig::bench::RegisterSim("fig1/open_close/migration_kernel", [] {
    const double v = pmig::bench::MeasureOpenClose(true) / 1000.0;
    return Measurement{v, v};
  });
  pmig::bench::RegisterSim("fig1/chdir/original", [] {
    const double v = pmig::bench::MeasureChdir(false) / 1000.0;
    return Measurement{v, v};
  });
  pmig::bench::RegisterSim("fig1/chdir/migration_kernel", [] {
    const double v = pmig::bench::MeasureChdir(true) / 1000.0;
    return Measurement{v, v};
  });
  return pmig::bench::RunBenchmarks(argc, argv);
}
