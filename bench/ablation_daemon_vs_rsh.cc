// Ablation A: the Section 6.4 claim — replacing rsh with a resident migration
// daemon on a well-known port makes remote migration dramatically cheaper.
//
// "...it is always possible to write a better application which, by use of a UNIX
// daemon process and a well known port can achieve more satisfactory results."

#include "bench/bench_util.h"

namespace pmig::bench {
namespace {

struct Placement {
  std::string name;
  std::string from;
  std::string to;
};

const Placement kPlacements[] = {
    {"local -> remote (L->R)", "brick", "schooner"},
    {"remote -> local (R->L)", "schooner", "brick"},
    {"remote -> remote(R->R)", "schooner", "brador"},
};

Measurement MeasureMigrate(const Placement& placement, bool use_daemon) {
  TestbedOptions options;
  options.num_hosts = 3;
  options.file_server_home = true;
  options.daemons = true;  // daemons present in both runs; only the path differs
  Testbed world(options);
  InstallPaddedCounter(world);
  const int32_t pid = StartBlockedCounter(world, placement.from);

  std::vector<std::string> args = {"-p", std::to_string(pid), "-f", placement.from,
                                   "-t", placement.to};
  if (use_daemon) args.push_back("--daemon");
  const sim::Nanos cpu0 = world.cluster().TotalCpu();
  const sim::Nanos t0 = world.cluster().clock().now();
  const int32_t mig = world.StartTool("brick", "migrate", args, kUserUid,
                                      world.console("brick"));
  world.RunUntilExited("brick", mig, sim::Seconds(600));
  return Measurement{sim::ToMillis(world.cluster().TotalCpu() - cpu0),
                     sim::ToMillis(world.cluster().clock().now() - t0)};
}

}  // namespace
}  // namespace pmig::bench

int main(int argc, char** argv) {
  using namespace pmig::bench;
  ParseBenchFlags(&argc, argv);
  std::vector<Row> rows;
  for (const Placement& placement : kPlacements) {
    const Measurement rsh = MeasureMigrate(placement, false);
    const Measurement daemon = MeasureMigrate(placement, true);
    rows.push_back({"rsh    " + placement.name, rsh, ""});
    rows.push_back({"daemon " + placement.name, daemon, "Section 6.4: much faster"});
    std::printf("%-26s speedup from daemon: %.1fx\n", placement.name.c_str(),
                rsh.real_ms / daemon.real_ms);
  }
  PrintFigure("Ablation A: migrate via rsh vs via migration daemon (real time)", rows, 0);

  for (const Placement& placement : kPlacements) {
    RegisterSim("ablationA/rsh/" + placement.from + "_to_" + placement.to,
                [placement] { return MeasureMigrate(placement, false); });
    RegisterSim("ablationA/daemon/" + placement.from + "_to_" + placement.to,
                [placement] { return MeasureMigrate(placement, true); });
  }
  return RunBenchmarks(argc, argv);
}
