// Ablation: placement at cluster scale (the cluster index).
//
// Two scenarios, two claims:
//
//  S1 (200 hosts): twelve long hogs land on brick in a 200-host cluster with
//     two machines down and ten partitioned away from the coordinator. The
//     classic balancer re-surveys every host every round — O(hosts) messages
//     per decision — and aims doomed legs at the partitioned machines until
//     their fault scores exclude them. The indexed balancer builds its view
//     once, keeps it current from migrate deltas, and filters unreachable
//     candidates before any leg: >= 10x fewer survey messages, a per-round
//     message cost independent of cluster size, zero processes lost, and zero
//     attempts at down or partitioned hosts.
//
//  S2 (equivalence): on the paper's own scale (3 hosts) an indexed balancer
//     with ttl 0 must make exactly the full scan's decisions on exactly the
//     full scan's virtual timeline — and the full-scan run itself must replay
//     bit-identically, pinning that the index machinery changes nothing when
//     it is off.
//
// --check runs both scenarios and fails (exit 1) if any invariant above does
// not hold — the regression gate wired into ctest as scale_check.

#include "bench/bench_util.h"
#include "src/apps/load_balancer.h"
#include "src/apps/placement.h"

namespace pmig::bench {
namespace {

constexpr int kHosts = 200;
constexpr int kDown = 2;        // host180, host181: crashed before the run
constexpr int kPartitioned = 10;  // host190..host199: cut off, never heal
constexpr int kJobs = 12;
constexpr const char* kHogIterations = "200000000";  // outlives the whole run

struct ScaleOutcome {
  apps::LoadBalancerStats stats;
  int64_t survey_msgs = 0;
  int live_hosts = 0;  // hosts a survey round would actually touch
  int lost = 0;
  Measurement m;
};

// S1: the 200-host cluster under one balancer, classic or indexed.
ScaleOutcome RunScale(bool use_index) {
  TestbedOptions options;
  options.num_hosts = kHosts;
  options.daemons = true;
  options.metrics = true;
  options.faults.enabled = true;  // partitions only; no random rates
  sim::PartitionFault cut;
  for (int i = kHosts - kPartitioned; i < kHosts; ++i) {
    cut.group_a.push_back("host" + std::to_string(i));
  }
  cut.begin = 0;
  cut.heal = -1;  // never heals: the unreachable set is stable all run
  options.faults.partitions.push_back(cut);
  Testbed world(options);
  world.host("host180").set_down(true);
  world.host("host181").set_down(true);

  for (int i = 0; i < kJobs; ++i) {
    world.StartVm("brick", "/bin/hog", {"hog", kHogIterations});
  }
  world.cluster().RunFor(sim::Seconds(2));

  net::Network* net = &world.cluster().network();
  auto stats = std::make_shared<apps::LoadBalancerStats>();
  const sim::Nanos cpu0 = world.cluster().TotalCpu();
  const sim::Nanos t0 = world.cluster().clock().now();
  const int64_t bytes0 = TotalBytesMoved(world);
  const int64_t msgs0 =
      world.cluster().AggregateMetrics().Counter("placement.survey_msgs");
  kernel::SpawnOptions opts;  // root
  const int32_t balancer = world.host("brick").SpawnNative(
      "balancer",
      [net, use_index, stats](kernel::SyscallApi& api) {
        apps::LoadBalancerOptions lb;
        lb.poll_interval = sim::Seconds(2);
        lb.min_age = sim::Seconds(1);
        lb.max_rounds = 20;
        lb.policy = apps::PlacementPolicy::kFaultAware;
        lb.migrate = core::MigrateOptions::Robust();
        lb.use_index = use_index;
        lb.index_ttl = sim::Seconds(600);  // > run length: deltas carry the view
        lb.batch_per_round = use_index ? 4 : 1;
        *stats = apps::RunLoadBalancer(api, *net, lb);
        return 0;
      },
      opts);
  world.RunUntilExited("brick", balancer, sim::Seconds(600));

  ScaleOutcome out;
  out.m = Measurement{sim::ToMillis(world.cluster().TotalCpu() - cpu0),
                      sim::ToMillis(world.cluster().clock().now() - t0),
                      TotalBytesMoved(world) - bytes0};
  out.survey_msgs =
      world.cluster().AggregateMetrics().Counter("placement.survey_msgs") - msgs0;
  out.stats = *stats;
  world.cluster().RunFor(sim::Seconds(2));
  int alive = 0;
  for (const auto& host : world.cluster().hosts()) {
    if (!host->down()) ++out.live_hosts;
    for (kernel::Proc* p : host->ListProcs()) {
      if (p->kind == kernel::ProcKind::kVm && p->Alive()) ++alive;
    }
  }
  out.lost = kJobs - alive;
  return out;
}

struct EquivOutcome {
  std::string decisions;
  sim::Nanos clock = 0;
  Measurement m;
};

// S2: the paper-scale balancer, classic or indexed-with-zero-ttl.
EquivOutcome RunEquivalence(bool use_index) {
  TestbedOptions options;
  options.num_hosts = 3;
  options.daemons = true;
  options.metrics = true;
  Testbed world(options);
  for (int i = 0; i < 5; ++i) {
    world.StartVm("brick", "/bin/hog", {"hog", "4000000"});
  }
  world.cluster().RunFor(sim::Seconds(3));

  net::Network* net = &world.cluster().network();
  auto stats = std::make_shared<apps::LoadBalancerStats>();
  const sim::Nanos cpu0 = world.cluster().TotalCpu();
  const sim::Nanos t0 = world.cluster().clock().now();
  const int64_t bytes0 = TotalBytesMoved(world);
  kernel::SpawnOptions opts;  // root
  const int32_t balancer = world.host("brick").SpawnNative(
      "balancer",
      [net, use_index, stats](kernel::SyscallApi& api) {
        apps::LoadBalancerOptions lb;
        lb.poll_interval = sim::Seconds(2);
        lb.min_age = sim::Seconds(1);
        lb.max_rounds = 12;
        lb.use_index = use_index;
        lb.index_ttl = 0;  // trust nothing: every round re-surveys
        *stats = apps::RunLoadBalancer(api, *net, lb);
        return 0;
      },
      opts);
  world.RunUntilExited("brick", balancer, sim::Seconds(600));

  EquivOutcome out;
  out.decisions = stats->decisions;
  out.m = Measurement{sim::ToMillis(world.cluster().TotalCpu() - cpu0),
                      sim::ToMillis(world.cluster().clock().now() - t0),
                      TotalBytesMoved(world) - bytes0};
  out.clock = world.cluster().clock().now();
  return out;
}

}  // namespace
}  // namespace pmig::bench

int main(int argc, char** argv) {
  using namespace pmig::bench;
  const bool check = ParseBoolFlag(&argc, argv, "--check");
  ParseBenchFlags(&argc, argv);

  std::printf("\n=== Ablation: balancing a %d-host cluster (S1) ===\n", kHosts);
  std::printf("%-10s %10s %9s %6s %8s %8s %9s %6s %8s\n", "balancer", "surveys",
              "msgs/rnd", "moved", "to-down", "unreach", "refreshes", "lost",
              "real(s)");
  const ScaleOutcome fullscan = RunScale(false);
  const ScaleOutcome indexed = RunScale(true);
  for (const auto* o : {&fullscan, &indexed}) {
    const bool is_indexed = o == &indexed;
    std::printf("%-10s %10lld %9.1f %6d %8d %8d %9d %6d %8.1f\n",
                is_indexed ? "indexed" : "full-scan",
                static_cast<long long>(o->survey_msgs),
                o->stats.rounds > 0
                    ? static_cast<double>(o->survey_msgs) / o->stats.rounds
                    : 0.0,
                o->stats.migrations, o->stats.attempts_to_down,
                o->stats.attempts_to_unreachable, o->stats.index_refreshes, o->lost,
                o->m.real_ms / 1000.0);
  }
  const double ratio =
      indexed.survey_msgs > 0
          ? static_cast<double>(fullscan.survey_msgs) / indexed.survey_msgs
          : 0.0;
  std::printf("survey-message reduction: %.1fx (%lld -> %lld)\n", ratio,
              static_cast<long long>(fullscan.survey_msgs),
              static_cast<long long>(indexed.survey_msgs));

  std::printf("\n=== Ablation: indexed == full scan at paper scale (S2) ===\n");
  const EquivOutcome scan_a = RunEquivalence(false);
  const EquivOutcome scan_b = RunEquivalence(false);  // replay: index-off stability
  const EquivOutcome index_run = RunEquivalence(true);
  std::printf("full-scan decisions:  %s\n", scan_a.decisions.c_str());
  std::printf("indexed decisions:    %s\n", index_run.decisions.c_str());
  std::printf("decision match: %s   replay match: %s   timeline match: %s\n",
              index_run.decisions == scan_a.decisions ? "yes" : "NO",
              scan_b.decisions == scan_a.decisions ? "yes" : "NO",
              index_run.clock == scan_a.clock ? "yes" : "NO");

  std::vector<Row> rows;
  rows.push_back({"scale200/full-scan", fullscan.m, "O(hosts) msgs per round"});
  rows.push_back({"scale200/indexed", indexed.m, ">=10x fewer survey msgs"});
  rows.push_back({"equiv3/full-scan", scan_a.m, "baseline decisions"});
  rows.push_back({"equiv3/indexed-ttl0", index_run.m, "decision-identical"});
  WriteBenchJson("ablation_scale", rows);
  for (const Row& row : rows) {
    WriteBenchRow("ablation_scale", row.name, row.m, 0, 0, row.paper_note);
  }

  if (check) {
    bool ok = true;
    const auto fail = [&ok](const char* msg, long long a, long long b) {
      std::printf("check: FAIL %s (%lld vs %lld)\n", msg, a, b);
      ok = false;
    };
    if (fullscan.survey_msgs < 10 * indexed.survey_msgs) {
      fail("indexed balancer saved < 10x survey messages", fullscan.survey_msgs,
           indexed.survey_msgs);
    }
    // Sub-linear per-decision cost: past the one-time index build (one survey
    // per live host), a round costs O(1) messages regardless of cluster size.
    const int64_t steady = indexed.survey_msgs - indexed.live_hosts;
    if (steady > static_cast<int64_t>(indexed.stats.rounds) * 8) {
      fail("indexed steady-state messages not O(1) per round", steady,
           indexed.stats.rounds);
    }
    if (fullscan.lost != 0) fail("full-scan run lost processes", fullscan.lost, 0);
    if (indexed.lost != 0) fail("indexed run lost processes", indexed.lost, 0);
    if (indexed.stats.migrations <= 0) {
      fail("indexed run moved nothing", indexed.stats.migrations, 0);
    }
    if (indexed.stats.attempts_to_down != 0) {
      fail("indexed run aimed at a down host", indexed.stats.attempts_to_down, 0);
    }
    if (indexed.stats.attempts_to_unreachable != 0) {
      fail("indexed run aimed across the partition",
           indexed.stats.attempts_to_unreachable, 0);
    }
    if (index_run.decisions != scan_a.decisions || index_run.decisions.empty()) {
      std::printf("check: FAIL indexed decisions differ from full scan\n");
      ok = false;
    }
    if (index_run.clock != scan_a.clock) {
      fail("indexed virtual timeline differs", index_run.clock, scan_a.clock);
    }
    if (scan_b.decisions != scan_a.decisions ||
        !SameMeasurement(scan_a.m, scan_b.m) || scan_b.clock != scan_a.clock) {
      std::printf("check: FAIL full-scan run does not replay bit-identically\n");
      ok = false;
    }
    std::printf("check: %s\n", ok ? "ok" : "REGRESSION");
    return ok ? 0 : 1;
  }

  RegisterSim("scale/fullscan_200", [] { return RunScale(false).m; });
  RegisterSim("scale/indexed_200", [] { return RunScale(true).m; });
  RegisterSim("scale/equiv_indexed", [] { return RunEquivalence(true).m; });
  return RunBenchmarks(argc, argv);
}
