// Ablation: event-driven rebalancing (sampler-triggered balancer wakeups).
//
// Three scenarios, three claims:
//
//  S1 (200 hosts): the ablation_scale topology — twelve long hogs on brick,
//     two machines down, ten partitioned away — balanced once by the indexed
//     polling balancer and once by the event-driven balancer. Both converge to
//     the identical final placement, but after convergence the poller keeps
//     burning a round every poll_interval (a poll with nothing to do) while
//     the event-driven balancer runs ZERO rounds and sends ZERO survey
//     messages in the steady-state window: the imbalance predicate is
//     maintained incrementally from sampler snapshots and migrate deltas, so
//     a balanced cluster costs nothing to watch.
//
//  S2 (flag off): with event_driven off, two runs of today's polling balancer
//     (sampler armed, index on) must replay bit-identically — decisions,
//     virtual clock, and every measured value. The flag's default changes
//     nothing.
//
//  S3 (liveness): a balanced-busy cluster never crosses the threshold, so the
//     only wakeups are max_idle heartbeats — the safety net that bounds how
//     long a dropped observation could go unnoticed. The heartbeat rounds are
//     pure predicate re-checks: past the one-time index build they send no
//     survey messages at all.
//
// --check runs all three and fails (exit 1) if any claim above does not hold —
// the regression gate wired into ctest as event_check.

#include "bench/bench_util.h"
#include "src/apps/load_balancer.h"
#include "src/apps/placement.h"

namespace pmig::bench {
namespace {

constexpr int kHosts = 200;
constexpr int kPartitioned = 10;  // host190..host199: cut off, never heal
constexpr int kJobs = 12;
constexpr const char* kHogIterations = "200000000";  // outlives the whole run

struct EventOutcome {
  apps::LoadBalancerStats stats;
  int64_t steady_rounds = 0;   // balancer rounds after the convergence window
  int64_t steady_surveys = 0;  // survey messages after the convergence window
  int64_t total_surveys = 0;
  std::vector<int> placement;  // alive VM procs per host, in network order
  int lost = 0;
  Measurement m;
};

// S1: the 200-host cluster, polling-indexed vs event-driven. Both run under a
// 60s virtual budget; the first 30s is the convergence window, the rest is
// steady state (the cluster is balanced well before the split).
EventOutcome RunScale(bool event_driven) {
  TestbedOptions options;
  options.num_hosts = kHosts;
  options.daemons = true;
  options.metrics = true;
  options.sample_period = sim::Millis(500);  // the wakeup source
  options.faults.enabled = true;  // partitions only; no random rates
  sim::PartitionFault cut;
  for (int i = kHosts - kPartitioned; i < kHosts; ++i) {
    cut.group_a.push_back("host" + std::to_string(i));
  }
  cut.begin = 0;
  cut.heal = -1;
  options.faults.partitions.push_back(cut);
  Testbed world(options);
  world.host("host180").set_down(true);
  world.host("host181").set_down(true);

  for (int i = 0; i < kJobs; ++i) {
    world.StartVm("brick", "/bin/hog", {"hog", kHogIterations});
  }
  world.cluster().RunFor(sim::Seconds(2));

  net::Network* net = &world.cluster().network();
  auto stats = std::make_shared<apps::LoadBalancerStats>();
  const sim::Nanos cpu0 = world.cluster().TotalCpu();
  const sim::Nanos t0 = world.cluster().clock().now();
  const int64_t bytes0 = TotalBytesMoved(world);
  const int64_t msgs0 =
      world.cluster().AggregateMetrics().Counter("placement.survey_msgs");
  kernel::SpawnOptions opts;  // root
  const int32_t balancer = world.host("brick").SpawnNative(
      "balancer",
      [net, event_driven, stats](kernel::SyscallApi& api) {
        apps::LoadBalancerOptions lb;
        lb.poll_interval = sim::Seconds(2);
        lb.min_age = sim::Seconds(1);
        lb.max_rounds = 100;
        lb.policy = apps::PlacementPolicy::kFaultAware;
        lb.migrate = core::MigrateOptions::Robust();
        lb.use_index = true;
        lb.index_ttl = sim::Seconds(600);  // > run length: deltas carry the view
        lb.batch_per_round = 4;
        lb.event_driven = event_driven;
        lb.max_idle = sim::Seconds(120);  // > budget: heartbeats never fire
        lb.run_for = sim::Seconds(60);
        *stats = apps::RunLoadBalancer(api, *net, lb);
        return 0;
      },
      opts);

  // Convergence window, then snapshot the counters for the steady-state delta.
  world.cluster().RunFor(sim::Seconds(30));
  const int64_t rounds_mid =
      world.cluster().AggregateMetrics().Counter("balancer.rounds");
  const int64_t msgs_mid =
      world.cluster().AggregateMetrics().Counter("placement.survey_msgs");
  world.RunUntilExited("brick", balancer, sim::Seconds(600));

  EventOutcome out;
  out.m = Measurement{sim::ToMillis(world.cluster().TotalCpu() - cpu0),
                      sim::ToMillis(world.cluster().clock().now() - t0),
                      TotalBytesMoved(world) - bytes0};
  const auto metrics = world.cluster().AggregateMetrics();
  out.steady_rounds = metrics.Counter("balancer.rounds") - rounds_mid;
  out.steady_surveys = metrics.Counter("placement.survey_msgs") - msgs_mid;
  out.total_surveys = metrics.Counter("placement.survey_msgs") - msgs0;
  out.stats = *stats;
  world.cluster().RunFor(sim::Seconds(2));
  int alive = 0;
  for (const auto& host : world.cluster().hosts()) {
    int n = 0;
    for (kernel::Proc* p : host->ListProcs()) {
      if (p->kind == kernel::ProcKind::kVm && p->Alive()) ++n;
    }
    out.placement.push_back(n);
    alive += n;
  }
  out.lost = kJobs - alive;
  return out;
}

struct FlagOffOutcome {
  std::string decisions;
  sim::Nanos clock = 0;
  Measurement m;
};

// S2: today's polling balancer with the flag off (sampler armed, index on).
FlagOffOutcome RunFlagOff() {
  TestbedOptions options;
  options.num_hosts = 3;
  options.daemons = true;
  options.metrics = true;
  options.sample_period = sim::Millis(500);
  Testbed world(options);
  for (int i = 0; i < 5; ++i) {
    world.StartVm("brick", "/bin/hog", {"hog", "4000000"});
  }
  world.cluster().RunFor(sim::Seconds(3));

  net::Network* net = &world.cluster().network();
  auto stats = std::make_shared<apps::LoadBalancerStats>();
  const sim::Nanos cpu0 = world.cluster().TotalCpu();
  const sim::Nanos t0 = world.cluster().clock().now();
  const int64_t bytes0 = TotalBytesMoved(world);
  kernel::SpawnOptions opts;  // root
  const int32_t balancer = world.host("brick").SpawnNative(
      "balancer",
      [net, stats](kernel::SyscallApi& api) {
        apps::LoadBalancerOptions lb;
        lb.poll_interval = sim::Seconds(2);
        lb.min_age = sim::Seconds(1);
        lb.max_rounds = 12;
        lb.use_index = true;  // event_driven deliberately left at its default
        *stats = apps::RunLoadBalancer(api, *net, lb);
        return 0;
      },
      opts);
  world.RunUntilExited("brick", balancer, sim::Seconds(600));

  FlagOffOutcome out;
  out.decisions = stats->decisions;
  out.m = Measurement{sim::ToMillis(world.cluster().TotalCpu() - cpu0),
                      sim::ToMillis(world.cluster().clock().now() - t0),
                      TotalBytesMoved(world) - bytes0};
  out.clock = world.cluster().clock().now();
  return out;
}

struct HeartbeatOutcome {
  apps::LoadBalancerStats stats;
  int64_t total_surveys = 0;
  Measurement m;
};

// S3: balanced-busy — one hog per non-coordinator host, spread never reaches
// the threshold, so the event balancer's only wakeups are max_idle heartbeats.
HeartbeatOutcome RunHeartbeat() {
  TestbedOptions options;
  options.num_hosts = 4;
  options.daemons = true;
  options.metrics = true;
  options.sample_period = sim::Millis(500);
  Testbed world(options);
  for (const char* host : {"schooner", "brador", "classic"}) {
    world.StartVm(host, "/bin/hog", {"hog", "400000000"});
  }
  world.cluster().RunFor(sim::Seconds(2));

  net::Network* net = &world.cluster().network();
  auto stats = std::make_shared<apps::LoadBalancerStats>();
  const sim::Nanos cpu0 = world.cluster().TotalCpu();
  const sim::Nanos t0 = world.cluster().clock().now();
  const int64_t msgs0 =
      world.cluster().AggregateMetrics().Counter("placement.survey_msgs");
  kernel::SpawnOptions opts;  // root
  const int32_t balancer = world.host("brick").SpawnNative(
      "balancer",
      [net, stats](kernel::SyscallApi& api) {
        apps::LoadBalancerOptions lb;
        lb.poll_interval = sim::Seconds(2);
        lb.min_age = sim::Seconds(1);
        lb.max_rounds = 100;
        lb.use_index = true;
        lb.index_ttl = sim::Seconds(600);
        lb.event_driven = true;
        lb.max_idle = sim::Seconds(5);
        lb.run_for = sim::Seconds(20);
        *stats = apps::RunLoadBalancer(api, *net, lb);
        return 0;
      },
      opts);
  world.RunUntilExited("brick", balancer, sim::Seconds(600));

  HeartbeatOutcome out;
  out.m = Measurement{sim::ToMillis(world.cluster().TotalCpu() - cpu0),
                      sim::ToMillis(world.cluster().clock().now() - t0), 0};
  out.total_surveys =
      world.cluster().AggregateMetrics().Counter("placement.survey_msgs") - msgs0;
  out.stats = *stats;
  return out;
}

}  // namespace
}  // namespace pmig::bench

int main(int argc, char** argv) {
  using namespace pmig::bench;
  const bool check = ParseBoolFlag(&argc, argv, "--check");
  ParseBenchFlags(&argc, argv);

  std::printf("\n=== Ablation: event-driven vs polling on %d hosts (S1) ===\n",
              kHosts);
  std::printf("%-10s %7s %7s %12s %13s %6s %6s %8s\n", "balancer", "rounds",
              "idle", "steady-rnds", "steady-msgs", "moved", "lost", "real(s)");
  const EventOutcome polling = RunScale(false);
  const EventOutcome event = RunScale(true);
  for (const auto* o : {&polling, &event}) {
    std::printf("%-10s %7d %7d %12lld %13lld %6d %6d %8.1f\n",
                o == &event ? "event" : "polling", o->stats.rounds,
                o->stats.idle_rounds, static_cast<long long>(o->steady_rounds),
                static_cast<long long>(o->steady_surveys), o->stats.migrations,
                o->lost, o->m.real_ms / 1000.0);
  }
  std::printf("event wakeups: %d   heartbeats: %d   placement match: %s\n",
              event.stats.event_wakeups, event.stats.heartbeats,
              event.placement == polling.placement ? "yes" : "NO");

  std::printf("\n=== Flag off: polling balancer replays bit-identically (S2) ===\n");
  const FlagOffOutcome off_a = RunFlagOff();
  const FlagOffOutcome off_b = RunFlagOff();
  std::printf("decisions: %s\n", off_a.decisions.c_str());
  std::printf("replay match: %s   timeline match: %s\n",
              off_b.decisions == off_a.decisions ? "yes" : "NO",
              off_b.clock == off_a.clock ? "yes" : "NO");

  std::printf("\n=== Heartbeats on a balanced-busy cluster (S3) ===\n");
  const HeartbeatOutcome hb = RunHeartbeat();
  std::printf("rounds: %d   heartbeats: %d   event wakeups: %d   surveys: %lld\n",
              hb.stats.rounds, hb.stats.heartbeats, hb.stats.event_wakeups,
              static_cast<long long>(hb.total_surveys));

  std::vector<Row> rows;
  rows.push_back({"scale200/polling", polling.m, "a round every poll_interval"});
  rows.push_back({"scale200/event", event.m, "zero steady-state rounds"});
  rows.push_back({"flagoff3/polling", off_a.m, "bit-identical with flag off"});
  rows.push_back({"balanced4/heartbeat", hb.m, "max_idle safety net only"});
  WriteBenchJson("ablation_event", rows);
  for (const Row& row : rows) {
    WriteBenchRow("ablation_event", row.name, row.m, 0, 0, row.paper_note);
  }

  if (check) {
    bool ok = true;
    const auto fail = [&ok](const char* msg, long long a, long long b) {
      std::printf("check: FAIL %s (%lld vs %lld)\n", msg, a, b);
      ok = false;
    };
    // The headline: a balanced cluster costs the event balancer nothing.
    if (event.steady_rounds != 0) {
      fail("event balancer polled in steady state", event.steady_rounds, 0);
    }
    if (event.steady_surveys != 0) {
      fail("event balancer surveyed in steady state", event.steady_surveys, 0);
    }
    if (polling.steady_rounds <= 0) {
      fail("polling balancer should keep polling (scenario broken?)",
           polling.steady_rounds, 0);
    }
    if (event.stats.rounds >= polling.stats.rounds) {
      fail("event balancer did not run fewer rounds", event.stats.rounds,
           polling.stats.rounds);
    }
    if (event.placement != polling.placement) {
      std::printf("check: FAIL final placements differ\n");
      ok = false;
    }
    if (polling.lost != 0) fail("polling run lost processes", polling.lost, 0);
    if (event.lost != 0) fail("event run lost processes", event.lost, 0);
    if (event.stats.migrations <= 0 ||
        event.stats.migrations != polling.stats.migrations) {
      fail("migration counts diverge", event.stats.migrations,
           polling.stats.migrations);
    }
    if (event.stats.attempts_to_down != 0 ||
        event.stats.attempts_to_unreachable != 0) {
      fail("event run aimed at a down or partitioned host",
           event.stats.attempts_to_down, event.stats.attempts_to_unreachable);
    }
    if (off_b.decisions != off_a.decisions || off_a.decisions.empty() ||
        off_b.clock != off_a.clock || !SameMeasurement(off_a.m, off_b.m)) {
      std::printf("check: FAIL flag-off polling run does not replay bit-identically\n");
      ok = false;
    }
    if (hb.stats.heartbeats < 3) {
      fail("balanced-busy run saw too few heartbeats", hb.stats.heartbeats, 3);
    }
    // One opening round, then a round per heartbeat — except the last
    // heartbeat, which lands on the run_for deadline and exits instead.
    if (hb.stats.rounds != hb.stats.heartbeats) {
      fail("heartbeat run had rounds not driven by the heartbeat",
           hb.stats.rounds, hb.stats.heartbeats);
    }
    if (hb.stats.event_wakeups != 0) {
      fail("balanced-busy run saw a threshold wakeup", hb.stats.event_wakeups, 0);
    }
    if (hb.total_surveys != 4) {
      fail("heartbeat rounds surveyed past the index build", hb.total_surveys, 4);
    }
    std::printf("check: %s\n", ok ? "ok" : "REGRESSION");
    return ok ? 0 : 1;
  }

  RegisterSim("event/polling_200", [] { return RunScale(false).m; });
  RegisterSim("event/event_200", [] { return RunScale(true).m; });
  RegisterSim("event/heartbeat_4", [] { return RunHeartbeat().m; });
  return RunBenchmarks(argc, argv);
}
