// Figure 3: relative performance of execve(), rest_proc(), and restart
// (Section 6.3).
//
// A dumped copy of the test program is (a) executed as a fresh program with
// execve() — legal, since a.outXXXXX is an ordinary executable — (b) restored with
// a bare rest_proc() call, and (c) restored with the full restart application.
// System-call times come from "timing code inside the kernel" (KernelTimers); the
// restart application is timed to the point where its process is overlaid.
// Paper result (execve = 1): rest_proc slightly above 1; restart ≈ 5x CPU,
// ≈ 6x real, most of the gap being restart's own user-level work.

#include "bench/bench_util.h"
#include "src/core/dump_format.h"

namespace pmig::bench {
namespace {

// Builds a world with dump files for a counter staged on brick. Returns the pid
// the dump files are named after.
int32_t StageDump(Testbed& world) {
  const int32_t pid = StartBlockedCounter(world, "brick");
  const int32_t dp = world.StartTool("brick", "dumpproc", {"-p", std::to_string(pid)});
  world.RunUntilExited("brick", pid);
  world.RunUntilExited("brick", dp);
  return pid;
}

Measurement MeasureExecve() {
  TestbedOptions options;
  options.num_hosts = 2;
  options.file_server_home = true;
  Testbed world(options);
  InstallPaddedCounter(world);
  const int32_t pid = StageDump(world);
  const core::DumpPaths paths = core::DumpPaths::For(pid);

  kernel::Kernel& k = world.host("brick");
  kernel::SpawnOptions opts;
  opts.creds = {kUserUid, 10, kUserUid, 10};
  opts.tty = world.console("brick");
  const Result<int32_t> fresh = k.SpawnVm(paths.aout, {}, opts);
  (void)fresh;
  world.cluster().RunFor(sim::Seconds(2));
  const kernel::InKernelTiming t = k.timers().execve;
  return Measurement{sim::ToMillis(t.cpu), sim::ToMillis(t.real)};
}

Measurement MeasureRestProc() {
  TestbedOptions options;
  options.num_hosts = 2;
  options.file_server_home = true;
  Testbed world(options);
  InstallPaddedCounter(world);
  const int32_t pid = StageDump(world);
  const core::DumpPaths paths = core::DumpPaths::For(pid);

  kernel::Kernel& k = world.host("brick");
  kernel::SpawnOptions opts;
  opts.creds = {kUserUid, 10, kUserUid, 10};
  opts.tty = world.console("brick");
  k.SpawnNative("bare-rest_proc", [paths](kernel::SyscallApi& api) {
    const Status st = api.RestProc(paths.aout, paths.stack);
    (void)st;
    return 1;  // only reached on failure
  }, opts);
  world.cluster().RunFor(sim::Seconds(2));
  const kernel::InKernelTiming t = k.timers().rest_proc;
  return Measurement{sim::ToMillis(t.cpu), sim::ToMillis(t.real)};
}

struct RestartSplit {
  Measurement total;
  Measurement rest_proc_part;
};

RestartSplit MeasureRestart() {
  TestbedOptions options;
  options.num_hosts = 2;
  options.file_server_home = true;
  Testbed world(options);
  InstallPaddedCounter(world);
  const int32_t pid = StageDump(world);

  kernel::Kernel& k = world.host("brick");
  const sim::Nanos t0 = world.cluster().clock().now();
  const int32_t rs = world.StartTool("brick", "restart", {"-p", std::to_string(pid)},
                                     kUserUid, world.console("brick"));
  // Run until the restored program has resumed execution (it re-enters its
  // blocked read once the restart I/O completes).
  world.cluster().RunUntil([&k, rs] {
    const kernel::Proc* p = k.FindProc(rs);
    return p != nullptr && p->kind == kernel::ProcKind::kVm &&
           p->state == kernel::ProcState::kBlocked;
  });
  RestartSplit split;
  kernel::Proc* p = k.FindProc(rs);
  split.total.cpu_ms = p != nullptr ? sim::ToMillis(p->utime + p->stime) : 0.0;
  split.total.real_ms = sim::ToMillis(world.cluster().clock().now() - t0);
  split.rest_proc_part = Measurement{sim::ToMillis(k.timers().rest_proc.cpu),
                                     sim::ToMillis(k.timers().rest_proc.real)};
  return split;
}

}  // namespace
}  // namespace pmig::bench

int main(int argc, char** argv) {
  using namespace pmig::bench;
  ParseBenchFlags(&argc, argv);
  const Measurement execve = MeasureExecve();
  const Measurement rest_proc = MeasureRestProc();
  const RestartSplit restart = MeasureRestart();
  PrintFigure("Figure 3: restarting the test program (normalised to execve)",
              {
                  {"execve() of a.outXXXXX", execve, "1.0"},
                  {"rest_proc()", rest_proc, "slightly above 1"},
                  {"restart application (total)", restart.total, "~5x cpu, ~6x real"},
                  {"  of which rest_proc()", restart.rest_proc_part, "(dotted split)"},
              },
              0);

  RegisterSim("fig3/execve", [] { return MeasureExecve(); });
  RegisterSim("fig3/rest_proc", [] { return MeasureRestProc(); });
  RegisterSim("fig3/restart", [] { return MeasureRestart().total; });
  return RunBenchmarks(argc, argv);
}
