// Phase-drift gate for the instrumented fig4 migration report.
//
// The `phase_summary` line of fig4_migrate's --report output partitions the
// end-to-end remote-to-remote migrate time into per-phase self times (setup,
// signal, dump, transfer, restart, other). Those shares are deterministic —
// virtual time — so any change is a real change to where migration spends its
// time. This checker recomputes the shares and fails when any phase drifts more
// than --tolerance (default 25%, relative) from the committed baseline, the
// regression gate ROADMAP.md asks for.
//
//   check_phases --fig4 <fig4_migrate binary> --baseline bench/phase_baseline.txt
//   check_phases --report <existing.jsonl>    --baseline bench/phase_baseline.txt
//
// With --fig4 the checker runs the bench itself (benchmark scenarios filtered
// out; only the instrumented report run happens) into a scratch file. On a
// legitimate cost-model change, regenerate the baseline from the shares this
// program prints.

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <sstream>
#include <string>

namespace {

// A phase whose baseline share is (near) zero cannot be compared relatively;
// it just must stay near zero.
constexpr double kZeroFloor = 0.005;

int Usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s --baseline FILE (--fig4 BINARY | --report FILE) "
               "[--tolerance FRACTION]\n",
               argv0);
  return 2;
}

// Extracts the phase name/self-time pairs and total from the LAST
// phase_summary line in `path` (reports append; the newest run wins).
bool LoadPhaseShares(const std::string& path, std::map<std::string, double>* shares) {
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "check_phases: cannot read %s\n", path.c_str());
    return false;
  }
  std::string line, summary;
  while (std::getline(in, line)) {
    if (line.find("\"type\":\"phase_summary\"") != std::string::npos) summary = line;
  }
  if (summary.empty()) {
    std::fprintf(stderr, "check_phases: no phase_summary line in %s\n", path.c_str());
    return false;
  }

  const size_t total_at = summary.find("\"total_ns\":");
  const size_t phases_at = summary.find("\"phases\":{");
  if (total_at == std::string::npos || phases_at == std::string::npos) return false;
  const double total = std::strtod(summary.c_str() + total_at + 11, nullptr);
  if (total <= 0) {
    std::fprintf(stderr, "check_phases: phase_summary has no migrate time\n");
    return false;
  }

  // The phases object is flat: "name":integer pairs until the closing brace.
  size_t pos = phases_at + 10;
  while (pos < summary.size() && summary[pos] != '}') {
    const size_t name_begin = summary.find('"', pos);
    if (name_begin == std::string::npos) break;
    const size_t name_end = summary.find('"', name_begin + 1);
    if (name_end == std::string::npos) break;
    const std::string name = summary.substr(name_begin + 1, name_end - name_begin - 1);
    const size_t colon = summary.find(':', name_end);
    if (colon == std::string::npos) break;
    char* end = nullptr;
    const double ns = std::strtod(summary.c_str() + colon + 1, &end);
    (*shares)[name] = ns / total;
    pos = static_cast<size_t>(end - summary.c_str());
    if (pos < summary.size() && summary[pos] == ',') ++pos;
  }
  return !shares->empty();
}

// Baseline: "<phase> <share>" per line, '#' comments.
bool LoadBaseline(const std::string& path, std::map<std::string, double>* baseline) {
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "check_phases: cannot read baseline %s\n", path.c_str());
    return false;
  }
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#') continue;
    std::istringstream row(line);
    std::string phase;
    double share = 0;
    if (row >> phase >> share) (*baseline)[phase] = share;
  }
  return !baseline->empty();
}

}  // namespace

int main(int argc, char** argv) {
  std::string fig4, report, baseline_path;
  double tolerance = 0.25;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--fig4" && i + 1 < argc) {
      fig4 = argv[++i];
    } else if (arg == "--report" && i + 1 < argc) {
      report = argv[++i];
    } else if (arg == "--baseline" && i + 1 < argc) {
      baseline_path = argv[++i];
    } else if (arg == "--tolerance" && i + 1 < argc) {
      tolerance = std::strtod(argv[++i], nullptr);
    } else {
      return Usage(argv[0]);
    }
  }
  if (baseline_path.empty() || (fig4.empty() == report.empty())) return Usage(argv[0]);

  if (!fig4.empty()) {
    report = "check_phases_report.jsonl";
    std::remove(report.c_str());
    const std::string cmd =
        "\"" + fig4 + "\" --report=" + report + " --benchmark_filter=^$ > /dev/null";
    const int rc = std::system(cmd.c_str());
    if (rc != 0) {
      std::fprintf(stderr, "check_phases: '%s' failed (%d)\n", cmd.c_str(), rc);
      return 1;
    }
  }

  std::map<std::string, double> shares, baseline;
  if (!LoadPhaseShares(report, &shares)) return 1;
  if (!LoadBaseline(baseline_path, &baseline)) return 1;

  int failures = 0;
  std::printf("%-12s %10s %10s   verdict\n", "phase", "baseline", "measured");
  for (const auto& [phase, base] : baseline) {
    const auto it = shares.find(phase);
    if (it == shares.end()) {
      std::printf("%-12s %10.4f %10s   MISSING from report\n", phase.c_str(), base, "-");
      ++failures;
      continue;
    }
    const double got = it->second;
    bool ok;
    if (base < kZeroFloor) {
      ok = got < kZeroFloor;  // was ~nothing; must stay ~nothing
    } else {
      ok = std::abs(got - base) / base <= tolerance;
    }
    std::printf("%-12s %10.4f %10.4f   %s\n", phase.c_str(), base, got,
                ok ? "ok" : "DRIFTED");
    if (!ok) ++failures;
  }
  for (const auto& [phase, got] : shares) {
    if (baseline.count(phase) == 0) {
      std::printf("%-12s %10s %10.4f   NEW phase (not in baseline)\n", phase.c_str(), "-",
                  got);
      ++failures;
    }
  }
  if (failures != 0) {
    std::fprintf(stderr,
                 "check_phases: %d phase(s) drifted >%.0f%% from %s\n"
                 "(if the cost model legitimately changed, regenerate the baseline "
                 "from the measured column above)\n",
                 failures, tolerance * 100, baseline_path.c_str());
    return 1;
  }
  std::printf("check_phases: all phase shares within %.0f%% of baseline\n",
              tolerance * 100);
  return 0;
}
