// Ablation B: dynamic vs fixed-size storage for the Section 5.1 file-name strings.
//
// "Dynamically allocated strings were used instead of fixed length strings,
// because file structures are not swappable and there is more than one process
// being executed at any time... If we had used fixed size strings, they would
// have had to be large enough to accommodate large path names ... wasting large
// amounts of kernel memory."
//
// We sweep path-name length and open-file count and report peak kernel memory
// held by name strings under each policy, plus the CPU overhead difference.

#include "bench/bench_util.h"

namespace pmig::bench {
namespace {

struct NameStorageResult {
  int64_t peak_bytes = 0;
  double cpu_us_per_open = 0;
};

NameStorageResult Measure(kernel::KernelConfig::NameStorage storage, int open_files,
                          int path_depth) {
  TestbedOptions options;
  options.num_hosts = 1;
  Testbed world(options);
  kernel::Kernel& k = world.host("brick");
  k.stats().name_bytes_peak = 0;

  k.mutable_config().name_storage = storage;

  // Deep directory + the target files.
  std::string dir;
  for (int i = 0; i < path_depth; ++i) dir += "/component" + std::to_string(i);
  k.vfs().SetupMkdirAll(dir.empty() ? "/" : dir);

  auto cpu_per_open = std::make_shared<double>(0);
  kernel::SpawnOptions opts;  // root, so any directory is writable
  const int32_t pid = k.SpawnNative(
      "opener",
      [dir, open_files, cpu_per_open](kernel::SyscallApi& api) {
        const sim::Nanos s0 = api.proc().stime;
        for (int i = 0; i < open_files; ++i) {
          const Result<int> fd =
              api.Creat((dir.empty() ? "" : dir) + "/file" + std::to_string(i), 0644);
          if (!fd.ok()) return 1;
        }
        *cpu_per_open =
            static_cast<double>(api.proc().stime - s0) / (open_files * sim::kMicrosecond);
        api.Sleep(sim::Seconds(5));  // hold the files open so peak memory is visible
        return 0;
      },
      opts);
  world.cluster().RunFor(sim::Seconds(2));
  NameStorageResult result;
  result.peak_bytes = k.stats().name_bytes_peak;
  result.cpu_us_per_open = *cpu_per_open;
  world.RunUntilExited("brick", pid);
  return result;
}

}  // namespace
}  // namespace pmig::bench

int main(int argc, char** argv) {
  using namespace pmig::bench;
  ParseBenchFlags(&argc, argv);
  using Storage = pmig::kernel::KernelConfig::NameStorage;

  std::printf("\n=== Ablation B: name-string storage (Section 5.1 design choice) ===\n");
  std::printf("%8s %8s | %14s %14s | %10s\n", "files", "depth", "dynamic peak B",
              "fixed peak B", "waste");
  for (const int files : {4, 8, 16}) {
    for (const int depth : {1, 4, 10}) {
      const NameStorageResult dynamic = Measure(Storage::kDynamic, files, depth);
      const NameStorageResult fixed = Measure(Storage::kFixed, files, depth);
      std::printf("%8d %8d | %14lld %14lld | %9.1fx\n", files, depth,
                  static_cast<long long>(dynamic.peak_bytes),
                  static_cast<long long>(fixed.peak_bytes),
                  dynamic.peak_bytes > 0
                      ? static_cast<double>(fixed.peak_bytes) / dynamic.peak_bytes
                      : 0.0);
    }
  }
  std::printf("\n(paper: fixed-size strings 'would have led to wasting large amounts of\n"
              " kernel memory' — short names dominate, so the fixed slots mostly hold air)\n");

  RegisterSim("ablationB/dynamic", [] {
    const auto r = Measure(Storage::kDynamic, 16, 4);
    return Measurement{r.cpu_us_per_open / 1000.0, r.cpu_us_per_open / 1000.0};
  });
  RegisterSim("ablationB/fixed", [] {
    const auto r = Measure(Storage::kFixed, 16, 4);
    return Measurement{r.cpu_us_per_open / 1000.0, r.cpu_us_per_open / 1000.0};
  });
  return RunBenchmarks(argc, argv);
}
