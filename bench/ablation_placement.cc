// Ablation: placement policies under failure (the crash-blind-placement fix).
//
// Two scenarios, two claims:
//
//  S1 (flaky host): a cluster where one machine crashes and recovers on a
//     schedule while the load balancer sheds jobs toward it. Every policy must
//     end with zero lost processes and zero migration attempts into a host that
//     is down (the bug this PR fixes). The fault-aware policies additionally
//     learn from the failed migrations and route around the flapping host while
//     its fault score decays, cutting failed/fallback migrations vs kLoadOnly.
//
//  S2 (warm segment cache): a big dirty-tracked job whose text and data base
//     already sit in one host's /var/segcache. kLoadOnly ties on load and picks
//     the first host in network order (cold); kCostAware reads the cache and
//     picks the warm host, measurably cutting the bytes a --cached migration
//     puts on the wire and disk.
//
// --check runs both scenarios and fails (exit 1) if any invariant above does
// not hold — the regression gate wired into ctest.

#include "bench/bench_util.h"
#include "src/apps/load_balancer.h"
#include "src/apps/placement.h"

namespace pmig::bench {
namespace {

using apps::PlacementPolicy;

// ~50 KB text + ~50 KB data: big enough that one migration spends whole virtual
// seconds in dump + wire + restore, so a scheduled crash can bite mid-flight.
std::string BigHogSource() {
  return core::WithPadding(core::CpuHogProgramSource(), /*extra_text_instructions=*/6000,
                           /*extra_data_bytes=*/50000);
}

constexpr int kJobs = 6;
constexpr const char* kHogIterations = "50000000";  // outlives the whole scenario

struct FlakyOutcome {
  apps::LoadBalancerStats stats;
  int lost = 0;        // jobs started minus jobs alive anywhere at the end
  int64_t retries = 0; // migrate.retries across the cluster
  Measurement m;
};

// S1: six long hogs land on brick; schooner flaps down/up on a fixed schedule
// while the balancer (transactional migrations) sheds load.
FlakyOutcome RunFlakyHost(PlacementPolicy policy) {
  TestbedOptions options;
  options.num_hosts = 3;  // brick, schooner, brador
  options.daemons = true;
  options.metrics = true;
  options.faults.enabled = true;  // scheduled crashes only; no random rates
  options.faults.crashes.push_back({"schooner", sim::Seconds(5), sim::Seconds(15)});
  options.faults.crashes.push_back({"schooner", sim::Seconds(25), sim::Seconds(35)});
  options.faults.crashes.push_back({"schooner", sim::Seconds(45), sim::Seconds(55)});
  Testbed world(options);
  const std::string padded = BigHogSource();
  for (const auto& host : world.cluster().hosts()) {
    core::InstallProgram(*host, "/bin/bighog", padded);
  }
  for (int i = 0; i < kJobs; ++i) {
    world.StartVm("brick", "/bin/bighog", {"bighog", kHogIterations});
  }

  net::Network* net = &world.cluster().network();
  auto stats = std::make_shared<apps::LoadBalancerStats>();
  const sim::Nanos cpu0 = world.cluster().TotalCpu();
  const sim::Nanos t0 = world.cluster().clock().now();
  const int64_t bytes0 = TotalBytesMoved(world);
  kernel::SpawnOptions opts;  // root
  const int32_t balancer = world.host("brick").SpawnNative(
      "balancer",
      [net, policy, stats](kernel::SyscallApi& api) {
        apps::LoadBalancerOptions lb;
        lb.poll_interval = sim::Seconds(2);
        lb.min_age = sim::Seconds(1);
        lb.use_daemon = true;
        lb.max_rounds = 15;
        lb.policy = policy;
        lb.migrate = core::MigrateOptions::Robust();
        *stats = apps::RunLoadBalancer(api, *net, lb);
        return 0;
      },
      opts);
  world.RunUntilExited("brick", balancer, sim::Seconds(600));

  FlakyOutcome out;
  out.m = Measurement{sim::ToMillis(world.cluster().TotalCpu() - cpu0),
                      sim::ToMillis(world.cluster().clock().now() - t0),
                      TotalBytesMoved(world) - bytes0};
  // Let the last crash window pass so frozen processes thaw, then take roll
  // call: every job must be alive on some host.
  world.cluster().RunUntil(
      [&world] { return !world.host("schooner").down(); }, sim::Seconds(120));
  world.cluster().RunFor(sim::Seconds(2));
  int alive = 0;
  for (const auto& host : world.cluster().hosts()) {
    for (kernel::Proc* p : host->ListProcs()) {
      if (p->kind == kernel::ProcKind::kVm && p->Alive()) ++alive;
    }
  }
  out.lost = kJobs - alive;
  out.stats = *stats;
  out.retries = world.cluster().AggregateMetrics().Counter("migrate.retries");
  return out;
}

// S2: warm brador's segment cache with a --cached round trip of a big
// dirty-tracked job, then migrate it off brick to wherever `policy` points.
// Returns the bytes the measured migration moved, and the chosen target.
Measurement WarmCacheMigration(PlacementPolicy policy, std::string* chosen) {
  TestbedOptions options;
  options.num_hosts = 3;
  options.daemons = true;
  options.dirty_tracking = true;
  options.metrics = true;
  Testbed world(options);
  const std::string padded =
      core::WithPadding(core::CounterProgramSource(), /*extra_text_instructions=*/12500,
                        /*extra_data_bytes=*/100000);
  for (const auto& host : world.cluster().hosts()) {
    core::InstallProgram(*host, "/bin/bigjob", padded);
  }
  const int32_t pid = world.StartVm("brick", "/bin/bigjob");
  world.RunUntilBlocked("brick", pid);
  world.console("brick")->Type("x\n");
  world.RunUntilBlocked("brick", pid);

  // Migration renames processes, so find the job as the host's only live VM proc.
  auto vm_on = [&world](const std::string& host_name) {
    for (kernel::Proc* p : world.host(host_name).ListProcs()) {
      if (p->kind == kernel::ProcKind::kVm && p->Alive()) return p->pid;
    }
    return int32_t{-1};
  };
  auto migrate = [&world](int32_t p, const std::string& from, const std::string& to) {
    const int32_t mig = world.StartTool(
        from, "migrate",
        {"-p", std::to_string(p), "-f", from, "-t", to, "--daemon", "--cached"},
        kUserUid, world.console(from));
    world.RunUntilExited(from, mig, sim::Seconds(600));
  };
  // Warm-up round trip: brick -> brador -> brick seeds both segment caches with
  // the job's text and data-base digests. schooner stays cold.
  migrate(pid, "brick", "brador");
  migrate(vm_on("brador"), "brador", "brick");
  const int32_t home = vm_on("brick");

  const apps::PlacementEngine engine(&world.cluster().network(), policy);
  apps::PlacementQuery query;
  query.from_host = "brick";
  query.pid = home;
  const std::string target = engine.PickTarget(query);
  if (chosen != nullptr) *chosen = target;

  const sim::Nanos cpu0 = world.cluster().TotalCpu();
  const sim::Nanos t0 = world.cluster().clock().now();
  const int64_t bytes0 = TotalBytesMoved(world);
  migrate(home, "brick", target);
  return Measurement{sim::ToMillis(world.cluster().TotalCpu() - cpu0),
                     sim::ToMillis(world.cluster().clock().now() - t0),
                     TotalBytesMoved(world) - bytes0};
}

}  // namespace
}  // namespace pmig::bench

int main(int argc, char** argv) {
  using namespace pmig::bench;
  namespace apps = pmig::apps;
  using apps::PlacementPolicy;
  bool check = false;
  {
    int out = 1;
    for (int i = 1; i < argc; ++i) {
      if (std::strcmp(argv[i], "--check") == 0) {
        check = true;
      } else {
        argv[out++] = argv[i];
      }
    }
    argc = out;
  }
  ParseBenchFlags(&argc, argv);

  constexpr PlacementPolicy kPolicies[] = {
      PlacementPolicy::kLoadOnly, PlacementPolicy::kCostAware,
      PlacementPolicy::kFaultAware, PlacementPolicy::kCombined};

  std::printf("\n=== Ablation: placement under a flapping host (S1) ===\n");
  std::printf("%-12s %6s %8s %9s %8s %8s %6s %8s\n", "policy", "moved", "failed",
              "fallback", "to-down", "retries", "lost", "real(s)");
  FlakyOutcome flaky[4];
  std::vector<Row> rows;
  for (int i = 0; i < 4; ++i) {
    flaky[i] = RunFlakyHost(kPolicies[i]);
    const FlakyOutcome& f = flaky[i];
    std::printf("%-12s %6d %8d %9d %8d %8lld %6d %8.1f\n",
                std::string(apps::PlacementPolicyName(kPolicies[i])).c_str(),
                f.stats.migrations, f.stats.failed_migrations, f.stats.fallback_restarts,
                f.stats.attempts_to_down, static_cast<long long>(f.retries), f.lost,
                f.m.real_ms / 1000.0);
    rows.push_back({"flaky/" + std::string(apps::PlacementPolicyName(kPolicies[i])),
                    f.m, "lost=0, to-down=0"});
  }

  std::printf("\n=== Ablation: warm-cache placement (S2) ===\n");
  std::string load_target, cost_target;
  const Measurement warm_load = WarmCacheMigration(PlacementPolicy::kLoadOnly, &load_target);
  const Measurement warm_cost = WarmCacheMigration(PlacementPolicy::kCostAware, &cost_target);
  std::printf("%-12s -> %-9s %12lld bytes %10.1f ms\n", "load-only", load_target.c_str(),
              static_cast<long long>(warm_load.bytes_moved), warm_load.real_ms);
  std::printf("%-12s -> %-9s %12lld bytes %10.1f ms\n", "cost-aware", cost_target.c_str(),
              static_cast<long long>(warm_cost.bytes_moved), warm_cost.real_ms);
  rows.push_back({"warm/load-only->" + load_target, warm_load, "cold target"});
  rows.push_back({"warm/cost-aware->" + cost_target, warm_cost, "warm target"});
  WriteBenchJson("ablation_placement", rows);
  for (const Row& row : rows) {
    WriteBenchRow("ablation_placement", row.name, row.m, 0, 0, row.paper_note);
  }

  const auto failures = [](const FlakyOutcome& f) {
    return f.stats.failed_migrations + f.stats.fallback_restarts;
  };
  std::printf("\nfault-aware failures: %d vs load-only %d;  warm-cache bytes: %lld vs %lld\n",
              failures(flaky[2]), failures(flaky[0]),
              static_cast<long long>(warm_cost.bytes_moved),
              static_cast<long long>(warm_load.bytes_moved));

  if (check) {
    bool ok = true;
    for (int i = 0; i < 4; ++i) {
      if (flaky[i].lost != 0) {
        std::printf("check: FAIL %s lost %d process(es)\n",
                    std::string(apps::PlacementPolicyName(kPolicies[i])).c_str(),
                    flaky[i].lost);
        ok = false;
      }
      if (flaky[i].stats.attempts_to_down != 0) {
        std::printf("check: FAIL %s attempted %d migration(s) into a down host\n",
                    std::string(apps::PlacementPolicyName(kPolicies[i])).c_str(),
                    flaky[i].stats.attempts_to_down);
        ok = false;
      }
    }
    // The fault-aware policies must not fail more often than crash-blind load
    // balancing on the same schedule (they exist to fail less).
    if (failures(flaky[2]) > failures(flaky[0]) || failures(flaky[3]) > failures(flaky[0])) {
      std::printf("check: FAIL fault-aware policies failed more than load-only\n");
      ok = false;
    }
    if (warm_cost.bytes_moved >= warm_load.bytes_moved) {
      std::printf("check: FAIL cost-aware moved %lld bytes >= load-only %lld\n",
                  static_cast<long long>(warm_cost.bytes_moved),
                  static_cast<long long>(warm_load.bytes_moved));
      ok = false;
    }
    std::printf("check: %s\n", ok ? "ok" : "REGRESSION");
    return ok ? 0 : 1;
  }

  RegisterSim("placement/flaky_load_only",
              [] { return RunFlakyHost(PlacementPolicy::kLoadOnly).m; });
  RegisterSim("placement/flaky_fault_aware",
              [] { return RunFlakyHost(PlacementPolicy::kFaultAware).m; });
  RegisterSim("placement/warm_load_only",
              [] { return WarmCacheMigration(PlacementPolicy::kLoadOnly, nullptr); });
  RegisterSim("placement/warm_cost_aware",
              [] { return WarmCacheMigration(PlacementPolicy::kCostAware, nullptr); });
  return RunBenchmarks(argc, argv);
}
