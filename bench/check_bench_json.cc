// Schema gate for the standardized BENCH_<name>.json files.
//
// Every bench binary writes one of these next to itself (see WriteBenchJson);
// bench/baselines/ commits a reference copy per bench. Downstream tooling
// (EXPERIMENTS.md tables, dashboards) parses them, so the shape is a contract:
//
//   {"bench": <string>, "rows": [{"case": <string>, "vcpu_ms": <number>,
//                                 "vreal_ms": <number>, "bytes_moved": <int>}...]}
//
// Usage: check_bench_json <file-or-dir>... — directories are scanned for
// BENCH_*.json. Exits 1 if any file fails to parse, misses a required key, has
// a wrong type, carries a negative measurement, or has no rows.
//
// The parser below covers exactly the JSON subset WriteBenchJson emits (no
// third-party JSON dependency in this repo, by design).

#include <cctype>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

namespace {

struct Cursor {
  const std::string* text = nullptr;
  size_t pos = 0;
  std::string error;

  bool Fail(const std::string& why) {
    if (error.empty()) error = why + " at byte " + std::to_string(pos);
    return false;
  }
  void SkipWs() {
    while (pos < text->size() && std::isspace(static_cast<unsigned char>((*text)[pos]))) {
      ++pos;
    }
  }
  bool Eat(char c) {
    SkipWs();
    if (pos >= text->size() || (*text)[pos] != c) {
      return Fail(std::string("expected '") + c + "'");
    }
    ++pos;
    return true;
  }
  bool ParseString(std::string* out) {
    if (!Eat('"')) return false;
    out->clear();
    while (pos < text->size() && (*text)[pos] != '"') {
      char c = (*text)[pos++];
      if (c == '\\') {
        if (pos >= text->size()) return Fail("dangling escape");
        c = (*text)[pos++];
      }
      out->push_back(c);
    }
    if (pos >= text->size()) return Fail("unterminated string");
    ++pos;
    return true;
  }
  bool ParseNumber(double* out, bool* integral) {
    SkipWs();
    const size_t start = pos;
    if (pos < text->size() && ((*text)[pos] == '-' || (*text)[pos] == '+')) ++pos;
    bool dot = false;
    while (pos < text->size() &&
           (std::isdigit(static_cast<unsigned char>((*text)[pos])) || (*text)[pos] == '.' ||
            (*text)[pos] == 'e' || (*text)[pos] == 'E' || (*text)[pos] == '-' ||
            (*text)[pos] == '+')) {
      if ((*text)[pos] == '.' || (*text)[pos] == 'e' || (*text)[pos] == 'E') dot = true;
      ++pos;
    }
    if (pos == start) return Fail("expected number");
    *out = std::strtod(text->c_str() + start, nullptr);
    if (integral != nullptr) *integral = !dot;
    return true;
  }
};

struct BenchRow {
  std::string case_name;
  double vcpu_ms = -1;
  double vreal_ms = -1;
  double bytes_moved = -1;
  bool bytes_integral = false;
  bool has_case = false, has_cpu = false, has_real = false, has_bytes = false;
};

// Parses one row object, tolerating any key order (the writer is fixed-order,
// but the contract is the keys, not their order).
bool ParseRow(Cursor* c, BenchRow* row) {
  if (!c->Eat('{')) return false;
  for (;;) {
    std::string key;
    if (!c->ParseString(&key)) return false;
    if (!c->Eat(':')) return false;
    if (key == "case") {
      if (!c->ParseString(&row->case_name)) return false;
      row->has_case = true;
    } else if (key == "vcpu_ms") {
      if (!c->ParseNumber(&row->vcpu_ms, nullptr)) return false;
      row->has_cpu = true;
    } else if (key == "vreal_ms") {
      if (!c->ParseNumber(&row->vreal_ms, nullptr)) return false;
      row->has_real = true;
    } else if (key == "bytes_moved") {
      if (!c->ParseNumber(&row->bytes_moved, &row->bytes_integral)) return false;
      row->has_bytes = true;
    } else {
      return c->Fail("unknown row key \"" + key + "\"");
    }
    c->SkipWs();
    if (c->pos < c->text->size() && (*c->text)[c->pos] == ',') {
      ++c->pos;
      continue;
    }
    break;
  }
  return c->Eat('}');
}

bool ValidateFile(const std::string& path, std::string* why) {
  std::ifstream in(path);
  if (!in) {
    *why = "cannot open";
    return false;
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  const std::string text = buf.str();
  Cursor c;
  c.text = &text;

  std::string key, bench_name;
  std::vector<BenchRow> rows;
  bool has_bench = false, has_rows = false;
  if (!c.Eat('{')) goto parse_error;
  for (;;) {
    if (!c.ParseString(&key)) goto parse_error;
    if (!c.Eat(':')) goto parse_error;
    if (key == "bench") {
      if (!c.ParseString(&bench_name)) goto parse_error;
      has_bench = true;
    } else if (key == "rows") {
      if (!c.Eat('[')) goto parse_error;
      has_rows = true;
      c.SkipWs();
      if (c.pos < text.size() && text[c.pos] == ']') {
        ++c.pos;
      } else {
        for (;;) {
          BenchRow row;
          if (!ParseRow(&c, &row)) goto parse_error;
          rows.push_back(row);
          c.SkipWs();
          if (c.pos < text.size() && text[c.pos] == ',') {
            ++c.pos;
            continue;
          }
          break;
        }
        if (!c.Eat(']')) goto parse_error;
      }
    } else {
      c.Fail("unknown top-level key \"" + key + "\"");
      goto parse_error;
    }
    c.SkipWs();
    if (c.pos < text.size() && text[c.pos] == ',') {
      ++c.pos;
      continue;
    }
    break;
  }
  if (!c.Eat('}')) goto parse_error;

  if (!has_bench || bench_name.empty()) {
    *why = "missing or empty \"bench\"";
    return false;
  }
  if (!has_rows) {
    *why = "missing \"rows\"";
    return false;
  }
  if (rows.empty()) {
    *why = "no rows";
    return false;
  }
  for (size_t i = 0; i < rows.size(); ++i) {
    const BenchRow& r = rows[i];
    const std::string where = "row " + std::to_string(i);
    if (!r.has_case || r.case_name.empty()) {
      *why = where + ": missing \"case\"";
      return false;
    }
    if (!r.has_cpu || !r.has_real || !r.has_bytes) {
      *why = where + " (" + r.case_name + "): missing measurement key";
      return false;
    }
    if (r.vcpu_ms < 0 || r.vreal_ms < 0 || r.bytes_moved < 0) {
      *why = where + " (" + r.case_name + "): negative measurement";
      return false;
    }
  }
  return true;

parse_error:
  *why = c.error.empty() ? "parse error" : c.error;
  return false;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr, "usage: %s <BENCH_*.json file or directory>...\n", argv[0]);
    return 2;
  }
  std::vector<std::string> files;
  for (int i = 1; i < argc; ++i) {
    const std::filesystem::path p(argv[i]);
    if (std::filesystem::is_directory(p)) {
      for (const auto& entry : std::filesystem::directory_iterator(p)) {
        const std::string name = entry.path().filename().string();
        if (name.rfind("BENCH_", 0) == 0 && entry.path().extension() == ".json") {
          files.push_back(entry.path().string());
        }
      }
    } else {
      files.push_back(p.string());
    }
  }
  if (files.empty()) {
    std::fprintf(stderr, "check_bench_json: no BENCH_*.json files found\n");
    return 1;
  }
  int bad = 0;
  for (const std::string& file : files) {
    std::string why;
    if (ValidateFile(file, &why)) {
      std::printf("ok      %s\n", file.c_str());
    } else {
      std::printf("INVALID %s: %s\n", file.c_str(), why.c_str());
      ++bad;
    }
  }
  return bad == 0 ? 0 : 1;
}
