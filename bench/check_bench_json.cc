// Schema gate for the standardized BENCH_<name>.json files and for JSONL run
// reports.
//
// Every bench binary writes a BENCH_<name>.json next to itself (see
// WriteBenchJson); bench/baselines/ commits a reference copy per bench.
// Downstream tooling (EXPERIMENTS.md tables, dashboards) parses them, so the
// shape is a contract:
//
//   {"bench": <string>, "rows": [{"case": <string>, "vcpu_ms": <number>,
//                                 "vreal_ms": <number>, "bytes_moved": <int>}...]}
//
// Cluster::WriteReport's JSONL output is a contract too — every line is one
// {"type": ...} object, and each type carries a fixed key set (report, meta,
// counter, gauge, histogram, span, phase_summary, trace_summary, sample,
// postmortem, alert, slo, decision, plus the bench harness's bench_row). The
// --report mode validates a report file line by line against that table; an
// unknown type or a missing/mistyped required key fails, so a writer cannot
// silently drift away from what the readers parse.
//
// Usage: check_bench_json <file-or-dir>...           (BENCH_*.json mode;
//        directories are scanned for BENCH_*.json)
//        check_bench_json --report <file.jsonl>...   (report-line mode)
// Exits 1 on any violation.
//
// The parser below covers exactly the JSON subset our writers emit (no
// third-party JSON dependency in this repo, by design).

#include <cctype>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

namespace {

struct Cursor {
  const std::string* text = nullptr;
  size_t pos = 0;
  std::string error;

  bool Fail(const std::string& why) {
    if (error.empty()) error = why + " at byte " + std::to_string(pos);
    return false;
  }
  void SkipWs() {
    while (pos < text->size() && std::isspace(static_cast<unsigned char>((*text)[pos]))) {
      ++pos;
    }
  }
  bool Eat(char c) {
    SkipWs();
    if (pos >= text->size() || (*text)[pos] != c) {
      return Fail(std::string("expected '") + c + "'");
    }
    ++pos;
    return true;
  }
  bool ParseString(std::string* out) {
    if (!Eat('"')) return false;
    out->clear();
    while (pos < text->size() && (*text)[pos] != '"') {
      char c = (*text)[pos++];
      if (c == '\\') {
        if (pos >= text->size()) return Fail("dangling escape");
        c = (*text)[pos++];
      }
      out->push_back(c);
    }
    if (pos >= text->size()) return Fail("unterminated string");
    ++pos;
    return true;
  }
  bool ParseNumber(double* out, bool* integral) {
    SkipWs();
    const size_t start = pos;
    if (pos < text->size() && ((*text)[pos] == '-' || (*text)[pos] == '+')) ++pos;
    bool dot = false;
    while (pos < text->size() &&
           (std::isdigit(static_cast<unsigned char>((*text)[pos])) || (*text)[pos] == '.' ||
            (*text)[pos] == 'e' || (*text)[pos] == 'E' || (*text)[pos] == '-' ||
            (*text)[pos] == '+')) {
      if ((*text)[pos] == '.' || (*text)[pos] == 'e' || (*text)[pos] == 'E') dot = true;
      ++pos;
    }
    if (pos == start) return Fail("expected number");
    *out = std::strtod(text->c_str() + start, nullptr);
    if (integral != nullptr) *integral = !dot;
    return true;
  }
};

// A minimal JSON value for the report-line mode (the BENCH mode keeps its
// fixed-shape parser above).
struct JsonValue {
  enum Kind { kNull, kBool, kNumber, kString, kObject, kArray };
  Kind kind = kNull;
  bool b = false;
  double num = 0;
  std::string str;
  std::vector<std::pair<std::string, JsonValue>> obj;
  std::vector<JsonValue> arr;

  const JsonValue* Find(const std::string& key) const {
    for (const auto& [k, v] : obj) {
      if (k == key) return &v;
    }
    return nullptr;
  }
};

const char* KindName(JsonValue::Kind k) {
  switch (k) {
    case JsonValue::kNull: return "null";
    case JsonValue::kBool: return "bool";
    case JsonValue::kNumber: return "number";
    case JsonValue::kString: return "string";
    case JsonValue::kObject: return "object";
    case JsonValue::kArray: return "array";
  }
  return "?";
}

bool ParseValue(Cursor* c, JsonValue* out) {
  c->SkipWs();
  if (c->pos >= c->text->size()) return c->Fail("unexpected end of input");
  const char ch = (*c->text)[c->pos];
  if (ch == '{') {
    ++c->pos;
    out->kind = JsonValue::kObject;
    c->SkipWs();
    if (c->pos < c->text->size() && (*c->text)[c->pos] == '}') {
      ++c->pos;
      return true;
    }
    for (;;) {
      std::string key;
      if (!c->ParseString(&key)) return false;
      if (!c->Eat(':')) return false;
      JsonValue v;
      if (!ParseValue(c, &v)) return false;
      out->obj.emplace_back(std::move(key), std::move(v));
      c->SkipWs();
      if (c->pos < c->text->size() && (*c->text)[c->pos] == ',') {
        ++c->pos;
        continue;
      }
      break;
    }
    return c->Eat('}');
  }
  if (ch == '[') {
    ++c->pos;
    out->kind = JsonValue::kArray;
    c->SkipWs();
    if (c->pos < c->text->size() && (*c->text)[c->pos] == ']') {
      ++c->pos;
      return true;
    }
    for (;;) {
      JsonValue v;
      if (!ParseValue(c, &v)) return false;
      out->arr.push_back(std::move(v));
      c->SkipWs();
      if (c->pos < c->text->size() && (*c->text)[c->pos] == ',') {
        ++c->pos;
        continue;
      }
      break;
    }
    return c->Eat(']');
  }
  if (ch == '"') {
    out->kind = JsonValue::kString;
    return c->ParseString(&out->str);
  }
  if (c->text->compare(c->pos, 4, "true") == 0) {
    out->kind = JsonValue::kBool;
    out->b = true;
    c->pos += 4;
    return true;
  }
  if (c->text->compare(c->pos, 5, "false") == 0) {
    out->kind = JsonValue::kBool;
    out->b = false;
    c->pos += 5;
    return true;
  }
  if (c->text->compare(c->pos, 4, "null") == 0) {
    out->kind = JsonValue::kNull;
    c->pos += 4;
    return true;
  }
  out->kind = JsonValue::kNumber;
  return c->ParseNumber(&out->num, nullptr);
}

// The report-line contract: required keys (and their kinds) per "type". A line
// may not carry keys outside this set either — the schema is exact, so adding
// a field to a writer forces the matching update here (and a look at the
// readers), never a silent drift.
struct ReportField {
  const char* key;
  JsonValue::Kind kind;
};
struct ReportSchema {
  const char* type;
  std::vector<ReportField> fields;
};

const std::vector<ReportSchema>& ReportSchemas() {
  using JV = JsonValue;
  static const std::vector<ReportSchema> schemas = {
      {"report", {{"virtual_now_ns", JV::kNumber}, {"hosts", JV::kArray}}},
      {"meta",
       {{"seed", JV::kNumber},
        {"hosts", JV::kNumber},
        {"config_fingerprint", JV::kString},
        {"armed", JV::kObject}}},
      {"counter",
       {{"host", JV::kString}, {"name", JV::kString}, {"value", JV::kNumber}}},
      {"gauge",
       {{"host", JV::kString}, {"name", JV::kString}, {"value", JV::kNumber}}},
      {"histogram",
       {{"host", JV::kString},
        {"name", JV::kString},
        {"count", JV::kNumber},
        {"sum_ns", JV::kNumber},
        {"min_ns", JV::kNumber},
        {"max_ns", JV::kNumber},
        {"p50_ns", JV::kNumber},
        {"p95_ns", JV::kNumber},
        {"p99_ns", JV::kNumber}}},
      {"span",
       {{"id", JV::kNumber},
        {"phase", JV::kString},
        {"host", JV::kString},
        {"pid", JV::kNumber},
        {"begin_ns", JV::kNumber},
        {"end_ns", JV::kNumber},
        {"dur_ns", JV::kNumber},
        {"trace_id", JV::kNumber},
        {"parent_id", JV::kNumber}}},
      {"phase_summary", {{"total_ns", JV::kNumber}, {"phases", JV::kObject}}},
      {"trace_summary",
       {{"trace_id", JV::kNumber},
        {"root_phase", JV::kString},
        {"root_host", JV::kString},
        {"total_ns", JV::kNumber},
        {"phases", JV::kObject},
        {"critical_path", JV::kArray}}},
      {"sample",
       {{"t_ns", JV::kNumber},
        {"host", JV::kString},
        {"down", JV::kBool},
        {"runnable", JV::kNumber},
        {"segcache_bytes", JV::kNumber},
        {"fault_score", JV::kNumber}}},
      {"postmortem",
       {{"t_ns", JV::kNumber},
        {"host", JV::kString},
        {"trace_id", JV::kNumber},
        {"reason", JV::kString}}},
      {"alert",
       {{"t_ns", JV::kNumber},
        {"rule", JV::kString},
        {"host", JV::kString},
        {"value", JV::kNumber},
        {"detail", JV::kString},
        {"resolved", JV::kBool},
        {"resolved_at_ns", JV::kNumber}}},
      {"slo",
       {{"name", JV::kString},
        {"host", JV::kString},
        {"events", JV::kNumber},
        {"bad", JV::kNumber},
        {"allowed", JV::kNumber},
        {"burn_fast", JV::kNumber},
        {"burn_slow", JV::kNumber},
        {"firing_fast", JV::kBool},
        {"firing_slow", JV::kBool}}},
      {"decision",
       {{"seq", JV::kNumber},
        {"t_ns", JV::kNumber},
        {"ctx", JV::kString},
        {"policy", JV::kString},
        {"src", JV::kString},
        {"from", JV::kString},
        {"pid", JV::kNumber},
        {"chosen", JV::kString},
        {"runner_up", JV::kString},
        {"margin_factor", JV::kString},
        {"margin", JV::kNumber},
        {"near_tie", JV::kBool},
        {"trace", JV::kNumber},
        {"rc", JV::kNumber},
        {"candidates", JV::kArray},
        {"exclusions", JV::kArray}}},
      {"bench_row",
       {{"figure", JV::kString},
        {"case", JV::kString},
        {"vcpu_ms", JV::kNumber},
        {"vreal_ms", JV::kNumber},
        {"cpu_norm", JV::kNumber},
        {"real_norm", JV::kNumber},
        {"paper", JV::kString}}},
  };
  return schemas;
}

// Per-element contracts for the nested arrays whose shape readers also rely on.
bool ValidateElements(const JsonValue& arr, const std::vector<ReportField>& fields,
                      const char* what, std::string* why) {
  for (size_t i = 0; i < arr.arr.size(); ++i) {
    const JsonValue& e = arr.arr[i];
    if (e.kind != JsonValue::kObject) {
      *why = std::string(what) + "[" + std::to_string(i) + "] is not an object";
      return false;
    }
    for (const ReportField& f : fields) {
      const JsonValue* v = e.Find(f.key);
      if (v == nullptr || v->kind != f.kind) {
        *why = std::string(what) + "[" + std::to_string(i) + "]: missing or mistyped \"" +
               f.key + "\"";
        return false;
      }
    }
  }
  return true;
}

bool ValidateReportLine(const std::string& line, std::string* why) {
  Cursor c;
  c.text = &line;
  JsonValue root;
  if (!ParseValue(&c, &root)) {
    *why = c.error.empty() ? "parse error" : c.error;
    return false;
  }
  c.SkipWs();
  if (c.pos != line.size()) {
    *why = "trailing bytes after object";
    return false;
  }
  if (root.kind != JsonValue::kObject) {
    *why = "line is not an object";
    return false;
  }
  const JsonValue* type = root.Find("type");
  if (type == nullptr || type->kind != JsonValue::kString) {
    *why = "missing \"type\"";
    return false;
  }
  const ReportSchema* schema = nullptr;
  for (const ReportSchema& s : ReportSchemas()) {
    if (type->str == s.type) {
      schema = &s;
      break;
    }
  }
  if (schema == nullptr) {
    *why = "unknown type \"" + type->str + "\"";
    return false;
  }
  for (const ReportField& f : schema->fields) {
    const JsonValue* v = root.Find(f.key);
    if (v == nullptr) {
      *why = type->str + ": missing \"" + std::string(f.key) + "\"";
      return false;
    }
    if (v->kind != f.kind) {
      *why = type->str + ": \"" + f.key + "\" is " + KindName(v->kind) + ", want " +
             KindName(f.kind);
      return false;
    }
  }
  for (const auto& [key, value] : root.obj) {
    if (key == "type") continue;
    bool known = false;
    for (const ReportField& f : schema->fields) {
      if (key == f.key) {
        known = true;
        break;
      }
    }
    if (!known) {
      *why = type->str + ": unexpected key \"" + key + "\"";
      return false;
    }
  }
  if (type->str == "decision") {
    using JV = JsonValue;
    if (!ValidateElements(*root.Find("candidates"),
                          {{"host", JV::kString},
                           {"load", JV::kNumber},
                           {"est_bytes", JV::kNumber},
                           {"wire", JV::kNumber},
                           {"restart_ns", JV::kNumber},
                           {"fault", JV::kNumber},
                           {"health", JV::kNumber}},
                          "candidates", why)) {
      return false;
    }
    if (!ValidateElements(*root.Find("exclusions"),
                          {{"host", JV::kString},
                           {"reason", JV::kString},
                           {"value", JV::kNumber}},
                          "exclusions", why)) {
      return false;
    }
  }
  return true;
}

bool ValidateReportFile(const std::string& path, std::string* why, int* lines) {
  std::ifstream in(path);
  if (!in) {
    *why = "cannot open";
    return false;
  }
  std::string line;
  int n = 0;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    ++n;
    std::string line_why;
    if (!ValidateReportLine(line, &line_why)) {
      *why = "line " + std::to_string(n) + ": " + line_why;
      return false;
    }
  }
  *lines = n;
  if (n == 0) {
    *why = "no report lines";
    return false;
  }
  return true;
}

struct BenchRow {
  std::string case_name;
  double vcpu_ms = -1;
  double vreal_ms = -1;
  double bytes_moved = -1;
  bool bytes_integral = false;
  bool has_case = false, has_cpu = false, has_real = false, has_bytes = false;
};

// Parses one row object, tolerating any key order (the writer is fixed-order,
// but the contract is the keys, not their order).
bool ParseRow(Cursor* c, BenchRow* row) {
  if (!c->Eat('{')) return false;
  for (;;) {
    std::string key;
    if (!c->ParseString(&key)) return false;
    if (!c->Eat(':')) return false;
    if (key == "case") {
      if (!c->ParseString(&row->case_name)) return false;
      row->has_case = true;
    } else if (key == "vcpu_ms") {
      if (!c->ParseNumber(&row->vcpu_ms, nullptr)) return false;
      row->has_cpu = true;
    } else if (key == "vreal_ms") {
      if (!c->ParseNumber(&row->vreal_ms, nullptr)) return false;
      row->has_real = true;
    } else if (key == "bytes_moved") {
      if (!c->ParseNumber(&row->bytes_moved, &row->bytes_integral)) return false;
      row->has_bytes = true;
    } else {
      return c->Fail("unknown row key \"" + key + "\"");
    }
    c->SkipWs();
    if (c->pos < c->text->size() && (*c->text)[c->pos] == ',') {
      ++c->pos;
      continue;
    }
    break;
  }
  return c->Eat('}');
}

bool ValidateFile(const std::string& path, std::string* why) {
  std::ifstream in(path);
  if (!in) {
    *why = "cannot open";
    return false;
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  const std::string text = buf.str();
  Cursor c;
  c.text = &text;

  std::string key, bench_name;
  std::vector<BenchRow> rows;
  bool has_bench = false, has_rows = false;
  if (!c.Eat('{')) goto parse_error;
  for (;;) {
    if (!c.ParseString(&key)) goto parse_error;
    if (!c.Eat(':')) goto parse_error;
    if (key == "bench") {
      if (!c.ParseString(&bench_name)) goto parse_error;
      has_bench = true;
    } else if (key == "rows") {
      if (!c.Eat('[')) goto parse_error;
      has_rows = true;
      c.SkipWs();
      if (c.pos < text.size() && text[c.pos] == ']') {
        ++c.pos;
      } else {
        for (;;) {
          BenchRow row;
          if (!ParseRow(&c, &row)) goto parse_error;
          rows.push_back(row);
          c.SkipWs();
          if (c.pos < text.size() && text[c.pos] == ',') {
            ++c.pos;
            continue;
          }
          break;
        }
        if (!c.Eat(']')) goto parse_error;
      }
    } else {
      c.Fail("unknown top-level key \"" + key + "\"");
      goto parse_error;
    }
    c.SkipWs();
    if (c.pos < text.size() && text[c.pos] == ',') {
      ++c.pos;
      continue;
    }
    break;
  }
  if (!c.Eat('}')) goto parse_error;

  if (!has_bench || bench_name.empty()) {
    *why = "missing or empty \"bench\"";
    return false;
  }
  if (!has_rows) {
    *why = "missing \"rows\"";
    return false;
  }
  if (rows.empty()) {
    *why = "no rows";
    return false;
  }
  for (size_t i = 0; i < rows.size(); ++i) {
    const BenchRow& r = rows[i];
    const std::string where = "row " + std::to_string(i);
    if (!r.has_case || r.case_name.empty()) {
      *why = where + ": missing \"case\"";
      return false;
    }
    if (!r.has_cpu || !r.has_real || !r.has_bytes) {
      *why = where + " (" + r.case_name + "): missing measurement key";
      return false;
    }
    if (r.vcpu_ms < 0 || r.vreal_ms < 0 || r.bytes_moved < 0) {
      *why = where + " (" + r.case_name + "): negative measurement";
      return false;
    }
  }
  return true;

parse_error:
  *why = c.error.empty() ? "parse error" : c.error;
  return false;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr,
                 "usage: %s <BENCH_*.json file or directory>...\n"
                 "       %s --report <report.jsonl>...\n",
                 argv[0], argv[0]);
    return 2;
  }
  if (std::string(argv[1]) == "--report") {
    if (argc < 3) {
      std::fprintf(stderr, "check_bench_json: --report needs at least one file\n");
      return 2;
    }
    int bad = 0;
    for (int i = 2; i < argc; ++i) {
      std::string why;
      int lines = 0;
      if (ValidateReportFile(argv[i], &why, &lines)) {
        std::printf("ok      %s (%d lines)\n", argv[i], lines);
      } else {
        std::printf("INVALID %s: %s\n", argv[i], why.c_str());
        ++bad;
      }
    }
    return bad == 0 ? 0 : 1;
  }
  std::vector<std::string> files;
  for (int i = 1; i < argc; ++i) {
    const std::filesystem::path p(argv[i]);
    if (std::filesystem::is_directory(p)) {
      for (const auto& entry : std::filesystem::directory_iterator(p)) {
        const std::string name = entry.path().filename().string();
        if (name.rfind("BENCH_", 0) == 0 && entry.path().extension() == ".json") {
          files.push_back(entry.path().string());
        }
      }
    } else {
      files.push_back(p.string());
    }
  }
  if (files.empty()) {
    std::fprintf(stderr, "check_bench_json: no BENCH_*.json files found\n");
    return 1;
  }
  int bad = 0;
  for (const std::string& file : files) {
    std::string why;
    if (ValidateFile(file, &why)) {
      std::printf("ok      %s\n", file.c_str());
    } else {
      std::printf("INVALID %s: %s\n", file.c_str(), why.c_str());
      ++bad;
    }
  }
  return bad == 0 ? 0 : 1;
}
