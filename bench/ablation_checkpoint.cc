// Ablation D: checkpointing overhead vs interval (the Section 8 application).
//
// A long-running batch job is checkpointed every T seconds. Each snapshot costs a
// dump + a local restart, so tighter intervals trade runtime overhead for a
// smaller recovery window. We report the job's completion-time inflation.

#include "bench/bench_util.h"
#include "src/apps/checkpoint.h"

namespace pmig::bench {
namespace {

// A hog big enough to run for ~40 virtual seconds.
constexpr const char* kJobIterations = "10000000";

sim::Nanos RunJob(int checkpoint_every_s, int* checkpoints_taken) {
  TestbedOptions options;
  options.num_hosts = 1;
  Testbed world(options);
  world.host("brick").vfs().SetupMkdirAll("/ckpt");
  const int32_t pid = world.StartVm("brick", "/bin/hog", {"hog", kJobIterations});

  const sim::Nanos t0 = world.cluster().clock().now();
  if (checkpoint_every_s > 0) {
    kernel::SpawnOptions opts;  // root
    auto taken = std::make_shared<int>(0);
    auto snapshotting = std::make_shared<bool>(false);
    world.host("brick").SpawnNative(
        "checkpointd",
        [pid, checkpoint_every_s, taken, snapshotting](kernel::SyscallApi& api) {
          int32_t current = pid;
          for (;;) {
            api.Sleep(sim::Seconds(checkpoint_every_s));
            *snapshotting = true;
            const auto r = apps::TakeCheckpoint(api, current, "/ckpt", *taken);
            *snapshotting = false;
            if (!r.ok()) break;  // the job has finished
            current = r->new_pid;
            ++*taken;
          }
          return 0;
        },
        opts);
    // Measure to *job completion*: no live VM process while no snapshot is in
    // flight (mid-snapshot the job is momentarily dead by design). The daemon's
    // final sleep-and-discover-gone cycle is not part of the job's runtime.
    world.cluster().RunUntil(
        [&world, snapshotting] {
          if (*snapshotting) return false;
          for (const auto& host : world.cluster().hosts()) {
            for (kernel::Proc* p : host->ListProcs()) {
              if (p->kind == kernel::ProcKind::kVm && p->Alive()) return false;
            }
          }
          return true;
        },
        sim::Seconds(3000));
    const sim::Nanos done = world.cluster().clock().now();
    world.cluster().RunUntilIdle(sim::Seconds(3000));  // drain the daemon
    if (checkpoints_taken != nullptr) *checkpoints_taken = *taken;
    return done - t0;
  }
  world.cluster().RunUntilIdle(sim::Seconds(3000));
  if (checkpoints_taken != nullptr) *checkpoints_taken = 0;
  return world.cluster().clock().now() - t0;
}

}  // namespace
}  // namespace pmig::bench

int main(int argc, char** argv) {
  using namespace pmig::bench;
  ParseBenchFlags(&argc, argv);
  using pmig::sim::Nanos;
  namespace sim = pmig::sim;
  std::printf("\n=== Ablation D: checkpoint interval vs job slowdown (Section 8) ===\n");
  int base_ckpts = 0;
  const sim::Nanos baseline = RunJob(0, &base_ckpts);
  std::printf("%14s %12s %14s %10s\n", "interval (s)", "checkpoints", "job time (s)",
              "overhead");
  std::printf("%14s %12d %14.2f %9.1f%%\n", "none", 0, sim::ToSeconds(baseline), 0.0);
  for (const int interval : {20, 10, 5}) {
    int ckpts = 0;
    const sim::Nanos t = RunJob(interval, &ckpts);
    std::printf("%14d %12d %14.2f %9.1f%%\n", interval, ckpts, sim::ToSeconds(t),
                100.0 * static_cast<double>(t - baseline) / static_cast<double>(baseline));
  }
  std::printf("\n(each snapshot costs a SIGDUMP + file copies + a local restart; the paper\n"
              " proposes exactly this application but does not measure it)\n");

  RegisterSim("ablationD/no_checkpoints", [] {
    return Measurement{0, sim::ToMillis(RunJob(0, nullptr))};
  });
  RegisterSim("ablationD/every_10s", [] {
    return Measurement{0, sim::ToMillis(RunJob(10, nullptr))};
  });
  return RunBenchmarks(argc, argv);
}
