// Ablation: the incremental migration data path (dirty-page deltas + the
// content-addressed segment cache).
//
// Two claims, both of which must emerge from the cost model (fewer bytes through
// the dump's DiskIo and the wire's NetIo — no hard-coded discounts):
//
//  A. Re-migrating a binary to a host that has already seen it: with --cached,
//     text and the delta base travel by content digest, both ends hit their
//     /var/segcache copies, and the second migration's real time drops ≥2x.
//
//  B. Checkpointing a large, mostly-idle data segment: once the first
//     incremental checkpoint has seeded the cache, later snapshots dump only the
//     dirty pages, cutting steady-state checkpoint time by ≥40%.
//
// --check runs both comparisons and fails (exit 1) if incremental is ever slower
// than the full-dump baseline — the coarse no-regression gate wired into ctest.

#include "bench/bench_util.h"
#include "src/apps/checkpoint.h"

namespace pmig::bench {
namespace {

// ~100 KB text + ~100 KB data: a big 1987 program whose data is mostly bss the
// counter loop never touches — the favourable (and common) case for deltas.
std::string BigJobSource() {
  return core::WithPadding(core::CounterProgramSource(), /*extra_text_instructions=*/12500,
                           /*extra_data_bytes=*/100000);
}

Testbed MakeWorld(int num_hosts) {
  TestbedOptions options;
  options.num_hosts = num_hosts;
  options.file_server_home = true;
  options.daemons = true;        // daemon transport, so rsh setup doesn't mask the ratio
  options.dirty_tracking = true; // arm page tracking at exec
  options.metrics = true;        // for bytes_moved (observation-only)
  Testbed world(options);
  const std::string padded = BigJobSource();
  for (const auto& host : world.cluster().hosts()) {
    core::InstallProgram(*host, "/bin/bigjob", padded);
  }
  return world;
}

int32_t StartBlockedBigJob(Testbed& world, const std::string& host_name) {
  const int32_t pid = world.StartVm(host_name, "/bin/bigjob");
  world.RunUntilBlocked(host_name, pid);
  world.console(host_name)->Type("x\n");
  world.RunUntilBlocked(host_name, pid);
  return pid;
}

void MigrateAndWait(Testbed& world, int32_t pid, bool cached) {
  std::vector<std::string> args = {"-p",       std::to_string(pid), "-f", "brick",
                                   "-t",       "schooner",          "--daemon"};
  if (cached) args.push_back("--cached");
  const int32_t mig =
      world.StartTool("brick", "migrate", args, kUserUid, world.console("brick"));
  world.RunUntilExited("brick", mig, sim::Seconds(600));
}

// Scenario A: a first --cached migration warms both hosts' segment caches; the
// measured leg then migrates a *second* instance of the same binary the same way.
Measurement MeasureSecondMigration(bool cached) {
  Testbed world = MakeWorld(2);
  const int32_t first = StartBlockedBigJob(world, "brick");
  MigrateAndWait(world, first, /*cached=*/true);

  const int32_t second = StartBlockedBigJob(world, "brick");
  const sim::Nanos cpu0 = world.cluster().TotalCpu();
  const sim::Nanos t0 = world.cluster().clock().now();
  const int64_t bytes0 = TotalBytesMoved(world);
  MigrateAndWait(world, second, cached);
  return Measurement{sim::ToMillis(world.cluster().TotalCpu() - cpu0),
                     sim::ToMillis(world.cluster().clock().now() - t0),
                     TotalBytesMoved(world) - bytes0};
}

// Scenario B: checkpoint the blocked big job twice; the first snapshot seeds the
// cache (incremental mode), the measured second one is the steady state.
Measurement MeasureSteadyCheckpoint(bool incremental) {
  Testbed world = MakeWorld(1);
  world.host("brick").vfs().SetupMkdirAll("/ckpt");
  const int32_t pid = StartBlockedBigJob(world, "brick");

  auto take = [&world, incremental](int32_t target, int index,
                                    std::shared_ptr<int32_t> new_pid) {
    kernel::SpawnOptions opts;  // root
    const int32_t ck = world.host("brick").SpawnNative(
        "ckpt", [target, index, incremental, new_pid](kernel::SyscallApi& api) {
          const auto r = apps::TakeCheckpoint(api, target, "/ckpt", index, incremental);
          if (!r.ok()) return 1;
          *new_pid = r->new_pid;
          return 0;
        },
        opts);
    world.RunUntilExited("brick", ck, sim::Seconds(600));
  };

  auto survivor = std::make_shared<int32_t>(0);
  take(pid, 0, survivor);

  const sim::Nanos cpu0 = world.cluster().TotalCpu();
  const sim::Nanos t0 = world.cluster().clock().now();
  const int64_t bytes0 = TotalBytesMoved(world);
  take(*survivor, 1, survivor);
  return Measurement{sim::ToMillis(world.cluster().TotalCpu() - cpu0),
                     sim::ToMillis(world.cluster().clock().now() - t0),
                     TotalBytesMoved(world) - bytes0};
}

}  // namespace
}  // namespace pmig::bench

int main(int argc, char** argv) {
  using namespace pmig::bench;
  bool check = false;
  {
    int out = 1;
    for (int i = 1; i < argc; ++i) {
      if (std::strcmp(argv[i], "--check") == 0) {
        check = true;
      } else {
        argv[out++] = argv[i];
      }
    }
    argc = out;
  }
  ParseBenchFlags(&argc, argv);

  const Measurement mig_full = MeasureSecondMigration(/*cached=*/false);
  const Measurement mig_cached = MeasureSecondMigration(/*cached=*/true);
  const Measurement ckpt_full = MeasureSteadyCheckpoint(/*incremental=*/false);
  const Measurement ckpt_incr = MeasureSteadyCheckpoint(/*incremental=*/true);

  const std::vector<Row> mig_rows = {
      {"2nd migration, full dump", mig_full, "baseline"},
      {"2nd migration, --cached (warm)", mig_cached, "target: >=2x faster"},
  };
  const std::vector<Row> ckpt_rows = {
      {"steady checkpoint, full dump", ckpt_full, "baseline"},
      {"steady checkpoint, incremental", ckpt_incr, "target: >=40% faster"},
  };
  PrintFigure("Ablation: warm-cache re-migration of the same binary", mig_rows, 0);
  PrintFigure("Ablation: steady-state checkpoint of a mostly-idle job", ckpt_rows, 0);

  std::vector<Row> all = mig_rows;
  all.insert(all.end(), ckpt_rows.begin(), ckpt_rows.end());
  WriteBenchJson("ablation_incremental", all);

  std::printf("\nmigration speedup: %.2fx   bytes: %lld -> %lld\n",
              mig_full.real_ms / mig_cached.real_ms,
              static_cast<long long>(mig_full.bytes_moved),
              static_cast<long long>(mig_cached.bytes_moved));
  std::printf("checkpoint reduction: %.1f%%   bytes: %lld -> %lld\n",
              100.0 * (1.0 - ckpt_incr.real_ms / ckpt_full.real_ms),
              static_cast<long long>(ckpt_full.bytes_moved),
              static_cast<long long>(ckpt_incr.bytes_moved));

  if (check) {
    // The ctest gate: the incremental path must never be slower than the full
    // dump it replaces.
    const bool ok = mig_cached.real_ms <= mig_full.real_ms &&
                    ckpt_incr.real_ms <= ckpt_full.real_ms;
    std::printf("check: %s\n", ok ? "ok" : "REGRESSION: incremental slower than full");
    return ok ? 0 : 1;
  }

  RegisterSim("incremental/migrate_full", [] { return MeasureSecondMigration(false); });
  RegisterSim("incremental/migrate_cached", [] { return MeasureSecondMigration(true); });
  RegisterSim("incremental/ckpt_full", [] { return MeasureSteadyCheckpoint(false); });
  RegisterSim("incremental/ckpt_incremental", [] { return MeasureSteadyCheckpoint(true); });
  return RunBenchmarks(argc, argv);
}
