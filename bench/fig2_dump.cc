// Figure 2: relative performance of SIGQUIT, SIGDUMP, and dumpproc (Section 6.2).
//
// The paper's counter program is started and killed after its first input prompt,
// three ways; CPU and real time "required to kill the process" are measured.
// Paper result (normalised to SIGQUIT = 1): SIGDUMP ≈ 3x CPU and real; dumpproc
// ≈ 4x CPU and ≈ 6x real (the real-time gap is dumpproc's 1-second poll sleep
// while the dying process writes the dump files).

#include "bench/bench_util.h"

namespace pmig::bench {
namespace {

enum class KillMode { kSigQuit, kSigDump, kDumpproc };

Measurement MeasureKill(KillMode mode, bool instrumented = false) {
  TestbedOptions options;
  options.num_hosts = 2;
  options.file_server_home = true;
  options.metrics = true;  // for bytes_moved; observation-only, times unchanged
  if (instrumented) EnableAllInstrumentation(&options);
  Testbed world(options);
  InstallPaddedCounter(world);
  kernel::Kernel& k = world.host("brick");

  const int32_t pid = StartBlockedCounter(world, "brick");
  const sim::Nanos cpu0 = world.cluster().TotalCpu();
  const sim::Nanos t0 = world.cluster().clock().now();
  const int64_t bytes0 = TotalBytesMoved(world);

  int32_t tool_pid = -1;
  switch (mode) {
    case KillMode::kSigQuit: {
      const Status st = k.PostSignal(pid, vm::abi::kSigQuit, nullptr);
      (void)st;
      break;
    }
    case KillMode::kSigDump: {
      const Status st = k.PostSignal(pid, vm::abi::kSigDump, nullptr);
      (void)st;
      break;
    }
    case KillMode::kDumpproc:
      tool_pid = world.StartTool("brick", "dumpproc", {"-p", std::to_string(pid)});
      break;
  }

  // The operation is complete when the process is gone — and, for dumpproc, when
  // the tool itself has finished rewriting filesXXXXX.
  world.RunUntilExited("brick", pid);
  if (tool_pid > 0) world.RunUntilExited("brick", tool_pid);

  Measurement m;
  m.cpu_ms = sim::ToMillis(world.cluster().TotalCpu() - cpu0);
  m.real_ms = sim::ToMillis(world.cluster().clock().now() - t0);
  m.bytes_moved = TotalBytesMoved(world) - bytes0;
  return m;
}

}  // namespace
}  // namespace pmig::bench

int main(int argc, char** argv) {
  using namespace pmig::bench;
  ParseBenchFlags(&argc, argv);

  // --check: the bit-identical gate. Every scenario re-run with the whole
  // observability layer on (trace, spans, flight recorder, sampler) must
  // reproduce the plain run's measurements exactly.
  if (ParseBoolFlag(&argc, argv, "--check")) {
    int failures = 0;
    const struct {
      const char* name;
      KillMode mode;
    } cases[] = {{"sigquit", KillMode::kSigQuit},
                 {"sigdump", KillMode::kSigDump},
                 {"dumpproc", KillMode::kDumpproc}};
    for (const auto& c : cases) {
      const Measurement plain = MeasureKill(c.mode, false);
      const Measurement instrumented = MeasureKill(c.mode, true);
      const bool ok = SameMeasurement(plain, instrumented);
      std::printf("fig2/%s: plain cpu=%.4f real=%.4f bytes=%lld | instrumented "
                  "cpu=%.4f real=%.4f bytes=%lld -> %s\n",
                  c.name, plain.cpu_ms, plain.real_ms,
                  static_cast<long long>(plain.bytes_moved), instrumented.cpu_ms,
                  instrumented.real_ms, static_cast<long long>(instrumented.bytes_moved),
                  ok ? "IDENTICAL" : "MISMATCH");
      failures += ok ? 0 : 1;
    }
    return failures == 0 ? 0 : 1;
  }

  const Measurement quit = MeasureKill(KillMode::kSigQuit);
  const Measurement dump = MeasureKill(KillMode::kSigDump);
  const Measurement tool = MeasureKill(KillMode::kDumpproc);
  const std::vector<Row> rows = {
      {"SIGQUIT (core dump)", quit, "1.0 / 1.0"},
      {"SIGDUMP (migration dump)", dump, "~3x cpu, ~3x real"},
      {"dumpproc application", tool, "~4x cpu, ~6x real"},
  };
  PrintFigure("Figure 2: killing the test program (normalised to SIGQUIT)", rows, 0);
  WriteBenchJson("fig2", rows);

  RegisterSim("fig2/sigquit", [] { return MeasureKill(KillMode::kSigQuit); });
  RegisterSim("fig2/sigdump", [] { return MeasureKill(KillMode::kSigDump); });
  RegisterSim("fig2/dumpproc", [] { return MeasureKill(KillMode::kDumpproc); });
  return RunBenchmarks(argc, argv);
}
