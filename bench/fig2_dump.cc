// Figure 2: relative performance of SIGQUIT, SIGDUMP, and dumpproc (Section 6.2).
//
// The paper's counter program is started and killed after its first input prompt,
// three ways; CPU and real time "required to kill the process" are measured.
// Paper result (normalised to SIGQUIT = 1): SIGDUMP ≈ 3x CPU and real; dumpproc
// ≈ 4x CPU and ≈ 6x real (the real-time gap is dumpproc's 1-second poll sleep
// while the dying process writes the dump files).

#include "bench/bench_util.h"

namespace pmig::bench {
namespace {

enum class KillMode { kSigQuit, kSigDump, kDumpproc };

Measurement MeasureKill(KillMode mode) {
  TestbedOptions options;
  options.num_hosts = 2;
  options.file_server_home = true;
  options.metrics = true;  // for bytes_moved; observation-only, times unchanged
  Testbed world(options);
  InstallPaddedCounter(world);
  kernel::Kernel& k = world.host("brick");

  const int32_t pid = StartBlockedCounter(world, "brick");
  const sim::Nanos cpu0 = world.cluster().TotalCpu();
  const sim::Nanos t0 = world.cluster().clock().now();
  const int64_t bytes0 = TotalBytesMoved(world);

  int32_t tool_pid = -1;
  switch (mode) {
    case KillMode::kSigQuit: {
      const Status st = k.PostSignal(pid, vm::abi::kSigQuit, nullptr);
      (void)st;
      break;
    }
    case KillMode::kSigDump: {
      const Status st = k.PostSignal(pid, vm::abi::kSigDump, nullptr);
      (void)st;
      break;
    }
    case KillMode::kDumpproc:
      tool_pid = world.StartTool("brick", "dumpproc", {"-p", std::to_string(pid)});
      break;
  }

  // The operation is complete when the process is gone — and, for dumpproc, when
  // the tool itself has finished rewriting filesXXXXX.
  world.RunUntilExited("brick", pid);
  if (tool_pid > 0) world.RunUntilExited("brick", tool_pid);

  Measurement m;
  m.cpu_ms = sim::ToMillis(world.cluster().TotalCpu() - cpu0);
  m.real_ms = sim::ToMillis(world.cluster().clock().now() - t0);
  m.bytes_moved = TotalBytesMoved(world) - bytes0;
  return m;
}

}  // namespace
}  // namespace pmig::bench

int main(int argc, char** argv) {
  using namespace pmig::bench;
  ParseReportFlag(&argc, argv);
  const Measurement quit = MeasureKill(KillMode::kSigQuit);
  const Measurement dump = MeasureKill(KillMode::kSigDump);
  const Measurement tool = MeasureKill(KillMode::kDumpproc);
  const std::vector<Row> rows = {
      {"SIGQUIT (core dump)", quit, "1.0 / 1.0"},
      {"SIGDUMP (migration dump)", dump, "~3x cpu, ~3x real"},
      {"dumpproc application", tool, "~4x cpu, ~6x real"},
  };
  PrintFigure("Figure 2: killing the test program (normalised to SIGQUIT)", rows, 0);
  WriteBenchJson("fig2", rows);

  RegisterSim("fig2/sigquit", [] { return MeasureKill(KillMode::kSigQuit); });
  RegisterSim("fig2/sigdump", [] { return MeasureKill(KillMode::kSigDump); });
  RegisterSim("fig2/dumpproc", [] { return MeasureKill(KillMode::kDumpproc); });
  return RunBenchmarks(argc, argv);
}
