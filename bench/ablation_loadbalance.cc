// Ablation E: load balancing via migration (the Section 8 application).
//
// N CPU-bound jobs land on one machine of an M-machine cluster. We compare batch
// makespan without migration, with rsh-based migration, and with daemon-based
// migration — quantifying both the benefit of balancing and the paper's remark
// that "the migrate application may be too slow in terms of real time response"
// when built on rsh.

#include "bench/bench_util.h"
#include "src/apps/load_balancer.h"

namespace pmig::bench {
namespace {

constexpr const char* kJobIterations = "2000000";  // ~8 virtual seconds each

enum class Mode { kNone, kRsh, kDaemon };

sim::Nanos Makespan(int jobs, int hosts, Mode mode, int* migrations) {
  TestbedOptions options;
  options.num_hosts = hosts;
  options.daemons = true;
  options.metrics = true;  // the balancer surveys load via each host's gauge
  Testbed world(options);
  const std::string origin = "brick";
  for (int i = 0; i < jobs; ++i) {
    world.StartVm(origin, "/bin/hog", {"hog", kJobIterations});
  }
  const sim::Nanos t0 = world.cluster().clock().now();
  auto stats = std::make_shared<apps::LoadBalancerStats>();
  if (mode != Mode::kNone) {
    net::Network* net = &world.cluster().network();
    kernel::SpawnOptions opts;  // root
    world.host(origin).SpawnNative(
        "balancer",
        [net, mode, stats](kernel::SyscallApi& api) {
          apps::LoadBalancerOptions lb;
          lb.poll_interval = sim::Seconds(2);
          lb.min_age = sim::Seconds(1);
          lb.use_daemon = mode == Mode::kDaemon;
          lb.max_rounds = 200;
          *stats = apps::RunLoadBalancer(api, *net, lb);
          return 0;
        },
        opts);
  }
  // Run until every hog is done.
  world.cluster().RunUntil(
      [&world] {
        for (const auto& host : world.cluster().hosts()) {
          for (kernel::Proc* p : host->ListProcs()) {
            if (p->kind == kernel::ProcKind::kVm && p->Alive()) return false;
          }
        }
        return true;
      },
      sim::Seconds(3000));
  const sim::Nanos makespan = world.cluster().clock().now() - t0;
  world.cluster().RunUntilIdle(sim::Seconds(600));  // let the balancer exit
  if (migrations != nullptr) *migrations = stats->migrations;
  return makespan;
}

}  // namespace
}  // namespace pmig::bench

int main(int argc, char** argv) {
  using namespace pmig::bench;
  ParseBenchFlags(&argc, argv);
  using pmig::sim::Nanos;
  namespace sim = pmig::sim;
  std::printf("\n=== Ablation E: load balancing by migration (Section 8) ===\n");
  std::printf("%6s %6s %10s | %13s %11s %9s\n", "jobs", "hosts", "balancer",
              "makespan (s)", "migrations", "speedup");
  for (const int hosts : {2, 3}) {
    const int jobs = 2 * hosts;
    int m0 = 0, m1 = 0, m2 = 0;
    const sim::Nanos none = Makespan(jobs, hosts, Mode::kNone, &m0);
    const sim::Nanos rsh = Makespan(jobs, hosts, Mode::kRsh, &m1);
    const sim::Nanos daemon = Makespan(jobs, hosts, Mode::kDaemon, &m2);
    std::printf("%6d %6d %10s | %13.1f %11d %9s\n", jobs, hosts, "none",
                sim::ToSeconds(none), m0, "1.00x");
    std::printf("%6d %6d %10s | %13.1f %11d %8.2fx\n", jobs, hosts, "rsh",
                sim::ToSeconds(rsh), m1,
                static_cast<double>(none) / static_cast<double>(rsh));
    std::printf("%6d %6d %10s | %13.1f %11d %8.2fx\n", jobs, hosts, "daemon",
                sim::ToSeconds(daemon), m2,
                static_cast<double>(none) / static_cast<double>(daemon));
  }
  std::printf("\n(the daemon balancer approaches the ideal hosts-fold speedup; rsh's\n"
              " per-migration connection cost eats into it — the paper's point that a\n"
              " 'more efficient [application] would have to be written' for this use)\n");

  RegisterSim("ablationE/none", [] {
    return Measurement{0, sim::ToMillis(Makespan(4, 2, Mode::kNone, nullptr))};
  });
  RegisterSim("ablationE/rsh", [] {
    return Measurement{0, sim::ToMillis(Makespan(4, 2, Mode::kRsh, nullptr))};
  });
  RegisterSim("ablationE/daemon", [] {
    return Measurement{0, sim::ToMillis(Makespan(4, 2, Mode::kDaemon, nullptr))};
  });
  return RunBenchmarks(argc, argv);
}
