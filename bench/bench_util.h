// Shared benchmark plumbing.
//
// Every bench binary reproduces one figure of the paper. Because all timing is
// virtual (the simulator's deterministic clock), a "benchmark" runs a scenario to
// completion and reads off virtual CPU/real time; google-benchmark is used as the
// harness (manual time = virtual real seconds) and each binary additionally prints
// a paper-style table, normalised the way the figure is, with the paper's reported
// shape alongside for comparison. EXPERIMENTS.md records these numbers.

#ifndef PMIG_BENCH_BENCH_UTIL_H_
#define PMIG_BENCH_BENCH_UTIL_H_

#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstring>
#include <fstream>
#include <functional>
#include <string>
#include <vector>

#include "src/cluster/testbed.h"

namespace pmig::bench {

using testbed::kUserUid;
using testbed::Testbed;
using testbed::TestbedOptions;

// One measured operation, in virtual time. bytes_moved is the disk+network
// payload traffic during the measured window (filled only by scenarios that run
// with metrics on; it is observation-only and never affects the virtual times).
struct Measurement {
  double cpu_ms = 0;
  double real_ms = 0;
  int64_t bytes_moved = 0;
};

struct Row {
  std::string name;
  Measurement m;
  std::string paper_note;  // what the paper reports for this row
};

// Report destination set by --report=FILE (empty: no report). Each bench appends
// JSONL rows here so figure results are machine-readable as well as printed.
inline std::string& ReportPath() {
  static std::string path;
  return path;
}

// Chrome trace destination set by --trace-out=FILE (empty: no trace). Benches
// that run an instrumented scenario write its Perfetto-loadable timeline here.
inline std::string& TraceOutPath() {
  static std::string path;
  return path;
}

// The shared bench flags, stripped from argv before google-benchmark sees it
// (it rejects unrecognised flags). Call first in every bench main(). Every flag
// accepts both --flag=VALUE and --flag VALUE, so all benches behave alike.
inline void ParseBenchFlags(int* argc, char** argv) {
  const auto take = [argc, argv](int* i, const char* name, size_t len,
                                 std::string* dest) {
    if (std::strncmp(argv[*i], name, len) == 0 && argv[*i][len] == '=') {
      *dest = argv[*i] + len + 1;
      return true;
    }
    if (std::strcmp(argv[*i], name) == 0 && *i + 1 < *argc) {
      *dest = argv[++*i];
      return true;
    }
    return false;
  };
  int out = 1;
  for (int i = 1; i < *argc; ++i) {
    if (take(&i, "--report", 8, &ReportPath())) continue;
    if (take(&i, "--trace-out", 11, &TraceOutPath())) continue;
    argv[out++] = argv[i];
  }
  *argc = out;
}

// True when `flag` (e.g. "--check") is present; strips it from argv.
inline bool ParseBoolFlag(int* argc, char** argv, const char* flag) {
  bool found = false;
  int out = 1;
  for (int i = 1; i < *argc; ++i) {
    if (std::strcmp(argv[i], flag) == 0) {
      found = true;
    } else {
      argv[out++] = argv[i];
    }
  }
  *argc = out;
  return found;
}

// Exact comparison for the bit-identical gates: a scenario re-run with the
// observability layer enabled (spans, tracing, flight recorder, sampler) must
// reproduce every measured value to the last bit.
inline bool SameMeasurement(const Measurement& a, const Measurement& b) {
  return a.cpu_ms == b.cpu_ms && a.real_ms == b.real_ms && a.bytes_moved == b.bytes_moved;
}

// Turns every observation-only subsystem on. Virtual times must not move.
inline void EnableAllInstrumentation(TestbedOptions* options) {
  options->metrics = true;
  options->trace = true;
  options->spans = true;
  options->flight_recorder = true;
  options->sample_period = sim::Millis(50);
  options->decision_log = true;
}

// Appends one raw JSONL line to the report file (no-op without --report).
inline void WriteReportLine(const std::string& json_line) {
  if (ReportPath().empty()) return;
  std::ofstream out(ReportPath(), std::ios::app);
  if (out) out << json_line << "\n";
}

// One machine-readable result row.
inline void WriteBenchRow(const std::string& figure, const std::string& name,
                          const Measurement& m, double cpu_norm, double real_norm,
                          const std::string& paper_note) {
  if (ReportPath().empty()) return;
  char buf[512];
  std::snprintf(buf, sizeof(buf),
                "{\"type\":\"bench_row\",\"figure\":\"%s\",\"case\":\"%s\","
                "\"vcpu_ms\":%.4f,\"vreal_ms\":%.4f,\"cpu_norm\":%.4f,\"real_norm\":%.4f,"
                "\"paper\":\"%s\"}",
                sim::JsonEscape(figure).c_str(), sim::JsonEscape(name).c_str(), m.cpu_ms,
                m.real_ms, cpu_norm, real_norm, sim::JsonEscape(paper_note).c_str());
  WriteReportLine(buf);
}

// Bytes the scenario put on disk or on the wire, summed across every host:
// all writes plus NFS reads (local reads just revisit data already in place).
// Zero unless the testbed was built with metrics on. Subtract a snapshot taken
// at the start of the measured window to get bytes moved by the scenario.
inline int64_t TotalBytesMoved(Testbed& world) {
  int64_t total = 0;
  for (const auto& host : world.cluster().hosts()) {
    const sim::MetricsRegistry& m = host->metrics();
    total += m.Counter("vfs.bytes_written") + m.Counter("vfs.nfs_bytes_written") +
             m.Counter("vfs.nfs_bytes_read");
  }
  return total;
}

// Writes the standardized BENCH_<name>.json next to the binary: one object per
// row with the virtual-time totals and bytes moved. Silent (no stdout), so the
// printed figure tables stay bit-identical to earlier runs.
inline void WriteBenchJson(const std::string& bench, const std::vector<Row>& rows) {
  std::ofstream out("BENCH_" + bench + ".json");
  if (!out) return;
  out << "{\"bench\":\"" << sim::JsonEscape(bench) << "\",\"rows\":[";
  for (size_t i = 0; i < rows.size(); ++i) {
    char buf[384];
    std::snprintf(buf, sizeof(buf),
                  "%s{\"case\":\"%s\",\"vcpu_ms\":%.4f,\"vreal_ms\":%.4f,"
                  "\"bytes_moved\":%lld}",
                  i == 0 ? "" : ",", sim::JsonEscape(rows[i].name).c_str(), rows[i].m.cpu_ms,
                  rows[i].m.real_ms, static_cast<long long>(rows[i].m.bytes_moved));
    out << buf;
  }
  out << "]}\n";
}

// Prints a figure table normalised against rows[baseline]; with --report also
// emits each row as JSONL.
inline void PrintFigure(const std::string& title, const std::vector<Row>& rows,
                        size_t baseline) {
  std::printf("\n=== %s ===\n", title.c_str());
  std::printf("%-34s %12s %12s %10s %10s   %s\n", "case", "cpu (ms)", "real (ms)",
              "cpu (norm)", "real(norm)", "paper");
  const double cpu_base = rows[baseline].m.cpu_ms;
  const double real_base = rows[baseline].m.real_ms;
  for (const Row& row : rows) {
    const double cpu_norm = cpu_base > 0 ? row.m.cpu_ms / cpu_base : 0.0;
    const double real_norm = real_base > 0 ? row.m.real_ms / real_base : 0.0;
    std::printf("%-34s %12.2f %12.2f %10.2f %10.2f   %s\n", row.name.c_str(), row.m.cpu_ms,
                row.m.real_ms, cpu_norm, real_norm, row.paper_note.c_str());
    WriteBenchRow(title, row.name, row.m, cpu_norm, real_norm, row.paper_note);
  }
}

// Registers a scenario with google-benchmark: manual time is virtual real time,
// virtual CPU is exported as a counter.
inline void RegisterSim(const std::string& name, std::function<Measurement()> run) {
  benchmark::RegisterBenchmark(name.c_str(), [run](benchmark::State& state) {
    Measurement m;
    for (auto _ : state) {
      m = run();
      state.SetIterationTime(m.real_ms / 1000.0);
    }
    state.counters["vcpu_ms"] = m.cpu_ms;
    state.counters["vreal_ms"] = m.real_ms;
  })->UseManualTime()->Iterations(1)->Unit(benchmark::kMillisecond);
}

inline int RunBenchmarks(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}

// The paper's counter test program with 1987-realistic segment sizes (a compiled
// C program's library text and data). Installed as /bin/bigcounter on every host.
inline void InstallPaddedCounter(Testbed& world) {
  const std::string padded =
      core::WithPadding(core::CounterProgramSource(), /*extra_text_instructions=*/1400,
                        /*extra_data_bytes=*/5600);
  for (const auto& host : world.cluster().hosts()) {
    core::InstallProgram(*host, "/bin/bigcounter", padded);
  }
}

// Starts /bin/bigcounter on `host_name`, feeds it one line, and leaves it blocked
// at its second input prompt (the paper kills the program "after its first prompt
// for input"; one fed line makes all three counters nonzero first). Returns pid.
inline int32_t StartBlockedCounter(Testbed& world, const std::string& host_name) {
  const int32_t pid = world.StartVm(host_name, "/bin/bigcounter");
  world.RunUntilBlocked(host_name, pid);
  world.console(host_name)->Type("x\n");
  world.RunUntilBlocked(host_name, pid);
  return pid;
}

}  // namespace pmig::bench

#endif  // PMIG_BENCH_BENCH_UTIL_H_
