// Ablation: the health monitor closing the loop on a degrading host.
//
// Scenario: three workers sit on schooner while a probe job is migrated around
// the ring (brick -> schooner -> brador -> ...) to keep per-host migration
// signal flowing. From t=12s schooner's disk starts filling in lengthening
// RNG-free windows, so dumps out of it fail transiently more and more often; at
// t=60s the machine dies for good.
//
//  monitor   — SLO burn-rate alerting + anomaly detection are armed, and a
//              watchdog evacuates schooner (placement: kCombined, which also
//              refuses unhealthy targets) once its health score crosses the
//              line. The claim: the alert fires on the *soft* signal (failing
//              dumps), the evacuation completes before the hard crash, and no
//              process is lost.
//  baseline  — same degradation, monitor off, nobody watching: the workers are
//              still on schooner when it dies.
//  passive   — the monitor's zero-cost claim: the same run with the monitor
//              armed but nobody acting on it is bit-identical (virtual CPU,
//              virtual real time, bytes moved) to the run with it off.
//
// --check runs all of it and fails (exit 1) on any violated claim — the
// regression gate wired into ctest and scripts/ci.sh.

#include <memory>

#include "bench/bench_util.h"
#include "src/apps/evacuate.h"
#include "src/apps/placement.h"
#include "src/core/tools.h"

namespace pmig::bench {
namespace {

constexpr int kWorkers = 3;
// Far more iterations than any hog can burn in the 65-second scenario: the
// workers and the probe must still be running when the roll call happens.
constexpr const char* kHogIterations = "2000000000";

// Recurring ENOSPC windows on schooner's disk with ~2s breathing gaps, then a
// permanent crash at t=60s. Pure virtual-time window checks — no RNG. A dump
// takes ~0.7s of virtual time, so a gap admits one or two escapes; the
// evacuation has to keep retrying across windows to drain the host.
void DegradeSchooner(sim::FaultConfig* faults, bool crash) {
  faults->enabled = true;
  const double windows[][2] = {{12, 14}, {15.5, 18.5}, {20, 24}, {26, 31},
                               {33, 37}, {39, 44},     {46, 50}, {52, 56}};
  for (const auto& w : windows) {
    faults->disk_full.push_back({"schooner", sim::Millis(static_cast<int64_t>(w[0] * 1000)),
                                 sim::Millis(static_cast<int64_t>(w[1] * 1000))});
  }
  if (crash) faults->crashes.push_back({"schooner", sim::Seconds(60), -1});
}

std::vector<sim::Slo> MigrateErrorSlo() {
  sim::Slo slo;
  slo.name = "migrate-errors";
  slo.metric = "migrate.errors";  // 0/1 outcome series, one point per leg
  slo.threshold = 0.5;
  slo.objective = 0.9;
  slo.window = sim::Seconds(60);
  slo.fast_window = sim::Seconds(10);
  slo.fast_burn = 3.0;
  slo.slow_window = sim::Seconds(30);
  slo.slow_burn = 2.0;
  slo.min_events = 4;
  return {slo};
}

struct HealthOutcome {
  int lost = 0;               // workers not alive on any powered-on host at the end
  sim::Nanos first_alert = -1;
  sim::Nanos evac_trigger = -1;  // health score crossed the line
  sim::Nanos evac_done = -1;     // last worker off schooner
  int active_alerts = 0;
  Measurement m;
};

// The shared scenario. `armed` configures the monitor; `watchdog` acts on it;
// `crash` kills schooner at t=60s.
HealthOutcome RunDegradingHost(bool armed, bool watchdog, bool crash) {
  TestbedOptions options;
  options.num_hosts = 3;  // brick, schooner, brador
  options.daemons = true;
  options.metrics = true;
  options.flight_recorder = crash;  // alert post-mortems in the acting variants
  options.sample_period = sim::Millis(500);
  DegradeSchooner(&options.faults, crash);
  if (armed) {
    options.health.anomaly_detection = true;
    options.health.min_samples = 6;
    options.slos = MigrateErrorSlo();
  }
  Testbed world(options);
  // Workers and probe are runnable padded hogs (a tty-blocked process restarted
  // by the daemon would lose its terminal); the padding makes every dump move
  // real segment bytes.
  const std::string padded = core::WithPadding(
      core::CpuHogProgramSource(), /*extra_text_instructions=*/1400,
      /*extra_data_bytes=*/5600);
  for (const auto& host : world.cluster().hosts()) {
    core::InstallProgram(*host, "/bin/worker", padded);
    core::InstallProgram(*host, "/bin/probehog", padded);
  }
  for (int i = 0; i < kWorkers; ++i) {
    world.StartVm("schooner", "/bin/worker", {"worker", kHogIterations});
  }
  world.StartVm("brick", "/bin/probehog", {"probehog", kHogIterations});

  net::Network* net = &world.cluster().network();
  sim::HealthMonitor* monitor = &world.cluster().health_monitor();

  const sim::Nanos cpu0 = world.cluster().TotalCpu();
  const sim::Nanos t0 = world.cluster().clock().now();
  const int64_t bytes0 = TotalBytesMoved(world);

  // Probe driver: every second, move the probe one hop around the ring. Each
  // hop's dump/restart legs feed the monitor's per-host error series, so the
  // cluster has a pulse on every machine.
  kernel::SpawnOptions root_opts;
  const int32_t driver = world.host("brick").SpawnNative(
      "probedriver",
      [net](kernel::SyscallApi& api) {
        const std::vector<std::string> ring = {"brick", "schooner", "brador"};
        const core::MigrateOptions opts = core::MigrateOptions::Robust();
        int misses = 0;
        while (api.kernel().clock().now() < sim::Seconds(50)) {
          api.Sleep(sim::Seconds(1));
          std::string cur;
          int32_t pid = -1;
          for (kernel::Kernel* h : net->hosts()) {
            if (h->down()) continue;
            for (kernel::Proc* p : h->ListProcs()) {
              if (p->kind == kernel::ProcKind::kVm && p->Alive() &&
                  p->command.find("probehog") != std::string::npos) {
                cur = h->hostname();
                pid = p->pid;
              }
            }
          }
          if (pid < 0) {
            // Legitimately absent for a moment when the watchdog's evacuation
            // has it mid-flight (dumped on the source, not yet restarted on
            // the target). Only give up when it stays gone.
            if (++misses <= 8) continue;
            return 1;  // probe died: stop driving
          }
          misses = 0;
          size_t at = 0;
          for (size_t i = 0; i < ring.size(); ++i) {
            if (ring[i] == cur) at = i;
          }
          const std::string& next = ring[(at + 1) % ring.size()];
          if (net->FindHost(next)->down()) continue;
          const int rc = core::Migrate(api, *net, pid, cur, next, /*use_daemon=*/true, opts);
          (void)rc;  // a failed hop is itself signal: the legs feed migrate.errors
        }
        return 0;
      },
      root_opts);

  auto evac_trigger = std::make_shared<sim::Nanos>(-1);
  auto evac_done = std::make_shared<sim::Nanos>(-1);
  int32_t guard = -1;
  if (watchdog) {
    guard = world.host("brick").SpawnNative(
        "healthwatch",
        [net, monitor, evac_trigger, evac_done](kernel::SyscallApi& api) {
          // Single attempt per process per sweep: the outer loop is the retry.
          // A per-process retry envelope would pin the evacuation on one stuck
          // worker for a whole disk-full window; round-robin sweeps instead
          // give every process a shot at each breathing gap.
          core::MigrateOptions evac_opts = core::MigrateOptions::Robust();
          evac_opts.attempts = 1;
          for (;;) {
            api.Sleep(sim::Millis(500));
            const sim::Nanos now = api.kernel().clock().now();
            if (now > sim::Seconds(58)) return 1;  // gave up before the crash
            // >= 2: one wobbly series is a shrug; a firing burn alert (or two
            // anomalous series) on one host is a machine to walk away from.
            if (monitor->HealthScore("schooner") < 2.0) continue;
            if (*evac_trigger < 0) *evac_trigger = now;
            apps::EvacuateHost(api, *net, "schooner", "", /*use_daemon=*/true,
                               evac_opts, apps::PlacementPolicy::kCombined,
                               /*fault_threshold=*/0.5, /*health_threshold=*/2.0);
            bool remaining = false;
            for (kernel::Proc* p : net->FindHost("schooner")->ListProcs()) {
              if (p->kind == kernel::ProcKind::kVm && p->Alive() &&
                  p->command.find("worker") != std::string::npos) {
                remaining = true;
              }
            }
            if (!remaining) {
              *evac_done = api.kernel().clock().now();
              return 0;
            }
          }
        },
        root_opts);
  }

  world.RunUntilExited("brick", driver, sim::Seconds(600));
  HealthOutcome out;
  out.m = Measurement{sim::ToMillis(world.cluster().TotalCpu() - cpu0),
                      sim::ToMillis(world.cluster().clock().now() - t0),
                      TotalBytesMoved(world) - bytes0};
  if (guard >= 0) world.RunUntilExited("brick", guard, sim::Seconds(600));
  if (crash) {
    // Ride past the crash, then take roll call on the machines still standing.
    world.cluster().RunUntil(
        [&world] { return world.cluster().clock().now() >= sim::Seconds(65); },
        sim::Seconds(600));
    world.cluster().RunFor(sim::Seconds(2));
  }
  int alive = 0;
  for (const auto& host : world.cluster().hosts()) {
    if (host->down()) continue;
    for (kernel::Proc* p : host->ListProcs()) {
      if (p->kind == kernel::ProcKind::kVm && p->Alive() &&
          p->command.find("worker") != std::string::npos) {
        ++alive;
      }
    }
  }
  out.lost = kWorkers - alive;
  if (!monitor->alerts().empty()) out.first_alert = monitor->alerts().front().at;
  out.active_alerts = monitor->ActiveAlerts();
  out.evac_trigger = *evac_trigger;
  out.evac_done = *evac_done;
  return out;
}

double ToSecs(sim::Nanos ns) { return ns < 0 ? -1.0 : static_cast<double>(ns) / 1e9; }

}  // namespace
}  // namespace pmig::bench

int main(int argc, char** argv) {
  using namespace pmig::bench;
  bool check = false;
  {
    int out = 1;
    for (int i = 1; i < argc; ++i) {
      if (std::strcmp(argv[i], "--check") == 0) {
        check = true;
      } else {
        argv[out++] = argv[i];
      }
    }
    argc = out;
  }
  ParseBenchFlags(&argc, argv);

  std::printf("\n=== Ablation: degrading host, monitor vs nobody watching ===\n");
  const HealthOutcome monitored =
      RunDegradingHost(/*armed=*/true, /*watchdog=*/true, /*crash=*/true);
  const HealthOutcome blind =
      RunDegradingHost(/*armed=*/false, /*watchdog=*/false, /*crash=*/true);
  std::printf("%-10s %5s %12s %12s %12s\n", "variant", "lost", "alert(s)", "evac@(s)",
              "done@(s)");
  std::printf("%-10s %5d %12.1f %12.1f %12.1f\n", "monitor", monitored.lost,
              ToSecs(monitored.first_alert), ToSecs(monitored.evac_trigger),
              ToSecs(monitored.evac_done));
  std::printf("%-10s %5d %12.1f %12.1f %12.1f\n", "baseline", blind.lost,
              ToSecs(blind.first_alert), ToSecs(blind.evac_trigger),
              ToSecs(blind.evac_done));

  std::printf("\n=== Bit-identity: armed-but-unread monitor vs off ===\n");
  const HealthOutcome passive_armed =
      RunDegradingHost(/*armed=*/true, /*watchdog=*/false, /*crash=*/false);
  const HealthOutcome passive_off =
      RunDegradingHost(/*armed=*/false, /*watchdog=*/false, /*crash=*/false);
  const bool identical = SameMeasurement(passive_armed.m, passive_off.m);
  std::printf("armed: cpu=%.3fms real=%.3fms bytes=%lld\n", passive_armed.m.cpu_ms,
              passive_armed.m.real_ms, static_cast<long long>(passive_armed.m.bytes_moved));
  std::printf("off:   cpu=%.3fms real=%.3fms bytes=%lld  -> %s\n", passive_off.m.cpu_ms,
              passive_off.m.real_ms, static_cast<long long>(passive_off.m.bytes_moved),
              identical ? "identical" : "DIVERGED");

  std::vector<Row> rows;
  rows.push_back({"degrading/monitor", monitored.m, "lost=0, evacuated pre-crash"});
  rows.push_back({"degrading/baseline", blind.m, "crash-blind"});
  rows.push_back({"passive/armed", passive_armed.m, "bit-identical to off"});
  rows.push_back({"passive/off", passive_off.m, "reference"});
  WriteBenchJson("ablation_health", rows);
  for (const Row& row : rows) {
    WriteBenchRow("ablation_health", row.name, row.m, 0, 0, row.paper_note);
  }

  if (check) {
    bool ok = true;
    if (monitored.lost != 0) {
      std::printf("check: FAIL monitor variant lost %d worker(s)\n", monitored.lost);
      ok = false;
    }
    if (monitored.first_alert < 0 || monitored.evac_trigger < 0 ||
        monitored.first_alert > monitored.evac_trigger) {
      std::printf("check: FAIL no alert before the evacuation trigger\n");
      ok = false;
    }
    if (monitored.evac_done < 0 || monitored.evac_done >= pmig::sim::Seconds(60)) {
      std::printf("check: FAIL evacuation did not finish before the crash\n");
      ok = false;
    }
    if (blind.lost < 1) {
      std::printf("check: FAIL baseline lost nothing; the scenario shows no hazard\n");
      ok = false;
    }
    if (!identical) {
      std::printf("check: FAIL armed-but-unread monitor perturbed the run\n");
      ok = false;
    }
    std::printf("check: %s\n", ok ? "ok" : "REGRESSION");
    return ok ? 0 : 1;
  }

  RegisterSim("health/degrading_monitor",
              [] { return RunDegradingHost(true, true, true).m; });
  RegisterSim("health/degrading_baseline",
              [] { return RunDegradingHost(false, false, true).m; });
  return RunBenchmarks(argc, argv);
}
