// Ablation: migrations, coordinators, and the reaper under network partitions.
//
// Three scenarios plus a bit-identity leg, all driven by the pure
// (config, clock) partition model — no RNG anywhere, so every run replays
// bit-identically by construction:
//
//  cut        — serial robust migrations while a flapping brick<->schooner link
//               and a hard brador island carve up the cluster mid-flight. The
//               claim: whatever each leg did (complete across an open phase,
//               fall back, abandon a set for the reaper), every victim ends the
//               run alive exactly once and no dump/claim/lease file is leaked.
//  splitbrain — two coordinators on different hosts evacuate the same source
//               concurrently with lease_targets on: placement leases serialise
//               their target picks, the dump claims serialise consumption, and
//               nothing is lost or doubled. A bare variant runs without leases
//               for comparison.
//  flap       — a soak with the reaper daemon running: a pre-orphaned dump set
//               on the flapping host (its origin process dead, its coordinator
//               gone) must be revived exactly once after the link heals, while
//               live migrations keep flowing around the reaper.
//  inert      — the zero-cost claim: a run with the partition config armed but
//               every window out past the horizon is bit-identical (virtual
//               CPU, virtual real time, bytes moved) to a run with faults off.
//
// --check runs all of it and fails (exit 1) on any violated claim — the
// partition gate wired into ctest and scripts/ci.sh.

#include <memory>

#include "bench/bench_util.h"
#include "src/apps/evacuate.h"
#include "src/apps/recovery.h"
#include "src/core/tools.h"

namespace pmig::bench {
namespace {

// The sleep-loop victim from the chaos soak: stays alive wherever a restart
// lands it, so conservation is countable.
constexpr std::string_view kTickerSource = R"(
        .text
start:
loop:   movi r0, 2
        sys  SYS_sleep
        jmp  loop
)";

int32_t StartQuiescedTicker(Testbed& world, const std::string& host) {
  const int32_t pid = world.StartVm(host, "/bin/ticker");
  if (pid <= 0) return -1;
  world.cluster().RunUntil(
      [&world, &host, pid] {
        const kernel::Proc* p = world.host(host).FindProc(pid);
        return p != nullptr && p->state == kernel::ProcState::kSleeping;
      },
      sim::Seconds(120));
  return pid;
}

// Live copies of the process whose pre-migration identity is (origin, pid):
// the unmigrated original still under that pid, or any migrant/revival
// carrying the identity. Exactly-once means this is 1 for every victim.
int CopiesOf(Testbed& world, const std::string& origin, int32_t pid) {
  int copies = 0;
  for (const auto& host : world.cluster().hosts()) {
    if (host->down()) continue;
    for (kernel::Proc* p : host->ListProcs()) {
      if (p->kind != kernel::ProcKind::kVm || !p->Alive()) continue;
      const bool original =
          host->hostname() == origin && p->pid == pid && p->old_pid == 0;
      const bool migrant = p->old_pid == pid && p->old_host == origin;
      if (original || migrant) ++copies;
    }
  }
  return copies;
}

// Dump-machinery and lease files left anywhere in the cluster.
int LeakedFiles(Testbed& world) {
  int leaked = 0;
  for (const auto& host : world.cluster().hosts()) {
    kernel::Kernel& k = *host;
    auto tmp = k.vfs().Resolve(k.vfs().RootState(), "/usr/tmp", vfs::Follow::kAll,
                               nullptr);
    if (tmp.ok()) {
      for (const auto& [name, inode] : tmp->inode->entries) {
        for (const char* prefix : {"a.out", "files", "stack", "ready", "claim"}) {
          if (name.rfind(prefix, 0) == 0) {
            ++leaked;
            break;
          }
        }
      }
    }
    if (k.vfs()
            .Resolve(k.vfs().RootState(), "/var/lease/placement", vfs::Follow::kAll,
                     nullptr)
            .ok()) {
      ++leaked;
    }
  }
  return leaked;
}

// One serial robust migration driven from a root native proc on `from`.
int MigrateOne(Testbed& world, net::Network* net, int32_t pid,
               const std::string& from, const std::string& to) {
  auto rc = std::make_shared<int>(-1);
  const int32_t mig = world.host(from).SpawnNative(
      "migrate",
      [rc, net, pid, from, to](kernel::SyscallApi& api) {
        *rc = core::Migrate(api, *net, pid, from, to, /*use_daemon=*/true,
                            core::MigrateOptions::Robust());
        return *rc;
      },
      kernel::SpawnOptions{});
  world.RunUntilExited(from, mig, sim::Seconds(600));
  return *rc;
}

void RunReaperPasses(Testbed& world, net::Network* net) {
  auto state = std::make_shared<apps::ReaperState>();
  for (int pass = 0; pass < 2; ++pass) {
    const int32_t rp = world.host("brick").SpawnNative(
        "preap",
        [net, state](kernel::SyscallApi& api) {
          apps::ReaperOptions ropts;
          ropts.grace = sim::Seconds(5);
          const apps::ReaperReport report =
              apps::ReapOrphans(api, *net, ropts, state.get());
          (void)report;
          return 0;
        },
        kernel::SpawnOptions{});
    world.RunUntilExited("brick", rp, sim::Seconds(600));
    world.cluster().RunFor(sim::Seconds(6));
  }
}

struct Outcome {
  int lost = 0;        // victims with no live copy at the end
  int duplicated = 0;  // victims with more than one live copy
  int leaked = 0;      // dump/claim/lease files left anywhere
  int64_t partitions_hit = 0;
  int64_t lease_acquired = 0;
  int64_t lease_contended = 0;
  int64_t revived = 0;
  Measurement m;
};

void FillCounters(Testbed& world, Outcome* out) {
  const sim::MetricsRegistry metrics = world.cluster().AggregateMetrics();
  out->partitions_hit = metrics.Counter("fault.injected.partition");
  out->lease_acquired = metrics.Counter("lease.acquired");
  out->lease_contended = metrics.Counter("lease.contended");
  out->revived = metrics.Counter("reaper.revived");
}

enum class PartitionMode { kActive, kInert, kOff };

// Scenario 1 (and the bit-identity pair): serial robust migrations out of
// brick while the links churn. kInert arms the injector with a partition whose
// window sits past the horizon; kOff leaves faults entirely off.
Outcome RunCutMigrations(PartitionMode mode) {
  TestbedOptions options;
  options.num_hosts = 3;  // brick, schooner, brador
  options.daemons = true;
  options.metrics = true;
  if (mode != PartitionMode::kOff) {
    options.faults.enabled = true;
    if (mode == PartitionMode::kActive) {
      sim::PartitionFault flap;
      flap.group_a = {"brick"};
      flap.group_b = {"schooner"};
      flap.begin = sim::Seconds(1);
      flap.heal = sim::Seconds(40);
      flap.flap_period = sim::Seconds(2);
      options.faults.partitions.push_back(flap);
      sim::PartitionFault island;
      island.group_a = {"brador"};
      island.begin = sim::Seconds(5);
      island.heal = sim::Seconds(25);
      options.faults.partitions.push_back(island);
    } else {
      sim::PartitionFault never;
      never.group_a = {"brick"};
      never.begin = sim::Seconds(100000);
      never.heal = sim::Seconds(100001);
      options.faults.partitions.push_back(never);
    }
  }
  Testbed world(options);
  core::InstallProgram(world.host("brick"), "/bin/ticker", kTickerSource);
  std::vector<int32_t> victims;
  for (int i = 0; i < 4; ++i) victims.push_back(StartQuiescedTicker(world, "brick"));

  net::Network* net = &world.cluster().network();
  const sim::Nanos cpu0 = world.cluster().TotalCpu();
  const sim::Nanos t0 = world.cluster().clock().now();
  const int64_t bytes0 = TotalBytesMoved(world);

  for (size_t i = 0; i < victims.size(); ++i) {
    const std::string target = (i % 2 == 0) ? "schooner" : "brador";
    const int rc = MigrateOne(world, net, victims[i], "brick", target);
    (void)rc;  // a failed or fallen-back leg is part of the scenario
  }
  world.cluster().faults().Disarm();  // heals whatever is still cut
  world.cluster().RunFor(sim::Seconds(10));
  RunReaperPasses(world, net);  // settle anything a cut leg abandoned

  Outcome out;
  out.m = Measurement{sim::ToMillis(world.cluster().TotalCpu() - cpu0),
                      sim::ToMillis(world.cluster().clock().now() - t0),
                      TotalBytesMoved(world) - bytes0};
  for (const int32_t pid : victims) {
    const int copies = CopiesOf(world, "brick", pid);
    if (copies == 0) ++out.lost;
    if (copies > 1) ++out.duplicated;
  }
  out.leaked = LeakedFiles(world);
  FillCounters(world, &out);
  return out;
}

// Scenario 2: two coordinators, on schooner and brador, evacuate brick at the
// same time. Leases keep them off each other's targets; the dump claims keep a
// doubly-attempted process from restarting twice.
Outcome RunSplitBrain(bool leases) {
  TestbedOptions options;
  options.num_hosts = 3;
  options.daemons = true;
  options.metrics = true;
  Testbed world(options);
  core::InstallProgram(world.host("brick"), "/bin/ticker", kTickerSource);
  std::vector<int32_t> victims;
  for (int i = 0; i < 4; ++i) victims.push_back(StartQuiescedTicker(world, "brick"));

  net::Network* net = &world.cluster().network();
  const sim::Nanos cpu0 = world.cluster().TotalCpu();
  const sim::Nanos t0 = world.cluster().clock().now();
  const int64_t bytes0 = TotalBytesMoved(world);

  std::vector<int32_t> coordinators;
  for (const std::string host : {"schooner", "brador"}) {
    coordinators.push_back(world.host(host).SpawnNative(
        "evacuator",
        [net, leases](kernel::SyscallApi& api) {
          const apps::EvacuationReport report = apps::EvacuateHost(
              api, *net, "brick", "", /*use_daemon=*/true,
              core::MigrateOptions::Robust(), apps::PlacementPolicy::kLoadOnly,
              /*fault_threshold=*/0.5, /*health_threshold=*/1.0,
              /*lease_targets=*/leases, /*lease_ttl=*/sim::Seconds(30));
          return report.Status();
        },
        kernel::SpawnOptions{}));
  }
  world.RunUntilExited("schooner", coordinators[0], sim::Seconds(600));
  world.RunUntilExited("brador", coordinators[1], sim::Seconds(600));
  world.cluster().RunFor(sim::Seconds(10));

  Outcome out;
  out.m = Measurement{sim::ToMillis(world.cluster().TotalCpu() - cpu0),
                      sim::ToMillis(world.cluster().clock().now() - t0),
                      TotalBytesMoved(world) - bytes0};
  for (const int32_t pid : victims) {
    const int copies = CopiesOf(world, "brick", pid);
    if (copies == 0) ++out.lost;
    if (copies > 1) ++out.duplicated;
  }
  out.leaked = LeakedFiles(world);
  FillCounters(world, &out);
  return out;
}

// Scenario 3: the reaper daemon runs through a flap. A dump set pre-orphaned
// on the flapping host (origin dead, coordinator gone) must be revived exactly
// once after the heal, while robust migrations keep flowing around it.
Outcome RunFlapWithReaperDaemon() {
  TestbedOptions options;
  options.num_hosts = 3;
  options.daemons = true;
  options.metrics = true;
  options.faults.enabled = true;
  sim::PartitionFault flap;
  flap.group_a = {"schooner"};
  flap.begin = sim::Seconds(2);
  flap.heal = sim::Seconds(20);
  flap.flap_period = sim::Seconds(2);
  options.faults.partitions.push_back(flap);
  Testbed world(options);
  for (const std::string host : {"brick", "schooner"}) {
    core::InstallProgram(world.host(host), "/bin/ticker", kTickerSource);
  }

  // The orphan: dumped transactionally on schooner before the flap starts,
  // then its coordinator never returns for it.
  const int32_t orphan = StartQuiescedTicker(world, "schooner");
  const int32_t dp = world.StartTool("schooner", "dumpproc",
                                     {"-p", std::to_string(orphan), "--tx"});
  world.RunUntilExited("schooner", dp, sim::Seconds(120));

  std::vector<int32_t> victims;
  for (int i = 0; i < 3; ++i) victims.push_back(StartQuiescedTicker(world, "brick"));

  net::Network* net = &world.cluster().network();
  const sim::Nanos cpu0 = world.cluster().TotalCpu();
  const sim::Nanos t0 = world.cluster().clock().now();
  const int64_t bytes0 = TotalBytesMoved(world);

  const int32_t reaper = world.host("brick").SpawnNative(
      "preapd",
      [net](kernel::SyscallApi& api) {
        apps::ReaperOptions ropts;
        ropts.grace = sim::Seconds(10);
        ropts.poll_interval = sim::Seconds(5);
        ropts.rounds = 12;
        return apps::ReaperDaemonMain(api, *net, ropts);
      },
      kernel::SpawnOptions{});

  for (const int32_t pid : victims) {
    const int rc = MigrateOne(world, net, pid, "brick", "schooner");
  }
  world.RunUntilExited("brick", reaper, sim::Seconds(600));
  world.cluster().faults().Disarm();
  world.cluster().RunFor(sim::Seconds(10));

  Outcome out;
  out.m = Measurement{sim::ToMillis(world.cluster().TotalCpu() - cpu0),
                      sim::ToMillis(world.cluster().clock().now() - t0),
                      TotalBytesMoved(world) - bytes0};
  for (const int32_t pid : victims) {
    const int copies = CopiesOf(world, "brick", pid);
    if (copies == 0) ++out.lost;
    if (copies > 1) ++out.duplicated;
  }
  const int orphan_copies = CopiesOf(world, "schooner", orphan);
  if (orphan_copies == 0) ++out.lost;
  if (orphan_copies > 1) ++out.duplicated;
  out.leaked = LeakedFiles(world);
  FillCounters(world, &out);
  return out;
}

}  // namespace
}  // namespace pmig::bench

int main(int argc, char** argv) {
  using namespace pmig::bench;
  bool check = false;
  {
    int out = 1;
    for (int i = 1; i < argc; ++i) {
      if (std::strcmp(argv[i], "--check") == 0) {
        check = true;
      } else {
        argv[out++] = argv[i];
      }
    }
    argc = out;
  }
  ParseBenchFlags(&argc, argv);

  std::printf("\n=== Ablation: migrations and coordinators under partition ===\n");
  const Outcome cut = RunCutMigrations(PartitionMode::kActive);
  const Outcome sb_leased = RunSplitBrain(/*leases=*/true);
  const Outcome sb_bare = RunSplitBrain(/*leases=*/false);
  const Outcome flap = RunFlapWithReaperDaemon();
  std::printf("%-18s %5s %4s %7s %10s %9s %10s %8s\n", "case", "lost", "dup",
              "leaked", "part_hits", "leases", "contended", "revived");
  const auto print = [](const char* name, const Outcome& o) {
    std::printf("%-18s %5d %4d %7d %10lld %9lld %10lld %8lld\n", name, o.lost,
                o.duplicated, o.leaked, static_cast<long long>(o.partitions_hit),
                static_cast<long long>(o.lease_acquired),
                static_cast<long long>(o.lease_contended),
                static_cast<long long>(o.revived));
  };
  print("cut/robust", cut);
  print("splitbrain/leased", sb_leased);
  print("splitbrain/bare", sb_bare);
  print("flap/reaper", flap);

  std::printf("\n=== Bit-identity: armed-but-inert partitions vs faults off ===\n");
  const Outcome inert_armed = RunCutMigrations(PartitionMode::kInert);
  const Outcome inert_off = RunCutMigrations(PartitionMode::kOff);
  const bool identical = SameMeasurement(inert_armed.m, inert_off.m);
  std::printf("armed: cpu=%.3fms real=%.3fms bytes=%lld\n", inert_armed.m.cpu_ms,
              inert_armed.m.real_ms,
              static_cast<long long>(inert_armed.m.bytes_moved));
  std::printf("off:   cpu=%.3fms real=%.3fms bytes=%lld  -> %s\n",
              inert_off.m.cpu_ms, inert_off.m.real_ms,
              static_cast<long long>(inert_off.m.bytes_moved),
              identical ? "identical" : "DIVERGED");

  std::vector<Row> rows;
  rows.push_back({"cut/robust", cut.m, "exactly-once through the cut"});
  rows.push_back({"splitbrain/leased", sb_leased.m, "leases serialise targets"});
  rows.push_back({"splitbrain/bare", sb_bare.m, "claims alone"});
  rows.push_back({"flap/reaper", flap.m, "orphan revived post-heal"});
  rows.push_back({"inert/armed", inert_armed.m, "bit-identical to off"});
  rows.push_back({"inert/off", inert_off.m, "reference"});
  WriteBenchJson("ablation_partition", rows);
  for (const Row& row : rows) {
    WriteBenchRow("ablation_partition", row.name, row.m, 0, 0, row.paper_note);
  }

  if (check) {
    bool ok = true;
    const auto require = [&ok](bool cond, const char* what) {
      if (!cond) {
        std::printf("check: FAIL %s\n", what);
        ok = false;
      }
    };
    require(cut.lost == 0, "cut scenario lost a process");
    require(cut.duplicated == 0, "cut scenario duplicated a process");
    require(cut.leaked == 0, "cut scenario leaked dump/claim/lease files");
    require(cut.partitions_hit > 0, "cut scenario never hit a partition");
    require(sb_leased.lost == 0, "leased split-brain lost a process");
    require(sb_leased.duplicated == 0, "leased split-brain duplicated a process");
    require(sb_leased.leaked == 0, "leased split-brain leaked files");
    require(sb_leased.lease_acquired > 0, "leased split-brain never took a lease");
    require(sb_bare.lost == 0, "bare split-brain lost a process");
    require(sb_bare.duplicated == 0, "bare split-brain duplicated a process");
    require(flap.lost == 0, "flap scenario lost a process");
    require(flap.duplicated == 0, "flap scenario duplicated a process");
    require(flap.leaked == 0, "flap scenario leaked files");
    require(flap.revived >= 1, "reaper daemon never revived the orphan");
    require(identical, "armed-but-inert partition config perturbed the run");
    std::printf("check: %s\n", ok ? "ok" : "REGRESSION");
    return ok ? 0 : 1;
  }

  RegisterSim("partition/cut_migrations",
              [] { return RunCutMigrations(PartitionMode::kActive).m; });
  RegisterSim("partition/splitbrain_leased", [] { return RunSplitBrain(true).m; });
  RegisterSim("partition/flap_reaper", [] { return RunFlapWithReaperDaemon().m; });
  return RunBenchmarks(argc, argv);
}
