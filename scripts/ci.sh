#!/bin/sh
# The full verification pipeline, one command: tier-1 build + ctest, the ASan
# and UBSan builds + ctest, and the fig4 phase-drift gate. Run from the
# repository root.
set -eu

cd "$(dirname "$0")/.."

echo "== tier-1 build =="
cmake -B build -S . >/dev/null
cmake --build build -j

echo "== tier-1 ctest =="
(cd build && ctest --output-on-failure --timeout 300 -j)

echo "== ASan build =="
cmake -B build-asan -S . -DPMIG_SANITIZE=address >/dev/null
cmake --build build-asan -j

echo "== ASan ctest =="
(cd build-asan && ctest --output-on-failure --timeout 300 -j)

echo "== UBSan build =="
cmake -B build-ubsan -S . -DPMIG_SANITIZE=undefined >/dev/null
cmake --build build-ubsan -j

echo "== UBSan ctest =="
(cd build-ubsan && UBSAN_OPTIONS=halt_on_error=1 ctest --output-on-failure --timeout 300 -j)

echo "== phase-drift gate =="
./build/bench/check_phases --fig4 ./build/bench/fig4_migrate \
    --baseline bench/phase_baseline.txt

echo "== placement gate =="
./build/bench/ablation_placement --check

echo "== observability bit-identical gates =="
./build/bench/fig2_dump --check
./build/bench/fig4_migrate --check

echo "== health-monitor gate =="
./build/bench/ablation_health --check

echo "== partition gate =="
./build/bench/ablation_partition --check

echo "== scale gate =="
./build/bench/ablation_scale --check

echo "== event-driven balancer gate =="
./build/bench/ablation_event --check

echo "== decision-diff gate =="
(cd build/bench && ./decision_diff --check)

echo "== bench JSON schema gate =="
./build/bench/check_bench_json bench/baselines

echo "== report-line schema gate =="
./build/bench/check_bench_json --report build/bench/REPORT_decision_diff.jsonl

echo "ci: all green"
